// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the artifact at paper scale on the synthetic
// workloads), plus micro-benchmarks of the substrates. Domain results
// are attached as custom benchmark metrics so a run doubles as an
// experiment report:
//
//	go test -bench=. -benchmem
package pbppm

import (
	"strings"
	"sync"
	"testing"

	"pbppm/internal/experiments"
	"pbppm/internal/markov"
	"pbppm/internal/session"
	"pbppm/internal/sim"
	"pbppm/internal/trace"
	"pbppm/internal/tracegen"
)

var (
	benchNASAOnce sync.Once
	benchNASA     *experiments.Workload
	benchNASAErr  error
	benchUCBOnce  sync.Once
	benchUCB      *experiments.Workload
	benchUCBErr   error
)

func nasaWorkload(b *testing.B) *experiments.Workload {
	b.Helper()
	benchNASAOnce.Do(func() { benchNASA, benchNASAErr = experiments.NASAWorkload() })
	if benchNASAErr != nil {
		b.Fatal(benchNASAErr)
	}
	return benchNASA
}

func ucbWorkload(b *testing.B) *experiments.Workload {
	b.Helper()
	benchUCBOnce.Do(func() { benchUCB, benchUCBErr = experiments.UCBWorkload() })
	if benchUCBErr != nil {
		b.Fatal(benchUCBErr)
	}
	return benchUCB
}

// BenchmarkFigure2 regenerates Figure 2: the share of popular documents
// among prefetch hits and the path-utilization rates of 3-PPM, LRS-PPM,
// and PB-PPM over 1–7 training days (NASA-like workload).
func BenchmarkFigure2(b *testing.B) {
	w := nasaWorkload(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure2(w, experiments.SweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		last := f.Rows[len(f.Rows)-1]
		b.ReportMetric(last.Results[experiments.ModelPB].PopularShareOfPrefetchHits(), "PB-popular-share")
		b.ReportMetric(last.Results[experiments.ModelPB].Utilization, "PB-utilization")
		b.ReportMetric(last.Results[experiments.Model3PPM].Utilization, "3PPM-utilization")
	}
}

// BenchmarkFigure3NASA regenerates Figure 3 (first and second panels):
// hit ratios and latency reductions on the NASA-like workload.
func BenchmarkFigure3NASA(b *testing.B) {
	w := nasaWorkload(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure3(w, experiments.SweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		last := len(f.Rows) - 1
		b.ReportMetric(f.HitRatio(last, experiments.ModelPB), "PB-hit")
		b.ReportMetric(f.HitRatio(last, experiments.ModelPPM), "PPM-hit")
		b.ReportMetric(f.LatencyReduction(last, experiments.ModelPB), "PB-latred")
	}
}

// BenchmarkFigure3UCB regenerates Figure 3 (third and fourth panels) on
// the UCB-CS-like workload.
func BenchmarkFigure3UCB(b *testing.B) {
	w := ucbWorkload(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure3(w, experiments.SweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		last := len(f.Rows) - 1
		b.ReportMetric(f.HitRatio(last, experiments.ModelPB), "PB-hit")
		b.ReportMetric(f.HitRatio(last, experiments.ModelPPM), "PPM-hit")
	}
}

// BenchmarkTable1 regenerates Table 1: node counts of the three models
// on the NASA-like workload for 1–7 training days.
func BenchmarkTable1(b *testing.B) {
	w := nasaWorkload(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunSpaceTable(w, experiments.SweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		last := len(t.Rows) - 1
		b.ReportMetric(float64(t.Nodes(last, experiments.ModelPPM)), "PPM-nodes")
		b.ReportMetric(float64(t.Nodes(last, experiments.ModelLRS)), "LRS-nodes")
		b.ReportMetric(float64(t.Nodes(last, experiments.ModelPB)), "PB-nodes")
	}
}

// BenchmarkTable2 regenerates Table 2: node counts on the UCB-CS-like
// workload with both space optimizations enabled for PB-PPM.
func BenchmarkTable2(b *testing.B) {
	w := ucbWorkload(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunSpaceTable(w, experiments.SweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		last := len(t.Rows) - 1
		b.ReportMetric(float64(t.Nodes(last, experiments.ModelLRS)), "LRS-nodes")
		b.ReportMetric(float64(t.Nodes(last, experiments.ModelPB)), "PB-nodes")
	}
}

// BenchmarkFigure4NASA regenerates Figure 4 (first and second panels):
// LRS-vs-PB space growth and traffic increments, NASA-like workload.
func BenchmarkFigure4NASA(b *testing.B) {
	w := nasaWorkload(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure4(w, experiments.SweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		last := len(f.Rows) - 1
		b.ReportMetric(f.NodeRatio(last), "LRS/PB-nodes")
		b.ReportMetric(f.TrafficIncrease(last, experiments.ModelPB), "PB-traffic")
	}
}

// BenchmarkFigure4UCB regenerates Figure 4 (third and fourth panels) on
// the UCB-CS-like workload.
func BenchmarkFigure4UCB(b *testing.B) {
	w := ucbWorkload(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure4(w, experiments.SweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		last := len(f.Rows) - 1
		b.ReportMetric(f.NodeRatio(last), "LRS/PB-nodes")
		b.ReportMetric(f.TrafficIncrease(last, experiments.ModelLRS), "LRS-traffic")
		b.ReportMetric(f.TrafficIncrease(last, experiments.ModelPB), "PB-traffic")
	}
}

// BenchmarkFigure5 regenerates Figure 5: proxy hit ratios and traffic
// increments for 1–32 clients behind a shared proxy.
func BenchmarkFigure5(b *testing.B) {
	w := nasaWorkload(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure5(w, experiments.Figure5Config{})
		if err != nil {
			b.Fatal(err)
		}
		last := len(f.ClientCounts) - 1
		b.ReportMetric(f.Results[last][experiments.ModelPB10KB].HitRatio(), "PB10KB-hit-32c")
		b.ReportMetric(f.Results[last][experiments.ModelPB4KB].TrafficIncrease(), "PB4KB-traffic-32c")
	}
}

// BenchmarkAblationThresholds sweeps PB-PPM's probability and size
// thresholds (the hit/traffic trade-off knob of §4.1 and §5).
func BenchmarkAblationThresholds(b *testing.B) {
	w := nasaWorkload(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationThresholds(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSpaceOpt compares PB-PPM's space optimizations
// (§3.4's two alternatives).
func BenchmarkAblationSpaceOpt(b *testing.B) {
	w := nasaWorkload(b)
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunAblationSpaceOpt(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(a.Rows[0].Result.Nodes), "nodes-raw")
		b.ReportMetric(float64(a.Rows[len(a.Rows)-1].Result.Nodes), "nodes-optimized")
	}
}

// BenchmarkAblationHeights sweeps the grade→height mapping.
func BenchmarkAblationHeights(b *testing.B) {
	w := nasaWorkload(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationHeights(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLinks isolates rule 3 (popular-node links).
func BenchmarkAblationLinks(b *testing.B) {
	w := nasaWorkload(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationLinks(w); err != nil {
			b.Fatal(err)
		}
	}
}

// ----- micro-benchmarks of the substrates -----

func benchSessions(b *testing.B, w *experiments.Workload, days int) []session.Session {
	b.Helper()
	s := w.DaySessions(0, days)
	if len(s) == 0 {
		b.Fatal("no sessions")
	}
	return s
}

// BenchmarkTrainPBPPM measures PB-PPM model construction throughput
// (sessions folded per op: one full 5-day training window).
func BenchmarkTrainPBPPM(b *testing.B) {
	w := nasaWorkload(b)
	train := benchSessions(b, w, 5)
	rank := experiments.Ranking(train)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewPopularityPPM(rank, PopularityPPMConfig{RelProbCutoff: 0.01, DropSingletons: true})
		sim.Train(m, train)
	}
}

// BenchmarkTrainStandardPPM measures unbounded standard PPM training on
// the same window (the memory-hungry baseline).
func BenchmarkTrainStandardPPM(b *testing.B) {
	w := nasaWorkload(b)
	train := benchSessions(b, w, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewStandardPPM(PPMConfig{})
		sim.Train(m, train)
	}
}

// BenchmarkTrainLRS measures LRS training plus its repeat-pruning
// rebuild.
func BenchmarkTrainLRS(b *testing.B) {
	w := nasaWorkload(b)
	train := benchSessions(b, w, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewLRS(LRSConfig{})
		sim.Train(m, train)
	}
}

// BenchmarkPredictPBPPM measures single-prediction latency on a trained
// PB-PPM model — the per-request server overhead the paper argues is
// low thanks to the compact tree.
func BenchmarkPredictPBPPM(b *testing.B) {
	w := nasaWorkload(b)
	train := benchSessions(b, w, 5)
	rank := experiments.Ranking(train)
	m := NewPopularityPPM(rank, PopularityPPMConfig{RelProbCutoff: 0.01, DropSingletons: true})
	sim.Train(m, train)
	contexts := make([][]string, 0, 256)
	for _, s := range w.DaySessions(5, 6) {
		urls := s.URLs()
		for j := range urls {
			contexts = append(contexts, urls[:j+1])
			if len(contexts) == cap(contexts) {
				break
			}
		}
		if len(contexts) == cap(contexts) {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(contexts[i%len(contexts)])
	}
}

// BenchmarkPredictFrozenPBPPM measures the arena serving path: the same
// trained PB-PPM model frozen into its flat arena and driven through
// PredictInto with a reused scratch buffer. CI runs this with -benchmem
// and fails if it reports any allocations — the zero-allocation gate on
// the frozen serving path.
func BenchmarkPredictFrozenPBPPM(b *testing.B) {
	w := nasaWorkload(b)
	train := benchSessions(b, w, 5)
	rank := experiments.Ranking(train)
	m := NewPopularityPPM(rank, PopularityPPMConfig{RelProbCutoff: 0.01, DropSingletons: true})
	sim.Train(m, train)
	frozen := m.Freeze().(BufferedPredictor)
	contexts := make([][]string, 0, 256)
	for _, s := range w.DaySessions(5, 6) {
		urls := s.URLs()
		for j := range urls {
			contexts = append(contexts, urls[:j+1])
			if len(contexts) == cap(contexts) {
				break
			}
		}
		if len(contexts) == cap(contexts) {
			break
		}
	}
	// Warm pass: grow the scratch buffer to steady-state capacity so the
	// measured loop is pure reuse.
	var buf []Prediction
	for _, ctx := range contexts {
		buf = frozen.PredictInto(ctx, buf)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = frozen.PredictInto(contexts[i%len(contexts)], buf)
	}
}

// BenchmarkTrainAllSerial measures serial session-by-session training
// of the height-3 standard PPM model over the 5-day window — the
// baseline for the sharded-training comparison below. CI runs the pair
// with GOGC pinned as a train-throughput smoke.
func BenchmarkTrainAllSerial(b *testing.B) {
	w := nasaWorkload(b)
	seqs := sim.URLSequences(benchSessions(b, w, 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		markov.TrainAll(NewStandardPPM(PPMConfig{Height: 3}), seqs)
	}
}

// BenchmarkTrainAllParallel is the same workload through
// markov.TrainAllParallel: sessions sharded by head URL across
// GOMAXPROCS workers and merged. On a single-CPU runner it falls back
// to serial, so the pair also guards against the sharding machinery
// regressing the serial path.
func BenchmarkTrainAllParallel(b *testing.B) {
	w := nasaWorkload(b)
	seqs := sim.URLSequences(benchSessions(b, w, 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		markov.TrainAllParallel(NewStandardPPM(PPMConfig{Height: 3}), seqs)
	}
}

// BenchmarkReplayDay measures the simulator replaying one full test day
// against a trained PB-PPM model.
func BenchmarkReplayDay(b *testing.B) {
	w := nasaWorkload(b)
	train := benchSessions(b, w, 5)
	test := w.DaySessions(5, 6)
	rank := experiments.Ranking(train)
	m := NewPopularityPPM(rank, PopularityPPMConfig{RelProbCutoff: 0.01, DropSingletons: true})
	sim.Train(m, train)
	opt := sim.Options{
		Predictor: m, MaxPrefetchBytes: sim.PBMaxPrefetchBytes,
		Path: w.Path, Grades: rank, Sizes: w.Sizes,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(test, opt)
	}
}

// BenchmarkGenerateTrace measures synthetic workload generation.
func BenchmarkGenerateTrace(b *testing.B) {
	p := tracegen.NASA()
	p.Days = 2
	for i := 0; i < b.N; i++ {
		if _, err := tracegen.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionize measures session splitting and embedded-object
// folding over the full NASA-like trace.
func BenchmarkSessionize(b *testing.B) {
	w := nasaWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		session.Sessionize(w.Trace, session.Config{})
	}
}

// BenchmarkParseCLF measures Common Log Format parsing.
func BenchmarkParseCLF(b *testing.B) {
	w := nasaWorkload(b)
	var sb strings.Builder
	for _, r := range w.Trace.Records[:1000] {
		sb.WriteString(trace.MarshalCLF(r))
		sb.WriteByte('\n')
	}
	text := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := trace.ReadCLF(strings.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselinesTop10 regenerates the related-work comparison:
// context-free Top-10 pushing vs the three context models.
func BenchmarkBaselinesTop10(b *testing.B) {
	w := nasaWorkload(b)
	for i := 0; i < b.N; i++ {
		bl, err := experiments.RunBaselines(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bl.Result(experiments.ModelTop10).HitRatio(), "Top10-hit")
		b.ReportMetric(bl.Result(experiments.ModelPB).HitRatio(), "PB-hit")
	}
}

// BenchmarkAblationCachePolicy compares LRU vs GDSF browser caches.
func BenchmarkAblationCachePolicy(b *testing.B) {
	w := nasaWorkload(b)
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunAblationCachePolicy(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Rows[0].Result.HitRatio(), "LRU-hit")
		b.ReportMetric(a.Rows[1].Result.HitRatio(), "GDSF-hit")
	}
}

// BenchmarkAblationBlending compares longest-match and variable-order
// blended prediction on the standard model.
func BenchmarkAblationBlending(b *testing.B) {
	w := nasaWorkload(b)
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunAblationBlending(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Rows[0].Result.HitRatio(), "longest-hit")
		b.ReportMetric(a.Rows[1].Result.HitRatio(), "blended-hit")
	}
}

// BenchmarkAblationOnlineTraining compares frozen vs online-updated
// PB-PPM during the evaluation day.
func BenchmarkAblationOnlineTraining(b *testing.B) {
	w := nasaWorkload(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationOnlineTraining(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaintenance runs the static-vs-daily-rebuild study.
func BenchmarkMaintenance(b *testing.B) {
	w := nasaWorkload(b)
	for i := 0; i < b.N; i++ {
		m, err := experiments.RunMaintenance(w)
		if err != nil {
			b.Fatal(err)
		}
		last := len(m.Days) - 1
		b.ReportMetric(m.Static[last].HitRatio(), "static-hit-day7")
		b.ReportMetric(m.Daily[last].HitRatio(), "daily-hit-day7")
	}
}
