// Command loadbench drives open-loop HTTP load against a running
// prefetchd and reports latency under load, error rates, the server's
// /debug/slo verdicts, and — with -find-max — the highest steady
// request rate the server sustains under an SLO gate.
//
// The generator is open-loop: arrivals fire on a fixed schedule
// whether or not earlier requests completed, and every latency is
// measured from the request's *scheduled* arrival time, so a stalling
// server shows up as latency and timeouts instead of silently slowing
// the generator down (coordinated omission). The generator watches its
// own schedule lag (pbppm_loadgen_lag_seconds); -max-lag-p99 turns
// that into an exit-code gate so a saturated load generator is never
// reported as a slow server.
//
// Virtual clients are protocol-coherent: they walk the same synthetic
// site the server was booted with (popular session heads, primary-link
// continuations, hub returns) and follow X-Prefetch hints into a
// browser cache, so the measured latency distribution includes the
// prefetching wins the paper claims.
//
// Usage:
//
//	loadbench -server http://127.0.0.1:8080 [-admin http://127.0.0.1:8081]
//	          [-profile nasa|ucbcs] [-pages N] [-seed N] [-clients N]
//	          [-timeout 5s] [-self-admin addr]
//	          -mode steady|sweep|burst|diurnal
//	          [-rps 50] [-duration 60s] [-slot 10s]
//	          [-start 10 -step 10 -target 100]
//	          [-burst-mult 4 -burst-shift 50 -burst-cold 0.5]
//	          [-diurnal-slots 12] [-cold 0]
//	          [-find-max] [-fm-start 25] [-fm-trial 10s] [-fm-max-rps 0]
//	          [-gate-quantile 0.99] [-gate-latency 250ms]
//	          [-gate-errors 0.01] [-gate-lag 50ms]
//	          [-max-lag-p99 0] [-bench-out BENCH_capacity.json]
//	          [-bench-robust] [-compare baseline.json]
//	          [-tol-wall 0.5] [-tol-metric 0.05] [-workload-name name]
//	          [-cluster N | -cluster-sweep 1,2,4] [-rebalance join|leave]
//	          [-warm-days 2]
//
// Cluster modes boot an in-process consistent-hash sharded cluster
// (internal/cluster) instead of targeting -server: -cluster N drives
// one N-shard cluster, -cluster-sweep runs the scenario against a
// fresh cluster per shard count and records one artifact record each,
// and -rebalance joins or removes a shard halfway through a single
// -cluster run, reporting the sessions remapped and hints orphaned.
//
// Exit codes: 0 ok, 1 run error, 2 bad flags, 3 regression vs the
// -compare baseline, 4 the -max-lag-p99 self-gate tripped, 5 the
// -find-max search was generator-limited before finding a failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"net/http"

	"pbppm/internal/benchreport"
	"pbppm/internal/cluster"
	"pbppm/internal/loadgen"
	"pbppm/internal/metrics"
	"pbppm/internal/obs"
	"pbppm/internal/tracegen"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		serverURL = flag.String("server", "http://127.0.0.1:8080", "prefetching server root URL")
		adminURL  = flag.String("admin", "", "server admin root URL; polls /debug/slo at slot boundaries when set")
		profile   = flag.String("profile", "nasa", "site profile the server was booted with: nasa or ucbcs")
		pages     = flag.Int("pages", 0, "override the profile's page count (must match the server's -pages)")
		sessDay   = flag.Int("sessions-per-day", 0, "override the profile's mean sessions per day of warm history (cluster modes)")
		seed      = flag.Int64("seed", 1, "RNG seed for the request sequence (same seed = same sequence)")
		clients   = flag.Int("clients", 100, "warm virtual-client pool size")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		selfAdmin = flag.String("self-admin", "", "serve the generator's own /metrics on this address; empty disables")

		mode     = flag.String("mode", "steady", "scenario: steady, sweep, burst, or diurnal")
		rps      = flag.Float64("rps", 50, "arrival rate (steady base, burst base, diurnal peak)")
		duration = flag.Duration("duration", 60*time.Second, "total steady duration")
		slotDur  = flag.Duration("slot", 10*time.Second, "reporting slot length")

		sweepStart  = flag.Float64("start", 10, "sweep: first step's rate")
		sweepStep   = flag.Float64("step", 10, "sweep: rate increment per step")
		sweepTarget = flag.Float64("target", 100, "sweep: last step's rate")

		burstMult  = flag.Float64("burst-mult", 4, "burst: peak multiplier over -rps")
		burstShift = flag.Int("burst-shift", 50, "burst: popularity ranks the entry set shifts down during the burst")
		burstCold  = flag.Float64("burst-cold", 0.5, "burst: fraction of burst arrivals from never-seen clients")
		diSlots    = flag.Int("diurnal-slots", 12, "diurnal: slots per compressed day")
		coldShare  = flag.Float64("cold", 0, "fraction of arrivals from never-seen clients (all modes)")

		clusterN     = flag.Int("cluster", 0, "boot an in-process N-shard cluster and drive it instead of -server; 0 targets -server")
		clusterSweep = flag.String("cluster-sweep", "", "comma-separated shard counts (e.g. \"1,2,4\"): run -mode against a fresh cluster per count, one artifact record each")
		rebalance    = flag.String("rebalance", "", "with -cluster: \"join\" or \"leave\" a shard halfway through the run and report the remap cost")
		warmDays     = flag.Int("warm-days", 2, "cluster modes: days of warm-training history for the booted cluster")

		findMax  = flag.Bool("find-max", false, "binary-search the max sustainable RPS instead of running -mode")
		fmStart  = flag.Float64("fm-start", 25, "find-max: starting rate")
		fmTrial  = flag.Duration("fm-trial", 10*time.Second, "find-max: measured duration per trial")
		fmMaxRPS = flag.Float64("fm-max-rps", 0, "find-max: rate cap (0 = unbounded, stops on the lag gate)")

		gateQ   = flag.Float64("gate-quantile", 0.99, "gate: latency/lag quantile to read")
		gateLat = flag.Duration("gate-latency", 250*time.Millisecond, "gate: max on-schedule latency at the quantile")
		gateErr = flag.Float64("gate-errors", 0.01, "gate: max error rate")
		gateLag = flag.Duration("gate-lag", 50*time.Millisecond, "gate: max generator schedule lag at the quantile")

		maxLagP99 = flag.Duration("max-lag-p99", 0, "fail (exit 4) when the run's overall lag p99 exceeds this; 0 disables")

		benchOut    = flag.String("bench-out", "", "write a BENCH_*.json capacity artifact to this file")
		benchRobust = flag.Bool("bench-robust", false, "record only machine-robust metrics (rates, error rate) in the artifact, omitting latency quantiles — for cross-machine CI gates")
		compareTo   = flag.String("compare", "", "compare against a baseline BENCH_*.json and fail (exit 3) on regression")
		tolWall     = flag.Float64("tol-wall", 0.5, "allowed relative wall-time/throughput change for -compare")
		tolMetric   = flag.Float64("tol-metric", 0.05, "allowed relative metric change for -compare")
		workload    = flag.String("workload-name", "", "workload label in the artifact; defaults to the profile name")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "loadbench: %v\n", err)
		return 1
	}

	var p tracegen.Profile
	switch *profile {
	case "nasa":
		p = tracegen.NASA()
	case "ucbcs":
		p = tracegen.UCBCS()
	default:
		fmt.Fprintf(os.Stderr, "loadbench: unknown profile %q\n", *profile)
		return 2
	}
	if *pages > 0 {
		p.Pages = *pages
	}
	if *sessDay > 0 {
		p.SessionsPerDay = *sessDay
	}
	site, err := tracegen.BuildSite(p)
	if err != nil {
		return fail(err)
	}

	buildScenario := func() (loadgen.Scenario, error) {
		var sc loadgen.Scenario
		switch *mode {
		case "steady":
			sc = loadgen.Steady(*rps, *duration, *slotDur)
		case "sweep":
			sc = loadgen.Sweep(*sweepStart, *sweepStep, *sweepTarget, *slotDur)
		case "burst":
			sc = loadgen.Burst(*rps, *burstMult, *slotDur, *burstShift, *burstCold)
		case "diurnal":
			sc = loadgen.Diurnal(*rps, *diSlots, *slotDur)
		default:
			return sc, fmt.Errorf("unknown mode %q", *mode)
		}
		if *coldShare > 0 {
			for i := range sc.Slots {
				if sc.Slots[i].ColdShare == 0 {
					sc.Slots[i].ColdShare = *coldShare
				}
			}
		}
		return sc, nil
	}

	reg := obs.NewRegistry()
	if *selfAdmin != "" {
		mux := obs.NewAdminMux(reg, nil)
		go func() {
			if err := http.ListenAndServe(*selfAdmin, mux); err != nil {
				fmt.Fprintf(os.Stderr, "loadbench: self-admin: %v\n", err)
			}
		}()
	}

	gen, err := loadgen.New(loadgen.Config{
		ServerURL: *serverURL,
		AdminURL:  *adminURL,
		Site:      site,
		Profile:   p,
		Clients:   *clients,
		Seed:      *seed,
		Timeout:   *timeout,
		Obs:       reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "loadbench: "+format+"\n", args...)
		},
	})
	if err != nil {
		return fail(err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	gate := loadgen.Gate{
		Quantile: *gateQ, MaxLatency: *gateLat,
		MaxErrorRate: *gateErr, MaxLag: *gateLag, MaxRPS: *fmMaxRPS,
	}

	report := benchreport.New("loadbench", "")
	wname := *workload
	if wname == "" {
		wname = p.Name
	}

	var overallLag time.Duration
	clusterCounts, err := parseClusterCounts(*clusterSweep, *clusterN)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadbench: %v\n", err)
		return 2
	}
	if clusterCounts != nil {
		if *rebalance != "" && (len(clusterCounts) != 1 || *findMax) {
			fmt.Fprintln(os.Stderr, "loadbench: -rebalance needs a single -cluster N scenario run")
			return 2
		}
		code := runClusterBench(ctx, clusterOpts{
			site: site, profile: p, counts: clusterCounts,
			warmDays: *warmDays, clients: *clients, seed: *seed, timeout: *timeout,
			scenario: buildScenario, findMax: *findMax, fmStart: *fmStart,
			fmTrial: *fmTrial, gate: gate, rebalance: *rebalance, mode: *mode,
			robust: *benchRobust, wname: wname,
			logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "loadbench: "+format+"\n", args...)
			},
		}, report)
		if code != 0 {
			return code
		}
	} else {
		var (
			runResult  *loadgen.Result
			fm         *loadgen.FindMaxResult
			experiment string
		)
		m, err := benchreport.Measure(func() error {
			if *findMax {
				experiment = "capacity-findmax"
				var err error
				fm, err = gen.FindMax(ctx, *fmStart, *fmTrial, gate)
				return err
			}
			experiment = "capacity-" + *mode
			sc, err := buildScenario()
			if err != nil {
				return err
			}
			runResult, err = gen.Run(ctx, sc)
			return err
		})
		if err != nil {
			return fail(err)
		}

		rec := benchreport.Record{
			Experiment:  experiment,
			Workload:    wname,
			WallSeconds: m.Wall.Seconds(),
			AllocBytes:  m.AllocBytes,
			Metrics:     map[string]float64{},
		}

		if fm != nil {
			printFindMax(fm)
			rec.Metrics["max_sustainable_rps"] = fm.MaxSustainableRPS
			for _, t := range fm.Trials {
				overallLag = maxDur(overallLag, t.Result.Lag.Quantile(0.999))
			}
			if fm.GeneratorLimited {
				fmt.Fprintln(os.Stderr, "loadbench: search was GENERATOR-LIMITED: the reported capacity is a lower bound")
				return 5
			}
		} else {
			printRun(runResult)
			lat, lag := runResult.Latency(), runResult.Lag()
			rec.Events = runResult.Completed()
			if m.Wall > 0 {
				rec.EventsPerSec = float64(runResult.Completed()) / m.Wall.Seconds()
			}
			rec.Metrics["achieved_rps"] = runResult.AchievedRPS()
			rec.Metrics["error_rate"] = runResult.ErrorRate()
			if !*benchRobust {
				rec.Metrics["latency_p50_seconds"] = lat.Quantile(0.50).Seconds()
				rec.Metrics["latency_p99_seconds"] = lat.Quantile(0.99).Seconds()
				rec.Metrics["latency_p999_seconds"] = lat.Quantile(0.999).Seconds()
				rec.Metrics["lag_p99_seconds"] = lag.Quantile(0.99).Seconds()
			}
			overallLag = lag.Quantile(0.99)
		}
		report.Add(rec)
	}

	if *benchOut != "" {
		if err := benchreport.WriteFile(*benchOut, report); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "loadbench: capacity artifact written to %s\n", *benchOut)
	}
	if *compareTo != "" {
		baseline, err := benchreport.ReadFile(*compareTo)
		if err != nil {
			return fail(err)
		}
		cmp := benchreport.Compare(baseline, report,
			benchreport.Tolerances{WallTime: *tolWall, Metric: *tolMetric})
		fmt.Print(cmp)
		if !cmp.OK() {
			fmt.Fprintf(os.Stderr, "loadbench: %d metrics regressed beyond tolerance vs %s\n",
				len(cmp.Regressions()), *compareTo)
			return 3
		}
	}
	if *maxLagP99 > 0 && overallLag > *maxLagP99 {
		fmt.Fprintf(os.Stderr, "loadbench: schedule lag p99 %v exceeds -max-lag-p99 %v: the generator could not hold the schedule\n",
			overallLag, *maxLagP99)
		return 4
	}
	return 0
}

// parseClusterCounts resolves -cluster/-cluster-sweep into the shard
// counts to bench; nil means cluster mode is off.
func parseClusterCounts(sweep string, single int) ([]int, error) {
	if sweep != "" {
		var counts []int
		for _, f := range strings.Split(sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad -cluster-sweep entry %q", f)
			}
			counts = append(counts, n)
		}
		return counts, nil
	}
	if single > 0 {
		return []int{single}, nil
	}
	return nil, nil
}

// clusterOpts carries the flag state into the cluster bench loop.
type clusterOpts struct {
	site      *tracegen.Site
	profile   tracegen.Profile
	counts    []int
	warmDays  int
	clients   int
	seed      int64
	timeout   time.Duration
	scenario  func() (loadgen.Scenario, error)
	findMax   bool
	fmStart   float64
	fmTrial   time.Duration
	gate      loadgen.Gate
	rebalance string
	mode      string
	robust    bool
	wname     string
	logf      func(string, ...any)
}

// runClusterBench boots a fresh in-process cluster per shard count,
// drives the selected scenario (or find-max search) against its
// router, and appends one record per count — the aggregate capacity
// curve across cluster sizes. With -rebalance, a shard joins or leaves
// halfway through the single run and the remap cost lands in the
// record and on stderr.
func runClusterBench(ctx context.Context, o clusterOpts, report *benchreport.Report) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "loadbench: %v\n", err)
		return 1
	}
	for _, n := range o.counts {
		h, err := loadgen.BootCluster(loadgen.ClusterConfig{
			Shards:   n,
			Site:     o.site,
			Profile:  o.profile,
			WarmDays: o.warmDays,
			Obs:      obs.NewRegistry(),
			Logf:     o.logf,
		})
		if err != nil {
			return fail(err)
		}
		gen, err := loadgen.New(loadgen.Config{
			ServerURL: h.URL,
			Site:      o.site,
			Profile:   o.profile,
			Clients:   o.clients,
			Seed:      o.seed,
			Timeout:   o.timeout,
			Obs:       obs.NewRegistry(),
			Logf:      o.logf,
		})
		if err != nil {
			h.Close()
			return fail(err)
		}

		// Schedule the mid-run rebalance before traffic starts.
		var rebMu sync.Mutex
		var rebRep *cluster.RebalanceReport
		var rebTimer *time.Timer
		if o.rebalance != "" {
			sc, err := o.scenario()
			if err != nil {
				h.Close()
				return fail(err)
			}
			var total time.Duration
			for _, s := range sc.Slots {
				total += s.Duration
			}
			clu := h.Cluster
			rebTimer = time.AfterFunc(total/2, func() {
				var rep cluster.RebalanceReport
				var err error
				switch o.rebalance {
				case "join":
					_, rep = clu.AddShard()
				case "leave":
					ids := clu.ShardIDs()
					rep, err = clu.RemoveShard(ids[len(ids)-1])
				}
				rebMu.Lock()
				defer rebMu.Unlock()
				if err != nil {
					o.logf("rebalance %s failed: %v", o.rebalance, err)
					return
				}
				rebRep = &rep
			})
		}

		var (
			runResult  *loadgen.Result
			fm         *loadgen.FindMaxResult
			experiment string
		)
		m, err := benchreport.Measure(func() error {
			if o.findMax {
				experiment = "cluster-findmax"
				var err error
				fm, err = gen.FindMax(ctx, o.fmStart, o.fmTrial, o.gate)
				return err
			}
			experiment = "cluster-capacity-" + o.mode
			sc, err := o.scenario()
			if err != nil {
				return err
			}
			runResult, err = gen.Run(ctx, sc)
			return err
		})
		if rebTimer != nil {
			rebTimer.Stop()
		}
		st := h.Cluster.Stats()
		h.Close()
		if err != nil {
			return fail(err)
		}

		rec := benchreport.Record{
			Experiment:  experiment,
			Workload:    fmt.Sprintf("%s-shards%d", o.wname, n),
			WallSeconds: m.Wall.Seconds(),
			AllocBytes:  m.AllocBytes,
			Metrics:     map[string]float64{"shards": float64(n)},
		}
		if fm != nil {
			printFindMax(fm)
			rec.Metrics["max_sustainable_rps"] = fm.MaxSustainableRPS
			if fm.GeneratorLimited {
				fmt.Fprintln(os.Stderr, "loadbench: search was GENERATOR-LIMITED: the reported capacity is a lower bound")
				return 5
			}
		} else {
			printRun(runResult)
			lat, lag := runResult.Latency(), runResult.Lag()
			rec.Events = runResult.Completed()
			if m.Wall > 0 {
				rec.EventsPerSec = float64(runResult.Completed()) / m.Wall.Seconds()
			}
			rec.Metrics["achieved_rps"] = runResult.AchievedRPS()
			rec.Metrics["error_rate"] = runResult.ErrorRate()
			if !o.robust {
				rec.Metrics["latency_p50_seconds"] = lat.Quantile(0.50).Seconds()
				rec.Metrics["latency_p99_seconds"] = lat.Quantile(0.99).Seconds()
				rec.Metrics["latency_p999_seconds"] = lat.Quantile(0.999).Seconds()
				rec.Metrics["lag_p99_seconds"] = lag.Quantile(0.99).Seconds()
			}
		}
		fmt.Printf("cluster shards=%d: demand %d, hints issued %d, hint hits %d, reports unmatched %d\n",
			n, st.DemandRequests, st.HintsIssued, st.HintHits, st.HintReportsUnmatched)
		rebMu.Lock()
		if rebRep != nil {
			rec.Metrics["sessions_remapped"] = float64(rebRep.SessionsRemapped)
			rec.Metrics["hints_orphaned"] = float64(rebRep.HintsOrphaned)
			fmt.Printf("rebalance %s (shard %d, %d shards after): %d sessions remapped, %d hints orphaned\n",
				rebRep.Kind, rebRep.Shard, rebRep.ShardsAfter, rebRep.SessionsRemapped, rebRep.HintsOrphaned)
		}
		rebMu.Unlock()
		report.Add(rec)
	}
	return 0
}

func maxDur(a, b time.Duration) time.Duration {
	if b > a {
		return b
	}
	return a
}

// printRun renders the per-slot table: the latency staircase a sweep
// produces is the capacity story at a glance.
func printRun(res *loadgen.Result) {
	tb := &metrics.Table{
		Title: fmt.Sprintf("Open-loop load: %s scenario", res.Scenario),
		Headers: []string{"slot", "target", "achieved", "disp", "ok", "err",
			"cache+pf", "p50", "p99", "p999", "lag p99", "slo"},
	}
	for _, s := range res.Slots {
		slo := "-"
		if s.SLO != nil {
			slo = s.SLO.State
		}
		tb.AddRow(s.Slot.Label,
			fmt.Sprintf("%.4g", s.Slot.RPS),
			fmt.Sprintf("%.4g", s.AchievedRPS()),
			fmt.Sprintf("%d", s.Dispatched),
			fmt.Sprintf("%d", s.Completed),
			fmt.Sprintf("%d", s.Errors()),
			fmt.Sprintf("%d", s.CacheHits+s.PrefetchHits),
			fmtDur(s.Latency.Quantile(0.50)),
			fmtDur(s.Latency.Quantile(0.99)),
			fmtDur(s.Latency.Quantile(0.999)),
			fmtDur(s.Lag.Quantile(0.99)),
			slo)
	}
	fmt.Print(tb)
	fmt.Printf("overall: %.4g rps achieved, %d/%d ok, error rate %.4f, latency p99 %v, lag p99 %v\n",
		res.AchievedRPS(), res.Completed(), res.Dispatched(), res.ErrorRate(),
		fmtDurD(res.Latency().Quantile(0.99)), fmtDurD(res.Lag().Quantile(0.99)))
}

// printFindMax renders the trial ladder and the headline capacity.
func printFindMax(fm *loadgen.FindMaxResult) {
	tb := &metrics.Table{
		Title:   "Max-sustainable-RPS search",
		Headers: []string{"trial", "rps", "verdict", "achieved", "err rate", "p99", "reason"},
	}
	for i, t := range fm.Trials {
		verdict := "FAIL"
		if t.Pass {
			verdict = "pass"
		}
		tb.AddRow(fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.4g", t.RPS),
			verdict,
			fmt.Sprintf("%.4g", t.Result.AchievedRPS()),
			fmt.Sprintf("%.4f", t.Result.ErrorRate()),
			fmtDur(t.Result.Latency.Quantile(0.99)),
			t.Reason)
	}
	fmt.Print(tb)
	note := ""
	if fm.CeilingReached {
		note = " (search ceiling: true capacity is at least this)"
	}
	if fm.GeneratorLimited {
		note = " (generator-limited: true capacity is at least this)"
	}
	fmt.Printf("max_sustainable_rps: %.4g%s\n", fm.MaxSustainableRPS, note)
}

func fmtDur(d time.Duration) string { return fmtDurD(d).String() }
func fmtDurD(d time.Duration) time.Duration {
	return d.Round(10 * time.Microsecond)
}
