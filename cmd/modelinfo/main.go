// Command modelinfo inspects a persisted prediction model: node and
// leaf counts, depth histogram, memory estimate, and the hottest
// branches. Models are written with the Encode methods of the pb, ppm,
// and lrs model types (see cmd/prefetchsim and the library API).
//
// Usage:
//
//	modelinfo -type pb|ppm|lrs model.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"pbppm/internal/core"
	"pbppm/internal/lrs"
	"pbppm/internal/markov"
	"pbppm/internal/popularity"
	"pbppm/internal/ppm"
)

func main() {
	modelType := flag.String("type", "pb", "model type: pb, ppm, or lrs")
	top := flag.Int("top", 10, "hot branches to list")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: modelinfo -type pb|ppm|lrs model.bin")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "modelinfo: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	// Decode to the common Predictor interface; everything below goes
	// through markov.StatsOf / markov.TreeHolder so model statistics
	// have a single implementation shared with the benchmark artifacts
	// and the server's model-health gauges.
	var pred markov.Predictor
	var extra string
	switch *modelType {
	case "pb":
		// Grades are not persisted with the model; an empty ranking is
		// enough for inspection (grades only matter for training).
		m, err := core.DecodeModel(f, popularity.NewRanking())
		if err != nil {
			fatal(err)
		}
		pred = m
		extra = fmt.Sprintf("duplicated links: %d\n", m.LinkCount())
	case "ppm":
		m, err := ppm.DecodeModel(f)
		if err != nil {
			fatal(err)
		}
		pred = m
		extra = fmt.Sprintf("model: %s\n", m.Name())
	case "lrs":
		m, err := lrs.DecodeModel(f)
		if err != nil {
			fatal(err)
		}
		pred = m
		extra = fmt.Sprintf("repeating patterns: %d\n", len(m.Patterns()))
	default:
		fmt.Fprintf(os.Stderr, "modelinfo: unknown type %q\n", *modelType)
		os.Exit(2)
	}

	st, ok := markov.StatsOf(pred)
	if !ok {
		fatal(fmt.Errorf("model %s exposes no prediction tree", pred.Name()))
	}
	fmt.Printf("%s (%s)\n", flag.Arg(0), *modelType)
	fmt.Print(st)
	fmt.Print(extra)
	if *top > 0 {
		fmt.Println("hot branches:")
		for _, b := range pred.(markov.TreeHolder).Tree().TopBranches(*top) {
			fmt.Printf("  %-40s %.3f\n", b.URL, b.Probability)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "modelinfo: %v\n", err)
	os.Exit(1)
}
