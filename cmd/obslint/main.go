// Command obslint validates a Prometheus text exposition against the
// format rules and naming conventions enforced by
// obs.ValidateExposition: HELP/TYPE before samples, no duplicate
// series, parseable values, counters ending in _total, no reserved
// suffixes on gauges and histograms.
//
// The exposition is read from -url (a live /metrics endpoint), from a
// file argument, or from stdin:
//
//	obslint -url http://localhost:8081/metrics
//	curl -s http://localhost:8081/metrics | obslint
//	obslint exposition.txt
//
// It exits 0 on a clean exposition and 1 with the violation on a bad
// one, so CI can gate on a live scrape.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"pbppm/internal/obs"
)

func main() {
	url := flag.String("url", "", "scrape this endpoint instead of reading a file or stdin")
	flag.Parse()

	text, src, err := read(*url, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "obslint: %v\n", err)
		os.Exit(1)
	}
	if err := obs.ValidateExposition(text); err != nil {
		fmt.Fprintf(os.Stderr, "obslint: %s: %v\n", src, err)
		os.Exit(1)
	}
	fmt.Printf("obslint: %s: ok\n", src)
}

// read resolves the input precedence: -url, then a file argument, then
// stdin.
func read(url string, args []string) (text, src string, err error) {
	switch {
	case url != "":
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Get(url)
		if err != nil {
			return "", "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", "", fmt.Errorf("%s: status %s", url, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", "", err
		}
		return string(body), url, nil
	case len(args) > 0:
		body, err := os.ReadFile(args[0])
		if err != nil {
			return "", "", err
		}
		return string(body), args[0], nil
	default:
		body, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", "", err
		}
		return string(body), "stdin", nil
	}
}
