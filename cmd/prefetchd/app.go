package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"pbppm/internal/cluster"
	"pbppm/internal/core"
	"pbppm/internal/maintain"
	"pbppm/internal/markov"
	"pbppm/internal/obs"
	"pbppm/internal/popularity"
	"pbppm/internal/quality"
	"pbppm/internal/server"
	"pbppm/internal/session"
	"pbppm/internal/tracegen"
)

// appConfig is the parsed flag set; main fills it from the command
// line, tests construct it directly.
type appConfig struct {
	addr        string
	adminAddr   string
	profileName string
	rebuild     time.Duration
	deltaEvery  time.Duration
	compactNear time.Duration
	traceSample int
	slo         string
	sloFile     string
	liveWindow  time.Duration

	// warmDays sizes the generated warm-start history; tests and load
	// benchmarks shrink it for fast boots.
	warmDays int
	// pages / sessionsPerDay override the profile's site size and
	// traffic density when positive, so a capacity run can boot a small
	// server in seconds. A load generator hitting this server must use
	// the same overrides or its walkers will 404.
	pages          int
	sessionsPerDay int
	// maxHints overrides the per-response hint cap when positive.
	maxHints int
	// shards > 1 serves through an in-process consistent-hash cluster
	// (internal/cluster): a router tier hashing client identity onto
	// that many shard servers, each holding the replicated model.
	shards int
	// routerAddr names a trusted upstream router host. In single-server
	// mode the server honors X-Client-ID only from this peer; in
	// cluster mode it is the cluster router's own ingress trust. Empty
	// keeps the legacy trust-any-peer contract.
	routerAddr string
	// snapshotAddr, when set, runs this process as a snapshot follower:
	// instead of training locally it polls the named publisher endpoint
	// (another prefetchd's admin /snapshot) and installs each validated
	// model + ranking through the crash-safe publish gate. Warm-start
	// training and the maintenance loops are skipped; the process serves
	// without hints until the first snapshot installs.
	snapshotAddr string
	// snapshotPoll paces the follower's poll loop; zero selects the
	// follower default. Each poll long-polls the publisher, so a new
	// version normally propagates in one round trip.
	snapshotPoll time.Duration
}

// serving abstracts the request tier — one server.Server, or the
// cluster router in front of N of them. Everything the app reads or
// publishes goes through this surface, so both deployments share the
// maintenance loop, SLO engine, and admin endpoints.
type serving interface {
	http.Handler
	Stats() server.Stats
	QualityTotal() quality.Snapshot
	ExpireSessions() int
	BindSLIs(*obs.SLOEngine)
	SetPredictor(markov.Predictor)
	SetGrader(popularity.Grader)
}

// defaultSLO is the out-of-the-box objective set: demand latency plus
// the paper's two headline quality metrics, evaluated over the live
// rolling windows.
const defaultSLO = "name=demand-latency,kind=latency,threshold=200ms,target=0.95"

// app is the assembled process: model, server, maintenance, SLO
// engine, and the two HTTP listeners. newApp builds everything without
// binding a socket; run serves until the context is cancelled, then
// drains and logs the final quality and SLO snapshot.
type app struct {
	cfg    appConfig
	log    *slog.Logger
	reg    *obs.Registry
	tracer *obs.Tracer
	maint  *maintain.Maintainer
	srv    *server.Server    // single-server mode; nil when sharded
	clu    *cluster.Cluster  // cluster mode; nil when single-server
	serve  serving           // whichever of srv/clu is active
	engine *obs.SLOEngine
	ann    *obs.Annotations
	pub    *maintain.Publisher // serves /snapshot; nil in follower mode
	fol    *maintain.Follower  // polls -snapshot-addr; nil otherwise

	web   *http.Server
	admin *http.Server // nil when cfg.adminAddr is empty

	webLn   net.Listener
	adminLn net.Listener

	pages   int
	profile tracegen.Profile
}

// loadObjectives resolves the SLO configuration: -slo-file wins when
// set (file grammar = flag grammar plus newlines and # comments),
// otherwise the -slo flag string.
func loadObjectives(cfg appConfig) ([]obs.Objective, error) {
	src := cfg.slo
	if cfg.sloFile != "" {
		raw, err := os.ReadFile(cfg.sloFile)
		if err != nil {
			return nil, fmt.Errorf("reading -slo-file: %w", err)
		}
		src = string(raw)
	}
	return obs.ParseObjectives(src)
}

// newApp builds the full process from cfg: synthetic site, warm-start
// model, maintainer with publish annotations, hint-serving server with
// live scoring, SLO engine bound to the server's SLIs, and both HTTP
// servers (unbound; run or listen binds them).
func newApp(cfg appConfig, logger *slog.Logger) (*app, error) {
	if cfg.warmDays <= 0 {
		cfg.warmDays = 3
	}
	a := &app{cfg: cfg, log: obs.Component(logger, "prefetchd")}

	var p tracegen.Profile
	switch cfg.profileName {
	case "nasa":
		p = tracegen.NASA()
	case "ucbcs":
		p = tracegen.UCBCS()
	default:
		return nil, fmt.Errorf("unknown profile %q", cfg.profileName)
	}
	if cfg.pages > 0 {
		p.Pages = cfg.pages
	}
	if cfg.sessionsPerDay > 0 {
		p.SessionsPerDay = cfg.sessionsPerDay
	}
	a.profile = p

	site, err := tracegen.BuildSite(p)
	if err != nil {
		return nil, fmt.Errorf("building site: %w", err)
	}
	store := storeFromSite(site)
	a.pages = len(site.Pages)

	// Warm-start: train on a generated history of the same site. A
	// snapshot follower skips this — its model arrives over the wire
	// from the publisher, which trained the real one.
	var sessions []session.Session
	warm := p
	warm.Days = cfg.warmDays
	var warmEpoch time.Time
	if cfg.snapshotAddr == "" {
		tr, err := tracegen.GenerateOn(site, warm)
		if err != nil {
			return nil, fmt.Errorf("generating warm history: %w", err)
		}
		sessions = session.Sessionize(tr, session.Config{})
		warmEpoch = tr.Epoch
	}

	a.reg = obs.NewRegistry()
	a.tracer = obs.NewTracer(a.reg, cfg.traceSample)
	a.ann = obs.NewAnnotations()

	objectives, err := loadObjectives(cfg)
	if err != nil {
		return nil, err
	}
	a.engine = obs.NewSLOEngine(objectives)
	a.engine.SetAnnotations(a.ann)
	a.engine.Register(a.reg)

	factory := func(rank *popularity.Ranking) markov.Predictor {
		return core.New(rank, core.Config{RelProbCutoff: 0.01, DropSingletons: true})
	}
	// The serving tier is constructed after the maintainer (the warm
	// model feeds its Config), so OnPublish closes over the app; the
	// serve field is assigned before the maintenance loop publishes.
	a.maint, err = maintain.New(maintain.Config{
		Factory:     factory,
		Obs:         a.reg,
		Logger:      logger,
		Annotations: a.ann,
		OnPublish: func(p markov.Predictor) {
			if a.serve == nil {
				return
			}
			// In cluster mode this fans the frozen arena snapshot out to
			// every shard; each swaps its predictor pointer atomically.
			a.serve.SetPredictor(p)
			// Compactions re-derive the popularity ranking; regrade
			// live hint events with the one the new model was built
			// from. Delta merges keep the previous ranking.
			if r := a.maint.Ranking(); r != nil {
				a.serve.SetGrader(r)
			}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("creating maintainer: %w", err)
	}
	var model markov.Predictor
	if cfg.snapshotAddr == "" {
		// The warm history carries the generator's synthetic timestamps;
		// shift each session to end "now" minus its age within the history
		// so the sliding window keeps all of it.
		shift := time.Since(warmEpoch.Add(time.Duration(warm.Days) * 24 * time.Hour))
		for _, s := range sessions {
			shifted := s
			shifted.Views = make([]session.PageView, len(s.Views))
			for i, v := range s.Views {
				v.Time = v.Time.Add(shift)
				shifted.Views[i] = v
			}
			a.maint.Observe(shifted)
		}
		model = a.maint.Rebuild(time.Now())
		var arenaBytes int
		if ah, ok := model.(markov.ArenaHolder); ok {
			arenaBytes = ah.Arena().SizeBytes()
		}
		a.log.Info("warm model trained", "sessions", len(sessions),
			"nodes", model.NodeCount(), "arena_bytes", arenaBytes)
	} else {
		// Follower: no local model until the first snapshot installs;
		// the server serves documents without hints in the meantime.
		fol, err := maintain.NewFollower(maintain.FollowerConfig{
			URL:     cfg.snapshotAddr,
			Poll:    cfg.snapshotPoll,
			Wait:    25 * time.Second,
			Install: a.maint.InstallSnapshot,
			Obs:     a.reg,
			Logger:  logger,
		})
		if err != nil {
			return nil, fmt.Errorf("creating snapshot follower: %w", err)
		}
		a.fol = fol
		a.log.Info("snapshot follower mode", "publisher", cfg.snapshotAddr)
	}

	sc := server.Config{
		Predictor:  model,
		Obs:        a.reg,
		Tracer:     a.tracer,
		LiveWindow: cfg.liveWindow,
		MaxHints:   cfg.maxHints,
		Grades:     a.maint.Ranking(),
		// Completed live sessions flow into the maintenance window so
		// rebuilds track real traffic. Maintainer.Observe locks, so the
		// callback is safe shared across cluster shards.
		OnSessionEnd: func(client string, urls []string, last time.Time) {
			s := session.Session{Client: client}
			for i, u := range urls {
				s.Views = append(s.Views, session.PageView{
					URL:  u,
					Time: last.Add(time.Duration(i-len(urls)) * time.Minute),
				})
			}
			a.maint.Observe(s)
		},
	}
	if a.fol != nil {
		// A follower never trains: completed live sessions would only
		// accumulate in a window no rebuild will ever read.
		sc.OnSessionEnd = nil
	}
	var trusted []string
	if cfg.routerAddr != "" {
		trusted = []string{cfg.routerAddr}
	}
	if cfg.shards > 1 {
		a.clu, err = cluster.New(cluster.Config{
			Shards:       cfg.shards,
			Store:        store,
			ShardConfig:  sc,
			Obs:          a.reg,
			TrustedPeers: trusted,
		})
		if err != nil {
			return nil, fmt.Errorf("creating cluster: %w", err)
		}
		a.serve = a.clu
	} else {
		sc.TrustedPeers = trusted
		a.srv = server.New(store, sc)
		a.serve = a.srv
	}
	a.serve.BindSLIs(a.engine)

	mux := http.NewServeMux()
	mux.Handle("/", a.serve)
	a.web = &http.Server{Handler: mux}

	admin := obs.NewAdminMux(a.reg, nil)
	if a.fol == nil {
		// Publisher role: offer every published model (warm build, delta
		// merges, compactions) to out-of-process followers.
		a.pub = maintain.NewPublisher(a.maint, maintain.PublisherConfig{
			Obs:    a.reg,
			Logger: logger,
		})
		admin.Handle("/snapshot", a.pub)
	}
	admin.HandleFunc("/debug/stats", func(w http.ResponseWriter, r *http.Request) {
		writeStats(w, a.serve.Stats(), a.maint.Rebuilds(), a.maint.DeltaMerges())
	})
	admin.Handle("/debug/traces", a.tracer.TracesHandler())
	admin.Handle("/debug/slo", a.engine.Handler())
	if a.clu != nil {
		// Shard servers expose their metrics on per-shard registries;
		// mount each under /debug/shard/<id>/metrics.
		admin.HandleFunc("/debug/shard/", func(w http.ResponseWriter, r *http.Request) {
			rest := strings.TrimPrefix(r.URL.Path, "/debug/shard/")
			idStr, tail, _ := strings.Cut(rest, "/")
			id, err := strconv.Atoi(idStr)
			if err != nil || tail != "metrics" {
				http.NotFound(w, r)
				return
			}
			reg := a.clu.ShardRegistry(id)
			if reg == nil {
				http.NotFound(w, r)
				return
			}
			reg.Handler().ServeHTTP(w, r)
		})
	}
	if cfg.adminAddr != "" {
		a.admin = &http.Server{Handler: admin}
	}
	return a, nil
}

// listen binds the serving and admin sockets without serving yet, so
// callers (tests especially, with ":0" addresses) can read the bound
// addresses before traffic starts. run calls it when it has not been
// called already.
func (a *app) listen() error {
	ln, err := net.Listen("tcp", a.cfg.addr)
	if err != nil {
		return fmt.Errorf("binding %s: %w", a.cfg.addr, err)
	}
	a.webLn = ln
	if a.admin != nil {
		aln, err := net.Listen("tcp", a.cfg.adminAddr)
		if err != nil {
			ln.Close()
			a.webLn = nil
			return fmt.Errorf("binding admin %s: %w", a.cfg.adminAddr, err)
		}
		a.adminLn = aln
	}
	return nil
}

// run serves until ctx is cancelled or a listener fails, then shuts
// down gracefully: the maintenance loops stop, both listeners drain
// in-flight requests, and the final stats, live §2.3 quality, and SLO
// snapshot are logged so a terminated process leaves its last
// measurements in the log.
func (a *app) run(ctx context.Context) error {
	if a.webLn == nil {
		if err := a.listen(); err != nil {
			return err
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go a.maintLoop(ctx)

	errs := make(chan error, 2)
	go func() { errs <- a.web.Serve(a.webLn) }()
	shards := 1
	if a.clu != nil {
		shards = len(a.clu.ShardIDs())
	}
	a.log.Info("serving", "pages", a.pages, "addr", a.webLn.Addr().String(),
		"profile", a.profile.Name, "shards", shards,
		"delta_interval", a.cfg.deltaEvery,
		"compact_interval", a.cfg.compactNear, "rebuild", a.cfg.rebuild)
	if a.adminLn != nil {
		go func() { errs <- a.admin.Serve(a.adminLn) }()
		a.log.Info("admin listening", "addr", a.adminLn.Addr().String())
	}

	var runErr error
	select {
	case <-ctx.Done():
		a.log.Info("shutdown signal received")
	case err := <-errs:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			a.log.Error("listener failed", "err", err)
			runErr = err
		}
		cancel()
	}

	shutdownCtx, stop := context.WithTimeout(context.Background(), 10*time.Second)
	defer stop()
	if err := a.web.Shutdown(shutdownCtx); err != nil {
		a.log.Warn("draining serving listener", "err", err)
	}
	if a.admin != nil {
		if err := a.admin.Shutdown(shutdownCtx); err != nil {
			a.log.Warn("draining admin listener", "err", err)
		}
	}

	a.logFinal()
	return runErr
}

// logFinal emits the shutdown snapshot: request counters, the live
// paper metrics (§2.3 precision / hit ratio / traffic increase as
// scored against real client reports), and each SLO objective's
// burn-rate state.
func (a *app) logFinal() {
	st := a.serve.Stats()
	a.log.Info("final stats",
		"demand", st.DemandRequests,
		"prefetch", st.PrefetchRequests,
		"not_found", st.NotFound,
		"hints_issued", st.HintsIssued,
		"hint_fetches", st.HintFetches,
		"hint_hits", st.HintHits,
		"sessions", st.SessionsStarted,
		"rebuilds", a.maint.Rebuilds(),
		"delta_merges", a.maint.DeltaMerges())
	q := a.serve.QualityTotal()
	a.log.Info("final quality",
		"requests", q.Requests,
		"prefetched_docs", q.PrefetchedDocs,
		"prefetch_hits", q.PrefetchHits,
		"precision", q.Precision(),
		"hit_ratio", q.HitRatio(),
		"traffic_increase", q.TrafficIncrease())
	rep := a.engine.Evaluate()
	for _, o := range rep.Objectives {
		a.log.Info("final slo", "objective", o.Name, "kind", o.Kind,
			"target", o.Target, "state", o.State)
	}
}

// maintLoop runs model maintenance until ctx is cancelled. With
// delta-interval > 0 it runs the incremental schedule (delta merges
// every delta, compactions every compact); otherwise the legacy
// rebuild-only loop. Published models reach the server through
// maintain.Config.OnPublish. Client-context expiry runs on its own
// ticker so session trimming never waits behind a long compaction.
func (a *app) maintLoop(ctx context.Context) {
	stop := make(chan struct{})
	go func() {
		<-ctx.Done()
		close(stop)
	}()

	expireEvery := a.cfg.deltaEvery
	if expireEvery <= 0 {
		expireEvery = a.cfg.rebuild
	}
	go func() {
		ticker := time.NewTicker(expireEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				a.serve.ExpireSessions()
			}
		}
	}()

	if a.fol != nil {
		// Follower: the model arrives over the snapshot channel; local
		// training loops stay cold.
		a.fol.Run(ctx)
		return
	}
	if a.cfg.deltaEvery > 0 {
		a.maint.RunIncremental(a.cfg.deltaEvery, a.cfg.compactNear, stop)
		return
	}
	a.maint.Run(a.cfg.rebuild, stop)
}

// writeStats renders the plain-text stats snapshot for /debug/stats.
func writeStats(w http.ResponseWriter, st server.Stats, rebuilds, deltaMerges int) {
	fmt.Fprintf(w, "demand %d\nprefetch %d\nnot-found %d\nhints %d\nhint-fetches %d\nhint-hits %d\nsessions %d\nrebuilds %d\ndelta-merges %d\n",
		st.DemandRequests, st.PrefetchRequests, st.NotFound,
		st.HintsIssued, st.HintFetches, st.HintHits,
		st.SessionsStarted, rebuilds, deltaMerges)
}

// storeFromSite materializes synthetic bodies for every page and image.
func storeFromSite(site *tracegen.Site) server.MapStore {
	store := server.MapStore{}
	for _, pg := range site.Pages {
		store[pg.URL] = server.Document{
			URL:         pg.URL,
			Body:        make([]byte, pg.Size),
			ContentType: "text/html; charset=utf-8",
		}
		for _, img := range pg.Images {
			store[img.URL] = server.Document{
				URL:         img.URL,
				Body:        make([]byte, img.Size),
				ContentType: "image/gif",
			}
		}
	}
	return store
}
