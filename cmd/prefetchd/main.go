// Command prefetchd runs a live HTTP prefetching server over a
// synthetic site: it pre-trains a popularity-based PPM model from a
// generated history, serves documents with X-Prefetch hints, and keeps
// learning from live traffic. Maintenance is incremental: sessions
// observed since the last update are delta-merged into the live model
// every -delta-interval, and a full compaction (window trim, popularity
// re-ranking, from-scratch retrain) runs every -compact-interval. The
// legacy -rebuild flag still selects a rebuild-only loop when the
// incremental intervals are zeroed.
//
// Usage:
//
//	prefetchd [-addr :8080] [-admin-addr :8081] [-profile nasa|ucbcs]
//	          [-delta-interval 1m] [-compact-interval 30m]
//	          [-rebuild 10m] [-trace-sample N] [-log-level info]
//
// The admin listener serves /metrics (Prometheus text exposition),
// /healthz, /debug/pprof, /debug/stats, and /debug/traces away from
// end-user traffic. The process shuts down gracefully on SIGINT or
// SIGTERM, draining in-flight requests and logging a final stats
// snapshot.
//
// Try it:
//
//	curl -i -H 'X-Client-ID: me' http://localhost:8080/d0/page0000.html
//	curl http://localhost:8081/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pbppm/internal/core"
	"pbppm/internal/maintain"
	"pbppm/internal/markov"
	"pbppm/internal/obs"
	"pbppm/internal/popularity"
	"pbppm/internal/server"
	"pbppm/internal/session"
	"pbppm/internal/tracegen"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "serving listen address")
		adminAddr   = flag.String("admin-addr", ":8081", "admin listen address for /metrics, /healthz, /debug; empty disables")
		profileName = flag.String("profile", "nasa", "site profile: nasa or ucbcs")
		rebuild     = flag.Duration("rebuild", 10*time.Minute, "legacy rebuild-only interval, used when -delta-interval is 0")
		deltaEvery  = flag.Duration("delta-interval", time.Minute, "incremental delta-merge interval (0 disables incremental maintenance)")
		compactNear = flag.Duration("compact-interval", 30*time.Minute, "full compaction interval for incremental maintenance")
		traceSample = flag.Int("trace-sample", 0, "sample 1 in N demand requests for predict-path tracing (0 = off)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, or error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "prefetchd: bad -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)
	log := obs.Component(logger, "prefetchd")

	var p tracegen.Profile
	switch *profileName {
	case "nasa":
		p = tracegen.NASA()
	case "ucbcs":
		p = tracegen.UCBCS()
	default:
		fmt.Fprintf(os.Stderr, "prefetchd: unknown profile %q\n", *profileName)
		os.Exit(2)
	}

	site, err := tracegen.BuildSite(p)
	if err != nil {
		log.Error("building site", "err", err)
		os.Exit(1)
	}
	store := storeFromSite(site)

	// Warm-start: train on a generated history of the same site.
	warm := p
	warm.Days = 3
	tr, err := tracegen.GenerateOn(site, warm)
	if err != nil {
		log.Error("generating warm history", "err", err)
		os.Exit(1)
	}
	sessions := session.Sessionize(tr, session.Config{})

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg, *traceSample)

	factory := func(rank *popularity.Ranking) markov.Predictor {
		return core.New(rank, core.Config{RelProbCutoff: 0.01, DropSingletons: true})
	}
	// The server is constructed after the maintainer (the warm model
	// feeds its Config), so OnPublish closes over this variable; it is
	// assigned before the maintenance loop starts publishing.
	var srv *server.Server
	maint, err := maintain.New(maintain.Config{
		Factory: factory,
		Obs:     reg,
		Logger:  logger,
		OnPublish: func(p markov.Predictor) {
			if srv != nil {
				srv.SetPredictor(p)
			}
		},
	})
	if err != nil {
		log.Error("creating maintainer", "err", err)
		os.Exit(1)
	}
	// The warm history carries the generator's synthetic timestamps;
	// shift each session to end "now" minus its age within the history
	// so the sliding window keeps all of it.
	shift := time.Since(tr.Epoch.Add(time.Duration(warm.Days) * 24 * time.Hour))
	for _, s := range sessions {
		shifted := s
		shifted.Views = make([]session.PageView, len(s.Views))
		for i, v := range s.Views {
			v.Time = v.Time.Add(shift)
			shifted.Views[i] = v
		}
		maint.Observe(shifted)
	}
	model := maint.Rebuild(time.Now())
	var arenaBytes int
	if ah, ok := model.(markov.ArenaHolder); ok {
		arenaBytes = ah.Arena().SizeBytes()
	}
	log.Info("warm model trained", "sessions", len(sessions),
		"nodes", model.NodeCount(), "arena_bytes", arenaBytes)

	srv = server.New(store, server.Config{
		Predictor: model,
		Obs:       reg,
		Tracer:    tracer,
		// Completed live sessions flow into the maintenance window so
		// rebuilds track real traffic.
		OnSessionEnd: func(client string, urls []string, last time.Time) {
			s := session.Session{Client: client}
			for i, u := range urls {
				s.Views = append(s.Views, session.PageView{
					URL:  u,
					Time: last.Add(time.Duration(i-len(urls)) * time.Minute),
				})
			}
			maint.Observe(s)
		},
	})

	// Shut down on SIGINT/SIGTERM: stop the maintenance loops, drain
	// in-flight requests, and log a final stats snapshot.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	go maintLoop(ctx, maint, srv, *deltaEvery, *compactNear, *rebuild)

	mux := http.NewServeMux()
	mux.Handle("/", srv)

	admin := obs.NewAdminMux(reg, nil)
	admin.HandleFunc("/debug/stats", func(w http.ResponseWriter, r *http.Request) {
		writeStats(w, srv.Stats(), maint.Rebuilds(), maint.DeltaMerges())
	})
	admin.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, rec := range tracer.Recent() {
			fmt.Fprintln(w, rec)
		}
	})

	web := &http.Server{Addr: *addr, Handler: mux}
	errs := make(chan error, 2)
	go func() { errs <- web.ListenAndServe() }()
	log.Info("serving", "pages", len(site.Pages), "addr", *addr,
		"profile", p.Name, "delta_interval", *deltaEvery,
		"compact_interval", *compactNear, "rebuild", *rebuild)

	var adminSrv *http.Server
	if *adminAddr != "" {
		adminSrv = &http.Server{Addr: *adminAddr, Handler: admin}
		go func() { errs <- adminSrv.ListenAndServe() }()
		log.Info("admin listening", "addr", *adminAddr)
	}

	select {
	case <-ctx.Done():
		log.Info("shutdown signal received")
	case err := <-errs:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("listener failed", "err", err)
		}
		cancel()
	}

	shutdownCtx, stop := context.WithTimeout(context.Background(), 10*time.Second)
	defer stop()
	if err := web.Shutdown(shutdownCtx); err != nil {
		log.Warn("draining serving listener", "err", err)
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(shutdownCtx); err != nil {
			log.Warn("draining admin listener", "err", err)
		}
	}

	st := srv.Stats()
	log.Info("final stats",
		"demand", st.DemandRequests,
		"prefetch", st.PrefetchRequests,
		"not_found", st.NotFound,
		"hints_issued", st.HintsIssued,
		"hint_fetches", st.HintFetches,
		"hint_hits", st.HintHits,
		"sessions", st.SessionsStarted,
		"rebuilds", maint.Rebuilds(),
		"delta_merges", maint.DeltaMerges())
}

// maintLoop runs model maintenance until ctx is cancelled. With delta
// > 0 it runs the incremental schedule (delta merges every delta,
// compactions every compact); otherwise the legacy rebuild-only loop.
// Published models reach the server through maintain.Config.OnPublish.
// Client-context expiry runs on its own ticker so session trimming
// never waits behind a long compaction.
func maintLoop(ctx context.Context, maint *maintain.Maintainer, srv *server.Server, delta, compact, rebuild time.Duration) {
	stop := make(chan struct{})
	go func() {
		<-ctx.Done()
		close(stop)
	}()

	expireEvery := delta
	if expireEvery <= 0 {
		expireEvery = rebuild
	}
	go func() {
		ticker := time.NewTicker(expireEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				srv.ExpireSessions()
			}
		}
	}()

	if delta > 0 {
		maint.RunIncremental(delta, compact, stop)
		return
	}
	maint.Run(rebuild, stop)
}

// writeStats renders the plain-text stats snapshot for /debug/stats.
func writeStats(w http.ResponseWriter, st server.Stats, rebuilds, deltaMerges int) {
	fmt.Fprintf(w, "demand %d\nprefetch %d\nnot-found %d\nhints %d\nhint-fetches %d\nhint-hits %d\nsessions %d\nrebuilds %d\ndelta-merges %d\n",
		st.DemandRequests, st.PrefetchRequests, st.NotFound,
		st.HintsIssued, st.HintFetches, st.HintHits,
		st.SessionsStarted, rebuilds, deltaMerges)
}

// storeFromSite materializes synthetic bodies for every page and image.
func storeFromSite(site *tracegen.Site) server.MapStore {
	store := server.MapStore{}
	for _, pg := range site.Pages {
		store[pg.URL] = server.Document{
			URL:         pg.URL,
			Body:        make([]byte, pg.Size),
			ContentType: "text/html; charset=utf-8",
		}
		for _, img := range pg.Images {
			store[img.URL] = server.Document{
				URL:         img.URL,
				Body:        make([]byte, img.Size),
				ContentType: "image/gif",
			}
		}
	}
	return store
}
