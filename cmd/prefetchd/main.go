// Command prefetchd runs a live HTTP prefetching server over a
// synthetic site: it pre-trains a popularity-based PPM model from a
// generated history, serves documents with X-Prefetch hints, and keeps
// learning from live traffic. Maintenance is incremental: sessions
// observed since the last update are delta-merged into the live model
// every -delta-interval, and a full compaction (window trim, popularity
// re-ranking, from-scratch retrain) runs every -compact-interval. The
// legacy -rebuild flag still selects a rebuild-only loop when the
// incremental intervals are zeroed.
//
// Usage:
//
//	prefetchd [-addr :8080] [-admin-addr :8081] [-profile nasa|ucbcs]
//	          [-delta-interval 1m] [-compact-interval 30m]
//	          [-rebuild 10m] [-trace-sample N] [-log-level info]
//	          [-slo "name=...,kind=...,target=..."] [-slo-file path]
//	          [-live-window 5m] [-warm-days 3]
//	          [-pages N] [-sessions-per-day N] [-max-hints N]
//	          [-shards N] [-router-addr host]
//	          [-snapshot-addr URL] [-snapshot-poll 5s]
//
// -pages, -sessions-per-day, and -warm-days shrink the synthetic site
// and warm history for fast boots under load benchmarks (cmd/loadbench
// must be given the same -pages so its walkers navigate the same
// site).
//
// -shards N (N > 1) serves through an in-process consistent-hash
// cluster: a router hashes each request's client identity onto one of
// N shard servers, every shard holds the replicated frozen model, and
// published model updates fan out to all shards. Per-shard metrics are
// exposed on the admin listener at /debug/shard/<id>/metrics; the
// process-level /metrics carries the routing-tier series
// (pbppm_shard_requests_total, pbppm_cluster_*). -router-addr names
// the one upstream host allowed to assert X-Client-ID (an outer load
// balancer or a standalone router); unset, any peer may assert it.
//
// Multi-process topologies distribute the model over the snapshot
// channel. The training process (the publisher) serves its current
// frozen model on the admin listener at /snapshot — versioned, ETagged,
// long-pollable, checksummed. A process started with -snapshot-addr
// pointing at a publisher's /snapshot runs as a follower: it trains
// nothing, polls the publisher (pacing retries with -snapshot-poll),
// validates each downloaded image end to end, and installs the model
// and its popularity ranking atomically — a corrupt or truncated
// download keeps the previous model live. Put cmd/prefetchrouter in
// front of the followers to consistent-hash clients across them.
//
// The admin listener serves /metrics (Prometheus text exposition),
// /healthz, /debug/pprof, /debug/stats, /debug/traces, and /debug/slo
// away from end-user traffic. The exposition carries the live paper
// metrics — pbppm_live_precision, pbppm_live_hit_ratio, and
// pbppm_live_traffic_increase, scored online from hint-lifecycle
// events and client hit reports over the -live-window rolling window —
// and /debug/slo evaluates the -slo objectives with multi-window burn
// rates, annotated with model-publish markers. The process shuts down
// gracefully on SIGINT or SIGTERM, draining in-flight requests and
// logging final stats, quality, and SLO snapshots.
//
// Try it:
//
//	curl -i -H 'X-Client-ID: me' http://localhost:8080/d0/page0000.html
//	curl http://localhost:8081/metrics
//	curl http://localhost:8081/debug/slo
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pbppm/internal/obs"
)

func main() {
	var cfg appConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "serving listen address")
	flag.StringVar(&cfg.adminAddr, "admin-addr", ":8081", "admin listen address for /metrics, /healthz, /debug; empty disables")
	flag.StringVar(&cfg.profileName, "profile", "nasa", "site profile: nasa or ucbcs")
	flag.DurationVar(&cfg.rebuild, "rebuild", 10*time.Minute, "legacy rebuild-only interval, used when -delta-interval is 0")
	flag.DurationVar(&cfg.deltaEvery, "delta-interval", time.Minute, "incremental delta-merge interval (0 disables incremental maintenance)")
	flag.DurationVar(&cfg.compactNear, "compact-interval", 30*time.Minute, "full compaction interval for incremental maintenance")
	flag.IntVar(&cfg.traceSample, "trace-sample", 0, "sample 1 in N demand requests for predict-path tracing (0 = off)")
	flag.StringVar(&cfg.slo, "slo", defaultSLO, "service objectives: ';'-separated key=value lists (kind=latency|precision|hit_ratio)")
	flag.StringVar(&cfg.sloFile, "slo-file", "", "file of objectives, one per line, same grammar as -slo; overrides -slo")
	flag.DurationVar(&cfg.liveWindow, "live-window", 5*time.Minute, "rolling window for the live paper-metric gauges")
	flag.IntVar(&cfg.warmDays, "warm-days", 3, "days of generated history the warm-start model trains on")
	flag.IntVar(&cfg.pages, "pages", 0, "override the profile's page count (load generators must match)")
	flag.IntVar(&cfg.sessionsPerDay, "sessions-per-day", 0, "override the profile's mean sessions per day of warm history")
	flag.IntVar(&cfg.maxHints, "max-hints", 0, "override the per-response X-Prefetch hint cap (0 = server default)")
	flag.IntVar(&cfg.shards, "shards", 1, "serve through an in-process consistent-hash cluster of N shards (1 = single server)")
	flag.StringVar(&cfg.routerAddr, "router-addr", "", "trusted upstream host allowed to assert X-Client-ID (empty trusts any peer)")
	flag.StringVar(&cfg.snapshotAddr, "snapshot-addr", "", "snapshot publisher endpoint to follow, e.g. http://10.0.0.1:8081/snapshot; set, this process trains nothing and installs the publisher's models")
	flag.DurationVar(&cfg.snapshotPoll, "snapshot-poll", 5*time.Second, "snapshot follower poll interval")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, or error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "prefetchd: bad -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)

	a, err := newApp(cfg, logger)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prefetchd: %v\n", err)
		os.Exit(1)
	}

	// Shut down on SIGINT/SIGTERM: stop the maintenance loops, drain
	// in-flight requests, and log the final snapshots.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := a.run(ctx); err != nil {
		os.Exit(1)
	}
}
