// Command prefetchd runs a live HTTP prefetching server over a
// synthetic site: it pre-trains a popularity-based PPM model from a
// generated history, serves documents with X-Prefetch hints, keeps
// learning from live traffic, and periodically rebuilds the model from
// a sliding session window.
//
// Usage:
//
//	prefetchd [-addr :8080] [-profile nasa|ucbcs] [-rebuild 10m]
//
// Try it:
//
//	curl -i -H 'X-Client-ID: me' http://localhost:8080/d0/page0000.html
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"pbppm/internal/core"
	"pbppm/internal/maintain"
	"pbppm/internal/markov"
	"pbppm/internal/popularity"
	"pbppm/internal/server"
	"pbppm/internal/session"
	"pbppm/internal/tracegen"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		profileName = flag.String("profile", "nasa", "site profile: nasa or ucbcs")
		rebuild     = flag.Duration("rebuild", 10*time.Minute, "model rebuild interval")
	)
	flag.Parse()

	var p tracegen.Profile
	switch *profileName {
	case "nasa":
		p = tracegen.NASA()
	case "ucbcs":
		p = tracegen.UCBCS()
	default:
		fmt.Fprintf(os.Stderr, "prefetchd: unknown profile %q\n", *profileName)
		os.Exit(2)
	}

	site, err := tracegen.BuildSite(p)
	if err != nil {
		log.Fatalf("prefetchd: %v", err)
	}
	store := storeFromSite(site)

	// Warm-start: train on a generated history of the same site.
	warm := p
	warm.Days = 3
	tr, err := tracegen.GenerateOn(site, warm)
	if err != nil {
		log.Fatalf("prefetchd: %v", err)
	}
	sessions := session.Sessionize(tr, session.Config{})

	factory := func(rank *popularity.Ranking) markov.Predictor {
		return core.New(rank, core.Config{RelProbCutoff: 0.01, DropSingletons: true})
	}
	maint, err := maintain.New(maintain.Config{Factory: factory})
	if err != nil {
		log.Fatalf("prefetchd: %v", err)
	}
	// The warm history carries the generator's synthetic timestamps;
	// shift each session to end "now" minus its age within the history
	// so the sliding window keeps all of it.
	shift := time.Since(tr.Epoch.Add(time.Duration(warm.Days) * 24 * time.Hour))
	for _, s := range sessions {
		shifted := s
		shifted.Views = make([]session.PageView, len(s.Views))
		for i, v := range s.Views {
			v.Time = v.Time.Add(shift)
			shifted.Views[i] = v
		}
		maint.Observe(shifted)
	}
	model := maint.Rebuild(time.Now())
	log.Printf("prefetchd: warm model trained on %d sessions: %d nodes",
		len(sessions), model.NodeCount())

	srv := server.New(store, server.Config{
		Predictor: model,
		// Completed live sessions flow into the maintenance window so
		// rebuilds track real traffic.
		OnSessionEnd: func(client string, urls []string, last time.Time) {
			s := session.Session{Client: client}
			for i, u := range urls {
				s.Views = append(s.Views, session.PageView{
					URL:  u,
					Time: last.Add(time.Duration(i-len(urls)) * time.Minute),
				})
			}
			maint.Observe(s)
		},
	})
	stop := make(chan struct{})
	defer close(stop)
	go maint.Run(*rebuild, stop)
	go func() {
		// Propagate rebuilt models into the server and trim stale
		// client contexts.
		ticker := time.NewTicker(*rebuild)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if m := maint.Predictor(); m != nil {
					srv.SetPredictor(m)
				}
				srv.ExpireSessions()
			}
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, r *http.Request) {
		st := srv.Stats()
		fmt.Fprintf(w, "demand %d\nprefetch %d\nnot-found %d\nhints %d\nsessions %d\nrebuilds %d\n",
			st.DemandRequests, st.PrefetchRequests, st.NotFound,
			st.HintsIssued, st.SessionsStarted, maint.Rebuilds())
	})

	log.Printf("prefetchd: serving %d pages on %s (profile %s, rebuild every %v)",
		len(site.Pages), *addr, p.Name, *rebuild)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// storeFromSite materializes synthetic bodies for every page and image.
func storeFromSite(site *tracegen.Site) server.MapStore {
	store := server.MapStore{}
	for _, pg := range site.Pages {
		store[pg.URL] = server.Document{
			URL:         pg.URL,
			Body:        make([]byte, pg.Size),
			ContentType: "text/html; charset=utf-8",
		}
		for _, img := range pg.Images {
			store[img.URL] = server.Document{
				URL:         img.URL,
				Body:        make([]byte, img.Size),
				ContentType: "image/gif",
			}
		}
	}
	return store
}
