package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"pbppm/internal/obs"
)

// syncBuffer is an io.Writer safe for the concurrent slog handlers the
// app's goroutines share.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func testConfig() appConfig {
	return appConfig{
		addr:        "127.0.0.1:0",
		adminAddr:   "127.0.0.1:0",
		profileName: "nasa",
		rebuild:     time.Minute,
		deltaEvery:  50 * time.Millisecond,
		compactNear: time.Minute,
		traceSample: 1,
		slo:         defaultSLO + ";kind=precision,target=0.01;kind=hit_ratio,target=0.01",
		liveWindow:  time.Minute,
		warmDays:    1,
	}
}

// TestGracefulShutdownUnderScrapes boots the full daemon on ephemeral
// ports, hammers it with demand traffic and admin scrapes, then
// cancels the run context while requests are still in flight: run must
// drain both listeners, return cleanly, and flush the final quality
// and SLO snapshots to the log. Run with -race, it also exercises the
// serving/scrape/maintenance concurrency.
func TestGracefulShutdownUnderScrapes(t *testing.T) {
	logBuf := &syncBuffer{}
	a, err := newApp(testConfig(), obs.NewLogger(logBuf, slog.LevelInfo))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.listen(); err != nil {
		t.Fatal(err)
	}
	webURL := "http://" + a.webLn.Addr().String()
	adminURL := "http://" + a.adminLn.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()

	get := func(url string) (string, error) {
		resp, err := http.Get(url)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}

	// Wait for the admin listener to serve.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if body, err := get(adminURL + "/healthz"); err == nil && strings.Contains(body, "ok") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admin listener never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Concurrent load: demand traffic on the serving port, scrapes and
	// SLO evaluations on the admin port, until told to stop.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 2 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req, _ := http.NewRequest(http.MethodGet,
					fmt.Sprintf("%s/d0/page%04d.html", webURL, i%8), nil)
				req.Header.Set("X-Client-ID", fmt.Sprintf("c%d", g))
				if resp, err := client.Do(req); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	for _, path := range []string{"/metrics", "/debug/slo", "/debug/stats", "/debug/traces"} {
		path := path
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				get(adminURL + path)
			}
		}()
	}

	// Let traffic flow, then check the live surfaces while loaded.
	time.Sleep(300 * time.Millisecond)
	metrics, err := get(adminURL + "/metrics")
	if err != nil {
		t.Fatalf("scraping /metrics under load: %v", err)
	}
	if err := obs.ValidateExposition(metrics); err != nil {
		t.Errorf("live exposition invalid: %v", err)
	}
	for _, want := range []string{"pbppm_live_precision", "pbppm_build_info", "pbppm_go_goroutines", "pbppm_slo_state"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("live exposition missing %s", want)
		}
	}
	sloBody, err := get(adminURL + "/debug/slo")
	if err != nil {
		t.Fatalf("fetching /debug/slo: %v", err)
	}
	var rep struct {
		Objectives []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"objectives"`
	}
	if err := json.Unmarshal([]byte(sloBody), &rep); err != nil {
		t.Fatalf("/debug/slo is not JSON: %v\n%s", err, sloBody)
	}
	if len(rep.Objectives) != 3 {
		t.Errorf("/debug/slo objectives = %d, want 3", len(rep.Objectives))
	}

	// Shut down while the load goroutines are still firing.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not drain and return after cancel")
	}
	close(stop)
	wg.Wait()

	logs := logBuf.String()
	for _, want := range []string{"final stats", "final quality", "final slo", "precision"} {
		if !strings.Contains(logs, want) {
			t.Errorf("shutdown log missing %q", want)
		}
	}
}

// TestClusterModeServesAndExposesShards boots the daemon with
// -shards 3: demand traffic from several client identities must be
// served through the router, the process exposition must carry the
// routing-tier series, each shard's registry must be mounted under
// /debug/shard/<id>/metrics, and /debug/stats must aggregate across
// shards. The short delta interval also exercises the publish fan-out
// to all shards while traffic is in flight.
func TestClusterModeServesAndExposesShards(t *testing.T) {
	cfg := testConfig()
	cfg.shards = 3
	logBuf := &syncBuffer{}
	a, err := newApp(cfg, obs.NewLogger(logBuf, slog.LevelInfo))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.listen(); err != nil {
		t.Fatal(err)
	}
	webURL := "http://" + a.webLn.Addr().String()
	adminURL := "http://" + a.adminLn.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()

	get := func(url string) (string, error) {
		resp, err := http.Get(url)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if body, err := get(adminURL + "/healthz"); err == nil && strings.Contains(body, "ok") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admin listener never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Enough distinct identities that every shard owns at least one.
	// These paths exist in every NASA-profile site build.
	pages := []string{"/d0/page0000.html", "/d1/page0001.html",
		"/d1/page0002.html", "/d1/page0003.html"}
	client := &http.Client{Timeout: 2 * time.Second}
	for c := 0; c < 12; c++ {
		for _, pg := range pages {
			req, _ := http.NewRequest(http.MethodGet, webURL+pg, nil)
			req.Header.Set("X-Client-ID", fmt.Sprintf("cluster-client-%d", c))
			resp, err := client.Do(req)
			if err != nil {
				t.Fatalf("demand request: %v", err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("demand request status %d", resp.StatusCode)
			}
		}
	}
	// Let at least one delta publish fan out to the shards.
	time.Sleep(150 * time.Millisecond)

	metrics, err := get(adminURL + "/metrics")
	if err != nil {
		t.Fatalf("scraping /metrics: %v", err)
	}
	if err := obs.ValidateExposition(metrics); err != nil {
		t.Errorf("router exposition invalid: %v", err)
	}
	for _, want := range []string{"pbppm_cluster_shards 3", `pbppm_shard_requests_total{shard="0"}`} {
		if !strings.Contains(metrics, want) {
			t.Errorf("router exposition missing %s", want)
		}
	}
	for _, id := range []string{"0", "1", "2"} {
		body, err := get(adminURL + "/debug/shard/" + id + "/metrics")
		if err != nil {
			t.Fatalf("scraping shard %s metrics: %v", id, err)
		}
		if err := obs.ValidateExposition(body); err != nil {
			t.Errorf("shard %s exposition invalid: %v", id, err)
		}
		if !strings.Contains(body, `pbppm_http_requests_total{kind="demand"}`) {
			t.Errorf("shard %s exposition missing demand counter", id)
		}
	}
	if body, _ := get(adminURL + "/debug/shard/9/metrics"); !strings.Contains(body, "not found") {
		t.Errorf("unknown shard id should 404, got %q", body)
	}

	stats, err := get(adminURL + "/debug/stats")
	if err != nil {
		t.Fatalf("fetching /debug/stats: %v", err)
	}
	if !strings.Contains(stats, "demand 48") {
		t.Errorf("/debug/stats should aggregate 48 demand requests across shards:\n%s", stats)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not drain and return after cancel")
	}
	logs := logBuf.String()
	if !strings.Contains(logs, `"shards":3`) && !strings.Contains(logs, "shards=3") {
		t.Errorf("serving log line missing shard count:\n%s", logs)
	}
	if !strings.Contains(logs, "final stats") {
		t.Error("shutdown log missing final stats")
	}
}

// TestLoadObjectivesFile: -slo-file overrides -slo and accepts the
// newline/comment grammar.
func TestLoadObjectivesFile(t *testing.T) {
	path := t.TempDir() + "/slo.conf"
	content := "# quality objectives\nkind=precision,target=0.3\n\nname=hr,kind=hit_ratio,target=0.2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	objs, err := loadObjectives(appConfig{slo: "kind=latency,target=0.5,threshold=1s", sloFile: path})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].Kind != "precision" || objs[1].Name != "hr" {
		t.Errorf("objectives = %+v", objs)
	}
}

// TestSnapshotFollowerMode boots a publisher daemon and a follower
// daemon pointed at its /snapshot endpoint: the follower — which
// trained nothing — must download and install the publisher's model,
// report the installed version in its exposition, and serve prefetch
// hints from the distributed model.
func TestSnapshotFollowerMode(t *testing.T) {
	pubLog := &syncBuffer{}
	pub, err := newApp(testConfig(), obs.NewLogger(pubLog, slog.LevelInfo))
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.listen(); err != nil {
		t.Fatal(err)
	}
	pubAdmin := "http://" + pub.adminLn.Addr().String()

	folCfg := testConfig()
	folCfg.snapshotAddr = pubAdmin + "/snapshot"
	folCfg.snapshotPoll = 50 * time.Millisecond
	folLog := &syncBuffer{}
	fol, err := newApp(folCfg, obs.NewLogger(folLog, slog.LevelInfo))
	if err != nil {
		t.Fatal(err)
	}
	if fol.maint.Predictor() != nil {
		t.Fatal("follower trained a model at boot")
	}
	if err := fol.listen(); err != nil {
		t.Fatal(err)
	}
	folWeb := "http://" + fol.webLn.Addr().String()
	folAdmin := "http://" + fol.adminLn.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 2)
	go func() { done <- pub.run(ctx) }()
	go func() { done <- fol.run(ctx) }()

	get := func(url string) (string, error) {
		resp, err := http.Get(url)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}

	// The publisher must offer a snapshot; the follower must install it.
	deadline := time.Now().Add(15 * time.Second)
	for {
		body, err := get(folAdmin + "/metrics")
		if err == nil && strings.Contains(body, "pbppm_snapshot_installs_total 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never installed a snapshot; metrics:\n%v", body)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if fol.maint.Predictor() == nil || fol.maint.Ranking() == nil {
		t.Fatal("follower install did not publish model and ranking")
	}

	// The follower serves hints from the distributed model: walk one
	// client far enough that the model has context to predict from.
	client := &http.Client{Timeout: 2 * time.Second}
	sawHint := false
	for _, pg := range []string{"/d0/page0000.html", "/d1/page0001.html", "/d1/page0002.html"} {
		req, _ := http.NewRequest(http.MethodGet, folWeb+pg, nil)
		req.Header.Set("X-Client-ID", "follower-client")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		if resp.Header.Get("X-Prefetch") != "" {
			sawHint = true
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("follower demand status %d", resp.StatusCode)
		}
	}
	if !sawHint {
		t.Error("follower issued no prefetch hints from the distributed model")
	}

	// The publisher's own exposition carries the distribution series.
	pubMetrics, err := get(pubAdmin + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pbppm_snapshot_version", "pbppm_snapshot_publishes_total"} {
		if !strings.Contains(pubMetrics, want) {
			t.Errorf("publisher exposition missing %s", want)
		}
	}

	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("a daemon did not drain and return after cancel")
		}
	}
	if !strings.Contains(folLog.String(), "snapshot follower mode") {
		t.Error("follower log missing mode line")
	}
}
