// Command prefetchrouter runs the standalone routing tier for a
// multi-process prefetching cluster: it consistent-hashes each
// request's client identity onto a fixed set of prefetchd shard
// backends and reverse-proxies the request to the owner, stamping the
// resolved identity so shards booted with -router-addr pointing at
// this host can trust it. Shards keep their models in sync through the
// snapshot-distribution channel (prefetchd -snapshot-addr), not
// through the router — the router carries only request traffic.
//
// Usage:
//
//	prefetchrouter -backends http://10.0.0.11:8080,http://10.0.0.12:8080
//	               [-addr :8080] [-admin-addr :8081] [-replicas 128]
//	               [-trusted-peers host1,host2] [-log-level info]
//
// The admin listener serves /metrics (pbppm_shard_requests_total per
// backend, pbppm_cluster_routing_errors_total by reason,
// pbppm_cluster_backend_errors_total per shard), /healthz, and
// /debug/pprof. A dead backend answers 502 and is counted; the ring is
// static, so recovery is the backend coming back, not a membership
// change.
//
// Try it:
//
//	curl -i -H 'X-Client-ID: me' http://localhost:8080/d0/page0000.html
//	curl http://localhost:8081/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pbppm/internal/cluster"
	"pbppm/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "routing listen address")
	adminAddr := flag.String("admin-addr", ":8081", "admin listen address for /metrics, /healthz, /debug; empty disables")
	backends := flag.String("backends", "", "comma-separated shard base URLs, e.g. http://10.0.0.11:8080,http://10.0.0.12:8080 (required)")
	replicas := flag.Int("replicas", 0, "virtual nodes per backend on the hash ring (0 = package default)")
	trustedPeers := flag.String("trusted-peers", "", "comma-separated upstream hosts allowed to assert X-Client-ID (empty trusts any peer)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, or error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "prefetchrouter: bad -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, *addr, *adminAddr, *backends, *replicas, *trustedPeers, logger); err != nil {
		fmt.Fprintf(os.Stderr, "prefetchrouter: %v\n", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag into its non-empty elements.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

func run(ctx context.Context, addr, adminAddr, backends string, replicas int, trustedPeers string, logger *slog.Logger) error {
	log := obs.Component(logger, "prefetchrouter")
	backendList := splitList(backends)
	if len(backendList) == 0 {
		return fmt.Errorf("at least one -backends URL is required")
	}

	reg := obs.NewRegistry()
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:     backendList,
		Replicas:     replicas,
		TrustedPeers: splitList(trustedPeers),
		Obs:          reg,
		Logger:       logger,
	})
	if err != nil {
		return err
	}

	web := &http.Server{Handler: rt}
	webLn, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("binding %s: %w", addr, err)
	}

	var admin *http.Server
	var adminLn net.Listener
	if adminAddr != "" {
		admin = &http.Server{Handler: obs.NewAdminMux(reg, nil)}
		if adminLn, err = net.Listen("tcp", adminAddr); err != nil {
			webLn.Close()
			return fmt.Errorf("binding admin %s: %w", adminAddr, err)
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make(chan error, 2)
	go func() { errs <- web.Serve(webLn) }()
	log.Info("routing", "addr", webLn.Addr().String(),
		"backends", len(backendList), "trusted_peers", trustedPeers)
	if adminLn != nil {
		go func() { errs <- admin.Serve(adminLn) }()
		log.Info("admin listening", "addr", adminLn.Addr().String())
	}

	var runErr error
	select {
	case <-ctx.Done():
		log.Info("shutdown signal received")
	case err := <-errs:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("listener failed", "err", err)
			runErr = err
		}
		cancel()
	}

	shutdownCtx, stop := context.WithTimeout(context.Background(), 10*time.Second)
	defer stop()
	if err := web.Shutdown(shutdownCtx); err != nil {
		log.Warn("draining routing listener", "err", err)
	}
	if admin != nil {
		if err := admin.Shutdown(shutdownCtx); err != nil {
			log.Warn("draining admin listener", "err", err)
		}
	}
	return runErr
}
