// Command prefetchsim runs one trace-driven prefetching simulation: it
// trains a prediction model on the first k days of a trace and replays
// the following day against it, reporting the paper's §2.3 metrics.
//
// Usage:
//
//	prefetchsim [-trace file | -profile nasa|ucbcs] [-model pb|ppm|3ppm|lrs|none]
//	            [-train-days N] [-threshold P] [-max-prefetch BYTES] [-proxy]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"pbppm/internal/core"
	"pbppm/internal/experiments"
	"pbppm/internal/lrs"
	"pbppm/internal/markov"
	"pbppm/internal/metrics"
	"pbppm/internal/obs"
	"pbppm/internal/ppm"
	"pbppm/internal/sim"
	"pbppm/internal/topn"
	"pbppm/internal/trace"
)

func main() {
	os.Exit(realMain())
}

// realMain returns the exit code so the deferred profile stop runs
// before the process exits.
func realMain() int {
	var (
		traceFile   = flag.String("trace", "", "Common Log Format trace file (overrides -profile)")
		profileName = flag.String("profile", "nasa", "synthetic workload: nasa or ucbcs")
		modelName   = flag.String("model", "pb", "prediction model: pb, ppm, 3ppm, blend, lrs, topn, or none")
		trainDays   = flag.Int("train-days", 0, "training window in days (0 = all but the last day)")
		threshold   = flag.Float64("threshold", 0, "prediction probability threshold (0 = paper's 0.25)")
		maxPrefetch = flag.Int64("max-prefetch", 0, "prefetch size cap in bytes (0 = paper default per model)")
		useProxy    = flag.Bool("proxy", false, "interpose a shared 16 GB proxy cache")
		saveModel   = flag.String("save-model", "", "write the trained model to this file (inspect with modelinfo)")
		progress    = flag.Int("progress", 0, "log replay progress every N events (0 = silent)")
	)
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "prefetchsim: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "prefetchsim: %v\n", err)
		}
	}()

	w, err := loadWorkload(*traceFile, *profileName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prefetchsim: %v\n", err)
		return 1
	}

	k := *trainDays
	if k == 0 {
		k = w.Days() - 1
	}
	if k < 1 || k >= w.Days() {
		fmt.Fprintf(os.Stderr, "prefetchsim: train-days %d out of range for a %d-day trace\n", k, w.Days())
		return 2
	}
	train := w.DaySessions(0, k)
	test := w.DaySessions(k, k+1)
	rank := experiments.Ranking(train)

	var pred markov.Predictor
	maxBytes := *maxPrefetch
	switch *modelName {
	case "pb":
		pred = core.New(rank, core.Config{
			Threshold:      *threshold,
			RelProbCutoff:  0.01,
			DropSingletons: w.DropSingletons,
		})
		if maxBytes == 0 {
			maxBytes = sim.PBMaxPrefetchBytes
		}
	case "ppm":
		pred = ppm.New(ppm.Config{Threshold: *threshold})
	case "3ppm":
		pred = ppm.New(ppm.Config{Height: 3, Threshold: *threshold})
	case "blend":
		pred = ppm.New(ppm.Config{Threshold: *threshold, BlendOrders: true})
	case "lrs":
		pred = lrs.New(lrs.Config{Threshold: *threshold})
	case "topn":
		pred = topn.New(topn.Config{})
	case "none":
		pred = nil
	default:
		fmt.Fprintf(os.Stderr, "prefetchsim: unknown model %q\n", *modelName)
		return 2
	}
	if maxBytes == 0 {
		maxBytes = sim.DefaultMaxPrefetchBytes
	}

	start := time.Now()
	nodes := 0
	if pred != nil {
		nodes = sim.Train(pred, train)
	}
	trainTime := time.Since(start)

	if *saveModel != "" && pred != nil {
		if err := persistModel(*saveModel, pred); err != nil {
			fmt.Fprintf(os.Stderr, "prefetchsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "prefetchsim: model written to %s\n", *saveModel)
	}

	opt := sim.Options{
		Predictor:        pred,
		MaxPrefetchBytes: maxBytes,
		Path:             w.Path,
		Grades:           rank,
		Sizes:            w.Sizes,
		UseProxy:         *useProxy,
	}
	if *progress > 0 {
		log := obs.Component(obs.NewLogger(os.Stderr, slog.LevelInfo), "prefetchsim")
		opt.ProgressEvery = *progress
		opt.OnProgress = func(p sim.Progress) {
			log.Info("replay progress",
				"events", p.Events,
				"of", p.TotalEvents,
				"hit_ratio", fmt.Sprintf("%.3f", p.HitRatio),
				"prefetch_hits", p.PrefetchHits,
				"events_per_sec", fmt.Sprintf("%.0f", p.EventsPerSec))
		}
	}
	start = time.Now()
	res := sim.Run(test, opt)
	simTime := time.Since(start)

	baseOpt := opt
	baseOpt.Predictor = nil
	base := sim.Run(test, baseOpt)

	fmt.Printf("workload %s: %d train sessions (%d days), %d test sessions (day %d)\n",
		w.Name, len(train), k, len(test), k)
	tb := &metrics.Table{Headers: []string{"metric", "value"}}
	tb.AddRow("model", res.Model)
	tb.AddRow("nodes", fmt.Sprint(nodes))
	tb.AddRow("requests", fmt.Sprint(res.Requests))
	tb.AddRow("hit ratio", metrics.Pct(res.HitRatio()))
	tb.AddRow("  cache hits", fmt.Sprint(res.CacheHits))
	tb.AddRow("  prefetch hits", fmt.Sprint(res.PrefetchHits))
	if *useProxy {
		tb.AddRow("  browser hits", fmt.Sprint(res.BrowserHits))
		tb.AddRow("  proxy cache hits", fmt.Sprint(res.ProxyCacheHits))
		tb.AddRow("  proxy prefetch hits", fmt.Sprint(res.ProxyPrefetchHits))
	}
	tb.AddRow("baseline hit ratio", metrics.Pct(base.HitRatio()))
	tb.AddRow("latency reduction", metrics.Pct(res.LatencyReductionVs(base)))
	tb.AddRow("traffic increase", metrics.Pct(res.TrafficIncrease()))
	tb.AddRow("prefetched docs", fmt.Sprint(res.PrefetchedDocs))
	tb.AddRow("prefetch precision", metrics.Pct(res.PrefetchPrecision()))
	tb.AddRow("popular share of prefetch hits", metrics.Pct(res.PopularShareOfPrefetchHits()))
	tb.AddRow("path utilization", metrics.Pct(res.Utilization))
	tb.AddRow("latency p50/p95",
		fmt.Sprintf("%v / %v", res.Latencies.Percentile(50), res.Latencies.Percentile(95)))
	tb.AddRow("train time", trainTime.Round(time.Millisecond).String())
	tb.AddRow("replay time", simTime.Round(time.Millisecond).String())
	fmt.Print(tb.String())
	return 0
}

// persistModel writes the trained model for later inspection.
func persistModel(path string, pred markov.Predictor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch m := pred.(type) {
	case *core.Model:
		return m.Encode(f)
	case *ppm.Model:
		return m.Encode(f)
	case *lrs.Model:
		return m.Encode(f)
	default:
		return fmt.Errorf("model %s does not support persistence", pred.Name())
	}
}

// loadWorkload reads a CLF file or generates the named profile.
func loadWorkload(file, profileName string) (*experiments.Workload, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, skipped, err := trace.ReadCLF(f)
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "prefetchsim: skipped %d unparseable lines\n", skipped)
		}
		return experiments.NewWorkload(file, tr)
	}
	switch profileName {
	case "nasa":
		return experiments.NASAWorkload()
	case "ucbcs":
		return experiments.UCBWorkload()
	default:
		return nil, fmt.Errorf("unknown profile %q (want nasa or ucbcs)", profileName)
	}
}
