// Command replay drives a live prefetching server (see cmd/prefetchd)
// with the sessions of an access log, one cooperating prefetching
// client per trace client, and reports the client-side hit ratios.
// Together with prefetchd it demonstrates the full system outside any
// simulator: generate a trace, start the server, replay the trace.
//
//	go run ./cmd/prefetchd -addr :8080 &
//	go run ./cmd/tracegen -profile nasa -days 1 -o day.log
//	go run ./cmd/replay -server http://localhost:8080 day.log
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"time"

	"pbppm/internal/obs"
	"pbppm/internal/server"
	"pbppm/internal/session"
	"pbppm/internal/trace"
)

func main() {
	os.Exit(realMain())
}

// realMain returns the exit code so the deferred profile stop runs
// before the process exits.
func realMain() int {
	var (
		serverURL = flag.String("server", "http://127.0.0.1:8080", "prefetching server base URL")
		maxReqs   = flag.Int("max-requests", 0, "stop after this many requests (0 = whole trace)")
		noWait    = flag.Bool("no-wait", false, "do not wait for background prefetches between clicks")
		progress  = flag.Int("progress", 0, "log replay progress every N requests (0 = silent)")
	)
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: replay [-server URL] trace.log")
		return 2
	}
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		}
	}()
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		return 1
	}
	tr, skipped, err := trace.ReadCLF(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		return 1
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "replay: skipped %d unparseable lines\n", skipped)
	}

	sessions := session.Sessionize(tr, session.Config{})
	sort.SliceStable(sessions, func(i, j int) bool {
		return sessions[i].Start().Before(sessions[j].Start())
	})

	clients := map[string]*server.Client{}
	log := obs.Component(obs.NewLogger(os.Stderr, slog.LevelInfo), "replay")
	replayStart := time.Now()
	var requests, hits, prefetchHits, errors int
	for _, s := range sessions {
		cl := clients[s.Client]
		if cl == nil {
			cl, err = server.NewClient(server.ClientConfig{ID: s.Client, BaseURL: *serverURL})
			if err != nil {
				fmt.Fprintf(os.Stderr, "replay: %v\n", err)
				return 1
			}
			clients[s.Client] = cl
		}
		for _, v := range s.Views {
			if *maxReqs > 0 && requests >= *maxReqs {
				report(requests, hits, prefetchHits, errors, len(clients))
				return 0
			}
			src, err := cl.Get(v.URL)
			requests++
			switch {
			case err != nil:
				errors++
			case src == "cache":
				hits++
			case src == "prefetch":
				hits++
				prefetchHits++
			}
			if !*noWait {
				cl.Wait()
			}
			if *progress > 0 && requests%*progress == 0 {
				elapsed := time.Since(replayStart)
				log.Info("replay progress",
					"requests", requests,
					"hit_ratio", fmt.Sprintf("%.3f", float64(hits)/float64(requests)),
					"prefetch_hits", prefetchHits,
					"errors", errors,
					"requests_per_sec", fmt.Sprintf("%.0f", float64(requests)/elapsed.Seconds()))
			}
		}
	}
	for _, cl := range clients {
		cl.Wait()
	}
	report(requests, hits, prefetchHits, errors, len(clients))
	return 0
}

func report(requests, hits, prefetchHits, errors, clients int) {
	fmt.Printf("replayed %d requests from %d clients\n", requests, clients)
	if requests == 0 {
		return
	}
	fmt.Printf("hit ratio %.1f%% (%d hits, of which %d prefetch hits), %d errors\n",
		100*float64(hits)/float64(requests), hits, prefetchHits, errors)
}
