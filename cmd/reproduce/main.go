// Command reproduce regenerates the tables and figures of the paper's
// evaluation on the synthetic NASA-like and UCB-CS-like workloads and
// prints them as text tables (the data behind EXPERIMENTS.md).
//
// Beyond the tables it can leave a machine-checkable run artifact
// behind: -bench-out writes a BENCH_*.json report (environment block,
// per-experiment wall time, allocation cost, per-phase timings,
// replay throughput, model tree statistics, and headline metrics) and
// -compare gates the run against a baseline artifact, exiting
// non-zero when a metric regressed beyond tolerance.
//
// Usage:
//
//	reproduce [-exp all|fig2|fig3|table|fig4|fig5|baselines|maintenance|maintenance-cost|ablations|capacity]
//	          [-workload both|nasa|ucbcs] [-scale full|small] [-csv dir]
//	          [-bench-out BENCH_run.json] [-compare BENCH_baseline.json]
//	          [-tol-wall F] [-tol-metric F] [-progress N]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"pbppm/internal/benchreport"
	"pbppm/internal/experiments"
	"pbppm/internal/markov"
	"pbppm/internal/obs"
	"pbppm/internal/sim"
	"pbppm/internal/tracegen"
)

func main() {
	os.Exit(realMain())
}

// realMain wraps the run so deferred work (the profile stop) executes
// before the process exits.
func realMain() int {
	var (
		exp       = flag.String("exp", "all", "experiment: all, fig2, fig3, table, fig4, fig5, baselines, maintenance, maintenance-cost, predict-bench, ablations, or capacity (opt-in, not part of all: boots a live server and measures latency under load)")
		workload  = flag.String("workload", "both", "workload: both, nasa, ucbcs")
		scale     = flag.String("scale", "full", "full = paper scale, small = quick check")
		csvDir    = flag.String("csv", "", "also write each artifact as CSV into this directory")
		benchOut  = flag.String("bench-out", "", "write a BENCH_*.json run artifact to this file")
		compareTo = flag.String("compare", "", "compare this run against a baseline BENCH_*.json and fail on regression")
		tolWall   = flag.Float64("tol-wall", 0.5, "allowed relative wall-time/alloc/throughput change for -compare")
		tolMetric = flag.Float64("tol-metric", 0.05, "allowed relative headline-metric change for -compare")
		progress  = flag.Int("progress", 0, "log replay progress every N events (0 = silent)")
	)
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		return 1
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fail(err)
		}
	}
	stopProf, err := prof.Start()
	if err != nil {
		return fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		}
	}()

	log := obs.Component(obs.NewLogger(os.Stderr, slog.LevelInfo), "reproduce")
	report := benchreport.New("reproduce", *scale)

	ranAny := false
	for _, name := range []string{"nasa", "ucbcs"} {
		if *workload != "both" && *workload != name {
			continue
		}
		ranAny = true

		var w *experiments.Workload
		buildClock := sim.NewPhaseClock(nil)
		m, err := benchreport.Measure(func() error {
			defer buildClock.Start(sim.PhaseWorkloadBuild)()
			var err error
			w, err = buildWorkload(name, *scale)
			return err
		})
		if err != nil {
			return fail(err)
		}
		report.Add(benchreport.NewRecord("workload", name, m, buildClock, nil, nil))
		fmt.Fprintf(os.Stderr, "reproduce: prepared %s workload: %d records, %d sessions, %d days (%.1fs)\n",
			name, len(w.Trace.Records), len(w.Sessions), w.Days(), m.Wall.Seconds())

		if err := run(w, *exp, *csvDir, *progress, log, report); err != nil {
			return fail(fmt.Errorf("%s: %w", w.Name, err))
		}
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "reproduce: unknown workload %q\n", *workload)
		return 2
	}

	if *benchOut != "" {
		if err := benchreport.WriteFile(*benchOut, report); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "reproduce: benchmark artifact written to %s\n", *benchOut)
	}
	if *compareTo != "" {
		baseline, err := benchreport.ReadFile(*compareTo)
		if err != nil {
			return fail(err)
		}
		cmp := benchreport.Compare(baseline, report,
			benchreport.Tolerances{WallTime: *tolWall, Metric: *tolMetric})
		fmt.Print(cmp)
		if !cmp.OK() {
			fmt.Fprintf(os.Stderr, "reproduce: %d metrics regressed beyond tolerance vs %s\n",
				len(cmp.Regressions()), *compareTo)
			return 3
		}
	}
	return 0
}

func buildWorkload(name, scale string) (*experiments.Workload, error) {
	var p tracegen.Profile
	switch name {
	case "nasa":
		p = tracegen.NASA()
	case "ucbcs":
		p = tracegen.UCBCS()
	}
	if scale == "small" {
		p.Days = 4
		p.SessionsPerDay /= 2
		p.Pages /= 2
		p.Browsers /= 2
		p.CrawlerPagesPerDay = 150
	}
	return experiments.FromProfile(p)
}

// artifact is what every experiment produces: a printable table that
// can also be exported as CSV.
type artifact interface {
	fmt.Stringer
	experiments.CSVWriter
}

func run(w *experiments.Workload, exp, csvDir string, progress int, log *slog.Logger, report *benchreport.Report) error {
	cfg := experiments.SweepConfig{}
	all := exp == "all"

	// runOne executes one experiment under a fresh phase clock and
	// model observer, prints/exports the artifact, and appends the
	// benchmark record. f returns the record name alongside the
	// artifact because ablations only know theirs after running; kind
	// labels progress lines emitted while f is still in flight.
	runOne := func(kind string, f func() (string, artifact, error)) error {
		clock := sim.NewPhaseClock(nil)
		models := map[string]markov.TreeStats{}
		w.Hooks = experiments.Hooks{
			Phases:  clock,
			OnModel: func(m string, st markov.TreeStats) { models[m] = st },
		}
		if progress > 0 {
			w.Hooks.ProgressEvery = progress
			w.Hooks.OnProgress = func(p sim.Progress) {
				log.Info("replay progress",
					"workload", w.Name,
					"experiment", kind,
					"phase", p.Phase,
					"events", p.Events,
					"of", p.TotalEvents,
					"hit_ratio", fmt.Sprintf("%.3f", p.HitRatio),
					"events_per_sec", fmt.Sprintf("%.0f", p.EventsPerSec))
			}
		}

		var (
			name string
			art  artifact
		)
		m, err := benchreport.Measure(func() error {
			var err error
			name, art, err = f()
			return err
		})
		if err != nil {
			return err
		}

		stopReport := clock.Start(sim.PhaseReport)
		fmt.Println(art)
		if csvDir != "" {
			cf, err := os.Create(filepath.Join(csvDir, fmt.Sprintf("%s-%s.csv", w.Name, name)))
			if err != nil {
				return err
			}
			if err := art.WriteCSV(cf); err != nil {
				cf.Close()
				return err
			}
			if err := cf.Close(); err != nil {
				return err
			}
		}
		stopReport()

		var headline map[string]float64
		if h, ok := art.(experiments.Headliner); ok {
			headline = h.Headline()
		}
		report.Add(benchreport.NewRecord(name, w.Name, m, clock, models, headline))
		if progress > 0 {
			log.Info("experiment done", "workload", w.Name, "experiment", name,
				"wall", m.Wall.Round(time.Millisecond).String(), "phases", clock.String())
		}
		return nil
	}

	fixed := func(name string, f func() (artifact, error)) func() (string, artifact, error) {
		return func() (string, artifact, error) {
			art, err := f()
			return name, art, err
		}
	}

	if all || exp == "fig2" {
		if err := runOne("fig2", fixed("fig2", func() (artifact, error) { return experiments.RunFigure2(w, cfg) })); err != nil {
			return err
		}
	}
	if all || exp == "fig3" {
		if err := runOne("fig3", fixed("fig3", func() (artifact, error) { return experiments.RunFigure3(w, cfg) })); err != nil {
			return err
		}
	}
	if all || exp == "table" {
		if err := runOne("table", fixed("table", func() (artifact, error) { return experiments.RunSpaceTable(w, cfg) })); err != nil {
			return err
		}
	}
	if all || exp == "fig4" {
		if err := runOne("fig4", fixed("fig4", func() (artifact, error) { return experiments.RunFigure4(w, cfg) })); err != nil {
			return err
		}
	}
	if all || exp == "fig5" {
		if err := runOne("fig5", fixed("fig5", func() (artifact, error) { return experiments.RunFigure5(w, experiments.Figure5Config{}) })); err != nil {
			return err
		}
	}
	if all || exp == "baselines" {
		if err := runOne("baselines", fixed("baselines", func() (artifact, error) { return experiments.RunBaselines(w) })); err != nil {
			return err
		}
	}
	if all || exp == "maintenance" {
		if err := runOne("maintenance", fixed("maintenance", func() (artifact, error) { return experiments.RunMaintenance(w) })); err != nil {
			return err
		}
	}
	if all || exp == "maintenance-cost" {
		if err := runOne("maintenance-cost", fixed("maintenance-cost", func() (artifact, error) { return experiments.RunMaintenanceCost(w) })); err != nil {
			return err
		}
	}
	if all || exp == "predict-bench" {
		if err := runOne("predict-bench", fixed("predict-bench", func() (artifact, error) { return experiments.RunPredictBench(w) })); err != nil {
			return err
		}
	}
	// Capacity is opt-in only (not part of "all"): it boots a live
	// server and measures latency under load, which depends on the
	// machine the way the replay experiments do not.
	if exp == "capacity" {
		if err := runOne("capacity", fixed("capacity", func() (artifact, error) {
			return experiments.RunCapacity(w, experiments.CapacityConfig{})
		})); err != nil {
			return err
		}
	}
	if all || exp == "ablations" {
		for _, runAbl := range []func(*experiments.Workload) (*experiments.Ablation, error){
			experiments.RunAblationThresholds,
			experiments.RunAblationSpaceOpt,
			experiments.RunAblationHeights,
			experiments.RunAblationLinks,
			experiments.RunAblationCachePolicy,
			experiments.RunAblationBlending,
			experiments.RunAblationOnlineTraining,
		} {
			abl := runAbl
			err := runOne("ablations", func() (string, artifact, error) {
				a, err := abl(w)
				if err != nil {
					return "", nil, err
				}
				return "ablation-" + a.Name, a, nil
			})
			if err != nil {
				return err
			}
		}
	}
	switch exp {
	case "all", "fig2", "fig3", "table", "fig4", "fig5", "baselines", "maintenance", "maintenance-cost", "predict-bench", "ablations", "capacity":
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
