// Command reproduce regenerates the tables and figures of the paper's
// evaluation on the synthetic NASA-like and UCB-CS-like workloads and
// prints them as text tables (the data behind EXPERIMENTS.md).
//
// Usage:
//
//	reproduce [-exp all|fig2|fig3|table|fig4|fig5|baselines|maintenance|ablations]
//	          [-workload both|nasa|ucbcs] [-scale full|small] [-csv dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pbppm/internal/experiments"
	"pbppm/internal/tracegen"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, fig2, fig3, table, fig4, fig5, baselines, maintenance, ablations")
		workload = flag.String("workload", "both", "workload: both, nasa, ucbcs")
		scale    = flag.String("scale", "full", "full = paper scale, small = quick check")
		csvDir   = flag.String("csv", "", "also write each artifact as CSV into this directory")
	)
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
	}

	var loads []*experiments.Workload
	for _, name := range []string{"nasa", "ucbcs"} {
		if *workload != "both" && *workload != name {
			continue
		}
		start := time.Now()
		w, err := buildWorkload(name, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "reproduce: prepared %s workload: %d records, %d sessions, %d days (%.1fs)\n",
			name, len(w.Trace.Records), len(w.Sessions), w.Days(),
			time.Since(start).Seconds())
		loads = append(loads, w)
	}
	if len(loads) == 0 {
		fmt.Fprintf(os.Stderr, "reproduce: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	for _, w := range loads {
		if err := run(w, *exp, *csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %s: %v\n", w.Name, err)
			os.Exit(1)
		}
	}
}

func buildWorkload(name, scale string) (*experiments.Workload, error) {
	var p tracegen.Profile
	switch name {
	case "nasa":
		p = tracegen.NASA()
	case "ucbcs":
		p = tracegen.UCBCS()
	}
	if scale == "small" {
		p.Days = 4
		p.SessionsPerDay /= 2
		p.Pages /= 2
		p.Browsers /= 2
		p.CrawlerPagesPerDay = 150
	}
	return experiments.FromProfile(p)
}

func run(w *experiments.Workload, exp, csvDir string) error {
	cfg := experiments.SweepConfig{}
	all := exp == "all"

	emit := func(name string, artifact interface {
		fmt.Stringer
		experiments.CSVWriter
	}) error {
		fmt.Println(artifact)
		if csvDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(csvDir, fmt.Sprintf("%s-%s.csv", w.Name, name)))
		if err != nil {
			return err
		}
		defer f.Close()
		return artifact.WriteCSV(f)
	}

	if all || exp == "fig2" {
		f, err := experiments.RunFigure2(w, cfg)
		if err != nil {
			return err
		}
		if err := emit("fig2", f); err != nil {
			return err
		}
	}
	if all || exp == "fig3" {
		f, err := experiments.RunFigure3(w, cfg)
		if err != nil {
			return err
		}
		if err := emit("fig3", f); err != nil {
			return err
		}
	}
	if all || exp == "table" {
		t, err := experiments.RunSpaceTable(w, cfg)
		if err != nil {
			return err
		}
		if err := emit("table", t); err != nil {
			return err
		}
	}
	if all || exp == "fig4" {
		f, err := experiments.RunFigure4(w, cfg)
		if err != nil {
			return err
		}
		if err := emit("fig4", f); err != nil {
			return err
		}
	}
	if all || exp == "fig5" {
		f, err := experiments.RunFigure5(w, experiments.Figure5Config{})
		if err != nil {
			return err
		}
		if err := emit("fig5", f); err != nil {
			return err
		}
	}
	if all || exp == "baselines" {
		bl, err := experiments.RunBaselines(w)
		if err != nil {
			return err
		}
		if err := emit("baselines", bl); err != nil {
			return err
		}
	}
	if all || exp == "maintenance" {
		m, err := experiments.RunMaintenance(w)
		if err != nil {
			return err
		}
		if err := emit("maintenance", m); err != nil {
			return err
		}
	}
	if all || exp == "ablations" {
		for _, runAbl := range []func(*experiments.Workload) (*experiments.Ablation, error){
			experiments.RunAblationThresholds,
			experiments.RunAblationSpaceOpt,
			experiments.RunAblationHeights,
			experiments.RunAblationLinks,
			experiments.RunAblationCachePolicy,
			experiments.RunAblationBlending,
			experiments.RunAblationOnlineTraining,
		} {
			a, err := runAbl(w)
			if err != nil {
				return err
			}
			if err := emit("ablation-"+a.Name, a); err != nil {
				return err
			}
		}
	}
	switch exp {
	case "all", "fig2", "fig3", "table", "fig4", "fig5", "baselines", "maintenance", "ablations":
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
