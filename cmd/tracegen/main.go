// Command tracegen emits a synthetic Web-server access log in Common
// Log Format, using the NASA-like or UCB-CS-like workload profile.
//
// Usage:
//
//	tracegen [-profile nasa|ucbcs] [-days N] [-sessions N] [-pages N]
//	         [-seed N] [-o trace.log] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"flag"
	"fmt"
	"os"

	"pbppm/internal/obs"
	"pbppm/internal/trace"
	"pbppm/internal/tracegen"
)

func main() {
	os.Exit(realMain())
}

// realMain returns the exit code so the deferred profile stop runs
// before the process exits.
func realMain() int {
	var (
		profileName = flag.String("profile", "nasa", "workload profile: nasa or ucbcs")
		days        = flag.Int("days", 0, "override number of days (0 = profile default)")
		sessions    = flag.Int("sessions", 0, "override sessions per day (0 = profile default)")
		pages       = flag.Int("pages", 0, "override site page count (0 = profile default)")
		seed        = flag.Int64("seed", 0, "override random seed (0 = profile default: nasa 19950701, ucbcs 20000701)")
		out         = flag.String("o", "", "output file (default: stdout)")
		split       = flag.Bool("split", false, "write one file per day: <o>.day<N> (requires -o)")
		anonSalt    = flag.String("anonymize", "", "replace client identifiers with salted pseudonyms")
	)
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	flag.Parse()

	var p tracegen.Profile
	switch *profileName {
	case "nasa":
		p = tracegen.NASA()
	case "ucbcs":
		p = tracegen.UCBCS()
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown profile %q (want nasa or ucbcs)\n", *profileName)
		return 2
	}
	if *days > 0 {
		p.Days = *days
	}
	if *sessions > 0 {
		p.SessionsPerDay = *sessions
	}
	if *pages > 0 {
		p.Pages = *pages
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		}
	}()

	tr, err := tracegen.Generate(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		return 1
	}
	if *anonSalt != "" {
		tr = tr.Anonymize(*anonSalt)
	}

	if *split {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "tracegen: -split requires -o")
			return 2
		}
		for day, sub := range tr.SplitByDay() {
			name := fmt.Sprintf("%s.day%d", *out, day)
			f, err := os.Create(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
				return 1
			}
			if err := trace.WriteCLF(f, sub); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
				return 1
			}
			f.Close()
		}
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d records into per-day files %s.dayN\n",
			len(tr.Records), *out)
		return 0
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCLF(w, tr); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d records over %d days (profile %s, seed %d)\n",
		len(tr.Records), tr.Days(), p.Name, p.Seed)
	return 0
}
