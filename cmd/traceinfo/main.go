// Command traceinfo summarizes a Web access log: volume, clients,
// sessions, popularity structure, the paper's three surfing
// regularities, the grade-transition matrix, and a Zipf fit of the URL
// popularity distribution. It reads Common Log Format from a file or
// stdin.
//
// Usage:
//
//	traceinfo [trace.log]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pbppm/internal/analysis"
	"pbppm/internal/metrics"
	"pbppm/internal/popularity"
	"pbppm/internal/session"
	"pbppm/internal/trace"
)

func main() {
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}

	tr, skipped, err := trace.ReadCLF(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
		os.Exit(1)
	}
	if len(tr.Records) == 0 {
		fmt.Fprintf(os.Stderr, "traceinfo: %s holds no parseable records\n", name)
		os.Exit(1)
	}

	sessions := session.Sessionize(tr, session.Config{})
	lengths := analysis.MeasureLengths(sessions)
	rep, rank := analysis.MeasureRegularities(sessions)
	classes := session.ClassifyClients(tr, 0)
	proxies := 0
	for _, c := range classes {
		if c == session.Proxy {
			proxies++
		}
	}
	hist := rank.GradeHistogram()

	fmt.Printf("trace %s\n", name)
	tb := &metrics.Table{Headers: []string{"property", "value"}}
	tb.AddRow("records", fmt.Sprint(len(tr.Records)))
	tb.AddRow("skipped lines", fmt.Sprint(skipped))
	tb.AddRow("days", fmt.Sprint(tr.Days()))
	tb.AddRow("clients", fmt.Sprint(len(classes)))
	tb.AddRow("proxy-class clients", fmt.Sprint(proxies))
	tb.AddRow("distinct page URLs", fmt.Sprint(rank.Len()))
	tb.AddRow("sessions", fmt.Sprint(rep.Sessions))
	tb.AddRow("mean session length", fmt.Sprintf("%.2f", lengths.Mean))
	tb.AddRow("median / p95 / max length",
		fmt.Sprintf("%d / %d / %d", lengths.Median, lengths.P95, lengths.Max))
	tb.AddRow("sessions <= 9 clicks", metrics.Pct(lengths.AtMostNine))
	for g := popularity.MaxGrade; g >= 0; g-- {
		tb.AddRow(fmt.Sprintf("grade-%d URLs", g), fmt.Sprint(hist[g]))
	}
	if alpha, r2, err := analysis.ZipfFit(rank); err == nil {
		tb.AddRow("Zipf alpha (fit R²)", fmt.Sprintf("%.2f (%.2f)", alpha, r2))
	}
	fmt.Print(tb.String())

	fmt.Println("\nsurfing regularities (paper §1)")
	fmt.Print(rep)
	if rep.Holds() {
		fmt.Println("=> all three regularities hold")
	} else {
		fmt.Println("=> the regularities do NOT all hold (UCB-CS-style irregular trace?)")
	}

	fmt.Println("\ngrade transition matrix (rows: from-grade, cols: to-grade)")
	m := analysis.TransitionMatrix(sessions, rank)
	mt := &metrics.Table{Headers: []string{"from\\to", "g0", "g1", "g2", "g3"}}
	for a := popularity.MaxGrade; a >= 0; a-- {
		mt.AddRow(fmt.Sprintf("g%d", a),
			fmt.Sprint(m[a][0]), fmt.Sprint(m[a][1]),
			fmt.Sprint(m[a][2]), fmt.Sprint(m[a][3]))
	}
	fmt.Print(mt.String())
}
