// Package pbppm is a library and trace-driven simulation framework for
// popularity-based PPM Web prefetching, reproducing Chen & Zhang,
// "Popularity-Based PPM: An Effective Web Prefetching Technique for
// High Accuracy and Low Storage" (ICPP 2002).
//
// The package re-exports the building blocks a downstream user needs:
//
//   - three prediction models — the standard fixed/unbounded-height PPM
//     model, the Longest-Repeating-Subsequences model (Pitkow &
//     Pirolli), and the paper's popularity-based PPM — all implementing
//     the Predictor interface;
//   - relative-popularity ranking with the paper's log10 grade scale;
//   - access-log handling: Common Log Format parsing, 30-minute-idle
//     sessionization with embedded-image folding, proxy/browser client
//     classification;
//   - a synthetic trace generator reproducing the surfing regularities
//     the paper's findings rest on, standing in for the NASA-KSC and
//     UCB-CS logs;
//   - a trace-driven simulator with LRU browser/proxy caches, a fitted
//     linear latency model, and the paper's §2.3 metrics (hit ratio,
//     latency reduction, node-count space, traffic increment);
//   - the experiment harness that regenerates every table and figure of
//     the paper's evaluation.
//
// # Quick start
//
//	profile := pbppm.NASAProfile()
//	trace, _ := pbppm.GenerateTrace(profile)
//	sessions := pbppm.Sessionize(trace, pbppm.SessionConfig{})
//
//	rank := pbppm.NewRanking()
//	for _, s := range sessions {
//		for _, u := range s.URLs() {
//			rank.Observe(u, 1)
//		}
//	}
//	model := pbppm.NewPopularityPPM(rank, pbppm.PopularityPPMConfig{})
//	for _, s := range sessions {
//		model.TrainSequence(s.URLs())
//	}
//	model.Optimize()
//	fmt.Println(model.Predict([]string{"/d0/page0000.html"}))
//
// See the examples directory for runnable programs and DESIGN.md for
// the system inventory and experiment index.
package pbppm
