package pbppm_test

import (
	"fmt"
	"strings"
	"time"

	"pbppm"
)

// The paper's Figure 1: build the popularity-based tree from the
// access sequence A B C A' B' C' and predict from the root A.
func ExampleNewPopularityPPM() {
	grades := pbppm.FixedGrades{
		"A": 3, "A'": 3, "B": 2, "B'": 2, "C": 1, "C'": 1,
	}
	model := pbppm.NewPopularityPPM(grades, pbppm.PopularityPPMConfig{
		Heights: [4]int{1, 2, 3, 4}, // the example's maximum height 4
	})
	model.TrainSequence([]string{"A", "B", "C", "A'", "B'", "C'"})

	fmt.Println("nodes:", model.NodeCount(), "links:", model.LinkCount())
	for _, p := range model.Predict([]string{"A"}) {
		fmt.Printf("predict %s (P=%.2f)\n", p.URL, p.Probability)
	}
	// Output:
	// nodes: 8 links: 1
	// predict A' (P=1.00)
	// predict B (P=1.00)
}

// Relative popularity and the paper's log10 grade scale.
func ExampleNewRanking() {
	rank := pbppm.NewRanking()
	rank.Observe("/home", 1000)
	rank.Observe("/section", 90)
	rank.Observe("/page", 7)
	rank.Observe("/attic", 1)

	for _, url := range rank.Top(4) {
		fmt.Printf("%-9s RP=%.3f grade %d\n", url, rank.Relative(url), rank.GradeOf(url))
	}
	// Output:
	// /home     RP=1.000 grade 3
	// /section  RP=0.090 grade 2
	// /page     RP=0.007 grade 1
	// /attic    RP=0.001 grade 1
}

// Sessionizing a raw access log: the 30-minute idle rule and the
// 10-second embedded-image fold.
func ExampleSessionize() {
	epoch := time.Date(1995, 7, 1, 0, 0, 0, 0, time.UTC)
	rec := func(sec int, url string) pbppm.Record {
		return pbppm.Record{
			Client: "client1", Time: epoch.Add(time.Duration(sec) * time.Second),
			Method: "GET", URL: url, Status: 200, Bytes: 1000,
		}
	}
	tr := &pbppm.Trace{Epoch: epoch, Records: []pbppm.Record{
		rec(0, "/index.html"),
		rec(3, "/logo.gif"), // embedded: within 10 s of the page
		rec(40, "/news.html"),
		rec(4000, "/late.html"), // > 30 min idle: a new session
	}}

	for i, s := range pbppm.Sessionize(tr, pbppm.SessionConfig{}) {
		fmt.Printf("session %d: %s", i+1, strings.Join(s.URLs(), " -> "))
		fmt.Printf(" (%d embedded)\n", len(s.Views[0].Embedded))
	}
	// Output:
	// session 1: /index.html -> /news.html (1 embedded)
	// session 2: /late.html (0 embedded)
}

// Fitting the paper's latency model from measured samples.
func ExampleFitLatency() {
	truth := pbppm.LatencyModel{
		Connect:      200 * time.Millisecond,
		TransferRate: 10 * time.Microsecond, // per byte
	}
	var samples []pbppm.LatencySample
	for _, size := range []int64{1000, 5000, 20000, 60000} {
		samples = append(samples, pbppm.LatencySample{Size: size, Latency: truth.Estimate(size)})
	}
	m, err := pbppm.FitLatency(samples)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("connect ~%v, 10KB fetch ~%v\n",
		m.Connect.Round(time.Millisecond), m.Estimate(10_000).Round(time.Millisecond))
	// Output:
	// connect ~200ms, 10KB fetch ~300ms
}

// The three models behind one interface.
func ExamplePredictor() {
	grades := pbppm.FixedGrades{"/a": 3}
	models := []pbppm.Predictor{
		pbppm.NewStandardPPM(pbppm.PPMConfig{Height: 3}),
		pbppm.NewLRS(pbppm.LRSConfig{}),
		pbppm.NewPopularityPPM(grades, pbppm.PopularityPPMConfig{}),
	}
	for _, m := range models {
		for i := 0; i < 2; i++ {
			m.TrainSequence([]string{"/a", "/b"})
		}
		p := m.Predict([]string{"/a"})
		fmt.Printf("%s: %s (%d nodes)\n", m.Name(), p[0].URL, m.NodeCount())
	}
	// Output:
	// 3-PPM: /b (3 nodes)
	// LRS-PPM: /b (3 nodes)
	// PB-PPM: /b (2 nodes)
}
