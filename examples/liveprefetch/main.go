// Liveprefetch spins up the real HTTP prefetching server in-process,
// points a cooperating prefetching client at it, and walks a popular
// surfing path: the second click is served from the browser cache
// because the server hinted it and the client prefetched it.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"pbppm"
)

func main() {
	// Content: a tiny site with a learnable path.
	store := pbppm.MapStore{}
	for url, size := range map[string]int{
		"/home": 4096, "/news": 3072, "/news/today": 2048, "/sports": 3584,
	} {
		store[url] = pbppm.Document{URL: url, Body: make([]byte, size)}
	}

	// Train PB-PPM on historical sessions.
	rank := pbppm.NewRanking()
	history := [][]string{
		{"/home", "/news", "/news/today"},
		{"/home", "/news", "/news/today"},
		{"/home", "/sports"},
		{"/home", "/news"},
	}
	for _, s := range history {
		for _, u := range s {
			rank.Observe(u, 1)
		}
	}
	model := pbppm.NewPopularityPPM(rank, pbppm.PopularityPPMConfig{})
	for _, s := range history {
		model.TrainSequence(s)
	}

	// The deployable server, with hints, behind a test listener.
	srv := pbppm.NewHTTPServer(store, pbppm.HTTPServerConfig{Predictor: model})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Printf("server listening at %s\n\n", ts.URL)

	client, err := pbppm.NewHTTPClient(pbppm.HTTPClientConfig{
		ID:      "demo-browser",
		BaseURL: ts.URL,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, url := range []string{"/home", "/news", "/news/today", "/news"} {
		src, err := client.Get(url)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GET %-12s served from %s\n", url, src)
		client.Wait() // let background prefetches land before the next click
	}

	cst := client.Stats()
	sst := srv.Stats()
	fmt.Printf("\nclient: %d requests, %d prefetch hits, %d cache hits (hit ratio %.0f%%)\n",
		cst.Requests, cst.PrefetchHits, cst.CacheHits, 100*cst.HitRatio())
	fmt.Printf("server: %d demand requests seen, %d prefetch fetches, %d hints issued\n",
		sst.DemandRequests, sst.PrefetchRequests, sst.HintsIssued)
}
