// Modelcompare walks through the paper's Figure 1 example: it builds
// the standard PPM tree and the popularity-based PPM tree from the
// same access sequence and prints both structures, showing where the
// space savings and the special popular-node links come from.
package main

import (
	"fmt"

	"pbppm"
)

func main() {
	// The paper's example sequence A B C A' B' C' with grades
	// A,A' = 3; B,B' = 2; C,C' = 1 and maximum height 4.
	grades := pbppm.FixedGrades{
		"A": 3, "A'": 3, "B": 2, "B'": 2, "C": 1, "C'": 1,
	}
	seq := []string{"A", "B", "C", "A'", "B'", "C'"}
	fmt.Printf("access sequence: %v\n", seq)
	fmt.Println("grades: A,A'=3  B,B'=2  C,C'=1   (maximum height 4)")

	std := pbppm.NewStandardPPM(pbppm.PPMConfig{Height: 4})
	std.TrainSequence(seq)
	fmt.Printf("\nstandard PPM tree (every position roots a branch) — %d nodes:\n", std.NodeCount())
	fmt.Print(indent(std.Tree().String()))

	pb := pbppm.NewPopularityPPM(grades, pbppm.PopularityPPMConfig{
		Heights: [4]int{1, 2, 3, 4},
	})
	pb.TrainSequence(seq)
	st := pb.Stats()
	fmt.Printf("\npopularity-based PPM tree — %d nodes (%d tree + %d duplicated links):\n",
		st.Nodes, st.Nodes-st.Links, st.Links)
	fmt.Print(indent(pb.Tree().String()))
	fmt.Println("  (special link: A -> duplicated A', because A' is a top-grade URL")
	fmt.Println("   that does not immediately follow the branch head A)")

	fmt.Printf("\nroots by grade: %v — most roots are popular URLs, as the paper argues.\n",
		st.RootsByGrade)

	// Predictions at the root A include both the next click B and the
	// linked popular duplicate A'.
	fmt.Println("\nPB-PPM predictions when the user clicks A:")
	for _, p := range pb.Predict([]string{"A"}) {
		fmt.Printf("  %-3s P=%.2f\n", p.URL, p.Probability)
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
