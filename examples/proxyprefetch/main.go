// Proxyprefetch demonstrates §5 of the paper: prefetching between a
// Web server and a shared proxy cache. A growing population of browser
// clients attaches to one proxy; the server pushes predicted documents
// to the proxy alongside its responses.
package main

import (
	"fmt"
	"log"
	"sort"

	"pbppm"
)

func main() {
	profile := pbppm.NASAProfile()
	profile.Days = 4
	profile.SessionsPerDay = 400
	profile.Pages = 250
	profile.Browsers = 150
	profile.CrawlerPagesPerDay = 120

	tr, err := pbppm.GenerateTrace(profile)
	if err != nil {
		log.Fatal(err)
	}
	sessions := pbppm.Sessionize(tr, pbppm.SessionConfig{})

	cut := tr.Epoch.AddDate(0, 0, 3)
	var train, test []pbppm.Session
	for _, s := range sessions {
		if s.Start().Before(cut) {
			train = append(train, s)
		} else {
			test = append(test, s)
		}
	}

	rank := pbppm.NewRanking()
	for _, s := range train {
		for _, u := range s.URLs() {
			rank.Observe(u, 1)
		}
	}

	// One trained PB-PPM model serves every population size: prediction
	// does not mutate the tree.
	model := pbppm.NewPopularityPPM(rank, pbppm.PopularityPPMConfig{
		RelProbCutoff: 0.01, DropSingletons: true,
	})
	pbppm.Train(model, train)

	// Pick the busiest browser-class clients on the test day.
	classes := pbppm.ClassifyClients(tr, 0)
	activity := map[string]int{}
	for _, s := range test {
		if classes[s.Client] == pbppm.Browser {
			activity[s.Client] += s.Len()
		}
	}
	clients := make([]string, 0, len(activity))
	for c := range activity {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool {
		if activity[clients[i]] != activity[clients[j]] {
			return activity[clients[i]] > activity[clients[j]]
		}
		return clients[i] < clients[j]
	})

	fmt.Printf("%8s %10s %12s %14s %10s\n",
		"clients", "hit ratio", "proxy hits", "proxy prefetch", "traffic+")
	for _, n := range []int{1, 2, 4, 8, 16} {
		if n > len(clients) {
			break
		}
		selected := map[string]bool{}
		for _, c := range clients[:n] {
			selected[c] = true
		}
		var subset []pbppm.Session
		for _, s := range test {
			if selected[s.Client] {
				subset = append(subset, s)
			}
		}
		res := pbppm.RunSimulation(subset, pbppm.SimOptions{
			Predictor:        model,
			MaxPrefetchBytes: 10 * 1024, // the paper's PB-PPM-10KB variant
			UseProxy:         true,
			Grades:           rank,
			Sizes:            pbppm.BuildSizeTable(train, test),
		})
		fmt.Printf("%8d %9.1f%% %12d %14d %9.1f%%\n",
			n, 100*res.HitRatio(), res.ProxyCacheHits, res.ProxyPrefetchHits,
			100*res.TrafficIncrease())
	}
	fmt.Println("\nMore clients behind the proxy raise the total hit ratio (shared")
	fmt.Println("cache + shared prefetches) while the traffic increment falls —")
	fmt.Println("the trends of Figure 5 in the paper.")
}
