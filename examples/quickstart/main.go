// Quickstart: build a popularity-based PPM model from a handful of
// access sessions and ask it what to prefetch.
package main

import (
	"fmt"

	"pbppm"
)

func main() {
	// Historical sessions the server observed. Surfing follows the
	// paper's regularities: sessions start at the popular home page,
	// descend into sections, and sometimes return to a popular hub.
	sessions := [][]string{
		{"/home", "/news", "/news/today", "/sports"},
		{"/home", "/news", "/news/today"},
		{"/home", "/sports", "/sports/scores"},
		{"/home", "/news", "/news/today", "/sports"},
		{"/home", "/sports", "/sports/scores"},
		{"/weather", "/home", "/news"},
	}

	// Rank URL popularity over the history (relative popularity, §3.1).
	rank := pbppm.NewRanking()
	for _, s := range sessions {
		for _, u := range s {
			rank.Observe(u, 1)
		}
	}
	fmt.Println("popularity grades:")
	for _, u := range rank.Top(4) {
		fmt.Printf("  %-15s grade %d (RP %.2f)\n", u, rank.GradeOf(u), rank.Relative(u))
	}

	// Build the popularity-based PPM model: branch heights follow the
	// heading URL's grade; popular mid-path URLs get duplicated links.
	model := pbppm.NewPopularityPPM(rank, pbppm.PopularityPPMConfig{})
	for _, s := range sessions {
		model.TrainSequence(s)
	}
	removed := model.Optimize()
	fmt.Printf("\nmodel: %d nodes (%d links), %d removed by space optimization\n",
		model.NodeCount(), model.LinkCount(), removed)

	// A user has just clicked /home then /news: what should the server
	// piggyback on the response?
	context := []string{"/home", "/news"}
	fmt.Printf("\npredictions after %v:\n", context)
	for _, p := range model.Predict(context) {
		fmt.Printf("  prefetch %-15s P=%.2f (order-%d context)\n", p.URL, p.Probability, p.Order)
	}
}
