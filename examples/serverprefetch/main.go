// Serverprefetch reproduces the paper's client–server evaluation in
// miniature: generate a NASA-like synthetic trace, train the three
// prediction models on the first days, replay the final day, and
// compare hit ratios, latency reductions, space, and traffic.
package main

import (
	"fmt"
	"log"

	"pbppm"
)

func main() {
	// A scaled-down NASA-like workload (the full profile is what the
	// benchmarks use; this keeps the example instant).
	profile := pbppm.NASAProfile()
	profile.Days = 4
	profile.SessionsPerDay = 400
	profile.Pages = 250
	profile.Browsers = 150
	profile.CrawlerPagesPerDay = 120

	tr, err := pbppm.GenerateTrace(profile)
	if err != nil {
		log.Fatal(err)
	}
	sessions := pbppm.Sessionize(tr, pbppm.SessionConfig{})
	fmt.Printf("workload: %d records, %d sessions over %d days\n",
		len(tr.Records), len(sessions), tr.Days())

	// Train on days 0-2, test on day 3.
	cut := tr.Epoch.AddDate(0, 0, 3)
	var train, test []pbppm.Session
	for _, s := range sessions {
		if s.Start().Before(cut) {
			train = append(train, s)
		} else {
			test = append(test, s)
		}
	}

	// The server's popularity ranking comes from the training window.
	rank := pbppm.NewRanking()
	for _, s := range train {
		for _, u := range s.URLs() {
			rank.Observe(u, 1)
		}
	}

	grades := rank
	runs := []pbppm.NamedRun{
		{Options: pbppm.SimOptions{
			Predictor:        pbppm.NewStandardPPM(pbppm.PPMConfig{}),
			MaxPrefetchBytes: pbppm.DefaultMaxPrefetchBytes,
			Grades:           grades,
		}},
		{Options: pbppm.SimOptions{
			Predictor:        pbppm.NewLRS(pbppm.LRSConfig{}),
			MaxPrefetchBytes: pbppm.DefaultMaxPrefetchBytes,
			Grades:           grades,
		}},
		{Options: pbppm.SimOptions{
			Predictor: pbppm.NewPopularityPPM(rank, pbppm.PopularityPPMConfig{
				RelProbCutoff:  0.01,
				DropSingletons: true,
			}),
			MaxPrefetchBytes: pbppm.PBMaxPrefetchBytes,
			Grades:           grades,
		}},
	}
	results := pbppm.CompareModels(train, test, runs)

	base := results[0]
	fmt.Printf("\n%-10s %10s %10s %10s %10s\n",
		"model", "hit ratio", "lat. red.", "traffic+", "nodes")
	for _, r := range results {
		fmt.Printf("%-10s %9.1f%% %9.1f%% %9.1f%% %10d\n",
			r.Model, 100*r.HitRatio(), 100*r.LatencyReductionVs(base),
			100*r.TrafficIncrease(), r.Nodes)
	}
	fmt.Println("\nPB-PPM stays within a few percent of the other models while storing")
	fmt.Println("a tiny fraction of their nodes; at paper scale (cmd/reproduce) it")
	fmt.Println("also takes the best hit ratio and latency reduction on this workload.")
}
