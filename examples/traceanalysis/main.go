// Traceanalysis reproduces the paper's observational study on both
// synthetic workloads: it generates the NASA-like and UCB-CS-like
// traces and measures the three surfing regularities, the session
// length distribution, and the Zipf shape of URL popularity — the
// §1/§3.1 groundwork the popularity-based model is built on.
package main

import (
	"fmt"
	"log"

	"pbppm"
)

func main() {
	for _, build := range []func() pbppm.Profile{pbppm.NASAProfile, pbppm.UCBCSProfile} {
		p := build()
		p.Days = 3 // a slice of the full workload keeps the demo quick
		tr, err := pbppm.GenerateTrace(p)
		if err != nil {
			log.Fatal(err)
		}
		sessions := pbppm.Sessionize(tr, pbppm.SessionConfig{})

		fmt.Printf("=== %s-like workload: %d records, %d sessions ===\n",
			p.Name, len(tr.Records), len(sessions))

		rep, rank := pbppm.MeasureRegularities(sessions)
		fmt.Print(rep)
		if rep.Holds() {
			fmt.Println("-> the paper's three regularities hold")
		} else {
			fmt.Println("-> irregular surfing (the UCB-CS situation in the paper)")
		}

		lengths := pbppm.MeasureLengths(sessions)
		fmt.Printf("session lengths: mean %.2f, median %d, p95 %d, <=9 clicks %.1f%%\n",
			lengths.Mean, lengths.Median, lengths.P95, 100*lengths.AtMostNine)

		if alpha, r2, err := pbppm.ZipfFit(rank); err == nil {
			fmt.Printf("popularity is Zipf-like: alpha %.2f (fit R² %.2f)\n", alpha, r2)
		}

		m := pbppm.TransitionMatrix(sessions, rank)
		fmt.Println("grade transition counts (from popular g3 downward):")
		for g := 3; g >= 0; g-- {
			fmt.Printf("  g%d -> [g0 %6d  g1 %6d  g2 %6d  g3 %6d]\n",
				g, m[g][0], m[g][1], m[g][2], m[g][3])
		}
		fmt.Println()
	}
}
