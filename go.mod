module pbppm

go 1.22
