// Package analysis reproduces the paper's observational study of Web
// surfing patterns (§1 and §3.1, after the authors' companion report
// "Popularity-based Web surfing patterns"): quantitative measurements
// of the three regularities, session-length distributions, popularity
// grade transition structure, and a Zipf fit of the URL popularity
// distribution. The trace generator's tests use these measurements to
// prove the synthetic workloads carry the structure the paper's
// findings rest on; cmd/traceinfo reports them for any trace.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pbppm/internal/popularity"
	"pbppm/internal/session"
)

// RegularityReport quantifies the paper's three surfing regularities
// over a sessionized trace.
type RegularityReport struct {
	Sessions int

	// R1: most sessions start from popular URLs while most URLs are
	// unpopular.
	PopularHeadShare   float64 // sessions headed by grade >= 2 URLs
	UnpopularURLShare  float64 // URLs of grade <= 1
	HeadGradeHistogram [4]int

	// R2: long sessions are headed by popular URLs.
	LongSessions         int
	LongPopularHeadShare float64

	// R3: paths descend in popularity and exit at the least popular.
	Descents, Ascents, Flats int
	ExitGradeHistogram       [4]int
}

// LongSessionMin is the click count from which a session counts as
// long for Regularity 2.
const LongSessionMin = 6

// MeasureRegularities computes a RegularityReport. The ranking is
// derived from the sessions themselves (page views only).
func MeasureRegularities(sessions []session.Session) (RegularityReport, *popularity.Ranking) {
	rank := popularity.NewRanking()
	for _, s := range sessions {
		for _, v := range s.Views {
			rank.Observe(v.URL, 1)
		}
	}
	var rep RegularityReport
	rep.Sessions = len(sessions)

	popularHeads, longPopular := 0, 0
	for _, s := range sessions {
		urls := s.URLs()
		headGrade := rank.GradeOf(urls[0])
		rep.HeadGradeHistogram[headGrade]++
		if headGrade >= 2 {
			popularHeads++
		}
		if len(urls) >= LongSessionMin {
			rep.LongSessions++
			if headGrade >= 2 {
				longPopular++
			}
		}
		rep.ExitGradeHistogram[rank.GradeOf(urls[len(urls)-1])]++
		for i := 1; i < len(urls); i++ {
			a, b := rank.GradeOf(urls[i-1]), rank.GradeOf(urls[i])
			switch {
			case b < a:
				rep.Descents++
			case b > a:
				rep.Ascents++
			default:
				rep.Flats++
			}
		}
	}
	if rep.Sessions > 0 {
		rep.PopularHeadShare = float64(popularHeads) / float64(rep.Sessions)
	}
	if rep.LongSessions > 0 {
		rep.LongPopularHeadShare = float64(longPopular) / float64(rep.LongSessions)
	}
	hist := rank.GradeHistogram()
	total := 0
	for _, n := range hist {
		total += n
	}
	if total > 0 {
		rep.UnpopularURLShare = float64(hist[0]+hist[1]) / float64(total)
	}
	return rep, rank
}

// Holds reports whether the three regularities hold in their paper
// form: a majority of popular heads over a majority-unpopular URL
// population, popular-headed long sessions, and net descending drift.
func (r RegularityReport) Holds() bool {
	return r.PopularHeadShare > 0.5 &&
		r.UnpopularURLShare > 0.5 &&
		r.LongPopularHeadShare > 0.5 &&
		r.Descents > r.Ascents
}

// String renders the report.
func (r RegularityReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sessions %d\n", r.Sessions)
	fmt.Fprintf(&sb, "R1: popular heads %.1f%%, unpopular URLs %.1f%% (heads by grade %v)\n",
		100*r.PopularHeadShare, 100*r.UnpopularURLShare, r.HeadGradeHistogram)
	fmt.Fprintf(&sb, "R2: long sessions %d, popular-headed %.1f%%\n",
		r.LongSessions, 100*r.LongPopularHeadShare)
	fmt.Fprintf(&sb, "R3: descents %d, ascents %d, flats %d (exits by grade %v)\n",
		r.Descents, r.Ascents, r.Flats, r.ExitGradeHistogram)
	return sb.String()
}

// LengthDistribution summarizes session lengths.
type LengthDistribution struct {
	Histogram  map[int]int
	Mean       float64
	Median     int
	P95        int
	Max        int
	AtMostNine float64 // the paper's ">95% of sessions have <= 9 clicks"
}

// MeasureLengths computes the session-length distribution.
func MeasureLengths(sessions []session.Session) LengthDistribution {
	d := LengthDistribution{Histogram: make(map[int]int)}
	if len(sessions) == 0 {
		return d
	}
	lengths := make([]int, len(sessions))
	sum, short := 0, 0
	for i, s := range sessions {
		n := s.Len()
		lengths[i] = n
		d.Histogram[n]++
		sum += n
		if n <= 9 {
			short++
		}
		if n > d.Max {
			d.Max = n
		}
	}
	sort.Ints(lengths)
	d.Mean = float64(sum) / float64(len(lengths))
	d.Median = lengths[len(lengths)/2]
	d.P95 = lengths[(len(lengths)*95)/100]
	d.AtMostNine = float64(short) / float64(len(sessions))
	return d
}

// TransitionMatrix counts click transitions between popularity grades:
// cell [a][b] is the number of clicks from a grade-a page to a grade-b
// page. Row-normalizing exposes Regularity 3's structure.
func TransitionMatrix(sessions []session.Session, rank *popularity.Ranking) [4][4]int64 {
	var m [4][4]int64
	for _, s := range sessions {
		urls := s.URLs()
		for i := 1; i < len(urls); i++ {
			a := rank.GradeOf(urls[i-1])
			b := rank.GradeOf(urls[i])
			m[a][b]++
		}
	}
	return m
}

// ZipfFit estimates the Zipf exponent alpha of the URL popularity
// distribution by least-squares on log(count) vs log(rank), together
// with the fit's R². Web server popularity classically fits alpha
// near 1. It returns an error with fewer than three distinct URLs.
func ZipfFit(rank *popularity.Ranking) (alpha, r2 float64, err error) {
	urls := rank.Top(rank.Len())
	if len(urls) < 3 {
		return 0, 0, fmt.Errorf("analysis: zipf fit needs >= 3 URLs, have %d", len(urls))
	}
	var n, sx, sy, sxx, sxy float64
	ys := make([]float64, len(urls))
	xs := make([]float64, len(urls))
	for i, u := range urls {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(rank.Count(u)))
		xs[i], ys[i] = x, y
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("analysis: degenerate rank distribution")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	alpha = -slope

	mean := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := intercept + slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - mean) * (ys[i] - mean)
	}
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return alpha, r2, nil
}
