package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"pbppm/internal/popularity"
	"pbppm/internal/session"
	"pbppm/internal/tracegen"
)

var epoch = time.Date(1995, 7, 1, 0, 0, 0, 0, time.UTC)

func mkSession(urls ...string) session.Session {
	s := session.Session{Client: "c"}
	for i, u := range urls {
		s.Views = append(s.Views, session.PageView{URL: u, Time: epoch.Add(time.Duration(i) * time.Minute)})
	}
	return s
}

// structured builds a session set with known regularity structure: a
// very popular head /hub (grade 3), mid pages shared by ten sessions
// each (grade 2), and unique leaves (grade 0/1).
func structured() []session.Session {
	var out []session.Session
	for i := 0; i < 200; i++ {
		mid := fmt.Sprintf("/mid%02d.html", i/10)
		leaf1 := fmt.Sprintf("/leaf%03da.html", i)
		leaf2 := fmt.Sprintf("/leaf%03db.html", i)
		out = append(out, mkSession("/hub", mid, leaf1, leaf2))
	}
	// Long popular-headed sessions with unique deep tails.
	for i := 0; i < 8; i++ {
		out = append(out, mkSession("/hub", "/mid00.html",
			fmt.Sprintf("/deep%02da.html", i), fmt.Sprintf("/deep%02db.html", i),
			fmt.Sprintf("/deep%02dc.html", i), fmt.Sprintf("/deep%02dd.html", i)))
	}
	// A couple of unpopular-headed short sessions.
	out = append(out, mkSession("/zq9.html"), mkSession("/zq8.html"))
	return out
}

func TestMeasureRegularities(t *testing.T) {
	rep, rank := MeasureRegularities(structured())
	if rep.Sessions != 210 {
		t.Fatalf("sessions = %d", rep.Sessions)
	}
	if rep.PopularHeadShare < 0.9 {
		t.Errorf("popular head share = %v", rep.PopularHeadShare)
	}
	if rep.UnpopularURLShare < 0.5 {
		t.Errorf("unpopular URL share = %v", rep.UnpopularURLShare)
	}
	if rep.LongSessions != 8 || rep.LongPopularHeadShare != 1 {
		t.Errorf("long = %d, popular-headed %v", rep.LongSessions, rep.LongPopularHeadShare)
	}
	if rep.Descents <= rep.Ascents {
		t.Errorf("descents %d <= ascents %d", rep.Descents, rep.Ascents)
	}
	if !rep.Holds() {
		t.Error("regularities do not hold on structured data")
	}
	if rank.GradeOf("/hub") != 3 {
		t.Errorf("hub grade = %v", rank.GradeOf("/hub"))
	}
	out := rep.String()
	for _, want := range []string{"R1:", "R2:", "R3:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %s:\n%s", want, out)
		}
	}
}

func TestMeasureRegularitiesEmpty(t *testing.T) {
	rep, _ := MeasureRegularities(nil)
	if rep.Sessions != 0 || rep.Holds() {
		t.Errorf("empty report = %+v", rep)
	}
}

func TestMeasureLengths(t *testing.T) {
	var sessions []session.Session
	for _, n := range []int{1, 1, 2, 3, 3, 3, 4, 8, 12, 20} {
		urls := make([]string, n)
		for i := range urls {
			urls[i] = "/x"
		}
		sessions = append(sessions, mkSession(urls...))
	}
	d := MeasureLengths(sessions)
	if d.Max != 20 || d.Median != 3 {
		t.Errorf("max=%d median=%d", d.Max, d.Median)
	}
	if d.Mean < 5.6 || d.Mean > 5.8 {
		t.Errorf("mean = %v", d.Mean)
	}
	if d.AtMostNine != 0.8 {
		t.Errorf("AtMostNine = %v", d.AtMostNine)
	}
	if d.Histogram[3] != 3 {
		t.Errorf("hist[3] = %d", d.Histogram[3])
	}
	if got := MeasureLengths(nil); got.Mean != 0 {
		t.Errorf("empty lengths = %+v", got)
	}
}

func TestTransitionMatrix(t *testing.T) {
	sessions := structured()
	_, rank := MeasureRegularities(sessions)
	m := TransitionMatrix(sessions, rank)
	var total int64
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			total += m[a][b]
		}
	}
	clicks := int64(0)
	for _, s := range sessions {
		clicks += int64(s.Len() - 1)
	}
	if total != clicks {
		t.Errorf("matrix mass %d != transitions %d", total, clicks)
	}
	// The dominant flow out of grade 3 heads downward.
	down := m[3][0] + m[3][1] + m[3][2]
	if down <= m[3][3] {
		t.Errorf("grade-3 outflow not descending: down %d vs flat %d", down, m[3][3])
	}
}

func TestZipfFitRecoversExponent(t *testing.T) {
	rank := popularity.NewRanking()
	// Plant a perfect Zipf with alpha = 1.2 over 200 URLs.
	alpha := 1.2
	for i := 0; i < 200; i++ {
		count := int64(math.Round(1e6 / math.Pow(float64(i+1), alpha)))
		if count < 1 {
			count = 1
		}
		rank.Observe("/u"+string(rune('a'+i%26))+string(rune('0'+i/26)), count)
	}
	got, r2, err := ZipfFit(rank)
	if err != nil {
		t.Fatal(err)
	}
	if got < 1.1 || got > 1.3 {
		t.Errorf("alpha = %v, want ~1.2", got)
	}
	if r2 < 0.99 {
		t.Errorf("r2 = %v", r2)
	}
}

func TestZipfFitErrors(t *testing.T) {
	rank := popularity.NewRanking()
	rank.Observe("/a", 5)
	if _, _, err := ZipfFit(rank); err == nil {
		t.Error("fit with 1 URL accepted")
	}
}

// TestSyntheticWorkloadRegularities ties the toolkit to the generator:
// the NASA-like profile must exhibit all three regularities.
func TestSyntheticWorkloadRegularities(t *testing.T) {
	p := tracegen.NASA()
	p.Days = 2
	p.SessionsPerDay = 700
	p.Pages = 400
	p.EntryCount = 6
	p.Browsers = 300
	p.CrawlerPagesPerDay = 100
	tr, err := tracegen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	sessions := session.Sessionize(tr, session.Config{})
	rep, rank := MeasureRegularities(sessions)
	if !rep.Holds() {
		t.Errorf("synthetic workload violates the regularities:\n%s", rep)
	}
	alpha, r2, err := ZipfFit(rank)
	if err != nil {
		t.Fatal(err)
	}
	if alpha < 0.4 || alpha > 2.5 {
		t.Errorf("implausible Zipf alpha %v (r2 %v)", alpha, r2)
	}
}

// Property: transition matrix mass always equals total transitions for
// random session sets.
func TestTransitionMassProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var sessions []session.Session
	for i := 0; i < 300; i++ {
		n := rng.Intn(8) + 1
		urls := make([]string, n)
		for j := range urls {
			urls[j] = "/p" + string(rune('a'+rng.Intn(15)))
		}
		sessions = append(sessions, mkSession(urls...))
	}
	rep, rank := MeasureRegularities(sessions)
	m := TransitionMatrix(sessions, rank)
	var mass int64
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			mass += m[a][b]
		}
	}
	if mass != int64(rep.Descents+rep.Ascents+rep.Flats) {
		t.Errorf("matrix mass %d != %d", mass, rep.Descents+rep.Ascents+rep.Flats)
	}
}
