// Package benchreport is the experiment-observability subsystem: a
// versioned JSON schema for one reproduction run (the BENCH_*.json
// artifacts cmd/reproduce writes), helpers that measure wall time and
// allocation cost around an experiment, and a tolerance-based Compare
// that classifies every metric of a run against a baseline artifact as
// improved, unchanged, or regressed.
//
// The paper's contribution is an empirical claim — PB-PPM beats 3-PPM
// and LRS on accuracy per byte of model — so the reproduction pipeline
// must leave machine-checkable evidence behind, not just text tables:
// how long each experiment took, where the time went (per-phase totals
// from sim.PhaseClock), how big the trees were (markov.TreeStats), and
// the headline accuracy/traffic/latency numbers. A committed baseline
// artifact plus Compare turns every CI run into a regression gate for
// both the numbers and the speed of producing them.
package benchreport

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"pbppm/internal/markov"
)

// SchemaVersion identifies the artifact layout. Readers reject other
// versions loudly rather than guessing: a benchmark comparison against
// a misdecoded baseline is worse than no comparison.
const SchemaVersion = 1

// Environment pins the run's hardware and build context, so a
// comparison across machines or toolchains is visibly one.
type Environment struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU is the machine's logical CPU count; GOMAXPROCS is the
	// parallelism the runtime actually granted this process (container
	// quotas or an explicit GOMAXPROCS make it smaller). Throughput
	// numbers scale with the latter, so both are recorded.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Commit is the VCS revision baked into the binary, when built from
	// a checkout (empty under plain `go run` without VCS stamping).
	Commit string `json:"commit,omitempty"`
}

// CaptureEnvironment reads the current process's environment block.
func CaptureEnvironment() Environment {
	env := Environment{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				env.Commit = s.Value
			}
		}
	}
	return env
}

// ModelStats is the persisted subset of markov.TreeStats for one
// trained model — the storage side of the paper's accuracy-per-byte
// claim.
type ModelStats struct {
	Model    string `json:"model"`
	Nodes    int    `json:"nodes"`
	Leaves   int    `json:"leaves"`
	MaxDepth int    `json:"max_depth"`
	// ApproxBytes keeps its historical JSON key for artifact-schema
	// stability; since the compact tree layout it carries the measured
	// BytesEstimate rather than a per-node guess.
	ApproxBytes int64 `json:"approx_bytes"`
}

// ModelStatsFrom converts a tree walk into the persisted form.
func ModelStatsFrom(model string, st markov.TreeStats) ModelStats {
	return ModelStats{
		Model:       model,
		Nodes:       st.Nodes,
		Leaves:      st.Leaves,
		MaxDepth:    st.MaxDepth,
		ApproxBytes: st.Bytes,
	}
}

// Record is one experiment (or the workload build) of one workload.
type Record struct {
	// Experiment names the figure/table ("fig2", "baselines", ...;
	// "workload" for the trace build itself).
	Experiment string `json:"experiment"`
	Workload   string `json:"workload"`

	// WallSeconds is the end-to-end wall time of the experiment;
	// AllocBytes the heap allocated while it ran (runtime.MemStats
	// TotalAlloc delta — allocation pressure, not peak residency).
	WallSeconds float64 `json:"wall_seconds"`
	AllocBytes  uint64  `json:"alloc_bytes"`

	// Events counts replayed page views across every simulator run of
	// the experiment; EventsPerSec divides them by the simulate-phase
	// wall time (not WallSeconds, which includes training).
	Events       int64   `json:"events,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`

	// Phases maps sim phase names to summed wall seconds.
	Phases map[string]float64 `json:"phases,omitempty"`
	// Models holds tree statistics of the trained models, one entry per
	// model name (the last training window's tree for sweeps).
	Models []ModelStats `json:"models,omitempty"`
	// Metrics holds the experiment's headline numbers (hit_ratio_pb,
	// latency_reduction_pb, traffic_increase_pb, ...), the values the
	// regression gate guards.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is one reproduction run: the BENCH_*.json artifact.
type Report struct {
	Schema    int         `json:"schema"`
	Tool      string      `json:"tool"`
	Scale     string      `json:"scale,omitempty"`
	CreatedAt time.Time   `json:"created_at"`
	Env       Environment `json:"env"`
	Records   []Record    `json:"records"`
}

// New returns an empty report stamped with the current environment.
func New(tool, scale string) *Report {
	return &Report{
		Schema:    SchemaVersion,
		Tool:      tool,
		Scale:     scale,
		CreatedAt: time.Now().UTC(),
		Env:       CaptureEnvironment(),
	}
}

// Add appends one record.
func (r *Report) Add(rec Record) { r.Records = append(r.Records, rec) }

// Find returns the record for (experiment, workload), or nil.
func (r *Report) Find(experiment, workload string) *Record {
	for i := range r.Records {
		if r.Records[i].Experiment == experiment && r.Records[i].Workload == workload {
			return &r.Records[i]
		}
	}
	return nil
}

// Validate checks schema version and internal consistency; every
// reader calls it so a truncated or hand-edited artifact fails before
// it poisons a comparison.
func (r *Report) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("benchreport: artifact schema %d, this build reads %d", r.Schema, SchemaVersion)
	}
	if r.Tool == "" {
		return fmt.Errorf("benchreport: artifact has no tool name")
	}
	if r.Env.GoVersion == "" || r.Env.NumCPU <= 0 || r.Env.GOMAXPROCS <= 0 {
		return fmt.Errorf("benchreport: artifact has an incomplete environment block: %+v", r.Env)
	}
	seen := make(map[[2]string]bool, len(r.Records))
	for i, rec := range r.Records {
		if rec.Experiment == "" || rec.Workload == "" {
			return fmt.Errorf("benchreport: record %d missing experiment (%q) or workload (%q)",
				i, rec.Experiment, rec.Workload)
		}
		key := [2]string{rec.Experiment, rec.Workload}
		if seen[key] {
			return fmt.Errorf("benchreport: duplicate record %s/%s", rec.Experiment, rec.Workload)
		}
		seen[key] = true
		for name, v := range map[string]float64{
			"wall_seconds":   rec.WallSeconds,
			"events_per_sec": rec.EventsPerSec,
		} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("benchreport: record %s/%s: %s = %v out of range",
					rec.Experiment, rec.Workload, name, v)
			}
		}
		for name, v := range rec.Metrics {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("benchreport: record %s/%s: metric %s = %v not finite",
					rec.Experiment, rec.Workload, name, v)
			}
		}
		for name, v := range rec.Phases {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("benchreport: record %s/%s: phase %s = %v out of range",
					rec.Experiment, rec.Workload, name, v)
			}
		}
	}
	return nil
}

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("benchreport: encoding artifact: %w", err)
	}
	return nil
}

// Decode reads and validates a report.
func Decode(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("benchreport: decoding artifact: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// WriteFile writes the validated report to path.
func WriteFile(path string, r *Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("benchreport: %w", err)
	}
	if err := r.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads and validates the report at path.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("benchreport: %w", err)
	}
	defer f.Close()
	return Decode(f)
}
