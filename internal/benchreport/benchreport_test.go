package benchreport

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"pbppm/internal/markov"
	"pbppm/internal/sim"
)

// buildReport assembles a report the way cmd/reproduce does: a
// measured section, a phase clock, model stats, and headline metrics.
func buildReport() *Report {
	r := New("reproduce", "small")
	clock := sim.NewPhaseClock(nil)
	clock.Observe(sim.PhaseTrain, 200*time.Millisecond)
	clock.Observe(sim.PhaseSimulate, 800*time.Millisecond)
	clock.AddEvents(40000)
	models := map[string]markov.TreeStats{
		"PB-PPM":  {Nodes: 1200, Leaves: 700, MaxDepth: 7, Bytes: 150000},
		"LRS-PPM": {Nodes: 5400, Leaves: 3000, MaxDepth: 9, Bytes: 700000},
	}
	rec := NewRecord("fig2", "nasa",
		Measurement{Wall: 1100 * time.Millisecond, AllocBytes: 5 << 20},
		clock, models, map[string]float64{
			"popular_share_pb": 0.93,
			"utilization_pb":   0.71,
		})
	r.Add(rec)
	r.Add(Record{Experiment: "workload", Workload: "nasa", WallSeconds: 0.4,
		Phases: map[string]float64{sim.PhaseWorkloadBuild: 0.4}})
	return r
}

func TestReportRoundTrip(t *testing.T) {
	r := buildReport()
	path := filepath.Join(t.TempDir(), "BENCH_nasa.json")
	if err := WriteFile(path, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.Tool != "reproduce" || got.Scale != "small" {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.Env.GoVersion == "" || got.Env.NumCPU <= 0 || got.Env.GOMAXPROCS <= 0 {
		t.Errorf("environment not captured: %+v", got.Env)
	}
	if !reflect.DeepEqual(got.Records, r.Records) {
		t.Errorf("records did not round-trip:\n got %+v\nwant %+v", got.Records, r.Records)
	}
}

func TestNewRecordDerivesThroughputFromSimulatePhase(t *testing.T) {
	rec := buildReport().Records[0]
	// 40000 events over the 0.8s simulate phase, not the 1.1s wall.
	if rec.Events != 40000 {
		t.Errorf("Events = %d, want 40000", rec.Events)
	}
	if rec.EventsPerSec < 49999 || rec.EventsPerSec > 50001 {
		t.Errorf("EventsPerSec = %v, want 50000", rec.EventsPerSec)
	}
	if len(rec.Models) != 2 || rec.Models[0].Model != "LRS-PPM" || rec.Models[1].Model != "PB-PPM" {
		t.Errorf("models not sorted by name: %+v", rec.Models)
	}
}

func TestValidateRejectsBrokenArtifacts(t *testing.T) {
	cases := map[string]func(*Report){
		"wrong schema":    func(r *Report) { r.Schema = SchemaVersion + 1 },
		"no tool":         func(r *Report) { r.Tool = "" },
		"no env":          func(r *Report) { r.Env = Environment{} },
		"empty workload":  func(r *Report) { r.Records[0].Workload = "" },
		"negative wall":   func(r *Report) { r.Records[0].WallSeconds = -1 },
		"nan metric":      func(r *Report) { r.Records[0].Metrics["popular_share_pb"] = math.NaN() },
		"duplicate key":   func(r *Report) { r.Records[1] = r.Records[0] },
		"negative phase":  func(r *Report) { r.Records[1].Phases[sim.PhaseWorkloadBuild] = -0.1 },
		"inf events rate": func(r *Report) { r.Records[0].EventsPerSec = math.Inf(1) },
	}
	for name, mutate := range cases {
		r := buildReport()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken artifact", name)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("{not json")); err == nil {
		t.Error("Decode accepted malformed JSON")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("Decode accepted an empty artifact")
	}
}
