package benchreport

import (
	"runtime"
	"sort"
	"time"

	"pbppm/internal/markov"
	"pbppm/internal/sim"
)

// Measurement is the cost of one measured section.
type Measurement struct {
	Wall time.Duration
	// AllocBytes is the heap allocated while f ran (TotalAlloc delta):
	// allocation pressure, which tracks GC cost, not peak residency.
	AllocBytes uint64
}

// Measure runs f and returns its wall time and allocation delta along
// with f's error. The MemStats reads cost two stop-the-world pauses,
// which is noise at experiment granularity but makes Measure wrong for
// per-request use — it belongs around whole experiments.
func Measure(f func() error) (Measurement, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := f()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return Measurement{Wall: wall, AllocBytes: after.TotalAlloc - before.TotalAlloc}, err
}

// NewRecord assembles one experiment's record from its measurement,
// phase clock, trained-model statistics, and headline metrics. Any of
// clock, models, and metrics may be nil/empty. Events per second are
// computed over the simulate phase only, so a slow training pass does
// not masquerade as slow replay throughput.
func NewRecord(experiment, workload string, m Measurement, clock *sim.PhaseClock,
	models map[string]markov.TreeStats, metrics map[string]float64) Record {
	rec := Record{
		Experiment:  experiment,
		Workload:    workload,
		WallSeconds: m.Wall.Seconds(),
		AllocBytes:  m.AllocBytes,
		Metrics:     metrics,
	}
	if totals := clock.Totals(); len(totals) > 0 {
		rec.Phases = make(map[string]float64, len(totals))
		for phase, d := range totals {
			rec.Phases[phase] = d.Seconds()
		}
	}
	rec.Events = clock.Events()
	if secs := clock.Total(sim.PhaseSimulate).Seconds(); secs > 0 && rec.Events > 0 {
		rec.EventsPerSec = float64(rec.Events) / secs
	}
	if len(models) > 0 {
		names := make([]string, 0, len(models))
		for name := range models {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rec.Models = append(rec.Models, ModelStatsFrom(name, models[name]))
		}
	}
	return rec
}
