package benchreport

import (
	"fmt"
	"sort"
	"strings"

	"pbppm/internal/metrics"
)

// Class is Compare's verdict for one metric.
type Class int

const (
	// ClassUnchanged: within tolerance of the baseline.
	ClassUnchanged Class = iota
	// ClassImproved: moved beyond tolerance in the good direction.
	ClassImproved
	// ClassRegressed: moved beyond tolerance in the bad direction, or
	// the record disappeared from the current run.
	ClassRegressed
	// ClassAdded: present in the current run but not the baseline;
	// informational, never a failure.
	ClassAdded
)

// String returns the verdict word used in the table.
func (c Class) String() string {
	switch c {
	case ClassImproved:
		return "improved"
	case ClassRegressed:
		return "REGRESSED"
	case ClassAdded:
		return "added"
	default:
		return "unchanged"
	}
}

// Tolerances bounds the relative change Compare accepts before it
// classifies a metric as moved. All are fractions: 0.5 allows +50%.
type Tolerances struct {
	// WallTime bounds wall-clock growth, allocation growth, and
	// events/sec loss — the run-cost metrics, which are noisy across
	// machines and need loose bounds in CI.
	WallTime float64
	// Metric bounds headline-metric movement in the bad direction
	// (hit ratio down, traffic increase up, nodes up, ...). These are
	// deterministic given one seed, so the bound can be tight.
	Metric float64
}

// DefaultTolerances suit same-machine comparisons: half again as slow
// fails, headline numbers may drift 5%.
func DefaultTolerances() Tolerances {
	return Tolerances{WallTime: 0.5, Metric: 0.05}
}

// Row is one compared metric.
type Row struct {
	Experiment string
	Workload   string
	Metric     string
	Baseline   float64
	Current    float64
	// Delta is the relative change (current-baseline)/baseline, or the
	// absolute change when the baseline value is zero.
	Delta float64
	Class Class
}

// Comparison is the verdict of one run against a baseline.
type Comparison struct {
	Rows []Row
}

// lowerIsBetter reports the good direction for a metric name. Cost
// metrics (time, bytes, node counts, traffic, errors, schedule lag)
// should fall; accuracy, throughput, and capacity metrics should rise.
func lowerIsBetter(metric string) bool {
	switch {
	case metric == "wall_seconds" || metric == "alloc_bytes":
		return true
	case strings.HasPrefix(metric, "traffic_increase"):
		return true
	case strings.HasPrefix(metric, "nodes") || strings.HasSuffix(metric, "_nodes"):
		return true
	case strings.HasSuffix(metric, "_rps"):
		// Capacity metrics (max_sustainable_rps, achieved_rps): serving
		// more requests per second under the same SLO is the good
		// direction. Listed before the generic suffix rules so a future
		// *_seconds-style collision cannot flip it.
		return false
	case strings.HasSuffix(metric, "error_rate"):
		return true
	case strings.HasSuffix(metric, "_bytes") || strings.HasSuffix(metric, "_seconds"):
		return true
	case strings.HasSuffix(metric, "_allocs_per_op") || strings.HasSuffix(metric, "_ns_per_op"):
		return true
	default:
		return false
	}
}

// classify compares one value pair under a tolerance.
func classify(metric string, base, cur, tol float64) (delta float64, class Class) {
	if base == cur {
		return 0, ClassUnchanged
	}
	if base != 0 {
		delta = (cur - base) / base
	} else {
		// No baseline magnitude to scale by: apply the tolerance to the
		// absolute change instead (traffic_increase is legitimately 0).
		delta = cur - base
	}
	bad := delta > 0
	if !lowerIsBetter(metric) {
		bad = delta < 0
	}
	mag := delta
	if mag < 0 {
		mag = -mag
	}
	if mag <= tol {
		return delta, ClassUnchanged
	}
	if bad {
		return delta, ClassRegressed
	}
	return delta, ClassImproved
}

// Compare classifies every run-cost and headline metric of current
// against baseline. Records present only in the baseline regress (the
// run lost coverage); records present only in current are reported as
// added. Both reports must already be validated (ReadFile/Decode do).
func Compare(baseline, current *Report, tol Tolerances) *Comparison {
	cmp := &Comparison{}
	add := func(rec *Record, metric string, base, cur, t float64) {
		delta, class := classify(metric, base, cur, t)
		cmp.Rows = append(cmp.Rows, Row{
			Experiment: rec.Experiment,
			Workload:   rec.Workload,
			Metric:     metric,
			Baseline:   base,
			Current:    cur,
			Delta:      delta,
			Class:      class,
		})
	}

	for i := range baseline.Records {
		base := &baseline.Records[i]
		cur := current.Find(base.Experiment, base.Workload)
		if cur == nil {
			cmp.Rows = append(cmp.Rows, Row{
				Experiment: base.Experiment,
				Workload:   base.Workload,
				Metric:     "(record)",
				Class:      ClassRegressed,
			})
			continue
		}
		add(base, "wall_seconds", base.WallSeconds, cur.WallSeconds, tol.WallTime)
		add(base, "alloc_bytes", float64(base.AllocBytes), float64(cur.AllocBytes), tol.WallTime)
		if base.EventsPerSec > 0 || cur.EventsPerSec > 0 {
			add(base, "events_per_sec", base.EventsPerSec, cur.EventsPerSec, tol.WallTime)
		}
		for _, name := range sortedKeys(base.Metrics) {
			cv, ok := cur.Metrics[name]
			if !ok {
				cmp.Rows = append(cmp.Rows, Row{
					Experiment: base.Experiment, Workload: base.Workload,
					Metric: name, Baseline: base.Metrics[name], Class: ClassRegressed,
				})
				continue
			}
			add(base, name, base.Metrics[name], cv, tol.Metric)
		}
	}
	for i := range current.Records {
		cur := &current.Records[i]
		if baseline.Find(cur.Experiment, cur.Workload) == nil {
			cmp.Rows = append(cmp.Rows, Row{
				Experiment: cur.Experiment,
				Workload:   cur.Workload,
				Metric:     "(record)",
				Current:    cur.WallSeconds,
				Class:      ClassAdded,
			})
		}
	}
	return cmp
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Stable row order keeps verdict tables diffable run to run.
	sort.Strings(keys)
	return keys
}

// Regressions returns the rows classified as regressed.
func (c *Comparison) Regressions() []Row {
	var out []Row
	for _, r := range c.Rows {
		if r.Class == ClassRegressed {
			out = append(out, r)
		}
	}
	return out
}

// OK reports whether nothing regressed.
func (c *Comparison) OK() bool { return len(c.Regressions()) == 0 }

// String renders the verdict table.
func (c *Comparison) String() string {
	tb := &metrics.Table{
		Title:   "Benchmark comparison vs baseline",
		Headers: []string{"experiment", "workload", "metric", "baseline", "current", "delta", "verdict"},
	}
	for _, r := range c.Rows {
		delta := fmt.Sprintf("%+.1f%%", r.Delta*100)
		if r.Metric == "(record)" {
			delta = "-"
		}
		tb.AddRow(r.Experiment, r.Workload, r.Metric,
			formatValue(r.Metric, r.Baseline), formatValue(r.Metric, r.Current),
			delta, r.Class.String())
	}
	verdict := "PASS"
	if n := len(c.Regressions()); n > 0 {
		verdict = fmt.Sprintf("FAIL (%d regressed)", n)
	}
	return tb.String() + "verdict: " + verdict + "\n"
}

// formatValue keeps big counters readable and ratios precise.
func formatValue(metric string, v float64) string {
	switch {
	case metric == "alloc_bytes":
		return fmt.Sprintf("%.1fMB", v/(1<<20))
	case metric == "events_per_sec" || strings.HasPrefix(metric, "nodes"):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
