package benchreport

import (
	"strings"
	"testing"
)

// twoRunReports returns a baseline and an identical current run.
func twoRunReports() (*Report, *Report) {
	mk := func() *Report {
		r := New("reproduce", "small")
		r.Add(Record{
			Experiment: "fig2", Workload: "nasa",
			WallSeconds: 2.0, AllocBytes: 100 << 20,
			Events: 40000, EventsPerSec: 30000,
			Metrics: map[string]float64{
				"popular_share_pb": 0.93,
				"utilization_pb":   0.71,
			},
		})
		return r
	}
	return mk(), mk()
}

// TestCompareIdenticalRunPasses: the acceptance case — an identical
// run must pass the gate with every row unchanged.
func TestCompareIdenticalRunPasses(t *testing.T) {
	base, cur := twoRunReports()
	cmp := Compare(base, cur, DefaultTolerances())
	if !cmp.OK() {
		t.Fatalf("identical run flagged as regressed:\n%s", cmp)
	}
	for _, r := range cmp.Rows {
		if r.Class != ClassUnchanged {
			t.Errorf("row %s/%s %s = %v, want unchanged", r.Experiment, r.Workload, r.Metric, r.Class)
		}
	}
	if !strings.Contains(cmp.String(), "verdict: PASS") {
		t.Errorf("verdict table missing PASS:\n%s", cmp)
	}
}

// TestCompareFlagsInjectedSlowdown: the acceptance case — a 2×
// wall-clock slowdown must fail the gate.
func TestCompareFlagsInjectedSlowdown(t *testing.T) {
	base, cur := twoRunReports()
	cur.Records[0].WallSeconds = base.Records[0].WallSeconds * 2

	cmp := Compare(base, cur, DefaultTolerances())
	if cmp.OK() {
		t.Fatalf("2x slowdown passed the gate:\n%s", cmp)
	}
	regs := cmp.Regressions()
	if len(regs) != 1 || regs[0].Metric != "wall_seconds" {
		t.Fatalf("Regressions = %+v, want exactly wall_seconds", regs)
	}
	if regs[0].Delta < 0.99 || regs[0].Delta > 1.01 {
		t.Errorf("Delta = %v, want 1.0 (=+100%%)", regs[0].Delta)
	}
	if !strings.Contains(cmp.String(), "REGRESSED") || !strings.Contains(cmp.String(), "FAIL") {
		t.Errorf("verdict table missing failure markers:\n%s", cmp)
	}
}

// TestCompareDirections: movement classification must respect each
// metric's good direction and the tolerance.
func TestCompareDirections(t *testing.T) {
	cases := []struct {
		metric    string
		base, cur float64
		want      Class
	}{
		// Accuracy up = improved; down beyond 5% = regressed.
		{"popular_share_pb", 0.80, 0.90, ClassImproved},
		{"popular_share_pb", 0.80, 0.70, ClassRegressed},
		{"popular_share_pb", 0.80, 0.79, ClassUnchanged},
		// Cost metrics invert.
		{"traffic_increase_pb", 0.30, 0.20, ClassImproved},
		{"traffic_increase_pb", 0.30, 0.40, ClassRegressed},
		{"nodes_pb", 1000, 1200, ClassRegressed},
		{"nodes_pb", 1000, 900, ClassImproved},
		// Zero baseline falls back to absolute change.
		{"traffic_increase_pb", 0, 0.2, ClassRegressed},
		{"traffic_increase_pb", 0, 0.01, ClassUnchanged},
		// Serving-path cost metrics: fewer allocations and faster
		// predictions are improvements; the zero-alloc gate relies on
		// any growth from 0 classifying as a regression.
		{"predict_allocs_per_op", 0, 2, ClassRegressed},
		{"predict_allocs_per_op", 3, 0, ClassImproved},
		{"predict_ns_per_op", 400, 900, ClassRegressed},
		// Capacity metrics: sustaining more RPS under the SLO gate is the
		// good direction, despite other *_seconds-style cost suffixes.
		{"max_sustainable_rps", 500, 300, ClassRegressed},
		{"max_sustainable_rps", 500, 700, ClassImproved},
		{"achieved_rps", 480, 520, ClassImproved},
		// Load-test quality metrics invert: errors and latency rise = bad.
		{"error_rate", 0.01, 0.05, ClassRegressed},
		{"error_rate", 0.05, 0.01, ClassImproved},
		{"lag_p99_seconds", 0.002, 0.2, ClassRegressed},
	}
	for _, c := range cases {
		base, cur := twoRunReports()
		base.Records[0].Metrics = map[string]float64{c.metric: c.base}
		cur.Records[0].Metrics = map[string]float64{c.metric: c.cur}
		cmp := Compare(base, cur, DefaultTolerances())
		var got *Row
		for i := range cmp.Rows {
			if cmp.Rows[i].Metric == c.metric {
				got = &cmp.Rows[i]
			}
		}
		if got == nil {
			t.Fatalf("%s: no comparison row", c.metric)
		}
		if got.Class != c.want {
			t.Errorf("%s %v -> %v: class %v, want %v", c.metric, c.base, c.cur, got.Class, c.want)
		}
	}
}

// TestCompareThroughputDropRegresses: events/sec is higher-is-better
// under the WallTime tolerance.
func TestCompareThroughputDropRegresses(t *testing.T) {
	base, cur := twoRunReports()
	cur.Records[0].EventsPerSec = base.Records[0].EventsPerSec / 3
	cmp := Compare(base, cur, DefaultTolerances())
	regs := cmp.Regressions()
	if len(regs) != 1 || regs[0].Metric != "events_per_sec" {
		t.Fatalf("Regressions = %+v, want events_per_sec", regs)
	}
}

// TestCompareCoverage: a record missing from the current run regresses;
// a new record is reported as added without failing the gate.
func TestCompareCoverage(t *testing.T) {
	base, cur := twoRunReports()
	cur.Records[0].Experiment = "fig3" // fig2 vanishes, fig3 appears

	cmp := Compare(base, cur, DefaultTolerances())
	if cmp.OK() {
		t.Fatal("lost record passed the gate")
	}
	var missing, added bool
	for _, r := range cmp.Rows {
		if r.Metric == "(record)" && r.Experiment == "fig2" && r.Class == ClassRegressed {
			missing = true
		}
		if r.Metric == "(record)" && r.Experiment == "fig3" && r.Class == ClassAdded {
			added = true
		}
	}
	if !missing || !added {
		t.Errorf("missing=%v added=%v, want both:\n%s", missing, added, cmp)
	}

	// Added-only difference must not fail.
	base2, cur2 := twoRunReports()
	cur2.Add(Record{Experiment: "fig4", Workload: "nasa", WallSeconds: 1})
	if cmp2 := Compare(base2, cur2, DefaultTolerances()); !cmp2.OK() {
		t.Errorf("added record failed the gate:\n%s", cmp2)
	}
}

// TestCompareMissingMetricRegresses: a headline metric that disappears
// from a record is a coverage loss, not a silent pass.
func TestCompareMissingMetricRegresses(t *testing.T) {
	base, cur := twoRunReports()
	delete(cur.Records[0].Metrics, "utilization_pb")
	cmp := Compare(base, cur, DefaultTolerances())
	regs := cmp.Regressions()
	if len(regs) != 1 || regs[0].Metric != "utilization_pb" {
		t.Fatalf("Regressions = %+v, want utilization_pb", regs)
	}
}
