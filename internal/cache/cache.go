// Package cache implements the byte-capacity LRU cache the simulator
// uses for both browsers (1 MB) and proxies (16 GB), per §2.2 of the
// paper ("The cache replacement algorithm used in our simulator is
// LRU"). Entries remember whether they arrived by prefetch so hit
// accounting can attribute hits to prefetching versus ordinary caching.
package cache

import (
	"container/list"
	"fmt"
)

// DefaultBrowserCapacity is the paper's browser cache size (1 MB).
const DefaultBrowserCapacity = 1 << 20

// DefaultProxyCapacity is the paper's proxy disk cache size (16 GB).
const DefaultProxyCapacity = 16 << 30

// entry is one cached document.
type entry struct {
	url        string
	size       int64
	prefetched bool
}

// LRU is a least-recently-used cache bounded by total byte size.
// It is not safe for concurrent use; the simulator is single-threaded
// per cache.
type LRU struct {
	capacity int64
	used     int64
	ll       *list.List               // front = most recent
	items    map[string]*list.Element // url -> element holding *entry

	// statistics
	hits, misses, puts, evictions int64
}

// NewLRU returns an empty cache with the given byte capacity. It panics
// on a non-positive capacity: a cache that can hold nothing is a
// configuration error, not a runtime condition.
func NewLRU(capacity int64) *LRU {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive capacity %d", capacity))
	}
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Capacity returns the configured byte capacity.
func (c *LRU) Capacity() int64 { return c.capacity }

// Used returns the bytes currently cached.
func (c *LRU) Used() int64 { return c.used }

// Len returns the number of cached documents.
func (c *LRU) Len() int { return len(c.items) }

// Contains reports whether url is cached without touching recency or
// statistics.
func (c *LRU) Contains(url string) bool {
	_, ok := c.items[url]
	return ok
}

// Get looks up url, promoting it to most-recently-used on a hit. The
// second result reports whether the cached copy arrived by prefetch.
func (c *LRU) Get(url string) (ok, prefetched bool) {
	el, found := c.items[url]
	if !found {
		c.misses++
		return false, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return true, el.Value.(*entry).prefetched
}

// Put inserts or refreshes url with the given size. prefetched tags the
// copy's origin; re-putting an entry updates its size, tag, and
// recency. Documents larger than the whole cache are ignored (they
// could never be useful and would evict everything). Sizes must be
// non-negative; zero-size documents occupy an entry slot only.
func (c *LRU) Put(url string, size int64, prefetched bool) {
	if size < 0 {
		panic(fmt.Sprintf("cache: negative size %d for %s", size, url))
	}
	if size > c.capacity {
		return
	}
	c.puts++
	if el, ok := c.items[url]; ok {
		e := el.Value.(*entry)
		c.used += size - e.size
		e.size = size
		e.prefetched = prefetched
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry{url: url, size: size, prefetched: prefetched})
		c.items[url] = el
		c.used += size
	}
	for c.used > c.capacity {
		c.evictOldest()
	}
}

// MarkDemand clears the prefetched tag on url if cached: once a
// prefetched copy has served a real request, later hits are ordinary
// cache hits.
func (c *LRU) MarkDemand(url string) {
	if el, ok := c.items[url]; ok {
		el.Value.(*entry).prefetched = false
	}
}

// Remove evicts url if present and reports whether it was cached.
func (c *LRU) Remove(url string) bool {
	el, ok := c.items[url]
	if !ok {
		return false
	}
	c.removeElement(el)
	return true
}

func (c *LRU) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.evictions++
	c.removeElement(el)
}

func (c *LRU) removeElement(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.url)
	c.used -= e.size
}

// Stats is a snapshot of cache counters.
type Stats struct {
	Hits, Misses, Puts, Evictions int64
}

// Stats returns the current counters.
func (c *LRU) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Puts: c.puts, Evictions: c.evictions}
}

// Reset empties the cache and clears statistics, keeping the capacity.
func (c *LRU) Reset() {
	c.ll = list.New()
	c.items = make(map[string]*list.Element)
	c.used = 0
	c.hits, c.misses, c.puts, c.evictions = 0, 0, 0, 0
}
