package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicPutGet(t *testing.T) {
	c := NewLRU(100)
	c.Put("/a", 40, false)
	if ok, pf := c.Get("/a"); !ok || pf {
		t.Errorf("Get(/a) = %v,%v, want hit, not prefetched", ok, pf)
	}
	if ok, _ := c.Get("/b"); ok {
		t.Error("Get(/b) hit on empty entry")
	}
	if c.Used() != 40 || c.Len() != 1 || c.Capacity() != 100 {
		t.Errorf("Used=%d Len=%d Cap=%d", c.Used(), c.Len(), c.Capacity())
	}
}

func TestNewLRUPanics(t *testing.T) {
	for _, cap := range []int64{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLRU(%d) did not panic", cap)
				}
			}()
			NewLRU(cap)
		}()
	}
}

func TestPutNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Put(size=-1) did not panic")
		}
	}()
	NewLRU(10).Put("/a", -1, false)
}

func TestEvictionOrder(t *testing.T) {
	c := NewLRU(100)
	c.Put("/a", 40, false)
	c.Put("/b", 40, false)
	c.Get("/a") // promote /a; /b is now LRU
	c.Put("/c", 40, false)
	if c.Contains("/b") {
		t.Error("/b not evicted")
	}
	if !c.Contains("/a") || !c.Contains("/c") {
		t.Error("wrong entry evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestOversizeDocumentIgnored(t *testing.T) {
	c := NewLRU(100)
	c.Put("/big", 200, false)
	if c.Len() != 0 || c.Used() != 0 {
		t.Error("oversize document cached")
	}
	c.Put("/a", 60, false)
	c.Put("/big", 200, false)
	if !c.Contains("/a") {
		t.Error("oversize put disturbed existing entries")
	}
}

func TestUpdateExistingEntry(t *testing.T) {
	c := NewLRU(100)
	c.Put("/a", 30, true)
	c.Put("/a", 50, false)
	if c.Used() != 50 || c.Len() != 1 {
		t.Errorf("Used=%d Len=%d after resize", c.Used(), c.Len())
	}
	if _, pf := c.Get("/a"); pf {
		t.Error("prefetch tag not updated")
	}
}

func TestPrefetchTagAndMarkDemand(t *testing.T) {
	c := NewLRU(100)
	c.Put("/p", 10, true)
	if _, pf := c.Get("/p"); !pf {
		t.Error("prefetch tag lost")
	}
	c.MarkDemand("/p")
	if _, pf := c.Get("/p"); pf {
		t.Error("MarkDemand did not clear tag")
	}
	c.MarkDemand("/absent") // must not panic
}

func TestRemove(t *testing.T) {
	c := NewLRU(100)
	c.Put("/a", 10, false)
	if !c.Remove("/a") {
		t.Error("Remove(/a) = false")
	}
	if c.Remove("/a") {
		t.Error("second Remove(/a) = true")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Error("remove did not release space")
	}
}

func TestZeroSizeEntries(t *testing.T) {
	c := NewLRU(10)
	c.Put("/z", 0, false)
	if ok, _ := c.Get("/z"); !ok {
		t.Error("zero-size entry not cached")
	}
}

func TestStatsCounters(t *testing.T) {
	c := NewLRU(100)
	c.Put("/a", 10, false)
	c.Get("/a")
	c.Get("/a")
	c.Get("/miss")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReset(t *testing.T) {
	c := NewLRU(100)
	c.Put("/a", 10, false)
	c.Get("/a")
	c.Reset()
	if c.Len() != 0 || c.Used() != 0 {
		t.Error("Reset left entries")
	}
	if st := c.Stats(); st.Hits != 0 || st.Puts != 0 {
		t.Errorf("Reset left stats %+v", st)
	}
	if c.Capacity() != 100 {
		t.Error("Reset changed capacity")
	}
	c.Put("/b", 10, false)
	if !c.Contains("/b") {
		t.Error("cache unusable after Reset")
	}
}

// Property: used bytes never exceed capacity and always equal the sum
// of resident entry sizes, across random operation sequences.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(ops []uint16, capSeed uint8) bool {
		capacity := int64(capSeed)%500 + 50
		c := NewLRU(capacity)
		resident := make(map[string]int64)
		for _, op := range ops {
			url := fmt.Sprintf("/u%d", op%37)
			size := int64(op % 97)
			switch op % 3 {
			case 0:
				c.Put(url, size, op%2 == 0)
				if size <= capacity {
					resident[url] = size
				}
			case 1:
				c.Get(url)
			case 2:
				c.Remove(url)
				delete(resident, url)
			}
			// Rebuild resident from the cache's own view (evictions).
			var sum int64
			for u, s := range resident {
				if c.Contains(u) {
					sum += s
				} else {
					delete(resident, u)
				}
			}
			if c.Used() != sum || c.Used() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: LRU never evicts the most recently touched entry when at
// least two entries fit.
func TestMRUSurvivesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewLRU(1000)
	var last string
	for i := 0; i < 2000; i++ {
		url := fmt.Sprintf("/u%d", rng.Intn(50))
		size := int64(rng.Intn(400) + 1)
		c.Put(url, size, false)
		last = url
		if !c.Contains(last) {
			t.Fatalf("most recent entry %s (size %d) evicted", last, size)
		}
	}
}

// TestRePutAccounting pins the grow/shrink accounting on re-Put: used
// bytes must track the delta exactly, a shrink must free space without
// evicting, and a grow past capacity must evict older entries — never
// the re-put entry itself, which was just moved to the front.
func TestRePutAccounting(t *testing.T) {
	c := NewLRU(100)
	c.Put("/a", 40, false)
	c.Put("/b", 40, false)

	// Shrink: frees 30 bytes, no eviction.
	c.Put("/a", 10, false)
	if c.Used() != 50 || c.Len() != 2 {
		t.Fatalf("after shrink Used=%d Len=%d, want 50/2", c.Used(), c.Len())
	}

	// Grow within capacity: exact delta.
	c.Put("/a", 35, false)
	if c.Used() != 75 || c.Len() != 2 {
		t.Fatalf("after grow Used=%d Len=%d, want 75/2", c.Used(), c.Len())
	}

	// Grow past capacity: /b (older) is evicted, /a survives.
	c.Put("/a", 90, false)
	if c.Used() != 90 || c.Len() != 1 {
		t.Fatalf("after big grow Used=%d Len=%d, want 90/1", c.Used(), c.Len())
	}
	if c.Contains("/b") {
		t.Error("older entry /b survived the grow-evict")
	}
	if !c.Contains("/a") {
		t.Error("re-put entry /a was evicted by its own grow")
	}

	// Accounting stays exact across repeated same-size re-puts.
	for i := 0; i < 5; i++ {
		c.Put("/a", 90, false)
	}
	if c.Used() != 90 || c.Len() != 1 {
		t.Errorf("after repeated re-puts Used=%d Len=%d, want 90/1", c.Used(), c.Len())
	}
}
