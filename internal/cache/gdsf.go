package cache

import (
	"container/heap"
	"fmt"
)

// GDSF is a popularity-aware GreedyDual-Size-Frequency cache — the
// policy of Jin & Bestavros's "popularity-aware greedy-dual-size"
// proxy caching work the paper cites for its latency methodology
// ([16]). Each document carries a value
//
//	H = L + frequency / size
//
// where L is an aging inflation term: on eviction L rises to the
// evicted document's H, so long-idle documents decay relative to fresh
// ones. Small, frequently accessed documents are retained longest,
// which suits Web workloads where popular documents are small.
//
// GDSF implements the same operations as LRU so the simulator can swap
// policies; it is not safe for concurrent use.
type GDSF struct {
	capacity int64
	used     int64
	inflate  float64
	items    map[string]*gdsfEntry
	pq       gdsfHeap
	seq      int64 // tie-breaker so eviction order is deterministic

	hits, misses, puts, evictions int64
}

type gdsfEntry struct {
	url        string
	size       int64
	freq       int64
	value      float64
	prefetched bool
	index      int   // heap index
	seq        int64 // insertion order tie-break
}

// NewGDSF returns an empty GDSF cache with the given byte capacity.
// It panics on a non-positive capacity, matching NewLRU.
func NewGDSF(capacity int64) *GDSF {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive capacity %d", capacity))
	}
	return &GDSF{capacity: capacity, items: make(map[string]*gdsfEntry)}
}

// Capacity returns the configured byte capacity.
func (c *GDSF) Capacity() int64 { return c.capacity }

// Used returns the bytes currently cached.
func (c *GDSF) Used() int64 { return c.used }

// Len returns the number of cached documents.
func (c *GDSF) Len() int { return len(c.items) }

// Contains reports whether url is cached without touching statistics.
func (c *GDSF) Contains(url string) bool {
	_, ok := c.items[url]
	return ok
}

// value computes H = L + freq/size. Zero-size documents count as one
// byte so their value stays finite.
func (c *GDSF) value(freq, size int64) float64 {
	s := size
	if s <= 0 {
		s = 1
	}
	return c.inflate + float64(freq)/float64(s)
}

// Get looks up url, bumping its frequency and value on a hit. The
// second result reports whether the cached copy arrived by prefetch.
func (c *GDSF) Get(url string) (ok, prefetched bool) {
	e, found := c.items[url]
	if !found {
		c.misses++
		return false, false
	}
	c.hits++
	e.freq++
	e.value = c.value(e.freq, e.size)
	heap.Fix(&c.pq, e.index)
	return true, e.prefetched
}

// Put inserts or refreshes url. Oversize documents are ignored, like
// LRU. Re-putting keeps the accumulated frequency.
func (c *GDSF) Put(url string, size int64, prefetched bool) {
	if size < 0 {
		panic(fmt.Sprintf("cache: negative size %d for %s", size, url))
	}
	if size > c.capacity {
		return
	}
	c.puts++
	if e, ok := c.items[url]; ok {
		c.used += size - e.size
		e.size = size
		e.prefetched = prefetched
		e.value = c.value(e.freq, e.size)
		heap.Fix(&c.pq, e.index)
	} else {
		c.seq++
		e := &gdsfEntry{
			url: url, size: size, freq: 1, prefetched: prefetched, seq: c.seq,
		}
		e.value = c.value(e.freq, e.size)
		heap.Push(&c.pq, e)
		c.items[url] = e
		c.used += size
	}
	for c.used > c.capacity {
		c.evictLowest()
	}
}

// MarkDemand clears the prefetched tag on url if cached.
func (c *GDSF) MarkDemand(url string) {
	if e, ok := c.items[url]; ok {
		e.prefetched = false
	}
}

// Remove evicts url if present and reports whether it was cached.
func (c *GDSF) Remove(url string) bool {
	e, ok := c.items[url]
	if !ok {
		return false
	}
	heap.Remove(&c.pq, e.index)
	delete(c.items, url)
	c.used -= e.size
	return true
}

func (c *GDSF) evictLowest() {
	if c.pq.Len() == 0 {
		return
	}
	e := heap.Pop(&c.pq).(*gdsfEntry)
	delete(c.items, e.url)
	c.used -= e.size
	c.evictions++
	// Aging: future insertions start at the evicted value, so stale
	// high-frequency entries eventually give way.
	if e.value > c.inflate {
		c.inflate = e.value
	}
}

// Stats returns the current counters.
func (c *GDSF) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Puts: c.puts, Evictions: c.evictions}
}

// Reset empties the cache and clears statistics and aging state.
func (c *GDSF) Reset() {
	c.items = make(map[string]*gdsfEntry)
	c.pq = nil
	c.used, c.inflate, c.seq = 0, 0, 0
	c.hits, c.misses, c.puts, c.evictions = 0, 0, 0, 0
}

// gdsfHeap is a min-heap on (value, seq).
type gdsfHeap []*gdsfEntry

func (h gdsfHeap) Len() int { return len(h) }
func (h gdsfHeap) Less(i, j int) bool {
	if h[i].value != h[j].value {
		return h[i].value < h[j].value
	}
	return h[i].seq < h[j].seq
}
func (h gdsfHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *gdsfHeap) Push(x any) {
	e := x.(*gdsfEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *gdsfHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Policy is the cache behavior the simulator depends on; *LRU and
// *GDSF both implement it.
type Policy interface {
	Get(url string) (ok, prefetched bool)
	Put(url string, size int64, prefetched bool)
	MarkDemand(url string)
	Contains(url string) bool
	Remove(url string) bool
	Used() int64
	Capacity() int64
	Len() int
	Stats() Stats
}

var (
	_ Policy = (*LRU)(nil)
	_ Policy = (*GDSF)(nil)
)
