package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGDSFBasicPutGet(t *testing.T) {
	c := NewGDSF(100)
	c.Put("/a", 40, false)
	if ok, pf := c.Get("/a"); !ok || pf {
		t.Errorf("Get(/a) = %v,%v", ok, pf)
	}
	if ok, _ := c.Get("/b"); ok {
		t.Error("hit on absent entry")
	}
	if c.Used() != 40 || c.Len() != 1 || c.Capacity() != 100 {
		t.Errorf("Used=%d Len=%d", c.Used(), c.Len())
	}
}

func TestGDSFPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewGDSF(0) did not panic")
			}
		}()
		NewGDSF(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Put(-1) did not panic")
			}
		}()
		NewGDSF(10).Put("/a", -1, false)
	}()
}

func TestGDSFPrefersFrequentSmallDocs(t *testing.T) {
	c := NewGDSF(100)
	c.Put("/hot-small", 20, false)
	for i := 0; i < 10; i++ {
		c.Get("/hot-small")
	}
	c.Put("/cold-big", 70, false)
	// Inserting another large doc must evict the cold big one, not the
	// hot small one.
	c.Put("/new-big", 60, false)
	if !c.Contains("/hot-small") {
		t.Error("hot small document evicted")
	}
	if c.Contains("/cold-big") {
		t.Error("cold big document kept")
	}
	if !c.Contains("/new-big") {
		t.Error("new document not admitted")
	}
}

func TestGDSFAgingEvictsStaleEntries(t *testing.T) {
	c := NewGDSF(100)
	c.Put("/once-hot", 10, false)
	for i := 0; i < 5; i++ {
		c.Get("/once-hot")
	}
	// Many eviction rounds inflate L past the stale entry's value.
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("/churn%d", i), 90, false)
		c.Get(fmt.Sprintf("/churn%d", i))
	}
	if c.Contains("/once-hot") {
		t.Error("stale entry survived indefinitely despite aging")
	}
}

func TestGDSFOversizeIgnored(t *testing.T) {
	c := NewGDSF(100)
	c.Put("/big", 200, false)
	if c.Len() != 0 {
		t.Error("oversize cached")
	}
}

func TestGDSFUpdateKeepsFrequency(t *testing.T) {
	c := NewGDSF(1000)
	c.Put("/a", 10, true)
	c.Get("/a")
	c.Get("/a")
	c.Put("/a", 20, false) // refresh with new size and tag
	if c.Used() != 20 {
		t.Errorf("Used = %d", c.Used())
	}
	if _, pf := c.Get("/a"); pf {
		t.Error("tag not updated")
	}
	e := c.items["/a"]
	if e.freq < 3 {
		t.Errorf("frequency reset: %d", e.freq)
	}
}

func TestGDSFMarkDemandAndRemove(t *testing.T) {
	c := NewGDSF(100)
	c.Put("/p", 10, true)
	c.MarkDemand("/p")
	if _, pf := c.Get("/p"); pf {
		t.Error("MarkDemand failed")
	}
	if !c.Remove("/p") || c.Remove("/p") {
		t.Error("Remove semantics broken")
	}
	if c.Used() != 0 {
		t.Error("Remove leaked bytes")
	}
	c.MarkDemand("/absent") // no panic
}

func TestGDSFReset(t *testing.T) {
	c := NewGDSF(100)
	c.Put("/a", 10, false)
	c.Get("/a")
	c.Reset()
	if c.Len() != 0 || c.Used() != 0 || c.Stats().Hits != 0 {
		t.Error("Reset incomplete")
	}
	c.Put("/b", 10, false)
	if !c.Contains("/b") {
		t.Error("cache unusable after Reset")
	}
}

// Property: used bytes equal the sum of resident sizes and never exceed
// capacity, under random operation mixes.
func TestGDSFCapacityInvariantProperty(t *testing.T) {
	f := func(ops []uint16, capSeed uint8) bool {
		capacity := int64(capSeed)%500 + 50
		c := NewGDSF(capacity)
		sizes := make(map[string]int64)
		for _, op := range ops {
			url := fmt.Sprintf("/u%d", op%31)
			size := int64(op % 89)
			switch op % 3 {
			case 0:
				c.Put(url, size, op%2 == 0)
				if size <= capacity {
					sizes[url] = size
				}
			case 1:
				c.Get(url)
			case 2:
				c.Remove(url)
			}
			var sum int64
			for u, s := range sizes {
				if c.Contains(u) {
					sum += s
				} else {
					delete(sizes, u)
				}
			}
			if c.Used() != sum || c.Used() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: under a Zipf-like reference stream, GDSF achieves at least
// the hit ratio of LRU with equal capacity (the reason to prefer it
// for Web workloads).
func TestGDSFBeatsLRUOnZipfStream(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	gdsf := NewGDSF(4000)
	lru := NewLRU(4000)
	type doc struct {
		url  string
		size int64
	}
	docs := make([]doc, 200)
	for i := range docs {
		docs[i] = doc{
			url: fmt.Sprintf("/d%03d", i),
			// Popular docs (low index) are small — the web regime GDSF
			// is designed for.
			size: int64(100 + i*10),
		}
	}
	pick := func() doc {
		// Zipf-ish: favor low indices.
		x := rng.Float64()
		idx := int(x * x * float64(len(docs)))
		if idx >= len(docs) {
			idx = len(docs) - 1
		}
		return docs[idx]
	}
	for i := 0; i < 20000; i++ {
		d := pick()
		if ok, _ := gdsf.Get(d.url); !ok {
			gdsf.Put(d.url, d.size, false)
		}
		if ok, _ := lru.Get(d.url); !ok {
			lru.Put(d.url, d.size, false)
		}
	}
	g := float64(gdsf.Stats().Hits) / float64(gdsf.Stats().Hits+gdsf.Stats().Misses)
	l := float64(lru.Stats().Hits) / float64(lru.Stats().Hits+lru.Stats().Misses)
	if g < l {
		t.Errorf("GDSF hit ratio %.3f below LRU %.3f on Zipf stream", g, l)
	}
}
