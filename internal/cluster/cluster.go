// Package cluster is the horizontal-scaling tier over internal/server:
// a thin router that consistent-hashes each request's client identity
// onto one of N shard instances, so per-client session state — the
// only mutable serving state the paper's model needs — stays local to
// one shard while every shard serves the same published model.
//
// The split follows from the serving architecture. A published model
// snapshot is immutable (PR-6 froze it into a single relocatable arena
// []byte), so replication is "ship the arena bytes, swap the pointer":
// SetPredictor hands every shard the same frozen snapshot and each
// shard swaps its own atomic pointer — no shard-local training, no
// coordination. Everything per-client (session contexts, outstanding
// hint records, hit reports) is keyed by the identity the router
// hashes on, so routing by that identity makes each client's
// serving history whole on exactly one shard: hints are issued and
// scored where the client's context lives, and client hit reports
// (X-Prefetch-Report) land on the shard that issued the hints. That is
// also why an N-shard cluster reproduces the single node's hint
// accounting exactly (see the equivalence test).
//
// Identity is resolved once, at the router: the router applies its own
// trust policy to the incoming hop, then stamps the resolved identity
// on the forwarded request. Shards are constructed trusting only the
// router's forwarding identity (RouterPeer), so a client cannot smuggle
// a forged X-Client-ID past the router to poison another client's
// session (see server.IdentityPolicy).
//
// Membership changes swap an immutable hash ring. The rebalance cost —
// open sessions whose owner arc moved, and the outstanding hints those
// sessions strand on the old owner — is measured and returned as a
// RebalanceReport and counted in pbppm_cluster_sessions_remapped_total
// and pbppm_cluster_hints_orphaned_total. A leaving shard's sessions
// are flushed through OnSessionEnd first, so its in-progress training
// data survives the departure.
package cluster

import (
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pbppm/internal/markov"
	"pbppm/internal/obs"
	"pbppm/internal/popularity"
	"pbppm/internal/quality"
	"pbppm/internal/server"
)

// RouterPeer is the sentinel host the router writes into the forwarded
// request's RemoteAddr on the in-process hop; shards trust exactly this
// peer to assert client identity.
const RouterPeer = "pbppm-router"

// routerRemoteAddr is RouterPeer in RemoteAddr form (host:port, so
// net.SplitHostPort parses it like a real peer address).
const routerRemoteAddr = RouterPeer + ":0"

// Config parameterizes an in-process cluster.
type Config struct {
	// Shards is the initial shard count; it must be at least 1.
	Shards int
	// Replicas is the virtual-node count per shard on the hash ring;
	// zero selects the package default (128).
	Replicas int
	// Store serves documents on every shard; required.
	Store server.ContentStore
	// ShardConfig is the base server configuration cloned per shard.
	// Two fields are overridden: Obs (each shard gets its own registry,
	// so per-shard expositions stay well-formed instead of merging
	// identically-named series) and TrustedPeers (shards trust only the
	// router hop). Callback fields (OnSessionEnd, OnHintEvent) are
	// shared across shards and must be safe for concurrent use.
	ShardConfig server.Config
	// Obs registers the router's metrics: per-shard request counters,
	// the shard-count gauge, and the rebalance cost counters. Nil keeps
	// them process-internal.
	Obs *obs.Registry
	// TrustedPeers is the router's own ingress trust policy — peers
	// allowed to assert X-Client-ID on requests entering the router
	// (e.g. an outer load balancer). Empty trusts any peer, the right
	// default when cooperating clients connect straight to the router.
	TrustedPeers []string
}

// routerMetrics are the routing tier's own counters; per-shard request
// counters live on the shard nodes.
type routerMetrics struct {
	shards           *obs.Gauge
	rebalanceJoins   *obs.Counter
	rebalanceLeaves  *obs.Counter
	sessionsRemapped *obs.Counter
	hintsOrphaned    *obs.Counter
	noShard          *obs.Counter
}

func newRouterMetrics(reg *obs.Registry) *routerMetrics {
	kind := func(v string) obs.Label { return obs.Label{Name: "kind", Value: v} }
	const rebalanceHelp = "Ring membership changes, by kind (join, leave)."
	return &routerMetrics{
		shards: reg.Gauge("pbppm_cluster_shards",
			"Shard instances currently on the hash ring."),
		rebalanceJoins:  reg.Counter("pbppm_cluster_rebalances_total", rebalanceHelp, kind("join")),
		rebalanceLeaves: reg.Counter("pbppm_cluster_rebalances_total", rebalanceHelp, kind("leave")),
		sessionsRemapped: reg.Counter("pbppm_cluster_sessions_remapped_total",
			"Open client sessions whose ring owner changed in a rebalance; their context restarts on the new owner."),
		hintsOrphaned: reg.Counter("pbppm_cluster_hints_orphaned_total",
			"Outstanding hint records stranded on the old owner by a rebalance; hit reports for them surface as unmatched on the new owner."),
		noShard: reg.Counter("pbppm_cluster_routing_errors_total", routingErrHelp,
			obs.Label{Name: "reason", Value: "no_shard"}),
	}
}

// routingErrHelp documents pbppm_cluster_routing_errors_total, shared
// by the in-process Cluster and the standalone Router so both register
// the family with identical metadata.
const routingErrHelp = "Requests the routing tier could not deliver to a shard, by reason: " +
	"no_shard (empty ring) or backend (reverse-proxy round trip to the owner failed)."

// shardNode is one in-process shard: its server, its private metrics
// registry, and the router-side request counter labelled with its ID.
type shardNode struct {
	id       int
	srv      *server.Server
	reg      *obs.Registry
	requests *obs.Counter
}

// predCell / gradeCell box interfaces behind atomic pointers so new
// shards can catch up on the latest publication without locks.
type predCell struct{ p markov.Predictor }
type gradeCell struct{ g popularity.Grader }

// Cluster routes requests to in-process shards by consistent hash over
// client identity. It implements http.Handler; everything behind it is
// the same server.Server the single-node deployment runs.
type Cluster struct {
	cfg      Config
	identity server.IdentityPolicy
	metrics  *routerMetrics

	pred   atomic.Pointer[predCell]
	grader atomic.Pointer[gradeCell]

	mu     sync.RWMutex
	ring   *ring
	shards map[int]*shardNode
	nextID int
}

// New builds a cluster with cfg.Shards shard instances on the ring.
func New(cfg Config) (*Cluster, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("cluster: nil content store")
	}
	c := &Cluster{
		cfg:      cfg,
		identity: server.NewIdentityPolicy(cfg.TrustedPeers),
		metrics:  newRouterMetrics(cfg.Obs),
		shards:   make(map[int]*shardNode),
	}
	if p := cfg.ShardConfig.Predictor; p != nil {
		c.pred.Store(&predCell{p: p})
	}
	if g := cfg.ShardConfig.Grades; g != nil {
		c.grader.Store(&gradeCell{g: g})
	}
	ids := make([]int, 0, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		id := c.nextID
		c.nextID++
		c.shards[id] = c.newShard(id)
		ids = append(ids, id)
	}
	c.ring = newRing(ids, cfg.Replicas)
	c.metrics.shards.Set(int64(len(ids)))
	return c, nil
}

// newShard constructs one shard server from the base config: a private
// registry, trust pinned to the router hop, and the latest published
// model and grader.
func (c *Cluster) newShard(id int) *shardNode {
	reg := obs.NewRegistry()
	sc := c.cfg.ShardConfig
	sc.Obs = reg
	sc.TrustedPeers = []string{RouterPeer}
	if cell := c.pred.Load(); cell != nil {
		sc.Predictor = cell.p
	}
	if cell := c.grader.Load(); cell != nil {
		sc.Grades = cell.g
	}
	return &shardNode{
		id:  id,
		srv: server.New(c.cfg.Store, sc),
		reg: reg,
		requests: c.cfg.Obs.Counter("pbppm_shard_requests_total",
			"Requests routed to each shard by the consistent-hash ring.",
			obs.Label{Name: "shard", Value: strconv.Itoa(id)}),
	}
}

// ServeHTTP resolves the client identity under the router's trust
// policy, picks the owning shard off the ring, and forwards with the
// identity stamped on the trusted hop. The hot path takes one RLock
// around the ring/shard lookup; rebalances swap the ring wholesale.
func (c *Cluster) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	client := c.identity.ClientOf(r)
	c.mu.RLock()
	id, ok := c.ring.owner(client)
	var sh *shardNode
	if ok {
		sh = c.shards[id]
	}
	c.mu.RUnlock()
	if sh == nil {
		c.metrics.noShard.Inc()
		http.Error(w, "cluster: no shards on the ring", http.StatusServiceUnavailable)
		return
	}
	fwd := r.Clone(r.Context())
	fwd.Header.Set(server.HeaderClientID, client)
	fwd.RemoteAddr = routerRemoteAddr
	sh.requests.Inc()
	sh.srv.ServeHTTP(w, fwd)
}

// RebalanceReport prices one ring membership change.
type RebalanceReport struct {
	// Kind is "join" or "leave".
	Kind string
	// Shard is the shard that joined or left.
	Shard int
	// ShardsAfter is the ring size after the change.
	ShardsAfter int
	// SessionsRemapped counts open client sessions whose owner changed:
	// their context restarts cold on the new owner while the old copy
	// ages out.
	SessionsRemapped int
	// HintsOrphaned counts outstanding hint records inside those
	// sessions: hit reports for them will land on the new owner, match
	// nothing, and show up in pbppm_hint_reports_unmatched_total.
	HintsOrphaned int
}

// AddShard adds one shard to the ring and returns its ID plus the
// rebalance cost: every open session on an existing shard whose arc
// moved to the newcomer is remapped, stranding its outstanding hints.
func (c *Cluster) AddShard() (int, RebalanceReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	node := c.newShard(id)

	ids := c.shardIDsLocked()
	ids = append(ids, id)
	next := newRing(ids, c.cfg.Replicas)

	rep := RebalanceReport{Kind: "join", Shard: id, ShardsAfter: len(ids)}
	for _, sh := range c.shards {
		for _, os := range sh.srv.OpenSessions() {
			if owner, ok := next.owner(os.Client); ok && owner != sh.id {
				rep.SessionsRemapped++
				rep.HintsOrphaned += os.Hints
			}
		}
	}

	c.shards[id] = node
	c.ring = next
	c.metrics.shards.Set(int64(len(ids)))
	c.metrics.rebalanceJoins.Inc()
	c.metrics.sessionsRemapped.Add(int64(rep.SessionsRemapped))
	c.metrics.hintsOrphaned.Add(int64(rep.HintsOrphaned))
	return id, rep
}

// RemoveShard takes one shard off the ring. Every session open on it is
// remapped by definition; the departing shard is flushed through
// OnSessionEnd afterwards so its in-progress sessions still reach the
// training window. Removing the last shard is refused — a router with
// an empty ring can only 503.
func (c *Cluster) RemoveShard(id int) (RebalanceReport, error) {
	c.mu.Lock()
	node, ok := c.shards[id]
	if !ok {
		c.mu.Unlock()
		return RebalanceReport{}, fmt.Errorf("cluster: no shard %d", id)
	}
	if len(c.shards) == 1 {
		c.mu.Unlock()
		return RebalanceReport{}, fmt.Errorf("cluster: refusing to remove the last shard")
	}
	delete(c.shards, id)
	ids := c.shardIDsLocked()
	c.ring = newRing(ids, c.cfg.Replicas)

	rep := RebalanceReport{Kind: "leave", Shard: id, ShardsAfter: len(ids)}
	for _, os := range node.srv.OpenSessions() {
		rep.SessionsRemapped++
		rep.HintsOrphaned += os.Hints
	}
	c.metrics.shards.Set(int64(len(ids)))
	c.metrics.rebalanceLeaves.Inc()
	c.metrics.sessionsRemapped.Add(int64(rep.SessionsRemapped))
	c.metrics.hintsOrphaned.Add(int64(rep.HintsOrphaned))
	c.mu.Unlock()

	// Outside the cluster lock: delivery runs OnSessionEnd callbacks.
	node.srv.FlushSessions()
	return rep, nil
}

// shardIDsLocked returns the current shard IDs sorted; caller holds mu.
func (c *Cluster) shardIDsLocked() []int {
	ids := make([]int, 0, len(c.shards))
	for id := range c.shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// ShardIDs returns the IDs currently on the ring, sorted.
func (c *Cluster) ShardIDs() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.shardIDsLocked()
}

// Shard returns the shard server by ID, or nil.
func (c *Cluster) Shard(id int) *server.Server {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if sh := c.shards[id]; sh != nil {
		return sh.srv
	}
	return nil
}

// ShardRegistry returns a shard's private metrics registry, or nil —
// each shard's exposition is served separately (the admin mux mounts
// them under /debug/shard/<id>/metrics).
func (c *Cluster) ShardRegistry(id int) *obs.Registry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if sh := c.shards[id]; sh != nil {
		return sh.reg
	}
	return nil
}

// Owner reports which shard the ring assigns a client identity to.
func (c *Cluster) Owner(client string) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.owner(client)
}

// SetPredictor replicates a published model snapshot to every shard.
// The snapshot is immutable (for frozen models, one relocatable arena
// []byte), so in-process replication is the pointer swap each shard's
// SetPredictor performs; shards joining later catch up from the cell.
func (c *Cluster) SetPredictor(p markov.Predictor) {
	c.pred.Store(&predCell{p: p})
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, sh := range c.shards {
		sh.srv.SetPredictor(p)
	}
}

// SetGrader replicates the popularity grader to every shard.
func (c *Cluster) SetGrader(g popularity.Grader) {
	c.grader.Store(&gradeCell{g: g})
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, sh := range c.shards {
		sh.srv.SetGrader(g)
	}
}

// ExpireSessions runs session expiry on every shard and returns the
// total expired.
func (c *Cluster) ExpireSessions() int {
	total := 0
	for _, sh := range c.nodes() {
		total += sh.srv.ExpireSessions()
	}
	return total
}

// nodes snapshots the shard set for iteration outside the lock.
func (c *Cluster) nodes() []*shardNode {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*shardNode, 0, len(c.shards))
	for _, id := range c.shardIDsLocked() {
		out = append(out, c.shards[id])
	}
	return out
}

// Stats aggregates shard counter snapshots.
func (c *Cluster) Stats() server.Stats {
	var st server.Stats
	for _, sh := range c.nodes() {
		st = st.Add(sh.srv.Stats())
	}
	return st
}

// QualityTotal aggregates the shards' cumulative live quality.
func (c *Cluster) QualityTotal() quality.Snapshot {
	var s quality.Snapshot
	for _, sh := range c.nodes() {
		s = s.Add(sh.srv.QualityTotal())
	}
	return s
}

// QualityWindow aggregates the shards' rolling-window quality.
func (c *Cluster) QualityWindow(span time.Duration) quality.Snapshot {
	var s quality.Snapshot
	for _, sh := range c.nodes() {
		s = s.Add(sh.srv.QualityWindow(span))
	}
	return s
}

// BindSLIs wires cluster-aggregate SLIs into an SLO engine: the same
// three signals server.BindSLIs provides, summed across shards.
func (c *Cluster) BindSLIs(e *obs.SLOEngine) {
	e.Bind("latency", func(threshold, span time.Duration) (float64, float64) {
		var good, total int64
		for _, sh := range c.nodes() {
			g, t := sh.srv.DemandLatencyGoodTotal(span, threshold)
			good += g
			total += t
		}
		return float64(good), float64(total)
	})
	e.Bind("precision", func(_, span time.Duration) (float64, float64) {
		snap := c.QualityWindow(span)
		return float64(snap.PrefetchHits), float64(snap.PrefetchedDocs)
	})
	e.Bind("hit_ratio", func(_, span time.Duration) (float64, float64) {
		snap := c.QualityWindow(span)
		return float64(snap.CacheHits + snap.PrefetchHits), float64(snap.Requests)
	})
}

// Router is the standalone routing tier for shards running as separate
// processes: it consistent-hashes client identity over a static set of
// HTTP backends (prefetchd instances booted with -router-addr pointing
// back at this router's host so they trust its identity stamp) and
// reverse-proxies each request to the owner. Membership is fixed at
// construction; the in-process Cluster is the dynamic variant.
type Router struct {
	identity    server.IdentityPolicy
	ring        *ring
	backends    map[int]http.Handler
	requests    map[int]*obs.Counter
	backendErrs map[int]*obs.Counter
	noShard     *obs.Counter
	backendErr  *obs.Counter
	log         *slog.Logger
}

// RouterConfig parameterizes a standalone HTTP router.
type RouterConfig struct {
	// Backends are the shard base URLs, e.g. "http://10.0.0.11:8080";
	// at least one is required. Backend i gets shard ID i on the ring.
	Backends []string
	// Replicas is the virtual-node count per backend; zero selects the
	// package default.
	Replicas int
	// TrustedPeers is the router's ingress identity trust (see
	// Config.TrustedPeers).
	TrustedPeers []string
	// Obs registers pbppm_shard_requests_total{shard} for the router;
	// nil keeps it process-internal.
	Obs *obs.Registry
	// Logger receives backend-failure lines, tagged component=router;
	// nil discards them.
	Logger *slog.Logger
}

// NewRouter builds a standalone HTTP router over fixed backends.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one backend")
	}
	rt := &Router{
		identity:    server.NewIdentityPolicy(cfg.TrustedPeers),
		backends:    make(map[int]http.Handler, len(cfg.Backends)),
		requests:    make(map[int]*obs.Counter, len(cfg.Backends)),
		backendErrs: make(map[int]*obs.Counter, len(cfg.Backends)),
		noShard: cfg.Obs.Counter("pbppm_cluster_routing_errors_total", routingErrHelp,
			obs.Label{Name: "reason", Value: "no_shard"}),
		backendErr: cfg.Obs.Counter("pbppm_cluster_routing_errors_total", routingErrHelp,
			obs.Label{Name: "reason", Value: "backend"}),
		log: obs.Component(cfg.Logger, "router"),
	}
	ids := make([]int, 0, len(cfg.Backends))
	for i, b := range cfg.Backends {
		u, err := url.Parse(b)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad backend URL %q", b)
		}
		proxy := httputil.NewSingleHostReverseProxy(u)
		// The default ErrorHandler logs to the process-global logger and
		// writes a bare 502 with no body or accounting. A dead shard is
		// an operational event the routing tier must surface: count it
		// per shard, log it with the backend address, and answer a
		// well-formed 502 the client can distinguish from the shard's
		// own errors.
		shard, host := i, u.Host
		proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			rt.backendErr.Inc()
			rt.backendErrs[shard].Inc()
			rt.log.Warn("backend round trip failed",
				"shard", shard, "backend", host, "path", r.URL.Path, "error", err)
			http.Error(w, fmt.Sprintf("cluster: shard %d backend unavailable", shard),
				http.StatusBadGateway)
		}
		rt.backends[i] = proxy
		rt.requests[i] = cfg.Obs.Counter("pbppm_shard_requests_total",
			"Requests routed to each shard by the consistent-hash ring.",
			obs.Label{Name: "shard", Value: strconv.Itoa(i)})
		rt.backendErrs[i] = cfg.Obs.Counter("pbppm_cluster_backend_errors_total",
			"Reverse-proxy round trips that failed per shard backend (connection refused, reset, timeout); each also answered 502 and counted under routing_errors{reason=\"backend\"}.",
			obs.Label{Name: "shard", Value: strconv.Itoa(i)})
		ids = append(ids, i)
	}
	rt.ring = newRing(ids, cfg.Replicas)
	return rt, nil
}

// ServeHTTP resolves identity, stamps it, and proxies to the owner.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	client := rt.identity.ClientOf(r)
	id, ok := rt.ring.owner(client)
	if !ok {
		rt.noShard.Inc()
		http.Error(w, "cluster: no shards on the ring", http.StatusServiceUnavailable)
		return
	}
	r.Header.Set(server.HeaderClientID, client)
	rt.requests[id].Inc()
	rt.backends[id].ServeHTTP(w, r)
}
