package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pbppm/internal/core"
	"pbppm/internal/obs"
	"pbppm/internal/popularity"
	"pbppm/internal/quality"
	"pbppm/internal/server"
)

// --- shared fixtures -------------------------------------------------

func testStore() server.MapStore {
	store := server.MapStore{}
	for url, size := range map[string]int{
		"/home":       4000,
		"/news":       3000,
		"/news/today": 2500,
		"/sports":     3500,
		"/blog":       1500,
	} {
		store[url] = server.Document{URL: url, Body: make([]byte, size)}
	}
	return store
}

func testGrades() popularity.FixedGrades {
	return popularity.FixedGrades{"/home": 3, "/news": 2, "/news/today": 1, "/sports": 2, "/blog": 1}
}

// trainedModel knows /home -> /news -> /news/today strongly and
// /sports -> /blog weakly enough to still hint.
func trainedModel() *core.Model {
	m := core.New(testGrades(), core.Config{})
	for i := 0; i < 5; i++ {
		m.TrainSequence([]string{"/home", "/news", "/news/today"})
		m.TrainSequence([]string{"/sports", "/blog"})
	}
	return m
}

func get(t *testing.T, h http.Handler, url, remoteAddr, clientHeader string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	req.RemoteAddr = remoteAddr
	if clientHeader != "" {
		req.Header.Set(server.HeaderClientID, clientHeader)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// --- ring ------------------------------------------------------------

func TestRingDeterministicAndBalanced(t *testing.T) {
	a := newRing([]int{0, 1, 2, 3}, 0)
	b := newRing([]int{3, 1, 0, 2}, 0) // same set, different order
	if len(a.points) != len(b.points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.points), len(b.points))
	}
	for i := range a.points {
		if a.points[i] != b.points[i] {
			t.Fatalf("ring differs at %d: %+v vs %+v", i, a.points[i], b.points[i])
		}
	}

	// Load split over many client identities stays within a reasonable
	// band of even (128 virtual nodes keeps it tight).
	const keys = 10000
	counts := map[int]int{}
	for i := 0; i < keys; i++ {
		id, ok := a.owner(fmt.Sprintf("client-%d", i))
		if !ok {
			t.Fatal("owner reported empty ring")
		}
		counts[id]++
	}
	for shard, n := range counts {
		frac := float64(n) / keys
		if frac < 0.15 || frac > 0.40 {
			t.Errorf("shard %d owns %.1f%% of keys, want near 25%%", shard, 100*frac)
		}
	}
}

func TestRingRemapsOnlyMovedArcs(t *testing.T) {
	before := newRing([]int{0, 1, 2, 3}, 0)
	after := newRing([]int{0, 1, 2, 3, 4}, 0)
	const keys = 10000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("client-%d", i)
		b, _ := before.owner(key)
		a, _ := after.owner(key)
		if a != b {
			if a != 4 {
				t.Fatalf("key %q moved %d -> %d, not to the new shard", key, b, a)
			}
			moved++
		}
	}
	// Consistent hashing moves ~1/5 of keys to the newcomer; modulo
	// hashing would move ~4/5. Assert we are on the right side by a
	// wide margin.
	if frac := float64(moved) / keys; frac < 0.10 || frac > 0.35 {
		t.Errorf("add-shard moved %.1f%% of keys, want ~20%%", 100*frac)
	}

	if _, ok := newRing(nil, 0).owner("x"); ok {
		t.Error("empty ring must report no owner")
	}
}

// Regression for the weak-avalanche bug: sequential client identities
// (the common real shape — numbered load-generator clients, adjacent
// IPs) hash through raw FNV-1a into a few narrow bands of the circle,
// and a joining shard's arcs can miss every one of them — a 2→3 join
// was observed remapping 0 of 20 live clients. With the mixed ring
// hash, even a small sequential pool remaps ~1/N of its keys.
func TestRingSpreadsSequentialIdentities(t *testing.T) {
	before := newRing([]int{0, 1}, 0)
	after := newRing([]int{0, 1, 2}, 0)
	for _, shape := range []string{"lg-c%04d", "client-%d", "10.0.0.%d"} {
		moved := 0
		const n = 40
		for i := 0; i < n; i++ {
			key := fmt.Sprintf(shape, i)
			b, _ := before.owner(key)
			a, _ := after.owner(key)
			if a != b {
				moved++
			}
		}
		// Expect ~n/3; accept a wide band, but never the degenerate
		// none-moved (the bug) or most-moved (modulo-style reshuffle).
		if moved < n/10 || moved > n*6/10 {
			t.Errorf("%s: join remapped %d/%d sequential keys, want ~%d", shape, moved, n, n/3)
		}
	}
}

// --- routing and identity --------------------------------------------

// The router resolves identity once and stamps it on the trusted hop;
// shards trust only the router, so each client's context lives whole on
// its ring owner and a forged header cannot cross shards.
func TestClusterRoutesByClientIdentity(t *testing.T) {
	c, err := New(Config{Shards: 4, Store: testStore()})
	if err != nil {
		t.Fatal(err)
	}
	clients := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	for _, id := range clients {
		get(t, c, "/home", "203.0.113.1:999", id)
		get(t, c, "/news", "203.0.113.1:999", id)
	}
	for _, id := range clients {
		owner, ok := c.Owner(id)
		if !ok {
			t.Fatalf("no owner for %s", id)
		}
		for _, sid := range c.ShardIDs() {
			sessions := c.Shard(sid).OpenSessions()
			found := false
			for _, os := range sessions {
				if os.Client == id {
					found = true
					if os.URLs != 2 {
						t.Errorf("%s on shard %d has %d URLs, want 2", id, sid, os.URLs)
					}
				}
			}
			if found != (sid == owner) {
				t.Errorf("%s: session on shard %d (owner %d)", id, sid, owner)
			}
		}
	}
	if st := c.Stats(); st.DemandRequests != int64(2*len(clients)) {
		t.Errorf("aggregate DemandRequests = %d, want %d", st.DemandRequests, 2*len(clients))
	}
}

// End to end over real sockets: the shard sees the router's stamp, not
// whatever the client put on the wire, because the shard trusts only
// the RouterPeer hop.
func TestClusterIdentityStampOverHTTP(t *testing.T) {
	c, err := New(Config{Shards: 2, Store: testStore()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c)
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/home", nil)
	req.Header.Set(server.HeaderClientID, "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	owner, _ := c.Owner("alice")
	sessions := c.Shard(owner).OpenSessions()
	if len(sessions) != 1 || sessions[0].Client != "alice" {
		t.Fatalf("owner shard sessions = %+v, want one for alice", sessions)
	}
}

// SetPredictor replicates one immutable snapshot to every shard, and a
// shard joining later catches up on the latest publication.
func TestPredictorFanOutAndCatchUp(t *testing.T) {
	c, err := New(Config{Shards: 2, Store: testStore()})
	if err != nil {
		t.Fatal(err)
	}
	if rec := get(t, c, "/home", "1.2.3.4:1", "alice"); rec.Header().Get(server.HeaderPrefetch) != "" {
		t.Fatal("unpublished cluster issued hints")
	}

	c.SetPredictor(trainedModel())
	c.SetGrader(testGrades())
	// Every shard hints now: route distinct clients until each shard has
	// issued at least one hint.
	for i := 0; i < 64; i++ {
		get(t, c, "/home", "1.2.3.4:1", fmt.Sprintf("c%d", i))
	}
	for _, id := range c.ShardIDs() {
		if st := c.Shard(id).Stats(); st.HintsIssued == 0 {
			t.Errorf("shard %d issued no hints after fan-out", id)
		}
	}

	id, _ := c.AddShard()
	for i := 0; i < 64; i++ {
		get(t, c, "/home", "1.2.3.4:1", fmt.Sprintf("late%d", i))
	}
	if st := c.Shard(id).Stats(); st.HintsIssued == 0 {
		t.Errorf("late-joining shard %d did not catch up on the published model", id)
	}
}

// --- rebalance accounting and the unmatched-report regression --------

// A shard join reprices the ring: the report must count exactly the
// open sessions whose owner moved, and a hit report for a hint the old
// owner issued must surface on the new owner as unmatched — counted,
// not silently dropped — while still scoring the hit.
func TestRebalanceReportAndUnmatchedHitReports(t *testing.T) {
	c, err := New(Config{
		Shards:      2,
		Store:       testStore(),
		ShardConfig: server.Config{Predictor: trainedModel(), Grades: testGrades()},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Open hinted sessions for many clients and record owners.
	const n = 40
	ownersBefore := map[string]int{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("client-%d", i)
		get(t, c, "/home", "1.2.3.4:1", id) // hints /news
		ownersBefore[id], _ = c.Owner(id)
	}
	hintsBefore := map[string]int{}
	for _, sid := range c.ShardIDs() {
		for _, os := range c.Shard(sid).OpenSessions() {
			hintsBefore[os.Client] = os.Hints
		}
	}

	newID, rep := c.AddShard()
	wantRemapped, wantOrphaned := 0, 0
	var movedClient string
	for id, before := range ownersBefore {
		after, _ := c.Owner(id)
		if after != before {
			if after != newID {
				t.Fatalf("%s moved %d -> %d, not to the new shard", id, before, after)
			}
			wantRemapped++
			wantOrphaned += hintsBefore[id]
			movedClient = id
		}
	}
	if rep.SessionsRemapped != wantRemapped || rep.HintsOrphaned != wantOrphaned {
		t.Errorf("report = %+v, want remapped %d orphaned %d", rep, wantRemapped, wantOrphaned)
	}
	if rep.Kind != "join" || rep.Shard != newID || rep.ShardsAfter != 3 {
		t.Errorf("report metadata = %+v", rep)
	}
	if wantRemapped == 0 {
		t.Fatal("no client remapped by the join; enlarge n")
	}

	// The remapped client reports its prefetch hit for /news. The new
	// owner never issued that hint: unmatched, counted, still scored.
	before := c.Stats()
	req := httptest.NewRequest("GET", "/", nil)
	req.RemoteAddr = "1.2.3.4:1"
	req.Header.Set(server.HeaderClientID, movedClient)
	req.Header.Set(server.HeaderPrefetchReportOnly, "1")
	req.Header.Set(server.HeaderPrefetchReport, server.FormatReport([]server.ReportEntry{
		{URL: "/news", Outcome: quality.PrefetchHit},
	}))
	c.ServeHTTP(httptest.NewRecorder(), req)

	after := c.Stats()
	if got := after.HintReportsUnmatched - before.HintReportsUnmatched; got != 1 {
		t.Errorf("HintReportsUnmatched delta = %d, want 1", got)
	}
	if newOwnerStats := c.Shard(newID).Stats(); newOwnerStats.HintReportsUnmatched != 1 {
		t.Errorf("unmatched report not counted on the new owner: %+v", newOwnerStats)
	}
	if got := c.QualityTotal().PrefetchHits; got == 0 {
		t.Error("unmatched report was not scored as a prefetch hit")
	}
}

// A shard leave remaps everything it held and flushes its open sessions
// through OnSessionEnd so training data survives the departure.
func TestRemoveShardFlushesSessions(t *testing.T) {
	var mu sync.Mutex
	ended := map[string][]string{}
	c, err := New(Config{
		Shards: 3,
		Store:  testStore(),
		ShardConfig: server.Config{
			OnSessionEnd: func(client string, urls []string, _ time.Time) {
				mu.Lock()
				ended[client] = urls
				mu.Unlock()
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		get(t, c, "/home", "1.2.3.4:1", fmt.Sprintf("client-%d", i))
	}
	victim := c.ShardIDs()[0]
	held := len(c.Shard(victim).OpenSessions())
	if held == 0 {
		t.Fatal("victim shard held no sessions; enlarge n")
	}

	rep, err := c.RemoveShard(victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "leave" || rep.SessionsRemapped != held || rep.ShardsAfter != 2 {
		t.Errorf("leave report = %+v, want %d sessions remapped over 2 shards", rep, held)
	}
	mu.Lock()
	flushed := len(ended)
	mu.Unlock()
	if flushed != held {
		t.Errorf("OnSessionEnd delivered %d sessions, want %d", flushed, held)
	}
	if c.Shard(victim) != nil {
		t.Error("removed shard still resolvable")
	}
	if _, err := c.RemoveShard(victim); err == nil {
		t.Error("removing a removed shard must error")
	}

	// The last shard cannot leave.
	ids := c.ShardIDs()
	if _, err := c.RemoveShard(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RemoveShard(ids[1]); err == nil {
		t.Error("removing the last shard must be refused")
	}
}

// --- equivalence with a single node ----------------------------------

// replayTrace drives a fixed set of client walks through one handler
// with cooperating prefetch clients (synchronous, so each walk is
// deterministic), then flushes reports. Walks run sequentially; hint
// accounting is per-client, so interleaving cannot change the totals.
func replayTrace(t *testing.T, baseURL string) {
	t.Helper()
	walks := map[string][]string{
		"alice": {"/home", "/news", "/news/today"}, // hint hit chain
		"bob":   {"/home", "/sports", "/blog"},     // hinted /news wasted
		"carol": {"/sports", "/blog", "/home"},     // weak chain hit
		"dave":  {"/news", "/news/today", "/home"}, // mid-chain entry
		"erin":  {"/home", "/news", "/home"},       // partial hit, revisit
	}
	// Deterministic order.
	ids := []string{"alice", "bob", "carol", "dave", "erin"}
	for _, id := range ids {
		cl, err := server.NewClient(server.ClientConfig{
			ID:                  id,
			BaseURL:             baseURL,
			SynchronousPrefetch: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, url := range walks[id] {
			if _, err := cl.Get(url); err != nil {
				t.Fatalf("%s GET %s: %v", id, url, err)
			}
		}
		if err := cl.Flush(); err != nil {
			t.Fatalf("%s flush: %v", id, err)
		}
	}
}

// eventTally counts hint-lifecycle transitions by type; shared across
// shards the way a maintainer callback would be.
type eventTally struct {
	mu sync.Mutex
	n  [4]int
}

func (e *eventTally) record(ev server.HintEvent) {
	e.mu.Lock()
	e.n[ev.Type]++
	e.mu.Unlock()
}

// The acceptance-criteria equivalence test: N shards replaying one
// trace must produce the same integer hint accounting — issued,
// fetched, hit, wasted — and the same quality snapshot as a single
// node, because routing by client identity keeps each client's
// serving state whole on one shard and every shard serves the same
// immutable model.
func TestClusterEquivalenceWithSingleNode(t *testing.T) {
	base := time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)

	run := func(shards int) (quality.Snapshot, server.Stats, [4]int) {
		var nanos atomic.Int64
		tally := &eventTally{}
		cfg := server.Config{
			Predictor:   trainedModel(),
			Grades:      testGrades(),
			Clock:       func() time.Time { return base.Add(time.Duration(nanos.Load())) },
			OnHintEvent: tally.record,
		}
		var handler http.Handler
		var qual func() quality.Snapshot
		var stats func() server.Stats
		var expire func() int
		if shards == 1 {
			srv := server.New(testStore(), cfg)
			handler, qual, stats, expire = srv, srv.QualityTotal, srv.Stats, srv.ExpireSessions
		} else {
			c, err := New(Config{Shards: shards, Store: testStore(), ShardConfig: cfg})
			if err != nil {
				t.Fatal(err)
			}
			handler, qual, stats, expire = c, c.QualityTotal, c.Stats, c.ExpireSessions
		}

		ts := httptest.NewServer(handler)
		defer ts.Close()
		replayTrace(t, ts.URL)

		// Close every session so fetched-but-never-hit hints emit Wasted.
		nanos.Add(int64(24 * time.Hour))
		expire()

		tally.mu.Lock()
		events := tally.n
		tally.mu.Unlock()
		return qual(), stats(), events
	}

	wantQual, wantStats, wantEvents := run(1)
	if wantEvents[server.HintIssued] == 0 || wantEvents[server.HintHit] == 0 || wantEvents[server.HintWasted] == 0 {
		t.Fatalf("trace too weak to test equivalence: events = %v", wantEvents)
	}

	for _, n := range []int{2, 4} {
		gotQual, gotStats, gotEvents := run(n)
		if gotEvents != wantEvents {
			t.Errorf("%d shards: lifecycle events = %v (issued,fetched,hit,wasted), single node = %v",
				n, gotEvents, wantEvents)
		}
		if gotQual != wantQual {
			t.Errorf("%d shards: quality = %+v, single node = %+v", n, gotQual, wantQual)
		}
		if gotStats.HintsIssued != wantStats.HintsIssued ||
			gotStats.HintFetches != wantStats.HintFetches ||
			gotStats.HintHits != wantStats.HintHits ||
			gotStats.DemandRequests != wantStats.DemandRequests ||
			gotStats.HintReportsUnmatched != wantStats.HintReportsUnmatched {
			t.Errorf("%d shards: stats = %+v, single node = %+v", n, gotStats, wantStats)
		}
	}
}

// --- smoke (run under -race in CI) -----------------------------------

// TestClusterSmoke boots a 4-shard cluster behind the router, pushes
// ~500 concurrent requests from many clients, and checks the books:
// aggregate completions match what was sent, per-shard counters sum to
// the aggregate, and the router and shard expositions lint clean.
func TestClusterSmoke(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(Config{
		Shards:      4,
		Store:       testStore(),
		ShardConfig: server.Config{Predictor: trainedModel(), Grades: testGrades()},
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c)
	defer ts.Close()

	const (
		nClients = 25
		perCli   = 20 // 500 requests total
	)
	urls := []string{"/home", "/news", "/news/today", "/sports", "/blog"}
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perCli; k++ {
				req, _ := http.NewRequest("GET", ts.URL+urls[k%len(urls)], nil)
				req.Header.Set(server.HeaderClientID, fmt.Sprintf("smoke-%d", i))
				resp, err := http.DefaultClient.Do(req)
				if err != nil || resp.StatusCode != http.StatusOK {
					failures.Add(1)
					if err == nil {
						resp.Body.Close()
					}
					continue
				}
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed", failures.Load())
	}

	const total = nClients * perCli
	if st := c.Stats(); st.DemandRequests != total {
		t.Errorf("aggregate DemandRequests = %d, want %d", st.DemandRequests, total)
	}
	var perShard int64
	for _, id := range c.ShardIDs() {
		perShard += c.Shard(id).Stats().DemandRequests
	}
	if perShard != total {
		t.Errorf("per-shard sum = %d, want %d", perShard, total)
	}

	// Expositions lint clean: the router registry and every shard's.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(sb.String()); err != nil {
		t.Errorf("router exposition: %v", err)
	}
	if !strings.Contains(sb.String(), `pbppm_shard_requests_total{shard="0"}`) {
		t.Error("router exposition missing per-shard request counters")
	}
	for _, id := range c.ShardIDs() {
		sb.Reset()
		if err := c.ShardRegistry(id).WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateExposition(sb.String()); err != nil {
			t.Errorf("shard %d exposition: %v", id, err)
		}
	}
}

// --- standalone HTTP router ------------------------------------------

// The standalone Router proxies to shard processes over HTTP, stamping
// the resolved identity; shards configured to trust the router's host
// honor the stamp even though every connection shares one peer address.
func TestRouterProxiesToHTTPBackends(t *testing.T) {
	// Shards trust the loopback host the proxy connects from.
	shards := make([]*server.Server, 2)
	backends := make([]string, 2)
	for i := range shards {
		shards[i] = server.New(testStore(), server.Config{TrustedPeers: []string{"127.0.0.1", "::1"}})
		ts := httptest.NewServer(shards[i])
		defer ts.Close()
		backends[i] = ts.URL
	}
	rt, err := NewRouter(RouterConfig{Backends: backends})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	defer rts.Close()

	clients := []string{"alice", "bob", "carol", "dave"}
	for _, id := range clients {
		req, _ := http.NewRequest("GET", rts.URL+"/home", nil)
		req.Header.Set(server.HeaderClientID, id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %s", id, resp.Status)
		}
	}
	var total int
	for i, sh := range shards {
		sessions := sh.OpenSessions()
		for _, os := range sessions {
			owner, _ := rt.ring.owner(os.Client)
			if owner != i {
				t.Errorf("%s landed on backend %d, ring owner %d", os.Client, i, owner)
			}
		}
		total += len(sessions)
	}
	if total != len(clients) {
		t.Errorf("distinct sessions = %d, want %d", total, len(clients))
	}

	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Error("router with no backends must error")
	}
	if _, err := NewRouter(RouterConfig{Backends: []string{"::bad::"}}); err == nil {
		t.Error("bad backend URL must error")
	}
}
