package cluster

import (
	"context"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pbppm/internal/core"
	"pbppm/internal/maintain"
	"pbppm/internal/markov"
	"pbppm/internal/popularity"
	"pbppm/internal/quality"
	"pbppm/internal/server"
	"pbppm/internal/session"
)

// gradedKey tallies hint-lifecycle events by both transition and the
// popularity grade the serving tier stamped on them. Grades come from
// the grader each shard holds at event time, so this is the surface
// that silently degrades when a remote shard serves without the
// publisher's ranking: every event collapses to grade 0.
type gradedKey struct {
	Type  server.HintEventType
	Grade popularity.Grade
}

type gradedTally struct {
	mu sync.Mutex
	n  map[gradedKey]int
}

func (g *gradedTally) record(ev server.HintEvent) {
	g.mu.Lock()
	if g.n == nil {
		g.n = make(map[gradedKey]int)
	}
	g.n[gradedKey{ev.Type, ev.Grade}]++
	g.mu.Unlock()
}

func (g *gradedTally) snapshot() map[gradedKey]int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[gradedKey]int, len(g.n))
	for k, v := range g.n {
		out[k] = v
	}
	return out
}

func equalTallies(a, b map[gradedKey]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// distributionFactory mirrors the serving factory: PB-PPM over the
// window's ranking.
func distributionFactory(rank *popularity.Ranking) markov.Predictor {
	return core.New(rank, core.Config{})
}

// trainedPublisher builds a maintainer whose window reproduces the
// trainedModel fixture's chains, rebuilt so the published model is the
// frozen PB-PPM snapshot and the ranking is window-derived.
func trainedPublisher(t *testing.T, base time.Time) *maintain.Maintainer {
	t.Helper()
	m, err := maintain.New(maintain.Config{Factory: distributionFactory})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(hour int, urls ...string) session.Session {
		s := session.Session{Client: "history"}
		for i, u := range urls {
			s.Views = append(s.Views, session.PageView{
				URL:  u,
				Time: base.Add(time.Duration(hour-24)*time.Hour + time.Duration(i)*time.Minute),
			})
		}
		return s
	}
	for i := 0; i < 5; i++ {
		m.Observe(mk(i, "/home", "/news", "/news/today"))
		m.Observe(mk(i, "/sports", "/blog"))
	}
	if m.Rebuild(base) == nil {
		t.Fatal("publisher rebuild failed")
	}
	return m
}

// TestDistributedEquivalenceWithInProcessCluster is the PR's
// acceptance-criteria test: an in-process cluster and a
// separate-process topology — shard servers behind the standalone
// HTTP Router, each fed the model and popularity ranking through the
// snapshot-distribution channel instead of sharing memory — must
// produce identical integer hint accounting (issued, fetched, hit,
// wasted), identical quality snapshots, and identical grade labels on
// every lifecycle event.
func TestDistributedEquivalenceWithInProcessCluster(t *testing.T) {
	base := time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)

	// In-process arm: the cluster shares the publisher's model and
	// ranking by pointer, exactly as prefetchd -shards wires it.
	runInProcess := func(shards int) (quality.Snapshot, server.Stats, map[gradedKey]int) {
		pubM := trainedPublisher(t, base)
		var nanos atomic.Int64
		tally := &gradedTally{}
		c, err := New(Config{
			Shards: shards,
			Store:  testStore(),
			ShardConfig: server.Config{
				Predictor:   pubM.Predictor(),
				Grades:      pubM.Ranking(),
				Clock:       func() time.Time { return base.Add(time.Duration(nanos.Load())) },
				OnHintEvent: tally.record,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(c)
		defer ts.Close()
		replayTrace(t, ts.URL)
		nanos.Add(int64(24 * time.Hour))
		c.ExpireSessions()
		return c.QualityTotal(), c.Stats(), tally.snapshot()
	}

	// Distributed arm: each shard is its own server + follower
	// maintainer; the model and ranking cross an HTTP snapshot hop and
	// the crash-safe install gate before serving starts.
	runDistributed := func(shards int) (quality.Snapshot, server.Stats, map[gradedKey]int) {
		pubM := trainedPublisher(t, base)
		pub := maintain.NewPublisher(pubM, maintain.PublisherConfig{})
		pubTS := httptest.NewServer(pub)
		defer pubTS.Close()

		var nanos atomic.Int64
		tally := &gradedTally{}
		srvs := make([]*server.Server, shards)
		backends := make([]string, shards)
		for i := range srvs {
			srv := server.New(testStore(), server.Config{
				Clock:        func() time.Time { return base.Add(time.Duration(nanos.Load())) },
				OnHintEvent:  tally.record,
				TrustedPeers: []string{"127.0.0.1", "::1"},
			})
			var sm *maintain.Maintainer
			sm, err := maintain.New(maintain.Config{
				Factory: distributionFactory,
				OnPublish: func(p markov.Predictor) {
					srv.SetPredictor(p)
					if r := sm.Ranking(); r != nil {
						srv.SetGrader(r)
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			fol, err := maintain.NewFollower(maintain.FollowerConfig{
				URL:     pubTS.URL,
				Install: sm.InstallSnapshot,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Synchronous install: the shard must be model-complete
			// before traffic arrives, like a booted follower daemon.
			if err := fol.Poll(context.Background()); err != nil {
				t.Fatal(err)
			}
			if fol.Version() == 0 {
				t.Fatal("follower installed nothing")
			}
			srvs[i] = srv
			shardTS := httptest.NewServer(srv)
			defer shardTS.Close()
			backends[i] = shardTS.URL
		}

		rt, err := NewRouter(RouterConfig{Backends: backends})
		if err != nil {
			t.Fatal(err)
		}
		rts := httptest.NewServer(rt)
		defer rts.Close()
		replayTrace(t, rts.URL)

		nanos.Add(int64(24 * time.Hour))
		var q quality.Snapshot
		var st server.Stats
		for _, srv := range srvs {
			srv.ExpireSessions()
		}
		for _, srv := range srvs {
			q = q.Add(srv.QualityTotal())
			st = st.Add(srv.Stats())
		}
		return q, st, tally.snapshot()
	}

	wantQual, wantStats, wantEvents := runInProcess(2)
	// The trace must exercise every lifecycle stage, and the grades on
	// those events must be nonzero — an all-zero grade distribution is
	// exactly what a ranking-less remote shard produces, and would let
	// this test pass vacuously.
	stages := map[server.HintEventType]bool{}
	graded := false
	for k := range wantEvents {
		stages[k.Type] = true
		if k.Grade > 0 {
			graded = true
		}
	}
	if !stages[server.HintIssued] || !stages[server.HintHit] || !stages[server.HintWasted] {
		t.Fatalf("trace too weak: events = %v", wantEvents)
	}
	if !graded {
		t.Fatal("no event carries a nonzero popularity grade; the grade assertion would be vacuous")
	}

	for _, n := range []int{1, 2, 4} {
		gotQual, gotStats, gotEvents := runDistributed(n)
		if !equalTallies(gotEvents, wantEvents) {
			t.Errorf("%d processes: graded lifecycle events = %v, in-process cluster = %v",
				n, gotEvents, wantEvents)
		}
		if gotQual != wantQual {
			t.Errorf("%d processes: quality = %+v, in-process cluster = %+v", n, gotQual, wantQual)
		}
		if gotStats.HintsIssued != wantStats.HintsIssued ||
			gotStats.HintFetches != wantStats.HintFetches ||
			gotStats.HintHits != wantStats.HintHits ||
			gotStats.DemandRequests != wantStats.DemandRequests ||
			gotStats.HintReportsUnmatched != wantStats.HintReportsUnmatched {
			t.Errorf("%d processes: stats = %+v, in-process cluster = %+v", n, gotStats, wantStats)
		}
	}
}
