package cluster

import (
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over shard IDs: each shard owns many
// virtual points on the 32-bit FNV-1a circle, and a key belongs to the
// shard owning the first point at or after the key's hash. Adding or
// removing one shard therefore remaps only the keys whose arc changed
// owner (~1/N of them), which is what keeps a shard join or leave from
// resharding every client's session at once.
//
// The ring is immutable once built; the Cluster swaps whole rings on
// membership changes, so the routing hot path reads it without locks.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint32
	shard int
}

// defaultReplicas is the virtual-node count per shard. 128 keeps the
// load split across shards within a few percent of even for the shard
// counts this package targets (single digits to low tens) at a cost of
// a few kilobytes per ring.
const defaultReplicas = 128

// newRing builds a ring over the given shard IDs with replicas virtual
// nodes each (<=0 selects defaultReplicas). An empty shard list yields
// an empty ring; owner reports false on it.
func newRing(shards []int, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{points: make([]ringPoint, 0, len(shards)*replicas)}
	for _, id := range shards {
		base := "shard-" + strconv.Itoa(id) + "#"
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  ringHash(base + strconv.Itoa(v)),
				shard: id,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash collisions between virtual nodes are broken by shard ID so
		// ring construction stays deterministic regardless of input order.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// owner returns the shard owning key, walking clockwise from the key's
// hash; ok is false on an empty ring.
func (r *ring) owner(key string) (shard int, ok bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].shard, true
}

// ringHash positions a key on the circle: 32-bit FNV-1a mixed through
// the murmur3 finalizer. Raw FNV-1a is NOT usable here — it has weak
// avalanche, so sequential identities ("client-17", "client-18", or a
// rack of adjacent IPs) hash to a few narrow bands of the circle, and
// a joining shard's virtual nodes can miss every live client (observed:
// a 2→3 join remapping 0 of 20 sequential clients). The finalizer
// decorrelates similar keys; the paper's per-client state only needs
// the placement to be deterministic, not FNV specifically.
func ringHash(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}
