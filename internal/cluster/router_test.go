package cluster

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"pbppm/internal/obs"
	"pbppm/internal/server"
)

// TestRouterDeadBackendAnswers502 pins the Router's failure behaviour
// when a shard process is down: the reverse proxy's round trip fails,
// and instead of the default handler's bare, uncounted 502 the router
// must answer a well-formed 502 naming the shard, count the failure per
// shard, and keep serving clients whose ring owner is alive.
func TestRouterDeadBackendAnswers502(t *testing.T) {
	live := server.New(testStore(), server.Config{TrustedPeers: []string{"127.0.0.1", "::1"}})
	liveTS := httptest.NewServer(live)
	defer liveTS.Close()

	// A backend URL with nothing listening: start a throwaway listener
	// to claim a port, then close it so connections are refused.
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadTS.URL
	deadTS.Close()

	reg := obs.NewRegistry()
	rt, err := NewRouter(RouterConfig{
		Backends: []string{liveTS.URL, deadURL},
		Obs:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	defer rts.Close()

	// Find one client routed to each backend; 128 vnodes per backend
	// make both arcs dense, so a handful of candidates suffices.
	ownedBy := map[int]string{}
	for i := 0; len(ownedBy) < 2 && i < 256; i++ {
		client := "client-" + strconv.Itoa(i)
		if id, ok := rt.ring.owner(client); ok {
			if _, seen := ownedBy[id]; !seen {
				ownedBy[id] = client
			}
		}
	}
	if len(ownedBy) != 2 {
		t.Fatal("could not find clients for both ring arcs")
	}

	do := func(client string) (*http.Response, string) {
		req, _ := http.NewRequest(http.MethodGet, rts.URL+"/home", nil)
		req.Header.Set(server.HeaderClientID, client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	// The dead shard's clients get a diagnosable 502, repeatedly.
	for i := 0; i < 3; i++ {
		resp, body := do(ownedBy[1])
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("dead backend status = %d, want 502", resp.StatusCode)
		}
		if !strings.Contains(body, "shard 1 backend unavailable") {
			t.Fatalf("dead backend body = %q", body)
		}
	}
	// The live shard's clients are unaffected.
	if resp, _ := do(ownedBy[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("live backend status = %d", resp.StatusCode)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	if err := obs.ValidateExposition(expo); err != nil {
		t.Errorf("router exposition invalid: %v", err)
	}
	for _, want := range []string{
		`pbppm_cluster_backend_errors_total{shard="1"} 3`,
		`pbppm_cluster_routing_errors_total{reason="backend"} 3`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q:\n%s", want, expo)
		}
	}
	if strings.Contains(expo, `pbppm_cluster_backend_errors_total{shard="0"} 0`) {
		// Zero-valued family lines are fine; just make sure the live
		// shard counted no failures.
		t.Log("live shard backend errors at zero, as expected")
	}
	if strings.Contains(expo, `pbppm_cluster_backend_errors_total{shard="0"} 1`) {
		t.Error("live shard counted a backend failure")
	}
}
