package core

import (
	"reflect"
	"testing"

	"pbppm/internal/markov"
	"pbppm/internal/popularity"
)

// TestCloneDeltaMergeEquivalence pins the incremental-maintenance
// contract for PB-PPM: clone the live model, train only the delta into
// a shard, fold it in, and the result predicts exactly like a model
// trained on base+delta with the same grader — while the live model is
// untouched.
func TestCloneDeltaMergeEquivalence(t *testing.T) {
	grades := popularity.FixedGrades{
		"/home": 3, "/news": 2, "/news/today": 1, "/sports": 2, "/hot": 3,
	}
	cfg := Config{}
	base := [][]string{
		{"/home", "/news", "/news/today"},
		{"/home", "/sports"},
	}
	delta := [][]string{
		{"/home", "/news", "/hot"},
		{"/sports", "/hot"},
	}

	live := New(grades, cfg)
	for _, s := range base {
		live.TrainSequence(s)
	}
	live.SetUsageRecording(false)
	liveNodes := live.NodeCount()

	shard := live.NewShard()
	for _, s := range delta {
		shard.TrainSequence(s)
	}
	merged := live.Clone().(*Model)
	merged.MergeShard(shard)

	retrain := New(grades, cfg)
	for _, s := range append(append([][]string{}, base...), delta...) {
		retrain.TrainSequence(s)
	}

	for _, ctx := range [][]string{
		{"/home"}, {"/home", "/news"}, {"/sports"}, {"/news"}, {"/hot"},
	} {
		got := merged.Predict(ctx)
		want := retrain.Predict(ctx)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Predict(%v): merged %+v, retrain %+v", ctx, got, want)
		}
	}
	if merged.NodeCount() != retrain.NodeCount() || merged.LinkCount() != retrain.LinkCount() {
		t.Errorf("merged nodes/links = %d/%d, retrain %d/%d",
			merged.NodeCount(), merged.LinkCount(), retrain.NodeCount(), retrain.LinkCount())
	}
	if live.NodeCount() != liveNodes {
		t.Errorf("delta merge mutated the live model: %d -> %d nodes", liveNodes, live.NodeCount())
	}
	var _ markov.IncrementalTrainer = merged // clone stays incrementally trainable
}
