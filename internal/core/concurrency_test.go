package core

import (
	"sync"
	"testing"

	"pbppm/internal/popularity"
)

// TestConcurrentPredictSharedModel predicts from many goroutines on one
// trained model with usage recording enabled: marks are atomic, so this
// must pass under -race. Before this contract, concurrent Predict
// through a shared model raced on Node.used.
func TestConcurrentPredictSharedModel(t *testing.T) {
	grades := popularity.FixedGrades{"/home": 3, "/news": 2, "/news/today": 1}
	m := New(grades, Config{})
	for i := 0; i < 10; i++ {
		m.TrainSequence([]string{"/home", "/news", "/news/today"})
	}
	if !m.UsageRecording() {
		t.Fatal("recording should default on")
	}

	contexts := [][]string{
		{"/home"},
		{"/home", "/news"},
		{"/home", "/news", "/news/today"},
		{"/news"},
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Predict(contexts[(g+i)%len(contexts)])
			}
		}(g)
	}
	wg.Wait()
	if m.Utilization() == 0 {
		t.Error("usage marks lost despite recording enabled")
	}

	// Detached recording: Predict performs no writes at all and results
	// are unchanged.
	m.ResetUsage()
	m.SetUsageRecording(false)
	wg = sync.WaitGroup{}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if ps := m.Predict([]string{"/home"}); len(ps) == 0 {
					t.Error("read-only Predict returned nothing")
					return
				}
			}
		}()
	}
	wg.Wait()
	if m.Utilization() != 0 {
		t.Error("detached recording still wrote usage marks")
	}
}
