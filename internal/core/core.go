// Package core implements the paper's primary contribution: the
// popularity-based PPM prefetching model (§3.4).
//
// The Markov prediction tree grows with a variable height per branch:
// a branch headed by a popular URL may grow long (height 7 for grade 3)
// while a branch headed by an unpopular URL stays short (height 1 for
// grade 0). The model is built with four rules:
//
//  1. Branch heights are proportional to the heading URL's relative
//     popularity grade (default 7/5/3/1 for grades 3/2/1/0).
//  2. The maximum height is moderate because >95% of access sessions
//     have at most 9 clicks.
//  3. A URL appearing in a branch that is not the immediate successor
//     of the heading URL, and whose grade exceeds the heading URL's
//     grade or is the highest grade, is additionally linked directly
//     under the heading URL as a duplicated node; when the clicked URL
//     is a root, those linked nodes yield extra predictions.
//  4. Each URL of a session is added once: it extends the single open
//     branch, and it additionally starts a new root branch only when
//     its grade is strictly higher than its predecessor's (or it opens
//     the session). This keeps the root population dominated by
//     popular URLs.
//
// After building, two space optimizations may be applied: cutting
// branches whose relative access probability (node count over parent
// count) is below a cutoff, and removing nodes accessed only once.
package core

import (
	"fmt"

	"pbppm/internal/markov"
	"pbppm/internal/popularity"
	"pbppm/internal/ppm"
)

// DefaultHeights is the paper's grade→height mapping (§4.1): height 7
// for grade-3 heading URLs, 5 for grade 2, 3 for grade 1, 1 for grade 0.
var DefaultHeights = [4]int{1, 3, 5, 7}

// Config parameterizes the popularity-based model.
type Config struct {
	// Heights maps a heading URL's popularity grade to the maximum
	// height of branches it leads. The zero value selects
	// DefaultHeights. Every entry must be at least 1 once defaulted.
	Heights [4]int
	// Threshold is the minimum conditional probability for a prefetch
	// candidate; zero selects the paper's 0.25.
	Threshold float64
	// DisableLinks turns off rule 3 (the duplicated popular-node links);
	// used by the ablation experiments.
	DisableLinks bool
	// MaxLinkPredictions caps how many linked duplicated nodes a root
	// may contribute per prediction, strongest first. Zero selects the
	// default of 1; negative means unlimited.
	MaxLinkPredictions int
	// RelProbCutoff drives the first space optimization: after building,
	// Optimize removes every non-root node whose relative access
	// probability is below this value. The paper uses 1%–10%. Zero
	// disables the optimization.
	RelProbCutoff float64
	// DropSingletons drives the second space optimization: Optimize
	// removes every node (and link) with an absolute access count of at
	// most one. The paper enables it for the UCB-CS trace.
	DropSingletons bool
}

func (c Config) heights() [4]int {
	if c.Heights == ([4]int{}) {
		return DefaultHeights
	}
	return c.Heights
}

func (c Config) threshold() float64 { return ppm.ThresholdOrDefault(c.Threshold) }

// Model is a popularity-based PPM predictor.
type Model struct {
	cfg     Config
	heights [4]int
	grades  popularity.Grader
	tree    *markov.Tree
	// links holds rule-3 duplicated nodes: heading URL → linked URL →
	// access count of the duplicate.
	links map[string]map[string]int64
}

var _ markov.Predictor = (*Model)(nil)
var _ markov.BufferedPredictor = (*Model)(nil)
var _ markov.Freezer = (*Model)(nil)
var _ markov.UtilizationReporter = (*Model)(nil)
var _ markov.UsageRecorder = (*Model)(nil)
var _ markov.ShardedTrainer = (*Model)(nil)
var _ markov.IncrementalTrainer = (*Model)(nil)

// New returns an empty popularity-based model that grades URLs with
// grades (typically a *popularity.Ranking built from the training
// window). It panics if grades is nil or a configured height is below
// 1: both are programmer errors.
func New(grades popularity.Grader, cfg Config) *Model {
	if grades == nil {
		panic("core: nil popularity grader")
	}
	h := cfg.heights()
	for g, v := range h {
		if v < 1 {
			panic(fmt.Sprintf("core: height %d for grade %d must be at least 1", v, g))
		}
	}
	return &Model{
		cfg:     cfg,
		heights: h,
		grades:  grades,
		tree:    markov.NewTree(),
		links:   make(map[string]map[string]int64),
	}
}

// Name identifies the model.
func (m *Model) Name() string { return "PB-PPM" }

// maxHeight returns the branch height limit for a heading URL grade.
func (m *Model) maxHeight(g popularity.Grade) int {
	if g < 0 {
		g = 0
	}
	if int(g) >= len(m.heights) {
		g = popularity.Grade(len(m.heights) - 1)
	}
	return m.heights[g]
}

// TrainSequence folds one session into the model following the four
// construction rules.
func (m *Model) TrainSequence(seq []string) {
	var (
		cur        *markov.Node // deepest node of the open branch
		heightLeft int          // nodes the open branch may still grow
		rootGrade  popularity.Grade
		rootURL    string
		depth      int // nodes in the open branch so far
		prevGrade  popularity.Grade
	)
	for i, u := range seq {
		g := m.grades.GradeOf(u)

		// Extend the single open branch (rule 4: each URL is added once).
		if cur != nil && heightLeft > 0 {
			child := m.tree.EnsureChild(cur, u)
			child.Count++
			depth++
			// Rule 3: a popular URL deeper than the heading URL's
			// immediate successor earns a duplicated node linked under
			// the heading URL.
			if depth >= 3 && !m.cfg.DisableLinks &&
				(g > rootGrade || g == popularity.MaxGrade) {
				m.addLink(rootURL, u)
			}
			cur = child
			heightLeft--
		}

		// Open a new root branch at the session head or on a strict
		// grade ascent; the new branch becomes the open one.
		if i == 0 || g > prevGrade {
			root := m.tree.EnsureChild(m.tree.Root, u)
			root.Count++
			m.tree.Root.Count++
			cur = root
			rootURL, rootGrade = u, g
			heightLeft = m.maxHeight(g) - 1
			depth = 1
		}
		prevGrade = g
	}
}

// NewShard returns an empty model sharing the popularity grader and
// configuration, for markov.TrainAllParallel. The grader is read-only
// during training, so sharing it across shards is safe.
func (m *Model) NewShard() markov.Predictor { return New(m.grades, m.cfg) }

// MergeShard folds a shard trained by NewShard back into the model:
// tree counts are additive and rule-3 link counts fold per (root, url)
// pair, so shard-trained and serially-trained models are equivalent.
func (m *Model) MergeShard(shard markov.Predictor) {
	sh := shard.(*Model)
	m.tree.Merge(sh.tree)
	for root, lm := range sh.links {
		for url, cnt := range lm {
			dst := m.links[root]
			if dst == nil {
				dst = make(map[string]int64)
				m.links[root] = dst
			}
			dst[url] += cnt
		}
	}
}

// Clone returns a deep copy of the model for incremental maintenance:
// the tree and rule-3 link counts are fresh, so merging a delta shard
// into the clone never mutates the receiver. The popularity grader is
// shared — it is read-only during training, and the incremental scheme
// deliberately keeps the grading fixed between compactions (a
// compaction re-derives the ranking from the full window).
func (m *Model) Clone() markov.Predictor {
	links := make(map[string]map[string]int64, len(m.links))
	for root, lm := range m.links {
		cp := make(map[string]int64, len(lm))
		for url, cnt := range lm {
			cp[url] = cnt
		}
		links[root] = cp
	}
	return &Model{
		cfg:     m.cfg,
		heights: m.heights,
		grades:  m.grades,
		tree:    m.tree.Clone(),
		links:   links,
	}
}

func (m *Model) maxLinkPredictions() int {
	switch {
	case m.cfg.MaxLinkPredictions == 0:
		return 1
	case m.cfg.MaxLinkPredictions < 0:
		return -1
	default:
		return m.cfg.MaxLinkPredictions
	}
}

func (m *Model) addLink(root, url string) {
	if root == url {
		return
	}
	lm := m.links[root]
	if lm == nil {
		lm = make(map[string]int64)
		m.links[root] = lm
	}
	lm[url]++
}

// Predict combines the longest-suffix match used by all models with the
// rule-3 extra predictions: when the current click is a root of the
// tree, the root's linked duplicated nodes are offered as additional
// candidates. Duplicate URLs keep their highest probability (a tree
// candidate wins an exact tie, keeping its matched order).
func (m *Model) Predict(context []string) []markov.Prediction {
	return m.PredictInto(context, nil)
}

// PredictInto is Predict writing into buf per the
// markov.BufferedPredictor buffer-ownership contract.
func (m *Model) PredictInto(context []string, buf []markov.Prediction) []markov.Prediction {
	buf = buf[:0]
	if len(context) == 0 {
		return buf
	}
	thr := m.cfg.threshold()
	if n, order := m.tree.LongestMatch(context); n != nil {
		m.tree.MarkPath(context[len(context)-order:])
		buf = m.tree.PredictFromInto(n, thr, order, buf)
	}
	cur := context[len(context)-1]
	if root := m.tree.Child(m.tree.Root, cur); root != nil && !m.cfg.DisableLinks {
		var linked []markov.Prediction
		for url, cnt := range m.links[cur] {
			p := float64(cnt) / float64(root.Count)
			if p >= thr {
				linked = append(linked, markov.Prediction{URL: url, Probability: p, Order: 1})
			}
		}
		markov.SortPredictions(linked)
		if max := m.maxLinkPredictions(); max >= 0 && len(linked) > max {
			linked = linked[:max]
		}
		buf = mergeLinked(buf, linked)
	}
	if len(buf) == 0 {
		return buf
	}
	markov.SortPredictions(buf)
	return buf
}

// mergeLinked folds the rule-3 link candidates into the tree
// candidates, deduplicating by URL with the strongest estimate winning
// and the tree candidate keeping an exact tie (it came first).
func mergeLinked(preds, linked []markov.Prediction) []markov.Prediction {
	for _, lp := range linked {
		dup := -1
		for i := range preds {
			if preds[i].URL == lp.URL {
				dup = i
				break
			}
		}
		if dup < 0 {
			preds = append(preds, lp)
		} else if lp.Probability > preds[dup].Probability {
			preds[dup] = lp
		}
	}
	return preds
}

// Freeze returns the immutable arena-backed snapshot of the trained
// model: the prediction tree becomes a flat arena and the rule-3 link
// candidates are precomputed per heading URL (their root counts are
// fixed once training stops), so serving performs no map-building, no
// usage marking, and — with a warm caller buffer — no allocations,
// while predictions stay bit-identical to the live model's.
func (m *Model) Freeze() markov.Predictor {
	thr := m.cfg.threshold()
	f := &Frozen{
		name:      m.Name(),
		arena:     m.tree.Freeze(),
		threshold: thr,
		nodeCount: m.NodeCount(),
	}
	if !m.cfg.DisableLinks {
		max := m.maxLinkPredictions()
		f.links = make(map[string][]markov.Prediction, len(m.links))
		for rootURL, lm := range m.links {
			root := m.tree.Child(m.tree.Root, rootURL)
			if root == nil {
				// Live Predict offers links only while the heading URL
				// is a root; a pruned root silences its links.
				continue
			}
			var linked []markov.Prediction
			for url, cnt := range lm {
				p := float64(cnt) / float64(root.Count)
				if p >= thr {
					linked = append(linked, markov.Prediction{URL: url, Probability: p, Order: 1})
				}
			}
			if len(linked) == 0 {
				continue
			}
			markov.SortPredictions(linked)
			if max >= 0 && len(linked) > max {
				linked = linked[:max]
			}
			f.links[rootURL] = linked
		}
	}
	return f
}

// Frozen is the arena-backed snapshot of a popularity-based model.
// It is immutable and safe for unsynchronized concurrent use;
// TrainSequence panics.
type Frozen struct {
	name      string
	arena     *markov.Arena
	threshold float64
	// nodeCount is the live model's NodeCount — tree nodes plus every
	// rule-3 link (the paper's space metric counts links before the
	// prediction threshold is applied, so it is captured at freeze time
	// rather than recomputed from the thresholded link table below).
	nodeCount int
	// links holds the precomputed rule-3 predictions per heading URL:
	// thresholded, sorted, and capped at freeze time.
	links map[string][]markov.Prediction
}

var _ markov.Predictor = (*Frozen)(nil)
var _ markov.BufferedPredictor = (*Frozen)(nil)
var _ markov.ArenaHolder = (*Frozen)(nil)

// Name identifies the model; the frozen snapshot keeps the live name
// so reports stay comparable across a freeze.
func (f *Frozen) Name() string { return f.name }

// TrainSequence panics: a frozen model is a published immutable
// snapshot. Train the live model and freeze again.
func (f *Frozen) TrainSequence([]string) {
	panic("core: TrainSequence on a frozen model; train the live model and re-freeze")
}

// NodeCount reports the live model's storage requirement (tree nodes
// plus rule-3 links), the paper's space metric.
func (f *Frozen) NodeCount() int { return f.nodeCount }

// Arena exposes the snapshot for stats and persistence.
func (f *Frozen) Arena() *markov.Arena { return f.arena }

// Predict mirrors Model.Predict on the arena.
func (f *Frozen) Predict(context []string) []markov.Prediction {
	return f.PredictInto(context, nil)
}

// PredictInto is Predict writing into buf per the
// markov.BufferedPredictor buffer-ownership contract. With a warm
// buffer the call performs zero allocations.
func (f *Frozen) PredictInto(context []string, buf []markov.Prediction) []markov.Prediction {
	buf = buf[:0]
	if len(context) == 0 {
		return buf
	}
	if n, order, ok := f.arena.LongestMatch(context); ok {
		buf = f.arena.AppendPredictions(buf, n, f.threshold, order)
	}
	if linked := f.links[context[len(context)-1]]; len(linked) > 0 {
		buf = mergeLinked(buf, linked)
	}
	if len(buf) == 0 {
		return buf
	}
	markov.SortPredictions(buf)
	return buf
}

// Optimize applies the configured space optimizations and returns the
// number of nodes removed (tree nodes plus duplicated link nodes). The
// paper applies it once, after the tree is built from the training
// window.
func (m *Model) Optimize() int {
	removed := 0
	if cut := m.cfg.RelProbCutoff; cut > 0 {
		removed += m.tree.Prune(func(parent, child *markov.Node) bool {
			if parent == m.tree.Root || parent.Count == 0 {
				return false
			}
			return float64(child.Count)/float64(parent.Count) < cut
		})
		for rootURL, lm := range m.links {
			root := m.tree.Child(m.tree.Root, rootURL)
			if root == nil {
				// The heading URL itself vanished (possible only via
				// DropSingletons below on a prior call); drop its links.
				removed += len(lm)
				delete(m.links, rootURL)
				continue
			}
			for url, cnt := range lm {
				if float64(cnt)/float64(root.Count) < cut {
					delete(lm, url)
					removed++
				}
			}
			if len(lm) == 0 {
				delete(m.links, rootURL)
			}
		}
	}
	if m.cfg.DropSingletons {
		removed += m.tree.Prune(func(parent, child *markov.Node) bool {
			return child.Count <= 1
		})
		for rootURL, lm := range m.links {
			if m.tree.Child(m.tree.Root, rootURL) == nil {
				removed += len(lm)
				delete(m.links, rootURL)
				continue
			}
			for url, cnt := range lm {
				if cnt <= 1 {
					delete(lm, url)
					removed++
				}
			}
			if len(lm) == 0 {
				delete(m.links, rootURL)
			}
		}
	}
	return removed
}

// NodeCount reports the storage requirement: tree nodes plus duplicated
// link nodes.
func (m *Model) NodeCount() int {
	n := m.tree.NodeCount()
	for _, lm := range m.links {
		n += len(lm)
	}
	return n
}

// LinkCount reports the number of duplicated popular-node links.
func (m *Model) LinkCount() int {
	n := 0
	for _, lm := range m.links {
		n += len(lm)
	}
	return n
}

// Utilization reports the fraction of stored root-to-leaf tree paths
// used by predictions since the last ResetUsage. Linked duplicate nodes
// are prediction shortcuts and are not counted as paths.
func (m *Model) Utilization() float64 { return m.tree.Utilization() }

// ResetUsage clears utilization marks.
func (m *Model) ResetUsage() { m.tree.ResetUsage() }

// SetUsageRecording attaches or detaches prediction-time usage marking;
// serving paths detach it so Predict on a published model is read-only.
func (m *Model) SetUsageRecording(on bool) { m.tree.SetUsageRecording(on) }

// UsageRecording reports whether usage marking is enabled.
func (m *Model) UsageRecording() bool { return m.tree.UsageRecording() }

// Tree exposes the underlying prediction tree for diagnostics.
func (m *Model) Tree() *markov.Tree { return m.tree }

// Stats summarizes the model's structure; used to validate the paper's
// claim that most root nodes are popular URLs.
type Stats struct {
	Nodes int
	Roots int
	Links int
	// RootsByGrade counts root nodes per popularity grade.
	RootsByGrade [4]int
}

// Stats computes structural statistics.
func (m *Model) Stats() Stats {
	st := Stats{Nodes: m.NodeCount(), Links: m.LinkCount()}
	m.tree.EachChild(m.tree.Root, func(url string, _ *markov.Node) bool {
		st.Roots++
		g := m.grades.GradeOf(url)
		if g < 0 {
			g = 0
		}
		if g > popularity.MaxGrade {
			g = popularity.MaxGrade
		}
		st.RootsByGrade[g]++
		return true
	})
	return st
}
