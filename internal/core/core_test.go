package core

import (
	"math/rand"
	"testing"

	"pbppm/internal/markov"
	"pbppm/internal/popularity"
	"pbppm/internal/ppm"
)

// fig1Grades reproduces the grading of the paper's Figure 1 example:
// A and A2 grade 3, B and B2 grade 2, C and C2 grade 1.
var fig1Grades = popularity.FixedGrades{
	"A": 3, "A2": 3, "B": 2, "B2": 2, "C": 1, "C2": 1,
}

func TestFigure1Example(t *testing.T) {
	// The paper's example: access sequence A B C A2 B2 C2 with maximum
	// height 4 produces two branches (A B C A2 and A2 B2 C2) plus a
	// special link A -> duplicated A2.
	m := New(fig1Grades, Config{Heights: [4]int{1, 2, 3, 4}})
	m.TrainSequence([]string{"A", "B", "C", "A2", "B2", "C2"})

	tr := m.Tree()
	if tr.Match([]string{"A", "B", "C", "A2"}) == nil {
		t.Error("branch A>B>C>A2 missing")
	}
	if tr.Match([]string{"A2", "B2", "C2"}) == nil {
		t.Error("branch A2>B2>C2 missing")
	}
	if got := tr.Root.Fanout(); got != 2 {
		t.Errorf("roots = %d, want 2 (A and A2)", got)
	}
	if got := m.LinkCount(); got != 1 {
		t.Errorf("links = %d, want 1 (A -> dup A2)", got)
	}
	if m.links["A"]["A2"] != 1 {
		t.Errorf("link map = %v", m.links)
	}
	// 7 tree nodes + 1 duplicated node.
	if got := m.NodeCount(); got != 8 {
		t.Errorf("NodeCount = %d, want 8", got)
	}
}

func TestName(t *testing.T) {
	if got := New(fig1Grades, Config{}).Name(); got != "PB-PPM" {
		t.Errorf("Name = %q", got)
	}
}

func TestNewPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(nil grader) did not panic")
			}
		}()
		New(nil, Config{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New with zero height did not panic")
			}
		}()
		New(fig1Grades, Config{Heights: [4]int{0, 3, 5, 7}})
	}()
}

func TestDefaultHeights(t *testing.T) {
	m := New(fig1Grades, Config{})
	for g, want := range []int{1, 3, 5, 7} {
		if got := m.maxHeight(popularity.Grade(g)); got != want {
			t.Errorf("maxHeight(%d) = %d, want %d", g, got, want)
		}
	}
	// Out-of-range grades are clamped.
	if m.maxHeight(-1) != 1 || m.maxHeight(9) != 7 {
		t.Error("grade clamping broken")
	}
}

func TestBranchHeightByGrade(t *testing.T) {
	grades := popularity.FixedGrades{"p": 3, "u": 0}
	m := New(grades, Config{})
	long := []string{"p", "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8"}
	m.TrainSequence(long)
	// Grade-3 head: height 7 — nodes p,x1..x6 stored, x7,x8 beyond.
	if m.Tree().Match([]string{"p", "x1", "x2", "x3", "x4", "x5", "x6"}) == nil {
		t.Error("grade-3 branch shorter than 7")
	}
	if m.Tree().Match([]string{"p", "x1", "x2", "x3", "x4", "x5", "x6", "x7"}) != nil {
		t.Error("grade-3 branch exceeds height 7")
	}

	m2 := New(grades, Config{})
	m2.TrainSequence([]string{"u", "x1", "x2"})
	// Grade-0 head: height 1 — only the root is stored, and x1/x2 (grade
	// 0, no ascent) are not added anywhere.
	if got := m2.NodeCount(); got != 1 {
		t.Errorf("grade-0 head NodeCount = %d, want 1", got)
	}
}

func TestRootCreationOnGradeAscentOnly(t *testing.T) {
	grades := popularity.FixedGrades{"a": 3, "b": 2, "c": 1, "pop": 3}
	m := New(grades, Config{})
	m.TrainSequence([]string{"a", "b", "c", "pop", "b", "c"})
	tr := m.Tree()
	if got := tr.Root.Fanout(); got != 2 {
		t.Fatalf("roots = %d, want 2 (a and pop)", got)
	}
	if tr.Child(tr.Root, "a") == nil || tr.Child(tr.Root, "pop") == nil {
		t.Error("expected roots a and pop missing")
	}
	// Descending URLs must not be roots.
	if tr.Child(tr.Root, "b") != nil || tr.Child(tr.Root, "c") != nil {
		t.Error("descending URL became a root")
	}
}

func TestEqualGradeDoesNotOpenRoot(t *testing.T) {
	grades := popularity.FixedGrades{"a": 2, "b": 2}
	m := New(grades, Config{})
	m.TrainSequence([]string{"a", "b"})
	if got := m.Tree().Root.Fanout(); got != 1 {
		t.Errorf("equal grade opened a root: fanout %d", got)
	}
}

func TestCountsAccumulateAcrossSessions(t *testing.T) {
	grades := popularity.FixedGrades{"a": 3}
	m := New(grades, Config{})
	for i := 0; i < 5; i++ {
		m.TrainSequence([]string{"a", "b", "c"})
	}
	if n := m.Tree().Match([]string{"a"}); n.Count != 5 {
		t.Errorf("root count = %d, want 5", n.Count)
	}
	if n := m.Tree().Match([]string{"a", "b", "c"}); n.Count != 5 {
		t.Errorf("leaf count = %d, want 5", n.Count)
	}
}

func TestLinkRules(t *testing.T) {
	grades := popularity.FixedGrades{"head": 2, "mid": 1, "pop": 3, "hi": 3}
	m := New(grades, Config{})
	// pop is at depth 3 (not immediately after head) and grade 3: link.
	m.TrainSequence([]string{"head", "mid", "pop"})
	if m.links["head"]["pop"] != 1 {
		t.Errorf("links = %v, want head->pop", m.links)
	}
	// hi immediately follows head (depth 2): no link.
	m2 := New(grades, Config{})
	m2.TrainSequence([]string{"head", "hi"})
	if m2.LinkCount() != 0 {
		t.Errorf("immediate successor linked: %v", m2.links)
	}
	// Self-links are suppressed.
	m3 := New(grades, Config{})
	m3.TrainSequence([]string{"head", "mid", "head"})
	if _, ok := m3.links["head"]["head"]; ok {
		t.Error("self link created")
	}
}

func TestLinkGradeCondition(t *testing.T) {
	// Grade must exceed the heading grade OR be the maximum.
	grades := popularity.FixedGrades{"h3": 3, "g2": 2, "g1": 1, "g3": 3}
	m := New(grades, Config{})
	// Head grade 3; mid-branch grade-2 URL: 2 > 3 false, 2 == 3 false -> no link.
	m.TrainSequence([]string{"h3", "g1", "g2"})
	if m.LinkCount() != 0 {
		t.Errorf("links = %v, want none", m.links)
	}
	// Head grade 3; mid-branch grade-3 URL: max grade -> link.
	m2 := New(grades, Config{})
	m2.TrainSequence([]string{"h3", "g1", "g3"})
	if m2.links["h3"]["g3"] != 1 {
		t.Errorf("links = %v, want h3->g3", m2.links)
	}
}

func TestDisableLinks(t *testing.T) {
	m := New(fig1Grades, Config{DisableLinks: true, Heights: [4]int{1, 2, 3, 4}})
	m.TrainSequence([]string{"A", "B", "C", "A2", "B2", "C2"})
	if m.LinkCount() != 0 {
		t.Error("DisableLinks ignored")
	}
	if m.NodeCount() != 7 {
		t.Errorf("NodeCount = %d, want 7 without the dup node", m.NodeCount())
	}
}

func TestPredictLongestMatch(t *testing.T) {
	grades := popularity.FixedGrades{"a": 3}
	m := New(grades, Config{})
	for i := 0; i < 4; i++ {
		m.TrainSequence([]string{"a", "b", "c"})
	}
	ps := m.Predict([]string{"a", "b"})
	if len(ps) != 1 || ps[0].URL != "c" || ps[0].Order != 2 || ps[0].Probability != 1 {
		t.Fatalf("Predict(a,b) = %+v", ps)
	}
	if got := m.Predict([]string{"zzz"}); got != nil {
		t.Errorf("Predict(zzz) = %+v", got)
	}
	if got := m.Predict(nil); got != nil {
		t.Errorf("Predict(nil) = %+v", got)
	}
}

func TestPredictIncludesLinkedNodes(t *testing.T) {
	grades := popularity.FixedGrades{"home": 3, "page": 1, "hot": 3}
	m := New(grades, Config{})
	for i := 0; i < 4; i++ {
		m.TrainSequence([]string{"home", "page", "hot"})
	}
	// At the root "home", predictions must include both the child
	// "page" (longest match) and the linked duplicate "hot".
	ps := m.Predict([]string{"home"})
	urls := map[string]float64{}
	for _, p := range ps {
		urls[p.URL] = p.Probability
	}
	if urls["page"] != 1 {
		t.Errorf("missing child prediction: %+v", ps)
	}
	if urls["hot"] != 1 {
		t.Errorf("missing linked prediction: %+v", ps)
	}
	// With links disabled the duplicate vanishes.
	m2 := New(grades, Config{DisableLinks: true})
	for i := 0; i < 4; i++ {
		m2.TrainSequence([]string{"home", "page", "hot"})
	}
	for _, p := range m2.Predict([]string{"home"}) {
		if p.URL == "hot" && p.Order == 1 {
			// hot can still be predicted transitively from page, but not
			// at order 1 from home's links.
			t.Errorf("linked prediction present despite DisableLinks: %+v", p)
		}
	}
}

func TestPredictDeduplicatesKeepingMaxProbability(t *testing.T) {
	grades := popularity.FixedGrades{"home": 3, "page": 1, "hot": 3}
	m := New(grades, Config{})
	// hot is both home's linked node and (via another session shape)
	// reachable as a direct child of home.
	for i := 0; i < 4; i++ {
		m.TrainSequence([]string{"home", "page", "hot"}) // link home->hot
	}
	for i := 0; i < 2; i++ {
		m.TrainSequence([]string{"page", "hot"}) // hot root branches
	}
	ps := m.Predict([]string{"home"})
	seen := map[string]int{}
	for _, p := range ps {
		seen[p.URL]++
	}
	for url, n := range seen {
		if n > 1 {
			t.Errorf("URL %s predicted %d times", url, n)
		}
	}
}

func TestPredictThresholdAppliesToLinks(t *testing.T) {
	grades := popularity.FixedGrades{"home": 3, "p1": 1, "p2": 1, "hot": 3}
	m := New(grades, Config{Threshold: 0.5})
	// home visited 4 times; hot linked only once => P = 0.25 < 0.5.
	m.TrainSequence([]string{"home", "p1", "hot"})
	m.TrainSequence([]string{"home", "p1"})
	m.TrainSequence([]string{"home", "p1"})
	m.TrainSequence([]string{"home", "p1"})
	for _, p := range m.Predict([]string{"home"}) {
		if p.URL == "hot" {
			t.Errorf("below-threshold link predicted: %+v", p)
		}
	}
}

func TestOptimizeRelProbCutoff(t *testing.T) {
	grades := popularity.FixedGrades{"a": 3}
	m := New(grades, Config{RelProbCutoff: 0.1})
	for i := 0; i < 20; i++ {
		m.TrainSequence([]string{"a", "b"})
	}
	m.TrainSequence([]string{"a", "b", "rare"}) // P(rare|b) = 1/21 < 10%
	before := m.NodeCount()
	removed := m.Optimize()
	if removed != 1 {
		t.Errorf("removed = %d, want 1", removed)
	}
	if m.NodeCount() != before-1 {
		t.Errorf("NodeCount = %d, want %d", m.NodeCount(), before-1)
	}
	if m.Tree().Match([]string{"a", "b", "rare"}) != nil {
		t.Error("rare node survived optimization")
	}
	if m.Tree().Match([]string{"a", "b"}) == nil {
		t.Error("hot node removed")
	}
}

func TestOptimizeDoesNotCutRootChildren(t *testing.T) {
	// Relative-probability optimization applies to non-root nodes; rare
	// roots survive it (only DropSingletons removes them).
	grades := popularity.FixedGrades{"a": 3, "z": 3}
	m := New(grades, Config{RelProbCutoff: 0.5})
	for i := 0; i < 20; i++ {
		m.TrainSequence([]string{"a", "b"})
	}
	m.TrainSequence([]string{"z"})
	m.Optimize()
	if m.Tree().Match([]string{"z"}) == nil {
		t.Error("rare root removed by relative-probability cut")
	}
}

func TestOptimizeDropSingletons(t *testing.T) {
	grades := popularity.FixedGrades{"a": 3, "z": 3}
	m := New(grades, Config{DropSingletons: true})
	for i := 0; i < 2; i++ {
		m.TrainSequence([]string{"a", "b"})
	}
	m.TrainSequence([]string{"z", "once"})
	removed := m.Optimize()
	// z root (count 1) and its subtree vanish.
	if m.Tree().Match([]string{"z"}) != nil {
		t.Error("singleton root survived")
	}
	if m.Tree().Match([]string{"a", "b"}) == nil {
		t.Error("repeated branch removed")
	}
	if removed < 1 {
		t.Errorf("removed = %d", removed)
	}
}

func TestOptimizeCleansOrphanedLinks(t *testing.T) {
	grades := popularity.FixedGrades{"h": 2, "mid": 1, "pop": 3}
	m := New(grades, Config{DropSingletons: true, RelProbCutoff: 0.01})
	m.TrainSequence([]string{"h", "mid", "pop"}) // single session: all counts 1
	if m.LinkCount() != 1 {
		t.Fatalf("precondition: links = %d", m.LinkCount())
	}
	m.Optimize()
	if m.LinkCount() != 0 {
		t.Errorf("links after optimize = %d, want 0", m.LinkCount())
	}
	if m.NodeCount() != 0 {
		t.Errorf("NodeCount = %d, want 0", m.NodeCount())
	}
	// A second Optimize on the emptied model must be a no-op.
	if again := m.Optimize(); again != 0 {
		t.Errorf("second Optimize removed %d", again)
	}
}

func TestOptimizeLinkRelProb(t *testing.T) {
	grades := popularity.FixedGrades{"home": 3, "p": 1, "hot": 3}
	m := New(grades, Config{RelProbCutoff: 0.3})
	m.TrainSequence([]string{"home", "p", "hot"}) // link count 1
	for i := 0; i < 9; i++ {
		m.TrainSequence([]string{"home", "p"}) // home count 10
	}
	m.Optimize() // link relative probability 0.1 < 0.3
	if m.LinkCount() != 0 {
		t.Errorf("weak link survived: %v", m.links)
	}
}

func TestStatsRootsByGrade(t *testing.T) {
	grades := popularity.FixedGrades{"p3": 3, "p2": 2, "u": 0}
	m := New(grades, Config{})
	m.TrainSequence([]string{"p3", "x"})
	m.TrainSequence([]string{"u", "p2"}) // ascent opens p2 root
	st := m.Stats()
	if st.Roots != 3 {
		t.Fatalf("roots = %d, want 3", st.Roots)
	}
	if st.RootsByGrade[3] != 1 || st.RootsByGrade[2] != 1 || st.RootsByGrade[0] != 1 {
		t.Errorf("RootsByGrade = %v", st.RootsByGrade)
	}
	if st.Nodes != m.NodeCount() || st.Links != m.LinkCount() {
		t.Error("stats disagree with direct counts")
	}
}

func TestUtilization(t *testing.T) {
	grades := popularity.FixedGrades{"a": 3, "q": 3}
	m := New(grades, Config{})
	for i := 0; i < 2; i++ {
		m.TrainSequence([]string{"a", "b"})
		m.TrainSequence([]string{"q", "r"})
	}
	m.Predict([]string{"a"})
	got := m.Utilization()
	if got != 0.5 {
		t.Errorf("utilization = %v, want 0.5 (a>b used, q>r not)", got)
	}
	m.ResetUsage()
	if m.Utilization() != 0 {
		t.Error("ResetUsage failed")
	}
}

// Property: count conservation — every node's count is at least the sum
// of its children's counts, because the single-open-branch construction
// moves the cursor to a node exactly once per increment.
func TestCountConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	urls := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	grades := popularity.FixedGrades{}
	for i, u := range urls {
		grades[u] = popularity.Grade(i % 4)
	}
	m := New(grades, Config{})
	for i := 0; i < 1000; i++ {
		n := rng.Intn(9) + 1
		s := make([]string, n)
		for j := range s {
			s[j] = urls[rng.Intn(len(urls))]
		}
		m.TrainSequence(s)
	}
	var check func(n *markov.Node) bool
	check = func(n *markov.Node) bool {
		var sum int64
		ok := true
		n.EachChild(func(c *markov.Node) bool {
			sum += c.Count
			if !check(c) {
				ok = false
				return false
			}
			return true
		})
		return ok && n.Count >= sum
	}
	m.Tree().Root.EachChild(func(c *markov.Node) bool {
		if !check(c) {
			t.Fatal("count conservation violated")
		}
		return true
	})
}

// Property: branch depth never exceeds the maximum configured height.
func TestHeightInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	urls := []string{"a", "b", "c", "d", "e", "f"}
	grades := popularity.FixedGrades{}
	for i, u := range urls {
		grades[u] = popularity.Grade(i % 4)
	}
	m := New(grades, Config{})
	for i := 0; i < 500; i++ {
		n := rng.Intn(12) + 1
		s := make([]string, n)
		for j := range s {
			s[j] = urls[rng.Intn(len(urls))]
		}
		m.TrainSequence(s)
	}
	maxAllowed := 0
	for _, h := range DefaultHeights {
		if h > maxAllowed {
			maxAllowed = h
		}
	}
	deepest := 0
	m.Tree().Walk(func(path []string, n *markov.Node) {
		if len(path) > deepest {
			deepest = len(path)
		}
	})
	if deepest > maxAllowed {
		t.Errorf("deepest branch %d exceeds maximum height %d", deepest, maxAllowed)
	}
	// Stronger: each branch respects its own root's grade height.
	tr := m.Tree()
	tr.EachChild(tr.Root, func(rootURL string, root *markov.Node) bool {
		limit := DefaultHeights[grades.GradeOf(rootURL)]
		d := depthOf(root)
		if d > limit {
			t.Errorf("branch %s depth %d exceeds grade height %d", rootURL, d, limit)
		}
		return true
	})
}

func depthOf(n *markov.Node) int {
	max := 0
	n.EachChild(func(c *markov.Node) bool {
		if d := depthOf(c); d > max {
			max = d
		}
		return true
	})
	return max + 1
}

func TestNoThresholdPredictsEverything(t *testing.T) {
	grades := popularity.FixedGrades{"a": 3}
	m := New(grades, Config{Threshold: ppm.NoThreshold})
	for i := 0; i < 9; i++ {
		m.TrainSequence([]string{"a", "b"})
	}
	m.TrainSequence([]string{"a", "c"}) // P(c|a)=0.1, below the default 0.25
	ps := m.Predict([]string{"a"})
	if len(ps) != 2 {
		t.Errorf("Predict with NoThreshold = %+v, want both b and c", ps)
	}
}

// TestShardedTrainingEquivalence drives NewShard/MergeShard directly
// and checks the merged tree, rule-3 link counts, and predictions all
// equal the serially trained model.
func TestShardedTrainingEquivalence(t *testing.T) {
	grades := popularity.FixedGrades{"a": 3, "b": 0, "c": 1, "d": 2, "hot": 3}
	rng := rand.New(rand.NewSource(77))
	urls := []string{"a", "b", "c", "d", "hot"}
	var seqs [][]string
	for i := 0; i < 120; i++ {
		s := make([]string, rng.Intn(6)+1)
		for j := range s {
			s[j] = urls[rng.Intn(len(urls))]
		}
		seqs = append(seqs, s)
	}
	serial := New(grades, Config{})
	markov.TrainAll(serial, seqs)

	sharded := New(grades, Config{})
	shards := []markov.Predictor{sharded.NewShard(), sharded.NewShard(), sharded.NewShard()}
	for i, s := range seqs {
		shards[i%len(shards)].TrainSequence(s)
	}
	for _, sh := range shards {
		sharded.MergeShard(sh)
	}

	if got, want := sharded.NodeCount(), serial.NodeCount(); got != want {
		t.Fatalf("NodeCount = %d, serial %d", got, want)
	}
	if got, want := sharded.LinkCount(), serial.LinkCount(); got != want {
		t.Fatalf("LinkCount = %d, serial %d", got, want)
	}
	if got, want := sharded.Stats(), serial.Stats(); got != want {
		t.Fatalf("Stats = %+v, serial %+v", got, want)
	}
	for i := 0; i < 200; i++ {
		ctx := make([]string, rng.Intn(4)+1)
		for j := range ctx {
			ctx[j] = urls[rng.Intn(len(urls))]
		}
		got, want := sharded.Predict(ctx), serial.Predict(ctx)
		if len(got) != len(want) {
			t.Fatalf("ctx %v: %+v vs serial %+v", ctx, got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("ctx %v: %+v vs serial %+v", ctx, got, want)
			}
		}
	}
}
