package core

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"pbppm/internal/markov"
	"pbppm/internal/popularity"
)

// wireModel is the gob image of a popularity-based model. The grader
// is not part of the image: grades are a live server concern and are
// re-supplied at decode time (typically a persisted *Ranking).
type wireModel struct {
	Cfg   Config
	Tree  []byte
	Links map[string]map[string]int64
}

// Encode persists the trained model (configuration, tree, and
// duplicated-node links). The popularity grader is intentionally not
// included; pair this with Ranking.Encode when the grader is a ranking.
func (m *Model) Encode(w io.Writer) error {
	var treeBuf bytes.Buffer
	if err := m.tree.Encode(&treeBuf); err != nil {
		return fmt.Errorf("core: encoding model tree: %w", err)
	}
	bw := bufio.NewWriter(w)
	img := wireModel{Cfg: m.cfg, Tree: treeBuf.Bytes(), Links: m.links}
	if err := gob.NewEncoder(bw).Encode(img); err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	return bw.Flush()
}

// DecodeModel reads a model written by Encode, attaching the supplied
// grader for subsequent training. It panics on a nil grader, matching
// New.
func DecodeModel(r io.Reader, grades popularity.Grader) (*Model, error) {
	if grades == nil {
		panic("core: nil popularity grader")
	}
	var img wireModel
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&img); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	tree, err := markov.DecodeTree(bytes.NewReader(img.Tree))
	if err != nil {
		return nil, fmt.Errorf("core: decoding model tree: %w", err)
	}
	m := New(grades, img.Cfg)
	m.tree = tree
	if img.Links != nil {
		m.links = img.Links
	}
	return m, nil
}
