package core

import (
	"bytes"
	"reflect"
	"testing"

	"pbppm/internal/popularity"
)

func TestModelEncodeDecode(t *testing.T) {
	grades := popularity.FixedGrades{"home": 3, "page": 1, "hot": 3}
	m := New(grades, Config{RelProbCutoff: 0.01})
	for i := 0; i < 5; i++ {
		m.TrainSequence([]string{"home", "page", "hot"})
	}
	m.Optimize()

	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeModel(&buf, grades)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.NodeCount() != m.NodeCount() || got.LinkCount() != m.LinkCount() {
		t.Errorf("counts differ: %d/%d vs %d/%d",
			got.NodeCount(), got.LinkCount(), m.NodeCount(), m.LinkCount())
	}
	want := m.Predict([]string{"home"})
	have := got.Predict([]string{"home"})
	if !reflect.DeepEqual(want, have) {
		t.Errorf("predictions differ after round trip: %+v vs %+v", want, have)
	}
	// The decoded model must accept further training with the grader.
	got.TrainSequence([]string{"home", "page"})
	if got.Tree().Match([]string{"home"}).Count != m.Tree().Match([]string{"home"}).Count+1 {
		t.Error("decoded model did not train")
	}
}

func TestDecodeModelErrors(t *testing.T) {
	if _, err := DecodeModel(bytes.NewReader([]byte("junk")), popularity.FixedGrades{}); err == nil {
		t.Error("junk accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil grader did not panic")
			}
		}()
		DecodeModel(bytes.NewReader(nil), nil) //nolint:errcheck // panics first
	}()
}
