package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"pbppm/internal/markov"
)

// FrozenKind identifies the frozen PB-PPM snapshot in snapshot
// envelopes.
const FrozenKind = "core/pbppm"

// wireFrozen is the gob image of a Frozen model: everything serving
// needs — the arena verbatim, the precomputed rule-3 link predictions,
// the freeze-time node count (the paper's space metric, which counts
// links the threshold already removed from the table below), and the
// threshold itself. The popularity ranking is deliberately not part of
// the model image; the snapshot envelope carries it beside the model so
// hint grading travels with the predictor (see maintain's snapshot
// wire format).
type wireFrozen struct {
	Name      string
	Threshold float64
	NodeCount int
	Links     map[string][]markov.Prediction
	Arena     []byte
}

var _ markov.FrozenEncoder = (*Frozen)(nil)

// FrozenKind implements markov.FrozenEncoder.
func (f *Frozen) FrozenKind() string { return FrozenKind }

// EncodeFrozen implements markov.FrozenEncoder.
func (f *Frozen) EncodeFrozen(w io.Writer) error {
	bw := bufio.NewWriter(w)
	img := wireFrozen{
		Name:      f.name,
		Threshold: f.threshold,
		NodeCount: f.nodeCount,
		Links:     f.links,
		Arena:     f.arena.Bytes(),
	}
	if err := gob.NewEncoder(bw).Encode(img); err != nil {
		return fmt.Errorf("core: encoding frozen model: %w", err)
	}
	return bw.Flush()
}

func init() {
	markov.RegisterFrozenDecoder(FrozenKind, func(r io.Reader) (markov.Predictor, error) {
		var img wireFrozen
		if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&img); err != nil {
			return nil, fmt.Errorf("core: decoding frozen model: %w", err)
		}
		a, err := markov.ArenaFromBytes(img.Arena)
		if err != nil {
			return nil, fmt.Errorf("core: decoding frozen model: %w", err)
		}
		if img.NodeCount < 0 {
			return nil, fmt.Errorf("core: decoding frozen model: negative node count %d", img.NodeCount)
		}
		for url, linked := range img.Links {
			for _, p := range linked {
				if p.URL == "" || math.IsNaN(p.Probability) || p.Probability < 0 {
					return nil, fmt.Errorf("core: decoding frozen model: corrupt link candidate %+v under %q", p, url)
				}
			}
		}
		return &Frozen{
			name:      img.Name,
			arena:     a,
			threshold: img.Threshold,
			nodeCount: img.NodeCount,
			links:     img.Links,
		}, nil
	})
}
