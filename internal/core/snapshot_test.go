package core

import (
	"bytes"
	"reflect"
	"testing"

	"pbppm/internal/markov"
	"pbppm/internal/popularity"
)

// TestFrozenSnapshotRoundTrip: the frozen PB-PPM model — arena plus
// rule-3 links — must revive through the kind registry with identical
// predictions and the freeze-time node count intact. This is the model
// image the snapshot-distribution channel ships between processes.
func TestFrozenSnapshotRoundTrip(t *testing.T) {
	// The paper's Figure 1 shape: the second max-grade URL lands deep in
	// the open branch and earns a rule-3 link under the heading URL.
	grades := popularity.FixedGrades{"A": 3, "A2": 3, "B": 2, "B2": 2, "C": 1, "C2": 1}
	m := New(grades, Config{Heights: [4]int{1, 2, 3, 4}})
	for i := 0; i < 6; i++ {
		m.TrainSequence([]string{"A", "B", "C", "A2", "B2", "C2"})
		m.TrainSequence([]string{"A", "B", "C2"})
	}
	f := m.Freeze().(*Frozen)

	var w bytes.Buffer
	if err := f.EncodeFrozen(&w); err != nil {
		t.Fatal(err)
	}
	got, err := markov.DecodeFrozenModel(f.FrozenKind(), bytes.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gf, ok := got.(*Frozen)
	if !ok {
		t.Fatalf("decoded model is %T, want *core.Frozen", got)
	}
	if gf.Name() != f.Name() || gf.NodeCount() != f.NodeCount() {
		t.Errorf("decoded identity = (%q, %d), want (%q, %d)",
			gf.Name(), gf.NodeCount(), f.Name(), f.NodeCount())
	}
	if len(f.links) == 0 {
		t.Fatal("fixture produced no rule-3 links; the round trip is not exercising them")
	}
	if !reflect.DeepEqual(gf.links, f.links) {
		t.Errorf("links diverged:\n got %+v\nwant %+v", gf.links, f.links)
	}
	ctxs := [][]string{
		{"A"}, {"A", "B"}, {"A", "B", "C"}, {"A2"}, {"A2", "B2"}, {"/x"}, {},
	}
	for _, ctx := range ctxs {
		if want, have := f.Predict(ctx), got.Predict(ctx); !reflect.DeepEqual(want, have) {
			t.Fatalf("ctx %v: decoded predicts %+v, original %+v", ctx, have, want)
		}
	}
}

// TestFrozenSnapshotRejectsCorrupt: truncations of the encoded form
// must error, never panic or yield a half-built model.
func TestFrozenSnapshotRejectsCorrupt(t *testing.T) {
	m := New(popularity.FixedGrades{"/a": 3}, Config{})
	m.TrainSequence([]string{"/a", "/b"})
	f := m.Freeze().(*Frozen)
	var w bytes.Buffer
	if err := f.EncodeFrozen(&w); err != nil {
		t.Fatal(err)
	}
	valid := w.Bytes()
	for cut := 0; cut < len(valid); cut += 5 {
		if _, err := markov.DecodeFrozenModel(FrozenKind, bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
