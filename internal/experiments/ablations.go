package experiments

import (
	"fmt"
	"strconv"

	"pbppm/internal/core"
	"pbppm/internal/metrics"
	"pbppm/internal/ppm"
	"pbppm/internal/sim"
)

// pbVariant trains and evaluates one PB-PPM configuration on the
// standard ablation window (all but the last day for training, the
// last day for testing) and returns its metrics together with the
// no-prefetch baseline.
func pbVariant(w *Workload, cfg core.Config, maxPrefetch int64) (res, base metrics.Result, err error) {
	trainDays := w.Days() - 1
	if trainDays < 1 {
		return res, base, fmt.Errorf("experiments: ablation needs at least 2 days, have %d", w.Days())
	}
	train := w.DaySessions(0, trainDays)
	test := w.DaySessions(trainDays, trainDays+1)
	if len(train) == 0 || len(test) == 0 {
		return res, base, fmt.Errorf("experiments: ablation: empty window")
	}
	rank := Ranking(train)
	model := core.New(rank, cfg)
	w.Hooks.Phases.Time(sim.PhaseTrain, func() { sim.Train(model, train) })

	opt := sim.Options{
		Predictor:        model,
		MaxPrefetchBytes: maxPrefetch,
		Path:             w.Path,
		Grades:           rank,
		Sizes:            w.Sizes,
	}
	w.Hooks.apply(&opt)
	res = sim.Run(test, opt)

	baseOpt := opt
	baseOpt.Predictor = nil
	base = sim.Run(test, baseOpt)
	return res, base, nil
}

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Label            string
	Result           metrics.Result
	LatencyReduction float64
}

// Ablation is a labeled set of PB-PPM variants on one workload.
type Ablation struct {
	Name     string
	Workload string
	Rows     []AblationRow
}

// String renders the ablation as a table.
func (a *Ablation) String() string {
	tb := &metrics.Table{
		Title:   fmt.Sprintf("Ablation %s — %s", a.Name, a.Workload),
		Headers: []string{"variant", "hit ratio", "latency red.", "traffic inc.", "precision", "nodes"},
	}
	for _, r := range a.Rows {
		tb.AddRow(r.Label,
			metrics.Pct(r.Result.HitRatio()),
			metrics.Pct(r.LatencyReduction),
			metrics.Pct(r.Result.TrafficIncrease()),
			metrics.Pct(r.Result.PrefetchPrecision()),
			strconv.Itoa(r.Result.Nodes))
	}
	return tb.String()
}

// RunAblationThresholds sweeps PB-PPM's two prefetch thresholds: the
// next-access probability and the maximum prefetched-document size,
// quantifying the hit-ratio/traffic trade-off §4.1 and §5 discuss.
func RunAblationThresholds(w *Workload) (*Ablation, error) {
	a := &Ablation{Name: "thresholds", Workload: w.Name}
	for _, prob := range []float64{0.10, 0.25, 0.40} {
		for _, size := range []int64{4 * 1024, 10 * 1024, 30 * 1024} {
			cfg := core.Config{Threshold: prob, RelProbCutoff: 0.01, DropSingletons: w.DropSingletons}
			res, base, err := pbVariant(w, cfg, size)
			if err != nil {
				return nil, err
			}
			a.Rows = append(a.Rows, AblationRow{
				Label:            fmt.Sprintf("p>=%.2f size<=%dKB", prob, size/1024),
				Result:           res,
				LatencyReduction: res.LatencyReductionVs(base),
			})
		}
	}
	return a, nil
}

// RunAblationSpaceOpt compares PB-PPM with no space optimization, with
// the relative-access-probability cut alone, and with both
// optimizations (§3.4's two alternatives).
func RunAblationSpaceOpt(w *Workload) (*Ablation, error) {
	a := &Ablation{Name: "space-optimization", Workload: w.Name}
	variants := []struct {
		label string
		cfg   core.Config
	}{
		{"no optimization", core.Config{}},
		{"rel-prob 1% cut", core.Config{RelProbCutoff: 0.01}},
		{"rel-prob 5% cut", core.Config{RelProbCutoff: 0.05}},
		{"rel-prob 10% cut", core.Config{RelProbCutoff: 0.10}},
		{"1% cut + drop singletons", core.Config{RelProbCutoff: 0.01, DropSingletons: true}},
	}
	for _, v := range variants {
		res, base, err := pbVariant(w, v.cfg, sim.PBMaxPrefetchBytes)
		if err != nil {
			return nil, err
		}
		a.Rows = append(a.Rows, AblationRow{
			Label:            v.label,
			Result:           res,
			LatencyReduction: res.LatencyReductionVs(base),
		})
	}
	return a, nil
}

// RunAblationHeights sweeps the grade→height mapping, testing the
// paper's claim that popularity-proportional heights beat flat ones.
func RunAblationHeights(w *Workload) (*Ablation, error) {
	a := &Ablation{Name: "grade-heights", Workload: w.Name}
	variants := []struct {
		label   string
		heights [4]int
	}{
		{"paper 1/3/5/7", [4]int{1, 3, 5, 7}},
		{"flat 3/3/3/3", [4]int{3, 3, 3, 3}},
		{"flat 7/7/7/7", [4]int{7, 7, 7, 7}},
		{"minimal 1/1/1/1", [4]int{1, 1, 1, 1}},
		{"steep 1/2/4/9", [4]int{1, 2, 4, 9}},
	}
	for _, v := range variants {
		cfg := core.Config{Heights: v.heights, RelProbCutoff: 0.01, DropSingletons: w.DropSingletons}
		res, base, err := pbVariant(w, cfg, sim.PBMaxPrefetchBytes)
		if err != nil {
			return nil, err
		}
		a.Rows = append(a.Rows, AblationRow{
			Label:            v.label,
			Result:           res,
			LatencyReduction: res.LatencyReductionVs(base),
		})
	}
	return a, nil
}

// RunAblationLinks isolates rule 3: PB-PPM with and without the
// duplicated popular-node links.
func RunAblationLinks(w *Workload) (*Ablation, error) {
	a := &Ablation{Name: "popular-links", Workload: w.Name}
	variants := []struct {
		label string
		cfg   core.Config
	}{
		{"with links (rule 3)", core.Config{RelProbCutoff: 0.01, DropSingletons: w.DropSingletons}},
		{"without links", core.Config{DisableLinks: true, RelProbCutoff: 0.01, DropSingletons: w.DropSingletons}},
	}
	for _, v := range variants {
		res, base, err := pbVariant(w, v.cfg, sim.PBMaxPrefetchBytes)
		if err != nil {
			return nil, err
		}
		a.Rows = append(a.Rows, AblationRow{
			Label:            v.label,
			Result:           res,
			LatencyReduction: res.LatencyReductionVs(base),
		})
	}
	return a, nil
}

// RunAblationCachePolicy compares LRU (the paper's §2.2 policy) with
// popularity-aware GDSF (its reference [16]) for the browser caches
// under PB-PPM prefetching.
func RunAblationCachePolicy(w *Workload) (*Ablation, error) {
	a := &Ablation{Name: "cache-policy", Workload: w.Name}
	trainDays := w.Days() - 1
	if trainDays < 1 {
		return nil, fmt.Errorf("experiments: ablation needs at least 2 days, have %d", w.Days())
	}
	train := w.DaySessions(0, trainDays)
	test := w.DaySessions(trainDays, trainDays+1)
	rank := Ranking(train)
	model := core.New(rank, core.Config{RelProbCutoff: 0.01, DropSingletons: w.DropSingletons})
	w.Hooks.Phases.Time(sim.PhaseTrain, func() { sim.Train(model, train) })

	for _, v := range []struct {
		label  string
		policy sim.CachePolicy
	}{
		{"LRU (paper)", sim.PolicyLRU},
		{"GDSF (popularity-aware)", sim.PolicyGDSF},
	} {
		opt := sim.Options{
			Predictor:        model,
			MaxPrefetchBytes: sim.PBMaxPrefetchBytes,
			Path:             w.Path,
			Grades:           rank,
			Sizes:            w.Sizes,
			CachePolicy:      v.policy,
		}
		w.Hooks.apply(&opt)
		res := sim.Run(test, opt)
		baseOpt := opt
		baseOpt.Predictor = nil
		base := sim.Run(test, baseOpt)
		a.Rows = append(a.Rows, AblationRow{
			Label:            v.label,
			Result:           res,
			LatencyReduction: res.LatencyReductionVs(base),
		})
	}
	return a, nil
}

// RunAblationBlending compares the paper's longest-match prediction
// with the variable-order blended extension (the "high orders or
// variable orders of Markov models" direction the related work leaves
// open), on the standard model.
func RunAblationBlending(w *Workload) (*Ablation, error) {
	a := &Ablation{Name: "order-blending", Workload: w.Name}
	trainDays := w.Days() - 1
	if trainDays < 1 {
		return nil, fmt.Errorf("experiments: ablation needs at least 2 days, have %d", w.Days())
	}
	train := w.DaySessions(0, trainDays)
	test := w.DaySessions(trainDays, trainDays+1)
	rank := Ranking(train)

	for _, v := range []struct {
		label string
		cfg   ppm.Config
	}{
		{"longest match (paper)", ppm.Config{}},
		{"blended orders", ppm.Config{BlendOrders: true}},
	} {
		model := ppm.New(v.cfg)
		w.Hooks.Phases.Time(sim.PhaseTrain, func() { sim.Train(model, train) })
		opt := sim.Options{
			Predictor:        model,
			MaxPrefetchBytes: sim.DefaultMaxPrefetchBytes,
			Path:             w.Path,
			Grades:           rank,
			Sizes:            w.Sizes,
		}
		w.Hooks.apply(&opt)
		res := sim.Run(test, opt)
		baseOpt := opt
		baseOpt.Predictor = nil
		base := sim.Run(test, baseOpt)
		a.Rows = append(a.Rows, AblationRow{
			Label:            v.label,
			Result:           res,
			LatencyReduction: res.LatencyReductionVs(base),
		})
	}
	return a, nil
}

// RunAblationOnlineTraining compares the paper's train-then-freeze
// deployment with a model that also keeps learning from the test day's
// completed sessions (sim.Options.OnlineTraining).
func RunAblationOnlineTraining(w *Workload) (*Ablation, error) {
	a := &Ablation{Name: "online-training", Workload: w.Name}
	trainDays := w.Days() - 1
	if trainDays < 1 {
		return nil, fmt.Errorf("experiments: ablation needs at least 2 days, have %d", w.Days())
	}
	train := w.DaySessions(0, trainDays)
	test := w.DaySessions(trainDays, trainDays+1)
	rank := Ranking(train)

	for _, v := range []struct {
		label  string
		online bool
	}{
		{"frozen after training (paper)", false},
		{"online updates during test day", true},
	} {
		model := core.New(rank, core.Config{RelProbCutoff: 0.01, DropSingletons: w.DropSingletons})
		w.Hooks.Phases.Time(sim.PhaseTrain, func() { sim.Train(model, train) })
		opt := sim.Options{
			Predictor:        model,
			MaxPrefetchBytes: sim.PBMaxPrefetchBytes,
			Path:             w.Path,
			Grades:           rank,
			Sizes:            w.Sizes,
			OnlineTraining:   v.online,
		}
		w.Hooks.apply(&opt)
		res := sim.Run(test, opt)
		baseOpt := opt
		baseOpt.Predictor = nil
		base := sim.Run(test, baseOpt)
		a.Rows = append(a.Rows, AblationRow{
			Label:            v.label,
			Result:           res,
			LatencyReduction: res.LatencyReductionVs(base),
		})
	}
	return a, nil
}
