package experiments

import (
	"fmt"
	"strconv"

	"pbppm/internal/core"
	"pbppm/internal/lrs"
	"pbppm/internal/metrics"
	"pbppm/internal/ppm"
	"pbppm/internal/sim"
	"pbppm/internal/topn"
)

// ModelTop10 labels the server-initiated Top-10 baseline (§6 related
// work, Markatos & Chronaki).
const ModelTop10 = "Top-10"

// Baselines compares the paper's three models against the context-free
// Top-10 pusher on one train/test split — the contrast that motivates
// popularity-BASED (rather than popularity-only) prefetching.
type Baselines struct {
	Workload string
	Results  []metrics.Result // baseline first, then the models
}

// RunBaselines trains on all but the last day and evaluates the final
// day, like the ablations.
func RunBaselines(w *Workload) (*Baselines, error) {
	trainDays := w.Days() - 1
	if trainDays < 1 {
		return nil, fmt.Errorf("experiments: baselines need at least 2 days, have %d", w.Days())
	}
	train := w.DaySessions(0, trainDays)
	test := w.DaySessions(trainDays, trainDays+1)
	if len(train) == 0 || len(test) == 0 {
		return nil, fmt.Errorf("experiments: baselines: empty window")
	}
	rank := Ranking(train)

	common := sim.Options{Path: w.Path, Grades: rank, Sizes: w.Sizes}
	w.Hooks.apply(&common)
	runs := []sim.NamedRun{}
	add := func(name string, opt sim.Options) {
		runs = append(runs, sim.NamedRun{Name: name, Options: opt})
	}

	o := common
	o.Predictor = topn.New(topn.Config{})
	o.MaxPrefetchBytes = sim.DefaultMaxPrefetchBytes
	add(ModelTop10, o)

	o = common
	o.Predictor = ppm.New(ppm.Config{})
	o.MaxPrefetchBytes = sim.DefaultMaxPrefetchBytes
	add(ModelPPM, o)

	o = common
	o.Predictor = lrs.New(lrs.Config{})
	o.MaxPrefetchBytes = sim.DefaultMaxPrefetchBytes
	add(ModelLRS, o)

	o = common
	o.Predictor = core.New(rank, core.Config{
		RelProbCutoff:  0.01,
		DropSingletons: w.DropSingletons,
	})
	o.MaxPrefetchBytes = sim.PBMaxPrefetchBytes
	add(ModelPB, o)

	results := sim.Compare(train, test, runs)
	w.Hooks.ObserveModels(runs)
	return &Baselines{Workload: w.Name, Results: results}, nil
}

// Result returns the named model's metrics (ModelNone for the
// no-prefetch baseline).
func (b *Baselines) Result(model string) metrics.Result {
	for _, r := range b.Results {
		if r.Model == model {
			return r
		}
	}
	return metrics.Result{}
}

// String renders the comparison.
func (b *Baselines) String() string {
	base := b.Result(ModelNone)
	tb := &metrics.Table{
		Title:   fmt.Sprintf("Related-work baseline — %s: context-free Top-10 vs context models", b.Workload),
		Headers: []string{"model", "hit ratio", "latency red.", "traffic inc.", "nodes"},
	}
	for _, r := range b.Results {
		tb.AddRow(r.Model,
			metrics.Pct(r.HitRatio()),
			metrics.Pct(r.LatencyReductionVs(base)),
			metrics.Pct(r.TrafficIncrease()),
			strconv.Itoa(r.Nodes))
	}
	return tb.String()
}
