package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"pbppm/internal/core"
	"pbppm/internal/loadgen"
	"pbppm/internal/metrics"
	"pbppm/internal/server"
	"pbppm/internal/sim"
	"pbppm/internal/tracegen"
)

// Capacity is the serving-capacity artifact: a real hint-serving
// server booted from the workload's trained model and driven by an
// open-loop RPS sweep, reporting latency under load per step. The
// trace-replay experiments answer "how good are the hints"; this one
// answers "how fast can the server that computes them go".
type Capacity struct {
	Workload string
	Result   *loadgen.Result
}

// CapacityConfig sizes the sweep; the zero value selects a quick
// three-step staircase sized for a laptop-class machine.
type CapacityConfig struct {
	Start, Step, Target float64
	SlotDur             time.Duration
}

func (c CapacityConfig) withDefaults() CapacityConfig {
	if c.Start <= 0 {
		c.Start = 20
	}
	if c.Step <= 0 {
		c.Step = 20
	}
	if c.Target < c.Start {
		c.Target = 3 * c.Start
	}
	if c.SlotDur <= 0 {
		c.SlotDur = 2 * time.Second
	}
	return c
}

// RunCapacity trains PB-PPM on the workload's sessions, serves the
// workload's site from a real server.Server on a loopback socket, and
// sweeps an open-loop load generator through cfg's rate staircase.
// Needs a Workload built by FromProfile: the site graph is rebuilt
// from w.Profile so the generator's walkers navigate exactly the pages
// the server stores.
func RunCapacity(w *Workload, cfg CapacityConfig) (*Capacity, error) {
	if w.Profile.Pages == 0 {
		return nil, fmt.Errorf("experiments: capacity needs a profile-backed workload (FromProfile), %q has none", w.Name)
	}
	cfg = cfg.withDefaults()

	site, err := tracegen.BuildSite(w.Profile)
	if err != nil {
		return nil, fmt.Errorf("experiments: capacity: %w", err)
	}

	rank := Ranking(w.Sessions)
	model := core.New(rank, core.Config{
		RelProbCutoff:  0.01,
		DropSingletons: w.DropSingletons,
	})
	sim.Train(model, w.Sessions)

	srv := server.New(loadgen.StoreFromSite(site), server.Config{
		Predictor: model,
		Grades:    rank,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("experiments: capacity: %w", err)
	}
	web := &http.Server{Handler: srv}
	done := make(chan struct{})
	go func() { web.Serve(ln); close(done) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		web.Shutdown(ctx)
		<-done
	}()

	gen, err := loadgen.New(loadgen.Config{
		ServerURL: "http://" + ln.Addr().String(),
		Site:      site,
		Profile:   w.Profile,
		Clients:   50,
		Seed:      1,
		Timeout:   2 * time.Second,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: capacity: %w", err)
	}
	res, err := gen.Run(context.Background(), loadgen.Sweep(cfg.Start, cfg.Step, cfg.Target, cfg.SlotDur))
	if err != nil {
		return nil, fmt.Errorf("experiments: capacity: %w", err)
	}
	return &Capacity{Workload: w.Name, Result: res}, nil
}

// String renders the per-step staircase.
func (c *Capacity) String() string {
	tb := &metrics.Table{
		Title: fmt.Sprintf("Serving capacity — %s: open-loop RPS sweep against a live hint server", c.Workload),
		Headers: []string{"step", "target", "achieved", "ok", "err",
			"cache+pf", "p50", "p99", "lag p99"},
	}
	for _, s := range c.Result.Slots {
		tb.AddRow(s.Slot.Label,
			fmt.Sprintf("%.4g", s.Slot.RPS),
			fmt.Sprintf("%.4g", s.AchievedRPS()),
			strconv.FormatInt(s.Completed, 10),
			strconv.FormatInt(s.Errors(), 10),
			strconv.FormatInt(s.CacheHits+s.PrefetchHits, 10),
			s.Latency.Quantile(0.50).Round(10*time.Microsecond).String(),
			s.Latency.Quantile(0.99).Round(10*time.Microsecond).String(),
			s.Lag.Quantile(0.99).Round(10*time.Microsecond).String())
	}
	return tb.String()
}

// WriteCSV emits one row per sweep step.
func (c *Capacity) WriteCSV(w io.Writer) error {
	rows := [][]string{{"step", "target_rps", "achieved_rps", "completed",
		"errors", "cache_prefetch_hits", "p50_seconds", "p99_seconds", "lag_p99_seconds"}}
	for _, s := range c.Result.Slots {
		rows = append(rows, []string{
			s.Slot.Label,
			f(s.Slot.RPS),
			f(s.AchievedRPS()),
			strconv.FormatInt(s.Completed, 10),
			strconv.FormatInt(s.Errors(), 10),
			strconv.FormatInt(s.CacheHits+s.PrefetchHits, 10),
			f(s.Latency.Quantile(0.50).Seconds()),
			f(s.Latency.Quantile(0.99).Seconds()),
			f(s.Lag.Quantile(0.99).Seconds()),
		})
	}
	return writeAll(w, rows)
}

// Headline reports the machine-robust capacity numbers: the achieved
// rate and error rate across the sweep. Latency quantiles are excluded
// on purpose, like MaintenanceCost's wall times: they vary with the
// machine and would flap a regression gate.
func (c *Capacity) Headline() map[string]float64 {
	return map[string]float64{
		"achieved_rps": c.Result.AchievedRPS(),
		"error_rate":   c.Result.ErrorRate(),
	}
}
