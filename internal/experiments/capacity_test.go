package experiments

import (
	"strings"
	"testing"
	"time"

	"pbppm/internal/tracegen"
)

// capacityWorkload builds a tiny profile-backed workload so the test
// boots and sweeps in well under a second per slot.
func capacityWorkload(t *testing.T) *Workload {
	t.Helper()
	p := tracegen.NASA()
	p.Days = 2
	p.Pages = 60
	p.SessionsPerDay = 120
	p.Browsers = 40
	p.CrawlerPagesPerDay = 0
	w, err := FromProfile(p)
	if err != nil {
		t.Fatalf("FromProfile: %v", err)
	}
	return w
}

func TestRunCapacity(t *testing.T) {
	w := capacityWorkload(t)
	cap, err := RunCapacity(w, CapacityConfig{
		Start: 30, Step: 30, Target: 60, SlotDur: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunCapacity: %v", err)
	}
	if got := len(cap.Result.Slots); got != 2 {
		t.Fatalf("slots = %d, want 2", got)
	}
	for _, s := range cap.Result.Slots {
		if s.Dispatched == 0 {
			t.Errorf("slot %s dispatched nothing", s.Slot.Label)
		}
		if s.Completed+s.Errors() != s.Dispatched {
			t.Errorf("slot %s: completed %d + errors %d != dispatched %d",
				s.Slot.Label, s.Completed, s.Errors(), s.Dispatched)
		}
	}
	h := cap.Headline()
	if _, ok := h["achieved_rps"]; !ok {
		t.Error("headline missing achieved_rps")
	}
	if _, ok := h["error_rate"]; !ok {
		t.Error("headline missing error_rate")
	}
	if h["achieved_rps"] <= 0 {
		t.Errorf("achieved_rps = %v, want > 0 on loopback", h["achieved_rps"])
	}
	// Latency quantiles must stay out of the headline: they are
	// machine-dependent and would flap a cross-machine gate.
	for k := range h {
		if strings.Contains(k, "latency") || strings.Contains(k, "p99") {
			t.Errorf("headline carries machine-dependent metric %q", k)
		}
	}
	if s := cap.String(); !strings.Contains(s, "rps30") {
		t.Errorf("String() missing sweep step label:\n%s", s)
	}
	var buf strings.Builder
	if err := cap.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "step,target_rps,achieved_rps") {
		t.Errorf("csv header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

// TestRunCapacityNeedsProfile pins the FromProfile requirement: a raw
// trace workload has no site graph to serve.
func TestRunCapacityNeedsProfile(t *testing.T) {
	w := capacityWorkload(t)
	w.Profile = tracegen.Profile{}
	if _, err := RunCapacity(w, CapacityConfig{}); err == nil {
		t.Fatal("RunCapacity accepted a workload with no profile")
	}
}
