package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVWriter is implemented by every experiment artifact so results can
// be exported for external plotting tools.
type CSVWriter interface {
	WriteCSV(w io.Writer) error
}

var (
	_ CSVWriter = (*Figure2)(nil)
	_ CSVWriter = (*Figure3)(nil)
	_ CSVWriter = (*SpaceTable)(nil)
	_ CSVWriter = (*Figure4)(nil)
	_ CSVWriter = (*Figure5)(nil)
	_ CSVWriter = (*Ablation)(nil)
	_ CSVWriter = (*Baselines)(nil)
	_ CSVWriter = (*Maintenance)(nil)
	_ CSVWriter = (*MaintenanceCost)(nil)
	_ CSVWriter = (*Capacity)(nil)
)

func writeAll(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return fmt.Errorf("experiments: writing csv: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

// WriteCSV emits days,model,popular_share,utilization rows.
func (fig *Figure2) WriteCSV(w io.Writer) error {
	rows := [][]string{{"days", "model", "popular_share", "utilization"}}
	for _, r := range fig.Rows {
		for _, m := range fig.Models() {
			res := r.Results[m]
			rows = append(rows, []string{
				strconv.Itoa(r.TrainDays), m,
				f(res.PopularShareOfPrefetchHits()), f(res.Utilization),
			})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits days,model,hit_ratio,latency_reduction rows.
func (fig *Figure3) WriteCSV(w io.Writer) error {
	rows := [][]string{{"days", "model", "hit_ratio", "latency_reduction"}}
	for i, r := range fig.Rows {
		for _, m := range []string{ModelNone, ModelPPM, ModelLRS, ModelPB} {
			rows = append(rows, []string{
				strconv.Itoa(r.TrainDays), m,
				f(fig.HitRatio(i, m)), f(fig.LatencyReduction(i, m)),
			})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits days,model,nodes rows.
func (t *SpaceTable) WriteCSV(w io.Writer) error {
	rows := [][]string{{"days", "model", "nodes"}}
	for _, r := range t.Rows {
		for _, m := range []string{ModelPPM, ModelLRS, ModelPB} {
			rows = append(rows, []string{
				strconv.Itoa(r.TrainDays), m, strconv.Itoa(r.Results[m].Nodes),
			})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits days,model,nodes,traffic_increase rows.
func (fig *Figure4) WriteCSV(w io.Writer) error {
	rows := [][]string{{"days", "model", "nodes", "traffic_increase"}}
	for i, r := range fig.Rows {
		for _, m := range []string{ModelPPM, ModelLRS, ModelPB} {
			rows = append(rows, []string{
				strconv.Itoa(r.TrainDays), m,
				strconv.Itoa(r.Results[m].Nodes), f(fig.TrafficIncrease(i, m)),
			})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits clients,model,hit_ratio,traffic_increase rows.
func (fig *Figure5) WriteCSV(w io.Writer) error {
	rows := [][]string{{"clients", "model", "hit_ratio", "traffic_increase"}}
	for i, n := range fig.ClientCounts {
		for _, m := range fig.Models() {
			res := fig.Results[i][m]
			rows = append(rows, []string{
				strconv.Itoa(n), m, f(res.HitRatio()), f(res.TrafficIncrease()),
			})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits variant,hit_ratio,latency_reduction,traffic_increase,nodes rows.
func (a *Ablation) WriteCSV(w io.Writer) error {
	rows := [][]string{{"variant", "hit_ratio", "latency_reduction", "traffic_increase", "nodes"}}
	for _, r := range a.Rows {
		rows = append(rows, []string{
			r.Label, f(r.Result.HitRatio()), f(r.LatencyReduction),
			f(r.Result.TrafficIncrease()), strconv.Itoa(r.Result.Nodes),
		})
	}
	return writeAll(w, rows)
}

// WriteCSV emits model,hit_ratio,traffic_increase,nodes rows.
func (b *Baselines) WriteCSV(w io.Writer) error {
	rows := [][]string{{"model", "hit_ratio", "traffic_increase", "nodes"}}
	for _, r := range b.Results {
		rows = append(rows, []string{
			r.Model, f(r.HitRatio()), f(r.TrafficIncrease()), strconv.Itoa(r.Nodes),
		})
	}
	return writeAll(w, rows)
}

// WriteCSV emits per-day update costs and replay quality for the two
// maintenance paths.
func (m *MaintenanceCost) WriteCSV(w io.Writer) error {
	rows := [][]string{{"day", "delta_seconds", "rebuild_seconds", "delta_hit", "rebuild_hit", "delta_nodes", "rebuild_nodes"}}
	for i, d := range m.Days {
		rows = append(rows, []string{
			strconv.Itoa(d),
			f(m.DeltaSeconds[i]), f(m.RebuildSeconds[i]),
			f(m.Delta[i].HitRatio()), f(m.Rebuilt[i].HitRatio()),
			strconv.Itoa(m.Delta[i].Nodes), strconv.Itoa(m.Rebuilt[i].Nodes),
		})
	}
	return writeAll(w, rows)
}

// WriteCSV emits day,static_hit,daily_hit,static_nodes,daily_nodes rows.
func (m *Maintenance) WriteCSV(w io.Writer) error {
	rows := [][]string{{"day", "static_hit", "daily_hit", "static_nodes", "daily_nodes"}}
	for i, d := range m.Days {
		rows = append(rows, []string{
			strconv.Itoa(d),
			f(m.Static[i].HitRatio()), f(m.Daily[i].HitRatio()),
			strconv.Itoa(m.Static[i].Nodes), strconv.Itoa(m.Daily[i].Nodes),
		})
	}
	return writeAll(w, rows)
}
