package experiments

import (
	"bytes"
	"encoding/csv"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pbppm/internal/metrics"
)

var updateGolden = flag.Bool("update", false, "rewrite the CSV golden files")

// goldenResult builds a deterministic metrics.Result so the golden
// bytes never depend on a simulation run.
func goldenResult(model string, seed int64) metrics.Result {
	return metrics.Result{
		Model:               model,
		Requests:            100 * seed,
		CacheHits:           30 * seed,
		PrefetchHits:        20 * seed,
		PrefetchHitsPopular: 18 * seed,
		UsefulBytes:         1000 * seed,
		TransferredBytes:    1250 * seed,
		PrefetchedBytes:     400 * seed,
		PrefetchedDocs:      25 * seed,
		TotalLatency:        time.Duration(seed) * time.Second,
		Nodes:               int(500 * seed),
		Utilization:         0.5 + float64(seed)/100,
	}
}

func goldenDayResults(models []string) []DayResult {
	var rows []DayResult
	for day := 1; day <= 3; day++ {
		r := DayResult{TrainDays: day, Results: map[string]metrics.Result{}}
		for i, m := range models {
			r.Results[m] = goldenResult(m, int64(day+i))
		}
		rows = append(rows, r)
	}
	return rows
}

// goldenArtifacts returns every experiment artifact filled with
// deterministic values, keyed by golden-file stem.
func goldenArtifacts() map[string]CSVWriter {
	sweep := goldenDayResults([]string{ModelNone, ModelPPM, Model3PPM, ModelLRS, ModelPB})
	fig5Models := []string{ModelPPM, ModelLRS, ModelPB4KB, ModelPB10KB}
	fig5 := &Figure5{Workload: "golden", ClientCounts: []int{1, 8, 32}}
	for i := range fig5.ClientCounts {
		res := map[string]metrics.Result{}
		for j, m := range fig5Models {
			res[m] = goldenResult(m, int64(i+j+1))
		}
		fig5.Results = append(fig5.Results, res)
	}
	return map[string]CSVWriter{
		"figure2": &Figure2{Workload: "golden", Rows: sweep},
		"figure3": &Figure3{Workload: "golden", Rows: sweep},
		"table":   &SpaceTable{Workload: "golden", Rows: sweep},
		"figure4": &Figure4{Workload: "golden", Rows: sweep},
		"figure5": fig5,
		"ablation": &Ablation{Name: "golden", Workload: "golden", Rows: []AblationRow{
			{Label: "baseline", Result: goldenResult(ModelPB, 1), LatencyReduction: 0.20},
			{Label: "variant", Result: goldenResult(ModelPB, 2), LatencyReduction: 0.25},
		}},
		"baselines": &Baselines{Workload: "golden", Results: []metrics.Result{
			goldenResult(ModelNone, 1), goldenResult(ModelTop10, 2), goldenResult(ModelPB, 3),
		}},
		"maintenance": &Maintenance{Workload: "golden", Days: []int{1, 2},
			Static: []metrics.Result{goldenResult(ModelPB, 1), goldenResult(ModelPB, 2)},
			Daily:  []metrics.Result{goldenResult(ModelPB, 3), goldenResult(ModelPB, 4)},
		},
		"maintenance-cost": &MaintenanceCost{Workload: "golden", Days: []int{2, 3},
			DeltaSeconds:   []float64{0.0125, 0.015625},
			RebuildSeconds: []float64{0.25, 0.5},
			Delta:          []metrics.Result{goldenResult(ModelPB, 1), goldenResult(ModelPB, 2)},
			Rebuilt:        []metrics.Result{goldenResult(ModelPB, 3), goldenResult(ModelPB, 4)},
		},
	}
}

// wantShape pins each artifact's header row and data row count; a
// header rename or a lost row is a breaking change for downstream
// plotting scripts even when the golden file is regenerated.
var wantShape = map[string]struct {
	header []string
	rows   int
}{
	"figure2":     {[]string{"days", "model", "popular_share", "utilization"}, 9},
	"figure3":     {[]string{"days", "model", "hit_ratio", "latency_reduction"}, 12},
	"table":       {[]string{"days", "model", "nodes"}, 9},
	"figure4":     {[]string{"days", "model", "nodes", "traffic_increase"}, 9},
	"figure5":     {[]string{"clients", "model", "hit_ratio", "traffic_increase"}, 12},
	"ablation":    {[]string{"variant", "hit_ratio", "latency_reduction", "traffic_increase", "nodes"}, 2},
	"baselines":   {[]string{"model", "hit_ratio", "traffic_increase", "nodes"}, 3},
	"maintenance": {[]string{"day", "static_hit", "daily_hit", "static_nodes", "daily_nodes"}, 2},
	"maintenance-cost": {[]string{"day", "delta_seconds", "rebuild_seconds",
		"delta_hit", "rebuild_hit", "delta_nodes", "rebuild_nodes"}, 2},
}

// TestCSVGolden checks every artifact's CSV export byte-for-byte
// against testdata/csv/<name>.golden.csv and verifies the parsed
// header and row count. Regenerate with: go test ./internal/experiments
// -run TestCSVGolden -update
func TestCSVGolden(t *testing.T) {
	for name, art := range goldenArtifacts() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := art.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "csv", name+".golden.csv")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("CSV drifted from golden file %s (regenerate with -update if intended):\n got:\n%s\nwant:\n%s",
					path, buf.Bytes(), want)
			}

			rows, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
			if err != nil {
				t.Fatalf("artifact CSV does not re-parse: %v", err)
			}
			shape := wantShape[name]
			if len(rows) == 0 {
				t.Fatal("empty CSV")
			}
			if got := rows[0]; !equalStrings(got, shape.header) {
				t.Errorf("header = %v, want %v", got, shape.header)
			}
			if got := len(rows) - 1; got != shape.rows {
				t.Errorf("data rows = %d, want %d", got, shape.rows)
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
