package experiments

import (
	"testing"

	"pbppm/internal/core"
	"pbppm/internal/sim"
)

// TestDiagPBTraffic decomposes PB-PPM's traffic overhead: links on/off,
// size thresholds. Diagnostic only; always passes.
func TestDiagPBTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	w, err := NASAWorkload()
	if err != nil {
		t.Fatal(err)
	}
	train := w.DaySessions(0, 5)
	test := w.DaySessions(5, 6)
	rank := Ranking(train)
	for _, v := range []struct {
		label string
		cfg   core.Config
		size  int64
	}{
		{"links+30KB", core.Config{RelProbCutoff: 0.01}, 30 * 1024},
		{"nolinks+30KB", core.Config{RelProbCutoff: 0.01, DisableLinks: true}, 30 * 1024},
		{"links+10KB", core.Config{RelProbCutoff: 0.01}, 10 * 1024},
		{"nolinks+10KB", core.Config{RelProbCutoff: 0.01, DisableLinks: true}, 10 * 1024},
		{"links+30KB+thr0.4", core.Config{RelProbCutoff: 0.01, Threshold: 0.4}, 30 * 1024},
		{"links+30KB+rel5%", core.Config{RelProbCutoff: 0.05}, 30 * 1024},
		{"links+30KB+rel10%", core.Config{RelProbCutoff: 0.10}, 30 * 1024},
		{"links+30KB+singl", core.Config{RelProbCutoff: 0.01, DropSingletons: true}, 30 * 1024},
		{"links+30KB+r5+singl", core.Config{RelProbCutoff: 0.05, DropSingletons: true}, 30 * 1024},
	} {
		m := core.New(rank, v.cfg)
		sim.Train(m, train)
		res := sim.Run(test, sim.Options{
			Predictor: m, MaxPrefetchBytes: v.size,
			Path: w.Path, Grades: rank, Sizes: w.Sizes,
		})
		t.Logf("%-20s hit=%.3f traffic=%.3f prefetched=%d docs %.1fMB nodes=%d links=%d",
			v.label, res.HitRatio(), res.TrafficIncrease(),
			res.PrefetchedDocs, float64(res.PrefetchedBytes)/1e6, m.NodeCount(), m.LinkCount())
	}
}
