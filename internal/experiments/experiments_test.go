package experiments

import (
	"strings"
	"testing"

	"pbppm/internal/trace"
	"pbppm/internal/tracegen"
)

func TestWorkloadConstruction(t *testing.T) {
	w := testNASA(t)
	if w.Name != "nasa" {
		t.Errorf("Name = %q", w.Name)
	}
	if w.Days() < 3 {
		t.Errorf("Days = %d", w.Days())
	}
	if len(w.Sizes) == 0 {
		t.Error("empty size table")
	}
	if w.Path.ClientServer.Connect <= 0 {
		t.Error("latency path not fitted")
	}
	if !w.DropSingletons {
		t.Error("DropSingletons not defaulted")
	}
	// DaySessions partitions the sessions by start day.
	total := 0
	for d := 0; d < w.Days()+1; d++ {
		total += len(w.DaySessions(d, d+1))
	}
	if total != len(w.Sessions) {
		t.Errorf("day partition holds %d sessions, want %d", total, len(w.Sessions))
	}
	if got := len(w.DaySessions(0, w.Days()+1)); got != len(w.Sessions) {
		t.Errorf("full window = %d sessions, want %d", got, len(w.Sessions))
	}
}

func TestNewWorkloadErrors(t *testing.T) {
	if _, err := NewWorkload("empty", &trace.Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
	bad := tracegen.NASA()
	bad.Days = 0
	if _, err := FromProfile(bad); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestRankingFromSessions(t *testing.T) {
	w := testNASA(t)
	train := w.DaySessions(0, 2)
	rk := Ranking(train)
	if rk.Len() == 0 || rk.MaxCount() == 0 {
		t.Fatal("empty ranking")
	}
	// The most popular URL must be one of the top entry pages.
	top := rk.Top(1)[0]
	if rk.GradeOf(top) != 3 {
		t.Errorf("top URL grade = %v", rk.GradeOf(top))
	}
}

func TestSweepShapes(t *testing.T) {
	w := testNASA(t)
	rows, err := Sweep(w, SweepConfig{MaxTrainDays: 3, Include3PPM: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]

	base := last.Results[ModelNone]
	for _, m := range []string{ModelPPM, Model3PPM, ModelLRS, ModelPB} {
		r := last.Results[m]
		if r.Requests != base.Requests {
			t.Errorf("%s evaluated %d requests, baseline %d", m, r.Requests, base.Requests)
		}
		if r.HitRatio() <= base.HitRatio() {
			t.Errorf("%s hit %.3f not above baseline %.3f", m, r.HitRatio(), base.HitRatio())
		}
		if r.TrafficIncrease() < 0 {
			t.Errorf("%s negative traffic increase", m)
		}
		if r.Utilization < 0 || r.Utilization > 1 {
			t.Errorf("%s utilization %v out of range", m, r.Utilization)
		}
		if r.LatencyReductionVs(base) <= 0 {
			t.Errorf("%s latency reduction not positive", m)
		}
	}

	// Space ordering (the paper's headline): standard >> LRS > PB.
	ppmN := last.Results[ModelPPM].Nodes
	lrsN := last.Results[ModelLRS].Nodes
	pbN := last.Results[ModelPB].Nodes
	if !(ppmN > lrsN && lrsN > pbN) {
		t.Errorf("node ordering violated: PPM %d, LRS %d, PB %d", ppmN, lrsN, pbN)
	}
	if ppmN < 10*lrsN {
		t.Errorf("standard model not dramatically larger: PPM %d vs LRS %d", ppmN, lrsN)
	}

	// The LRS/PB gap widens with training days.
	first := rows[0]
	ratioFirst := float64(first.Results[ModelLRS].Nodes) / float64(first.Results[ModelPB].Nodes)
	ratioLast := float64(lrsN) / float64(pbN)
	if ratioLast <= ratioFirst {
		t.Errorf("LRS/PB ratio did not grow: %.2f -> %.2f", ratioFirst, ratioLast)
	}

	// PB-PPM stays competitive at this reduced test scale; its strict
	// hit-ratio win is asserted at paper scale in
	// TestFullScaleNASAShapes, where the popularity ranking has enough
	// data to separate the grades.
	if last.Results[ModelPB].HitRatio() < last.Results[ModelLRS].HitRatio()-0.05 {
		t.Errorf("PB hit %.3f far below LRS %.3f",
			last.Results[ModelPB].HitRatio(), last.Results[ModelLRS].HitRatio())
	}
}

func TestSweepErrors(t *testing.T) {
	w := testNASA(t)
	if _, err := Sweep(w, SweepConfig{MaxTrainDays: 99}); err == nil {
		t.Error("oversized sweep accepted")
	}
}

func TestFigure2Shapes(t *testing.T) {
	w := testNASA(t)
	f, err := RunFigure2(w, SweepConfig{MaxTrainDays: 3})
	if err != nil {
		t.Fatal(err)
	}
	last := f.Rows[len(f.Rows)-1]
	// Popular documents dominate prefetch hits for every model, and
	// PB-PPM has the highest share (Figure 2 left).
	for _, m := range f.Models() {
		if got := last.Results[m].PopularShareOfPrefetchHits(); got < 0.5 {
			t.Errorf("%s popular share = %.3f, want > 0.5", m, got)
		}
	}
	pbShare := last.Results[ModelPB].PopularShareOfPrefetchHits()
	for _, m := range []string{Model3PPM, ModelLRS} {
		if pbShare < last.Results[m].PopularShareOfPrefetchHits()-0.02 {
			t.Errorf("PB popular share %.3f below %s", pbShare, m)
		}
	}
	// PB-PPM's path utilization is the highest (Figure 2 right), and
	// the standard model's decays as days accumulate.
	pbU := last.Results[ModelPB].Utilization
	for _, m := range []string{Model3PPM, ModelLRS} {
		if pbU <= last.Results[m].Utilization {
			t.Errorf("PB utilization %.3f not above %s %.3f",
				pbU, m, last.Results[m].Utilization)
		}
	}
	if f.Rows[0].Results[Model3PPM].Utilization <= last.Results[Model3PPM].Utilization {
		t.Error("3-PPM utilization did not decay with days")
	}
	out := f.String()
	for _, want := range []string{"Figure 2 (left)", "Figure 2 (right)", Model3PPM, ModelPB} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestFigure3Accessors(t *testing.T) {
	w := testNASA(t)
	f, err := RunFigure3(w, SweepConfig{MaxTrainDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.HitRatio(0, ModelPB); got <= 0 || got >= 1 {
		t.Errorf("HitRatio = %v", got)
	}
	if got := f.LatencyReduction(0, ModelPB); got <= 0 {
		t.Errorf("LatencyReduction = %v", got)
	}
	out := f.String()
	if !strings.Contains(out, "hit ratio") || !strings.Contains(out, "latency reduction") {
		t.Errorf("rendering:\n%s", out)
	}
}

func TestSpaceTable(t *testing.T) {
	w := testNASA(t)
	tb, err := RunSpaceTable(w, SweepConfig{MaxTrainDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Nodes(0, ModelPPM) <= 0 || tb.Nodes(1, ModelPB) <= 0 {
		t.Error("zero node counts")
	}
	if tb.Nodes(1, ModelPPM) <= tb.Nodes(0, ModelPPM) {
		t.Error("standard model nodes did not grow with days")
	}
	out := tb.String()
	if !strings.Contains(out, "space size in number of nodes") || !strings.Contains(out, "2d") {
		t.Errorf("rendering:\n%s", out)
	}
}

func TestFigure4Shapes(t *testing.T) {
	w := testNASA(t)
	f, err := RunFigure4(w, SweepConfig{MaxTrainDays: 3})
	if err != nil {
		t.Fatal(err)
	}
	lastRow := len(f.Rows) - 1
	if f.NodeRatio(lastRow) <= 1 {
		t.Errorf("LRS/PB node ratio = %.2f, want > 1", f.NodeRatio(lastRow))
	}
	if f.NodeRatio(lastRow) <= f.NodeRatio(0) {
		t.Errorf("node ratio did not grow: %.2f -> %.2f", f.NodeRatio(0), f.NodeRatio(lastRow))
	}
	for _, m := range []string{ModelPPM, ModelLRS, ModelPB} {
		if got := f.TrafficIncrease(lastRow, m); got < 0 {
			t.Errorf("%s traffic = %v", m, got)
		}
	}
	out := f.String()
	if !strings.Contains(out, "number of nodes") || !strings.Contains(out, "traffic increase rate") {
		t.Errorf("rendering:\n%s", out)
	}
}

func TestFigure5Shapes(t *testing.T) {
	w := testNASA(t)
	f, err := RunFigure5(w, Figure5Config{ClientCounts: []int{1, 4, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.ClientCounts) != 3 {
		t.Fatalf("client counts = %v", f.ClientCounts)
	}
	for i := range f.ClientCounts {
		for _, m := range f.Models() {
			r := f.Results[i][m]
			if r.Requests == 0 {
				t.Fatalf("%s with %d clients saw no requests", m, f.ClientCounts[i])
			}
			if hr := r.HitRatio(); hr <= 0 || hr > 1 {
				t.Errorf("%s hit ratio %v", m, hr)
			}
		}
	}
	// Hit ratio grows with the client population for every model
	// (shared proxy cache effects).
	for _, m := range f.Models() {
		if f.Results[2][m].HitRatio() <= f.Results[0][m].HitRatio() {
			t.Errorf("%s hit ratio did not grow with clients: %.3f -> %.3f",
				m, f.Results[0][m].HitRatio(), f.Results[2][m].HitRatio())
		}
	}
	// The 4 KB threshold moves less prefetch traffic than 10 KB.
	if f.Results[2][ModelPB4KB].PrefetchedBytes >= f.Results[2][ModelPB10KB].PrefetchedBytes {
		t.Error("4KB threshold did not reduce prefetched bytes")
	}
	out := f.String()
	if !strings.Contains(out, "proxy hit ratio") || !strings.Contains(out, ModelPB4KB) {
		t.Errorf("rendering:\n%s", out)
	}
}

func TestFigure5Errors(t *testing.T) {
	w := testNASA(t)
	if _, err := RunFigure5(w, Figure5Config{TrainDays: 99}); err == nil {
		t.Error("bad train days accepted")
	}
}

func TestAblationThresholds(t *testing.T) {
	w := testNASA(t)
	a, err := RunAblationThresholds(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 prob x 3 size)", len(a.Rows))
	}
	byLabel := map[string]AblationRow{}
	for _, r := range a.Rows {
		byLabel[r.Label] = r
	}
	// At fixed probability, a larger size threshold prefetches at least
	// as many bytes (the paper's hit/traffic trade-off lever).
	lo := byLabel["p>=0.25 size<=4KB"].Result
	hi := byLabel["p>=0.25 size<=30KB"].Result
	if hi.PrefetchedBytes < lo.PrefetchedBytes {
		t.Error("larger size threshold moved fewer bytes")
	}
	if hi.HitRatio() < lo.HitRatio() {
		t.Error("larger size threshold lowered the hit ratio")
	}
	// At fixed size, a stricter probability threshold prefetches less.
	strict := byLabel["p>=0.40 size<=10KB"].Result
	loose := byLabel["p>=0.10 size<=10KB"].Result
	if strict.PrefetchedDocs > loose.PrefetchedDocs {
		t.Error("stricter probability pushed more documents")
	}
	if !strings.Contains(a.String(), "thresholds") {
		t.Error("rendering missing title")
	}
}

func TestAblationSpaceOpt(t *testing.T) {
	w := testNASA(t)
	a, err := RunAblationSpaceOpt(w)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblationRow{}
	for _, r := range a.Rows {
		byLabel[r.Label] = r
	}
	raw := byLabel["no optimization"].Result
	cut1 := byLabel["rel-prob 1% cut"].Result
	both := byLabel["1% cut + drop singletons"].Result
	if !(raw.Nodes >= cut1.Nodes && cut1.Nodes > both.Nodes) {
		t.Errorf("space optimizations did not shrink the tree: %d, %d, %d",
			raw.Nodes, cut1.Nodes, both.Nodes)
	}
	// The optimizations must not devastate the hit ratio.
	if both.HitRatio() < raw.HitRatio()-0.10 {
		t.Errorf("optimizations cost too much hit ratio: %.3f -> %.3f",
			raw.HitRatio(), both.HitRatio())
	}
}

func TestAblationHeights(t *testing.T) {
	w := testNASA(t)
	a, err := RunAblationHeights(w)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblationRow{}
	for _, r := range a.Rows {
		byLabel[r.Label] = r
	}
	paper := byLabel["paper 1/3/5/7"].Result
	minimal := byLabel["minimal 1/1/1/1"].Result
	tall := byLabel["flat 7/7/7/7"].Result
	if paper.HitRatio() <= minimal.HitRatio() {
		t.Errorf("graded heights %.3f not above minimal %.3f",
			paper.HitRatio(), minimal.HitRatio())
	}
	if paper.Nodes > tall.Nodes {
		t.Errorf("graded heights %d nodes above flat-7 %d", paper.Nodes, tall.Nodes)
	}
	if minimal.Nodes > paper.Nodes {
		t.Errorf("minimal heights %d nodes above graded %d", minimal.Nodes, paper.Nodes)
	}
}

func TestAblationLinks(t *testing.T) {
	w := testNASA(t)
	a, err := RunAblationLinks(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 2 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	with := a.Rows[0].Result
	without := a.Rows[1].Result
	if with.HitRatio() < without.HitRatio() {
		t.Errorf("links lowered the hit ratio: %.3f vs %.3f",
			with.HitRatio(), without.HitRatio())
	}
	if with.PrefetchedDocs <= without.PrefetchedDocs {
		t.Error("links did not add prefetch candidates")
	}
}

func TestUCBWorkloadShapes(t *testing.T) {
	w := testUCB(t)
	rows, err := Sweep(w, SweepConfig{MaxTrainDays: 3})
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	// On the irregular workload PB-PPM's hit ratio may trail the
	// standard model (the paper reports it ~2% lower), but its space
	// advantage must be dramatic: the cost-effectiveness claim.
	ppmN := last.Results[ModelPPM].Nodes
	pbN := last.Results[ModelPB].Nodes
	lrsN := last.Results[ModelLRS].Nodes
	if pbN >= lrsN || lrsN >= ppmN {
		t.Errorf("node ordering violated: PPM %d, LRS %d, PB %d", ppmN, lrsN, pbN)
	}
	gap := last.Results[ModelPPM].HitRatio() - last.Results[ModelPB].HitRatio()
	if gap > 0.10 {
		t.Errorf("PB hit ratio trails standard by %.3f, want within 0.10", gap)
	}
}

func TestBaselinesTop10(t *testing.T) {
	w := testNASA(t)
	b, err := RunBaselines(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Results) != 5 {
		t.Fatalf("results = %d, want 5 (none + 4 models)", len(b.Results))
	}
	top := b.Result(ModelTop10)
	pb := b.Result(ModelPB)
	base := b.Result(ModelNone)
	if top.Requests == 0 || top.Model != ModelTop10 {
		t.Fatalf("Top-10 result missing: %+v", top)
	}
	// Context-free pushing beats no prefetching at all...
	if top.HitRatio() <= base.HitRatio() {
		t.Errorf("Top-10 hit %.3f not above baseline %.3f", top.HitRatio(), base.HitRatio())
	}
	// ...but the context-aware popularity model beats it.
	if pb.HitRatio() <= top.HitRatio() {
		t.Errorf("PB hit %.3f not above Top-10 %.3f", pb.HitRatio(), top.HitRatio())
	}
	// Top-10's storage is the smallest of all models.
	for _, m := range []string{ModelPPM, ModelLRS, ModelPB} {
		if top.Nodes >= b.Result(m).Nodes {
			t.Errorf("Top-10 nodes %d not below %s %d", top.Nodes, m, b.Result(m).Nodes)
		}
	}
	if got := b.String(); !contains(got, "Top-10") || !contains(got, "PB-PPM") {
		t.Errorf("rendering:\n%s", got)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func TestAblationCachePolicy(t *testing.T) {
	w := testNASA(t)
	a, err := RunAblationCachePolicy(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 2 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	for _, r := range a.Rows {
		if r.Result.HitRatio() <= 0 {
			t.Errorf("%s: hit ratio %v", r.Label, r.Result.HitRatio())
		}
	}
	// With 1 MB caches and small docs both policies work; they must at
	// least be in the same regime (within 10 points).
	diff := a.Rows[0].Result.HitRatio() - a.Rows[1].Result.HitRatio()
	if diff > 0.10 || diff < -0.10 {
		t.Errorf("cache policies diverge implausibly: %.3f vs %.3f",
			a.Rows[0].Result.HitRatio(), a.Rows[1].Result.HitRatio())
	}
}

func TestMaintenanceExperiment(t *testing.T) {
	w := testNASA(t)
	m, err := RunMaintenance(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Days) < 2 {
		t.Fatalf("days evaluated = %d", len(m.Days))
	}
	// By the final day, the daily-rebuilt model has seen several days
	// of history and must beat (or match) the static day-0 model.
	last := len(m.Days) - 1
	if m.Daily[last].HitRatio() < m.Static[last].HitRatio()-0.01 {
		t.Errorf("daily rebuild %.3f below static %.3f on final day",
			m.Daily[last].HitRatio(), m.Static[last].HitRatio())
	}
	// The static model never grows; the daily one does.
	if m.Daily[last].Nodes <= m.Static[last].Nodes {
		t.Errorf("daily model nodes %d not above static %d",
			m.Daily[last].Nodes, m.Static[last].Nodes)
	}
	if !strings.Contains(m.String(), "daily rebuilds") {
		t.Error("rendering missing title")
	}
}

// TestCSVExports drives every artifact's CSV writer and sanity-checks
// header and row counts.
func TestCSVExports(t *testing.T) {
	w := testNASA(t)
	check := func(name string, cw CSVWriter, wantHeader string, minRows int) {
		t.Helper()
		var buf strings.Builder
		if err := cw.WriteCSV(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if !strings.HasPrefix(lines[0], wantHeader) {
			t.Errorf("%s header = %q", name, lines[0])
		}
		if len(lines)-1 < minRows {
			t.Errorf("%s rows = %d, want >= %d", name, len(lines)-1, minRows)
		}
	}

	f2, err := RunFigure2(w, SweepConfig{MaxTrainDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	check("figure2", f2, "days,model", 6)

	f3, err := RunFigure3(w, SweepConfig{MaxTrainDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	check("figure3", f3, "days,model", 8)

	st, err := RunSpaceTable(w, SweepConfig{MaxTrainDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	check("spacetable", st, "days,model", 6)

	f4, err := RunFigure4(w, SweepConfig{MaxTrainDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	check("figure4", f4, "days,model", 6)

	f5, err := RunFigure5(w, Figure5Config{ClientCounts: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	check("figure5", f5, "clients,model", 8)

	bl, err := RunBaselines(w)
	if err != nil {
		t.Fatal(err)
	}
	check("baselines", bl, "model,hit_ratio", 5)

	mn, err := RunMaintenance(w)
	if err != nil {
		t.Fatal(err)
	}
	check("maintenance", mn, "day,static_hit", 2)

	mc, err := RunMaintenanceCost(w)
	if err != nil {
		t.Fatal(err)
	}
	check("maintenance-cost", mc, "day,delta_seconds", 1)

	ab, err := RunAblationLinks(w)
	if err != nil {
		t.Fatal(err)
	}
	check("ablation", ab, "variant,hit_ratio", 2)
}

func TestAblationBlending(t *testing.T) {
	w := testNASA(t)
	a, err := RunAblationBlending(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 2 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	longest, blended := a.Rows[0].Result, a.Rows[1].Result
	if blended.HitRatio() <= 0 || longest.HitRatio() <= 0 {
		t.Error("degenerate results")
	}
	// Blending collects candidates from every order, so it pushes at
	// least as many documents as longest-match.
	if blended.PrefetchedDocs < longest.PrefetchedDocs {
		t.Errorf("blending pushed fewer docs: %d vs %d",
			blended.PrefetchedDocs, longest.PrefetchedDocs)
	}
}

// TestSweepDeterminism: the whole pipeline is seeded, so repeated runs
// must agree bit-for-bit.
func TestSweepDeterminism(t *testing.T) {
	w := testNASA(t)
	a, err := Sweep(w, SweepConfig{MaxTrainDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(w, SweepConfig{MaxTrainDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for m, ra := range a[i].Results {
			rb := b[i].Results[m]
			if ra.Hits() != rb.Hits() || ra.TransferredBytes != rb.TransferredBytes ||
				ra.Nodes != rb.Nodes || ra.TotalLatency != rb.TotalLatency {
				t.Errorf("day %d %s: runs disagree: %+v vs %+v", a[i].TrainDays, m, ra, rb)
			}
		}
	}
}

func TestAblationOnlineTraining(t *testing.T) {
	w := testNASA(t)
	a, err := RunAblationOnlineTraining(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 2 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	frozen, online := a.Rows[0].Result, a.Rows[1].Result
	// Online updates grow the tree during the test day.
	if online.Nodes <= frozen.Nodes {
		t.Errorf("online nodes %d not above frozen %d", online.Nodes, frozen.Nodes)
	}
	if online.HitRatio() < frozen.HitRatio()-0.02 {
		t.Errorf("online training hurt the hit ratio badly: %.3f vs %.3f",
			online.HitRatio(), frozen.HitRatio())
	}
}
