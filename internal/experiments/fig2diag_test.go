package experiments

import "testing"

func TestDiagFigure2(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	w, err := NASAWorkload()
	if err != nil {
		t.Fatal(err)
	}
	f, err := RunFigure2(w, SweepConfig{MaxTrainDays: 7, RelProbCutoff: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
}
