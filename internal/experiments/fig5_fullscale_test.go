package experiments

import "testing"

// TestFullScaleFigure5Shapes asserts the paper's §5 proxy trends at
// paper scale; guarded by -short.
func TestFullScaleFigure5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale proxy experiment skipped in -short mode")
	}
	w, err := NASAWorkload()
	if err != nil {
		t.Fatal(err)
	}
	f, err := RunFigure5(w, Figure5Config{})
	if err != nil {
		t.Fatal(err)
	}
	first, last := 0, len(f.ClientCounts)-1

	for _, m := range f.Models() {
		// Hit ratios rise substantially with the client population.
		lo, hi := f.Results[first][m].HitRatio(), f.Results[last][m].HitRatio()
		if hi < lo+0.15 {
			t.Errorf("%s hit ratio did not climb: %.3f -> %.3f", m, lo, hi)
		}
		// Traffic increments fall as clients share the proxy (curves
		// already near the floor may wobble within a point or two).
		tLo, tHi := f.Results[first][m].TrafficIncrease(), f.Results[last][m].TrafficIncrease()
		if tHi > tLo+0.02 {
			t.Errorf("%s traffic rose with clients: %.3f -> %.3f", m, tLo, tHi)
		}
	}
	// PB-4KB moves the least traffic (the paper's lowest curve).
	pb4 := f.Results[last][ModelPB4KB].TrafficIncrease()
	for _, m := range []string{ModelPPM, ModelLRS, ModelPB10KB} {
		if pb4 >= f.Results[last][m].TrafficIncrease() {
			t.Errorf("PB-4KB traffic %.3f not below %s", pb4, m)
		}
	}
	// PB-10KB's hit curve stays within a hair of the best curve while
	// moving less traffic than the 10KB-threshold context models at
	// scale (the paper's cost-effectiveness point).
	best := 0.0
	for _, m := range f.Models() {
		if hr := f.Results[last][m].HitRatio(); hr > best {
			best = hr
		}
	}
	if best-f.Results[last][ModelPB10KB].HitRatio() > 0.02 {
		t.Errorf("PB-10KB hit %.3f trails the best %.3f by more than 2 points",
			f.Results[last][ModelPB10KB].HitRatio(), best)
	}
	if f.Results[last][ModelPB10KB].TrafficIncrease() >= f.Results[last][ModelPPM].TrafficIncrease() {
		t.Errorf("PB-10KB traffic %.3f not below standard %.3f at 32 clients",
			f.Results[last][ModelPB10KB].TrafficIncrease(),
			f.Results[last][ModelPPM].TrafficIncrease())
	}
}
