package experiments

import "testing"

// TestDiagFigure5 runs the proxy experiment at paper scale and logs the
// two panels; guarded by -short.
func TestDiagFigure5(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	w, err := NASAWorkload()
	if err != nil {
		t.Fatal(err)
	}
	f, err := RunFigure5(w, Figure5Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
}
