package experiments

import (
	"fmt"
	"strconv"

	"pbppm/internal/metrics"
)

// Figure2 reports, per training-window size, the share of popular
// documents among prefetch hits (left figure) and the path-utilization
// rate of each model's tree (right figure), for 3-PPM, LRS-PPM, and
// PB-PPM, as in §3.3/§3.4.
type Figure2 struct {
	Workload string
	Rows     []DayResult
}

// RunFigure2 executes the experiment. The observation runs let every
// click reach the server (full surfing paths), matching the §3.3 setup
// where tree usage is studied independently of the piggyback transport.
func RunFigure2(w *Workload, cfg SweepConfig) (*Figure2, error) {
	cfg.Include3PPM = true
	cfg.PredictOnHitToo = true
	rows, err := Sweep(w, cfg)
	if err != nil {
		return nil, err
	}
	return &Figure2{Workload: w.Name, Rows: rows}, nil
}

// Models lists the models Figure 2 compares.
func (f *Figure2) Models() []string { return []string{Model3PPM, ModelLRS, ModelPB} }

// String renders both panels.
func (f *Figure2) String() string {
	left := &metrics.Table{
		Title:   fmt.Sprintf("Figure 2 (left) — %s: %% popular documents among prefetch hits", f.Workload),
		Headers: []string{"days", Model3PPM, ModelLRS, ModelPB},
	}
	right := &metrics.Table{
		Title:   fmt.Sprintf("Figure 2 (right) — %s: path utilization rate", f.Workload),
		Headers: []string{"days", Model3PPM, ModelLRS, ModelPB},
	}
	for _, r := range f.Rows {
		day := strconv.Itoa(r.TrainDays)
		left.AddRow(day,
			metrics.Pct(r.Results[Model3PPM].PopularShareOfPrefetchHits()),
			metrics.Pct(r.Results[ModelLRS].PopularShareOfPrefetchHits()),
			metrics.Pct(r.Results[ModelPB].PopularShareOfPrefetchHits()))
		right.AddRow(day,
			metrics.Pct(r.Results[Model3PPM].Utilization),
			metrics.Pct(r.Results[ModelLRS].Utilization),
			metrics.Pct(r.Results[ModelPB].Utilization))
	}
	return left.String() + "\n" + right.String()
}

// Figure3 reports hit ratios and latency reductions versus training
// days for the standard, LRS, and PB models (§4.2).
type Figure3 struct {
	Workload string
	Rows     []DayResult
}

// RunFigure3 executes the experiment.
func RunFigure3(w *Workload, cfg SweepConfig) (*Figure3, error) {
	rows, err := Sweep(w, cfg)
	if err != nil {
		return nil, err
	}
	return &Figure3{Workload: w.Name, Rows: rows}, nil
}

// HitRatio returns a model's hit ratio at a sweep row.
func (f *Figure3) HitRatio(row int, model string) float64 {
	return f.Rows[row].Results[model].HitRatio()
}

// LatencyReduction returns a model's latency reduction versus the
// no-prefetch baseline at a sweep row.
func (f *Figure3) LatencyReduction(row int, model string) float64 {
	r := f.Rows[row]
	return r.Results[model].LatencyReductionVs(r.Results[ModelNone])
}

// String renders both panels.
func (f *Figure3) String() string {
	hit := &metrics.Table{
		Title:   fmt.Sprintf("Figure 3 — %s: hit ratio", f.Workload),
		Headers: []string{"days", ModelPPM, ModelLRS, ModelPB, "no-prefetch"},
	}
	lat := &metrics.Table{
		Title:   fmt.Sprintf("Figure 3 — %s: latency reduction", f.Workload),
		Headers: []string{"days", ModelPPM, ModelLRS, ModelPB},
	}
	for i, r := range f.Rows {
		day := strconv.Itoa(r.TrainDays)
		hit.AddRow(day,
			metrics.Pct(f.HitRatio(i, ModelPPM)),
			metrics.Pct(f.HitRatio(i, ModelLRS)),
			metrics.Pct(f.HitRatio(i, ModelPB)),
			metrics.Pct(f.HitRatio(i, ModelNone)))
		lat.AddRow(day,
			metrics.Pct(f.LatencyReduction(i, ModelPPM)),
			metrics.Pct(f.LatencyReduction(i, ModelLRS)),
			metrics.Pct(f.LatencyReduction(i, ModelPB)))
	}
	return hit.String() + "\n" + lat.String()
}

// SpaceTable reports the node counts of the three models per training
// window: Table 1 (NASA) and Table 2 (UCB-CS).
type SpaceTable struct {
	Workload string
	Rows     []DayResult
}

// RunSpaceTable executes the experiment.
func RunSpaceTable(w *Workload, cfg SweepConfig) (*SpaceTable, error) {
	rows, err := Sweep(w, cfg)
	if err != nil {
		return nil, err
	}
	return &SpaceTable{Workload: w.Name, Rows: rows}, nil
}

// Nodes returns a model's node count at a sweep row.
func (t *SpaceTable) Nodes(row int, model string) int {
	return t.Rows[row].Results[model].Nodes
}

// String renders the table in the paper's layout (days across).
func (t *SpaceTable) String() string {
	tb := &metrics.Table{
		Title:   fmt.Sprintf("Table — %s: space size in number of nodes", t.Workload),
		Headers: []string{"model"},
	}
	for _, r := range t.Rows {
		tb.Headers = append(tb.Headers, fmt.Sprintf("%dd", r.TrainDays))
	}
	for _, model := range []string{ModelPPM, ModelLRS, ModelPB} {
		row := []string{model}
		for _, r := range t.Rows {
			row = append(row, strconv.Itoa(r.Results[model].Nodes))
		}
		tb.AddRow(row...)
	}
	return tb.String()
}

// Figure4 reports the space growth of LRS versus PB (left panels) and
// the traffic increments of the three models (right panels).
type Figure4 struct {
	Workload string
	Rows     []DayResult
}

// RunFigure4 executes the experiment.
func RunFigure4(w *Workload, cfg SweepConfig) (*Figure4, error) {
	rows, err := Sweep(w, cfg)
	if err != nil {
		return nil, err
	}
	return &Figure4{Workload: w.Name, Rows: rows}, nil
}

// NodeRatio returns LRS nodes over PB nodes at a sweep row (the
// paper's headline space-reduction factor).
func (f *Figure4) NodeRatio(row int) float64 {
	pb := f.Rows[row].Results[ModelPB].Nodes
	if pb == 0 {
		return 0
	}
	return float64(f.Rows[row].Results[ModelLRS].Nodes) / float64(pb)
}

// TrafficIncrease returns a model's traffic increment at a sweep row.
func (f *Figure4) TrafficIncrease(row int, model string) float64 {
	return f.Rows[row].Results[model].TrafficIncrease()
}

// String renders both panels.
func (f *Figure4) String() string {
	nodes := &metrics.Table{
		Title:   fmt.Sprintf("Figure 4 — %s: number of nodes", f.Workload),
		Headers: []string{"days", ModelLRS, ModelPB, "LRS/PB"},
	}
	traffic := &metrics.Table{
		Title:   fmt.Sprintf("Figure 4 — %s: traffic increase rate", f.Workload),
		Headers: []string{"days", ModelPPM, ModelLRS, ModelPB},
	}
	for i, r := range f.Rows {
		day := strconv.Itoa(r.TrainDays)
		nodes.AddRow(day,
			strconv.Itoa(r.Results[ModelLRS].Nodes),
			strconv.Itoa(r.Results[ModelPB].Nodes),
			fmt.Sprintf("%.1fx", f.NodeRatio(i)))
		traffic.AddRow(day,
			metrics.Pct(f.TrafficIncrease(i, ModelPPM)),
			metrics.Pct(f.TrafficIncrease(i, ModelLRS)),
			metrics.Pct(f.TrafficIncrease(i, ModelPB)))
	}
	return nodes.String() + "\n" + traffic.String()
}
