package experiments

import (
	"testing"
)

// TestFullScaleNASAShapes runs the paper-scale NASA workload sweep and
// logs the metric surfaces; guarded by -short for day-to-day test runs.
func TestFullScaleNASAShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sweep skipped in -short mode")
	}
	w, err := NASAWorkload()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("trace: %d records, %d sessions, %d days",
		len(w.Trace.Records), len(w.Sessions), w.Days())
	rows, err := Sweep(w, SweepConfig{MaxTrainDays: 7, Include3PPM: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, m := range []string{ModelNone, ModelPPM, Model3PPM, ModelLRS, ModelPB} {
			res := r.Results[m]
			t.Logf("day %d %-8s hit=%.3f traffic=%.3f nodes=%7d util=%.3f popShare=%.3f latRed=%.3f",
				r.TrainDays, m, res.HitRatio(), res.TrafficIncrease(), res.Nodes,
				res.Utilization, res.PopularShareOfPrefetchHits(),
				res.LatencyReductionVs(r.Results[ModelNone]))
		}
	}

	// Paper-scale shape assertions (Figures 3–4, Table 1, NASA).
	last := rows[len(rows)-1]
	pb, lrs, ppm := last.Results[ModelPB], last.Results[ModelLRS], last.Results[ModelPPM]
	base := last.Results[ModelNone]
	if pb.HitRatio() <= lrs.HitRatio() || pb.HitRatio() <= ppm.HitRatio() {
		t.Errorf("PB hit %.3f does not win (LRS %.3f, PPM %.3f)",
			pb.HitRatio(), lrs.HitRatio(), ppm.HitRatio())
	}
	if pb.LatencyReductionVs(base) <= lrs.LatencyReductionVs(base) ||
		pb.LatencyReductionVs(base) <= ppm.LatencyReductionVs(base) {
		t.Error("PB latency reduction does not win")
	}
	if ratio := float64(lrs.Nodes) / float64(pb.Nodes); ratio < 3 {
		t.Errorf("day-7 LRS/PB node ratio = %.2f, want >= 3 (paper: up to ~7x)", ratio)
	}
	if ppm.Nodes < 50*lrs.Nodes {
		t.Errorf("standard model nodes %d not dramatically above LRS %d", ppm.Nodes, lrs.Nodes)
	}
	ratio1 := float64(rows[0].Results[ModelLRS].Nodes) / float64(rows[0].Results[ModelPB].Nodes)
	ratio7 := float64(lrs.Nodes) / float64(pb.Nodes)
	if ratio7 <= ratio1 {
		t.Errorf("LRS/PB ratio did not grow with days: %.2f -> %.2f", ratio1, ratio7)
	}
}
