package experiments

import "testing"

// TestFullScaleUCBShapes runs the paper-scale UCB-CS-like workload
// sweep and logs the metric surfaces; guarded by -short.
func TestFullScaleUCBShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sweep skipped in -short mode")
	}
	w, err := UCBWorkload()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("trace: %d records, %d sessions, %d days",
		len(w.Trace.Records), len(w.Sessions), w.Days())
	rows, err := Sweep(w, SweepConfig{MaxTrainDays: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, m := range []string{ModelNone, ModelPPM, ModelLRS, ModelPB} {
			res := r.Results[m]
			t.Logf("day %d %-8s hit=%.3f traffic=%.3f nodes=%7d util=%.3f latRed=%.3f",
				r.TrainDays, m, res.HitRatio(), res.TrafficIncrease(), res.Nodes,
				res.Utilization, res.LatencyReductionVs(r.Results[ModelNone]))
		}
	}

	// Paper-scale shape assertions (Table 2, Figure 3/4 UCB panels):
	// the irregular workload keeps the standard model slightly ahead on
	// hit ratio (the paper reports PB about 2% below it) while PB's
	// space advantage is dramatic — the cost-effectiveness claim.
	last := rows[len(rows)-1]
	pb, lrs, ppm := last.Results[ModelPB], last.Results[ModelLRS], last.Results[ModelPPM]
	if gap := ppm.HitRatio() - pb.HitRatio(); gap < 0 || gap > 0.06 {
		t.Errorf("PPM-PB hit gap = %.3f, want small positive (paper ~0.02)", gap)
	}
	if ratio := float64(lrs.Nodes) / float64(pb.Nodes); ratio < 3 {
		t.Errorf("LRS/PB node ratio = %.2f, want >= 3 (paper: 10x to dozens)", ratio)
	}
	if ppm.Nodes < 50*lrs.Nodes {
		t.Errorf("standard nodes %d not dramatically above LRS %d", ppm.Nodes, lrs.Nodes)
	}
	// PB's traffic increment exceeds LRS's on this trace, as the paper
	// reports (14% vs 9%).
	if pb.TrafficIncrease() <= lrs.TrafficIncrease() {
		t.Errorf("PB traffic %.3f not above LRS %.3f (paper's UCB finding)",
			pb.TrafficIncrease(), lrs.TrafficIncrease())
	}
}
