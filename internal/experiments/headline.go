package experiments

// Headliner is implemented by every experiment artifact: Headline
// returns the few numbers that summarize the artifact — the values a
// benchmark regression gate should guard. Keys are stable identifiers
// (model suffixes, not display names) because baseline artifacts are
// compared across commits.
type Headliner interface {
	Headline() map[string]float64
}

var (
	_ Headliner = (*Figure2)(nil)
	_ Headliner = (*Figure3)(nil)
	_ Headliner = (*SpaceTable)(nil)
	_ Headliner = (*Figure4)(nil)
	_ Headliner = (*Figure5)(nil)
	_ Headliner = (*Ablation)(nil)
	_ Headliner = (*Baselines)(nil)
	_ Headliner = (*Maintenance)(nil)
	_ Headliner = (*MaintenanceCost)(nil)
	_ Headliner = (*Capacity)(nil)
)

// Headline reports the largest training window's popular share and
// path utilization for PB-PPM versus LRS (the §3.3/§3.4 claims).
func (f *Figure2) Headline() map[string]float64 {
	if len(f.Rows) == 0 {
		return nil
	}
	r := f.Rows[len(f.Rows)-1]
	return map[string]float64{
		"popular_share_pb":  r.Results[ModelPB].PopularShareOfPrefetchHits(),
		"popular_share_lrs": r.Results[ModelLRS].PopularShareOfPrefetchHits(),
		"utilization_pb":    r.Results[ModelPB].Utilization,
		"utilization_lrs":   r.Results[ModelLRS].Utilization,
	}
}

// Headline reports the largest training window's hit ratio and latency
// reduction for PB-PPM (the §4.2 claims).
func (f *Figure3) Headline() map[string]float64 {
	if len(f.Rows) == 0 {
		return nil
	}
	last := len(f.Rows) - 1
	return map[string]float64{
		"hit_ratio_pb":         f.HitRatio(last, ModelPB),
		"hit_ratio_none":       f.HitRatio(last, ModelNone),
		"latency_reduction_pb": f.LatencyReduction(last, ModelPB),
	}
}

// Headline reports the largest training window's node counts (Tables
// 1–2, the storage claim).
func (t *SpaceTable) Headline() map[string]float64 {
	if len(t.Rows) == 0 {
		return nil
	}
	r := t.Rows[len(t.Rows)-1]
	return map[string]float64{
		"nodes_ppm": float64(r.Results[ModelPPM].Nodes),
		"nodes_lrs": float64(r.Results[ModelLRS].Nodes),
		"nodes_pb":  float64(r.Results[ModelPB].Nodes),
	}
}

// Headline reports the space-reduction factor and PB-PPM's traffic
// increment at the largest training window (the Figure 4 claims).
func (f *Figure4) Headline() map[string]float64 {
	if len(f.Rows) == 0 {
		return nil
	}
	last := len(f.Rows) - 1
	return map[string]float64{
		"lrs_over_pb_nodes":   f.NodeRatio(last),
		"traffic_increase_pb": f.TrafficIncrease(last, ModelPB),
	}
}

// Headline reports the largest client population's hit ratio and
// traffic increment for PB-PPM-10KB (the §5 proxy claims).
func (f *Figure5) Headline() map[string]float64 {
	if len(f.Results) == 0 {
		return nil
	}
	r := f.Results[len(f.Results)-1]
	return map[string]float64{
		"hit_ratio_pb10":         r[ModelPB10KB].HitRatio(),
		"traffic_increase_pb10":  r[ModelPB10KB].TrafficIncrease(),
		"proxy_prefetch_hits_pb": float64(r[ModelPB10KB].ProxyPrefetchHits),
	}
}

// Headline reports the best hit ratio across the ablation's variants
// and the smallest model that achieved a hit.
func (a *Ablation) Headline() map[string]float64 {
	if len(a.Rows) == 0 {
		return nil
	}
	best := a.Rows[0]
	for _, r := range a.Rows[1:] {
		if r.Result.HitRatio() > best.Result.HitRatio() {
			best = r
		}
	}
	return map[string]float64{
		"best_hit_ratio": best.Result.HitRatio(),
		"best_nodes":     float64(best.Result.Nodes),
	}
}

// Headline reports PB-PPM against the context-free Top-10 pusher.
func (b *Baselines) Headline() map[string]float64 {
	base := b.Result(ModelNone)
	pb := b.Result(ModelPB)
	return map[string]float64{
		"hit_ratio_pb":         pb.HitRatio(),
		"hit_ratio_top10":      b.Result(ModelTop10).HitRatio(),
		"latency_reduction_pb": pb.LatencyReductionVs(base),
		"traffic_increase_pb":  pb.TrafficIncrease(),
	}
}

// Headline reports the final evaluation day's static-vs-daily hit
// ratios (the maintenance claim).
func (m *Maintenance) Headline() map[string]float64 {
	if len(m.Days) == 0 {
		return nil
	}
	last := len(m.Days) - 1
	return map[string]float64{
		"hit_ratio_static": m.Static[last].HitRatio(),
		"hit_ratio_daily":  m.Daily[last].HitRatio(),
		"nodes_daily":      float64(m.Daily[last].Nodes),
	}
}

// Headline reports the final evaluation day's replay quality for the
// two maintenance paths — the "equal headline metrics" half of the
// incremental-maintenance claim. The wall-time columns are excluded on
// purpose: update cost varies with the machine and would flap a
// regression gate.
func (m *MaintenanceCost) Headline() map[string]float64 {
	if len(m.Days) == 0 {
		return nil
	}
	last := len(m.Days) - 1
	return map[string]float64{
		"hit_ratio_delta":   m.Delta[last].HitRatio(),
		"hit_ratio_rebuild": m.Rebuilt[last].HitRatio(),
		"nodes_rebuild":     float64(m.Rebuilt[last].Nodes),
	}
}
