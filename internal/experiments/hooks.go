package experiments

import (
	"pbppm/internal/markov"
	"pbppm/internal/sim"
)

// Hooks carries optional run instrumentation that every experiment
// threads into its simulator runs: a phase clock for train/simulate
// wall time and event counts, a progress reporter for long replays,
// and a model-statistics observer. The zero value disables everything,
// so experiment code applies hooks unconditionally.
//
// Hooks live on the Workload because every experiment already receives
// one; cmd/reproduce installs a fresh phase clock and model observer
// per experiment so one figure's timings never bleed into another's
// record.
type Hooks struct {
	// Phases receives train/simulate timings and replay event counts
	// (see sim.PhaseClock); nil disables phase timing.
	Phases *sim.PhaseClock
	// OnProgress and ProgressEvery mirror sim.Options: every replay of
	// the experiment reports through the same callback.
	OnProgress    func(sim.Progress)
	ProgressEvery int
	// OnModel receives tree statistics for each trained tree-backed
	// model, keyed by its report name; predictors without a tree
	// (e.g. Top-N) are skipped.
	OnModel func(model string, st markov.TreeStats)
}

// apply copies the hooks into one run's simulator options.
func (h Hooks) apply(o *sim.Options) {
	o.Phases = h.Phases
	o.OnProgress = h.OnProgress
	o.ProgressEvery = h.ProgressEvery
}

// ObserveModel reports one trained predictor's tree statistics to
// OnModel, if both are present.
func (h Hooks) ObserveModel(name string, p markov.Predictor) {
	if h.OnModel == nil || p == nil {
		return
	}
	if st, ok := markov.StatsOf(p); ok {
		h.OnModel(name, st)
	}
}

// ObserveModels reports every named run's trained predictor, the
// post-Compare bookend in the sweep-style experiments.
func (h Hooks) ObserveModels(runs []sim.NamedRun) {
	if h.OnModel == nil {
		return
	}
	for _, r := range runs {
		h.ObserveModel(r.Name, r.Options.Predictor)
	}
}
