package experiments

import (
	"fmt"
	"strconv"
	"time"

	"pbppm/internal/core"
	"pbppm/internal/maintain"
	"pbppm/internal/markov"
	"pbppm/internal/metrics"
	"pbppm/internal/popularity"
	"pbppm/internal/session"
	"pbppm/internal/sim"
)

// Maintenance quantifies the paper's assumption that the server model
// is "dynamically maintained and updated": every evaluation day is
// replayed twice, once against a static PB-PPM model trained only on
// day 0 and once against a model rebuilt each morning from a sliding
// window of all history so far.
type Maintenance struct {
	Workload string
	Days     []int
	Static   []metrics.Result
	Daily    []metrics.Result
}

// RunMaintenance executes the experiment over every day after the
// first.
func RunMaintenance(w *Workload) (*Maintenance, error) {
	if w.Days() < 3 {
		return nil, fmt.Errorf("experiments: maintenance needs at least 3 days, have %d", w.Days())
	}

	factory := func(rank *popularity.Ranking) markov.Predictor {
		return core.New(rank, core.Config{RelProbCutoff: 0.01, DropSingletons: w.DropSingletons})
	}

	// Static model: trained once on day 0.
	day0 := w.DaySessions(0, 1)
	if len(day0) == 0 {
		return nil, fmt.Errorf("experiments: maintenance: empty first day")
	}
	staticModel := factory(Ranking(day0))
	w.Hooks.Phases.Time(sim.PhaseTrain, func() { sim.Train(staticModel, day0) })
	w.Hooks.ObserveModel("static", staticModel)
	staticRank := Ranking(day0)

	maint, err := maintain.New(maintain.Config{
		Factory: factory,
		Window:  time.Duration(w.Days()) * 24 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	for _, s := range day0 {
		maint.Observe(s)
	}

	out := &Maintenance{Workload: w.Name}
	for d := 1; d < w.Days(); d++ {
		test := w.DaySessions(d, d+1)
		if len(test) == 0 {
			continue
		}
		// Morning rebuild over all history before day d.
		var daily markov.Predictor
		w.Hooks.Phases.Time(sim.PhaseTrain, func() {
			daily = maint.Rebuild(w.Trace.Epoch.Add(time.Duration(d) * 24 * time.Hour))
		})
		w.Hooks.ObserveModel("daily-rebuild", daily)
		dailyRank := Ranking(w.DaySessions(0, d))

		common := sim.Options{Path: w.Path, Sizes: w.Sizes, MaxPrefetchBytes: sim.PBMaxPrefetchBytes}
		w.Hooks.apply(&common)

		so := common
		so.Predictor = staticModel
		so.Grades = staticRank
		sres := sim.Run(test, so)
		sres.Model = "static"

		do := common
		do.Predictor = daily
		do.Grades = dailyRank
		dres := sim.Run(test, do)
		dres.Model = "daily-rebuild"

		out.Days = append(out.Days, d)
		out.Static = append(out.Static, sres)
		out.Daily = append(out.Daily, dres)

		// The evaluated day joins the window for the next rebuild.
		for _, s := range test {
			maint.Observe(s)
		}
	}
	return out, nil
}

// String renders the comparison.
func (m *Maintenance) String() string {
	tb := &metrics.Table{
		Title:   fmt.Sprintf("Model maintenance — %s: static day-0 model vs daily rebuilds (PB-PPM)", m.Workload),
		Headers: []string{"eval day", "static hit", "daily hit", "static nodes", "daily nodes"},
	}
	for i, d := range m.Days {
		tb.AddRow(strconv.Itoa(d),
			metrics.Pct(m.Static[i].HitRatio()),
			metrics.Pct(m.Daily[i].HitRatio()),
			strconv.Itoa(m.Static[i].Nodes),
			strconv.Itoa(m.Daily[i].Nodes))
	}
	return tb.String()
}

// MaintenanceCost quantifies what incremental maintenance buys: each
// evaluation day, the sessions of the previous day are folded into the
// live PB-PPM model twice — once through the delta-merge path (train
// only the new sessions, fold the shard into a clone of the snapshot)
// and once through a full rebuild over the whole window — and the day
// is replayed against both models. The wall-time columns show the
// update-cost gap growing with the window while the headline metrics
// stay equal; the hit-ratio columns bound what the delta path's
// deferred re-ranking and space optimization cost in accuracy.
type MaintenanceCost struct {
	Workload string
	Days     []int
	// DeltaSeconds and RebuildSeconds are the measured update costs for
	// the two paths on each day. Wall times vary run to run, so they are
	// deliberately absent from Headline.
	DeltaSeconds   []float64
	RebuildSeconds []float64
	Delta          []metrics.Result
	Rebuilt        []metrics.Result
}

// RunMaintenanceCost executes the experiment over every day after the
// second (day 0 seeds the initial build, day 1 is the first delta).
func RunMaintenanceCost(w *Workload) (*MaintenanceCost, error) {
	if w.Days() < 3 {
		return nil, fmt.Errorf("experiments: maintenance-cost needs at least 3 days, have %d", w.Days())
	}

	factory := func(rank *popularity.Ranking) markov.Predictor {
		return core.New(rank, core.Config{RelProbCutoff: 0.01, DropSingletons: w.DropSingletons})
	}
	window := time.Duration(w.Days()) * 24 * time.Hour
	deltaM, err := maintain.New(maintain.Config{Factory: factory, Window: window})
	if err != nil {
		return nil, err
	}
	fullM, err := maintain.New(maintain.Config{Factory: factory, Window: window})
	if err != nil {
		return nil, err
	}

	day0 := w.DaySessions(0, 1)
	if len(day0) == 0 {
		return nil, fmt.Errorf("experiments: maintenance-cost: empty first day")
	}
	observeBoth := func(ss []session.Session) {
		for _, s := range ss {
			deltaM.Observe(s)
			fullM.Observe(s)
		}
	}
	observeBoth(day0)
	// Initial build on both: the delta path needs a base snapshot to
	// clone. Not a comparison row.
	w.Hooks.Phases.Time(sim.PhaseTrain, func() {
		deltaM.Rebuild(w.Trace.Epoch.Add(24 * time.Hour))
		fullM.Rebuild(w.Trace.Epoch.Add(24 * time.Hour))
	})
	observeBoth(w.DaySessions(1, 2))

	out := &MaintenanceCost{Workload: w.Name}
	for d := 2; d < w.Days(); d++ {
		test := w.DaySessions(d, d+1)
		if len(test) == 0 {
			continue
		}
		// Morning update: the delta merge absorbs only the sessions
		// staged since the last update; the rebuild retrains the window.
		now := w.Trace.Epoch.Add(time.Duration(d) * 24 * time.Hour)
		var (
			deltaModel, fullModel markov.Predictor
			deltaDur, fullDur     time.Duration
		)
		w.Hooks.Phases.Time(sim.PhaseTrain, func() {
			t0 := time.Now()
			deltaModel = deltaM.DeltaMerge(now)
			deltaDur = time.Since(t0)
			t0 = time.Now()
			fullModel = fullM.Rebuild(now)
			fullDur = time.Since(t0)
		})
		w.Hooks.ObserveModel("delta-merge", deltaModel)
		w.Hooks.ObserveModel("full-rebuild", fullModel)
		rank := Ranking(w.DaySessions(0, d))

		common := sim.Options{Path: w.Path, Sizes: w.Sizes, MaxPrefetchBytes: sim.PBMaxPrefetchBytes}
		w.Hooks.apply(&common)

		do := common
		do.Predictor = deltaModel
		do.Grades = rank
		dres := sim.Run(test, do)
		dres.Model = "delta-merge"

		fo := common
		fo.Predictor = fullModel
		fo.Grades = rank
		fres := sim.Run(test, fo)
		fres.Model = "full-rebuild"

		out.Days = append(out.Days, d)
		out.DeltaSeconds = append(out.DeltaSeconds, deltaDur.Seconds())
		out.RebuildSeconds = append(out.RebuildSeconds, fullDur.Seconds())
		out.Delta = append(out.Delta, dres)
		out.Rebuilt = append(out.Rebuilt, fres)

		// The evaluated day joins both windows for the next update.
		observeBoth(test)
	}
	return out, nil
}

// String renders the comparison.
func (m *MaintenanceCost) String() string {
	tb := &metrics.Table{
		Title:   fmt.Sprintf("Maintenance cost — %s: incremental delta merge vs full rebuild (PB-PPM)", m.Workload),
		Headers: []string{"eval day", "delta update", "rebuild", "speedup", "delta hit", "rebuild hit", "delta nodes", "rebuild nodes"},
	}
	for i, d := range m.Days {
		speedup := "-"
		if m.DeltaSeconds[i] > 0 {
			speedup = fmt.Sprintf("%.1fx", m.RebuildSeconds[i]/m.DeltaSeconds[i])
		}
		tb.AddRow(strconv.Itoa(d),
			fmt.Sprintf("%.1fms", m.DeltaSeconds[i]*1000),
			fmt.Sprintf("%.1fms", m.RebuildSeconds[i]*1000),
			speedup,
			metrics.Pct(m.Delta[i].HitRatio()),
			metrics.Pct(m.Rebuilt[i].HitRatio()),
			strconv.Itoa(m.Delta[i].Nodes),
			strconv.Itoa(m.Rebuilt[i].Nodes))
	}
	return tb.String()
}
