package experiments

import (
	"fmt"
	"strconv"
	"time"

	"pbppm/internal/core"
	"pbppm/internal/maintain"
	"pbppm/internal/markov"
	"pbppm/internal/metrics"
	"pbppm/internal/popularity"
	"pbppm/internal/sim"
)

// Maintenance quantifies the paper's assumption that the server model
// is "dynamically maintained and updated": every evaluation day is
// replayed twice, once against a static PB-PPM model trained only on
// day 0 and once against a model rebuilt each morning from a sliding
// window of all history so far.
type Maintenance struct {
	Workload string
	Days     []int
	Static   []metrics.Result
	Daily    []metrics.Result
}

// RunMaintenance executes the experiment over every day after the
// first.
func RunMaintenance(w *Workload) (*Maintenance, error) {
	if w.Days() < 3 {
		return nil, fmt.Errorf("experiments: maintenance needs at least 3 days, have %d", w.Days())
	}

	factory := func(rank *popularity.Ranking) markov.Predictor {
		return core.New(rank, core.Config{RelProbCutoff: 0.01, DropSingletons: w.DropSingletons})
	}

	// Static model: trained once on day 0.
	day0 := w.DaySessions(0, 1)
	if len(day0) == 0 {
		return nil, fmt.Errorf("experiments: maintenance: empty first day")
	}
	staticModel := factory(Ranking(day0))
	w.Hooks.Phases.Time(sim.PhaseTrain, func() { sim.Train(staticModel, day0) })
	w.Hooks.ObserveModel("static", staticModel)
	staticRank := Ranking(day0)

	maint, err := maintain.New(maintain.Config{
		Factory: factory,
		Window:  time.Duration(w.Days()) * 24 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	for _, s := range day0 {
		maint.Observe(s)
	}

	out := &Maintenance{Workload: w.Name}
	for d := 1; d < w.Days(); d++ {
		test := w.DaySessions(d, d+1)
		if len(test) == 0 {
			continue
		}
		// Morning rebuild over all history before day d.
		var daily markov.Predictor
		w.Hooks.Phases.Time(sim.PhaseTrain, func() {
			daily = maint.Rebuild(w.Trace.Epoch.Add(time.Duration(d) * 24 * time.Hour))
		})
		w.Hooks.ObserveModel("daily-rebuild", daily)
		dailyRank := Ranking(w.DaySessions(0, d))

		common := sim.Options{Path: w.Path, Sizes: w.Sizes, MaxPrefetchBytes: sim.PBMaxPrefetchBytes}
		w.Hooks.apply(&common)

		so := common
		so.Predictor = staticModel
		so.Grades = staticRank
		sres := sim.Run(test, so)
		sres.Model = "static"

		do := common
		do.Predictor = daily
		do.Grades = dailyRank
		dres := sim.Run(test, do)
		dres.Model = "daily-rebuild"

		out.Days = append(out.Days, d)
		out.Static = append(out.Static, sres)
		out.Daily = append(out.Daily, dres)

		// The evaluated day joins the window for the next rebuild.
		for _, s := range test {
			maint.Observe(s)
		}
	}
	return out, nil
}

// String renders the comparison.
func (m *Maintenance) String() string {
	tb := &metrics.Table{
		Title:   fmt.Sprintf("Model maintenance — %s: static day-0 model vs daily rebuilds (PB-PPM)", m.Workload),
		Headers: []string{"eval day", "static hit", "daily hit", "static nodes", "daily nodes"},
	}
	for i, d := range m.Days {
		tb.AddRow(strconv.Itoa(d),
			metrics.Pct(m.Static[i].HitRatio()),
			metrics.Pct(m.Daily[i].HitRatio()),
			strconv.Itoa(m.Static[i].Nodes),
			strconv.Itoa(m.Daily[i].Nodes))
	}
	return tb.String()
}
