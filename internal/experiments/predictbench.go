package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"testing"
	"time"

	"pbppm/internal/core"
	"pbppm/internal/markov"
	"pbppm/internal/metrics"
	"pbppm/internal/sim"
)

// predictBenchMaxContexts bounds how many distinct test contexts the
// serving-path benchmark cycles through; enough to defeat branch-
// predictor overfitting without making the run slow.
const predictBenchMaxContexts = 4096

// predictBenchContextTail mirrors the HTTP server's context-tail cap:
// the serving path never hands a model more than this many URLs.
const predictBenchContextTail = 16

// PredictBench measures the serving-path cost of the frozen
// popularity-based model: heap allocations and wall time per Predict
// call over real test-session contexts, plus the arena snapshot's
// storage footprint. The allocation figure is the artifact the arena
// design is gated on — it must be exactly zero.
type PredictBench struct {
	Workload    string
	Model       string
	Contexts    int     // distinct contexts cycled through
	AllocsPerOp float64 // average heap allocations per PredictInto call
	NsPerOp     float64 // average wall nanoseconds per PredictInto call
	ArenaBytes  int     // size of the frozen arena image
	Nodes       int     // model node count (the paper's space metric)
}

var (
	_ Headliner = (*PredictBench)(nil)
	_ CSVWriter = (*PredictBench)(nil)
)

// RunPredictBench trains the popularity-based model on all but the
// last day, freezes it into its arena snapshot, and drives the frozen
// serving path with the final day's contexts.
func RunPredictBench(w *Workload) (*PredictBench, error) {
	trainDays := w.Days() - 1
	if trainDays < 1 {
		return nil, fmt.Errorf("experiments: predict-bench needs at least 2 days, have %d", w.Days())
	}
	train := w.DaySessions(0, trainDays)
	test := w.DaySessions(trainDays, trainDays+1)
	if len(train) == 0 || len(test) == 0 {
		return nil, fmt.Errorf("experiments: predict-bench: empty window")
	}
	rank := Ranking(train)
	model := core.New(rank, core.Config{
		RelProbCutoff:  0.01,
		DropSingletons: w.DropSingletons,
	})
	sim.Train(model, train)
	frozen := model.Freeze().(markov.BufferedPredictor)

	// Every click of every test session is a serving-path call site:
	// the context is the session's prefix up to that click, tail-capped
	// the way the HTTP server caps it.
	var ctxs [][]string
	for _, s := range test {
		urls := s.URLs()
		for i := 1; i <= len(urls) && len(ctxs) < predictBenchMaxContexts; i++ {
			ctx := urls[:i]
			if len(ctx) > predictBenchContextTail {
				ctx = ctx[len(ctx)-predictBenchContextTail:]
			}
			ctxs = append(ctxs, ctx)
		}
	}
	if len(ctxs) == 0 {
		return nil, fmt.Errorf("experiments: predict-bench: no test contexts")
	}

	// One warm pass grows the scratch buffer to its steady-state
	// capacity, so the measured loop exercises the pure reuse path.
	var buf []markov.Prediction
	for _, ctx := range ctxs {
		buf = frozen.PredictInto(ctx, buf)
	}

	i := 0
	allocs := testing.AllocsPerRun(2*len(ctxs), func() {
		buf = frozen.PredictInto(ctxs[i%len(ctxs)], buf)
		i++
	})

	rounds := 1 + 100_000/len(ctxs)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, ctx := range ctxs {
			buf = frozen.PredictInto(ctx, buf)
		}
	}
	nsPerOp := float64(time.Since(start).Nanoseconds()) / float64(rounds*len(ctxs))

	pb := &PredictBench{
		Workload:    w.Name,
		Model:       model.Name(),
		Contexts:    len(ctxs),
		AllocsPerOp: allocs,
		NsPerOp:     nsPerOp,
		Nodes:       frozen.NodeCount(),
	}
	if ah, ok := frozen.(markov.ArenaHolder); ok {
		pb.ArenaBytes = ah.Arena().SizeBytes()
	}
	return pb, nil
}

// Headline exposes the regression-gated serving-path metrics. Wall
// time per op is deliberately excluded: it is machine-dependent and
// would make the BENCH comparison flaky, while allocations and the
// arena footprint are deterministic.
func (p *PredictBench) Headline() map[string]float64 {
	return map[string]float64{
		"predict_allocs_per_op": p.AllocsPerOp,
		"predict_arena_bytes":   float64(p.ArenaBytes),
	}
}

// String renders the benchmark summary.
func (p *PredictBench) String() string {
	tb := &metrics.Table{
		Title:   fmt.Sprintf("Serving-path benchmark — %s: frozen %s", p.Workload, p.Model),
		Headers: []string{"contexts", "allocs/op", "ns/op", "arena bytes", "nodes"},
	}
	tb.AddRow(strconv.Itoa(p.Contexts),
		strconv.FormatFloat(p.AllocsPerOp, 'f', -1, 64),
		strconv.FormatFloat(p.NsPerOp, 'f', 0, 64),
		strconv.Itoa(p.ArenaBytes),
		strconv.Itoa(p.Nodes))
	return tb.String()
}

// WriteCSV exports the benchmark row.
func (p *PredictBench) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "model", "contexts", "allocs_per_op", "ns_per_op", "arena_bytes", "nodes"}); err != nil {
		return err
	}
	if err := cw.Write([]string{
		p.Workload, p.Model, strconv.Itoa(p.Contexts),
		strconv.FormatFloat(p.AllocsPerOp, 'f', -1, 64),
		strconv.FormatFloat(p.NsPerOp, 'f', 0, 64),
		strconv.Itoa(p.ArenaBytes), strconv.Itoa(p.Nodes),
	}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
