package experiments

import (
	"reflect"
	"testing"

	"pbppm/internal/core"
	"pbppm/internal/markov"
	"pbppm/internal/sim"
)

// TestPredictBenchZeroAllocs runs the serving-path benchmark on the
// deterministic test workload and pins its two gated guarantees: the
// frozen path performs zero allocations per prediction, and the arena
// image is nonempty.
func TestPredictBenchZeroAllocs(t *testing.T) {
	pb, err := RunPredictBench(testNASA(t))
	if err != nil {
		t.Fatal(err)
	}
	if pb.AllocsPerOp != 0 {
		t.Errorf("frozen Predict path allocates %v per op, want 0", pb.AllocsPerOp)
	}
	if pb.ArenaBytes == 0 || pb.Nodes == 0 || pb.Contexts == 0 {
		t.Errorf("degenerate benchmark: %+v", pb)
	}
	h := pb.Headline()
	if _, ok := h["predict_allocs_per_op"]; !ok {
		t.Error("headline missing predict_allocs_per_op")
	}
}

// TestFrozenMatchesLiveOnReproduceTrace is the golden equivalence
// check on the reproduce trace itself (not just randomized trees): the
// frozen PB-PPM model must predict bit-identically to the live model
// over every context of the held-out test day.
func TestFrozenMatchesLiveOnReproduceTrace(t *testing.T) {
	w := testNASA(t)
	trainDays := w.Days() - 1
	train := w.DaySessions(0, trainDays)
	test := w.DaySessions(trainDays, trainDays+1)
	rank := Ranking(train)
	live := core.New(rank, core.Config{RelProbCutoff: 0.01, DropSingletons: w.DropSingletons})
	sim.Train(live, train)
	frozen := live.Freeze()

	var buf []markov.Prediction
	checked := 0
	for _, s := range test {
		urls := s.URLs()
		for i := 1; i <= len(urls); i++ {
			ctx := urls[:i]
			if len(ctx) > predictBenchContextTail {
				ctx = ctx[len(ctx)-predictBenchContextTail:]
			}
			want := live.Predict(ctx)
			got := frozen.Predict(ctx)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("ctx %v:\n frozen %+v\n live   %+v", ctx, got, want)
			}
			buf = markov.PredictInto(frozen, ctx, buf)
			if len(want) != 0 && !reflect.DeepEqual([]markov.Prediction(buf), want) {
				t.Fatalf("ctx %v: buffered frozen path diverged", ctx)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no test contexts checked")
	}
	if got, want := frozen.NodeCount(), live.NodeCount(); got != want {
		t.Fatalf("frozen NodeCount %d, live %d", got, want)
	}
}
