package experiments

import (
	"fmt"
	"sort"
	"strconv"

	"pbppm/internal/core"
	"pbppm/internal/lrs"
	"pbppm/internal/metrics"
	"pbppm/internal/ppm"
	"pbppm/internal/session"
	"pbppm/internal/sim"
)

// Proxy experiment model labels (§5).
const (
	ModelPB4KB  = "PB-PPM-4KB"
	ModelPB10KB = "PB-PPM-10KB"
)

// Figure5 reports total hit ratios and traffic increments between a
// Web server and a proxy as the number of clients behind the proxy
// grows (§5): standard PPM, LRS-PPM, and PB-PPM with 4 KB and 10 KB
// prefetch size thresholds.
type Figure5 struct {
	Workload     string
	ClientCounts []int
	// Results[i] maps model name to its metrics with ClientCounts[i]
	// clients behind the proxy.
	Results []map[string]metrics.Result
}

// Figure5Config controls the proxy experiment.
type Figure5Config struct {
	// ClientCounts lists the population sizes; zero selects the paper's
	// 1..32 progression.
	ClientCounts []int
	// TrainDays is the training-window size; zero selects all but the
	// final day.
	TrainDays int
	// RelProbCutoff as in SweepConfig.
	RelProbCutoff float64
}

// RunFigure5 executes the experiment. Clients are selected in
// descending test-day activity order so that every population size is
// deterministic and non-empty.
func RunFigure5(w *Workload, cfg Figure5Config) (*Figure5, error) {
	counts := cfg.ClientCounts
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8, 16, 24, 32}
	}
	trainDays := cfg.TrainDays
	if trainDays == 0 {
		trainDays = w.Days() - 1
	}
	if trainDays < 1 || trainDays >= w.Days() {
		return nil, fmt.Errorf("experiments: figure 5 needs 1 <= trainDays < days, have %d of %d",
			trainDays, w.Days())
	}
	relProb := cfg.RelProbCutoff
	if relProb == 0 {
		relProb = 0.01
	}

	train := w.DaySessions(0, trainDays)
	test := w.DaySessions(trainDays, trainDays+1)
	if len(train) == 0 || len(test) == 0 {
		return nil, fmt.Errorf("experiments: figure 5: empty train (%d) or test (%d) window",
			len(train), len(test))
	}
	rank := Ranking(train)

	// Rank test-day clients by activity. Only browser-class addresses
	// qualify: the experiment attaches end-user clients to the proxy,
	// so addresses the >100-requests/day heuristic classifies as
	// proxies or robots are excluded.
	classes := session.ClassifyClients(w.Trace, 0)
	activity := map[string]int{}
	for _, s := range test {
		if classes[s.Client] == session.Proxy {
			continue
		}
		activity[s.Client] += s.Len()
	}
	clients := make([]string, 0, len(activity))
	for c := range activity {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool {
		if activity[clients[i]] != activity[clients[j]] {
			return activity[clients[i]] > activity[clients[j]]
		}
		return clients[i] < clients[j]
	})

	// Train the four models once; prediction does not mutate counts, so
	// each model can serve every population size.
	mPPM := ppm.New(ppm.Config{})
	mLRS := lrs.New(lrs.Config{})
	mPB4 := core.New(rank, core.Config{RelProbCutoff: relProb, DropSingletons: w.DropSingletons})
	mPB10 := core.New(rank, core.Config{RelProbCutoff: relProb, DropSingletons: w.DropSingletons})
	w.Hooks.Phases.Time(sim.PhaseTrain, func() {
		sim.Train(mPPM, train)
		sim.Train(mLRS, train)
		sim.Train(mPB4, train)
		sim.Train(mPB10, train)
	})
	w.Hooks.ObserveModel(ModelPPM, mPPM)
	w.Hooks.ObserveModel(ModelLRS, mLRS)
	w.Hooks.ObserveModel(ModelPB4KB, mPB4)
	w.Hooks.ObserveModel(ModelPB10KB, mPB10)

	fig := &Figure5{Workload: w.Name}
	for _, n := range counts {
		if n > len(clients) {
			n = len(clients)
		}
		selected := map[string]bool{}
		for _, c := range clients[:n] {
			selected[c] = true
		}
		var subset []session.Session
		for _, s := range test {
			if selected[s.Client] {
				subset = append(subset, s)
			}
		}

		common := sim.Options{
			Path:     w.Path,
			Grades:   rank,
			Sizes:    w.Sizes,
			UseProxy: true,
		}
		w.Hooks.apply(&common)
		row := map[string]metrics.Result{}
		for _, mc := range []struct {
			name  string
			opt   sim.Options
			bytes int64
		}{
			{ModelPPM, common, sim.DefaultMaxPrefetchBytes},
			{ModelLRS, common, sim.DefaultMaxPrefetchBytes},
			{ModelPB4KB, common, 4 * 1024},
			{ModelPB10KB, common, 10 * 1024},
		} {
			opt := mc.opt
			opt.MaxPrefetchBytes = mc.bytes
			switch mc.name {
			case ModelPPM:
				opt.Predictor = mPPM
			case ModelLRS:
				opt.Predictor = mLRS
			case ModelPB4KB:
				opt.Predictor = mPB4
			case ModelPB10KB:
				opt.Predictor = mPB10
			}
			res := sim.Run(subset, opt)
			res.Model = mc.name
			row[mc.name] = res
		}
		base := common
		base.Predictor = nil
		row[ModelNone] = sim.Run(subset, base)

		fig.ClientCounts = append(fig.ClientCounts, n)
		fig.Results = append(fig.Results, row)
	}
	return fig, nil
}

// Models lists the models Figure 5 compares.
func (f *Figure5) Models() []string {
	return []string{ModelPPM, ModelLRS, ModelPB4KB, ModelPB10KB}
}

// String renders both panels.
func (f *Figure5) String() string {
	hit := &metrics.Table{
		Title:   fmt.Sprintf("Figure 5 (left) — %s: proxy hit ratio vs clients", f.Workload),
		Headers: append([]string{"clients"}, f.Models()...),
	}
	traffic := &metrics.Table{
		Title:   fmt.Sprintf("Figure 5 (right) — %s: traffic increase vs clients", f.Workload),
		Headers: append([]string{"clients"}, f.Models()...),
	}
	for i, n := range f.ClientCounts {
		hrow := []string{strconv.Itoa(n)}
		trow := []string{strconv.Itoa(n)}
		for _, m := range f.Models() {
			hrow = append(hrow, metrics.Pct(f.Results[i][m].HitRatio()))
			trow = append(trow, metrics.Pct(f.Results[i][m].TrafficIncrease()))
		}
		hit.AddRow(hrow...)
		traffic.AddRow(trow...)
	}

	// §5: "the total document hits come from three sources" — break the
	// largest population's hits down per model.
	last := len(f.ClientCounts) - 1
	src := &metrics.Table{
		Title: fmt.Sprintf("Figure 5 (hit sources at %d clients) — %s",
			f.ClientCounts[last], f.Workload),
		Headers: []string{"model", "browser", "proxy cache", "proxy prefetch"},
	}
	for _, m := range f.Models() {
		r := f.Results[last][m]
		src.AddRow(m,
			strconv.FormatInt(r.BrowserHits, 10),
			strconv.FormatInt(r.ProxyCacheHits, 10),
			strconv.FormatInt(r.ProxyPrefetchHits, 10))
	}
	return hit.String() + "\n" + traffic.String() + "\n" + src.String()
}
