package experiments

import (
	"sync"
	"testing"

	"pbppm/internal/tracegen"
)

// Workloads are deterministic, so tests share one instance per profile.
// Tests must not mutate them.
var (
	nasaOnce sync.Once
	nasaW    *Workload
	nasaErr  error
	ucbOnce  sync.Once
	ucbW     *Workload
	ucbErr   error
)

// testNASA is a scaled-down NASA-like workload for fast tests.
func testNASA(t *testing.T) *Workload {
	t.Helper()
	nasaOnce.Do(func() {
		p := tracegen.NASA()
		p.Days = 4
		p.SessionsPerDay = 500
		p.Pages = 300
		p.Browsers = 200
		p.CrawlerPagesPerDay = 150
		nasaW, nasaErr = FromProfile(p)
	})
	if nasaErr != nil {
		t.Fatal(nasaErr)
	}
	return nasaW
}

func testUCB(t *testing.T) *Workload {
	t.Helper()
	ucbOnce.Do(func() {
		p := tracegen.UCBCS()
		p.Days = 4
		p.SessionsPerDay = 900
		p.Pages = 600
		p.Browsers = 250
		p.CrawlerPagesPerDay = 150
		ucbW, ucbErr = FromProfile(p)
	})
	if ucbErr != nil {
		t.Fatal(ucbErr)
	}
	return ucbW
}

func TestSmokeSweep(t *testing.T) {
	w := testNASA(t)
	rows, err := Sweep(w, SweepConfig{MaxTrainDays: 3, Include3PPM: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, m := range []string{ModelNone, ModelPPM, Model3PPM, ModelLRS, ModelPB} {
			res := r.Results[m]
			t.Logf("day %d %-8s hit=%.3f traffic=%.3f nodes=%7d util=%.3f popShare=%.3f latRed=%.3f",
				r.TrainDays, m, res.HitRatio(), res.TrafficIncrease(), res.Nodes,
				res.Utilization, res.PopularShareOfPrefetchHits(),
				res.LatencyReductionVs(r.Results[ModelNone]))
		}
	}
}
