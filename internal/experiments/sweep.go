package experiments

import (
	"fmt"

	"pbppm/internal/core"
	"pbppm/internal/lrs"
	"pbppm/internal/metrics"
	"pbppm/internal/ppm"
	"pbppm/internal/sim"
)

// Model names used across the experiment tables.
const (
	ModelNone = "none"
	ModelPPM  = "PPM"   // standard model, unbounded height (§4.1)
	Model3PPM = "3-PPM" // standard model, height 3 (§3.3 observations)
	ModelLRS  = "LRS-PPM"
	ModelPB   = "PB-PPM"
)

// DayResult holds every model's metrics for one training-window size.
type DayResult struct {
	// TrainDays is the number of day files used to build the models;
	// the models are evaluated on the following day.
	TrainDays int
	// Results maps model name (including ModelNone for the no-prefetch
	// baseline) to its metrics.
	Results map[string]metrics.Result
}

// SweepConfig controls the day sweep shared by Figures 2–4 and Tables
// 1–2.
type SweepConfig struct {
	// MaxTrainDays sweeps k = 1..MaxTrainDays training days; each k is
	// evaluated on day k (zero-based day index k). Zero selects
	// workload days - 1.
	MaxTrainDays int
	// RelProbCutoff is PB-PPM's first space optimization (default 1%).
	RelProbCutoff float64
	// Include3PPM adds the height-3 standard model used by Figure 2.
	Include3PPM bool
	// PredictOnHitToo makes every click visible to the server (clients
	// revalidate cached copies). Figure 2's observation experiments use
	// it so the models' trees see full surfing paths.
	PredictOnHitToo bool
}

func (c SweepConfig) relProb() float64 {
	if c.RelProbCutoff == 0 {
		return 0.01
	}
	return c.RelProbCutoff
}

// Sweep runs the client–server comparison for every training-window
// size: standard PPM (unbounded), optionally 3-PPM, LRS-PPM, PB-PPM
// (with the paper's thresholds: 10 KB prefetch size cap for the first
// three, 30 KB for PB-PPM), plus the no-prefetch baseline.
func Sweep(w *Workload, cfg SweepConfig) ([]DayResult, error) {
	maxDays := cfg.MaxTrainDays
	if maxDays == 0 {
		maxDays = w.Days() - 1
	}
	if maxDays < 1 || maxDays >= w.Days() {
		return nil, fmt.Errorf("experiments: sweep over %d train days needs a trace of at least %d days, have %d",
			maxDays, maxDays+1, w.Days())
	}

	var out []DayResult
	for k := 1; k <= maxDays; k++ {
		train := w.DaySessions(0, k)
		test := w.DaySessions(k, k+1)
		if len(train) == 0 || len(test) == 0 {
			return nil, fmt.Errorf("experiments: day %d: empty train (%d) or test (%d) window",
				k, len(train), len(test))
		}
		rank := Ranking(train)

		common := sim.Options{
			Path:            w.Path,
			Grades:          rank,
			Sizes:           w.Sizes,
			PredictOnHitToo: cfg.PredictOnHitToo,
		}
		w.Hooks.apply(&common)
		runs := []sim.NamedRun{}
		addRun := func(name string, opt sim.Options) {
			runs = append(runs, sim.NamedRun{Name: name, Options: opt})
		}

		o := common
		o.Predictor = ppm.New(ppm.Config{})
		o.MaxPrefetchBytes = sim.DefaultMaxPrefetchBytes
		addRun(ModelPPM, o)

		if cfg.Include3PPM {
			o = common
			o.Predictor = ppm.New(ppm.Config{Height: 3})
			o.MaxPrefetchBytes = sim.DefaultMaxPrefetchBytes
			addRun(Model3PPM, o)
		}

		o = common
		o.Predictor = lrs.New(lrs.Config{})
		o.MaxPrefetchBytes = sim.DefaultMaxPrefetchBytes
		addRun(ModelLRS, o)

		o = common
		o.Predictor = core.New(rank, core.Config{
			RelProbCutoff:  cfg.relProb(),
			DropSingletons: w.DropSingletons,
		})
		o.MaxPrefetchBytes = sim.PBMaxPrefetchBytes
		addRun(ModelPB, o)

		results := sim.Compare(train, test, runs)
		w.Hooks.ObserveModels(runs)
		dr := DayResult{TrainDays: k, Results: make(map[string]metrics.Result, len(results))}
		for _, r := range results {
			dr.Results[r.Model] = r
		}
		out = append(out, dr)
	}
	return out, nil
}
