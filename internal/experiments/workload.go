// Package experiments regenerates every table and figure of the
// paper's evaluation (§3.3–§5) on the synthetic NASA-like and
// UCB-CS-like workloads, plus ablations of PB-PPM's design choices.
// Each experiment renders its results as a plain-text table whose rows
// mirror the paper's artifact.
package experiments

import (
	"fmt"

	"pbppm/internal/latency"
	"pbppm/internal/popularity"
	"pbppm/internal/session"
	"pbppm/internal/sim"
	"pbppm/internal/trace"
	"pbppm/internal/tracegen"
)

// Workload is a fully prepared trace: sessionized, size-tabled, and
// with a fitted latency path.
type Workload struct {
	Name     string
	Trace    *trace.Trace
	Sessions []session.Session
	Sizes    map[string]int64
	Path     latency.Path
	// Profile is the generator profile the trace came from, kept so
	// experiments that need the site graph itself (capacity serves it
	// over HTTP) can rebuild it. Zero for workloads built from raw
	// traces via NewWorkload.
	Profile tracegen.Profile
	// DropSingletons selects PB-PPM's second space optimization, which
	// the paper enables for the UCB-CS trace.
	DropSingletons bool
	// Hooks is optional run instrumentation (phase timing, progress,
	// model statistics) every experiment threads into its simulator
	// runs; the zero value disables it.
	Hooks Hooks
}

// NewWorkload sessionizes a trace and fits the latency path.
func NewWorkload(name string, tr *trace.Trace) (*Workload, error) {
	if len(tr.Records) == 0 {
		return nil, fmt.Errorf("experiments: workload %q: empty trace", name)
	}
	sessions := session.Sessionize(tr, session.Config{})
	if len(sessions) == 0 {
		return nil, fmt.Errorf("experiments: workload %q: no sessions", name)
	}
	sizes := sim.BuildSizeTable(sessions)
	path, err := sim.FitPathFromTrace(sizes, 42)
	if err != nil {
		return nil, fmt.Errorf("experiments: workload %q: %w", name, err)
	}
	return &Workload{
		Name:     name,
		Trace:    tr,
		Sessions: sessions,
		Sizes:    sizes,
		Path:     path,
	}, nil
}

// FromProfile generates the profile's trace and wraps it.
func FromProfile(p tracegen.Profile) (*Workload, error) {
	tr, err := tracegen.Generate(p)
	if err != nil {
		return nil, err
	}
	w, err := NewWorkload(p.Name, tr)
	if err != nil {
		return nil, err
	}
	// Both synthetic workloads enable PB-PPM's absolute-count space
	// optimization (§3.4's second alternative, which the paper applies
	// to "some traces"): at our generation scale the singleton share is
	// higher than in the month-long real logs, and the ablation
	// experiment isolates the optimization's effect separately.
	w.DropSingletons = true
	w.Profile = p
	return w, nil
}

// NASAWorkload builds the workload standing in for the NASA trace.
func NASAWorkload() (*Workload, error) { return FromProfile(tracegen.NASA()) }

// UCBWorkload builds the workload standing in for the UCB-CS trace.
func UCBWorkload() (*Workload, error) { return FromProfile(tracegen.UCBCS()) }

// Days returns the number of day windows covered by the trace.
func (w *Workload) Days() int { return w.Trace.Days() }

// DaySessions returns the sessions that start within day window
// [from, to).
func (w *Workload) DaySessions(from, to int) []session.Session {
	var out []session.Session
	for _, s := range w.Sessions {
		d := int(s.Start().Sub(w.Trace.Epoch) / (24 * 3600 * 1e9))
		if d >= from && d < to {
			out = append(out, s)
		}
	}
	return out
}

// Ranking builds the popularity ranking the server would hold after
// observing the given training sessions (clicked pages only, which is
// what the prediction models store).
func Ranking(train []session.Session) *popularity.Ranking {
	rk := popularity.NewRanking()
	for _, s := range train {
		for _, v := range s.Views {
			rk.Observe(v.URL, 1)
		}
	}
	return rk
}
