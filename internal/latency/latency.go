// Package latency models per-request access latency the way the paper
// does (§4.2, after Jin & Bestavros): the connection time and the data
// transfer time are obtained by applying a least-squares fit to
// measured latencies versus document sizes, giving
//
//	latency(size) = Connect + TransferRate * size.
//
// The simulator uses one fitted model per network hop (client↔server,
// client↔proxy, proxy↔server) to convert hits and misses into latency
// reductions.
package latency

import (
	"fmt"
	"math"
	"time"
)

// Model is a fitted linear latency model.
type Model struct {
	// Connect is the size-independent component (connection setup).
	Connect time.Duration
	// TransferRate is the per-byte transfer component.
	TransferRate time.Duration
}

// Estimate returns the modeled latency for fetching size bytes.
// Negative results of an ill-conditioned fit are clamped to zero.
func (m Model) Estimate(size int64) time.Duration {
	d := m.Connect + time.Duration(size)*m.TransferRate
	if d < 0 {
		return 0
	}
	return d
}

// Sample is one measured (document size, access latency) observation.
type Sample struct {
	Size    int64
	Latency time.Duration
}

// Fit computes the least-squares line latency = a + b*size over the
// samples, exactly as the paper's methodology prescribes. It needs at
// least two samples with distinct sizes; otherwise it returns an error.
// A fitted negative slope or intercept is clamped to zero — latencies
// cannot shrink with size in the modeled regime.
func Fit(samples []Sample) (Model, error) {
	if len(samples) < 2 {
		return Model{}, fmt.Errorf("latency: need at least 2 samples, have %d", len(samples))
	}
	var n, sumX, sumY, sumXX, sumXY float64
	for _, s := range samples {
		x := float64(s.Size)
		y := float64(s.Latency)
		n++
		sumX += x
		sumY += y
		sumXX += x * x
		sumXY += x * y
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return Model{}, fmt.Errorf("latency: all %d samples share one size; slope undefined", len(samples))
	}
	slope := (n*sumXY - sumX*sumY) / den
	intercept := (sumY - slope*sumX) / n
	if slope < 0 {
		slope = 0
	}
	if intercept < 0 {
		intercept = 0
	}
	return Model{
		Connect:      time.Duration(intercept),
		TransferRate: time.Duration(slope),
	}, nil
}

// R2 returns the coefficient of determination of the model over the
// samples (1 = perfect fit). It returns 0 for degenerate inputs.
func (m Model) R2(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var mean float64
	for _, s := range samples {
		mean += float64(s.Latency)
	}
	mean /= float64(len(samples))
	var ssTot, ssRes float64
	for _, s := range samples {
		y := float64(s.Latency)
		pred := float64(m.Estimate(s.Size))
		ssRes += (y - pred) * (y - pred)
		ssTot += (y - mean) * (y - mean)
	}
	if ssTot == 0 {
		return 0
	}
	r2 := 1 - ssRes/ssTot
	if math.IsNaN(r2) || math.IsInf(r2, 0) {
		return 0
	}
	return r2
}

// Path bundles the latency models of the simulated topology. Browser
// cache hits are local and cost nothing; the remaining hops are fitted
// models.
type Path struct {
	// ClientServer is the latency of a direct client↔server fetch.
	ClientServer Model
	// ClientProxy is the latency of a client↔proxy fetch (proxy hit).
	ClientProxy Model
	// ProxyServer is the proxy↔server leg paid on a proxy miss on top
	// of ClientProxy.
	ProxyServer Model
}

// DefaultPath returns latency models representative of the paper's
// mid-1990s measurement regime: a wide-area server link (~several
// hundred ms connect, tens of KB/s), and a near proxy (an order of
// magnitude faster on both components).
func DefaultPath() Path {
	return Path{
		ClientServer: Model{Connect: 300 * time.Millisecond, TransferRate: 30 * time.Microsecond}, // ≈33 KB/s
		ClientProxy:  Model{Connect: 30 * time.Millisecond, TransferRate: 3 * time.Microsecond},   // ≈330 KB/s
		ProxyServer:  Model{Connect: 250 * time.Millisecond, TransferRate: 25 * time.Microsecond}, // ≈40 KB/s
	}
}

// DirectFetch returns the modeled latency of fetching size bytes from
// the server without a proxy.
func (p Path) DirectFetch(size int64) time.Duration {
	return p.ClientServer.Estimate(size)
}

// ProxyHit returns the latency of a fetch served from the proxy cache.
func (p Path) ProxyHit(size int64) time.Duration {
	return p.ClientProxy.Estimate(size)
}

// ProxyMiss returns the latency of a fetch that misses the proxy and is
// relayed to the server: both legs are paid.
func (p Path) ProxyMiss(size int64) time.Duration {
	return p.ClientProxy.Estimate(size) + p.ProxyServer.Estimate(size)
}
