package latency

import (
	"math/rand"
	"testing"
	"time"
)

func TestFitRecoversExactLine(t *testing.T) {
	truth := Model{Connect: 200 * time.Millisecond, TransferRate: 10 * time.Microsecond}
	var samples []Sample
	for _, size := range []int64{100, 1000, 5000, 20000, 100000} {
		samples = append(samples, Sample{Size: size, Latency: truth.Estimate(size)})
	}
	m, err := Fit(samples)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if diff := m.Connect - truth.Connect; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("Connect = %v, want %v", m.Connect, truth.Connect)
	}
	if diff := m.TransferRate - truth.TransferRate; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("TransferRate = %v, want %v", m.TransferRate, truth.TransferRate)
	}
	if r2 := m.R2(samples); r2 < 0.999 {
		t.Errorf("R2 = %v on noiseless data", r2)
	}
}

func TestFitWithNoise(t *testing.T) {
	truth := Model{Connect: 300 * time.Millisecond, TransferRate: 30 * time.Microsecond}
	rng := rand.New(rand.NewSource(9))
	var samples []Sample
	for i := 0; i < 500; i++ {
		size := int64(rng.Intn(100_000) + 200)
		noise := time.Duration(rng.NormFloat64() * float64(20*time.Millisecond))
		samples = append(samples, Sample{Size: size, Latency: truth.Estimate(size) + noise})
	}
	m, err := Fit(samples)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.Connect < 250*time.Millisecond || m.Connect > 350*time.Millisecond {
		t.Errorf("Connect = %v, want ≈300ms", m.Connect)
	}
	if m.TransferRate < 28*time.Microsecond || m.TransferRate > 32*time.Microsecond {
		t.Errorf("TransferRate = %v, want ≈30µs/B", m.TransferRate)
	}
	if r2 := m.R2(samples); r2 < 0.9 {
		t.Errorf("R2 = %v, want > 0.9", r2)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("Fit(nil) succeeded")
	}
	if _, err := Fit([]Sample{{Size: 10, Latency: time.Second}}); err == nil {
		t.Error("Fit(1 sample) succeeded")
	}
	same := []Sample{
		{Size: 10, Latency: time.Second},
		{Size: 10, Latency: 2 * time.Second},
	}
	if _, err := Fit(same); err == nil {
		t.Error("Fit(identical sizes) succeeded")
	}
}

func TestFitClampsNegativeComponents(t *testing.T) {
	// Decreasing latency with size would fit a negative slope; clamp.
	samples := []Sample{
		{Size: 100, Latency: 2 * time.Second},
		{Size: 10000, Latency: time.Second},
	}
	m, err := Fit(samples)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.TransferRate < 0 {
		t.Errorf("TransferRate = %v, want clamped >= 0", m.TransferRate)
	}
}

func TestEstimateClampsNegative(t *testing.T) {
	m := Model{Connect: 0, TransferRate: 0}
	if got := m.Estimate(1000); got != 0 {
		t.Errorf("zero model Estimate = %v", got)
	}
}

func TestEstimateMonotoneInSize(t *testing.T) {
	m := DefaultPath().ClientServer
	prev := time.Duration(-1)
	for size := int64(0); size <= 1<<20; size += 1 << 16 {
		got := m.Estimate(size)
		if got < prev {
			t.Fatalf("Estimate not monotone at size %d", size)
		}
		prev = got
	}
}

func TestPathOrdering(t *testing.T) {
	p := DefaultPath()
	for _, size := range []int64{0, 1024, 100 * 1024} {
		hit := p.ProxyHit(size)
		miss := p.ProxyMiss(size)
		direct := p.DirectFetch(size)
		if hit >= miss {
			t.Errorf("size %d: proxy hit %v not cheaper than miss %v", size, hit, miss)
		}
		if hit >= direct {
			t.Errorf("size %d: proxy hit %v not cheaper than direct %v", size, hit, direct)
		}
	}
}

func TestR2Degenerate(t *testing.T) {
	m := Model{Connect: time.Second}
	if got := m.R2(nil); got != 0 {
		t.Errorf("R2(nil) = %v", got)
	}
	same := []Sample{{Size: 1, Latency: time.Second}, {Size: 2, Latency: time.Second}}
	if got := m.R2(same); got != 0 {
		t.Errorf("R2(constant latencies) = %v", got)
	}
}

func TestSyntheticSamples(t *testing.T) {
	truth := Model{Connect: 100 * time.Millisecond, TransferRate: 5 * time.Microsecond}
	sizes := map[string]int64{}
	for i := 0; i < 200; i++ {
		sizes[string(rune('a'+i%26))+string(rune('0'+i/26))] = int64(500 + i*311)
	}
	a := SyntheticSamples(truth, sizes, 7)
	b := SyntheticSamples(truth, sizes, 7)
	if len(a) != len(sizes) {
		t.Fatalf("samples = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SyntheticSamples not deterministic in seed")
		}
	}
	c := SyntheticSamples(truth, sizes, 8)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds gave identical noise")
	}
	// The fit over noisy samples recovers the truth.
	m, err := Fit(a)
	if err != nil {
		t.Fatal(err)
	}
	if m.Connect < truth.Connect/2 || m.Connect > truth.Connect*2 {
		t.Errorf("fitted connect %v far from %v", m.Connect, truth.Connect)
	}
	// Latencies are never negative despite the noise floor clamp.
	for _, s := range a {
		if s.Latency < 0 {
			t.Fatal("negative synthetic latency")
		}
	}
	if got := SyntheticSamples(truth, nil, 1); len(got) != 0 {
		t.Errorf("empty sizes gave %d samples", len(got))
	}
}

func TestDefaultPathValues(t *testing.T) {
	p := DefaultPath()
	if p.ClientServer.Connect <= 0 || p.ClientProxy.Connect <= 0 || p.ProxyServer.Connect <= 0 {
		t.Error("default path has zero components")
	}
	// Direct fetch ≈ proxy miss within a factor; both dominated by the
	// server leg.
	if p.ProxyMiss(10_000) < p.DirectFetch(10_000)/2 {
		t.Error("proxy miss implausibly cheap")
	}
}
