package latency

import (
	"math/rand"
	"sort"
	"time"
)

// SyntheticSamples produces "measured" (size, latency) observations for
// the documents in sizes: ground-truth latencies from truth plus
// multiplicative noise, one sample per document. The paper fits its
// model to latencies measured in traces; our synthetic substrate plays
// the measurement role, and Fit recovers the line just as the paper's
// methodology does. Results are deterministic in seed and independent
// of map iteration order.
func SyntheticSamples(truth Model, sizes map[string]int64, seed int64) []Sample {
	urls := make([]string, 0, len(sizes))
	for u := range sizes {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	rng := rand.New(rand.NewSource(seed))
	samples := make([]Sample, 0, len(urls))
	for _, u := range urls {
		size := sizes[u]
		base := truth.Estimate(size)
		noise := 1 + 0.15*rng.NormFloat64()
		if noise < 0.3 {
			noise = 0.3
		}
		samples = append(samples, Sample{
			Size:    size,
			Latency: time.Duration(float64(base) * noise),
		})
	}
	return samples
}
