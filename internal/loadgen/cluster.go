package loadgen

// Cluster self-hosting: loadbench's cluster mode boots an N-shard
// prefetch cluster in-process, on a loopback listener, with the same
// warm-trained model a prefetchd boot would build — so a capacity run
// can compare shard counts (or price a mid-run rebalance) without
// orchestrating N server processes. The generator then targets the
// harness URL like any external server.

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"pbppm/internal/cluster"
	"pbppm/internal/core"
	"pbppm/internal/markov"
	"pbppm/internal/obs"
	"pbppm/internal/popularity"
	"pbppm/internal/server"
	"pbppm/internal/session"
	"pbppm/internal/tracegen"
)

// ClusterConfig parameterizes a self-hosted cluster harness.
type ClusterConfig struct {
	// Shards is the initial shard count; required.
	Shards int
	// Site is the synthetic site to serve and train on; required. The
	// generator driving the harness must be built from the same site.
	Site *tracegen.Site
	// Profile generated Site and shapes the warm-training history.
	Profile tracegen.Profile
	// WarmDays sizes the warm-training history; zero selects 2 days.
	WarmDays int
	// MaxHints overrides the per-response hint cap when positive.
	MaxHints int
	// Obs registers the router metrics (per-shard request counters,
	// rebalance costs); nil keeps them process-internal.
	Obs *obs.Registry
	// Logf receives boot progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// ClusterHarness is a running in-process cluster behind a loopback
// HTTP listener.
type ClusterHarness struct {
	// Cluster is the live cluster, exposed so the driver can rebalance
	// mid-run and read per-shard accounting.
	Cluster *cluster.Cluster
	// URL is the router's base URL for generator traffic.
	URL string

	srv *http.Server
	ln  net.Listener
}

// warmModel trains the same warm-start model a prefetchd boot builds:
// a generated history over the site, popularity-ranked, trained into a
// PB-PPM tree, space-optimized, and frozen into its immutable arena
// image with usage recording detached — the published-snapshot form
// the cluster replicates to every shard.
func warmModel(site *tracegen.Site, p tracegen.Profile, warmDays int) (markov.Predictor, *popularity.Ranking, error) {
	warm := p
	warm.Days = warmDays
	tr, err := tracegen.GenerateOn(site, warm)
	if err != nil {
		return nil, nil, fmt.Errorf("generating warm history: %w", err)
	}
	sessions := session.Sessionize(tr, session.Config{})

	rank := popularity.NewRanking()
	for _, s := range sessions {
		for _, v := range s.Views {
			rank.Observe(v.URL, 1)
		}
	}
	model := core.New(rank, core.Config{RelProbCutoff: 0.01, DropSingletons: true})
	seqs := make([][]string, len(sessions))
	for i, s := range sessions {
		seqs[i] = s.URLs()
	}
	markov.TrainAllParallel(model, seqs)
	model.Optimize()

	var published markov.Predictor = model
	if fz, ok := published.(markov.Freezer); ok {
		published = fz.Freeze()
	}
	if ur, ok := published.(markov.UsageRecorder); ok {
		ur.SetUsageRecording(false)
	}
	return published, rank, nil
}

// BootCluster builds the warm model, boots an N-shard cluster serving
// the site, and binds it to a loopback listener. Close shuts it down.
func BootCluster(cfg ClusterConfig) (*ClusterHarness, error) {
	if cfg.Site == nil {
		return nil, fmt.Errorf("loadgen: cluster harness needs a site")
	}
	warmDays := cfg.WarmDays
	if warmDays <= 0 {
		warmDays = 2
	}
	start := time.Now()
	model, rank, err := warmModel(cfg.Site, cfg.Profile, warmDays)
	if err != nil {
		return nil, err
	}
	if cfg.Logf != nil {
		cfg.Logf("cluster warm model: %d nodes in %v", model.NodeCount(), time.Since(start).Round(time.Millisecond))
	}

	c, err := cluster.New(cluster.Config{
		Shards: cfg.Shards,
		Store:  StoreFromSite(cfg.Site),
		ShardConfig: server.Config{
			Predictor: model,
			Grades:    rank,
			MaxHints:  cfg.MaxHints,
		},
		Obs: cfg.Obs,
	})
	if err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("loadgen: binding cluster listener: %w", err)
	}
	h := &ClusterHarness{
		Cluster: c,
		URL:     "http://" + ln.Addr().String(),
		srv:     &http.Server{Handler: c},
		ln:      ln,
	}
	go h.srv.Serve(ln)
	if cfg.Logf != nil {
		cfg.Logf("cluster: %d shards serving %d pages at %s", cfg.Shards, len(cfg.Site.Pages), h.URL)
	}
	return h, nil
}

// Close stops the harness listener.
func (h *ClusterHarness) Close() error {
	return h.srv.Close()
}
