package loadgen

import (
	"context"
	"testing"
	"time"

	"pbppm/internal/obs"
)

// The harness boots a warm-trained cluster the generator can drive
// like any external server: traffic completes cleanly, lands spread
// across shards, and a mid-life rebalance reports its cost.
func TestBootClusterServesGeneratorTraffic(t *testing.T) {
	site, p := testSite(t)
	reg := obs.NewRegistry()
	h, err := BootCluster(ClusterConfig{
		Shards:  2,
		Site:    site,
		Profile: p,
		Obs:     reg,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("BootCluster: %v", err)
	}
	defer h.Close()

	g, err := New(Config{
		ServerURL: h.URL,
		Site:      site,
		Profile:   p,
		Clients:   10,
		Seed:      7,
		Timeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := g.Run(context.Background(), Scenario{Name: "cluster-smoke", Slots: []Slot{
		{Label: "steady", RPS: 150, Duration: 300 * time.Millisecond},
	}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ErrorRate() != 0 {
		t.Fatalf("cluster produced error rate %v", res.ErrorRate())
	}

	st := h.Cluster.Stats()
	if st.DemandRequests == 0 {
		t.Fatal("cluster served no demand requests")
	}
	if st.HintsIssued == 0 {
		t.Fatal("warm model issued no hints through the cluster")
	}
	var spread int
	for _, id := range h.Cluster.ShardIDs() {
		if h.Cluster.Shard(id).Stats().DemandRequests > 0 {
			spread++
		}
	}
	if spread != 2 {
		t.Errorf("traffic reached %d of 2 shards", spread)
	}

	// A join while sessions are open reports the remap cost.
	if _, rep := h.Cluster.AddShard(); rep.Kind != "join" || rep.ShardsAfter != 3 {
		t.Errorf("rebalance report = %+v", rep)
	}
}
