package loadgen

import (
	"context"
	"fmt"
	"time"
)

// Gate is the pass/fail criterion FindMax applies to each steady
// trial: the latency quantile must stay under MaxLatency and the error
// rate under MaxErrorRate. MaxLag guards the generator itself — when
// schedule lag at the same quantile exceeds it, the generator could
// not hold the arrival schedule, so the trial says nothing about the
// server and the search stops as generator-limited.
type Gate struct {
	// Quantile selects which latency/lag quantile the gate reads; zero
	// selects 0.99.
	Quantile float64
	// MaxLatency is the SLO bound on the on-schedule latency quantile;
	// zero selects 250ms.
	MaxLatency time.Duration
	// MaxErrorRate bounds failures over arrivals; zero selects 1%.
	MaxErrorRate float64
	// MaxLag bounds the generator's own schedule lag at Quantile; zero
	// selects 50ms.
	MaxLag time.Duration
	// MaxRPS caps the search: doubling stops there, and passing at the
	// cap reports it as the max with CeilingReached set (the true
	// capacity is at least that). Zero leaves the search unbounded —
	// the generator-lag gate is then the only stop.
	MaxRPS float64
}

func (g Gate) withDefaults() Gate {
	if g.Quantile <= 0 {
		g.Quantile = 0.99
	}
	if g.MaxLatency <= 0 {
		g.MaxLatency = 250 * time.Millisecond
	}
	if g.MaxErrorRate <= 0 {
		g.MaxErrorRate = 0.01
	}
	if g.MaxLag <= 0 {
		g.MaxLag = 50 * time.Millisecond
	}
	return g
}

// Trial is one steady-rate probe of the search.
type Trial struct {
	RPS    float64
	Pass   bool
	Reason string
	Result SlotResult
}

// FindMaxResult is the capacity search outcome.
type FindMaxResult struct {
	// MaxSustainableRPS is the highest trialed rate that passed the
	// gate — the headline capacity metric. Zero when even the starting
	// rate failed.
	MaxSustainableRPS float64
	// GeneratorLimited reports that the search stopped because the
	// generator missed its own schedule (gate.MaxLag), not because the
	// server failed: the true capacity is at least MaxSustainableRPS.
	GeneratorLimited bool
	// CeilingReached reports that the server passed the gate at
	// gate.MaxRPS, so the search stopped at the cap rather than at a
	// failure: the true capacity is at least MaxSustainableRPS.
	CeilingReached bool
	Trials         []Trial
}

// FindMax searches for the highest steady arrival rate the server
// sustains under gate: exponential doubling from startRPS until a
// trial fails, then binary search between the last pass and first
// fail until the bracket is within 10%. Each trial runs one warmup
// slot and one measured slot of trialDur at the probed rate; only the
// measured slot is gated, so cold caches and a cold model do not
// charge the first trial.
func (g *Generator) FindMax(ctx context.Context, startRPS float64, trialDur time.Duration, gate Gate) (*FindMaxResult, error) {
	if startRPS <= 0 {
		return nil, fmt.Errorf("loadgen: find-max needs a positive starting rate, got %v", startRPS)
	}
	if trialDur <= 0 {
		trialDur = 10 * time.Second
	}
	gate = gate.withDefaults()

	trial := func(rps float64) (Trial, error) {
		warm := trialDur / 2
		if warm > 5*time.Second {
			warm = 5 * time.Second
		}
		sc := Scenario{Name: "find-max", Slots: []Slot{
			{Label: "warmup", RPS: rps, Duration: warm},
			{Label: fmt.Sprintf("rps%.4g", rps), RPS: rps, Duration: trialDur},
		}}
		run, err := g.Run(ctx, sc)
		if err != nil {
			return Trial{RPS: rps}, err
		}
		measured := run.Slots[len(run.Slots)-1]
		t := Trial{RPS: rps, Result: measured}
		lagQ := measured.Lag.Quantile(gate.Quantile)
		latQ := measured.Latency.Quantile(gate.Quantile)
		switch {
		case lagQ > gate.MaxLag:
			t.Reason = fmt.Sprintf("generator lag p%g %v > %v", gate.Quantile*100, lagQ, gate.MaxLag)
		case measured.ErrorRate() > gate.MaxErrorRate:
			t.Reason = fmt.Sprintf("error rate %.3f > %.3f", measured.ErrorRate(), gate.MaxErrorRate)
		case measured.Completed == 0:
			t.Reason = "no completions"
		case latQ > gate.MaxLatency:
			t.Reason = fmt.Sprintf("latency p%g %v > %v", gate.Quantile*100, latQ, gate.MaxLatency)
		default:
			t.Pass = true
			t.Reason = fmt.Sprintf("latency p%g %v, errors %.3f", gate.Quantile*100, latQ, measured.ErrorRate())
		}
		if g.cfg.Logf != nil {
			verdict := "FAIL"
			if t.Pass {
				verdict = "pass"
			}
			g.cfg.Logf("find-max trial %.4g rps: %s (%s)", rps, verdict, t.Reason)
		}
		return t, nil
	}

	return findMax(startRPS, gate, trial)
}

// findMax is the search loop behind FindMax, separated from scenario
// execution so the gate edges — cap clamping, pass-at-cap, a
// generator-limited trial interrupting the bisection — are testable
// with scripted trial verdicts instead of live traffic. gate must
// already have its defaults applied; trial probes one steady rate.
func findMax(startRPS float64, gate Gate, trial func(rps float64) (Trial, error)) (*FindMaxResult, error) {
	res := &FindMaxResult{}
	probe := func(rps float64) (Trial, error) {
		t, err := trial(rps)
		if err == nil {
			res.Trials = append(res.Trials, t)
		}
		return t, err
	}

	generatorLimited := func(t Trial) bool {
		return !t.Pass && t.Result.Lag.Quantile(gate.Quantile) > gate.MaxLag
	}

	// Phase 1: double until a failure (or the cap) brackets capacity.
	lo, hi := 0.0, 0.0
	for rps := startRPS; ; rps *= 2 {
		if gate.MaxRPS > 0 && rps > gate.MaxRPS {
			rps = gate.MaxRPS
		}
		t, err := probe(rps)
		if err != nil {
			return res, err
		}
		if t.Pass {
			lo = rps
			res.MaxSustainableRPS = rps
			if gate.MaxRPS > 0 && rps >= gate.MaxRPS {
				res.CeilingReached = true
				return res, nil
			}
			continue
		}
		if generatorLimited(t) {
			res.GeneratorLimited = true
			return res, nil
		}
		hi = rps
		break
	}

	// Phase 2: bisect [lo, hi] until within 10%. lo == 0 means even the
	// starting rate failed: report zero capacity rather than probing
	// below the caller's floor.
	if lo == 0 {
		return res, nil
	}
	for hi/lo > 1.10 {
		mid := (lo + hi) / 2
		t, err := probe(mid)
		if err != nil {
			return res, err
		}
		if t.Pass {
			lo = mid
			res.MaxSustainableRPS = mid
			continue
		}
		if generatorLimited(t) {
			res.GeneratorLimited = true
			return res, nil
		}
		hi = mid
	}
	return res, nil
}
