package loadgen

import (
	"fmt"
	"testing"
	"time"

	"pbppm/internal/obs"
)

// scripted builds a trial function from a verdict table keyed by RPS
// and records the probe order. Unknown rates fail the test: every edge
// case below asserts the exact trial sequence the search takes.
type scripted struct {
	t       *testing.T
	verdict map[float64]Trial
	probed  []float64
}

func (s *scripted) trial(rps float64) (Trial, error) {
	s.probed = append(s.probed, rps)
	tr, ok := s.verdict[rps]
	if !ok {
		s.t.Fatalf("unscripted trial at %v rps (probed %v)", rps, s.probed)
	}
	tr.RPS = rps
	return tr, nil
}

func pass() Trial { return Trial{Pass: true, Reason: "scripted pass"} }

// failLatency fails the gate with an empty lag snapshot, so the search
// reads it as a server failure, not generator exhaustion.
func failLatency() Trial { return Trial{Reason: "scripted latency fail"} }

// failLagged fails the gate with a lag distribution over gate.MaxLag:
// the generator itself missed the schedule, so the trial says nothing
// about the server.
func failLagged(gate Gate) Trial {
	h := obs.NewHistogram(LoadLatencyBounds)
	for i := 0; i < 100; i++ {
		h.Observe(gate.MaxLag * 4)
	}
	return Trial{Reason: "scripted lag fail", Result: SlotResult{Lag: h.Snapshot()}}
}

func gateWithCap(cap float64) Gate {
	return Gate{MaxRPS: cap}.withDefaults()
}

// A starting rate above the cap is clamped: the first (and only
// passing) trial runs at the cap itself, and passing there is
// CeilingReached — the true capacity is at least the cap.
func TestFindMaxClampsStartAboveCap(t *testing.T) {
	gate := gateWithCap(60)
	s := &scripted{t: t, verdict: map[float64]Trial{60: pass()}}
	res, err := findMax(100, gate, s.trial)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.probed) != 1 || s.probed[0] != 60 {
		t.Errorf("probed %v, want exactly the clamped cap [60]", s.probed)
	}
	if !res.CeilingReached || res.GeneratorLimited || res.MaxSustainableRPS != 60 {
		t.Errorf("result = %+v, want ceiling at 60", res)
	}
	if len(res.Trials) != 1 || res.Trials[0].RPS != 60 {
		t.Errorf("trials = %+v", res.Trials)
	}
}

// A clamped first trial that fails reports zero capacity: nothing below
// the caller's floor is probed.
func TestFindMaxClampedStartFailing(t *testing.T) {
	gate := gateWithCap(60)
	s := &scripted{t: t, verdict: map[float64]Trial{60: failLatency()}}
	res, err := findMax(100, gate, s.trial)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxSustainableRPS != 0 || res.CeilingReached || res.GeneratorLimited {
		t.Errorf("result = %+v, want zero capacity", res)
	}
	if len(s.probed) != 1 {
		t.Errorf("probed %v, want a single failing trial", s.probed)
	}
}

// Doubling that lands on the cap and passes there stops as
// CeilingReached even though no trial ever failed.
func TestFindMaxPassAtCapAfterDoubling(t *testing.T) {
	gate := gateWithCap(60)
	s := &scripted{t: t, verdict: map[float64]Trial{
		25: pass(),
		50: pass(),
		60: pass(), // 100 clamps to the cap
	}}
	res, err := findMax(25, gate, s.trial)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{25, 50, 60}
	if fmt.Sprint(s.probed) != fmt.Sprint(want) {
		t.Errorf("probed %v, want %v", s.probed, want)
	}
	if !res.CeilingReached || res.MaxSustainableRPS != 60 {
		t.Errorf("result = %+v, want ceiling at 60", res)
	}
}

// A generator-limited trial mid-bisection stops the search keeping the
// last passing rate: the verdict is about the generator, not the
// server, so bisecting further would report noise as capacity.
func TestFindMaxGeneratorLimitedMidBisect(t *testing.T) {
	gate := Gate{}.withDefaults()
	s := &scripted{t: t, verdict: map[float64]Trial{
		10: pass(),
		20: failLatency(),   // brackets [10, 20]
		15: failLagged(gate), // bisection probe exhausts the generator
	}}
	res, err := findMax(10, gate, s.trial)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 15}
	if fmt.Sprint(s.probed) != fmt.Sprint(want) {
		t.Errorf("probed %v, want %v", s.probed, want)
	}
	if !res.GeneratorLimited || res.CeilingReached {
		t.Errorf("result = %+v, want generator-limited", res)
	}
	if res.MaxSustainableRPS != 10 {
		t.Errorf("MaxSustainableRPS = %v, want the last pass 10", res.MaxSustainableRPS)
	}
}

// Generator exhaustion during the doubling phase stops the search the
// same way.
func TestFindMaxGeneratorLimitedWhileDoubling(t *testing.T) {
	gate := Gate{}.withDefaults()
	s := &scripted{t: t, verdict: map[float64]Trial{
		10: pass(),
		20: failLagged(gate),
	}}
	res, err := findMax(10, gate, s.trial)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GeneratorLimited || res.MaxSustainableRPS != 10 {
		t.Errorf("result = %+v, want generator-limited at 10", res)
	}
}

// The normal path: doubling brackets a failure, bisection narrows the
// bracket to within 10% and reports the highest passing rate.
func TestFindMaxBisectsToWithinTenPercent(t *testing.T) {
	gate := Gate{}.withDefaults()
	s := &scripted{t: t, verdict: map[float64]Trial{
		10:   pass(),
		20:   pass(),
		40:   failLatency(), // brackets [20, 40]
		30:   pass(),        // [30, 40]
		35:   pass(),        // [35, 40]
		37.5: pass(),        // [37.5, 40] -> 40/37.5 < 1.10, stop
	}}
	res, err := findMax(10, gate, s.trial)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxSustainableRPS != 37.5 || res.GeneratorLimited || res.CeilingReached {
		t.Errorf("result = %+v, want clean convergence at 37.5", res)
	}
	if got := len(res.Trials); got != len(s.probed) {
		t.Errorf("recorded %d trials, probed %d", got, len(s.probed))
	}
	// Every recorded trial carries the rate it probed, in order.
	for i, tr := range res.Trials {
		if tr.RPS != s.probed[i] {
			t.Errorf("trial %d recorded rps %v, probed %v", i, tr.RPS, s.probed[i])
		}
	}
}

func TestFindMaxRejectsNonPositiveStart(t *testing.T) {
	g := &Generator{}
	if _, err := g.FindMax(nil, 0, time.Second, Gate{}); err == nil {
		t.Error("non-positive start accepted")
	}
}
