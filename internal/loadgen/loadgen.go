package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pbppm/internal/obs"
	"pbppm/internal/server"
	"pbppm/internal/tracegen"
)

// LoadLatencyBounds are the histogram bounds for load-test latency and
// schedule lag: finer than the serving-side DefaultLatencyBounds at
// the bottom (100µs) because a loopback hit on a warm server is
// sub-millisecond and the interesting capacity signal is the knee
// where those observations climb.
var LoadLatencyBounds = []time.Duration{
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

// Config parameterizes a Generator.
type Config struct {
	// ServerURL is the prefetching server root, e.g.
	// "http://127.0.0.1:8080". Required.
	ServerURL string
	// AdminURL is the server's admin root; when set, each slot boundary
	// polls AdminURL/debug/slo and records the objectives' states.
	AdminURL string
	// Site is the synthetic site the server serves; the navigator walks
	// it. Required.
	Site *tracegen.Site
	// Profile supplies the walk parameters (head bias, link
	// probabilities, session length) — normally the same profile the
	// server was booted with.
	Profile tracegen.Profile
	// Clients sizes the warm virtual-client pool; zero selects 100.
	Clients int
	// Seed drives every random choice (client pick, session walk, cold
	// selection). The same seed, site, and scenario produce the same
	// request sequence; zero selects 1.
	Seed int64
	// Timeout bounds each request (and is how a stalled server turns
	// into timeout errors instead of a stuck generator); zero selects
	// 5s.
	Timeout time.Duration
	// CacheBytes sizes each virtual client's browser cache; zero keeps
	// the client default (the paper's 1 MB).
	CacheBytes int64
	// Obs registers the generator's self-metrics
	// (pbppm_loadgen_dispatched_total, pbppm_loadgen_lag_seconds, ...);
	// nil keeps them process-internal.
	Obs *obs.Registry
	// Logf, when set, receives one progress line per completed slot.
	Logf func(format string, args ...any)
}

// walker is one warm virtual client: its protocol state lives in the
// server.Client, its walk state here. Walk state is touched only by
// the dispatcher goroutine.
type walker struct {
	client *server.Client
	active bool
	cur    int
	clicks int
	pCont  float64
}

// genMetrics are the generator's self-metrics; the load generator
// watches its own health (schedule lag above all) so a saturated
// generator is never mistaken for a slow server.
type genMetrics struct {
	dispatched  *obs.Counter
	complNet    *obs.Counter
	complCache  *obs.Counter
	complPref   *obs.Counter
	errTimeout  *obs.Counter
	errOther    *obs.Counter
	coldClients *obs.Counter
	inflight    *obs.Gauge
	targetRPS   *obs.FloatGauge
	latency     *obs.Histogram
	lag         *obs.Histogram
}

func newGenMetrics(reg *obs.Registry) *genMetrics {
	src := func(v string) obs.Label { return obs.Label{Name: "source", Value: v} }
	kind := func(v string) obs.Label { return obs.Label{Name: "kind", Value: v} }
	return &genMetrics{
		dispatched: reg.Counter("pbppm_loadgen_dispatched_total",
			"Requests dispatched on the open-loop schedule."),
		complNet: reg.Counter("pbppm_loadgen_completed_total",
			"Requests completed, by body source.", src("network")),
		complCache: reg.Counter("pbppm_loadgen_completed_total",
			"Requests completed, by body source.", src("cache")),
		complPref: reg.Counter("pbppm_loadgen_completed_total",
			"Requests completed, by body source.", src("prefetch")),
		errTimeout: reg.Counter("pbppm_loadgen_errors_total",
			"Requests that failed, by failure kind.", kind("timeout")),
		errOther: reg.Counter("pbppm_loadgen_errors_total",
			"Requests that failed, by failure kind.", kind("other")),
		coldClients: reg.Counter("pbppm_loadgen_cold_clients_total",
			"Never-seen clients created for cold-start arrivals."),
		inflight: reg.Gauge("pbppm_loadgen_inflight",
			"Requests dispatched but not yet completed."),
		targetRPS: reg.FloatGauge("pbppm_loadgen_target_rps",
			"Arrival rate of the slot currently dispatching."),
		latency: reg.Histogram("pbppm_loadgen_latency_seconds",
			"On-schedule request latency: completion minus scheduled arrival.",
			LoadLatencyBounds),
		lag: reg.Histogram("pbppm_loadgen_lag_seconds",
			"Schedule lag: dispatch minus scheduled arrival. The generator's own health signal.",
			LoadLatencyBounds),
	}
}

// Generator drives load scenarios against one server. A Generator is
// reusable across Run calls (FindMax runs many), but runs must not
// overlap: the walker pool and RNG are single-dispatcher state.
type Generator struct {
	cfg     Config
	nav     *Navigator
	http    *http.Client
	rng     *rand.Rand
	walkers []*walker
	metrics *genMetrics
	coldSeq int64
	// colds collects cold clients so their background prefetches drain
	// before a run returns.
	colds []*server.Client
	wg    sync.WaitGroup
}

// New builds a generator; it validates the config and constructs the
// warm client pool.
func New(cfg Config) (*Generator, error) {
	if cfg.ServerURL == "" {
		return nil, fmt.Errorf("loadgen: config needs a ServerURL")
	}
	nav, err := NewNavigator(cfg.Site, cfg.Profile)
	if err != nil {
		return nil, err
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 100
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	g := &Generator{
		cfg: cfg,
		nav: nav,
		http: &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				// Open-loop load holds many requests in flight against one
				// host; the default of 2 idle conns per host would force a
				// TCP handshake per request at any real rate.
				MaxIdleConns:        4 * cfg.Clients,
				MaxIdleConnsPerHost: 4 * cfg.Clients,
			},
		},
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		metrics: newGenMetrics(cfg.Obs),
	}
	for i := 0; i < cfg.Clients; i++ {
		cl, err := server.NewClient(server.ClientConfig{
			ID:         fmt.Sprintf("lg-c%04d", i),
			BaseURL:    cfg.ServerURL,
			HTTPClient: g.http,
			CacheBytes: cfg.CacheBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: building client pool: %w", err)
		}
		g.walkers = append(g.walkers, &walker{client: cl})
	}
	return g, nil
}

// SLOSnapshot is the server's /debug/slo verdict at one slot boundary.
type SLOSnapshot struct {
	// State is the worst objective state ("ok" < "burning" <
	// "critical"; "no_data" when nothing has data).
	State string
	// Objectives maps each objective name to its state.
	Objectives map[string]string
}

// slotStats accumulates one slot's measurements during the run; the
// counters are atomics because request goroutines outlive their slot's
// dispatch window.
type slotStats struct {
	dispatched, completed    atomic.Int64
	timeouts, otherErrs      atomic.Int64
	network, cache, prefetch atomic.Int64
	latency, lag             *obs.Histogram
	// slo is the /debug/slo poll at the slot's dispatch boundary,
	// written by the dispatcher only.
	slo *SLOSnapshot
}

// SlotResult is one slot's finalized measurements.
type SlotResult struct {
	Slot       Slot
	Dispatched int64
	Completed  int64
	Timeouts   int64
	OtherErrs  int64
	// Network, CacheHits, and PrefetchHits split completions by body
	// source; cache and prefetch hits never touched the network, which
	// is the prefetching win showing up in the latency distribution.
	Network      int64
	CacheHits    int64
	PrefetchHits int64
	// Latency holds on-schedule latencies (completion minus scheduled
	// arrival) of successful requests dispatched in this slot — failed
	// requests count in the error totals, not here.
	Latency obs.HistogramSnapshot
	// Lag holds dispatch minus scheduled arrival for every arrival of
	// the slot: the generator's own scheduling health.
	Lag obs.HistogramSnapshot
	// SLO is the server's /debug/slo verdict polled at the slot's
	// dispatch boundary; nil without an AdminURL (or on poll failure).
	SLO *SLOSnapshot
}

// Errors returns the failed-request count.
func (s SlotResult) Errors() int64 { return s.Timeouts + s.OtherErrs }

// ErrorRate returns failures over dispatched arrivals.
func (s SlotResult) ErrorRate() float64 {
	if s.Dispatched == 0 {
		return 0
	}
	return float64(s.Errors()) / float64(s.Dispatched)
}

// AchievedRPS returns completions over the slot duration.
func (s SlotResult) AchievedRPS() float64 {
	if s.Slot.Duration <= 0 {
		return 0
	}
	return float64(s.Completed) / s.Slot.Duration.Seconds()
}

// Result is one scenario run.
type Result struct {
	Scenario string
	// Wall is the measured wall time of the run including the drain.
	Wall  time.Duration
	Slots []SlotResult
}

// mergeSnapshots adds b's counts into a copy of a; both must share
// bounds (they do — every loadgen histogram uses LoadLatencyBounds).
func mergeSnapshots(a, b obs.HistogramSnapshot) obs.HistogramSnapshot {
	if a.Bounds == nil {
		return b
	}
	out := obs.HistogramSnapshot{
		Bounds:   a.Bounds,
		Counts:   make([]int64, len(a.Counts)),
		SumNanos: a.SumNanos + b.SumNanos,
	}
	copy(out.Counts, a.Counts)
	for i := range b.Counts {
		if i < len(out.Counts) {
			out.Counts[i] += b.Counts[i]
		}
	}
	return out
}

// Latency returns the merged latency distribution across all slots.
func (r *Result) Latency() obs.HistogramSnapshot {
	var out obs.HistogramSnapshot
	for _, s := range r.Slots {
		out = mergeSnapshots(out, s.Latency)
	}
	return out
}

// Lag returns the merged schedule-lag distribution across all slots.
func (r *Result) Lag() obs.HistogramSnapshot {
	var out obs.HistogramSnapshot
	for _, s := range r.Slots {
		out = mergeSnapshots(out, s.Lag)
	}
	return out
}

// Dispatched sums arrivals across slots.
func (r *Result) Dispatched() int64 {
	var n int64
	for _, s := range r.Slots {
		n += s.Dispatched
	}
	return n
}

// Completed sums successful completions across slots.
func (r *Result) Completed() int64 {
	var n int64
	for _, s := range r.Slots {
		n += s.Completed
	}
	return n
}

// Errors sums failures across slots.
func (r *Result) Errors() int64 {
	var n int64
	for _, s := range r.Slots {
		n += s.Errors()
	}
	return n
}

// ErrorRate returns overall failures over arrivals.
func (r *Result) ErrorRate() float64 {
	if d := r.Dispatched(); d > 0 {
		return float64(r.Errors()) / float64(d)
	}
	return 0
}

// AchievedRPS returns overall completions over the scheduled duration.
func (r *Result) AchievedRPS() float64 {
	var sched time.Duration
	for _, s := range r.Slots {
		sched += s.Slot.Duration
	}
	if sched <= 0 {
		return 0
	}
	return float64(r.Completed()) / sched.Seconds()
}

// Run dispatches the scenario's arrival schedule, drains outstanding
// requests, and returns per-slot results. Dispatch is open-loop: each
// arrival fires at its scheduled time whether or not earlier requests
// completed, and a request's latency is measured from its scheduled
// arrival, so server stalls surface as high latency and timeouts —
// never as a politely slowed-down generator. On ctx cancellation the
// remaining schedule is abandoned and the partial result returned with
// ctx's error.
func (g *Generator) Run(ctx context.Context, sc Scenario) (*Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	res := &Result{Scenario: sc.Name}
	stats := make([]*slotStats, len(sc.Slots))
	for i := range stats {
		stats[i] = &slotStats{
			latency: obs.NewHistogram(LoadLatencyBounds),
			lag:     obs.NewHistogram(LoadLatencyBounds),
		}
	}

	runStart := time.Now()
	slotStart := runStart
	var runErr error
dispatch:
	for si := range sc.Slots {
		slot := sc.Slots[si]
		st := stats[si]
		g.metrics.targetRPS.Set(slot.RPS)
		n := slot.Requests()
		interval := slot.Interval()
		for k := 0; k < n; k++ {
			sched := slotStart.Add(time.Duration(k) * interval)
			if wait := time.Until(sched); wait > 0 {
				timer := time.NewTimer(wait)
				select {
				case <-ctx.Done():
					timer.Stop()
					runErr = ctx.Err()
					break dispatch
				case <-timer.C:
				}
			} else if ctx.Err() != nil {
				runErr = ctx.Err()
				break dispatch
			}
			lag := time.Since(sched)
			if lag < 0 {
				lag = 0
			}
			st.lag.Observe(lag)
			g.metrics.lag.Observe(lag)

			cl, url := g.pick(slot)
			st.dispatched.Add(1)
			g.metrics.dispatched.Inc()
			g.metrics.inflight.Add(1)
			g.wg.Add(1)
			go g.issue(cl, url, sched, st)
		}
		slotStart = slotStart.Add(slot.Duration)
		if g.cfg.AdminURL != "" {
			// The poll failing is a result (the admin endpoint fell over
			// under load is itself a finding), not a run error: the slot
			// just carries a nil SLO.
			if snap, err := g.pollSLO(); err == nil {
				st.slo = snap
			}
		}
		if g.cfg.Logf != nil {
			g.cfg.Logf("slot %s dispatched (%d arrivals at %.4g rps)",
				slot.Label, st.dispatched.Load(), slot.RPS)
		}
	}
	g.metrics.targetRPS.Set(0)

	// Drain: every dispatched request finishes (the client timeout
	// bounds stalls), then background hint prefetches.
	g.wg.Wait()
	for _, w := range g.walkers {
		w.client.Wait()
	}
	for _, cl := range g.colds {
		cl.Wait()
	}
	g.colds = g.colds[:0]
	// Deliver outstanding hit reports so the server's live quality
	// metrics see the run's tail.
	for _, w := range g.walkers {
		w.client.Flush() //nolint:errcheck // a dead server already shows up as errors
	}
	res.Wall = time.Since(runStart)

	for si := range sc.Slots {
		st := stats[si]
		res.Slots = append(res.Slots, SlotResult{
			Slot:         sc.Slots[si],
			Dispatched:   st.dispatched.Load(),
			Completed:    st.completed.Load(),
			Timeouts:     st.timeouts.Load(),
			OtherErrs:    st.otherErrs.Load(),
			Network:      st.network.Load(),
			CacheHits:    st.cache.Load(),
			PrefetchHits: st.prefetch.Load(),
			Latency:      st.latency.Snapshot(),
			Lag:          st.lag.Snapshot(),
			SLO:          st.slo,
		})
	}
	return res, runErr
}

// pick chooses the client and URL of one arrival. It runs only on the
// dispatcher goroutine, so the seeded RNG and walker states make the
// request sequence deterministic regardless of response timing.
func (g *Generator) pick(slot Slot) (*server.Client, string) {
	if slot.ColdShare > 0 && g.rng.Float64() < slot.ColdShare {
		g.coldSeq++
		cl, err := server.NewClient(server.ClientConfig{
			ID:         fmt.Sprintf("lg-cold%07d", g.coldSeq),
			BaseURL:    g.cfg.ServerURL,
			HTTPClient: g.http,
			CacheBytes: g.cfg.CacheBytes,
		})
		if err == nil {
			g.colds = append(g.colds, cl)
			g.metrics.coldClients.Inc()
			page, _ := g.nav.Start(g.rng, slot.HeadShift)
			return cl, g.nav.URL(page)
		}
		// Impossible with a validated config; fall through to a walker.
	}
	w := g.walkers[g.rng.Intn(len(g.walkers))]
	return w.client, g.nextURL(w, slot.HeadShift)
}

// nextURL advances a walker's session walk and returns the URL to
// request: a fresh session head when the walker is idle, ended its
// session, or hit the length cap; the navigator's next click
// otherwise.
func (g *Generator) nextURL(w *walker, headShift int) string {
	maxLen := g.cfg.Profile.MaxSessionLen
	if maxLen <= 0 {
		maxLen = 20
	}
	if w.active && (w.clicks >= maxLen || g.rng.Float64() >= w.pCont) {
		w.active = false
	}
	if w.active {
		if next, ok := g.nav.Next(g.rng, w.cur, headShift); ok {
			w.cur = next
			w.clicks++
			return g.nav.URL(next)
		}
		w.active = false
	}
	w.cur, w.pCont = g.nav.Start(g.rng, headShift)
	w.active = true
	w.clicks = 1
	return g.nav.URL(w.cur)
}

// issue performs one request and records its outcome against the slot
// it was dispatched in.
func (g *Generator) issue(cl *server.Client, url string, sched time.Time, st *slotStats) {
	defer g.wg.Done()
	defer g.metrics.inflight.Add(-1)
	source, err := cl.Get(url)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			st.timeouts.Add(1)
			g.metrics.errTimeout.Inc()
		} else {
			st.otherErrs.Add(1)
			g.metrics.errOther.Inc()
		}
		return
	}
	lat := time.Since(sched)
	st.latency.Observe(lat)
	g.metrics.latency.Observe(lat)
	st.completed.Add(1)
	switch source {
	case "cache":
		st.cache.Add(1)
	case "prefetch":
		st.prefetch.Add(1)
	default:
		st.network.Add(1)
	}
	switch source {
	case "cache":
		g.metrics.complCache.Inc()
	case "prefetch":
		g.metrics.complPref.Inc()
	default:
		g.metrics.complNet.Inc()
	}
}

// pollSLO fetches and summarizes the server's /debug/slo report.
func (g *Generator) pollSLO() (*SLOSnapshot, error) {
	url := g.cfg.AdminURL + "/debug/slo"
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: %s: status %s", url, resp.Status)
	}
	var rep obs.SLOReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("loadgen: decoding %s: %w", url, err)
	}
	snap := &SLOSnapshot{State: obs.SLOStateNoData, Objectives: make(map[string]string)}
	rank := map[string]int{
		obs.SLOStateNoData: 0, obs.SLOStateOK: 1,
		obs.SLOStateBurning: 2, obs.SLOStateCritical: 3,
	}
	for _, o := range rep.Objectives {
		snap.Objectives[o.Name] = o.State
		if rank[o.State] > rank[snap.State] {
			snap.State = o.State
		}
	}
	return snap, nil
}
