package loadgen

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pbppm/internal/obs"
	"pbppm/internal/server"
	"pbppm/internal/tracegen"
)

// testProfile is a small site profile that keeps tests fast.
func testProfile() tracegen.Profile {
	p := tracegen.NASA()
	p.Pages = 80
	p.EntryCount = 8
	return p
}

func testSite(t *testing.T) (*tracegen.Site, tracegen.Profile) {
	t.Helper()
	p := testProfile()
	site, err := tracegen.BuildSite(p)
	if err != nil {
		t.Fatalf("BuildSite: %v", err)
	}
	return site, p
}

// TestOpenLoopStalledServer is the open-loop semantics proof: a server
// that stops answering must not slow the arrival schedule down. The
// generator keeps dispatching on time (schedule lag stays small while
// nothing completes), requests pile up in flight, and the stall
// surfaces as timeouts — not as a politely reduced request rate, which
// is the coordinated-omission failure closed-loop generators have.
func TestOpenLoopStalledServer(t *testing.T) {
	site, p := testSite(t)
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	defer close(release)

	g, err := New(Config{
		ServerURL: ts.URL,
		Site:      site,
		Profile:   p,
		Clients:   20,
		Seed:      7,
		Timeout:   150 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const rps, dur = 200.0, 250 * time.Millisecond
	res, err := g.Run(context.Background(), Scenario{Name: "stall", Slots: []Slot{
		{Label: "stall", RPS: rps, Duration: dur},
	}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	slot := res.Slots[0]
	want := int64(rps * dur.Seconds())
	// The schedule must have run to completion against a server that
	// never answered: allow scheduling slop, not omission.
	if slot.Dispatched < want*8/10 {
		t.Fatalf("dispatched %d of %d scheduled arrivals against a stalled server (closed-loop behavior)",
			slot.Dispatched, want)
	}
	if slot.Completed != 0 {
		t.Fatalf("stalled server completed %d requests", slot.Completed)
	}
	if slot.Timeouts != slot.Dispatched {
		t.Fatalf("timeouts %d != dispatched %d: a stalled request escaped the timeout accounting",
			slot.Timeouts, slot.Dispatched)
	}
	// Dispatch stayed on schedule: lag p99 far below the slot length.
	// The bound is generous for noisy CI machines; the failure mode it
	// guards (dispatcher blocking on responses) produces lag on the
	// order of the whole slot.
	if lag := slot.Lag.Quantile(0.99); lag > 100*time.Millisecond {
		t.Fatalf("schedule lag p99 %v: dispatcher was coupled to the stalled server", lag)
	}
	if slot.Lag.Count() != slot.Dispatched {
		t.Fatalf("lag observations %d != dispatched %d", slot.Lag.Count(), slot.Dispatched)
	}
}

// TestDeterministicRequestSequence: the same seed yields the same
// dispatch choices (client + URL) regardless of server timing, because
// all randomness lives on the dispatcher goroutine.
func TestDeterministicRequestSequence(t *testing.T) {
	site, p := testSite(t)
	sequence := func(seed int64, delay time.Duration) []string {
		var mu chanLock
		var urls []string
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Header.Get(server.HeaderPrefetchFetch) == "" && r.Header.Get("X-Prefetch-Report-Only") == "" {
				mu.Lock()
				urls = append(urls, r.Header.Get(server.HeaderClientID)+" "+r.URL.Path)
				mu.Unlock()
			}
			time.Sleep(delay)
		}))
		defer ts.Close()
		g, err := New(Config{ServerURL: ts.URL, Site: site, Profile: p, Clients: 5, Seed: seed,
			Timeout: time.Second})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		_, err = g.Run(context.Background(), Scenario{Name: "det", Slots: []Slot{
			{Label: "s", RPS: 400, Duration: 100 * time.Millisecond},
		}})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return urls
	}
	// Demand arrival ORDER at the server can race, but the dispatched
	// multiset must match across timings; compare sorted.
	a := sorted(sequence(42, 0))
	b := sorted(sequence(42, 2*time.Millisecond))
	c := sorted(sequence(43, 0))
	if len(a) == 0 {
		t.Fatal("no demand requests recorded")
	}
	if !equal(a, b) {
		t.Fatalf("same seed produced different request sets:\n%v\n%v", a, b)
	}
	if equal(a, c) {
		t.Fatal("different seeds produced identical request sets")
	}
}

type chanLock struct{ ch chan struct{} }

func (l *chanLock) Lock() {
	if l.ch == nil {
		l.ch = make(chan struct{}, 1)
	}
	l.ch <- struct{}{}
}
func (l *chanLock) Unlock() { <-l.ch }

func sorted(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRunAgainstLiveServer drives the real prefetching server and
// checks the accounting invariants plus the cold-flood and SLO-poll
// paths.
func TestRunAgainstLiveServer(t *testing.T) {
	site, p := testSite(t)
	store := StoreFromSite(site)
	srv := server.New(store, server.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A canned admin endpoint exercises the /debug/slo poll without
	// booting the whole daemon.
	admin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/slo" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(`{"generated_at":"2026-08-07T00:00:00Z","objectives":[
			{"name":"lat","kind":"latency","target":0.9,"state":"ok","windows":[]},
			{"name":"precision","kind":"precision","target":0.3,"state":"burning","windows":[]}]}`))
	}))
	defer admin.Close()

	reg := obs.NewRegistry()
	g, err := New(Config{
		ServerURL: ts.URL,
		AdminURL:  admin.URL,
		Site:      site,
		Profile:   p,
		Clients:   10,
		Seed:      11,
		Timeout:   2 * time.Second,
		Obs:       reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := g.Run(context.Background(), Scenario{Name: "mix", Slots: []Slot{
		{Label: "warm", RPS: 150, Duration: 200 * time.Millisecond},
		{Label: "cold", RPS: 150, Duration: 200 * time.Millisecond, ColdShare: 0.5, HeadShift: 20},
	}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Slots) != 2 {
		t.Fatalf("slots = %d, want 2", len(res.Slots))
	}
	for _, s := range res.Slots {
		if s.Dispatched == 0 {
			t.Fatalf("slot %s dispatched nothing", s.Slot.Label)
		}
		if s.Completed+s.Errors() != s.Dispatched {
			t.Fatalf("slot %s: completed %d + errors %d != dispatched %d",
				s.Slot.Label, s.Completed, s.Errors(), s.Dispatched)
		}
		if s.Network+s.CacheHits+s.PrefetchHits != s.Completed {
			t.Fatalf("slot %s: source split %d+%d+%d != completed %d",
				s.Slot.Label, s.Network, s.CacheHits, s.PrefetchHits, s.Completed)
		}
		if int64(s.Latency.Count()) != s.Completed {
			t.Fatalf("slot %s: %d latency observations for %d completions",
				s.Slot.Label, s.Latency.Count(), s.Completed)
		}
		if s.SLO == nil || s.SLO.State != obs.SLOStateBurning {
			t.Fatalf("slot %s: SLO snapshot %+v, want worst state burning", s.Slot.Label, s.SLO)
		}
	}
	if res.ErrorRate() != 0 {
		t.Fatalf("healthy server produced error rate %v", res.ErrorRate())
	}
	// The cold flood opened fresh sessions: far more clients than the
	// warm pool reached the server.
	if st := srv.Stats(); st.SessionsStarted <= 10 {
		t.Fatalf("sessions started = %d, want > warm pool of 10 (cold flood missing)", st.SessionsStarted)
	}
	if res.Latency().Count() != res.Completed() {
		t.Fatalf("merged latency count %d != completed %d", res.Latency().Count(), res.Completed())
	}
}

// TestFindMaxCeiling: a fast in-process server passes every trial, so
// the search stops at the configured cap and reports it as a lower
// bound on capacity.
func TestFindMaxCeiling(t *testing.T) {
	site, p := testSite(t)
	ts := httptest.NewServer(server.New(StoreFromSite(site), server.Config{}))
	defer ts.Close()
	g, err := New(Config{ServerURL: ts.URL, Site: site, Profile: p, Clients: 10, Seed: 3,
		Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := g.FindMax(context.Background(), 50, 150*time.Millisecond, Gate{
		MaxRPS: 200, MaxLag: 5 * time.Second, MaxLatency: 2 * time.Second, MaxErrorRate: 0.5,
	})
	if err != nil {
		t.Fatalf("FindMax: %v", err)
	}
	if !res.CeilingReached || res.MaxSustainableRPS != 200 {
		t.Fatalf("result = %+v, want ceiling reached at 200 rps", res)
	}
	// 50, 100, 200 — doubling to the cap.
	if len(res.Trials) != 3 {
		t.Fatalf("trials = %d, want 3", len(res.Trials))
	}
}

// TestFindMaxGateFailsAtStart: an impossible latency gate fails the
// first trial, reporting zero capacity rather than probing below the
// caller's floor.
func TestFindMaxGateFailsAtStart(t *testing.T) {
	site, p := testSite(t)
	ts := httptest.NewServer(server.New(StoreFromSite(site), server.Config{}))
	defer ts.Close()
	g, err := New(Config{ServerURL: ts.URL, Site: site, Profile: p, Clients: 5, Seed: 3,
		Timeout: time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := g.FindMax(context.Background(), 40, 100*time.Millisecond, Gate{
		MaxLatency: time.Nanosecond, MaxLag: 5 * time.Second, MaxErrorRate: 0.5, MaxRPS: 80,
	})
	if err != nil {
		t.Fatalf("FindMax: %v", err)
	}
	if res.MaxSustainableRPS != 0 || res.GeneratorLimited {
		t.Fatalf("result = %+v, want zero capacity, not generator-limited", res)
	}
	if len(res.Trials) != 1 || res.Trials[0].Pass {
		t.Fatalf("trials = %+v, want one failing trial", res.Trials)
	}
}

// TestFindMaxGeneratorLimited: when the lag gate trips, the failure is
// attributed to the generator, not the server.
func TestFindMaxGeneratorLimited(t *testing.T) {
	site, p := testSite(t)
	ts := httptest.NewServer(server.New(StoreFromSite(site), server.Config{}))
	defer ts.Close()
	g, err := New(Config{ServerURL: ts.URL, Site: site, Profile: p, Clients: 5, Seed: 3,
		Timeout: time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Lag is quantized to histogram buckets, so any dispatch reports at
	// least the first bound — a sub-bucket MaxLag always trips.
	res, err := g.FindMax(context.Background(), 40, 100*time.Millisecond, Gate{
		MaxLag: time.Nanosecond, MaxRPS: 80,
	})
	if err != nil {
		t.Fatalf("FindMax: %v", err)
	}
	if !res.GeneratorLimited {
		t.Fatalf("result = %+v, want generator-limited", res)
	}
}

// TestScenarioBuilders pins the shapes of the four scenario modes.
func TestScenarioBuilders(t *testing.T) {
	sw := Sweep(10, 10, 30, time.Second)
	if len(sw.Slots) != 3 || sw.Slots[0].RPS != 10 || sw.Slots[2].RPS != 30 {
		t.Fatalf("sweep slots = %+v", sw.Slots)
	}
	st := Steady(50, 25*time.Second, 10*time.Second)
	if len(st.Slots) != 3 || st.Slots[2].Duration != 5*time.Second {
		t.Fatalf("steady slots = %+v", st.Slots)
	}
	b := Burst(20, 5, time.Second, 40, 0.5)
	if len(b.Slots) != 6 {
		t.Fatalf("burst slots = %d, want 6", len(b.Slots))
	}
	if b.Slots[2].RPS != 100 || b.Slots[2].HeadShift != 40 || b.Slots[2].ColdShare != 0.5 {
		t.Fatalf("burst peak slot = %+v", b.Slots[2])
	}
	if b.Slots[0].HeadShift != 0 || b.Slots[4].HeadShift != 40 {
		t.Fatalf("burst warm/recover head shifts = %d/%d, want 0/40",
			b.Slots[0].HeadShift, b.Slots[4].HeadShift)
	}
	d := Diurnal(100, 12, time.Second)
	if len(d.Slots) != 12 {
		t.Fatalf("diurnal slots = %d, want 12", len(d.Slots))
	}
	var min, max float64 = d.Slots[0].RPS, d.Slots[0].RPS
	for _, s := range d.Slots {
		if s.RPS < min {
			min = s.RPS
		}
		if s.RPS > max {
			max = s.RPS
		}
	}
	if min > 11 || max < 90 {
		t.Fatalf("diurnal range [%v, %v], want trough ~10 and peak ~100", min, max)
	}
	// Degenerate scenarios are rejected before dispatch.
	for _, bad := range []Scenario{
		{Name: "empty"},
		{Name: "negrps", Slots: []Slot{{RPS: -1, Duration: time.Second}}},
		{Name: "nodur", Slots: []Slot{{RPS: 1}}},
		{Name: "cold", Slots: []Slot{{RPS: 1, Duration: time.Second, ColdShare: 1.5}}},
	} {
		if err := bad.validate(); err == nil {
			t.Errorf("scenario %q validated", bad.Name)
		}
	}
}

// TestNavigatorWalk checks head-shift and determinism of the walk
// itself, independent of HTTP.
func TestNavigatorWalk(t *testing.T) {
	site, p := testSite(t)
	nav, err := NewNavigator(site, p)
	if err != nil {
		t.Fatalf("NewNavigator: %v", err)
	}
	// Same seed, same walk.
	walk := func(seed int64, shift int) []int {
		rng := rand.New(rand.NewSource(seed))
		var pages []int
		cur, _ := nav.Start(rng, shift)
		pages = append(pages, cur)
		for i := 0; i < 20; i++ {
			next, ok := nav.Next(rng, cur, shift)
			if !ok {
				break
			}
			cur = next
			pages = append(pages, cur)
		}
		return pages
	}
	a, b := walk(5, 0), walk(5, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, a, b)
		}
	}
	// Head shift moves session heads off the unshifted entry set: with
	// full head bias, unshifted heads come from the top EntryCount
	// pages, shifted heads from a disjoint window.
	p2 := p
	p2.PopularHeadBias = 1
	nav2, err := NewNavigator(site, p2)
	if err != nil {
		t.Fatalf("NewNavigator: %v", err)
	}
	rng := rand.New(rand.NewSource(9))
	topSet := map[int]bool{}
	for _, idx := range nav2.byWeight[:p.EntryCount] {
		topSet[idx] = true
	}
	for i := 0; i < 50; i++ {
		head, _ := nav2.Start(rng, 0)
		if !topSet[head] {
			t.Fatalf("unshifted head %d outside the entry set", head)
		}
		shifted, _ := nav2.Start(rng, p.EntryCount)
		if topSet[shifted] {
			t.Fatalf("shifted head %d still in the unshifted entry set", shifted)
		}
	}
}
