// Package loadgen is an open-loop HTTP load generator for the
// prefetching server: virtual clients walk the synthetic site with the
// same statistical structure tracegen gives the offline traces
// (popular session heads, primary-link continuations, hub returns),
// follow the X-Prefetch hint protocol through server.Client, and fire
// requests on a fixed arrival schedule regardless of completions — so
// latency under load is measured from each request's scheduled arrival
// time and never suffers coordinated omission.
//
// The package exists because the paper's claims are throughput-shaped:
// "low storage" and "fast prediction" only matter at some request
// rate. Generator.Run drives a scenario (steady rate, stepped sweep,
// flash-crowd burst, diurnal cycle) and reports per-slot open-loop
// latency quantiles, error rates, schedule lag, and the server's own
// /debug/slo verdicts; Generator.FindMax binary-searches for the
// highest steady rate the server sustains under an SLO gate — the
// max-sustainable-RPS headline metric.
package loadgen

import (
	"fmt"
	"math/rand"
	"sort"

	"pbppm/internal/server"
	"pbppm/internal/tracegen"
)

// Navigator chooses which URL a virtual client requests next,
// reproducing tracegen's session walk (Regularities 1–3) on an
// existing Site. All randomness comes from the caller's injected
// *rand.Rand, so a seeded dispatcher emits a deterministic request
// sequence regardless of response timing.
type Navigator struct {
	site *tracegen.Site
	p    tracegen.Profile
	// byWeight lists page indices by descending intended popularity;
	// cum is the matching cumulative weight table. Rebuilt here because
	// Site keeps its own tables private.
	byWeight []int
	cum      []float64
	// grade buckets each page into the paper's 0–3 popularity grades,
	// which modulate session length (Regularity 2).
	grade []int
}

// NewNavigator builds a navigator over a site generated from p.
func NewNavigator(site *tracegen.Site, p tracegen.Profile) (*Navigator, error) {
	if site == nil || len(site.Pages) == 0 {
		return nil, fmt.Errorf("loadgen: navigator needs a non-empty site")
	}
	n := &Navigator{site: site, p: p}
	n.byWeight = make([]int, len(site.Pages))
	for i := range n.byWeight {
		n.byWeight[i] = i
	}
	sort.Slice(n.byWeight, func(a, b int) bool {
		wa, wb := site.Pages[n.byWeight[a]].Weight, site.Pages[n.byWeight[b]].Weight
		if wa != wb {
			return wa > wb
		}
		return n.byWeight[a] < n.byWeight[b]
	})
	n.cum = make([]float64, len(n.byWeight))
	sum := 0.0
	for i, idx := range n.byWeight {
		sum += site.Pages[idx].Weight
		n.cum[i] = sum
	}
	n.grade = make([]int, len(site.Pages))
	total := len(site.Pages)
	for pos, idx := range n.byWeight {
		switch {
		case pos < total/50+1:
			n.grade[idx] = 3
		case pos < total/10+1:
			n.grade[idx] = 2
		case pos < total/3+1:
			n.grade[idx] = 1
		}
	}
	return n, nil
}

// entry picks a page from the popular entry set. headShift slides the
// set down the popularity order — a flash crowd converging on pages
// that were not the head yesterday, which invalidates the model's
// learned session starts until maintenance catches up.
func (n *Navigator) entry(rng *rand.Rand, headShift int) int {
	top := n.p.EntryCount
	if top <= 0 || top > len(n.byWeight) {
		top = len(n.byWeight)
	}
	shift := headShift
	if max := len(n.byWeight) - top; shift > max {
		shift = max
	}
	if shift < 0 {
		shift = 0
	}
	return n.byWeight[shift+rng.Intn(top)]
}

// sampleByWeight draws a page from the intended popularity
// distribution.
func (n *Navigator) sampleByWeight(rng *rand.Rand) int {
	total := n.cum[len(n.cum)-1]
	x := rng.Float64() * total
	i := sort.SearchFloat64s(n.cum, x)
	if i >= len(n.byWeight) {
		i = len(n.byWeight) - 1
	}
	return n.byWeight[i]
}

// Start opens a session: a head page (biased toward the popular entry
// set, Regularity 1) and the session's continue probability, boosted
// by the head's popularity grade (Regularity 2).
func (n *Navigator) Start(rng *rand.Rand, headShift int) (page int, pCont float64) {
	if rng.Float64() < n.p.PopularHeadBias {
		page = n.entry(rng, headShift)
	} else {
		page = n.sampleByWeight(rng)
	}
	pCont = n.p.ContinueBase + n.p.ContinueHeadBoost*float64(n.grade[page])
	if pCont > 0.93 {
		pCont = 0.93
	}
	return page, pCont
}

// Next chooses the click after cur: an off-structure popular jump (hub
// return or entry-set scatter), the primary link, or a uniform pick
// among the remaining links (Regularity 3). ok is false when the page
// is a dead end.
func (n *Navigator) Next(rng *rand.Rand, cur, headShift int) (next int, ok bool) {
	pg := &n.site.Pages[cur]
	switch {
	case rng.Float64() < n.p.JumpPopularProb:
		if rng.Float64() < n.p.HubJumpShare {
			return pg.Hub, true
		}
		return n.entry(rng, headShift), true
	case pg.Primary >= 0 && rng.Float64() < n.p.PrimaryProb:
		return pg.Primary, true
	case len(pg.Links) > 0:
		return pg.Links[rng.Intn(len(pg.Links))], true
	default:
		return 0, false
	}
}

// URL returns the page's request path.
func (n *Navigator) URL(page int) string { return n.site.Pages[page].URL }

// Pages returns the site size.
func (n *Navigator) Pages() int { return len(n.site.Pages) }

// StoreFromSite materializes synthetic bodies for every page and image
// of a site — the content a capacity run serves.
func StoreFromSite(site *tracegen.Site) server.MapStore {
	store := server.MapStore{}
	for _, pg := range site.Pages {
		store[pg.URL] = server.Document{
			URL:         pg.URL,
			Body:        make([]byte, pg.Size),
			ContentType: "text/html; charset=utf-8",
		}
		for _, img := range pg.Images {
			store[img.URL] = server.Document{
				URL:         img.URL,
				Body:        make([]byte, img.Size),
				ContentType: "image/gif",
			}
		}
	}
	return store
}
