package loadgen

import (
	"fmt"
	"math"
	"time"
)

// Slot is one segment of a load scenario: a target arrival rate held
// for a duration, with optional workload perturbations.
type Slot struct {
	// Label names the slot in tables and artifacts ("warm", "rps50",
	// "burst", ...).
	Label string
	// RPS is the open-loop arrival rate: RPS*Duration requests are
	// dispatched on a fixed schedule across the slot, whether or not
	// earlier ones have completed.
	RPS float64
	// Duration is how long the slot holds its rate.
	Duration time.Duration
	// HeadShift slides the popular entry set down the popularity order
	// for sessions started in this slot — the flash-crowd head change.
	HeadShift int
	// ColdShare is the fraction of arrivals issued by never-seen
	// clients (fresh IDs, empty caches): a cold-start flood that makes
	// the server open a session per request.
	ColdShare float64
	// requests overrides the computed RPS*Duration count; tests use it.
	requests int
}

// Requests returns the number of arrivals the slot dispatches.
func (s Slot) Requests() int {
	if s.requests > 0 {
		return s.requests
	}
	n := int(math.Round(s.RPS * s.Duration.Seconds()))
	if n < 1 && s.RPS > 0 {
		n = 1
	}
	return n
}

// Interval returns the fixed inter-arrival spacing within the slot.
func (s Slot) Interval() time.Duration {
	n := s.Requests()
	if n <= 0 {
		return s.Duration
	}
	return s.Duration / time.Duration(n)
}

// Scenario is a named sequence of slots.
type Scenario struct {
	Name  string
	Slots []Slot
}

// Duration returns the scheduled length of the scenario (completions
// may trail it by up to the client timeout).
func (sc Scenario) Duration() time.Duration {
	var d time.Duration
	for _, s := range sc.Slots {
		d += s.Duration
	}
	return d
}

// validate rejects degenerate scenarios before the dispatcher starts.
func (sc Scenario) validate() error {
	if len(sc.Slots) == 0 {
		return fmt.Errorf("loadgen: scenario %q has no slots", sc.Name)
	}
	for i, s := range sc.Slots {
		if s.RPS < 0 || s.Duration <= 0 {
			return fmt.Errorf("loadgen: scenario %q slot %d: rps %v / duration %v invalid",
				sc.Name, i, s.RPS, s.Duration)
		}
		if s.ColdShare < 0 || s.ColdShare > 1 {
			return fmt.Errorf("loadgen: scenario %q slot %d: cold share %v outside [0,1]",
				sc.Name, i, s.ColdShare)
		}
	}
	return nil
}

// Steady holds one rate for a total duration, reported in slotDur
// chunks so drift over time is visible.
func Steady(rps float64, total, slotDur time.Duration) Scenario {
	sc := Scenario{Name: "steady"}
	for off := time.Duration(0); off < total; off += slotDur {
		d := slotDur
		if rem := total - off; rem < d {
			d = rem
		}
		sc.Slots = append(sc.Slots, Slot{
			Label:    fmt.Sprintf("t+%s", off.Round(time.Second)),
			RPS:      rps,
			Duration: d,
		})
	}
	return sc
}

// Sweep steps the rate from start to target (inclusive) in fixed
// increments, one slot per step — the capacity staircase. A
// non-positive step degenerates to a single slot at start.
func Sweep(start, step, target float64, slotDur time.Duration) Scenario {
	sc := Scenario{Name: "sweep"}
	if step <= 0 || target < start {
		target, step = start, 1
	}
	for rps := start; rps <= target+1e-9; rps += step {
		sc.Slots = append(sc.Slots, Slot{
			Label:    fmt.Sprintf("rps%g", rps),
			RPS:      rps,
			Duration: slotDur,
		})
	}
	return sc
}

// Burst models a flash crowd: warm slots at the base rate, then a
// burst at mult× the base with the popular head shifted and a cold
// client flood, then recovery back at the base rate (still on the
// shifted head — the crowd does not leave when the spike ends, so the
// recovery slots show whether maintenance re-learned the new heads).
func Burst(base, mult float64, slotDur time.Duration, headShift int, coldShare float64) Scenario {
	if mult < 1 {
		mult = 1
	}
	return Scenario{Name: "burst", Slots: []Slot{
		{Label: "warm1", RPS: base, Duration: slotDur},
		{Label: "warm2", RPS: base, Duration: slotDur},
		{Label: "burst1", RPS: base * mult, Duration: slotDur, HeadShift: headShift, ColdShare: coldShare},
		{Label: "burst2", RPS: base * mult, Duration: slotDur, HeadShift: headShift, ColdShare: coldShare},
		{Label: "recover1", RPS: base, Duration: slotDur, HeadShift: headShift},
		{Label: "recover2", RPS: base, Duration: slotDur, HeadShift: headShift},
	}}
}

// Diurnal samples one sine-shaped day compressed into slots×slotDur:
// rate swings between trough and peak with the trough first, the
// compressed analogue of tracegen's overnight-to-afternoon curve.
func Diurnal(peak float64, slots int, slotDur time.Duration) Scenario {
	if slots < 2 {
		slots = 2
	}
	trough := peak / 10
	sc := Scenario{Name: "diurnal"}
	for i := 0; i < slots; i++ {
		// Phase 0 at the trough, peak mid-cycle.
		phase := 2 * math.Pi * float64(i) / float64(slots)
		rps := trough + (peak-trough)*(1-math.Cos(phase))/2
		sc.Slots = append(sc.Slots, Slot{
			Label:    fmt.Sprintf("h%02d", i),
			RPS:      math.Round(rps*10) / 10,
			Duration: slotDur,
		})
	}
	return sc
}
