package lrs

import (
	"reflect"
	"testing"
)

// TestCloneDeltaMergeEquivalence checks the LRS-specific wrinkle of the
// incremental contract: a delta can promote a once-seen sequence across
// the repeat threshold, so the clone must carry the full suffix trie
// (including count-1 nodes), not just the pruned prediction view.
func TestCloneDeltaMergeEquivalence(t *testing.T) {
	base := [][]string{{"/a", "/b", "/c"}, {"/x", "/y"}}
	delta := [][]string{{"/a", "/b", "/c"}, {"/x", "/y"}}

	live := New(Config{})
	for _, s := range base {
		live.TrainSequence(s)
	}
	live.SetUsageRecording(false) // publish shape: materializes the pruned view
	baseNodes := live.NodeCount()

	shard := live.NewShard()
	for _, s := range delta {
		shard.TrainSequence(s)
	}
	merged := live.Clone().(*Model)
	merged.MergeShard(shard)

	retrain := New(Config{})
	for _, s := range append(append([][]string{}, base...), delta...) {
		retrain.TrainSequence(s)
	}

	if got, want := merged.Patterns(), retrain.Patterns(); !reflect.DeepEqual(got, want) {
		t.Errorf("patterns: merged %+v, retrain %+v", got, want)
	}
	for _, ctx := range [][]string{{"/a"}, {"/a", "/b"}, {"/x"}} {
		if got, want := merged.Predict(ctx), retrain.Predict(ctx); !reflect.DeepEqual(got, want) {
			t.Errorf("Predict(%v): merged %+v, retrain %+v", ctx, got, want)
		}
	}
	// The once-seen sequences crossed the threshold in the merged model
	// only; the live model still holds its smaller pruned view.
	if live.NodeCount() != baseNodes {
		t.Errorf("delta merge mutated the live model: %d -> %d nodes", baseNodes, live.NodeCount())
	}
	if merged.NodeCount() <= baseNodes {
		t.Errorf("delta did not promote repeating sequences: %d <= %d", merged.NodeCount(), baseNodes)
	}
}
