package lrs

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"pbppm/internal/markov"
)

// wireModel is the gob image of an LRS model. The full suffix trie is
// persisted (not just the pruned view) so later training can still
// promote sequences across the repeat threshold.
type wireModel struct {
	Cfg  Config
	Full []byte
}

// Encode persists the trained model.
func (m *Model) Encode(w io.Writer) error {
	var buf bytes.Buffer
	if err := m.full.Encode(&buf); err != nil {
		return fmt.Errorf("lrs: encoding suffix trie: %w", err)
	}
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(wireModel{Cfg: m.cfg, Full: buf.Bytes()}); err != nil {
		return fmt.Errorf("lrs: encoding model: %w", err)
	}
	return bw.Flush()
}

// DecodeModel reads a model written by Encode.
func DecodeModel(r io.Reader) (*Model, error) {
	var img wireModel
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&img); err != nil {
		return nil, fmt.Errorf("lrs: decoding model: %w", err)
	}
	full, err := markov.DecodeTree(bytes.NewReader(img.Full))
	if err != nil {
		return nil, fmt.Errorf("lrs: decoding suffix trie: %w", err)
	}
	m := New(img.Cfg)
	m.full = full
	m.dirty = true
	return m, nil
}
