package lrs

import (
	"bytes"
	"reflect"
	"testing"
)

func TestModelEncodeDecode(t *testing.T) {
	m := New(Config{})
	for i := 0; i < 3; i++ {
		m.TrainSequence([]string{"a", "b", "c"})
	}
	m.TrainSequence([]string{"x", "once"})

	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeModel(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.NodeCount() != m.NodeCount() {
		t.Errorf("NodeCount = %d, want %d", got.NodeCount(), m.NodeCount())
	}
	if !reflect.DeepEqual(got.Predict([]string{"a", "b"}), m.Predict([]string{"a", "b"})) {
		t.Error("predictions differ after round trip")
	}
	// The full trie survives: a second occurrence of the singleton
	// promotes it into the pruned tree after decode.
	got.TrainSequence([]string{"x", "once"})
	if got.Tree().Match([]string{"x", "once"}) == nil {
		t.Error("decoded model lost the full suffix trie")
	}
}

func TestDecodeModelError(t *testing.T) {
	if _, err := DecodeModel(bytes.NewReader([]byte("?"))); err == nil {
		t.Error("junk accepted")
	}
}
