// Package lrs implements the Longest-Repeating-Subsequences PPM model
// of Pitkow & Pirolli (USENIX '99), the space-optimized baseline in
// §3.2 of the paper: only URL sequences accessed at least twice are
// kept in the prediction tree.
//
// Construction follows the paper's description — "each branch in the
// model is further cut and paste into multiple sub-branches starting
// from different URLs", i.e. every suffix of each repeating pattern
// appears as its own branch. We obtain exactly that tree by building
// the full suffix trie of the training sessions and pruning every node
// whose occurrence count is below the repeat threshold: a suffix of a
// repeating subsequence is itself repeating, so all sub-branches
// survive with their true occurrence counts.
package lrs

import (
	"pbppm/internal/markov"
	"pbppm/internal/ppm"
)

// Config parameterizes the LRS model.
type Config struct {
	// RepeatThreshold is the minimum occurrence count for a sequence to
	// be considered "frequently repeating"; zero selects the paper's 2.
	RepeatThreshold int64
	// Threshold is the minimum conditional probability for a prefetch
	// candidate; zero selects the paper's 0.25.
	Threshold float64
	// MaxHeight optionally caps branch heights; <= 0 (the paper's
	// setting) leaves them unbounded so the longest repeating
	// subsequences are kept whole.
	MaxHeight int
}

func (c Config) repeat() int64 {
	if c.RepeatThreshold <= 0 {
		return 2
	}
	return c.RepeatThreshold
}

func (c Config) threshold() float64 { return ppm.ThresholdOrDefault(c.Threshold) }

// Model is an LRS-PPM predictor.
type Model struct {
	cfg Config
	// full is the complete suffix trie including count-1 nodes; it is
	// retained so that later training can promote sequences across the
	// repeat threshold.
	full *markov.Tree
	// pruned is the repeating-only prediction tree, rebuilt lazily
	// after training.
	pruned *markov.Tree
	dirty  bool
}

var _ markov.Predictor = (*Model)(nil)
var _ markov.BufferedPredictor = (*Model)(nil)
var _ markov.Freezer = (*Model)(nil)
var _ markov.UtilizationReporter = (*Model)(nil)
var _ markov.UsageRecorder = (*Model)(nil)
var _ markov.ShardedTrainer = (*Model)(nil)
var _ markov.IncrementalTrainer = (*Model)(nil)

// New returns an empty LRS model.
func New(cfg Config) *Model {
	return &Model{cfg: cfg, full: markov.NewTree(), pruned: markov.NewTree()}
}

// Name identifies the model.
func (m *Model) Name() string { return "LRS-PPM" }

// TrainSequence inserts every suffix of seq into the underlying suffix
// trie. The prediction tree is rebuilt lazily on the next Predict or
// NodeCount call.
func (m *Model) TrainSequence(seq []string) {
	for i := range seq {
		m.full.Insert(seq[i:], m.cfg.MaxHeight, 1)
	}
	m.dirty = true
}

// rebuild materializes the repeating-only prediction tree. The copy
// shares the full trie's symbol table (CopyIf), so it costs no URL
// duplication; that is safe because the model's contract already
// forbids training concurrently with other methods.
func (m *Model) rebuild() {
	if !m.dirty {
		return
	}
	m.dirty = false
	min := m.cfg.repeat()
	out := m.full.CopyIf(func(_, child *markov.Node) bool {
		return child.Count >= min
	})
	out.SetUsageRecording(m.pruned.UsageRecording())
	m.pruned = out
}

// NewShard returns an empty model with the same configuration, for
// markov.TrainAllParallel.
func (m *Model) NewShard() markov.Predictor { return New(m.cfg) }

// MergeShard folds a shard trained by NewShard into the full suffix
// trie; the repeating-only view is rebuilt lazily as usual.
func (m *Model) MergeShard(shard markov.Predictor) {
	m.full.Merge(shard.(*Model).full)
	m.dirty = true
}

// Clone returns a deep copy of the model for incremental maintenance.
// Both the full suffix trie and the pruned prediction view are copied,
// so later training or delta merges into the clone can promote
// sequences across the repeat threshold without touching the receiver.
func (m *Model) Clone() markov.Predictor {
	return &Model{
		cfg:    m.cfg,
		full:   m.full.Clone(),
		pruned: m.pruned.Clone(),
		dirty:  m.dirty,
	}
}

// Predict finds the deepest repeating-sequence node matching the
// longest suffix of the context — the paper's "longest matching method"
// — and returns its children above the probability threshold.
func (m *Model) Predict(context []string) []markov.Prediction {
	return m.PredictInto(context, nil)
}

// PredictInto is Predict writing into buf per the
// markov.BufferedPredictor buffer-ownership contract.
func (m *Model) PredictInto(context []string, buf []markov.Prediction) []markov.Prediction {
	m.rebuild()
	n, order := m.pruned.LongestMatch(context)
	if n == nil {
		return buf[:0]
	}
	m.pruned.MarkPath(context[len(context)-order:])
	return m.pruned.PredictFromInto(n, m.cfg.threshold(), order, buf)
}

// Freeze materializes the repeating-only prediction tree and returns
// its immutable arena-backed snapshot: identical predictions with no
// per-node GC load and no allocations on the serving path. The full
// suffix trie is a training-time artifact and is not frozen.
func (m *Model) Freeze() markov.Predictor {
	m.rebuild()
	return markov.NewFrozenTree(m.pruned.Freeze(), m.Name(), m.cfg.threshold(), 0)
}

// NodeCount reports the storage requirement of the repeating-only tree,
// the paper's space metric for LRS. The retained full trie is a
// training-time artifact and is not part of the served model.
func (m *Model) NodeCount() int {
	m.rebuild()
	return m.pruned.NodeCount()
}

// Utilization reports the fraction of stored root-to-leaf paths used by
// predictions since the last ResetUsage.
func (m *Model) Utilization() float64 {
	m.rebuild()
	return m.pruned.Utilization()
}

// ResetUsage clears utilization marks.
func (m *Model) ResetUsage() {
	m.rebuild()
	m.pruned.ResetUsage()
}

// SetUsageRecording attaches or detaches prediction-time usage marking.
// Detaching also materializes the lazily-rebuilt pruned tree, so that
// subsequent Predict calls on the published model perform no writes at
// all and are safe for unsynchronized concurrent use.
func (m *Model) SetUsageRecording(on bool) {
	m.rebuild()
	m.pruned.SetUsageRecording(on)
}

// UsageRecording reports whether usage marking is enabled.
func (m *Model) UsageRecording() bool { return m.pruned.UsageRecording() }

// Patterns returns the longest repeating subsequences currently stored:
// every root-to-leaf path of the repeating-only tree, with the leaf's
// occurrence count. Paths are emitted in deterministic (sorted) order.
// This is primarily a diagnostic and test hook.
func (m *Model) Patterns() []Pattern {
	m.rebuild()
	var out []Pattern
	m.pruned.Walk(func(path []string, n *markov.Node) {
		if n.IsLeaf() {
			p := make([]string, len(path))
			copy(p, path)
			out = append(out, Pattern{URLs: p, Count: n.Count})
		}
	})
	return out
}

// Pattern is one repeating subsequence kept by the model.
type Pattern struct {
	URLs  []string
	Count int64
}

// Tree exposes the repeating-only prediction tree for diagnostics.
func (m *Model) Tree() *markov.Tree {
	m.rebuild()
	return m.pruned
}
