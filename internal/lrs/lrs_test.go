package lrs

import (
	"strings"
	"testing"

	"pbppm/internal/markov"
	"pbppm/internal/ppm"
)

func TestName(t *testing.T) {
	if got := New(Config{}).Name(); got != "LRS-PPM" {
		t.Errorf("Name = %q", got)
	}
}

func TestOnlyRepeatingSequencesKept(t *testing.T) {
	m := New(Config{})
	m.TrainSequence([]string{"a", "b", "c"})
	m.TrainSequence([]string{"a", "b", "d"})
	m.TrainSequence([]string{"x", "y"})

	// a,b repeats (twice); c, d, x, y appear once each.
	tr := m.Tree()
	if tr.Match([]string{"a", "b"}) == nil {
		t.Error("repeating path a>b missing")
	}
	if tr.Match([]string{"a", "b", "c"}) != nil {
		t.Error("singleton path a>b>c kept")
	}
	if tr.Match([]string{"x"}) != nil {
		t.Error("singleton root x kept")
	}
	// Suffix branch b (count 2) must also be present — the "cut and
	// paste" sub-branch duplication.
	if tr.Match([]string{"b"}) == nil {
		t.Error("suffix branch b missing")
	}
	// Nodes: a(2), a>b(2), b(2) = 3.
	if got := m.NodeCount(); got != 3 {
		t.Errorf("NodeCount = %d, want 3", got)
	}
}

func TestRepeatWithinOneSession(t *testing.T) {
	// A pattern occurring twice inside a single session repeats.
	m := New(Config{})
	m.TrainSequence([]string{"a", "b", "a", "b"})
	if m.Tree().Match([]string{"a", "b"}) == nil {
		t.Error("within-session repeat not detected")
	}
}

func TestLaterTrainingPromotesSequences(t *testing.T) {
	m := New(Config{})
	m.TrainSequence([]string{"p", "q"})
	if m.Tree().Match([]string{"p", "q"}) != nil {
		t.Fatal("single occurrence already in tree")
	}
	m.TrainSequence([]string{"p", "q"})
	if m.Tree().Match([]string{"p", "q"}) == nil {
		t.Error("second occurrence did not promote the sequence")
	}
}

func TestCustomRepeatThreshold(t *testing.T) {
	m := New(Config{RepeatThreshold: 3})
	m.TrainSequence([]string{"a", "b"})
	m.TrainSequence([]string{"a", "b"})
	if m.Tree().Match([]string{"a", "b"}) != nil {
		t.Error("two occurrences kept despite threshold 3")
	}
	m.TrainSequence([]string{"a", "b"})
	if m.Tree().Match([]string{"a", "b"}) == nil {
		t.Error("three occurrences not kept")
	}
}

func TestPredict(t *testing.T) {
	m := New(Config{})
	for i := 0; i < 3; i++ {
		m.TrainSequence([]string{"a", "b", "c"})
	}
	m.TrainSequence([]string{"a", "b", "x"}) // singleton continuation
	ps := m.Predict([]string{"a", "b"})
	if len(ps) != 1 || ps[0].URL != "c" || ps[0].Order != 2 {
		t.Fatalf("Predict = %+v, want c at order 2", ps)
	}
	if ps[0].Probability != 0.75 {
		t.Errorf("P(c|ab) = %v, want 0.75", ps[0].Probability)
	}
}

func TestPredictNoMatch(t *testing.T) {
	m := New(Config{})
	m.TrainSequence([]string{"a", "b"})
	m.TrainSequence([]string{"a", "b"})
	if ps := m.Predict([]string{"zzz"}); ps != nil {
		t.Errorf("Predict(zzz) = %+v", ps)
	}
	// "b" alone repeats; context ending in b matches at order 1 but has
	// no children above threshold (no repeating continuation).
	if ps := m.Predict([]string{"b"}); len(ps) != 0 {
		t.Errorf("Predict(b) = %+v, want none", ps)
	}
}

func TestMaxHeightCap(t *testing.T) {
	m := New(Config{MaxHeight: 2})
	for i := 0; i < 2; i++ {
		m.TrainSequence([]string{"a", "b", "c"})
	}
	if m.Tree().Match([]string{"a", "b", "c"}) != nil {
		t.Error("height cap ignored")
	}
	if m.Tree().Match([]string{"b", "c"}) == nil {
		t.Error("capped suffix branch missing")
	}
}

func TestPatterns(t *testing.T) {
	m := New(Config{})
	for i := 0; i < 2; i++ {
		m.TrainSequence([]string{"a", "b", "c"})
	}
	pats := m.Patterns()
	// Expected leaves: a>b>c (2), b>c (2), c is interior? No: c as a
	// root branch is a leaf with count 2. So patterns: abc, bc, c.
	if len(pats) != 3 {
		t.Fatalf("Patterns = %+v, want 3", pats)
	}
	var joined []string
	for _, p := range pats {
		joined = append(joined, strings.Join(p.URLs, ">"))
		if p.Count != 2 {
			t.Errorf("pattern %v count = %d, want 2", p.URLs, p.Count)
		}
	}
	want := map[string]bool{"a>b>c": true, "b>c": true, "c": true}
	for _, j := range joined {
		if !want[j] {
			t.Errorf("unexpected pattern %q", j)
		}
	}
}

func TestNodeCountSmallerThanStandard(t *testing.T) {
	// With mostly unique traffic, LRS stores far fewer nodes than the
	// full suffix trie.
	m := New(Config{})
	full := 0
	for i := 0; i < 50; i++ {
		s := []string{"home", urlN(i), urlN(i + 100)}
		m.TrainSequence(s)
		full += 3 + 2 + 1
	}
	for i := 0; i < 10; i++ {
		m.TrainSequence([]string{"home", "news", "sports"})
	}
	if got := m.NodeCount(); got >= full/4 {
		t.Errorf("LRS NodeCount = %d, not much smaller than the %d-node suffix trie", got, full)
	}
	if m.Tree().Match([]string{"home", "news", "sports"}) == nil {
		t.Error("hot path missing")
	}
}

func urlN(i int) string {
	return "/page" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestUtilization(t *testing.T) {
	m := New(Config{})
	for i := 0; i < 2; i++ {
		m.TrainSequence([]string{"a", "b"})
		m.TrainSequence([]string{"x", "y"})
	}
	if got := m.Utilization(); got != 0 {
		t.Errorf("fresh utilization = %v", got)
	}
	m.Predict([]string{"a"})
	if got := m.Utilization(); got <= 0 || got >= 1 {
		t.Errorf("utilization = %v, want in (0,1)", got)
	}
	m.ResetUsage()
	if m.Utilization() != 0 {
		t.Error("ResetUsage failed")
	}
}

func TestUsageMarksSurviveRetrainRebuild(t *testing.T) {
	// Usage marks live on the pruned tree, which is rebuilt after
	// training; utilization resets then — acceptable because the
	// simulator trains fully before measuring. This test documents the
	// behavior.
	m := New(Config{})
	m.TrainSequence([]string{"a", "b"})
	m.TrainSequence([]string{"a", "b"})
	m.Predict([]string{"a"})
	if m.Utilization() == 0 {
		t.Fatal("prediction did not mark usage")
	}
	m.TrainSequence([]string{"c", "d"})
	if got := m.Utilization(); got != 0 {
		t.Errorf("utilization after retrain = %v, want 0 (rebuilt)", got)
	}
}

func TestPredictorInterface(t *testing.T) {
	var p markov.Predictor = New(Config{})
	markov.TrainAll(p, [][]string{{"a", "b"}, {"a", "b"}, {"a", "b"}})
	ps := p.Predict([]string{"a"})
	if len(ps) != 1 || ps[0].URL != "b" {
		t.Errorf("interface Predict = %+v", ps)
	}
}

func TestNoThresholdPredictsEverything(t *testing.T) {
	m := New(Config{Threshold: ppm.NoThreshold})
	for i := 0; i < 9; i++ {
		m.TrainSequence([]string{"a", "b"})
	}
	for i := 0; i < 2; i++ {
		m.TrainSequence([]string{"a", "c"}) // P(c|a)=2/11, below the default 0.25
	}
	ps := m.Predict([]string{"a"})
	if len(ps) != 2 {
		t.Errorf("Predict with NoThreshold = %+v, want both b and c", ps)
	}
}

// TestShardedTrainingEquivalence drives NewShard/MergeShard directly
// and checks the merged suffix trie yields the same repeating-only
// model as serial training.
func TestShardedTrainingEquivalence(t *testing.T) {
	var seqs [][]string
	urls := []string{"a", "b", "c", "d"}
	for i := 0; i < 80; i++ {
		s := make([]string, i%3+2)
		for j := range s {
			s[j] = urls[(i*5+j)%len(urls)]
		}
		seqs = append(seqs, s)
	}
	serial := New(Config{})
	markov.TrainAll(serial, seqs)

	sharded := New(Config{})
	shards := []markov.Predictor{sharded.NewShard(), sharded.NewShard(), sharded.NewShard()}
	for i, s := range seqs {
		shards[i%len(shards)].TrainSequence(s)
	}
	for _, sh := range shards {
		sharded.MergeShard(sh)
	}

	if got, want := sharded.NodeCount(), serial.NodeCount(); got != want {
		t.Fatalf("NodeCount = %d, serial %d", got, want)
	}
	gotPat, wantPat := sharded.Patterns(), serial.Patterns()
	if len(gotPat) != len(wantPat) {
		t.Fatalf("Patterns: %d vs serial %d", len(gotPat), len(wantPat))
	}
	for i := range gotPat {
		if gotPat[i].Count != wantPat[i].Count ||
			strings.Join(gotPat[i].URLs, ">") != strings.Join(wantPat[i].URLs, ">") {
			t.Fatalf("pattern %d: %+v vs serial %+v", i, gotPat[i], wantPat[i])
		}
	}
}
