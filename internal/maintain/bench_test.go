package maintain

import (
	"fmt"
	"testing"
	"time"
)

// benchWindow fills a maintainer with n synthetic sessions drawn from a
// shared URL universe, so the trained tree has realistic branch reuse.
func benchWindow(b *testing.B, m *Maintainer, n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		m.Observe(mkSession(i%100,
			fmt.Sprintf("/hub%d", i%8),
			fmt.Sprintf("/page%d", i%64),
			fmt.Sprintf("/leaf%d", i%256)))
	}
}

// BenchmarkFullRebuild retrains the whole window; cost grows with
// window size.
func BenchmarkFullRebuild(b *testing.B) {
	for _, window := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			m, err := New(Config{Factory: pbFactory})
			if err != nil {
				b.Fatal(err)
			}
			benchWindow(b, m, window)
			now := epoch.Add(200 * time.Hour)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Rebuild(now)
			}
		})
	}
}

// BenchmarkDeltaMerge folds a fixed-size delta into the live snapshot;
// across the same window sizes as BenchmarkFullRebuild the per-update
// cost should track the delta (plus the clone), not the window.
func BenchmarkDeltaMerge(b *testing.B) {
	const delta = 64
	for _, window := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("window=%d/delta=%d", window, delta), func(b *testing.B) {
			m, err := New(Config{Factory: pbFactory})
			if err != nil {
				b.Fatal(err)
			}
			benchWindow(b, m, window)
			now := epoch.Add(200 * time.Hour)
			m.Rebuild(now)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := 0; j < delta; j++ {
					m.Observe(mkSession(50,
						fmt.Sprintf("/hub%d", j%8),
						fmt.Sprintf("/page%d", (i+j)%64)))
				}
				b.StartTimer()
				m.DeltaMerge(now)
			}
		})
	}
}

// BenchmarkDeltaMergeByDeltaSize varies the delta at a fixed window,
// the other half of the scaling claim: update cost is O(new sessions).
func BenchmarkDeltaMergeByDeltaSize(b *testing.B) {
	const window = 4000
	for _, delta := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			m, err := New(Config{Factory: pbFactory})
			if err != nil {
				b.Fatal(err)
			}
			benchWindow(b, m, window)
			now := epoch.Add(200 * time.Hour)
			m.Rebuild(now)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := 0; j < delta; j++ {
					m.Observe(mkSession(50,
						fmt.Sprintf("/hub%d", j%8),
						fmt.Sprintf("/page%d", (i+j)%64)))
				}
				b.StartTimer()
				m.DeltaMerge(now)
			}
		})
	}
}
