package maintain

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"pbppm/internal/markov"
	"pbppm/internal/obs"
	"pbppm/internal/popularity"
)

// DefaultMaxSnapshotBytes bounds a follower's download when
// FollowerConfig.MaxBytes is zero: 1 GiB, far above any realistic
// model but low enough that a corrupt Content-Length cannot OOM the
// process.
const DefaultMaxSnapshotBytes = 1 << 30

// Swap-failure reasons recorded in pbppm_snapshot_swap_failures_total.
const (
	// swapFetch: the HTTP round trip failed — connection refused, cut
	// mid-transfer, non-2xx status, or an over-size payload.
	swapFetch = "fetch"
	// swapChecksum: the payload arrived whole but its CRC trailer does
	// not match — bit rot or truncation the transport did not surface.
	swapChecksum = "checksum"
	// swapDecode: the checksum held but a section would not decode — a
	// kind this process does not link, a corrupt model image, a foreign
	// arena byte order.
	swapDecode = "decode"
	// swapInstall: the model decoded but the local publish gate rejected
	// it (e.g. empty model over a trained one) or panicked.
	swapInstall = "install"
)

// followerMetrics: the distribution channel's follower-side metrics.
type followerMetrics struct {
	installedVersion *obs.Gauge
	versionLag       *obs.Gauge
	fetchedBytes     *obs.Counter
	installs         *obs.Counter
	failFetch        *obs.Counter
	failChecksum     *obs.Counter
	failDecode       *obs.Counter
	failInstall      *obs.Counter
}

func newFollowerMetrics(reg *obs.Registry) *followerMetrics {
	reason := func(v string) obs.Label { return obs.Label{Name: "reason", Value: v} }
	const failHelp = "Snapshot downloads that did not become the live model, by reason; the previous model stayed live."
	return &followerMetrics{
		installedVersion: reg.Gauge("pbppm_snapshot_installed_version",
			"Version of the last snapshot successfully installed from the publisher."),
		versionLag: reg.Gauge("pbppm_snapshot_version_lag",
			"Publisher's offered version minus the installed version; nonzero means a download or install is failing."),
		fetchedBytes: reg.Counter("pbppm_snapshot_fetched_bytes_total",
			"Snapshot payload bytes downloaded from the publisher."),
		installs: reg.Counter("pbppm_snapshot_installs_total",
			"Snapshots downloaded, validated, and swapped in as the live model."),
		failFetch:    reg.Counter("pbppm_snapshot_swap_failures_total", failHelp, reason(swapFetch)),
		failChecksum: reg.Counter("pbppm_snapshot_swap_failures_total", failHelp, reason(swapChecksum)),
		failDecode:   reg.Counter("pbppm_snapshot_swap_failures_total", failHelp, reason(swapDecode)),
		failInstall:  reg.Counter("pbppm_snapshot_swap_failures_total", failHelp, reason(swapInstall)),
	}
}

// FollowerConfig parameterizes a Follower.
type FollowerConfig struct {
	// URL is the publisher's snapshot endpoint, e.g.
	// "http://10.0.0.1:8081/snapshot"; required.
	URL string
	// Install receives every validated snapshot; required. It must swap
	// the model and ranking in atomically (Maintainer.InstallSnapshot
	// does) and return an error to reject the snapshot — the follower
	// keeps its previous ETag so the next poll retries.
	Install func(model markov.Predictor, rank *popularity.Ranking) error
	// Poll is the interval between polls in Run; zero selects 5 seconds.
	Poll time.Duration
	// Wait, when positive, is sent as the ?wait= long-poll duration so
	// version changes propagate in one round trip instead of a poll
	// interval. The client timeout must exceed it.
	Wait time.Duration
	// Client is the HTTP client; nil selects one with a sane timeout
	// derived from Wait.
	Client *http.Client
	// MaxBytes bounds the downloaded payload; zero selects
	// DefaultMaxSnapshotBytes.
	MaxBytes int64
	// Obs registers the follower-side distribution metrics; nil keeps
	// them process-internal.
	Obs *obs.Registry
	// Logger receives install and failure lines, tagged
	// component=snapshot; nil discards them.
	Logger *slog.Logger
}

func (c FollowerConfig) poll() time.Duration {
	if c.Poll <= 0 {
		return 5 * time.Second
	}
	return c.Poll
}

func (c FollowerConfig) maxBytes() int64 {
	if c.MaxBytes <= 0 {
		return DefaultMaxSnapshotBytes
	}
	return c.MaxBytes
}

// Follower polls a Publisher's snapshot endpoint and installs each new
// version through its Install callback. Every failure mode — transport,
// checksum, decode, install — leaves the previously installed model
// live and is counted by reason; the next poll simply retries. The
// zero-trust posture is deliberate: a follower treats the publisher's
// bytes as untrusted input, because "the publisher" may really be a
// half-dead proxy or a mid-deploy version skew.
type Follower struct {
	cfg     FollowerConfig
	client  *http.Client
	metrics *followerMetrics
	log     *slog.Logger

	etag      string // ETag of the last installed snapshot; "" fetches unconditionally
	installed atomic.Uint64
}

// NewFollower validates the config and returns a follower; it performs
// no I/O until Poll or Run.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("maintain: follower needs a snapshot URL")
	}
	if cfg.Install == nil {
		return nil, fmt.Errorf("maintain: follower needs an Install callback")
	}
	client := cfg.Client
	if client == nil {
		timeout := 30 * time.Second
		if cfg.Wait > 0 {
			timeout = cfg.Wait + 30*time.Second
		}
		client = &http.Client{Timeout: timeout}
	}
	return &Follower{
		cfg:     cfg,
		client:  client,
		metrics: newFollowerMetrics(cfg.Obs),
		log:     obs.Component(cfg.Logger, "snapshot"),
	}, nil
}

// Version reports the last successfully installed snapshot version,
// zero before the first install. Safe for concurrent use.
func (f *Follower) Version() uint64 { return f.installed.Load() }

// Poll performs one fetch-validate-install round trip. It returns nil
// when the publisher has nothing new (304, or 404 before its first
// publish) and the error otherwise, after counting it by reason. Not
// safe for concurrent use with itself or Run.
func (f *Follower) Poll(ctx context.Context) error {
	url := f.cfg.URL
	if f.cfg.Wait > 0 {
		url += "?wait=" + f.cfg.Wait.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		f.metrics.failFetch.Inc()
		return fmt.Errorf("maintain: snapshot request: %w", err)
	}
	if f.etag != "" {
		req.Header.Set("If-None-Match", f.etag)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		f.metrics.failFetch.Inc()
		f.log.Warn("snapshot fetch failed; previous model stays live", "error", err)
		return fmt.Errorf("maintain: snapshot fetch: %w", err)
	}
	defer resp.Body.Close()

	f.observeLag(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		// Fall through to download.
	case http.StatusNotModified, http.StatusNotFound:
		// Nothing new, or the publisher has not published yet.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil
	default:
		f.metrics.failFetch.Inc()
		f.log.Warn("snapshot fetch failed; previous model stays live",
			"status", resp.StatusCode)
		return fmt.Errorf("maintain: snapshot fetch: status %d", resp.StatusCode)
	}

	max := f.cfg.maxBytes()
	data, err := io.ReadAll(io.LimitReader(resp.Body, max+1))
	if err != nil {
		// The connection died mid-body: a truncated download. The
		// checksum would catch it too, but the transport saw it first.
		f.metrics.failFetch.Inc()
		f.log.Warn("snapshot download cut mid-transfer; previous model stays live", "error", err)
		return fmt.Errorf("maintain: snapshot download: %w", err)
	}
	if int64(len(data)) > max {
		f.metrics.failFetch.Inc()
		return fmt.Errorf("maintain: snapshot exceeds %d-byte bound", max)
	}
	f.metrics.fetchedBytes.Add(int64(len(data)))

	snap, err := DecodeSnapshot(data)
	if err != nil {
		if errors.Is(err, ErrChecksum) {
			f.metrics.failChecksum.Inc()
		} else {
			f.metrics.failDecode.Inc()
		}
		f.log.Warn("snapshot rejected; previous model stays live", "error", err)
		return err
	}
	if err := f.cfg.Install(snap.Model, snap.Ranking); err != nil {
		f.metrics.failInstall.Inc()
		f.log.Warn("snapshot install rejected; previous model stays live",
			"version", snap.Version, "error", err)
		return err
	}

	f.etag = resp.Header.Get("ETag")
	f.installed.Store(snap.Version)
	f.metrics.installedVersion.Set(int64(snap.Version))
	f.metrics.versionLag.Set(0)
	f.metrics.installs.Inc()
	f.log.Info("snapshot installed",
		"version", snap.Version, "bytes", len(data), "model", snap.Model.Name())
	return nil
}

// observeLag refreshes the version-lag gauge from the publisher's
// version header, when present.
func (f *Follower) observeLag(resp *http.Response) {
	v, err := strconv.ParseUint(resp.Header.Get("X-Snapshot-Version"), 10, 64)
	if err != nil {
		return
	}
	if inst := f.installed.Load(); v > inst {
		f.metrics.versionLag.Set(int64(v - inst))
	} else {
		f.metrics.versionLag.Set(0)
	}
}

// Run polls until ctx is cancelled. With Wait configured, each poll
// long-polls the publisher, so new versions install in one round trip;
// the poll interval then only paces retries and keep-alives.
func (f *Follower) Run(ctx context.Context) {
	interval := f.cfg.poll()
	for {
		if err := f.Poll(ctx); err != nil && ctx.Err() != nil {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}
