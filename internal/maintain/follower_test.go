package maintain

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pbppm/internal/markov"
	"pbppm/internal/obs"
	"pbppm/internal/popularity"
)

func TestNewFollowerValidation(t *testing.T) {
	install := func(model markov.Predictor, rank *popularity.Ranking) error { return nil }
	if _, err := NewFollower(FollowerConfig{Install: install}); err == nil {
		t.Error("follower without URL accepted")
	}
	if _, err := NewFollower(FollowerConfig{URL: "http://x/snapshot"}); err == nil {
		t.Error("follower without Install accepted")
	}
}

// corruptingServer wraps a Publisher and, per request, optionally
// mangles the response: truncating it mid-body, flipping payload bits,
// or rewriting sections wholesale.
type corruptingServer struct {
	pub  *Publisher
	mode atomic.Value // string: "", "truncate", "flip", "reseal", "status"
}

func (cs *corruptingServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	mode, _ := cs.mode.Load().(string)
	if mode == "status" {
		http.Error(w, "shard is on fire", http.StatusInternalServerError)
		return
	}
	if mode == "" {
		cs.pub.ServeHTTP(w, r)
		return
	}
	rec := httptest.NewRecorder()
	cs.pub.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	for k, vs := range rec.Header() {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	switch mode {
	case "truncate":
		// Advertise the full length, send half, kill the connection:
		// the client sees an unexpected EOF mid-transfer.
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(rec.Code)
		w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	case "flip":
		// Full-length body with bits flipped under the checksum.
		tampered := append([]byte(nil), body...)
		if len(tampered) > 40 {
			tampered[len(tampered)/2] ^= 0x08
		}
		w.WriteHeader(rec.Code)
		w.Write(tampered)
	case "reseal":
		// Corrupt the model section and recompute the trailer, so the
		// checksum passes and the failure surfaces at decode.
		tampered := append([]byte(nil), body...)
		if len(tampered) > 96 {
			for i := 40; i < 72; i++ {
				tampered[i] ^= 0xFF
			}
			resealSnapshot(tampered)
		}
		w.WriteHeader(rec.Code)
		w.Write(tampered)
	}
}

// TestFollowerCorruptDownloadNeverPublishes is the distribution
// channel's acceptance test: a snapshot download that dies mid-transfer,
// fails its checksum, fails to decode, or is rejected by the install
// gate must never replace the follower's live model, and each failure
// mode must land in its own swap-failure counter.
func TestFollowerCorruptDownloadNeverPublishes(t *testing.T) {
	pubM := trainedMaintainer(t, nil)
	pub := NewPublisher(pubM, PublisherConfig{})
	cs := &corruptingServer{pub: pub}
	srv := httptest.NewServer(cs)
	defer srv.Close()

	reg := obs.NewRegistry()
	folM, err := New(Config{Factory: pbFactory, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := NewFollower(FollowerConfig{URL: srv.URL, Install: folM.InstallSnapshot, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}

	// Install version 1 cleanly; this is the model every failure below
	// must leave untouched.
	if err := fol.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	live := folM.Predictor()
	if live == nil {
		t.Fatal("baseline install failed")
	}

	// Publish version 2, then sabotage every delivery of it.
	pubM.Observe(mkSession(9, "/home", "/v2"))
	pubM.Rebuild(epoch.Add(24 * time.Hour))

	failures := func(reason string) int64 {
		return counterValue(t, reg, "pbppm_snapshot_swap_failures_total", reason)
	}
	cases := []struct {
		mode   string
		reason string
	}{
		{"truncate", swapFetch},
		{"status", swapFetch},
		{"flip", swapChecksum},
		{"reseal", swapDecode},
	}
	for _, tc := range cases {
		before := failures(tc.reason)
		cs.mode.Store(tc.mode)
		if err := fol.Poll(context.Background()); err == nil {
			t.Fatalf("%s: corrupted download accepted", tc.mode)
		}
		if folM.Predictor() != live {
			t.Fatalf("%s: corrupted download replaced the live model", tc.mode)
		}
		if fol.Version() != 1 {
			t.Fatalf("%s: installed version moved to %d", tc.mode, fol.Version())
		}
		if after := failures(tc.reason); after != before+1 {
			t.Errorf("%s: swap_failures{%s} = %d, want %d", tc.mode, tc.reason, after, before+1)
		}
	}

	// Install-gate rejection: deliver an intact snapshot into a follower
	// whose install callback refuses it.
	cs.mode.Store("")
	regRej := obs.NewRegistry()
	var rejected atomic.Int64
	rej, err := NewFollower(FollowerConfig{
		URL: srv.URL,
		Install: func(model markov.Predictor, rank *popularity.Ranking) error {
			rejected.Add(1)
			return errors.New("gate says no")
		},
		Obs: regRej,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rej.Poll(context.Background()); err == nil {
		t.Fatal("rejected install reported success")
	}
	if rejected.Load() != 1 || rej.Version() != 0 {
		t.Fatalf("reject path: calls=%d version=%d", rejected.Load(), rej.Version())
	}
	if got := counterValue(t, regRej, "pbppm_snapshot_swap_failures_total", swapInstall); got != 1 {
		t.Errorf("swap_failures{install} = %d", got)
	}

	// And after all that sabotage the healthy path still converges.
	if err := fol.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fol.Version() != 2 || folM.Predictor() == live {
		t.Fatalf("recovery poll: version=%d", fol.Version())
	}
}

// counterValue reads a labeled counter back out of the registry's
// exposition, so tests assert on exactly what operators will see.
func counterValue(t *testing.T, reg *obs.Registry, name, reason string) int64 {
	t.Helper()
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name) && strings.Contains(line, `reason="`+reason+`"`) {
			fields := strings.Fields(line)
			v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}
