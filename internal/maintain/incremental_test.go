package maintain

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"pbppm/internal/markov"
	"pbppm/internal/popularity"
	"pbppm/internal/session"
)

// batchSessions builds deterministic sessions with overlapping URL
// paths so delta merges both extend existing branches and add new ones.
func batchSessions(startHour, n, variant int) []session.Session {
	out := make([]session.Session, 0, n)
	for i := 0; i < n; i++ {
		u1 := fmt.Sprintf("/hub%d", i%4)
		u2 := fmt.Sprintf("/page%d", (i+variant)%8)
		u3 := fmt.Sprintf("/leaf%d", (i*variant)%16)
		out = append(out, mkSession(startHour+i, u1, u2, u3))
	}
	return out
}

func TestDeltaMergeAbsorbsStagedSessions(t *testing.T) {
	m, err := New(Config{Factory: pbFactory})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Observe(mkSession(i, "/home", "/news"))
	}
	base := m.Rebuild(epoch.Add(12 * time.Hour))
	if m.StagedSize() != 0 {
		t.Fatalf("staging not cleared by rebuild: %d", m.StagedSize())
	}

	// New traffic arrives and is staged.
	for i := 0; i < 5; i++ {
		m.Observe(mkSession(13+i, "/home", "/fresh"))
	}
	if m.StagedSize() != 5 {
		t.Fatalf("StagedSize = %d, want 5", m.StagedSize())
	}

	merged := m.DeltaMerge(epoch.Add(19 * time.Hour))
	if merged == base {
		t.Fatal("delta merge republished the old snapshot")
	}
	if m.DeltaMerges() != 1 || m.Rebuilds() != 1 {
		t.Errorf("DeltaMerges/Rebuilds = %d/%d, want 1/1", m.DeltaMerges(), m.Rebuilds())
	}
	if m.StagedSize() != 0 {
		t.Errorf("staging not drained: %d", m.StagedSize())
	}
	got := merged.Predict([]string{"/home"})
	found := false
	for _, p := range got {
		if p.URL == "/fresh" {
			found = true
		}
	}
	if !found {
		t.Errorf("merged model does not predict the delta: %+v", got)
	}
	// The previously published snapshot was cloned, not mutated: it still
	// knows nothing about the delta.
	for _, p := range base.Predict([]string{"/home"}) {
		if p.URL == "/fresh" {
			t.Errorf("delta merge mutated the published snapshot: %+v", p)
		}
	}
	// Nothing staged: a second delta merge is a no-op returning the same
	// snapshot.
	if again := m.DeltaMerge(epoch.Add(20 * time.Hour)); again != merged {
		t.Error("empty delta merge swapped the snapshot")
	}
	if m.DeltaMerges() != 1 {
		t.Errorf("empty delta merge counted: %d", m.DeltaMerges())
	}
}

func TestDeltaMergeFallsBackToRebuildWithoutModel(t *testing.T) {
	m, err := New(Config{Factory: pbFactory})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(mkSession(0, "/a", "/b"))
	model := m.DeltaMerge(epoch.Add(time.Hour))
	if model == nil {
		t.Fatal("fallback rebuild published nothing")
	}
	if m.Rebuilds() != 1 || m.DeltaMerges() != 0 {
		t.Errorf("Rebuilds/DeltaMerges = %d/%d, want 1/0", m.Rebuilds(), m.DeltaMerges())
	}
}

// TestDeltaMergesPlusCompactionEqualRetrain is the acceptance
// equivalence: a predictor produced by N delta merges followed by one
// compaction must yield identical predictions and identical
// markov.StatsOf node/branch counts to a from-scratch retrain over the
// same window.
func TestDeltaMergesPlusCompactionEqualRetrain(t *testing.T) {
	incremental, err := New(Config{Factory: pbFactory})
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := New(Config{Factory: pbFactory})
	if err != nil {
		t.Fatal(err)
	}

	batches := [][]session.Session{
		batchSessions(0, 20, 1),
		batchSessions(24, 15, 2),
		batchSessions(48, 25, 3),
		batchSessions(72, 10, 5),
	}

	// Incremental path: initial build, then one delta merge per batch.
	for _, s := range batches[0] {
		incremental.Observe(s)
	}
	incremental.Rebuild(epoch.Add(23 * time.Hour))
	for bi, batch := range batches[1:] {
		for _, s := range batch {
			incremental.Observe(s)
		}
		incremental.DeltaMerge(epoch.Add(time.Duration(24*(bi+2)) * time.Hour))
	}
	if got, want := incremental.DeltaMerges(), len(batches)-1; got != want {
		t.Fatalf("DeltaMerges = %d, want %d", got, want)
	}

	// From-scratch path: observe everything, build once.
	for _, batch := range batches {
		for _, s := range batch {
			scratch.Observe(s)
		}
	}
	now := epoch.Add(100 * time.Hour)
	compacted := incremental.Rebuild(now) // the compaction
	retrained := scratch.Rebuild(now)

	cs, ok1 := markov.StatsOf(compacted)
	rs, ok2 := markov.StatsOf(retrained)
	if !ok1 || !ok2 {
		t.Fatal("models expose no tree stats")
	}
	if cs.Nodes != rs.Nodes || cs.Roots != rs.Roots || cs.Leaves != rs.Leaves ||
		cs.MaxDepth != rs.MaxDepth || cs.TotalCount != rs.TotalCount {
		t.Errorf("compacted stats %+v != retrained stats %+v", cs, rs)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			ctx := []string{fmt.Sprintf("/hub%d", i), fmt.Sprintf("/page%d", j)}
			got := compacted.Predict(ctx)
			want := retrained.Predict(ctx)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("Predict(%v): compacted %+v, retrained %+v", ctx, got, want)
			}
		}
	}
}

// TestEmptyWindowRebuildKeepsSnapshot is the satellite-1 regression: a
// rebuild over an empty window (traffic lull, clock skew past the
// window) must keep the trained snapshot live and count the skip,
// instead of publishing an empty model over it.
func TestEmptyWindowRebuildKeepsSnapshot(t *testing.T) {
	m, err := New(Config{Factory: pbFactory, Window: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(mkSession(0, "/home", "/news"))
	trained := m.Rebuild(epoch.Add(2 * time.Hour))
	if trained == nil || trained.NodeCount() == 0 {
		t.Fatal("setup: no trained model")
	}

	// A rebuild far past the window trims every session.
	got := m.Rebuild(epoch.Add(1000 * time.Hour))
	if got != trained {
		t.Error("empty-window rebuild replaced the trained snapshot")
	}
	if m.Predictor() != trained {
		t.Error("published predictor changed on an empty-window rebuild")
	}
	if m.Rebuilds() != 1 {
		t.Errorf("Rebuilds = %d, want 1 (the skip must not count)", m.Rebuilds())
	}
	if v := m.metrics.skippedEmptyWin.Value(); v != 1 {
		t.Errorf("skipped{empty_window} = %d, want 1", v)
	}
	if m.SkippedUpdates() != 1 {
		t.Errorf("SkippedUpdates = %d, want 1", m.SkippedUpdates())
	}
	// Before any publish, an empty window still publishes the empty
	// model (there is nothing to protect).
	m2, _ := New(Config{Factory: pbFactory})
	if m2.Rebuild(epoch) == nil {
		t.Error("first rebuild with no history published nothing")
	}
}

// TestPanickingFactoryKeepsPreviousSnapshot is the satellite-3
// crash-safety test: a factory that panics must not unpublish the live
// model, must be counted, and must not kill the Run loop.
func TestPanickingFactoryKeepsPreviousSnapshot(t *testing.T) {
	var panicking bool
	factory := func(rank *popularity.Ranking) markov.Predictor {
		if panicking {
			panic("injected factory failure")
		}
		return pbFactory(rank)
	}
	m, err := New(Config{Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(mkSession(0, "/home", "/news"))
	trained := m.Rebuild(epoch.Add(time.Hour))

	panicking = true
	m.Observe(mkSession(1, "/home", "/later"))
	if got := m.Rebuild(epoch.Add(2 * time.Hour)); got != trained {
		t.Error("panicking rebuild replaced the trained snapshot")
	}
	if m.Predictor() != trained {
		t.Error("published predictor changed after a factory panic")
	}
	if v := m.metrics.skippedPanic.Value(); v != 1 {
		t.Errorf("skipped{panic} = %d, want 1", v)
	}

	// The Run loop survives repeated panics; it keeps ticking and
	// counting skips instead of dying on the first one.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		m.Run(2*time.Millisecond, stop)
		close(done)
	}()
	deadline := time.After(2 * time.Second)
	for m.SkippedUpdates() < 3 {
		select {
		case <-deadline:
			t.Fatal("Run loop did not survive factory panics")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done
	if m.Predictor() != trained {
		t.Error("snapshot lost while the loop absorbed panics")
	}
}

// TestPanicDuringDeltaMergeKeepsSnapshot: the delta path has the same
// crash-safety contract; the dropped batch stays in the window for the
// next compaction to recover.
func TestPanicDuringDeltaMergeKeepsSnapshot(t *testing.T) {
	var panicking bool
	factory := func(rank *popularity.Ranking) markov.Predictor {
		return &panicOnShard{Predictor: pbFactory(rank), panicking: &panicking}
	}
	m, err := New(Config{Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(mkSession(0, "/home", "/news"))
	trained := m.Rebuild(epoch.Add(time.Hour))

	panicking = true
	m.Observe(mkSession(2, "/home", "/fresh"))
	if got := m.DeltaMerge(epoch.Add(3 * time.Hour)); got != trained {
		t.Error("panicking delta merge replaced the snapshot")
	}
	if v := m.metrics.skippedPanic.Value(); v != 1 {
		t.Errorf("skipped{panic} = %d, want 1", v)
	}
	// The batch was drained from staging but survives in the window: a
	// compaction recovers it.
	panicking = false
	recovered := m.Rebuild(epoch.Add(4 * time.Hour))
	found := false
	for _, p := range recovered.Predict([]string{"/home"}) {
		if p.URL == "/fresh" {
			found = true
		}
	}
	if !found {
		t.Error("compaction did not recover the dropped delta batch")
	}
}

// panicOnShard wraps a model so NewShard panics on demand, simulating a
// corrupt delta batch poisoning shard training.
type panicOnShard struct {
	markov.Predictor
	panicking *bool
}

func (p *panicOnShard) NewShard() markov.Predictor {
	if *p.panicking {
		panic("injected shard failure")
	}
	return p.Predictor.(markov.ShardedTrainer).NewShard()
}

func (p *panicOnShard) MergeShard(shard markov.Predictor) {
	p.Predictor.(markov.ShardedTrainer).MergeShard(shard)
}

func (p *panicOnShard) Clone() markov.Predictor {
	return &panicOnShard{
		Predictor: p.Predictor.(markov.IncrementalTrainer).Clone(),
		panicking: p.panicking,
	}
}

// TestWindowBoundaryExactCutoff pins the !Before(cutoff) contract: a
// session starting exactly at the cutoff is kept.
func TestWindowBoundaryExactCutoff(t *testing.T) {
	m, err := New(Config{Factory: pbFactory, Window: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(mkSession(0, "/exact", "/kept"))     // starts exactly at cutoff
	m.Observe(mkSession(-1, "/stale", "/trimmed")) // one hour before: out
	model := m.Rebuild(epoch.Add(24 * time.Hour))  // cutoff == epoch

	if m.WindowSize() != 1 {
		t.Errorf("WindowSize = %d, want 1", m.WindowSize())
	}
	if got := model.Predict([]string{"/exact"}); len(got) == 0 {
		t.Error("session starting exactly at the cutoff was trimmed")
	}
	if got := model.Predict([]string{"/stale"}); len(got) != 0 {
		t.Errorf("session before the cutoff survived: %+v", got)
	}
}

func TestStagingBufferBound(t *testing.T) {
	m, err := New(Config{Factory: pbFactory, MaxStaged: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Observe(mkSession(i, fmt.Sprintf("/s%d", i), "/x"))
	}
	if m.StagedSize() != 4 {
		t.Errorf("StagedSize = %d, want 4 (bound)", m.StagedSize())
	}
	if m.WindowSize() != 10 {
		t.Errorf("WindowSize = %d, want 10 (window keeps what staging drops)", m.WindowSize())
	}
	if v := m.metrics.stagedDropped.Value(); v != 6 {
		t.Errorf("stagedDropped = %d, want 6", v)
	}
	// The delta merge sees only the newest 4; the compaction recovers all.
	m.Rebuild(epoch.Add(20 * time.Hour))
	model := m.Predictor()
	if got := model.Predict([]string{"/s0"}); len(got) == 0 {
		t.Error("compaction lost a session dropped from staging")
	}
}

// TestIncrementalMaintenanceRaceStress drives Observe and Predict
// concurrently with delta merges and compactions; run under -race this
// checks the published-snapshot discipline of the incremental path.
func TestIncrementalMaintenanceRaceStress(t *testing.T) {
	m, err := New(Config{Factory: pbFactory})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		m.Observe(mkSession(i, "/home", "/news", "/news/today"))
	}
	m.Rebuild(epoch.Add(time.Hour))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.Observe(mkSession(g*1000+i, "/home", fmt.Sprintf("/p%d", i%32)))
				if p := m.Predictor(); p != nil {
					p.Predict([]string{"/home", "/news"})
				}
			}
		}(g)
	}
	for i := 0; i < 10; i++ {
		// Stage at least one session ourselves: the observer goroutines may
		// not have been scheduled yet and an empty batch is a no-op.
		m.Observe(mkSession(9000+i, "/home", "/driver"))
		m.DeltaMerge(epoch.Add(time.Duration(5000+i) * time.Hour))
		if i%4 == 3 {
			m.Rebuild(epoch.Add(time.Duration(5000+i) * time.Hour))
		}
	}
	close(stop)
	wg.Wait()
	if m.DeltaMerges() == 0 {
		t.Error("stress run performed no delta merges")
	}
	if m.Predictor() == nil {
		t.Error("no model published after stress run")
	}
}

// TestRunIncrementalSchedulesBothPaths checks the delta/compaction
// scheduling loop end to end, including OnPublish delivery.
func TestRunIncrementalSchedulesBothPaths(t *testing.T) {
	var publishMu sync.Mutex
	published := 0
	m, err := New(Config{
		Factory: pbFactory,
		OnPublish: func(p markov.Predictor) {
			publishMu.Lock()
			published++
			publishMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	observe := func(urls ...string) {
		s := session.Session{Client: "c"}
		for i, u := range urls {
			s.Views = append(s.Views, session.PageView{URL: u, Time: now.Add(time.Duration(i) * time.Second)})
		}
		m.Observe(s)
	}
	observe("/a", "/b")

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		m.RunIncremental(3*time.Millisecond, 40*time.Millisecond, stop)
		close(done)
	}()
	deadline := time.After(5 * time.Second)
	for m.DeltaMerges() < 2 || m.Rebuilds() < 2 {
		select {
		case <-deadline:
			t.Fatalf("loop stalled: deltas=%d rebuilds=%d", m.DeltaMerges(), m.Rebuilds())
		default:
			observe("/a", "/c") // keep staging non-empty so deltas publish
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done
	publishMu.Lock()
	defer publishMu.Unlock()
	if published < 4 {
		t.Errorf("OnPublish fired %d times, want >= 4", published)
	}
}
