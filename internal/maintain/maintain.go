// Package maintain implements the periodic model-maintenance loop the
// paper assumes ("the models are dynamically maintained and updated
// based on historical data during a period of time"): a sliding window
// of recent access sessions, an online popularity ranking over that
// window, and scheduled rebuilds that produce a fresh predictor from
// the window's contents.
//
// The Maintainer is safe for concurrent use: request-serving goroutines
// call Observe and Predictor while a rebuild runs.
package maintain

import (
	"fmt"
	"sync"
	"time"

	"pbppm/internal/markov"
	"pbppm/internal/popularity"
	"pbppm/internal/session"
)

// Factory builds a fresh predictor from the window's popularity
// ranking; the maintainer then trains it on the window's sessions.
// For PB-PPM:
//
//	func(rank *popularity.Ranking) markov.Predictor {
//	    return core.New(rank, core.Config{RelProbCutoff: 0.01})
//	}
type Factory func(rank *popularity.Ranking) markov.Predictor

// Config parameterizes a Maintainer.
type Config struct {
	// Window is how much history rebuilds train on; zero selects the
	// paper's common 7-day window.
	Window time.Duration
	// Factory builds the model at each rebuild; required.
	Factory Factory
}

func (c Config) window() time.Duration {
	if c.Window <= 0 {
		return 7 * 24 * time.Hour
	}
	return c.Window
}

// Maintainer keeps the sliding session window and the current model.
type Maintainer struct {
	cfg Config

	mu       sync.RWMutex
	sessions []session.Session // ordered by start time
	current  markov.Predictor
	rebuilds int
}

// New returns an empty maintainer. It returns an error on a nil
// factory.
func New(cfg Config) (*Maintainer, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("maintain: nil model factory")
	}
	return &Maintainer{cfg: cfg}, nil
}

// Observe appends a completed session to the window. Sessions are
// expected in roughly chronological order (the trimming scan assumes
// it); exact ordering is not required.
func (m *Maintainer) Observe(s session.Session) {
	if s.Len() == 0 {
		return
	}
	m.mu.Lock()
	m.sessions = append(m.sessions, s)
	m.mu.Unlock()
}

// WindowSize reports how many sessions the window currently holds.
func (m *Maintainer) WindowSize() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.sessions)
}

// Rebuilds reports how many rebuilds have completed.
func (m *Maintainer) Rebuilds() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.rebuilds
}

// Predictor returns the current model, or nil before the first
// rebuild. The returned model is shared: predictions are safe, further
// training is the maintainer's job alone.
func (m *Maintainer) Predictor() markov.Predictor {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.current
}

// Rebuild trims the window to cfg.Window ending at now, builds the
// ranking, constructs a fresh model through the factory, trains it on
// the window, runs its space optimization, and installs it. It returns
// the installed predictor.
//
// The expensive training runs outside the write lock: Observe and
// Predictor stay responsive during a rebuild.
func (m *Maintainer) Rebuild(now time.Time) markov.Predictor {
	cutoff := now.Add(-m.cfg.window())

	// Snapshot and trim under the lock.
	m.mu.Lock()
	keepFrom := 0
	for keepFrom < len(m.sessions) && m.sessions[keepFrom].Start().Before(cutoff) {
		keepFrom++
	}
	if keepFrom > 0 {
		m.sessions = append([]session.Session(nil), m.sessions[keepFrom:]...)
	}
	window := make([]session.Session, len(m.sessions))
	copy(window, m.sessions)
	m.mu.Unlock()

	rank := popularity.NewRanking()
	for _, s := range window {
		for _, v := range s.Views {
			rank.Observe(v.URL, 1)
		}
	}
	model := m.cfg.Factory(rank)
	for _, s := range window {
		model.TrainSequence(s.URLs())
	}
	if opt, ok := model.(interface{ Optimize() int }); ok {
		opt.Optimize()
	}

	m.mu.Lock()
	m.current = model
	m.rebuilds++
	m.mu.Unlock()
	return model
}

// Run rebuilds every interval until stop is closed; intended as
//
//	stop := make(chan struct{})
//	go maint.Run(interval, stop)
//
// The first rebuild happens after the first interval elapses.
func (m *Maintainer) Run(interval time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			m.Rebuild(now)
		}
	}
}
