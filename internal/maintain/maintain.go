// Package maintain implements the periodic model-maintenance loop the
// paper assumes ("the models are dynamically maintained and updated
// based on historical data during a period of time"): a sliding window
// of recent access sessions, an online popularity ranking over that
// window, and scheduled rebuilds that produce a fresh predictor from
// the window's contents.
//
// The Maintainer is safe for concurrent use. Each rebuild constructs
// and trains a fresh model off to the side and then publishes it as an
// immutable snapshot through an atomic pointer: request-serving
// goroutines call Observe and Predictor while a rebuild runs, and
// predictions on a published model are read-only (the maintainer
// detaches the model's usage recording before publishing — see
// markov.UsageRecorder). A published model is never trained or mutated
// again; the next rebuild swaps in a whole new one.
package maintain

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"pbppm/internal/markov"
	"pbppm/internal/obs"
	"pbppm/internal/popularity"
	"pbppm/internal/session"
)

// Factory builds a fresh predictor from the window's popularity
// ranking; the maintainer then trains it on the window's sessions.
// For PB-PPM:
//
//	func(rank *popularity.Ranking) markov.Predictor {
//	    return core.New(rank, core.Config{RelProbCutoff: 0.01})
//	}
type Factory func(rank *popularity.Ranking) markov.Predictor

// Config parameterizes a Maintainer.
type Config struct {
	// Window is how much history rebuilds train on; zero selects the
	// paper's common 7-day window.
	Window time.Duration
	// Factory builds the model at each rebuild; required.
	Factory Factory
	// Obs registers rebuild metrics (count, duration) and model-health
	// gauges published at snapshot-swap time — node/branch/leaf counts,
	// max height, and approximate bytes, the live counterpart of the
	// paper's Figure 4 storage comparison. Nil keeps the metrics
	// process-internal.
	Obs *obs.Registry
	// Logger receives rebuild progress lines, tagged component=maintain;
	// nil discards them.
	Logger *slog.Logger
}

func (c Config) window() time.Duration {
	if c.Window <= 0 {
		return 7 * 24 * time.Hour
	}
	return c.Window
}

// predictorCell boxes the published model so an interface value can sit
// behind an atomic.Pointer.
type predictorCell struct{ p markov.Predictor }

// maintainMetrics holds the rebuild-loop metrics and the model-health
// gauges, registered when Config.Obs is set (nil-registry safe).
type maintainMetrics struct {
	rebuilds       *obs.Counter
	rebuildSeconds *obs.Histogram
	windowSessions *obs.Gauge
	modelNodes     *obs.Gauge
	modelBranches  *obs.Gauge
	modelLeaves    *obs.Gauge
	modelMaxHeight *obs.Gauge
	modelBytes     *obs.Gauge
}

func newMaintainMetrics(reg *obs.Registry) *maintainMetrics {
	return &maintainMetrics{
		rebuilds: reg.Counter("pbppm_rebuilds_total",
			"Completed model rebuilds."),
		rebuildSeconds: reg.Histogram("pbppm_rebuild_seconds",
			"Model rebuild duration: window trim, ranking, training, optimization.", nil),
		windowSessions: reg.Gauge("pbppm_window_sessions",
			"Sessions in the sliding training window at the last rebuild."),
		modelNodes: reg.Gauge("pbppm_model_nodes",
			"URL nodes in the published model, the paper's storage metric (Figure 4)."),
		modelBranches: reg.Gauge("pbppm_model_branches",
			"Root branches in the published model."),
		modelLeaves: reg.Gauge("pbppm_model_leaves",
			"Root-to-leaf paths in the published model."),
		modelMaxHeight: reg.Gauge("pbppm_model_max_height",
			"Longest branch of the published model, in nodes."),
		modelBytes: reg.Gauge("pbppm_model_bytes",
			"Approximate in-memory size of the published model."),
	}
}

// Maintainer keeps the sliding session window and the current model.
type Maintainer struct {
	cfg     Config
	metrics *maintainMetrics
	log     *slog.Logger

	mu       sync.RWMutex
	sessions []session.Session // roughly ordered by start time

	// current is the published model snapshot, swapped whole by Rebuild
	// and read lock-free by Predictor.
	current  atomic.Pointer[predictorCell]
	rebuilds atomic.Int64
}

// New returns an empty maintainer. It returns an error on a nil
// factory.
func New(cfg Config) (*Maintainer, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("maintain: nil model factory")
	}
	return &Maintainer{
		cfg:     cfg,
		metrics: newMaintainMetrics(cfg.Obs),
		log:     obs.Component(cfg.Logger, "maintain"),
	}, nil
}

// Observe appends a completed session to the window. Sessions may
// arrive in any order; trimming does not assume chronological arrival.
func (m *Maintainer) Observe(s session.Session) {
	if s.Len() == 0 {
		return
	}
	m.mu.Lock()
	m.sessions = append(m.sessions, s)
	m.mu.Unlock()
}

// WindowSize reports how many sessions the window currently holds.
func (m *Maintainer) WindowSize() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.sessions)
}

// Rebuilds reports how many rebuilds have completed.
func (m *Maintainer) Rebuilds() int {
	return int(m.rebuilds.Load())
}

// Predictor returns the current model snapshot, or nil before the
// first rebuild. The snapshot is immutable: predictions on it are
// read-only and safe for unsynchronized concurrent use (its usage
// recording was detached at publish time), and it is never trained
// again — a rebuild publishes a fresh model instead of mutating this
// one.
func (m *Maintainer) Predictor() markov.Predictor {
	if c := m.current.Load(); c != nil {
		return c.p
	}
	return nil
}

// Rebuild trims the window to cfg.Window ending at now, builds the
// ranking, constructs a fresh model through the factory, trains it on
// the window, runs its space optimization, detaches its usage
// recording, and publishes it atomically. It returns the installed
// predictor.
//
// The expensive training runs outside any lock: Observe, Predictor,
// and the serving path stay responsive during a rebuild.
func (m *Maintainer) Rebuild(now time.Time) markov.Predictor {
	start := time.Now()
	cutoff := now.Add(-m.cfg.window())

	// Snapshot and trim under the lock. Sessions may have been observed
	// out of order, so filter the whole window rather than scanning an
	// expired prefix.
	m.mu.Lock()
	kept := m.sessions[:0]
	for _, s := range m.sessions {
		if !s.Start().Before(cutoff) {
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(m.sessions); i++ {
		m.sessions[i] = session.Session{} // release trimmed views to the GC
	}
	m.sessions = kept
	window := make([]session.Session, len(kept))
	copy(window, kept)
	m.mu.Unlock()

	rank := popularity.NewRanking()
	for _, s := range window {
		for _, v := range s.Views {
			rank.Observe(v.URL, 1)
		}
	}
	model := m.cfg.Factory(rank)
	seqs := make([][]string, len(window))
	for i, s := range window {
		seqs[i] = s.URLs()
	}
	markov.TrainAllParallel(model, seqs)
	if opt, ok := model.(interface{ Optimize() int }); ok {
		opt.Optimize()
	}
	// Detach usage recording so predictions on the published snapshot
	// perform no writes; diagnostics can re-enable it explicitly.
	if ur, ok := model.(markov.UsageRecorder); ok {
		ur.SetUsageRecording(false)
	}

	m.current.Store(&predictorCell{p: model})
	m.rebuilds.Add(1)

	// Publish rebuild metrics and model-health gauges for the snapshot
	// just installed, then log one structured summary line.
	dur := time.Since(start)
	m.metrics.rebuilds.Inc()
	m.metrics.rebuildSeconds.Observe(dur)
	m.metrics.windowSessions.Set(int64(len(window)))
	nodes := model.NodeCount()
	m.metrics.modelNodes.Set(int64(nodes))
	if st, ok := markov.StatsOf(model); ok {
		m.metrics.modelBranches.Set(int64(st.Roots))
		m.metrics.modelLeaves.Set(int64(st.Leaves))
		m.metrics.modelMaxHeight.Set(int64(st.MaxDepth))
		m.metrics.modelBytes.Set(st.Bytes)
	}
	m.log.Info("model rebuilt",
		"model", model.Name(),
		"sessions", len(window),
		"nodes", nodes,
		"duration", dur.Round(time.Millisecond))
	return model
}

// Run rebuilds every interval until stop is closed; intended as
//
//	stop := make(chan struct{})
//	go maint.Run(interval, stop)
//
// The first rebuild happens after the first interval elapses.
func (m *Maintainer) Run(interval time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			m.Rebuild(now)
		}
	}
}
