// Package maintain implements the model-maintenance loop the paper
// assumes ("the models are dynamically maintained and updated based on
// historical data during a period of time"): a sliding window of recent
// access sessions, an online popularity ranking over that window, and
// scheduled updates that keep the published predictor tracking live
// traffic.
//
// Two update paths exist. The incremental path (DeltaMerge) absorbs
// only the sessions observed since the last update: they accumulate in
// a bounded staging buffer, are trained into a fresh shard, and the
// shard is folded into a copy-on-write clone of the live snapshot
// (markov.IncrementalTrainer), so update cost tracks new traffic, not
// window size. The full path (Rebuild) is the periodic compaction: it
// trims expired sessions out of the window, re-derives the popularity
// ranking, and retrains from scratch — restoring the exact model a
// cold retrain would produce and re-applying the space optimizations.
// RunIncremental schedules both; Run is the legacy rebuild-only loop.
//
// Both paths are crash-safe: an update that panics, or that would
// replace a trained model with an empty one (a traffic lull trimming
// the whole window, clock skew jumping past it), is logged, counted in
// pbppm_rebuild_skipped_total, and discarded — the previous snapshot
// stays live instead of blanking or poisoning the server.
//
// The Maintainer is safe for concurrent use. Each update constructs
// its model off to the side and then publishes it as an immutable
// snapshot through an atomic pointer: request-serving goroutines call
// Observe and Predictor while an update runs, and predictions on a
// published model are read-only (usage recording is detached before
// publishing — see markov.UsageRecorder). A published model is never
// trained or mutated again; the next update swaps in a whole new one.
package maintain

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"pbppm/internal/markov"
	"pbppm/internal/obs"
	"pbppm/internal/popularity"
	"pbppm/internal/session"
)

// Factory builds a fresh predictor from the window's popularity
// ranking; the maintainer then trains it on the window's sessions.
// For PB-PPM:
//
//	func(rank *popularity.Ranking) markov.Predictor {
//	    return core.New(rank, core.Config{RelProbCutoff: 0.01})
//	}
type Factory func(rank *popularity.Ranking) markov.Predictor

// DefaultMaxStaged bounds the delta staging buffer when Config.MaxStaged
// is zero. When the buffer is full the oldest staged sessions are
// dropped from staging only — they remain in the sliding window and are
// recovered by the next compaction.
const DefaultMaxStaged = 1 << 16

// Config parameterizes a Maintainer.
type Config struct {
	// Window is how much history rebuilds train on; zero selects the
	// paper's common 7-day window.
	Window time.Duration
	// Factory builds the model at each rebuild; required.
	Factory Factory
	// MaxStaged bounds the delta staging buffer (sessions observed since
	// the last update, awaiting the next delta merge); zero selects
	// DefaultMaxStaged. Overflow drops the oldest staged sessions, which
	// stay in the window for the next compaction to recover.
	MaxStaged int
	// OnPublish, if set, receives every successfully published snapshot —
	// initial build, delta merge, or compaction. The HTTP server wires
	// its SetPredictor here so swaps reach the serving path immediately.
	// It is called with the maintainer's publish lock held and must not
	// call back into Rebuild or DeltaMerge.
	OnPublish func(markov.Predictor)
	// Obs registers maintenance metrics — rebuild and delta-merge
	// counters and latencies, the staged-session gauge, skip counters by
	// reason — and model-health gauges published at snapshot-swap time:
	// node/branch/leaf counts, max height, and approximate bytes, the
	// live counterpart of the paper's Figure 4 storage comparison. Nil
	// keeps the metrics process-internal.
	Obs *obs.Registry
	// Logger receives rebuild progress lines, tagged component=maintain;
	// nil discards them.
	Logger *slog.Logger
	// Annotations, if set, receives a publish-event marker for every
	// successful model swap — kind "compaction" for full rebuilds,
	// "delta_merge" for incremental merges — so dashboards and the
	// /debug/slo report can correlate quality shifts with model
	// updates. Nil disables the markers.
	Annotations *obs.Annotations
}

func (c Config) window() time.Duration {
	if c.Window <= 0 {
		return 7 * 24 * time.Hour
	}
	return c.Window
}

func (c Config) maxStaged() int {
	if c.MaxStaged <= 0 {
		return DefaultMaxStaged
	}
	return c.MaxStaged
}

// Skip reasons recorded in pbppm_rebuild_skipped_total{reason}.
const (
	// skipEmptyWindow: the trimmed window held no sessions while a
	// trained model was already published.
	skipEmptyWindow = "empty_window"
	// skipEmptyModel: training produced an empty model from a non-empty
	// window (e.g. over-aggressive pruning) while a trained one is live.
	skipEmptyModel = "empty_model"
	// skipPanic: the factory, training, or merge panicked.
	skipPanic = "panic"
)

// predictorCell boxes the published model so an interface value can sit
// behind an atomic.Pointer.
type predictorCell struct{ p markov.Predictor }

// maintainMetrics holds the update-loop metrics and the model-health
// gauges, registered when Config.Obs is set (nil-registry safe).
type maintainMetrics struct {
	rebuilds        *obs.Counter
	rebuildSeconds  *obs.Histogram
	deltaMerges     *obs.Counter
	deltaSeconds    *obs.Histogram
	deltaSessions   *obs.Counter
	skippedEmptyWin *obs.Counter
	skippedEmptyMdl *obs.Counter
	skippedPanic    *obs.Counter
	stagedSessions  *obs.Gauge
	stagedDropped   *obs.Counter
	windowSessions  *obs.Gauge
	modelNodes      *obs.Gauge
	modelBranches   *obs.Gauge
	modelLeaves     *obs.Gauge
	modelMaxHeight  *obs.Gauge
	modelBytes      *obs.Gauge
	modelArenaBytes *obs.Gauge
}

func newMaintainMetrics(reg *obs.Registry) *maintainMetrics {
	reason := func(v string) obs.Label { return obs.Label{Name: "reason", Value: v} }
	const skipHelp = "Model updates discarded instead of published, by reason; the previous snapshot stayed live."
	return &maintainMetrics{
		rebuilds: reg.Counter("pbppm_rebuilds_total",
			"Completed full model rebuilds (compactions)."),
		rebuildSeconds: reg.Histogram("pbppm_rebuild_seconds",
			"Model rebuild duration: window trim, ranking, training, optimization.", nil),
		deltaMerges: reg.Counter("pbppm_delta_merges_total",
			"Completed incremental delta merges (staged sessions folded into a clone of the live model)."),
		deltaSeconds: reg.Histogram("pbppm_delta_merge_seconds",
			"Delta-merge duration: shard training, snapshot clone, fold, publish.", nil),
		deltaSessions: reg.Counter("pbppm_delta_sessions_total",
			"Sessions absorbed through the incremental delta-merge path."),
		skippedEmptyWin: reg.Counter("pbppm_rebuild_skipped_total", skipHelp, reason(skipEmptyWindow)),
		skippedEmptyMdl: reg.Counter("pbppm_rebuild_skipped_total", skipHelp, reason(skipEmptyModel)),
		skippedPanic:    reg.Counter("pbppm_rebuild_skipped_total", skipHelp, reason(skipPanic)),
		stagedSessions: reg.Gauge("pbppm_staged_sessions",
			"Sessions staged for the next incremental delta merge."),
		stagedDropped: reg.Counter("pbppm_staged_dropped_total",
			"Oldest staged sessions dropped by the staging bound; the window keeps them for the next compaction."),
		windowSessions: reg.Gauge("pbppm_window_sessions",
			"Sessions in the sliding training window at the last rebuild."),
		modelNodes: reg.Gauge("pbppm_model_nodes",
			"URL nodes in the published model, the paper's storage metric (Figure 4)."),
		modelBranches: reg.Gauge("pbppm_model_branches",
			"Root branches in the published model."),
		modelLeaves: reg.Gauge("pbppm_model_leaves",
			"Root-to-leaf paths in the published model."),
		modelMaxHeight: reg.Gauge("pbppm_model_max_height",
			"Longest branch of the published model, in nodes."),
		modelBytes: reg.Gauge("pbppm_model_bytes",
			"Approximate in-memory size of the published model."),
		modelArenaBytes: reg.Gauge("pbppm_model_arena_bytes",
			"Size of the published model's frozen arena image in bytes; zero when the published model is not arena-backed."),
	}
}

// Maintainer keeps the sliding session window, the delta staging
// buffer, and the current model.
type Maintainer struct {
	cfg     Config
	metrics *maintainMetrics
	log     *slog.Logger

	mu       sync.Mutex
	sessions []session.Session // the sliding window, roughly ordered by start time

	// staged holds sessions observed since the last update, awaiting the
	// next delta merge; stagedHead indexes its first live element so the
	// overflow bound drops oldest-first in amortized O(1).
	staged     []session.Session
	stagedHead int

	// publishMu serializes model updates (Rebuild, DeltaMerge) against
	// each other so a delta merge never clones a snapshot that a
	// concurrent compaction is about to replace. Observe and Predictor
	// never take it.
	publishMu sync.Mutex

	// editable is the live (mutable) model behind the published
	// snapshot. The published model is its frozen arena image (when the
	// model can freeze) and is never trained again; the delta path
	// clones editable instead, so incremental training keeps working
	// after freezing replaced the served representation. Guarded by
	// publishMu.
	editable markov.Predictor

	// current is the published model snapshot, swapped whole by updates
	// and read lock-free by Predictor.
	current     atomic.Pointer[predictorCell]
	rebuilds    atomic.Int64
	deltaMerges atomic.Int64

	// lastRank is the popularity ranking derived from the window at the
	// last compaction, published for the serving layer to grade live
	// hint-lifecycle events (Ranking). Delta merges deliberately do not
	// touch it: like the space optimizations, re-ranking belongs to the
	// compaction path.
	lastRank atomic.Pointer[popularity.Ranking]

	// subscribers receive every published snapshot after Config.OnPublish;
	// guarded by publishMu so delivery serializes with publishes.
	subscribers []func(markov.Predictor)
}

// New returns an empty maintainer. It returns an error on a nil
// factory.
func New(cfg Config) (*Maintainer, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("maintain: nil model factory")
	}
	return &Maintainer{
		cfg:     cfg,
		metrics: newMaintainMetrics(cfg.Obs),
		log:     obs.Component(cfg.Logger, "maintain"),
	}, nil
}

// Observe appends a completed session to the window and stages it for
// the next delta merge. Sessions may arrive in any order; trimming does
// not assume chronological arrival. When staging overflows MaxStaged,
// the oldest staged sessions are dropped from staging (counted in
// pbppm_staged_dropped_total) — the window still holds them, so the
// next compaction trains on them.
func (m *Maintainer) Observe(s session.Session) {
	if s.Len() == 0 {
		return
	}
	max := m.cfg.maxStaged()
	m.mu.Lock()
	m.sessions = append(m.sessions, s)
	m.staged = append(m.staged, s)
	dropped := 0
	if live := len(m.staged) - m.stagedHead; live > max {
		dropped = live - max
		m.stagedHead += dropped
	}
	// Compact the buffer once the dead prefix dominates, so the head
	// index scheme stays amortized O(1) per Observe.
	if m.stagedHead > len(m.staged)/2 {
		n := copy(m.staged, m.staged[m.stagedHead:])
		clear(m.staged[n:])
		m.staged = m.staged[:n]
		m.stagedHead = 0
	}
	stagedNow := len(m.staged) - m.stagedHead
	m.mu.Unlock()
	if dropped > 0 {
		m.metrics.stagedDropped.Add(int64(dropped))
	}
	m.metrics.stagedSessions.Set(int64(stagedNow))
}

// WindowSize reports how many sessions the window currently holds.
func (m *Maintainer) WindowSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// StagedSize reports how many sessions await the next delta merge.
func (m *Maintainer) StagedSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.staged) - m.stagedHead
}

// Rebuilds reports how many full rebuilds (compactions) have published.
func (m *Maintainer) Rebuilds() int {
	return int(m.rebuilds.Load())
}

// DeltaMerges reports how many incremental delta merges have published.
func (m *Maintainer) DeltaMerges() int {
	return int(m.deltaMerges.Load())
}

// SkippedUpdates reports how many updates were discarded instead of
// published (empty window, empty model, or panic), keeping the previous
// snapshot live.
func (m *Maintainer) SkippedUpdates() int {
	return int(m.metrics.skippedEmptyWin.Value() +
		m.metrics.skippedEmptyMdl.Value() +
		m.metrics.skippedPanic.Value())
}

// Predictor returns the current model snapshot, or nil before the
// first update. The snapshot is immutable: predictions on it are
// read-only and safe for unsynchronized concurrent use (its usage
// recording was detached at publish time), and it is never trained
// again — the next update publishes a fresh model instead of mutating
// this one.
func (m *Maintainer) Predictor() markov.Predictor {
	if c := m.current.Load(); c != nil {
		return c.p
	}
	return nil
}

// Ranking returns the popularity ranking derived from the window at
// the last compaction, or nil before the first one. It implements
// popularity.Grader, so the serving layer can grade live hint events
// with the same ranking the published model was built from.
func (m *Maintainer) Ranking() *popularity.Ranking {
	return m.lastRank.Load()
}

// takeStaged drains the staging buffer and returns the batch.
func (m *Maintainer) takeStaged() []session.Session {
	m.mu.Lock()
	live := m.staged[m.stagedHead:]
	batch := make([]session.Session, len(live))
	copy(batch, live)
	m.clearStagedLocked()
	m.mu.Unlock()
	m.metrics.stagedSessions.Set(0)
	return batch
}

// clearStagedLocked resets the staging buffer; the caller holds mu.
func (m *Maintainer) clearStagedLocked() {
	clear(m.staged)
	m.staged = m.staged[:0]
	m.stagedHead = 0
}

// guarded runs fn and converts a panic into an error, so one poisoned
// window or model bug cannot kill the maintenance loop or unpublish the
// live snapshot.
func guarded(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("maintain: update panicked: %v", r)
		}
	}()
	fn()
	return nil
}

// skip records one discarded update and logs it.
func (m *Maintainer) skip(op, reason string, detail any) {
	switch reason {
	case skipEmptyWindow:
		m.metrics.skippedEmptyWin.Inc()
	case skipEmptyModel:
		m.metrics.skippedEmptyMdl.Inc()
	default:
		m.metrics.skippedPanic.Inc()
	}
	m.log.Warn("model update skipped; previous snapshot stays live",
		"op", op, "reason", reason, "detail", detail)
}

// publish installs model as the live snapshot and returns the
// predictor actually published. The model is kept as the editable base
// for future delta merges; what gets served is its frozen arena image
// when the model can freeze (markov.Freezer) — O(1) GC objects,
// allocation-free predictions — and the model itself otherwise. Either
// way the published predictor is immutable from here on: usage
// recording is detached, the atomic pointer is swapped, the
// model-health gauges refresh, and Config.OnPublish fires. The caller
// holds publishMu.
func (m *Maintainer) publish(model markov.Predictor) markov.Predictor {
	m.editable = model
	published := model
	if fz, ok := model.(markov.Freezer); ok {
		published = fz.Freeze()
	}
	if ur, ok := published.(markov.UsageRecorder); ok {
		ur.SetUsageRecording(false)
	}
	m.current.Store(&predictorCell{p: published})
	m.metrics.modelNodes.Set(int64(published.NodeCount()))
	if st, ok := markov.StatsOf(published); ok {
		m.metrics.modelBranches.Set(int64(st.Roots))
		m.metrics.modelLeaves.Set(int64(st.Leaves))
		m.metrics.modelMaxHeight.Set(int64(st.MaxDepth))
		m.metrics.modelBytes.Set(st.Bytes)
	}
	if ah, ok := published.(markov.ArenaHolder); ok && ah.Arena() != nil {
		m.metrics.modelArenaBytes.Set(int64(ah.Arena().SizeBytes()))
	} else {
		m.metrics.modelArenaBytes.Set(0)
	}
	if m.cfg.OnPublish != nil {
		m.cfg.OnPublish(published)
	}
	for _, fn := range m.subscribers {
		fn(published)
	}
	return published
}

// Subscribe registers fn to receive every subsequently published
// snapshot — the fan-out a cluster uses to replicate one immutable
// model to all its shards (each shard's SetPredictor is a pointer
// swap; the snapshot itself is shared). If a snapshot is already
// published, fn receives it immediately, so subscription order and
// publish order cannot race a subscriber into staleness. Like
// Config.OnPublish, fn runs with the publish lock held and must not
// call back into Rebuild or DeltaMerge.
func (m *Maintainer) Subscribe(fn func(markov.Predictor)) {
	m.publishMu.Lock()
	defer m.publishMu.Unlock()
	m.subscribers = append(m.subscribers, fn)
	if p := m.Predictor(); p != nil {
		fn(p)
	}
}

// InstallSnapshot publishes a model that arrived from another process
// through the snapshot-distribution channel, running it through the
// same crash-safe gate local updates use: an empty model never replaces
// a trained one, a publish panic is contained, and either rejection
// keeps the previous snapshot live (counted in
// pbppm_rebuild_skipped_total like any other discarded update). The
// ranking travels with the model and is stored first, so an OnPublish
// observer grading by Ranking() sees the ranking the model was built
// from — without it a remote shard would silently grade every hint
// event popularity-unknown.
//
// The installed model is typically frozen (not a markov.Freezer or
// IncrementalTrainer), so on a follower DeltaMerge degrades to rebuild;
// followers do not run local maintenance loops, so that path stays
// cold.
func (m *Maintainer) InstallSnapshot(model markov.Predictor, rank *popularity.Ranking) error {
	if model == nil {
		return fmt.Errorf("maintain: install of nil model")
	}
	m.publishMu.Lock()
	defer m.publishMu.Unlock()

	prev := m.Predictor()
	if model.NodeCount() == 0 && prev != nil && prev.NodeCount() > 0 {
		m.skip("install-snapshot", skipEmptyModel, model.Name())
		return fmt.Errorf("maintain: snapshot model is empty while a trained model is live")
	}
	if err := guarded(func() {
		if rank != nil {
			m.lastRank.Store(rank)
		}
		m.publish(model)
	}); err != nil {
		m.skip("install-snapshot", skipPanic, err)
		return err
	}
	m.cfg.Annotations.Add("snapshot_install",
		fmt.Sprintf("model=%s nodes=%d", model.Name(), model.NodeCount()))
	m.log.Info("snapshot model installed",
		"model", model.Name(), "nodes", model.NodeCount())
	return nil
}

// Rebuild is the full update path, used for the initial build and for
// periodic compactions: it trims the window to cfg.Window ending at
// now, re-derives the popularity ranking, constructs a fresh model
// through the factory, trains it on the whole window, runs its space
// optimization, and publishes it atomically. The staging buffer is
// cleared — everything staged is inside the window just trained (or
// expired with it). It returns the installed predictor, or the
// previous one when the update was skipped (empty window or model
// while a trained snapshot is live, or a panic during training).
//
// The expensive training runs outside the session lock: Observe,
// Predictor, and the serving path stay responsive during a rebuild.
func (m *Maintainer) Rebuild(now time.Time) markov.Predictor {
	m.publishMu.Lock()
	defer m.publishMu.Unlock()
	return m.rebuildLocked(now)
}

func (m *Maintainer) rebuildLocked(now time.Time) markov.Predictor {
	start := time.Now()
	cutoff := now.Add(-m.cfg.window())

	// Snapshot and trim under the lock. Sessions may have been observed
	// out of order, so filter the whole window rather than scanning an
	// expired prefix. A session starting exactly at the cutoff is kept
	// (the !Before contract).
	m.mu.Lock()
	kept := m.sessions[:0]
	for _, s := range m.sessions {
		if !s.Start().Before(cutoff) {
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(m.sessions); i++ {
		m.sessions[i] = session.Session{} // release trimmed views to the GC
	}
	m.sessions = kept
	window := make([]session.Session, len(kept))
	copy(window, kept)
	m.clearStagedLocked()
	m.mu.Unlock()
	m.metrics.stagedSessions.Set(0)

	prev := m.Predictor()
	if len(window) == 0 && prev != nil {
		// A traffic lull or clock skew emptied the window; publishing the
		// resulting empty model would blank a trained server.
		m.skip("rebuild", skipEmptyWindow, now)
		return prev
	}

	var model markov.Predictor
	var rank *popularity.Ranking
	err := guarded(func() {
		rank = popularity.NewRanking()
		for _, s := range window {
			for _, v := range s.Views {
				rank.Observe(v.URL, 1)
			}
		}
		model = m.cfg.Factory(rank)
		seqs := make([][]string, len(window))
		for i, s := range window {
			seqs[i] = s.URLs()
		}
		markov.TrainAllParallel(model, seqs)
		if opt, ok := model.(interface{ Optimize() int }); ok {
			opt.Optimize()
		}
	})
	if err != nil {
		m.skip("rebuild", skipPanic, err)
		return prev
	}
	if model == nil || (model.NodeCount() == 0 && prev != nil && prev.NodeCount() > 0) {
		m.skip("rebuild", skipEmptyModel, len(window))
		return prev
	}

	// Publish the ranking before the model so an OnPublish observer
	// that grades by Ranking() sees the ranking the new model was
	// built from, not the previous compaction's.
	m.lastRank.Store(rank)
	published := m.publish(model)
	m.rebuilds.Add(1)
	m.cfg.Annotations.Add("compaction",
		fmt.Sprintf("model=%s sessions=%d nodes=%d",
			published.Name(), len(window), published.NodeCount()))

	dur := time.Since(start)
	m.metrics.rebuilds.Inc()
	m.metrics.rebuildSeconds.Observe(dur)
	m.metrics.windowSessions.Set(int64(len(window)))
	m.log.Info("model rebuilt",
		"model", published.Name(),
		"sessions", len(window),
		"nodes", published.NodeCount(),
		"arena_bytes", m.metrics.modelArenaBytes.Value(),
		"duration", dur.Round(time.Millisecond))
	return published
}

// DeltaMerge is the incremental update path: it drains the staging
// buffer, trains only those sessions into a fresh shard, folds the
// shard into a deep clone of the editable model behind the live
// snapshot, and publishes the clone (frozen into an arena when the
// model supports it) — cost proportional to the delta (plus the
// clone's memcpy-like tree copy and the freeze), not to retraining the
// window. Space optimizations and popularity re-ranking are
// deliberately not applied here; the next compaction (Rebuild)
// restores the canonical from-scratch model.
//
// When no model is published yet, or the model does not implement
// markov.IncrementalTrainer, DeltaMerge falls back to a full rebuild.
// An empty staging buffer is a no-op. A merge that panics is discarded
// and counted; the dropped batch stays in the window for the next
// compaction to recover.
func (m *Maintainer) DeltaMerge(now time.Time) markov.Predictor {
	m.publishMu.Lock()
	defer m.publishMu.Unlock()

	// Clone the editable base, not the published snapshot: publishing
	// freezes the model into an arena, which cannot be trained — the
	// mutable tree lives on in editable precisely so the delta path
	// stays O(delta + clone).
	prev := m.Predictor()
	inc, ok := m.editable.(markov.IncrementalTrainer)
	if prev == nil || !ok {
		return m.rebuildLocked(now)
	}
	batch := m.takeStaged()
	if len(batch) == 0 {
		return prev
	}

	start := time.Now()
	var merged markov.Predictor
	err := guarded(func() {
		shard := inc.NewShard()
		seqs := make([][]string, len(batch))
		for i, s := range batch {
			seqs[i] = s.URLs()
		}
		markov.TrainAllParallel(shard, seqs)
		clone := inc.Clone()
		clone.(markov.ShardedTrainer).MergeShard(shard)
		merged = clone
	})
	if err != nil {
		m.skip("delta-merge", skipPanic, err)
		return prev
	}
	if merged == nil || (merged.NodeCount() == 0 && prev.NodeCount() > 0) {
		m.skip("delta-merge", skipEmptyModel, len(batch))
		return prev
	}

	published := m.publish(merged)
	m.deltaMerges.Add(1)
	m.cfg.Annotations.Add("delta_merge",
		fmt.Sprintf("model=%s delta_sessions=%d nodes=%d",
			published.Name(), len(batch), published.NodeCount()))

	dur := time.Since(start)
	m.metrics.deltaMerges.Inc()
	m.metrics.deltaSeconds.Observe(dur)
	m.metrics.deltaSessions.Add(int64(len(batch)))
	m.log.Info("model delta-merged",
		"model", published.Name(),
		"delta_sessions", len(batch),
		"nodes", published.NodeCount(),
		"arena_bytes", m.metrics.modelArenaBytes.Value(),
		"duration", dur.Round(time.Millisecond))
	return published
}

// Run rebuilds every interval until stop is closed; intended as
//
//	stop := make(chan struct{})
//	go maint.Run(interval, stop)
//
// The first rebuild happens after the first interval elapses. Each
// rebuild uses the wall clock at rebuild start — not the ticker's
// receive value, which lags under load and would drift the window
// cutoff — and rebuild panics are contained (see Rebuild), so one bad
// window cannot kill maintenance permanently.
func (m *Maintainer) Run(interval time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			m.Rebuild(time.Now())
		}
	}
}

// RunIncremental runs the incremental maintenance schedule until stop
// is closed: a delta merge every delta interval, demoting full rebuilds
// to compactions every compact interval (compact <= delta disables the
// separate compaction ticker and every tick compacts). Like Run, each
// update reads the wall clock at update start, and panics are contained
// inside the update paths.
func (m *Maintainer) RunIncremental(delta, compact time.Duration, stop <-chan struct{}) {
	if compact <= delta {
		m.Run(delta, stop)
		return
	}
	deltaTick := time.NewTicker(delta)
	defer deltaTick.Stop()
	compactTick := time.NewTicker(compact)
	defer compactTick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-compactTick.C:
			m.Rebuild(time.Now())
		case <-deltaTick.C:
			m.DeltaMerge(time.Now())
		}
	}
}
