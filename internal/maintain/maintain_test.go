package maintain

import (
	"strings"
	"sync"
	"testing"
	"time"

	"pbppm/internal/core"
	"pbppm/internal/markov"
	"pbppm/internal/obs"
	"pbppm/internal/popularity"
	"pbppm/internal/session"
)

var epoch = time.Date(1995, 7, 1, 0, 0, 0, 0, time.UTC)

func mkSession(startHour int, urls ...string) session.Session {
	s := session.Session{Client: "c"}
	for i, u := range urls {
		s.Views = append(s.Views, session.PageView{
			URL:  u,
			Time: epoch.Add(time.Duration(startHour)*time.Hour + time.Duration(i)*time.Minute),
		})
	}
	return s
}

func pbFactory(rank *popularity.Ranking) markov.Predictor {
	return core.New(rank, core.Config{RelProbCutoff: 0.01})
}

func TestNewRequiresFactory(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestRebuildTrainsOnWindow(t *testing.T) {
	m, err := New(Config{Factory: pbFactory})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predictor() != nil {
		t.Error("predictor before first rebuild")
	}
	for i := 0; i < 5; i++ {
		m.Observe(mkSession(i, "/home", "/news"))
	}
	m.Observe(session.Session{}) // empty: ignored
	if m.WindowSize() != 5 {
		t.Fatalf("window = %d", m.WindowSize())
	}

	model := m.Rebuild(epoch.Add(12 * time.Hour))
	if model == nil || m.Predictor() != model {
		t.Fatal("rebuild did not install the model")
	}
	ps := model.Predict([]string{"/home"})
	if len(ps) == 0 || ps[0].URL != "/news" {
		t.Errorf("rebuilt model Predict = %+v", ps)
	}
	if m.Rebuilds() != 1 {
		t.Errorf("Rebuilds = %d", m.Rebuilds())
	}
}

func TestWindowTrimming(t *testing.T) {
	m, err := New(Config{Factory: pbFactory, Window: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(mkSession(0, "/old", "/older"))
	m.Observe(mkSession(30, "/fresh", "/new"))
	model := m.Rebuild(epoch.Add(40 * time.Hour)) // cutoff at hour 16

	if m.WindowSize() != 1 {
		t.Errorf("window after trim = %d", m.WindowSize())
	}
	if got := model.Predict([]string{"/old"}); len(got) != 0 {
		t.Errorf("expired session still predicted: %+v", got)
	}
	if got := model.Predict([]string{"/fresh"}); len(got) == 0 {
		t.Error("fresh session not learned")
	}
}

func TestWindowTrimmingOutOfOrder(t *testing.T) {
	// Regression: the old prefix-scan trim stopped at the first fresh
	// session, so an expired session observed after a fresh one survived
	// the trim and kept training rebuilt models forever.
	m, err := New(Config{Factory: pbFactory, Window: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(mkSession(30, "/fresh", "/new"))
	m.Observe(mkSession(0, "/old", "/older")) // out of order: older arrives later
	m.Observe(mkSession(32, "/fresh2", "/new2"))
	model := m.Rebuild(epoch.Add(40 * time.Hour)) // cutoff at hour 16

	if m.WindowSize() != 2 {
		t.Errorf("window after trim = %d, want 2", m.WindowSize())
	}
	if got := model.Predict([]string{"/old"}); len(got) != 0 {
		t.Errorf("expired out-of-order session still predicted: %+v", got)
	}
	if got := model.Predict([]string{"/fresh"}); len(got) == 0 {
		t.Error("fresh session observed before the stale one was lost")
	}
	if got := model.Predict([]string{"/fresh2"}); len(got) == 0 {
		t.Error("fresh session observed after the stale one was lost")
	}
}

func TestRebuildDetachesUsageRecording(t *testing.T) {
	m, err := New(Config{Factory: pbFactory})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(mkSession(0, "/home", "/news"))
	model := m.Rebuild(epoch.Add(time.Hour))
	// A published model must never record usage marks. The frozen arena
	// snapshot guarantees this structurally by not implementing
	// markov.UsageRecorder at all; a model that does implement it must
	// have recording detached.
	if ur, ok := model.(markov.UsageRecorder); ok && ur.UsageRecording() {
		t.Error("published model still records usage marks")
	}
	if _, ok := model.(markov.ArenaHolder); !ok {
		t.Error("published PB-PPM model is not an arena-backed frozen snapshot")
	}
}

func TestPopularityTracksWindow(t *testing.T) {
	m, err := New(Config{Factory: func(rank *popularity.Ranking) markov.Predictor {
		// Capture the ranking the factory received via closure check.
		if rank.Count("/hot") == 0 {
			panic("factory saw empty ranking")
		}
		return pbFactory(rank)
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m.Observe(mkSession(i, "/hot"))
	}
	m.Rebuild(epoch.Add(6 * time.Hour))
}

func TestConcurrentObserveAndRebuild(t *testing.T) {
	m, err := New(Config{Factory: pbFactory})
	if err != nil {
		t.Fatal(err)
	}
	// Seed one session so a rebuild racing ahead of the observers never
	// sees an empty window (an empty window after the first publish is
	// skipped, not republished).
	m.Observe(mkSession(0, "/seed", "/page"))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Observe(mkSession(g*200+i, "/home", "/news"))
				if i%50 == 0 {
					m.Predictor() // concurrent read
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			// Rebuild with the cutoff before every observed session so the
			// window never trims to empty (which would skip the publish).
			m.Rebuild(epoch.Add(24 * time.Hour))
		}
	}()
	wg.Wait()
	if m.Rebuilds() != 10 {
		t.Errorf("Rebuilds = %d", m.Rebuilds())
	}
	if m.Predictor() == nil {
		t.Error("no model installed")
	}
}

// TestConcurrentPredictOnSharedModel exercises the contract the
// maintainer documents: many goroutines predicting through Predictor()
// while rebuilds swap the snapshot underneath them. Before the serving
// path became read-only this raced on the tree's usage marks; run with
// -race to verify.
func TestConcurrentPredictOnSharedModel(t *testing.T) {
	m, err := New(Config{Factory: pbFactory})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		m.Observe(mkSession(i, "/home", "/news", "/news/today"))
	}
	m.Rebuild(epoch.Add(time.Hour))

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if p := m.Predictor(); p != nil {
					p.Predict([]string{"/home", "/news"})
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			m.Observe(mkSession(100+i, "/home", "/news"))
			m.Rebuild(epoch.Add(200 * time.Hour))
		}
	}()
	wg.Wait()
	if m.Predictor() == nil {
		t.Fatal("no model published")
	}
}

func TestRunLoop(t *testing.T) {
	m, err := New(Config{Factory: pbFactory})
	if err != nil {
		t.Fatal(err)
	}
	// Run rebuilds against the wall clock, so the session must sit inside
	// today's window for the rebuilds to publish rather than skip.
	s := session.Session{Client: "c"}
	now := time.Now()
	for i, u := range []string{"/a", "/b"} {
		s.Views = append(s.Views, session.PageView{URL: u, Time: now.Add(time.Duration(i) * time.Minute)})
	}
	m.Observe(s)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		m.Run(5*time.Millisecond, stop)
		close(done)
	}()
	deadline := time.After(2 * time.Second)
	for m.Rebuilds() < 2 {
		select {
		case <-deadline:
			t.Fatal("Run performed no rebuilds")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done
}

// TestPublishAnnotationsAndRanking: every successful publish drops a
// timeline marker (compaction vs delta-merge) and compactions refresh
// the window ranking exposed through Ranking for live-event grading.
func TestPublishAnnotationsAndRanking(t *testing.T) {
	ann := obs.NewAnnotations()
	m, err := New(Config{Factory: pbFactory, Annotations: ann})
	if err != nil {
		t.Fatal(err)
	}
	if m.Ranking() != nil {
		t.Error("ranking before first compaction")
	}

	m.Observe(mkSession(0, "/home", "/news"))
	m.Observe(mkSession(1, "/home", "/sports"))
	m.Rebuild(epoch.Add(2 * time.Hour))

	rank := m.Ranking()
	if rank == nil {
		t.Fatal("no ranking after compaction")
	}
	if got := rank.Count("/home"); got != 2 {
		t.Errorf("ranking Count(/home) = %d, want 2", got)
	}

	m.Observe(mkSession(3, "/home", "/news"))
	m.DeltaMerge(epoch.Add(4 * time.Hour))
	if m.Ranking() != rank {
		t.Error("delta merge replaced the compaction ranking")
	}

	recent := ann.Recent() // newest first
	if len(recent) != 2 {
		t.Fatalf("annotations = %+v, want compaction then delta_merge", recent)
	}
	if recent[0].Kind != "delta_merge" || recent[1].Kind != "compaction" {
		t.Errorf("annotation kinds = %q, %q", recent[0].Kind, recent[1].Kind)
	}
	for _, a := range recent {
		if !strings.Contains(a.Detail, "model=PB-PPM") || !strings.Contains(a.Detail, "nodes=") {
			t.Errorf("annotation detail %q missing model/nodes", a.Detail)
		}
	}

	// A skipped update leaves no marker.
	m.Rebuild(epoch.Add(100000 * time.Hour)) // trims the whole window: skipped
	if got := len(ann.Recent()); got != 2 {
		t.Errorf("skipped rebuild added a marker: %d annotations", got)
	}
}

// Subscribe fans every published snapshot out to all subscribers (a
// cluster wires each shard's SetPredictor here), delivers the current
// snapshot immediately to late subscribers, and keeps OnPublish-before-
// subscriber ordering on each publish.
func TestSubscribeFanOut(t *testing.T) {
	var order []string
	m, err := New(Config{
		Factory:   pbFactory,
		OnPublish: func(markov.Predictor) { order = append(order, "onpublish") },
	})
	if err != nil {
		t.Fatal(err)
	}
	var aGot, bGot []markov.Predictor
	m.Subscribe(func(p markov.Predictor) { order = append(order, "a"); aGot = append(aGot, p) })
	if len(aGot) != 0 {
		t.Fatal("subscriber called before any publish")
	}

	for i := 0; i < 3; i++ {
		m.Observe(mkSession(i, "/home", "/news"))
	}
	model := m.Rebuild(epoch.Add(6 * time.Hour))
	if len(aGot) != 1 || aGot[0] != model {
		t.Fatalf("subscriber a got %d snapshots, want the published one", len(aGot))
	}
	if want := []string{"onpublish", "a"}; strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("delivery order = %v, want %v", order, want)
	}

	// Late subscriber catches up on the current snapshot immediately.
	m.Subscribe(func(p markov.Predictor) { bGot = append(bGot, p) })
	if len(bGot) != 1 || bGot[0] != model {
		t.Fatalf("late subscriber got %v, want immediate catch-up", bGot)
	}

	// Next publish reaches both.
	m.Observe(mkSession(8, "/home", "/sports"))
	next := m.Rebuild(epoch.Add(12 * time.Hour))
	if len(aGot) != 2 || aGot[1] != next || len(bGot) != 2 || bGot[1] != next {
		t.Errorf("fan-out after second publish: a=%d b=%d snapshots", len(aGot), len(bGot))
	}
}
