package maintain

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"

	"pbppm/internal/obs"
)

// TestRebuildPublishesMetrics checks that a rebuild exports its
// duration, the window size, and the model-health gauges — the live
// counterpart of the paper's Figure 4 storage numbers.
func TestRebuildPublishesMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	m, err := New(Config{
		Factory: pbFactory,
		Obs:     reg,
		Logger:  obs.NewLogger(&logBuf, slog.LevelInfo),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(mkSession(0, "/a", "/b", "/c"))
	m.Observe(mkSession(1, "/a", "/b"))
	m.Rebuild(epoch.Add(2 * time.Hour))

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := obs.ValidateExposition(text); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	for _, want := range []string{
		"pbppm_rebuilds_total 1",
		"pbppm_window_sessions 2",
		"pbppm_rebuild_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// Model-health gauges must be non-zero for a trained PB-PPM model.
	for _, gauge := range []struct {
		name string
		g    *obs.Gauge
	}{
		{"pbppm_model_nodes", m.metrics.modelNodes},
		{"pbppm_model_branches", m.metrics.modelBranches},
		{"pbppm_model_leaves", m.metrics.modelLeaves},
		{"pbppm_model_max_height", m.metrics.modelMaxHeight},
		{"pbppm_model_bytes", m.metrics.modelBytes},
	} {
		if gauge.g.Value() <= 0 {
			t.Errorf("%s = %d, want > 0", gauge.name, gauge.g.Value())
		}
		if !strings.Contains(text, gauge.name) {
			t.Errorf("exposition missing %s", gauge.name)
		}
	}
	// The rebuild logged one component-tagged structured line.
	logged := logBuf.String()
	if !strings.Contains(logged, "model rebuilt") || !strings.Contains(logged, "component=maintain") {
		t.Errorf("rebuild log = %q", logged)
	}
}

// TestIncrementalMetricsExposition checks the delta-merge counters,
// the staged-session gauge, and the reason-labeled skip counters in
// the Prometheus exposition.
func TestIncrementalMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	m, err := New(Config{
		Factory: pbFactory,
		Obs:     reg,
		Logger:  obs.NewLogger(&logBuf, slog.LevelWarn),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(mkSession(0, "/a", "/b", "/c"))
	m.Rebuild(epoch.Add(2 * time.Hour))

	// Two sessions through the delta path.
	m.Observe(mkSession(3, "/a", "/d"))
	m.Observe(mkSession(4, "/a", "/e"))
	if m.metrics.stagedSessions.Value() != 2 {
		t.Errorf("staged gauge = %d, want 2", m.metrics.stagedSessions.Value())
	}
	m.DeltaMerge(epoch.Add(5 * time.Hour))

	// One skipped compaction (empty window) for the labeled counter.
	m.Rebuild(epoch.Add(10000 * time.Hour))

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := obs.ValidateExposition(text); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	for _, want := range []string{
		"pbppm_delta_merges_total 1",
		"pbppm_delta_sessions_total 2",
		"pbppm_delta_merge_seconds_count 1",
		"pbppm_staged_sessions 0",
		`pbppm_rebuild_skipped_total{reason="empty_window"} 1`,
		`pbppm_rebuild_skipped_total{reason="empty_model"} 0`,
		`pbppm_rebuild_skipped_total{reason="panic"} 0`,
		"pbppm_staged_dropped_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "model update skipped") || !strings.Contains(logged, "empty_window") {
		t.Errorf("skip log = %q", logged)
	}
}

// TestRebuildWithoutObsStaysSilent pins the nil-config contract: no
// registry, no logger, no panic.
func TestRebuildWithoutObsStaysSilent(t *testing.T) {
	m, err := New(Config{Factory: pbFactory})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(mkSession(0, "/a", "/b"))
	if got := m.Rebuild(epoch.Add(time.Hour)); got == nil {
		t.Fatal("Rebuild returned nil model")
	}
	if m.metrics.rebuilds.Value() != 1 {
		t.Error("internal rebuild counter not kept without a registry")
	}
}
