// Snapshot distribution: the channel that lets out-of-process shards
// track the maintainer's model without retraining. The process that
// owns the training window (the publisher) serves its current frozen
// model image over HTTP; follower processes poll it, validate the
// image end to end, and install it through the same crash-safe publish
// gate local rebuilds use — a failed or corrupt download keeps the
// previous snapshot live.
//
// # Wire format (pbppmSN1)
//
// Unlike the arena image — which is host-endian by design and guarded
// by a byte-order mark, because it is mapped directly into memory — the
// snapshot envelope crosses machines, so every integer in it is
// explicit big-endian:
//
//	magic   "pbppmSN1"                      8 bytes
//	version uint64                          publisher's monotonic counter
//	kind    uint32 length + bytes           frozen-model kind (decoder registry key)
//	model   uint64 length + bytes           markov.FrozenEncoder output
//	ranking uint64 length + bytes           popularity.Ranking.Encode; length 0 = none
//	crc     uint64                          CRC-64/ECMA over everything above
//
// The trailing checksum is verified before any section is decoded, so
// a truncated or bit-flipped download fails fast with ErrChecksum and
// never reaches a gob decoder.
package maintain

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pbppm/internal/markov"
	"pbppm/internal/obs"
	"pbppm/internal/popularity"
)

const snapshotMagic = "pbppmSN1"

// maxSnapshotSection bounds any single section length a decoder will
// accept, so a corrupt header cannot ask for an absurd allocation.
const maxSnapshotSection = 1 << 32

// ErrChecksum reports a snapshot whose trailing CRC does not match its
// contents — a truncated or corrupted transfer. Followers count it
// separately from decode failures because it implicates the transport,
// not the model codecs.
var ErrChecksum = errors.New("maintain: snapshot checksum mismatch")

var snapshotCRC = crc64.MakeTable(crc64.ECMA)

// Snapshot is a decoded distribution payload: the revived model, the
// popularity ranking it was built from (nil when the publisher had
// none), and the publisher's version counter.
type Snapshot struct {
	Version uint64
	Model   markov.Predictor
	Ranking *popularity.Ranking
}

// EncodeSnapshot writes one distribution payload. The ranking may be
// nil; the model must be able to serialize itself (markov.FrozenEncoder
// — tree-backed models that cannot freeze have no wire form).
func EncodeSnapshot(w io.Writer, version uint64, model markov.FrozenEncoder, rank *popularity.Ranking) error {
	var body bytes.Buffer
	body.WriteString(snapshotMagic)
	var u64 [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(u64[:], v)
		body.Write(u64[:])
	}
	put(version)

	kind := model.FrozenKind()
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(kind)))
	body.Write(u32[:])
	body.WriteString(kind)

	var modelBuf bytes.Buffer
	if err := model.EncodeFrozen(&modelBuf); err != nil {
		return fmt.Errorf("maintain: encoding snapshot model: %w", err)
	}
	put(uint64(modelBuf.Len()))
	body.Write(modelBuf.Bytes())

	var rankBuf bytes.Buffer
	if rank != nil {
		if err := rank.Encode(&rankBuf); err != nil {
			return fmt.Errorf("maintain: encoding snapshot ranking: %w", err)
		}
	}
	put(uint64(rankBuf.Len()))
	body.Write(rankBuf.Bytes())

	put(crc64.Checksum(body.Bytes(), snapshotCRC))

	_, err := w.Write(body.Bytes())
	return err
}

// DecodeSnapshot validates and revives one distribution payload. The
// checksum is verified over the raw bytes before any section is
// decoded; a mismatch returns an error wrapping ErrChecksum.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) >= len(snapshotMagic) && string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("maintain: bad snapshot magic %q", data[:len(snapshotMagic)])
	}
	if len(data) < len(snapshotMagic)+8+4+8+8+8 {
		return nil, fmt.Errorf("maintain: snapshot too short (%d bytes): %w", len(data), ErrChecksum)
	}
	sum := binary.BigEndian.Uint64(data[len(data)-8:])
	if crc64.Checksum(data[:len(data)-8], snapshotCRC) != sum {
		return nil, ErrChecksum
	}

	rest := data[len(snapshotMagic) : len(data)-8]
	take := func(n uint64) ([]byte, error) {
		if n > maxSnapshotSection || uint64(len(rest)) < n {
			return nil, fmt.Errorf("maintain: snapshot section length %d exceeds remaining %d bytes", n, len(rest))
		}
		s := rest[:n]
		rest = rest[n:]
		return s, nil
	}

	hdr, err := take(8)
	if err != nil {
		return nil, err
	}
	version := binary.BigEndian.Uint64(hdr)

	kl, err := take(4)
	if err != nil {
		return nil, err
	}
	kindBytes, err := take(uint64(binary.BigEndian.Uint32(kl)))
	if err != nil {
		return nil, err
	}

	ml, err := take(8)
	if err != nil {
		return nil, err
	}
	modelBytes, err := take(binary.BigEndian.Uint64(ml))
	if err != nil {
		return nil, err
	}

	rl, err := take(8)
	if err != nil {
		return nil, err
	}
	rankBytes, err := take(binary.BigEndian.Uint64(rl))
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("maintain: %d trailing bytes after snapshot sections", len(rest))
	}

	model, err := markov.DecodeFrozenModel(string(kindBytes), bytes.NewReader(modelBytes))
	if err != nil {
		return nil, err
	}
	var rank *popularity.Ranking
	if len(rankBytes) > 0 {
		if rank, err = popularity.DecodeRanking(bytes.NewReader(rankBytes)); err != nil {
			return nil, err
		}
	}
	return &Snapshot{Version: version, Model: model, Ranking: rank}, nil
}

// snapshotImage is one encoded payload held for serving, swapped whole
// on every publish.
type snapshotImage struct {
	version uint64
	etag    string
	data    []byte
}

// publisherMetrics: the distribution channel's publisher-side metrics.
type publisherMetrics struct {
	version     *obs.Gauge
	bytes       *obs.Gauge
	publishes   *obs.Counter
	unsupported *obs.Counter
	servedFull  *obs.Counter
	served304   *obs.Counter
	servedWait  *obs.Counter
}

func newPublisherMetrics(reg *obs.Registry) *publisherMetrics {
	status := func(v string) obs.Label { return obs.Label{Name: "status", Value: v} }
	const reqHelp = "Snapshot endpoint responses, by status: full payload, not_modified (ETag match), or long-poll timeout answered 304."
	return &publisherMetrics{
		version: reg.Gauge("pbppm_snapshot_version",
			"Version of the snapshot currently offered to followers; bumps on every model publish."),
		bytes: reg.Gauge("pbppm_snapshot_bytes",
			"Encoded size of the snapshot currently offered to followers."),
		publishes: reg.Counter("pbppm_snapshot_publishes_total",
			"Model publishes encoded into a distribution snapshot."),
		unsupported: reg.Counter("pbppm_snapshot_unsupported_total",
			"Model publishes that could not be encoded for distribution (model has no frozen wire form or encoding failed); followers keep the previous snapshot."),
		servedFull: reg.Counter("pbppm_snapshot_requests_total", reqHelp, status("full")),
		served304:  reg.Counter("pbppm_snapshot_requests_total", reqHelp, status("not_modified")),
		servedWait: reg.Counter("pbppm_snapshot_requests_total", reqHelp, status("wait_timeout")),
	}
}

// PublisherConfig parameterizes a Publisher.
type PublisherConfig struct {
	// MaxWait caps a long-poll request's ?wait= duration; zero selects
	// 30 seconds.
	MaxWait time.Duration
	// Obs registers the publisher-side distribution metrics; nil keeps
	// them process-internal.
	Obs *obs.Registry
	// Logger receives encode-failure lines, tagged component=snapshot;
	// nil discards them.
	Logger *slog.Logger
}

func (c PublisherConfig) maxWait() time.Duration {
	if c.MaxWait <= 0 {
		return 30 * time.Second
	}
	return c.MaxWait
}

// Publisher serves the maintainer's current model as a versioned
// snapshot over HTTP. It subscribes to the maintainer, so every
// successful publish — initial build, delta merge, compaction, or an
// installed upstream snapshot — is re-encoded and offered with a fresh
// version; a model that cannot encode (no frozen wire form) is counted
// and skipped, leaving the previous snapshot on offer.
//
// GET responds 200 with the payload, ETag, and X-Snapshot-Version
// headers; with If-None-Match matching the current ETag it responds
// 304. A ?wait=DURATION query long-polls: the response is delayed until
// the version changes from the If-None-Match ETag or the wait (capped
// at MaxWait) elapses. Before the first publish the endpoint responds
// 404 — a follower treats that as "not yet", not an error.
type Publisher struct {
	cfg     PublisherConfig
	metrics *publisherMetrics
	log     *slog.Logger

	mu      sync.Mutex
	img     *snapshotImage
	changed chan struct{} // closed and replaced on every publish
	version uint64
}

// NewPublisher wires a publisher to the maintainer's publish stream.
// If a model is already published it is encoded immediately.
func NewPublisher(m *Maintainer, cfg PublisherConfig) *Publisher {
	p := &Publisher{
		cfg:     cfg,
		metrics: newPublisherMetrics(cfg.Obs),
		log:     obs.Component(cfg.Logger, "snapshot"),
		changed: make(chan struct{}),
	}
	m.Subscribe(func(model markov.Predictor) {
		// Subscribe delivers under the maintainer's publish lock, so
		// Ranking() here is exactly the ranking stored with this model.
		p.offer(model, m.Ranking())
	})
	return p
}

// offer encodes one published model and swaps it in as the current
// snapshot.
func (p *Publisher) offer(model markov.Predictor, rank *popularity.Ranking) {
	enc, ok := model.(markov.FrozenEncoder)
	if !ok {
		p.metrics.unsupported.Inc()
		p.log.Warn("published model has no frozen wire form; snapshot not updated",
			"model", model.Name())
		return
	}
	p.mu.Lock()
	version := p.version + 1
	p.mu.Unlock()

	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, version, enc, rank); err != nil {
		p.metrics.unsupported.Inc()
		p.log.Warn("snapshot encoding failed; snapshot not updated",
			"model", model.Name(), "error", err)
		return
	}
	data := buf.Bytes()
	img := &snapshotImage{
		version: version,
		etag:    fmt.Sprintf("\"v%d-%x\"", version, crc64.Checksum(data, snapshotCRC)),
		data:    data,
	}

	p.mu.Lock()
	p.version = version
	p.img = img
	close(p.changed)
	p.changed = make(chan struct{})
	p.mu.Unlock()

	p.metrics.publishes.Inc()
	p.metrics.version.Set(int64(version))
	p.metrics.bytes.Set(int64(len(data)))
	p.log.Info("snapshot offered", "version", version, "bytes", len(data), "etag", img.etag)
}

// current returns the offered image (nil before the first publish) and
// the change channel to wait on.
func (p *Publisher) current() (*snapshotImage, <-chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.img, p.changed
}

// Version reports the currently offered snapshot version, zero before
// the first publish.
func (p *Publisher) Version() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.version
}

// ServeHTTP implements the snapshot endpoint; see the Publisher doc.
func (p *Publisher) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	img, changed := p.current()
	inm := r.Header.Get("If-None-Match")

	// Long-poll: hold the request while the client's ETag still matches
	// the offer, until a publish fires or the capped wait elapses.
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" && img != nil && inm == img.etag {
		wait, err := time.ParseDuration(waitStr)
		if err != nil || wait <= 0 {
			http.Error(w, "bad wait duration", http.StatusBadRequest)
			return
		}
		if max := p.cfg.maxWait(); wait > max {
			wait = max
		}
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-changed:
			img, _ = p.current()
		case <-timer.C:
			p.metrics.servedWait.Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		case <-r.Context().Done():
			return
		}
	}

	if img == nil {
		http.Error(w, "no snapshot published yet", http.StatusNotFound)
		return
	}
	w.Header().Set("ETag", img.etag)
	w.Header().Set("X-Snapshot-Version", strconv.FormatUint(img.version, 10))
	if inm == img.etag {
		p.metrics.served304.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(img.data)))
	p.metrics.servedFull.Inc()
	if r.Method == http.MethodHead {
		return
	}
	w.Write(img.data)
}
