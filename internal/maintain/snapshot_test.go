package maintain

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"pbppm/internal/markov"
	"pbppm/internal/obs"
)

// trainedMaintainer builds a maintainer with one rebuilt PB-PPM model
// and a live ranking.
func trainedMaintainer(t *testing.T, reg *obs.Registry) *Maintainer {
	t.Helper()
	m, err := New(Config{Factory: pbFactory, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		m.Observe(mkSession(i, "/home", "/news", "/sports"))
		m.Observe(mkSession(i, "/home", "/weather"))
	}
	if m.Rebuild(epoch.Add(12*time.Hour)) == nil {
		t.Fatal("rebuild failed")
	}
	return m
}

func TestSnapshotWireRoundTrip(t *testing.T) {
	m := trainedMaintainer(t, nil)
	enc := m.Predictor().(markov.FrozenEncoder)

	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, 42, enc, m.Ranking()); err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 42 {
		t.Errorf("version = %d", snap.Version)
	}
	if snap.Ranking == nil {
		t.Fatal("ranking did not travel")
	}
	if g, w := snap.Ranking.GradeOf("/home"), m.Ranking().GradeOf("/home"); g != w {
		t.Errorf("decoded ranking grades /home %v, want %v", g, w)
	}
	want := m.Predictor().Predict([]string{"/home"})
	if got := snap.Model.Predict([]string{"/home"}); !reflect.DeepEqual(got, want) {
		t.Errorf("decoded model predicts %+v, want %+v", got, want)
	}

	// Without a ranking the section is empty and decodes to nil.
	buf.Reset()
	if err := EncodeSnapshot(&buf, 1, enc, nil); err != nil {
		t.Fatal(err)
	}
	if snap, err = DecodeSnapshot(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if snap.Ranking != nil {
		t.Error("nil ranking round-tripped non-nil")
	}
}

func TestDecodeSnapshotRejectsCorruption(t *testing.T) {
	m := trainedMaintainer(t, nil)
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, 7, m.Predictor().(markov.FrozenEncoder), m.Ranking()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Every truncation point must fail, never panic.
	for cut := 0; cut < len(valid); cut += 13 {
		if _, err := DecodeSnapshot(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	// A single flipped bit anywhere under the checksum must be caught as
	// a checksum error before any decoder runs.
	for _, off := range []int{len(snapshotMagic) + 3, len(valid) / 2, len(valid) - 9} {
		tampered := append([]byte(nil), valid...)
		tampered[off] ^= 0x40
		if _, err := DecodeSnapshot(tampered); !errors.Is(err, ErrChecksum) {
			t.Errorf("flip at %d: err = %v, want ErrChecksum", off, err)
		}
	}

	// A structurally corrupt payload with a *recomputed* checksum must
	// fall through to the decoders and still fail: corrupt the embedded
	// model section and re-seal the envelope.
	tampered := append([]byte(nil), valid...)
	for i := len(snapshotMagic) + 8 + 4 + 8 + 8; i < len(snapshotMagic)+8+4+8+8+32; i++ {
		tampered[i] ^= 0xFF
	}
	resealSnapshot(tampered)
	if _, err := DecodeSnapshot(tampered); err == nil {
		t.Error("corrupt model section with valid checksum accepted")
	} else if errors.Is(err, ErrChecksum) {
		t.Errorf("resealed corruption reported as checksum error: %v", err)
	}

	if _, err := DecodeSnapshot([]byte("pbppmXX1 wrong magic entirely.....")); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v", err)
	}
}

func TestPublisherServesVersionedSnapshots(t *testing.T) {
	reg := obs.NewRegistry()
	m := trainedMaintainer(t, nil)
	pub := NewPublisher(m, PublisherConfig{Obs: reg})

	// The subscription catches up on the already-published model.
	if v := pub.Version(); v != 1 {
		t.Fatalf("version after catch-up = %d", v)
	}
	srv := httptest.NewServer(pub)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body := readAllBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || resp.Header.Get("X-Snapshot-Version") != "1" {
		t.Fatalf("headers: etag=%q version=%q", etag, resp.Header.Get("X-Snapshot-Version"))
	}
	snap, err := DecodeSnapshot(body)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 || snap.Ranking == nil {
		t.Fatalf("payload: version=%d ranking=%v", snap.Version, snap.Ranking)
	}

	// Matching ETag: 304 with no body.
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("If-None-Match", etag)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	readAllBody(t, resp)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional status = %d", resp.StatusCode)
	}

	// A new publish bumps the version and changes the ETag.
	m.Observe(mkSession(6, "/home", "/scores"))
	m.Rebuild(epoch.Add(18 * time.Hour))
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	body = readAllBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-publish status = %d", resp.StatusCode)
	}
	if resp.Header.Get("ETag") == etag {
		t.Error("ETag unchanged across publishes")
	}
	if snap, err = DecodeSnapshot(body); err != nil || snap.Version != 2 {
		t.Fatalf("post-publish payload: %v version=%d", err, snap.Version)
	}
}

func TestPublisherBeforeFirstPublish(t *testing.T) {
	m, err := New(Config{Factory: pbFactory})
	if err != nil {
		t.Fatal(err)
	}
	pub := NewPublisher(m, PublisherConfig{})
	srv := httptest.NewServer(pub)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	readAllBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status before first publish = %d", resp.StatusCode)
	}
}

func TestPublisherLongPoll(t *testing.T) {
	m := trainedMaintainer(t, nil)
	pub := NewPublisher(m, PublisherConfig{MaxWait: 5 * time.Second})
	srv := httptest.NewServer(pub)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	readAllBody(t, resp)
	etag := resp.Header.Get("ETag")

	// Holding the current ETag, a waiter is released by the next publish.
	released := make(chan *http.Response, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"?wait=4s", nil)
		req.Header.Set("If-None-Match", etag)
		r, err := http.DefaultClient.Do(req)
		if err == nil {
			released <- r
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter park
	m.Observe(mkSession(7, "/home", "/late"))
	m.Rebuild(epoch.Add(20 * time.Hour))
	select {
	case r := <-released:
		body := readAllBody(t, r)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("long-poll status = %d", r.StatusCode)
		}
		if snap, err := DecodeSnapshot(body); err != nil || snap.Version != 2 {
			t.Fatalf("long-poll payload: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("long-poll not released by publish")
	}

	// A short wait with no publish times out to 304.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"?wait=50ms", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAllBody(t, resp2)
	if resp2.StatusCode != http.StatusOK {
		// Stale ETag (none sent) returns the payload immediately...
		t.Fatalf("wait with no ETag = %d, want immediate 200", resp2.StatusCode)
	}
	req.Header.Set("If-None-Match", resp2.Header.Get("ETag"))
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAllBody(t, resp3)
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("expired wait = %d, want 304", resp3.StatusCode)
	}
}

func TestFollowerTracksPublisher(t *testing.T) {
	pubM := trainedMaintainer(t, nil)
	pub := NewPublisher(pubM, PublisherConfig{})
	srv := httptest.NewServer(pub)
	defer srv.Close()

	reg := obs.NewRegistry()
	folM, err := New(Config{Factory: pbFactory, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := NewFollower(FollowerConfig{
		URL:     srv.URL,
		Install: folM.InstallSnapshot,
		Obs:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := fol.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fol.Version() != 1 {
		t.Fatalf("installed version = %d", fol.Version())
	}
	if folM.Predictor() == nil || folM.Ranking() == nil {
		t.Fatal("install did not publish model and ranking")
	}
	want := pubM.Predictor().Predict([]string{"/home"})
	if got := folM.Predictor().Predict([]string{"/home"}); !reflect.DeepEqual(got, want) {
		t.Errorf("follower predicts %+v, publisher %+v", got, want)
	}
	if g, w := folM.Ranking().GradeOf("/home"), pubM.Ranking().GradeOf("/home"); g != w {
		t.Errorf("follower grades /home %v, publisher %v", g, w)
	}

	// An unchanged publisher is a 304 no-op.
	if err := fol.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fol.Version() != 1 {
		t.Fatalf("version moved without a publish: %d", fol.Version())
	}

	// A publisher-side update propagates on the next poll.
	pubM.Observe(mkSession(8, "/home", "/fresh"))
	pubM.Rebuild(epoch.Add(22 * time.Hour))
	if err := fol.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fol.Version() != 2 {
		t.Fatalf("version after publish = %d", fol.Version())
	}
}

// readAllBody drains and closes an HTTP response body.
func readAllBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// resealSnapshot recomputes the trailing CRC over a tampered payload,
// simulating corruption the checksum cannot catch (or an attacker who
// can also rewrite the trailer).
func resealSnapshot(data []byte) {
	sum := crc64.Checksum(data[:len(data)-8], snapshotCRC)
	binary.BigEndian.PutUint64(data[len(data)-8:], sum)
}
