// Arena: a frozen, pointer-free snapshot of a prediction tree.
//
// A trained Tree is one Go object per node — excellent for incremental
// training, terrible for a long-lived published model: the GC must
// trace millions of pointers on every cycle, and the node layout
// scatters a prediction walk across the heap. Freeze converts a tree
// into an Arena, a struct-of-slices image carved out of one contiguous
// buffer:
//
//	magic "pbppmAR2"            8 bytes
//	byte-order mark             uint64 (host-endian; see arenaBOM)
//	numNodes, numSyms,
//	symBytesLen                 3 × uint64 (host-endian)
//	counts   []int64            one per node, training mass
//	syms     []uint32           one per node, symbol id (0 = pseudo-root)
//	childOff []uint32           numNodes+1 prefix sums: the children of
//	                            node i are nodes [childOff[i], childOff[i+1])
//	symOff   []uint32           numSyms+1 prefix sums into symBytes
//	symBytes []byte             every URL's bytes, concatenated
//
// Nodes are laid out in BFS (level) order, so each node's children form
// one contiguous, symbol-sorted block and no per-node child count is
// stored — the childOff prefix-sum array is the entire structural
// encoding. Symbol ids are assigned in sorted-URL order (symbol
// ascending ⇔ URL ascending), which makes the layout canonical: any two
// trees with the same logical content freeze to byte-identical arenas
// regardless of interning or merge order, and a child block sorted by
// symbol is automatically sorted by URL for deterministic prediction
// order and binary-search lookup.
//
// The whole snapshot is a single relocatable []byte (Bytes), so the GC
// sees O(1) objects per model, a snapshot can be written to disk or a
// shared mapping verbatim, and ArenaFromBytes revives it after
// validating every index against the buffer bounds. Multi-byte fields
// are host-endian — the arena image is a same-architecture serving and
// sharing format. Because images now also travel between machines (the
// snapshot-distribution channel ships the arena verbatim), the header
// carries a byte-order mark: an image written on a machine with the
// opposite endianness is rejected by ArenaFromBytes with a clear error
// instead of being misread through byte-swapped offsets. Cross-endian
// interchange stays on wire format v2 (Encode/DecodeArena).
package markov

import (
	"bytes"
	"fmt"
	"sort"
	"unsafe"
)

// arenaMagic prefixes every arena image. AR2 added the byte-order mark
// to the header; AR1 images (which never left a process) are rejected
// as unknown magic.
const arenaMagic = "pbppmAR2"

// arenaBOM is the header's byte-order mark, written host-endian. A
// reader on a machine with the same endianness reads the constant back;
// on the opposite endianness it reads arenaBOMSwapped, which turns a
// silent offset-scrambling into a clear validation error.
const arenaBOM uint64 = 0x0102030405060708

// arenaBOMSwapped is arenaBOM as seen through byte-swapped eyes.
const arenaBOMSwapped uint64 = 0x0807060504030201

// arenaHeaderSize is the magic, the byte-order mark, and the three
// uint64 section lengths.
const arenaHeaderSize = len(arenaMagic) + 4*8

// arenaMaxDim bounds the node and symbol counts an image may declare,
// so a corrupt header cannot drive the loader into overflow or an
// absurd allocation before the size cross-check runs.
const arenaMaxDim = 1 << 31

// Arena is a frozen prediction tree serving predictions directly from
// the flat buffer described in the package comment above. It is
// immutable after construction and safe for unsynchronized concurrent
// use; its prediction methods perform no writes and no allocations
// (given a caller-supplied buffer and a context of at most
// arenaMaxStackMatches URLs).
type Arena struct {
	buf []byte // the full relocatable image, including header

	// Views into buf (unsafe.Slice casts; buf's base is 8-aligned).
	counts   []int64
	syms     []uint32
	childOff []uint32
	symOff   []uint32
	symBytes []byte

	// urls[s] is symbol s's URL as a zero-copy view into symBytes
	// (urls[0] is the pseudo-root's empty string); ids is the reverse
	// index, rebuilt at attach time.
	urls []string
	ids  map[string]uint32
}

// alignedBuf returns an 8-aligned byte slice of length n, so the int64
// section cast is always legal. Backing the slice with []int64 is the
// portable way to guarantee alignment.
func alignedBuf(n int) []byte {
	if n == 0 {
		return nil
	}
	backing := make([]int64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), n)
}

// arenaLayout computes the section offsets for the given dimensions.
// counts starts 8-aligned (the header is 40 bytes); the uint32 sections
// stay 4-aligned because every preceding section is a multiple of 4.
func arenaLayout(numNodes, numSyms, symBytesLen uint64) (countsOff, symsOff, childOffOff, symOffOff, symBytesOff, total uint64) {
	countsOff = uint64(arenaHeaderSize)
	symsOff = countsOff + numNodes*8
	childOffOff = symsOff + numNodes*4
	symOffOff = childOffOff + (numNodes+1)*4
	symBytesOff = symOffOff + (numSyms+1)*4
	total = symBytesOff + symBytesLen
	return
}

// Freeze builds the arena image of the tree: reachable URLs are
// collected and sorted, nodes are laid out in BFS order with
// symbol-sorted child blocks, and the result is attached through the
// same validation path as ArenaFromBytes (a failure there is a builder
// bug and panics). The tree is read but not modified; usage marks are
// not carried over — a frozen model records no usage.
//
// Freeze collects only symbols reachable from the root: a tree sharing
// a larger symbol table (CopyIf) freezes to an arena holding just its
// own URLs.
func (t *Tree) Freeze() *Arena {
	// Pass 1: count nodes and mark reachable symbols.
	used := make([]bool, len(t.syms.urls))
	numNodes := 0
	var mark func(n *Node)
	mark = func(n *Node) {
		numNodes++
		used[n.sym] = true
		n.EachChild(func(c *Node) bool {
			mark(c)
			return true
		})
	}
	mark(t.Root)

	// Pass 2: canonical symbol order — URLs sorted ascending, ids 1..n.
	urls := make([]string, 0, len(t.syms.urls))
	for s, u := range used {
		if u && s != 0 {
			urls = append(urls, t.syms.urls[s])
		}
	}
	sort.Strings(urls)
	remap := make([]uint32, len(t.syms.urls))
	symBytesLen := 0
	for i, u := range urls {
		remap[t.syms.ids[u]] = uint32(i + 1)
		symBytesLen += len(u)
	}

	// Pass 3: BFS layout. Children are appended in remapped-symbol
	// order, so each block lands contiguous and sorted.
	order := make([]*Node, 1, numNodes)
	order[0] = t.Root
	childOff := make([]uint32, numNodes+1)
	scratch := make([]*Node, 0, 16)
	for i := 0; i < len(order); i++ {
		n := order[i]
		childOff[i] = uint32(len(order))
		scratch = scratch[:0]
		n.EachChild(func(c *Node) bool {
			scratch = append(scratch, c)
			return true
		})
		sort.Slice(scratch, func(a, b int) bool {
			return remap[scratch[a].sym] < remap[scratch[b].sym]
		})
		order = append(order, scratch...)
	}
	childOff[numNodes] = uint32(numNodes)

	// Pass 4: fill the image.
	countsOff, symsOff, childOffOff, symOffOff, symBytesOff, total :=
		arenaLayout(uint64(numNodes), uint64(len(urls)), uint64(symBytesLen))
	buf := alignedBuf(int(total))
	copy(buf, arenaMagic)
	hdr := unsafe.Slice((*uint64)(unsafe.Pointer(&buf[len(arenaMagic)])), 4)
	hdr[0], hdr[1], hdr[2], hdr[3] = arenaBOM, uint64(numNodes), uint64(len(urls)), uint64(symBytesLen)

	counts := unsafe.Slice((*int64)(unsafe.Pointer(&buf[countsOff])), numNodes)
	syms := unsafe.Slice((*uint32)(unsafe.Pointer(&buf[symsOff])), numNodes)
	for i, n := range order {
		counts[i] = n.Count
		syms[i] = remap[n.sym]
	}
	copy(unsafe.Slice((*uint32)(unsafe.Pointer(&buf[childOffOff])), numNodes+1), childOff)
	symOff := unsafe.Slice((*uint32)(unsafe.Pointer(&buf[symOffOff])), len(urls)+1)
	at := uint32(0)
	for i, u := range urls {
		symOff[i] = at
		copy(buf[symBytesOff+uint64(at):], u)
		at += uint32(len(u))
	}
	symOff[len(urls)] = at

	a, err := ArenaFromBytes(buf)
	if err != nil {
		panic("markov: Freeze built an invalid arena: " + err.Error())
	}
	return a
}

// ArenaFromBytes attaches to an arena image previously obtained from
// Arena.Bytes (same machine: the image is host-endian). Every length,
// offset, and symbol id is validated against the buffer bounds before
// any section is trusted, so a truncated or corrupt image returns an
// error instead of panicking or over-allocating. On success the arena
// reads from buf for its whole lifetime (or from an aligned private
// copy when buf is not 8-aligned); the caller must not modify it.
func ArenaFromBytes(buf []byte) (*Arena, error) {
	if len(buf) < arenaHeaderSize {
		return nil, fmt.Errorf("markov: arena: image truncated at %d bytes", len(buf))
	}
	if !bytes.Equal(buf[:len(arenaMagic)], []byte(arenaMagic)) {
		return nil, fmt.Errorf("markov: arena: bad magic %q", buf[:len(arenaMagic)])
	}
	if uintptr(unsafe.Pointer(&buf[0]))%8 != 0 {
		aligned := alignedBuf(len(buf))
		copy(aligned, buf)
		buf = aligned
	}
	hdr := unsafe.Slice((*uint64)(unsafe.Pointer(&buf[len(arenaMagic)])), 4)
	switch hdr[0] {
	case arenaBOM:
		// Image and host agree on byte order.
	case arenaBOMSwapped:
		return nil, fmt.Errorf("markov: arena: image was written on a machine with the opposite byte order; re-freeze on this architecture or ship the model over wire format v2")
	default:
		return nil, fmt.Errorf("markov: arena: bad byte-order mark %#x", hdr[0])
	}
	numNodes, numSyms, symBytesLen := hdr[1], hdr[2], hdr[3]
	if numNodes < 1 || numNodes > arenaMaxDim || numSyms > arenaMaxDim || symBytesLen > arenaMaxDim {
		return nil, fmt.Errorf("markov: arena: implausible dimensions nodes=%d syms=%d urlbytes=%d",
			numNodes, numSyms, symBytesLen)
	}
	countsOff, symsOff, childOffOff, symOffOff, symBytesOff, total :=
		arenaLayout(numNodes, numSyms, symBytesLen)
	if total != uint64(len(buf)) {
		return nil, fmt.Errorf("markov: arena: image is %d bytes, header describes %d", len(buf), total)
	}

	a := &Arena{
		buf:      buf,
		counts:   unsafe.Slice((*int64)(unsafe.Pointer(&buf[countsOff])), numNodes),
		syms:     unsafe.Slice((*uint32)(unsafe.Pointer(&buf[symsOff])), numNodes),
		childOff: unsafe.Slice((*uint32)(unsafe.Pointer(&buf[childOffOff])), numNodes+1),
		symOff:   unsafe.Slice((*uint32)(unsafe.Pointer(&buf[symOffOff])), numSyms+1),
	}
	if symBytesLen > 0 {
		a.symBytes = buf[symBytesOff:total]
	}

	// Structure: BFS child blocks are nondecreasing prefix sums, each
	// node's block starts strictly after the node itself (no cycles),
	// and the blocks tile [1, numNodes) exactly.
	if a.childOff[0] != 1 {
		return nil, fmt.Errorf("markov: arena: root child block starts at %d, want 1", a.childOff[0])
	}
	if a.childOff[numNodes] != uint32(numNodes) {
		return nil, fmt.Errorf("markov: arena: child blocks end at %d, want %d", a.childOff[numNodes], numNodes)
	}
	for i := uint64(0); i < numNodes; i++ {
		lo, hi := a.childOff[i], a.childOff[i+1]
		if lo > hi || uint64(lo) < i+1 {
			return nil, fmt.Errorf("markov: arena: node %d child block [%d,%d) out of order", i, lo, hi)
		}
	}
	// Symbols: the pseudo-root is 0, every other node references a real
	// symbol, and sibling blocks are strictly symbol-sorted (the binary
	// search and deterministic-order invariant).
	if a.syms[0] != 0 {
		return nil, fmt.Errorf("markov: arena: root symbol %d, want 0", a.syms[0])
	}
	for i := uint64(1); i < numNodes; i++ {
		if s := a.syms[i]; s == 0 || uint64(s) > numSyms {
			return nil, fmt.Errorf("markov: arena: node %d symbol %d out of range [1,%d]", i, s, numSyms)
		}
	}
	for i := uint64(0); i < numNodes; i++ {
		for ci := a.childOff[i] + 1; ci < a.childOff[i+1]; ci++ {
			if a.syms[ci-1] >= a.syms[ci] {
				return nil, fmt.Errorf("markov: arena: node %d sibling symbols not strictly ascending", i)
			}
		}
	}
	for i, c := range a.counts {
		if c < 0 {
			return nil, fmt.Errorf("markov: arena: node %d negative count %d", i, c)
		}
	}
	// Symbol table: prefix sums within symBytes, URLs strictly
	// ascending (unique and canonical — symbol order ⇔ URL order).
	if a.symOff[0] != 0 || uint64(a.symOff[numSyms]) != symBytesLen {
		return nil, fmt.Errorf("markov: arena: symbol offsets span [%d,%d], want [0,%d]",
			a.symOff[0], a.symOff[numSyms], symBytesLen)
	}
	for s := uint64(1); s <= numSyms; s++ {
		if a.symOff[s-1] > a.symOff[s] {
			return nil, fmt.Errorf("markov: arena: symbol %d offsets decrease", s)
		}
	}
	a.urls = make([]string, numSyms+1)
	a.ids = make(map[string]uint32, numSyms)
	for s := uint64(1); s <= numSyms; s++ {
		start, end := a.symOff[s-1], a.symOff[s]
		var u string
		if end > start {
			u = unsafe.String(&a.symBytes[start], int(end-start))
		}
		if s > 1 && a.urls[s-1] >= u {
			return nil, fmt.Errorf("markov: arena: URLs not strictly ascending at symbol %d", s)
		}
		a.urls[s] = u
		a.ids[u] = uint32(s)
	}
	return a, nil
}

// Bytes returns the arena's relocatable image. It aliases the arena's
// live storage: treat it as read-only, and copy before modifying.
func (a *Arena) Bytes() []byte { return a.buf }

// SizeBytes reports the image size — the frozen model's entire
// node-and-URL storage footprint.
func (a *Arena) SizeBytes() int { return len(a.buf) }

// NodeCount reports the number of URL nodes (the paper's space
// metric), excluding the pseudo-root.
func (a *Arena) NodeCount() int { return len(a.counts) - 1 }

// SymbolCount reports the number of distinct URLs.
func (a *Arena) SymbolCount() int { return len(a.urls) - 1 }

// URLOf resolves a symbol id (0 is the pseudo-root's empty string).
// The returned string is a zero-copy view into the arena image.
func (a *Arena) URLOf(sym uint32) string { return a.urls[sym] }

// child binary-searches node's sorted child block for sym.
func (a *Arena) child(node, sym uint32) (uint32, bool) {
	lo, hi := a.childOff[node], a.childOff[node+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if a.syms[mid] < sym {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < a.childOff[node+1] && a.syms[lo] == sym {
		return lo, true
	}
	return 0, false
}

// arenaMaxStackMatches is the live-match set size LongestMatch keeps on
// the stack. One candidate suffix per context position is live at a
// time, so contexts up to this many URLs match without allocating;
// longer contexts spill the match set to the heap (correct, just not
// allocation-free). Serving paths cap contexts far below this.
const arenaMaxStackMatches = 64

// arenaLive is one surviving suffix match: the context position it
// started at and the node it has reached.
type arenaLive struct {
	start int32
	node  uint32
}

// LongestMatch finds the deepest node matching the longest suffix of
// ctx, returning the node with the matched order (suffix length). ok is
// false when no suffix of ctx is in the arena. The algorithm is the
// single-pass live-match scan of Tree.LongestMatch on the flat layout.
func (a *Arena) LongestMatch(ctx []string) (node uint32, order int, ok bool) {
	if len(ctx) == 0 {
		return 0, 0, false
	}
	var stack [arenaMaxStackMatches]arenaLive
	live := stack[:0]
	for i, u := range ctx {
		sym, known := a.ids[u]
		if !known {
			// An unseen URL kills every match running through it.
			live = live[:0]
			continue
		}
		k := 0
		for _, lv := range live {
			if c, found := a.child(lv.node, sym); found {
				live[k] = arenaLive{start: lv.start, node: c}
				k++
			}
		}
		live = live[:k]
		if c, found := a.child(0, sym); found {
			live = append(live, arenaLive{start: int32(i), node: c})
		}
	}
	if len(live) == 0 {
		return 0, 0, false
	}
	// Ordered by ascending start: the first survivor is the longest.
	return live[0].node, len(ctx) - int(live[0].start), true
}

// Match walks the exact path seq from the pseudo-root, mirroring
// Tree.Match. ok is false when the path is absent (or seq is empty).
func (a *Arena) Match(seq []string) (node uint32, ok bool) {
	if len(seq) == 0 {
		return 0, false
	}
	n := uint32(0)
	for _, u := range seq {
		sym, known := a.ids[u]
		if !known {
			return 0, false
		}
		c, found := a.child(n, sym)
		if !found {
			return 0, false
		}
		n = c
	}
	return n, true
}

// Count reports a node's training count.
func (a *Arena) Count(node uint32) int64 { return a.counts[node] }

// EachChild visits node's children in symbol (= URL) order until fn
// returns false.
func (a *Arena) EachChild(node uint32, fn func(child uint32, url string) bool) {
	for ci := a.childOff[node]; ci < a.childOff[node+1]; ci++ {
		if !fn(ci, a.urls[a.syms[ci]]) {
			return
		}
	}
}

// AppendPredictions appends node's children with conditional
// probability at least threshold to buf and sorts the appended tail
// into the pinned prediction order (probability descending, then URL
// ascending) — exactly the candidate set and order Tree.PredictFrom
// produces, without usage marking (a frozen model records no usage) and
// without allocating beyond buf's capacity.
func (a *Arena) AppendPredictions(buf []Prediction, node uint32, threshold float64, order int) []Prediction {
	total := a.counts[node]
	if total == 0 {
		return buf
	}
	base := len(buf)
	for ci := a.childOff[node]; ci < a.childOff[node+1]; ci++ {
		p := float64(a.counts[ci]) / float64(total)
		if p >= threshold {
			buf = append(buf, Prediction{URL: a.urls[a.syms[ci]], Probability: p, Order: order})
		}
	}
	SortPredictions(buf[base:])
	return buf
}

// PredictInto is the arena's longest-match prediction path: the
// candidates of the deepest node matching the longest context suffix,
// written into buf per the PredictInto buffer-ownership contract
// (buf's previous contents are discarded; the result reuses its
// backing storage when capacity allows).
func (a *Arena) PredictInto(ctx []string, threshold float64, buf []Prediction) []Prediction {
	buf = buf[:0]
	node, order, ok := a.LongestMatch(ctx)
	if !ok {
		return buf
	}
	return a.AppendPredictions(buf, node, threshold, order)
}

// Stats computes TreeStats with the exact semantics of Tree.Stats: the
// pseudo-root is excluded from node, depth, and branching figures;
// Roots is its fan-out; Bytes is the image size plus the derived
// lookup structures rebuilt at attach time.
func (a *Arena) Stats() TreeStats {
	numNodes := len(a.counts)
	st := TreeStats{Symbols: a.SymbolCount()}
	if numNodes > 1 {
		st.Roots = int(a.childOff[1]) - 1
	}
	// BFS layout: a node's depth is its parent's plus one, and parents
	// precede children, so one forward pass suffices. Depth 0 is the
	// root's children, matching the pointer walk.
	depth := make([]int32, numNodes)
	internal, childSum := 0, 0
	for i := 0; i < numNodes; i++ {
		fanout := int(a.childOff[i+1] - a.childOff[i])
		for ci := a.childOff[i]; ci < a.childOff[i+1]; ci++ {
			if i == 0 {
				depth[ci] = 0
			} else {
				depth[ci] = depth[i] + 1
			}
		}
		if i == 0 {
			continue
		}
		st.Nodes++
		st.TotalCount += a.counts[i]
		d := int(depth[i])
		for len(st.DepthHistogram) <= d {
			st.DepthHistogram = append(st.DepthHistogram, 0)
		}
		st.DepthHistogram[d]++
		if d+1 > st.MaxDepth {
			st.MaxDepth = d + 1
		}
		if fanout == 0 {
			st.Leaves++
		} else {
			internal++
			childSum += fanout
		}
	}
	if internal > 0 {
		st.MeanBranching = float64(childSum) / float64(internal)
	}
	st.Bytes = int64(len(a.buf))
	// Derived attach-time structures: the urls slice and the reverse map.
	st.Bytes += int64(cap(a.urls)) * int64(unsafe.Sizeof(""))
	st.Bytes += 48 + int64(len(a.ids))*(int64(unsafe.Sizeof(""))+int64(unsafe.Sizeof(uint32(0)))+mapEntryOverhead)
	return st
}

// FrozenTree is the generic frozen predictor for models whose Predict
// is a longest-suffix match over a single tree (standard PPM, LRS):
// the training-time tree is replaced by its arena, and prediction runs
// allocation-free through PredictInto. A frozen model is immutable —
// TrainSequence panics, and there is no usage recording to detach.
type FrozenTree struct {
	arena *Arena
	name  string
	// threshold is the minimum conditional probability, resolved at
	// freeze time (the config sentinel dance is a training-time affair).
	threshold float64
	// clampHeight > 0 trims contexts to the trailing clampHeight-1 URLs
	// before matching, mirroring the height-capped models.
	clampHeight int
}

var (
	_ Predictor         = (*FrozenTree)(nil)
	_ BufferedPredictor = (*FrozenTree)(nil)
	_ ArenaHolder       = (*FrozenTree)(nil)
)

// NewFrozenTree wraps an arena as a predictor. name is reported
// verbatim; clampHeight mirrors the source model's height cap (0 for
// unbounded).
func NewFrozenTree(a *Arena, name string, threshold float64, clampHeight int) *FrozenTree {
	return &FrozenTree{arena: a, name: name, threshold: threshold, clampHeight: clampHeight}
}

// Name identifies the model; frozen models keep their source's name so
// reports and logs stay comparable across a freeze.
func (f *FrozenTree) Name() string { return f.name }

// TrainSequence panics: a frozen model is a published immutable
// snapshot. Train the live model and freeze again.
func (f *FrozenTree) TrainSequence([]string) {
	panic("markov: TrainSequence on a frozen model; train the live model and re-freeze")
}

// Predict returns the longest-match candidates, allocating a fresh
// slice (it never aliases arena storage beyond the immutable URL
// strings). Serving paths use PredictInto with a reused buffer.
func (f *FrozenTree) Predict(context []string) []Prediction {
	return f.PredictInto(context, nil)
}

// PredictInto implements BufferedPredictor: buf's previous contents are
// discarded and the result reuses its backing storage when capacity
// allows. With a warm buffer the call performs zero allocations.
func (f *FrozenTree) PredictInto(context []string, buf []Prediction) []Prediction {
	ctx := context
	if f.clampHeight > 0 && len(ctx) >= f.clampHeight {
		ctx = ctx[len(ctx)-(f.clampHeight-1):]
	}
	return f.arena.PredictInto(ctx, f.threshold, buf)
}

// NodeCount reports the storage requirement in URL nodes.
func (f *FrozenTree) NodeCount() int { return f.arena.NodeCount() }

// Arena exposes the underlying arena (see ArenaHolder).
func (f *FrozenTree) Arena() *Arena { return f.arena }
