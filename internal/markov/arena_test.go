package markov

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomArenaTree builds a tree from a Zipf-ish random workload, the
// same shape the compact-layout equivalence test uses.
func randomArenaTree(rng *rand.Rand, seqs, maxDepth int) *Tree {
	urls := make([]string, 40)
	for i := range urls {
		urls[i] = url(i)
	}
	tr := NewTree()
	for i := 0; i < seqs; i++ {
		s := make([]string, rng.Intn(7)+1)
		for j := range s {
			s[j] = urls[rng.Intn(rng.Intn(len(urls))+1)]
		}
		tr.Insert(s, maxDepth, int64(rng.Intn(3)+1))
	}
	return tr
}

// TestFreezeEquivalence is the golden suite of the arena change: a
// frozen tree must reproduce the pointer tree's longest match and
// predictions bit for bit, across random contexts and every threshold
// the models use. This is what lets the maintenance loop publish the
// arena in place of the tree without moving any headline metric.
func TestFreezeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 5; round++ {
		tr := randomArenaTree(rng, 800, round%3)
		a := tr.Freeze()

		if got, want := a.NodeCount(), tr.NodeCount(); got != want {
			t.Fatalf("round %d: arena NodeCount = %d, tree %d", round, got, want)
		}

		ctxURLs := make([]string, 0, 41)
		ctxURLs = append(ctxURLs, "/not-in-training")
		for i := 0; i < 40; i++ {
			ctxURLs = append(ctxURLs, url(i))
		}
		var buf []Prediction
		for i := 0; i < 2000; i++ {
			ctx := make([]string, rng.Intn(6))
			for j := range ctx {
				ctx[j] = ctxURLs[rng.Intn(len(ctxURLs))]
			}
			threshold := []float64{0, 0.1, 0.25, 0.6}[i%4]

			tn, torder := tr.LongestMatch(ctx)
			an, aorder, aok := a.LongestMatch(ctx)
			if (tn == nil) == aok || (aok && torder != aorder) {
				t.Fatalf("round %d ctx %v: tree order %d (nil=%v), arena order %d (ok=%v)",
					round, ctx, torder, tn == nil, aorder, aok)
			}

			want := tr.CandidatesFrom(tn, threshold, torder)
			got := a.PredictInto(ctx, threshold, nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d ctx %v thr %v:\n got %+v\nwant %+v", round, ctx, threshold, got, want)
			}
			// The buffered path must agree with the allocating path.
			buf = a.PredictInto(ctx, threshold, buf)
			if len(buf) > 0 && !reflect.DeepEqual([]Prediction(buf), want) {
				t.Fatalf("round %d ctx %v thr %v: buffered path diverged", round, ctx, threshold)
			}

			if an2, ok2 := a.Match(ctx); ok2 {
				if mn := tr.Match(ctx); mn == nil || mn.Count != a.Count(an2) {
					t.Fatalf("round %d ctx %v: arena Match disagrees with tree", round, ctx)
				}
			} else if mn := tr.Match(ctx); mn != nil {
				t.Fatalf("round %d ctx %v: tree matches, arena does not", round, ctx)
			}
			_ = an
		}
	}
}

// TestFreezeStatsEquivalence checks that the arena reproduces the
// pointer tree's structural statistics (everything except the byte
// estimate, which legitimately shrinks).
func TestFreezeStatsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 4; round++ {
		tr := randomArenaTree(rng, 500, round%3)
		ts, as := tr.Stats(), tr.Freeze().Stats()
		as.Bytes, ts.Bytes = 0, 0
		if !reflect.DeepEqual(as, ts) {
			t.Fatalf("round %d stats diverged:\n tree  %+v\n arena %+v", round, ts, as)
		}
	}
}

// TestFreezeCanonicalLayout: two trees with the same logical content —
// built in different insertion orders, and one assembled via Merge —
// must freeze to byte-identical images. The canonical layout is what
// makes the arena round-trip byte-exact and snapshot diffs meaningful.
func TestFreezeCanonicalLayout(t *testing.T) {
	seqs := [][]string{
		{"/a", "/b", "/c"},
		{"/a", "/b"},
		{"/z", "/a"},
		{"/m", "/n", "/a", "/b"},
	}
	build := func(order []int) *Tree {
		tr := NewTree()
		for _, i := range order {
			tr.Insert(seqs[i], 0, 1)
		}
		return tr
	}
	fwd := build([]int{0, 1, 2, 3}).Freeze()
	rev := build([]int{3, 2, 1, 0}).Freeze()
	if !bytes.Equal(fwd.Bytes(), rev.Bytes()) {
		t.Fatal("insertion order leaked into the frozen image")
	}
	half1, half2 := build([]int{0, 1}), build([]int{2, 3})
	half1.Merge(half2)
	if !bytes.Equal(fwd.Bytes(), half1.Freeze().Bytes()) {
		t.Fatal("merge-built tree froze to a different image")
	}
}

// TestArenaWireRoundTrip: encoding an arena to wire format v2 and
// decoding it back must reproduce the exact image, so persisted
// snapshots revive bit-identical.
func TestArenaWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := randomArenaTree(rng, 600, 0).Freeze()
	var w bytes.Buffer
	if err := a.Encode(&w); err != nil {
		t.Fatal(err)
	}
	b, err := DecodeArena(bytes.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("wire round-trip changed the arena image")
	}
}

// TestArenaBytesReattach: ArenaFromBytes over a copied image must
// accept it and serve identical predictions — the relocatability
// guarantee (the image can cross a file or shared mapping).
func TestArenaBytesReattach(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomArenaTree(rng, 400, 0).Freeze()
	img := make([]byte, len(a.Bytes()))
	copy(img, a.Bytes())
	b, err := ArenaFromBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	ctx := []string{url(1), url(2)}
	if !reflect.DeepEqual(a.PredictInto(ctx, 0, nil), b.PredictInto(ctx, 0, nil)) {
		t.Fatal("reattached arena predicts differently")
	}
	// Deliberately misaligned view: the loader must copy, not crash.
	mis := make([]byte, len(img)+1)
	copy(mis[1:], img)
	c, err := ArenaFromBytes(mis[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.PredictInto(ctx, 0, nil), c.PredictInto(ctx, 0, nil)) {
		t.Fatal("misaligned reattach predicts differently")
	}
}

// corruptingEdit describes one targeted corruption that the validator
// must reject with an error (never a panic).
type corruptingEdit struct {
	name string
	edit func(img []byte, a *Arena)
}

// TestArenaFromBytesRejectsCorrupt drives the validator with targeted
// corruptions of every section plus exhaustive truncations. A corrupt
// snapshot must never panic the loader — it is the crash-safety story
// for reviving images from disk.
func TestArenaFromBytesRejectsCorrupt(t *testing.T) {
	tr := NewTree()
	tr.Insert([]string{"/a", "/b"}, 0, 2)
	tr.Insert([]string{"/b", "/c"}, 0, 1)
	a := tr.Freeze()
	valid := a.Bytes()

	hdr := len(arenaMagic)
	edits := []corruptingEdit{
		{"bad magic", func(img []byte, _ *Arena) { img[0] = 'X' }},
		{"corrupt byte-order mark", func(img []byte, _ *Arena) {
			for i := 0; i < 8; i++ {
				img[hdr+i] = 0
			}
		}},
		{"zero nodes", func(img []byte, _ *Arena) {
			for i := 0; i < 8; i++ {
				img[hdr+8+i] = 0
			}
		}},
		{"huge nodes", func(img []byte, _ *Arena) {
			for i := 0; i < 8; i++ {
				img[hdr+8+i] = 0xFF
			}
		}},
		{"huge syms", func(img []byte, _ *Arena) {
			for i := 0; i < 8; i++ {
				img[hdr+16+i] = 0xFF
			}
		}},
		{"huge urlbytes", func(img []byte, _ *Arena) {
			for i := 0; i < 8; i++ {
				img[hdr+24+i] = 0xFF
			}
		}},
		{"root child block not at 1", func(img []byte, a *Arena) {
			off := childOffByteOffset(a, 0)
			img[off] = 2
		}},
		{"child block before parent", func(img []byte, a *Arena) {
			off := childOffByteOffset(a, 1)
			img[off] = 0
		}},
		{"root symbol nonzero", func(img []byte, a *Arena) {
			off := symByteOffset(a, 0)
			img[off] = 1
		}},
		{"symbol out of range", func(img []byte, a *Arena) {
			off := symByteOffset(a, 1)
			img[off] = 0xEE
		}},
		{"negative count", func(img []byte, a *Arena) {
			off := countByteOffset(a, 1)
			img[off+7] = 0x80
		}},
	}
	for _, e := range edits {
		img := make([]byte, len(valid))
		copy(img, valid)
		e.edit(img, a)
		if _, err := ArenaFromBytes(img); err == nil {
			t.Errorf("%s: corrupt image accepted", e.name)
		}
	}

	for cut := 0; cut < len(valid); cut++ {
		if _, err := ArenaFromBytes(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	// Single-byte flips must never panic; whether they error depends on
	// which field they hit (a count flip yields a different valid image).
	for i := 0; i < len(valid); i++ {
		img := make([]byte, len(valid))
		copy(img, valid)
		img[i] ^= 0xFF
		_, _ = ArenaFromBytes(img)
	}
}

// Byte offsets of individual fields inside an arena image, derived from
// the same layout function the implementation uses.
func countByteOffset(a *Arena, node int) int {
	countsOff, _, _, _, _, _ := arenaLayout(uint64(len(a.counts)), uint64(a.SymbolCount()), uint64(len(a.symBytes)))
	return int(countsOff) + node*8
}

func symByteOffset(a *Arena, node int) int {
	_, symsOff, _, _, _, _ := arenaLayout(uint64(len(a.counts)), uint64(a.SymbolCount()), uint64(len(a.symBytes)))
	return int(symsOff) + node*4
}

func childOffByteOffset(a *Arena, node int) int {
	_, _, childOffOff, _, _, _ := arenaLayout(uint64(len(a.counts)), uint64(a.SymbolCount()), uint64(len(a.symBytes)))
	return int(childOffOff) + node*4
}

// TestFrozenTreeZeroAlloc is the tentpole's acceptance criterion at
// unit level: with a warm buffer, the frozen serving path performs zero
// heap allocations per prediction.
func TestFrozenTreeZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomArenaTree(rng, 800, 0)
	f := NewFrozenTree(tr.Freeze(), "test", 0.1, 0)

	ctxs := make([][]string, 64)
	for i := range ctxs {
		ctx := make([]string, rng.Intn(5)+1)
		for j := range ctx {
			ctx[j] = url(rng.Intn(40))
		}
		ctxs[i] = ctx
	}
	var buf []Prediction
	for _, ctx := range ctxs {
		buf = f.PredictInto(ctx, buf)
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		buf = f.PredictInto(ctxs[i%len(ctxs)], buf)
		i++
	})
	if allocs != 0 {
		t.Fatalf("frozen PredictInto allocates %v per op, want 0", allocs)
	}
}

// TestLongestMatchDeepContext exercises the spill path: a context with
// more live suffix matches than the stack array holds must still return
// the longest match (it may allocate — correctness over thrift there).
func TestLongestMatchDeepContext(t *testing.T) {
	depth := arenaMaxStackMatches + 36
	seq := make([]string, depth)
	for i := range seq {
		seq[i] = "/loop"
	}
	tr := NewTree()
	tr.Insert(seq, 0, 1)
	a := tr.Freeze()
	_, order, ok := a.LongestMatch(seq)
	if !ok || order != depth {
		t.Fatalf("deep LongestMatch = order %d ok %v, want order %d", order, ok, depth)
	}
}

// TestFrozenTreeClampsHeight mirrors the height-capped models: a
// clampHeight-H frozen tree must only consider the trailing H-1 URLs.
func TestFrozenTreeClampsHeight(t *testing.T) {
	tr := NewTree()
	tr.Insert([]string{"/a", "/b", "/c"}, 3, 1)
	f := NewFrozenTree(tr.Freeze(), "3-test", 0, 3)
	got := f.Predict([]string{"/x", "/a", "/b"})
	if len(got) != 1 || got[0].URL != "/c" {
		t.Fatalf("clamped predict = %+v, want /c", got)
	}
}

// TestFrozenTreeTrainPanics pins the immutability contract.
func TestFrozenTreeTrainPanics(t *testing.T) {
	tr := NewTree()
	tr.Insert([]string{"/a"}, 0, 1)
	f := NewFrozenTree(tr.Freeze(), "test", 0, 0)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("TrainSequence on a frozen model did not panic")
		} else if !strings.Contains(r.(string), "frozen") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	f.TrainSequence([]string{"/a"})
}

// byteSwapArenaImage rewrites a valid arena image as a machine of the
// opposite endianness would have written it: every fixed-width field —
// the four header words, the int64 counts, and the uint32 sections —
// is byte-reversed in place. Magic and URL bytes are endian-neutral.
func byteSwapArenaImage(img []byte, a *Arena) {
	numNodes := uint64(len(a.counts))
	numSyms := uint64(a.SymbolCount())
	countsOff, symsOff, childOffOff, symOffOff, symBytesOff, _ :=
		arenaLayout(numNodes, numSyms, uint64(len(a.symBytes)))
	swap := func(off, width, n uint64) {
		for i := uint64(0); i < n; i++ {
			f := img[off+i*width : off+(i+1)*width]
			for l, r := 0, int(width)-1; l < r; l, r = l+1, r-1 {
				f[l], f[r] = f[r], f[l]
			}
		}
	}
	swap(uint64(len(arenaMagic)), 8, 4) // BOM + 3 dims
	swap(countsOff, 8, numNodes)
	swap(symsOff, 4, numNodes)
	swap(childOffOff, 4, numNodes+1)
	swap(symOffOff, 4, numSyms+1)
	_ = symBytesOff // URL bytes carry no endianness
}

// TestArenaFromBytesRejectsForeignEndianness pins the cross-machine
// hardening: an image written on an opposite-endian machine — which
// under the old host-endian header would have been misread through
// byte-swapped offsets — is refused with an explicit byte-order error.
func TestArenaFromBytesRejectsForeignEndianness(t *testing.T) {
	tr := NewTree()
	tr.Insert([]string{"/a", "/b"}, 0, 2)
	tr.Insert([]string{"/b", "/c"}, 0, 1)
	a := tr.Freeze()

	img := make([]byte, len(a.Bytes()))
	copy(img, a.Bytes())
	byteSwapArenaImage(img, a)

	_, err := ArenaFromBytes(img)
	if err == nil {
		t.Fatal("byte-swapped arena image accepted")
	}
	if !strings.Contains(err.Error(), "byte order") {
		t.Fatalf("byte-swapped image rejected without a byte-order diagnosis: %v", err)
	}

	// Round-trip sanity: the unswapped image still attaches.
	if _, err := ArenaFromBytes(a.Bytes()); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}
}
