package markov

import (
	"testing"
)

// trainSuffixes inserts every suffix of each sequence, the standard-PPM
// training shape, to grow a tree with shared prefixes and deep paths.
func trainSuffixes(t *Tree, seqs [][]string) {
	for _, s := range seqs {
		for i := range s {
			t.Insert(s[i:], 0, 1)
		}
	}
}

func TestCloneIsDeepCopy(t *testing.T) {
	orig := NewTree()
	trainSuffixes(orig, [][]string{
		{"/a", "/b", "/c"},
		{"/a", "/b", "/d"},
		{"/x", "/y"},
	})
	before := orig.String()

	clone := orig.Clone()
	if got := clone.String(); got != before {
		t.Fatalf("clone differs from original:\n%s\nvs\n%s", got, before)
	}

	// Mutating the clone must not touch the original, including its
	// symbol table (the new URL interns only into the clone).
	clone.Insert([]string{"/a", "/b", "/new"}, 0, 3)
	if got := orig.String(); got != before {
		t.Errorf("training the clone mutated the original:\n%s\nvs\n%s", got, before)
	}
	if _, ok := orig.syms.lookup("/new"); ok {
		t.Error("interning into the clone leaked into the original's symbol table")
	}
	if n := clone.Match([]string{"/a", "/b", "/new"}); n == nil || n.Count != 3 {
		t.Errorf("clone did not absorb its own insert: %+v", n)
	}

	// And the other direction: mutating the original leaves the clone at
	// its snapshot.
	snap := clone.String()
	orig.Insert([]string{"/q"}, 0, 1)
	if got := clone.String(); got != snap {
		t.Errorf("training the original mutated the clone:\n%s\nvs\n%s", got, snap)
	}
}

func TestClonePreservesRecordingGate(t *testing.T) {
	tr := NewTree()
	tr.Insert([]string{"/a"}, 0, 1)
	tr.SetUsageRecording(false)
	if tr.Clone().UsageRecording() {
		t.Error("clone of a detached tree records usage")
	}
	tr.SetUsageRecording(true)
	if !tr.Clone().UsageRecording() {
		t.Error("clone of a recording tree lost the gate")
	}
}

func TestCloneDoesNotCopyUsageMarks(t *testing.T) {
	tr := NewTree()
	tr.Insert([]string{"/a", "/b"}, 0, 2)
	tr.MarkPath([]string{"/a", "/b"})
	if tr.Utilization() != 1 {
		t.Fatalf("setup: utilization = %v", tr.Utilization())
	}
	if u := tr.Clone().Utilization(); u != 0 {
		t.Errorf("clone carried usage marks: utilization = %v", u)
	}
}

func TestCloneCopiesPromotedChildren(t *testing.T) {
	// Grow a root fan-out past promoteFanout so the clone exercises the
	// map (big) representation too.
	tr := NewTree()
	for i := 0; i < promoteFanout+4; i++ {
		tr.Insert([]string{"/hub", "/leaf" + string(rune('a'+i))}, 0, 1)
	}
	clone := tr.Clone()
	if got, want := clone.String(), tr.String(); got != want {
		t.Fatalf("promoted clone differs:\n%s\nvs\n%s", got, want)
	}
	clone.Insert([]string{"/hub", "/extra"}, 0, 1)
	if hub := tr.Match([]string{"/hub"}); hub.Fanout() != promoteFanout+4 {
		t.Errorf("original hub fan-out changed to %d", hub.Fanout())
	}
}

// TestCloneMergeEquivalence is the incremental-maintenance contract at
// the tree level: training a delta into a fresh tree and folding it
// into a clone of the base (MergeInto) yields exactly the tree a
// from-scratch retrain on base+delta produces.
func TestCloneMergeEquivalence(t *testing.T) {
	base := [][]string{
		{"/home", "/news", "/news/today"},
		{"/home", "/sports"},
		{"/docs", "/docs/api", "/docs/api/tree"},
	}
	delta := [][]string{
		{"/home", "/news", "/weather"}, // extends an existing path
		{"/brand", "/new", "/branch"},  // all-new URLs
		{"/home", "/sports"},           // pure count bump
	}

	live := NewTree()
	trainSuffixes(live, base)
	live.SetUsageRecording(false) // published snapshot shape

	deltaTree := NewTree()
	trainSuffixes(deltaTree, delta)

	clone := live.Clone()
	deltaTree.MergeInto(clone)

	retrain := NewTree()
	trainSuffixes(retrain, base)
	trainSuffixes(retrain, delta)

	if got, want := clone.String(), retrain.String(); got != want {
		t.Errorf("delta-merged clone != from-scratch retrain:\n%s\nvs\n%s", got, want)
	}
	cs, rs := clone.Stats(), retrain.Stats()
	if cs.Nodes != rs.Nodes || cs.Leaves != rs.Leaves || cs.Roots != rs.Roots ||
		cs.MaxDepth != rs.MaxDepth || cs.TotalCount != rs.TotalCount {
		t.Errorf("stats diverge: merged %+v, retrain %+v", cs, rs)
	}
	// The published base is untouched by the whole procedure.
	pristine := NewTree()
	trainSuffixes(pristine, base)
	if got, want := live.String(), pristine.String(); got != want {
		t.Errorf("delta merge mutated the published base:\n%s\nvs\n%s", got, want)
	}
}
