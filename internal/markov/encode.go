package markov

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// treeMagic prefixes the current (version 2) wire format: ID-based flat
// nodes plus a URL table. Streams without the prefix are decoded as the
// legacy version-1 format (a gob of recursive URL-keyed nodes), so
// models persisted before the compact layout still load. Sniffing is
// unambiguous for our own files: every legacy stream begins with gob's
// fixed wireNode type descriptor, which never matches this prefix.
var treeMagic = []byte("pbppmT2\n")

// wireTree is the version-2 image: every distinct URL once, and the
// nodes flattened in deterministic (URL-sorted) preorder.
type wireTree struct {
	// URLs indexes symbol i+1 (symbol 0 is the pseudo-root).
	URLs []string
	// Nodes is the preorder flattening starting at the pseudo-root.
	Nodes []wireFlatNode
}

// wireFlatNode is one node of the preorder flattening. Its children are
// the Kids nodes that follow it (recursively); the unexported usage
// mark is deliberately not persisted (prediction-phase scratch state).
type wireFlatNode struct {
	Sym   uint32
	Count int64
	Kids  int32
}

// wireNode is the legacy version-1 gob image, kept for decoding
// pre-version-2 model files.
type wireNode struct {
	URL      string
	Count    int64
	Children map[string]*wireNode
}

// Encode serializes the tree to w in the version-2 format. Prediction
// trees for busy servers are long-lived; persisting them lets a server
// restart without retraining.
func (t *Tree) Encode(w io.Writer) error {
	img := wireTree{URLs: t.syms.urls[1:]}
	var flatten func(n *Node)
	flatten = func(n *Node) {
		idx := len(img.Nodes)
		img.Nodes = append(img.Nodes, wireFlatNode{Sym: n.sym, Count: n.Count})
		kids := 0
		for _, c := range t.sortedChildren(n) {
			flatten(c)
			kids++
		}
		img.Nodes[idx].Kids = int32(kids)
	}
	flatten(t.Root)

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(treeMagic); err != nil {
		return fmt.Errorf("markov: encoding tree: %w", err)
	}
	if err := gob.NewEncoder(bw).Encode(img); err != nil {
		return fmt.Errorf("markov: encoding tree: %w", err)
	}
	return bw.Flush()
}

// DecodeTree reads a tree previously written by Encode, accepting both
// the current version-2 format and the legacy version-1 gob format.
// Usage recording starts detached on the decoded tree, matching the
// serving paths that load persisted models.
func DecodeTree(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(len(treeMagic))
	if err == nil && bytes.Equal(prefix, treeMagic) {
		br.Discard(len(treeMagic))
		return decodeV2(br)
	}
	return decodeLegacy(br)
}

func decodeV2(r io.Reader) (*Tree, error) {
	var img wireTree
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("markov: decoding tree: %w", err)
	}
	if len(img.Nodes) == 0 {
		return nil, fmt.Errorf("markov: decoding tree: empty node list")
	}
	t := &Tree{Root: &Node{}, syms: newSymtab()}
	// Re-intern in table order so symbols decode to 1..len(URLs),
	// matching the Sym fields as written.
	for _, u := range img.URLs {
		t.syms.intern(u)
	}
	maxSym := uint32(len(img.URLs))

	pos := 0
	var build func(parent *Node) error
	build = func(parent *Node) error {
		if pos >= len(img.Nodes) {
			return fmt.Errorf("markov: decoding tree: truncated node list")
		}
		w := img.Nodes[pos]
		pos++
		n := parent
		if parent == nil {
			if w.Sym != 0 {
				return fmt.Errorf("markov: decoding tree: root symbol %d", w.Sym)
			}
			n = t.Root
		} else {
			if w.Sym == 0 || w.Sym > maxSym {
				return fmt.Errorf("markov: decoding tree: symbol %d out of range", w.Sym)
			}
			n = parent.ensureChildSym(w.Sym)
		}
		n.Count = w.Count
		if w.Kids < 0 {
			return fmt.Errorf("markov: decoding tree: negative child count")
		}
		for i := int32(0); i < w.Kids; i++ {
			if err := build(n); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(nil); err != nil {
		return nil, err
	}
	if pos != len(img.Nodes) {
		return nil, fmt.Errorf("markov: decoding tree: %d trailing nodes", len(img.Nodes)-pos)
	}
	return t, nil
}

func decodeLegacy(r io.Reader) (*Tree, error) {
	var w wireNode
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("markov: decoding tree: %w", err)
	}
	t := &Tree{Root: &Node{Count: w.Count}, syms: newSymtab()}
	var build func(dst *Node, src *wireNode)
	build = func(dst *Node, src *wireNode) {
		for url, c := range src.Children {
			nc := dst.ensureChildSym(t.syms.intern(url))
			nc.Count = c.Count
			build(nc, c)
		}
	}
	build(t.Root, &w)
	return t, nil
}
