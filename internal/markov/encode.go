package markov

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
)

// wireNode mirrors Node for gob encoding; the unexported usage mark is
// deliberately not persisted (it is prediction-phase scratch state).
type wireNode struct {
	URL      string
	Count    int64
	Children map[string]*wireNode
}

func toWire(n *Node) *wireNode {
	w := &wireNode{URL: n.URL, Count: n.Count}
	if len(n.Children) > 0 {
		w.Children = make(map[string]*wireNode, len(n.Children))
		for u, c := range n.Children {
			w.Children[u] = toWire(c)
		}
	}
	return w
}

func fromWire(w *wireNode) *Node {
	n := &Node{URL: w.URL, Count: w.Count}
	if len(w.Children) > 0 {
		n.Children = make(map[string]*Node, len(w.Children))
		for u, c := range w.Children {
			n.Children[u] = fromWire(c)
		}
	}
	return n
}

// Encode serializes the tree to w. Prediction trees for busy servers are
// long-lived; persisting them lets a server restart without retraining.
func (t *Tree) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(toWire(t.Root)); err != nil {
		return fmt.Errorf("markov: encoding tree: %w", err)
	}
	return bw.Flush()
}

// DecodeTree reads a tree previously written by Encode.
func DecodeTree(r io.Reader) (*Tree, error) {
	var w wireNode
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&w); err != nil {
		return nil, fmt.Errorf("markov: decoding tree: %w", err)
	}
	root := fromWire(&w)
	if root.Children == nil {
		root.Children = make(map[string]*Node)
	}
	return &Tree{Root: root}, nil
}
