package markov

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// treeMagic prefixes the current (version 2) wire format: ID-based flat
// nodes plus a URL table. Streams without the prefix are decoded as the
// legacy version-1 format (a gob of recursive URL-keyed nodes), so
// models persisted before the compact layout still load. Sniffing is
// unambiguous for our own files: every legacy stream begins with gob's
// fixed wireNode type descriptor, which never matches this prefix.
var treeMagic = []byte("pbppmT2\n")

// wireTree is the version-2 image: every distinct URL once, and the
// nodes flattened in deterministic (URL-sorted) preorder.
type wireTree struct {
	// URLs indexes symbol i+1 (symbol 0 is the pseudo-root).
	URLs []string
	// Nodes is the preorder flattening starting at the pseudo-root.
	Nodes []wireFlatNode
}

// wireFlatNode is one node of the preorder flattening. Its children are
// the Kids nodes that follow it (recursively); the unexported usage
// mark is deliberately not persisted (prediction-phase scratch state).
type wireFlatNode struct {
	Sym   uint32
	Count int64
	Kids  int32
}

// wireNode is the legacy version-1 gob image, kept for decoding
// pre-version-2 model files.
type wireNode struct {
	URL      string
	Count    int64
	Children map[string]*wireNode
}

// Encode serializes the tree to w in the version-2 format. Prediction
// trees for busy servers are long-lived; persisting them lets a server
// restart without retraining.
func (t *Tree) Encode(w io.Writer) error {
	img := wireTree{URLs: t.syms.urls[1:]}
	var flatten func(n *Node)
	flatten = func(n *Node) {
		idx := len(img.Nodes)
		img.Nodes = append(img.Nodes, wireFlatNode{Sym: n.sym, Count: n.Count})
		kids := 0
		for _, c := range t.sortedChildren(n) {
			flatten(c)
			kids++
		}
		img.Nodes[idx].Kids = int32(kids)
	}
	flatten(t.Root)
	return writeWireTree(w, img)
}

// writeWireTree writes the magic-prefixed version-2 gob image.
func writeWireTree(w io.Writer, img wireTree) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(treeMagic); err != nil {
		return fmt.Errorf("markov: encoding tree: %w", err)
	}
	if err := gob.NewEncoder(bw).Encode(img); err != nil {
		return fmt.Errorf("markov: encoding tree: %w", err)
	}
	return bw.Flush()
}

// Encode serializes the arena in wire-format v2, the portable
// interchange encoding (the arena image itself is host-endian and
// meant for same-machine sharing). The arena layout is canonical, so
// decoding this stream and re-freezing it (DecodeArena) reproduces the
// arena byte-identically.
func (a *Arena) Encode(w io.Writer) error {
	img := wireTree{URLs: a.urls[1:], Nodes: make([]wireFlatNode, 0, len(a.counts))}
	// Preorder flattening; arena child blocks are URL-sorted, matching
	// the sortedChildren order Tree.Encode emits.
	var flatten func(node uint32)
	flatten = func(node uint32) {
		img.Nodes = append(img.Nodes, wireFlatNode{
			Sym:   a.syms[node],
			Count: a.counts[node],
			Kids:  int32(a.childOff[node+1] - a.childOff[node]),
		})
		for ci := a.childOff[node]; ci < a.childOff[node+1]; ci++ {
			flatten(ci)
		}
	}
	flatten(0)
	return writeWireTree(w, img)
}

// DecodeArena reads a stream written by Tree.Encode or Arena.Encode
// (either wire version) and freezes it straight into an arena — the
// restart path of a serving process that never needs the mutable tree.
func DecodeArena(r io.Reader) (*Arena, error) {
	t, err := DecodeTree(r)
	if err != nil {
		return nil, err
	}
	return t.Freeze(), nil
}

// DecodeTree reads a tree previously written by Encode, accepting both
// the current version-2 format and the legacy version-1 gob format.
// Usage recording starts detached on the decoded tree, matching the
// serving paths that load persisted models.
func DecodeTree(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(len(treeMagic))
	if err == nil && bytes.Equal(prefix, treeMagic) {
		br.Discard(len(treeMagic))
		return decodeV2(br)
	}
	return decodeLegacy(br)
}

// decodeV2 rebuilds a tree from the version-2 image. Nothing in the
// stream is trusted: symbol ids are range-checked, counts and child
// counts must be non-negative, the URL table must be duplicate-free
// (duplicates collapse under interning and would leave dangling
// symbols), sibling symbols must be unique (silent merging would hide
// corruption), and the preorder structure is replayed with an explicit
// stack so an adversarially deep chain cannot overflow the goroutine
// stack. Any violation returns an error; the decoder never panics.
func decodeV2(r io.Reader) (*Tree, error) {
	var img wireTree
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("markov: decoding tree: %w", err)
	}
	if len(img.Nodes) == 0 {
		return nil, fmt.Errorf("markov: decoding tree: empty node list")
	}
	t := &Tree{Root: &Node{}, syms: newSymtab()}
	// Re-intern in table order so symbols decode to 1..len(URLs),
	// matching the Sym fields as written.
	for _, u := range img.URLs {
		t.syms.intern(u)
	}
	if got := len(t.syms.urls) - 1; got != len(img.URLs) {
		return nil, fmt.Errorf("markov: decoding tree: URL table has %d duplicate entries", len(img.URLs)-got)
	}
	maxSym := uint32(len(img.URLs))

	root := img.Nodes[0]
	if root.Sym != 0 {
		return nil, fmt.Errorf("markov: decoding tree: root symbol %d", root.Sym)
	}
	if root.Count < 0 {
		return nil, fmt.Errorf("markov: decoding tree: negative count %d", root.Count)
	}
	if root.Kids < 0 {
		return nil, fmt.Errorf("markov: decoding tree: negative child count")
	}
	t.Root.Count = root.Count

	// frame is one open node of the preorder replay with the number of
	// children it still owes.
	type frame struct {
		n    *Node
		kids int32
	}
	stack := []frame{{n: t.Root, kids: root.Kids}}
	for pos := 1; pos < len(img.Nodes); pos++ {
		for len(stack) > 0 && stack[len(stack)-1].kids == 0 {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return nil, fmt.Errorf("markov: decoding tree: %d trailing nodes", len(img.Nodes)-pos)
		}
		w := img.Nodes[pos]
		if w.Sym == 0 || w.Sym > maxSym {
			return nil, fmt.Errorf("markov: decoding tree: symbol %d out of range", w.Sym)
		}
		if w.Count < 0 {
			return nil, fmt.Errorf("markov: decoding tree: negative count %d", w.Count)
		}
		if w.Kids < 0 {
			return nil, fmt.Errorf("markov: decoding tree: negative child count")
		}
		top := &stack[len(stack)-1]
		if top.n.childBySym(w.Sym) != nil {
			return nil, fmt.Errorf("markov: decoding tree: duplicate sibling symbol %d", w.Sym)
		}
		n := top.n.ensureChildSym(w.Sym)
		n.Count = w.Count
		top.kids--
		stack = append(stack, frame{n: n, kids: w.Kids})
	}
	for _, f := range stack {
		if f.kids != 0 {
			return nil, fmt.Errorf("markov: decoding tree: truncated node list")
		}
	}
	return t, nil
}

func decodeLegacy(r io.Reader) (*Tree, error) {
	var w wireNode
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("markov: decoding tree: %w", err)
	}
	t := &Tree{Root: &Node{Count: w.Count}, syms: newSymtab()}
	var build func(dst *Node, src *wireNode)
	build = func(dst *Node, src *wireNode) {
		for url, c := range src.Children {
			nc := dst.ensureChildSym(t.syms.intern(url))
			nc.Count = c.Count
			build(nc, c)
		}
	}
	build(t.Root, &w)
	return t, nil
}
