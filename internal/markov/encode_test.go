package markov

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// legacyWire replicates the version-1 on-disk image (a gob of recursive
// URL-keyed nodes) so the test can fabricate pre-version-2 model files.
// Gob matches structs by field names, so the local type name is free.
type legacyWire struct {
	URL      string
	Count    int64
	Children map[string]*legacyWire
}

// TestDecodeLegacyFormat fabricates a version-1 stream and checks that
// DecodeTree still reads it after the version-2 switch.
func TestDecodeLegacyFormat(t *testing.T) {
	img := &legacyWire{
		Count: 4,
		Children: map[string]*legacyWire{
			"a": {URL: "a", Count: 3, Children: map[string]*legacyWire{
				"b": {URL: "b", Count: 2},
			}},
			"z": {URL: "z", Count: 1},
		},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		t.Fatalf("encoding legacy image: %v", err)
	}
	tr, err := DecodeTree(&buf)
	if err != nil {
		t.Fatalf("DecodeTree(legacy): %v", err)
	}
	if tr.Root.Count != 4 {
		t.Errorf("root count = %d, want 4", tr.Root.Count)
	}
	if n := tr.Match([]string{"a", "b"}); n == nil || n.Count != 2 {
		t.Errorf("a->b = %+v, want count 2", n)
	}
	if n := tr.Match([]string{"z"}); n == nil || n.Count != 1 {
		t.Errorf("z = %+v, want count 1", n)
	}
	if got, want := tr.NodeCount(), 3; got != want {
		t.Errorf("NodeCount = %d, want %d", got, want)
	}
	// The legacy-decoded tree keeps working as a live tree.
	tr.Insert([]string{"a", "b", "c"}, 0, 1)
	if tr.Match([]string{"a", "b", "c"}) == nil {
		t.Error("legacy-decoded tree rejects inserts")
	}
}

// TestEncodeStartsWithMagic pins the version-2 prefix so a format
// change cannot silently break the legacy sniffing.
func TestEncodeStartsWithMagic(t *testing.T) {
	tr := NewTree()
	tr.Insert([]string{"a"}, 0, 1)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), treeMagic) {
		t.Errorf("encoded stream does not start with the v2 magic: % x", buf.Bytes()[:12])
	}
}

func TestEncodeDecodeEmptyTree(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTree().Encode(&buf); err != nil {
		t.Fatalf("Encode(empty): %v", err)
	}
	tr, err := DecodeTree(&buf)
	if err != nil {
		t.Fatalf("DecodeTree(empty): %v", err)
	}
	if tr.NodeCount() != 0 || tr.Root.Count != 0 {
		t.Errorf("empty round trip: %d nodes, root count %d", tr.NodeCount(), tr.Root.Count)
	}
	tr.Insert([]string{"a"}, 0, 1)
	if tr.Match([]string{"a"}) == nil {
		t.Error("decoded empty tree rejects inserts")
	}
}

// TestDecodeTruncatedV2 checks that a short v2 stream errors rather
// than panicking or returning a partial tree.
func TestDecodeTruncatedV2(t *testing.T) {
	tr := NewTree()
	tr.Insert([]string{"a", "b", "c"}, 0, 2)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{len(treeMagic) + 1, len(raw) / 2, len(raw) - 1} {
		if _, err := DecodeTree(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("DecodeTree of %d/%d bytes succeeded", cut, len(raw))
		}
	}
}
