package markov

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// refNode/refTree are a deliberately naive map-based prediction trie —
// the representation the compact layout replaced. The golden test below
// checks the compact tree against it prediction-for-prediction, so the
// storage change is provably behavior-free.
type refNode struct {
	url      string
	count    int64
	children map[string]*refNode
}

type refTree struct {
	root *refNode
}

func newRefTree() *refTree {
	return &refTree{root: &refNode{children: map[string]*refNode{}}}
}

func (t *refTree) insert(seq []string, maxDepth int, weight int64) {
	if len(seq) == 0 {
		return
	}
	t.root.count += weight
	n := t.root
	for i, u := range seq {
		if maxDepth > 0 && i >= maxDepth {
			break
		}
		c := n.children[u]
		if c == nil {
			c = &refNode{url: u, children: map[string]*refNode{}}
			n.children[u] = c
		}
		c.count += weight
		n = c
	}
}

func (t *refTree) match(seq []string) *refNode {
	n := t.root
	for _, u := range seq {
		n = n.children[u]
		if n == nil {
			return nil
		}
	}
	if n == t.root {
		return nil
	}
	return n
}

func (t *refTree) longestMatch(ctx []string) (*refNode, int) {
	for i := 0; i < len(ctx); i++ {
		if n := t.match(ctx[i:]); n != nil {
			return n, len(ctx) - i
		}
	}
	return nil, 0
}

func (t *refTree) predictFrom(n *refNode, threshold float64, order int) []Prediction {
	if n == nil || n.count == 0 {
		return nil
	}
	var out []Prediction
	for _, c := range n.children {
		p := float64(c.count) / float64(n.count)
		if p >= threshold {
			out = append(out, Prediction{URL: c.url, Probability: p, Order: order})
		}
	}
	SortPredictions(out)
	return out
}

func (t *refTree) nodeCount(n *refNode) int {
	total := 1
	for _, c := range n.children {
		total += t.nodeCount(c)
	}
	return total
}

// TestCompactTreeEquivalence trains the compact tree and the map-based
// reference on identical random workloads and requires bit-for-bit
// identical predictions across random contexts, plus identical node
// counts and longest-match orders. This is the acceptance-criteria
// guarantee that the storage layout cannot move any headline metric.
func TestCompactTreeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	urls := make([]string, 40)
	for i := range urls {
		urls[i] = url(i)
	}
	for round := 0; round < 5; round++ {
		maxDepth := round % 3 // 0 = unbounded, then caps 1 and 2
		tr := NewTree()
		ref := newRefTree()
		for i := 0; i < 800; i++ {
			s := make([]string, rng.Intn(7)+1)
			for j := range s {
				// Zipf-ish skew so some nodes promote to the map
				// representation and others stay tiny.
				s[j] = urls[rng.Intn(rng.Intn(len(urls))+1)]
			}
			w := int64(rng.Intn(3) + 1)
			tr.Insert(s, maxDepth, w)
			ref.insert(s, maxDepth, w)
		}

		if got, want := tr.NodeCount(), ref.nodeCount(ref.root)-1; got != want {
			t.Fatalf("round %d: NodeCount = %d, reference %d", round, got, want)
		}

		ctxURLs := append([]string{"/not-in-training"}, urls...)
		for i := 0; i < 2000; i++ {
			ctx := make([]string, rng.Intn(6))
			for j := range ctx {
				ctx[j] = ctxURLs[rng.Intn(len(ctxURLs))]
			}
			threshold := []float64{0, 0.1, 0.25, 0.6}[i%4]

			gn, gorder := tr.LongestMatch(ctx)
			wn, worder := ref.longestMatch(ctx)
			if (gn == nil) != (wn == nil) || gorder != worder {
				t.Fatalf("round %d ctx %v: match order %d vs reference %d", round, ctx, gorder, worder)
			}
			got := tr.PredictFrom(gn, threshold, gorder)
			want := ref.predictFrom(wn, threshold, worder)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d ctx %v thr %v:\n got %+v\nwant %+v", round, ctx, threshold, got, want)
			}
		}
	}
}

// TestWalkMatchesReferenceOrder checks the deterministic walk against a
// reference sorted traversal after a skewed workload.
func TestWalkMatchesReferenceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := NewTree()
	ref := newRefTree()
	for i := 0; i < 300; i++ {
		s := []string{url(rng.Intn(30)), url(rng.Intn(30))}
		tr.Insert(s, 0, 1)
		ref.insert(s, 0, 1)
	}
	var got []string
	tr.Walk(func(path []string, n *Node) {
		got = append(got, fmt.Sprintf("%s#%d#%d", path[len(path)-1], len(path), n.Count))
	})
	var want []string
	var walk func(depth int, n *refNode)
	walk = func(depth int, n *refNode) {
		keys := make([]string, 0, len(n.children))
		for k := range n.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c := n.children[k]
			want = append(want, fmt.Sprintf("%s#%d#%d", k, depth+1, c.count))
			walk(depth+1, c)
		}
	}
	walk(0, ref.root)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("walk order diverged from reference:\n got %v\nwant %v", got, want)
	}
}
