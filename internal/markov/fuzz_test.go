package markov

import (
	"bytes"
	"math/rand"
	"testing"
)

// fuzzSeedTrees returns a few representative trees whose encodings seed
// the corpus: empty, tiny, height-capped, and a random workload.
func fuzzSeedTrees() []*Tree {
	empty := NewTree()
	tiny := NewTree()
	tiny.Insert([]string{"/a", "/b"}, 0, 2)
	capped := NewTree()
	capped.Insert([]string{"/a", "/b", "/c", "/d"}, 3, 1)
	capped.Insert([]string{"/b", "/c"}, 3, 5)
	return []*Tree{empty, tiny, capped, randomArenaTree(rand.New(rand.NewSource(11)), 120, 0)}
}

// FuzzDecodeTree hammers the wire-format decoder with mutated
// payloads. The decoder must never panic — corrupt snapshots come off
// disks and sockets — and anything it does accept must re-encode and
// decode to an arena-identical tree (the decoder cannot invent states
// the encoder would not produce).
func FuzzDecodeTree(f *testing.F) {
	for _, tr := range fuzzSeedTrees() {
		var w bytes.Buffer
		if err := tr.Encode(&w); err != nil {
			f.Fatal(err)
		}
		f.Add(w.Bytes())
		// A few deterministic mutations widen the corpus beyond what the
		// fuzzer mutates on its own.
		for _, cut := range []int{1, len(w.Bytes()) / 2} {
			if cut < len(w.Bytes()) {
				f.Add(w.Bytes()[:cut])
			}
		}
	}
	f.Add([]byte("pbppmT2\n"))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTree(bytes.NewReader(data))
		if err != nil {
			return
		}
		var w bytes.Buffer
		if err := tr.Encode(&w); err != nil {
			t.Fatalf("re-encoding an accepted tree failed: %v", err)
		}
		tr2, err := DecodeTree(bytes.NewReader(w.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding an accepted tree failed: %v", err)
		}
		// Arena images are canonical, so byte equality is the strongest
		// available identity check.
		if !bytes.Equal(tr.Freeze().Bytes(), tr2.Freeze().Bytes()) {
			t.Fatal("accepted tree did not round-trip identically")
		}
	})
}

// FuzzArenaFromBytes drives the arena validator with mutated images:
// it must never panic, and any image it accepts must serve without
// crashing and survive a reattach byte-identically.
func FuzzArenaFromBytes(f *testing.F) {
	for _, tr := range fuzzSeedTrees() {
		f.Add(tr.Freeze().Bytes())
	}
	f.Add([]byte(arenaMagic))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := ArenaFromBytes(data)
		if err != nil {
			return
		}
		// Serve a few predictions over the accepted image: every URL the
		// arena knows must be walkable without a crash.
		var buf []Prediction
		for s := 1; s <= a.SymbolCount() && s <= 8; s++ {
			buf = a.PredictInto([]string{a.URLOf(uint32(s))}, 0, buf)
		}
		b, err := ArenaFromBytes(a.Bytes())
		if err != nil {
			t.Fatalf("reattaching an accepted image failed: %v", err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("reattach changed the image")
		}
	})
}
