// Package markov provides the Markov prediction-tree substrate shared by
// the three PPM prefetching models in the paper (standard PPM, LRS-PPM,
// and popularity-based PPM): counted trie nodes, longest-suffix context
// matching, threshold-based prediction, pruning, usage marking for the
// path-utilization metric, and the Predictor interface the simulator
// drives.
//
// Storage layout. URLs are interned into a per-tree symbol table, so a
// node stores a 4-byte symbol instead of a string and each distinct URL
// is kept once per tree. Children use a hybrid representation: a slice
// of (symbol, pointer) pairs sorted by symbol while fan-out is small,
// promoted to a map above promoteFanout. Together these replace the old
// unconditional map[string]*Node per node, cutting real memory well
// below what the paper's node-count space metric suggests.
package markov

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// promoteFanout is the child count above which a node's sorted child
// slice is promoted to a map. Web prediction trees are heavy-tailed:
// almost all nodes stay below this and pay 16 bytes per child; the few
// hub nodes (site front pages, the pseudo-root) get O(1) lookup.
const promoteFanout = 16

// symtab interns URLs to dense uint32 symbols. Symbol 0 is reserved for
// the pseudo-root and never assigned to a URL.
type symtab struct {
	ids  map[string]uint32
	urls []string
}

func newSymtab() *symtab {
	return &symtab{ids: make(map[string]uint32), urls: []string{""}}
}

// intern returns the symbol for url, assigning the next free one on
// first sight.
func (s *symtab) intern(url string) uint32 {
	if id, ok := s.ids[url]; ok {
		return id
	}
	id := uint32(len(s.urls))
	s.urls = append(s.urls, url)
	s.ids[url] = id
	return id
}

// lookup returns the symbol for url without interning.
func (s *symtab) lookup(url string) (uint32, bool) {
	id, ok := s.ids[url]
	return id, ok
}

// clone returns an independent copy of the symbol table. The strings
// themselves are shared (immutable in Go); only the slice and map
// containers are fresh, so interning into the clone never mutates the
// original.
func (s *symtab) clone() *symtab {
	ids := make(map[string]uint32, len(s.ids))
	for url, id := range s.ids {
		ids[url] = id
	}
	urls := make([]string, len(s.urls))
	copy(urls, s.urls)
	return &symtab{ids: ids, urls: urls}
}

// childRef is one entry of the small (slice) child representation.
type childRef struct {
	sym  uint32
	node *Node
}

// Node is one URL occurrence context in a prediction tree. Count is the
// number of training accesses that reached this node along its path.
// The node does not store its URL; the owning Tree's symbol table
// resolves it (see Tree.URLOf).
type Node struct {
	Count int64

	// small holds up to promoteFanout children sorted by symbol; big
	// replaces it once fan-out exceeds that. At most one is non-nil.
	small []childRef
	big   map[uint32]*Node

	sym uint32

	// used records that a prediction-phase lookup reached this node or
	// predicted it; the path-utilization metric (Figure 2, right) counts
	// leaves with used set. It is atomic so concurrent Predict calls on
	// a shared tree never race on the mark.
	used atomic.Bool
}

// childBySym returns the child with the given symbol, or nil.
func (n *Node) childBySym(sym uint32) *Node {
	if n.big != nil {
		return n.big[sym]
	}
	s := n.small
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].sym < sym {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo].sym == sym {
		return s[lo].node
	}
	return nil
}

// ensureChildSym returns the child with the given symbol, creating it
// with zero count if absent and promoting the representation when the
// slice outgrows promoteFanout.
func (n *Node) ensureChildSym(sym uint32) *Node {
	if n.big != nil {
		if c := n.big[sym]; c != nil {
			return c
		}
		c := &Node{sym: sym}
		n.big[sym] = c
		return c
	}
	s := n.small
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].sym < sym {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo].sym == sym {
		return s[lo].node
	}
	c := &Node{sym: sym}
	if len(s) >= promoteFanout {
		n.big = make(map[uint32]*Node, len(s)+1)
		for _, cr := range s {
			n.big[cr.sym] = cr.node
		}
		n.big[sym] = c
		n.small = nil
		return c
	}
	n.small = append(n.small, childRef{})
	copy(n.small[lo+1:], n.small[lo:])
	n.small[lo] = childRef{sym: sym, node: c}
	return c
}

// removeChildSym detaches the child with the given symbol, if present.
func (n *Node) removeChildSym(sym uint32) {
	if n.big != nil {
		delete(n.big, sym)
		return
	}
	for i, cr := range n.small {
		if cr.sym == sym {
			n.small = append(n.small[:i], n.small[i+1:]...)
			return
		}
	}
}

// EachChild visits the node's children until fn returns false. The
// visiting order is unspecified; callers that need determinism sort by
// URL, as Walk does.
func (n *Node) EachChild(fn func(c *Node) bool) {
	if n.big != nil {
		for _, c := range n.big {
			if !fn(c) {
				return
			}
		}
		return
	}
	for _, cr := range n.small {
		if !fn(cr.node) {
			return
		}
	}
}

// Fanout reports the number of children.
func (n *Node) Fanout() int {
	if n.big != nil {
		return len(n.big)
	}
	return len(n.small)
}

// MarkUsed flags the node as touched by a prediction. It is safe to
// call from concurrent predictions.
func (n *Node) MarkUsed() { n.used.Store(true) }

// Used reports whether the node has been touched by a prediction.
func (n *Node) Used() bool { return n.used.Load() }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Fanout() == 0 }

// Prediction is one prefetch candidate.
type Prediction struct {
	// URL is the predicted next document.
	URL string
	// Probability is the model's estimate that URL is accessed next,
	// conditioned on the matched context.
	Probability float64
	// Order is the length of the context that produced the prediction
	// (1 = only the current URL matched).
	Order int
}

// BufferedPredictor is implemented by predictors that can write their
// candidates into a caller-supplied scratch buffer — the explicit
// buffer-ownership contract of the serving path:
//
//   - buf's previous contents are discarded (the model writes from
//     buf[:0]); the returned slice reuses buf's backing storage when
//     capacity allows and is freshly grown otherwise.
//   - The returned slice never aliases model-internal storage, so the
//     caller may mutate or reuse it freely; only the URL strings are
//     (immutable) views shared with the model.
//   - The model does not retain the buffer: ownership stays with the
//     caller across the call.
//
// All four models implement it; arena-frozen models additionally
// guarantee zero allocations per call once the buffer is warm. Callers
// holding only a Predictor use the PredictInto helper.
type BufferedPredictor interface {
	Predictor
	// PredictInto is Predict writing into buf per the contract above.
	PredictInto(context []string, buf []Prediction) []Prediction
}

// Freezer is implemented by models that can freeze their trained state
// into an immutable, GC-free serving snapshot (see Arena). The frozen
// predictor yields bit-identical predictions to the live model, cannot
// be trained, and is safe for unsynchronized concurrent use.
type Freezer interface {
	Freeze() Predictor
}

// PredictInto routes a prediction through p's buffered path when it has
// one, and falls back to copying Predict's result into buf otherwise —
// so callers get the buffer-ownership contract from any Predictor.
func PredictInto(p Predictor, context []string, buf []Prediction) []Prediction {
	if bp, ok := p.(BufferedPredictor); ok {
		return bp.PredictInto(context, buf)
	}
	return append(buf[:0], p.Predict(context)...)
}

// Predictor is the interface the trace-driven simulator drives. All
// three models implement it.
type Predictor interface {
	// Name identifies the model in reports ("PPM", "LRS-PPM", "PB-PPM").
	Name() string
	// TrainSequence folds one session's URL sequence into the model.
	// Training mutates the model and must not run concurrently with
	// other methods.
	TrainSequence(seq []string)
	// Predict returns prefetch candidates given the session context so
	// far (oldest first; the last element is the current click). Once
	// training has ceased, Predict is safe for concurrent use: with
	// usage recording enabled it writes only atomic usage marks, and
	// with recording detached (see UsageRecorder) it performs no writes
	// at all.
	Predict(context []string) []Prediction
	// NodeCount reports the model's storage requirement in URL nodes,
	// the paper's space metric.
	NodeCount() int
}

// UtilizationReporter is implemented by models that can report the
// fraction of stored root-to-leaf paths actually used by predictions.
type UtilizationReporter interface {
	Utilization() float64
	ResetUsage()
}

// UsageRecorder is implemented by models whose prediction-time usage
// recording can be detached. Publishing paths (the HTTP server, the
// maintenance loop) disable recording so that Predict on a shared,
// published model performs no writes at all; the simulator and
// diagnostics keep it enabled (the default) to compute the paper's
// path-utilization metric.
type UsageRecorder interface {
	// SetUsageRecording enables or disables prediction-time usage marks.
	SetUsageRecording(on bool)
	// UsageRecording reports whether usage marks are being recorded.
	UsageRecording() bool
}

// Tree is a counted prediction trie under a pseudo-root. The pseudo-root
// itself carries the number of branch insertions and is excluded from
// node counts.
type Tree struct {
	Root *Node

	syms *symtab

	// recording gates prediction-time usage marking (MarkPath,
	// PredictFrom). NewTree enables it; serving paths detach it so
	// predictions on published trees are genuinely read-only.
	recording atomic.Bool
}

// NewTree returns an empty tree with usage recording enabled.
func NewTree() *Tree {
	t := &Tree{Root: &Node{}, syms: newSymtab()}
	t.recording.Store(true)
	return t
}

// SetUsageRecording enables or disables prediction-time usage marking.
func (t *Tree) SetUsageRecording(on bool) { t.recording.Store(on) }

// UsageRecording reports whether prediction-time usage marking is on.
func (t *Tree) UsageRecording() bool { return t.recording.Load() }

// URLOf resolves a node's URL through the tree's symbol table. The
// pseudo-root resolves to the empty string.
func (t *Tree) URLOf(n *Node) string { return t.syms.urls[n.sym] }

// SymbolCount reports the number of distinct URLs interned by the tree.
func (t *Tree) SymbolCount() int { return len(t.syms.urls) - 1 }

// Child returns n's child for url, or nil. URLs never seen by the tree
// resolve to nil without mutating the symbol table.
func (t *Tree) Child(n *Node, url string) *Node {
	sym, ok := t.syms.lookup(url)
	if !ok {
		return nil
	}
	return n.childBySym(sym)
}

// EnsureChild returns n's child for url, creating it with zero count if
// absent. n must belong to t: the child is keyed by t's symbol for url.
func (t *Tree) EnsureChild(n *Node, url string) *Node {
	return n.ensureChildSym(t.syms.intern(url))
}

// EachChild visits n's children with their URLs until fn returns false.
// Visiting order is unspecified.
func (t *Tree) EachChild(n *Node, fn func(url string, c *Node) bool) {
	n.EachChild(func(c *Node) bool { return fn(t.syms.urls[c.sym], c) })
}

// Insert adds seq as a branch from the pseudo-root, incrementing counts
// by weight along the path. maxDepth > 0 truncates the branch to that
// many nodes; maxDepth <= 0 means unbounded. weight must be positive.
func (t *Tree) Insert(seq []string, maxDepth int, weight int64) {
	if weight <= 0 {
		panic(fmt.Sprintf("markov: non-positive insert weight %d", weight))
	}
	if len(seq) == 0 {
		return
	}
	t.Root.Count += weight
	n := t.Root
	for i, u := range seq {
		if maxDepth > 0 && i >= maxDepth {
			break
		}
		n = n.ensureChildSym(t.syms.intern(u))
		n.Count += weight
	}
}

// Match walks the exact path seq from the pseudo-root and returns the
// final node, or nil if the path is absent.
func (t *Tree) Match(seq []string) *Node {
	n := t.Root
	for _, u := range seq {
		sym, ok := t.syms.lookup(u)
		if !ok {
			return nil
		}
		n = n.childBySym(sym)
		if n == nil {
			return nil
		}
	}
	if n == t.Root {
		return nil
	}
	return n
}

// liveMatch is one still-surviving suffix match during LongestMatch:
// the context position it started at and the node it has reached.
type liveMatch struct {
	start int
	n     *Node
}

// LongestMatch finds the deepest node matching the longest suffix of
// ctx and returns it with the matched order (suffix length). It returns
// (nil, 0) when no suffix of ctx, not even the final URL alone, is in
// the tree.
//
// The implementation advances every candidate suffix in a single pass
// over ctx instead of re-walking from the root per suffix (which costs
// O(len(ctx)²) node hops): at each position all live matches step to
// the child for the current symbol or die, and a new match rooted at
// this position joins. The earliest surviving start is the longest
// suffix.
func (t *Tree) LongestMatch(ctx []string) (*Node, int) {
	if len(ctx) == 0 {
		return nil, 0
	}
	var live []liveMatch
	for i, u := range ctx {
		sym, known := t.syms.lookup(u)
		if !known {
			// An unseen URL kills every match running through it.
			live = live[:0]
			continue
		}
		k := 0
		for _, lv := range live {
			if c := lv.n.childBySym(sym); c != nil {
				live[k] = liveMatch{start: lv.start, n: c}
				k++
			}
		}
		live = live[:k]
		if c := t.Root.childBySym(sym); c != nil {
			live = append(live, liveMatch{start: i, n: c})
		}
	}
	if len(live) == 0 {
		return nil, 0
	}
	// live is ordered by ascending start (new matches join at the back),
	// so the first survivor is the longest suffix.
	return live[0].n, len(ctx) - live[0].start
}

// PredictFrom returns the children of n whose conditional probability
// (child count over n's count) is at least threshold, ordered by
// descending probability with URL tie-break for determinism. order is
// recorded on each prediction. When usage recording is enabled the
// predicted children are marked used (atomically, so concurrent callers
// never race); with recording detached the candidates are computed
// without any writes.
func (t *Tree) PredictFrom(n *Node, threshold float64, order int) []Prediction {
	return t.predictAt(n, threshold, order, t.recording.Load(), nil)
}

// PredictFromInto is PredictFrom writing into buf per the
// BufferedPredictor contract: buf's previous contents are discarded and
// the result reuses its backing storage when capacity allows.
func (t *Tree) PredictFromInto(n *Node, threshold float64, order int, buf []Prediction) []Prediction {
	return t.predictAt(n, threshold, order, t.recording.Load(), buf)
}

// CandidatesFrom is PredictFrom without any usage marking, regardless
// of the recording gate. Callers that post-filter the candidate set
// (blended prediction) use it and then mark only the survivors via
// MarkPredicted, so the utilization metric counts genuine predictions
// only.
func (t *Tree) CandidatesFrom(n *Node, threshold float64, order int) []Prediction {
	return t.predictAt(n, threshold, order, false, nil)
}

// MarkPredicted marks one node as used by a prediction, honoring the
// usage-recording gate.
func (t *Tree) MarkPredicted(n *Node) {
	if t.recording.Load() {
		n.MarkUsed()
	}
}

func (t *Tree) predictAt(n *Node, threshold float64, order int, mark bool, buf []Prediction) []Prediction {
	buf = buf[:0]
	if n == nil || n.Count == 0 {
		return buf
	}
	n.EachChild(func(c *Node) bool {
		p := float64(c.Count) / float64(n.Count)
		if p >= threshold {
			if mark {
				c.MarkUsed()
			}
			buf = append(buf, Prediction{URL: t.syms.urls[c.sym], Probability: p, Order: order})
		}
		return true
	})
	SortPredictions(buf)
	return buf
}

// SortPredictions orders predictions by the pinned deterministic total
// order: descending probability, then ascending URL. Every prediction
// path — serial, sharded, delta-merged, and arena-frozen — emits this
// order, so hint sets never depend on map iteration or merge order.
//
// Insertion sort, deliberately: candidate lists are short (a handful of
// children clear the probability threshold) and sort.Slice allocates
// its closure and reflect header, which would break the zero-allocation
// guarantee of the frozen serving path.
func SortPredictions(ps []Prediction) {
	for i := 1; i < len(ps); i++ {
		p := ps[i]
		j := i - 1
		for j >= 0 && predictionLess(p, ps[j]) {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = p
	}
}

// predictionLess is the pinned prediction order: probability
// descending, URL ascending.
func predictionLess(a, b Prediction) bool {
	if a.Probability != b.Probability {
		return a.Probability > b.Probability
	}
	return a.URL < b.URL
}

// NodeCount returns the number of URL nodes in the tree, excluding the
// pseudo-root. This is the paper's space metric.
func (t *Tree) NodeCount() int {
	return countNodes(t.Root) - 1
}

func countNodes(n *Node) int {
	total := 1
	n.EachChild(func(c *Node) bool {
		total += countNodes(c)
		return true
	})
	return total
}

// LeafCount returns the number of leaves (root-to-leaf paths).
func (t *Tree) LeafCount() int {
	if t.Root.IsLeaf() {
		return 0
	}
	return countLeaves(t.Root)
}

func countLeaves(n *Node) int {
	if n.IsLeaf() {
		return 1
	}
	total := 0
	n.EachChild(func(c *Node) bool {
		total += countLeaves(c)
		return true
	})
	return total
}

// Utilization returns the fraction of root-to-leaf paths whose ending
// leaf was used by a prediction — matched as (part of) a lookup context
// or emitted as a prefetch candidate. This follows the paper's §3.3
// definition ("we define a path as a URL sequence from the root to an
// ending leaf; if this path has been used, we mark it useful"): under
// longest-suffix matching, duplicated sub-branches rooted mid-sequence
// are skipped in favor of the longer match, so their full paths stay
// unused. An empty tree reports zero.
func (t *Tree) Utilization() float64 {
	if t.Root.IsLeaf() {
		return 0
	}
	leaves, used := 0, 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			leaves++
			if n.used.Load() {
				used++
			}
			return
		}
		n.EachChild(func(c *Node) bool {
			walk(c)
			return true
		})
	}
	t.Root.EachChild(func(c *Node) bool {
		walk(c)
		return true
	})
	if leaves == 0 {
		return 0
	}
	return float64(used) / float64(leaves)
}

// ResetUsage clears all usage marks.
func (t *Tree) ResetUsage() {
	var walk func(n *Node)
	walk = func(n *Node) {
		n.used.Store(false)
		n.EachChild(func(c *Node) bool {
			walk(c)
			return true
		})
	}
	walk(t.Root)
}

// MarkPath marks every node along the exact path seq as used. Unknown
// paths are ignored, as is the whole call when usage recording is
// detached. Prediction code calls this for the matched context so that
// interior usage is visible in diagnostics.
func (t *Tree) MarkPath(seq []string) {
	if !t.recording.Load() {
		return
	}
	n := t.Root
	for _, u := range seq {
		sym, ok := t.syms.lookup(u)
		if !ok {
			return
		}
		n = n.childBySym(sym)
		if n == nil {
			return
		}
		n.MarkUsed()
	}
}

// Prune removes every non-root node (and its subtree) for which remove
// returns true, and returns the number of nodes removed. remove is
// called with the node's parent (possibly the pseudo-root) and the node.
func (t *Tree) Prune(remove func(parent, child *Node) bool) int {
	removed := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		var doomed []uint32
		n.EachChild(func(c *Node) bool {
			if remove(n, c) {
				removed += countNodes(c)
				doomed = append(doomed, c.sym)
			} else {
				walk(c)
			}
			return true
		})
		for _, sym := range doomed {
			n.removeChildSym(sym)
		}
	}
	walk(t.Root)
	return removed
}

// sortedChildren returns n's children ordered by URL.
func (t *Tree) sortedChildren(n *Node) []*Node {
	out := make([]*Node, 0, n.Fanout())
	n.EachChild(func(c *Node) bool {
		out = append(out, c)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		return t.syms.urls[out[i].sym] < t.syms.urls[out[j].sym]
	})
	return out
}

// Walk visits every node in depth-first order with its path from the
// pseudo-root. Visiting order over siblings is sorted by URL so walks
// are deterministic.
func (t *Tree) Walk(fn func(path []string, n *Node)) {
	var walk func(prefix []string, n *Node)
	walk = func(prefix []string, n *Node) {
		for _, c := range t.sortedChildren(n) {
			path := append(prefix[:len(prefix):len(prefix)], t.syms.urls[c.sym])
			fn(path, c)
			walk(path, c)
		}
	}
	walk(nil, t.Root)
}

// String renders the tree in a compact indented format for debugging
// and golden tests: one "url/count" per line, two spaces per depth.
func (t *Tree) String() string {
	var sb strings.Builder
	t.Walk(func(path []string, n *Node) {
		sb.WriteString(strings.Repeat("  ", len(path)-1))
		fmt.Fprintf(&sb, "%s/%d\n", path[len(path)-1], n.Count)
	})
	return sb.String()
}

// Merge folds other's counts into t, node by node — the cooperative
// scenario of the paper's related work where service proxies aggregate
// prediction state from multiple home servers, and the fold step of
// TrainAllParallel. other is not modified. Usage marks are not merged
// (they are prediction-phase scratch).
func (t *Tree) Merge(other *Tree) {
	t.Root.Count += other.Root.Count
	if t.syms == other.syms {
		var merge func(dst, src *Node)
		merge = func(dst, src *Node) {
			src.EachChild(func(sc *Node) bool {
				dc := dst.ensureChildSym(sc.sym)
				dc.Count += sc.Count
				merge(dc, sc)
				return true
			})
		}
		merge(t.Root, other.Root)
		return
	}
	// Different symbol tables: translate lazily through a remap slice
	// (src symbol → dst symbol; 0 marks not-yet-seen, safe because
	// symbol 0 is reserved for the pseudo-root and never keys a child).
	remap := make([]uint32, len(other.syms.urls))
	var merge func(dst, src *Node)
	merge = func(dst, src *Node) {
		src.EachChild(func(sc *Node) bool {
			sym := remap[sc.sym]
			if sym == 0 {
				sym = t.syms.intern(other.syms.urls[sc.sym])
				remap[sc.sym] = sym
			}
			dc := dst.ensureChildSym(sym)
			dc.Count += sc.Count
			merge(dc, sc)
			return true
		})
	}
	merge(t.Root, other.Root)
}

// Clone returns a deep copy of the tree: every node, child container,
// and the symbol table are fresh allocations, so training into or
// merging into the clone never mutates the receiver. This is the
// copy-on-write step of incremental maintenance: the published snapshot
// stays live and read-only while its clone absorbs a delta. Usage marks
// are not copied (they are prediction-phase scratch); the recording
// gate's state is carried over.
//
// The receiver must not be trained concurrently with Clone; cloning a
// published (read-only) snapshot is always safe.
func (t *Tree) Clone() *Tree {
	out := &Tree{Root: cloneNode(t.Root), syms: t.syms.clone()}
	out.recording.Store(t.recording.Load())
	return out
}

func cloneNode(n *Node) *Node {
	c := &Node{Count: n.Count, sym: n.sym}
	if n.big != nil {
		c.big = make(map[uint32]*Node, len(n.big))
		for sym, ch := range n.big {
			c.big[sym] = cloneNode(ch)
		}
		return c
	}
	if len(n.small) > 0 {
		c.small = make([]childRef, len(n.small))
		for i, cr := range n.small {
			c.small[i] = childRef{sym: cr.sym, node: cloneNode(cr.node)}
		}
	}
	return c
}

// MergeInto folds t's counts into dst, leaving t unmodified: Merge seen
// from the shard's side, so a freshly trained delta tree reads
// delta.MergeInto(clone). dst must not be a published snapshot that
// concurrent readers still use.
func (t *Tree) MergeInto(dst *Tree) { dst.Merge(t) }

// CopyIf returns a new tree containing only the nodes for which keep
// returns true; rejecting a node skips its entire subtree. The copy
// shares t's symbol table (so it costs no string duplication) and must
// therefore not be read concurrently with training that mutates t.
// Usage marks are not copied; recording starts enabled.
func (t *Tree) CopyIf(keep func(parent, child *Node) bool) *Tree {
	out := &Tree{Root: &Node{Count: t.Root.Count}, syms: t.syms}
	out.recording.Store(true)
	var cp func(src, dst *Node)
	cp = func(src, dst *Node) {
		src.EachChild(func(sc *Node) bool {
			if !keep(src, sc) {
				return true
			}
			dc := dst.ensureChildSym(sc.sym)
			dc.Count = sc.Count
			cp(sc, dc)
			return true
		})
	}
	cp(t.Root, out.Root)
	return out
}
