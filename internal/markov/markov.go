// Package markov provides the Markov prediction-tree substrate shared by
// the three PPM prefetching models in the paper (standard PPM, LRS-PPM,
// and popularity-based PPM): counted trie nodes, longest-suffix context
// matching, threshold-based prediction, pruning, usage marking for the
// path-utilization metric, and the Predictor interface the simulator
// drives.
package markov

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Node is one URL occurrence context in a prediction tree. Count is the
// number of training accesses that reached this node along its path.
type Node struct {
	URL      string
	Count    int64
	Children map[string]*Node

	// used records that a prediction-phase lookup reached this node or
	// predicted it; the path-utilization metric (Figure 2, right) counts
	// leaves with used set. It is atomic so concurrent Predict calls on
	// a shared tree never race on the mark.
	used atomic.Bool
}

// Child returns the child for url, or nil.
func (n *Node) Child(url string) *Node {
	return n.Children[url]
}

// EnsureChild returns the child for url, creating it with zero count if
// absent.
func (n *Node) EnsureChild(url string) *Node {
	if c := n.Children[url]; c != nil {
		return c
	}
	if n.Children == nil {
		n.Children = make(map[string]*Node)
	}
	c := &Node{URL: url}
	n.Children[url] = c
	return c
}

// MarkUsed flags the node as touched by a prediction. It is safe to
// call from concurrent predictions.
func (n *Node) MarkUsed() { n.used.Store(true) }

// Used reports whether the node has been touched by a prediction.
func (n *Node) Used() bool { return n.used.Load() }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Prediction is one prefetch candidate.
type Prediction struct {
	// URL is the predicted next document.
	URL string
	// Probability is the model's estimate that URL is accessed next,
	// conditioned on the matched context.
	Probability float64
	// Order is the length of the context that produced the prediction
	// (1 = only the current URL matched).
	Order int
}

// Predictor is the interface the trace-driven simulator drives. All
// three models implement it.
type Predictor interface {
	// Name identifies the model in reports ("PPM", "LRS-PPM", "PB-PPM").
	Name() string
	// TrainSequence folds one session's URL sequence into the model.
	// Training mutates the model and must not run concurrently with
	// other methods.
	TrainSequence(seq []string)
	// Predict returns prefetch candidates given the session context so
	// far (oldest first; the last element is the current click). Once
	// training has ceased, Predict is safe for concurrent use: with
	// usage recording enabled it writes only atomic usage marks, and
	// with recording detached (see UsageRecorder) it performs no writes
	// at all.
	Predict(context []string) []Prediction
	// NodeCount reports the model's storage requirement in URL nodes,
	// the paper's space metric.
	NodeCount() int
}

// TrainAll folds a batch of sequences into a predictor.
func TrainAll(p Predictor, seqs [][]string) {
	for _, s := range seqs {
		p.TrainSequence(s)
	}
}

// UtilizationReporter is implemented by models that can report the
// fraction of stored root-to-leaf paths actually used by predictions.
type UtilizationReporter interface {
	Utilization() float64
	ResetUsage()
}

// UsageRecorder is implemented by models whose prediction-time usage
// recording can be detached. Publishing paths (the HTTP server, the
// maintenance loop) disable recording so that Predict on a shared,
// published model performs no writes at all; the simulator and
// diagnostics keep it enabled (the default) to compute the paper's
// path-utilization metric.
type UsageRecorder interface {
	// SetUsageRecording enables or disables prediction-time usage marks.
	SetUsageRecording(on bool)
	// UsageRecording reports whether usage marks are being recorded.
	UsageRecording() bool
}

// Tree is a counted prediction trie under a pseudo-root. The pseudo-root
// itself carries the number of branch insertions and is excluded from
// node counts.
type Tree struct {
	Root *Node

	// recording gates prediction-time usage marking (MarkPath,
	// PredictFrom). NewTree enables it; serving paths detach it so
	// predictions on published trees are genuinely read-only.
	recording atomic.Bool
}

// NewTree returns an empty tree with usage recording enabled.
func NewTree() *Tree {
	t := &Tree{Root: &Node{Children: make(map[string]*Node)}}
	t.recording.Store(true)
	return t
}

// SetUsageRecording enables or disables prediction-time usage marking.
func (t *Tree) SetUsageRecording(on bool) { t.recording.Store(on) }

// UsageRecording reports whether prediction-time usage marking is on.
func (t *Tree) UsageRecording() bool { return t.recording.Load() }

// Insert adds seq as a branch from the pseudo-root, incrementing counts
// by weight along the path. maxDepth > 0 truncates the branch to that
// many nodes; maxDepth <= 0 means unbounded. weight must be positive.
func (t *Tree) Insert(seq []string, maxDepth int, weight int64) {
	if weight <= 0 {
		panic(fmt.Sprintf("markov: non-positive insert weight %d", weight))
	}
	if len(seq) == 0 {
		return
	}
	t.Root.Count += weight
	n := t.Root
	for i, u := range seq {
		if maxDepth > 0 && i >= maxDepth {
			break
		}
		n = n.EnsureChild(u)
		n.Count += weight
	}
}

// Match walks the exact path seq from the pseudo-root and returns the
// final node, or nil if the path is absent.
func (t *Tree) Match(seq []string) *Node {
	n := t.Root
	for _, u := range seq {
		n = n.Child(u)
		if n == nil {
			return nil
		}
	}
	if n == t.Root {
		return nil
	}
	return n
}

// LongestMatch finds the deepest node matching the longest suffix of
// ctx and returns it with the matched order (suffix length). It returns
// (nil, 0) when no suffix of ctx, not even the final URL alone, is in
// the tree.
func (t *Tree) LongestMatch(ctx []string) (*Node, int) {
	for i := 0; i < len(ctx); i++ {
		if n := t.Match(ctx[i:]); n != nil {
			return n, len(ctx) - i
		}
	}
	return nil, 0
}

// PredictAt returns the children of n whose conditional probability
// (child count over n's count) is at least threshold, ordered by
// descending probability with URL tie-break for determinism. order is
// recorded on each prediction. Predicted children are marked used
// (atomically, so concurrent callers never race).
func PredictAt(n *Node, threshold float64, order int) []Prediction {
	return predictAt(n, threshold, order, true)
}

// PredictFrom is PredictAt honoring the tree's usage-recording gate:
// when recording is detached the candidates are computed without any
// writes, keeping predictions on published trees read-only.
func (t *Tree) PredictFrom(n *Node, threshold float64, order int) []Prediction {
	return predictAt(n, threshold, order, t.recording.Load())
}

func predictAt(n *Node, threshold float64, order int, mark bool) []Prediction {
	if n == nil || n.Count == 0 {
		return nil
	}
	var out []Prediction
	for _, c := range n.Children {
		p := float64(c.Count) / float64(n.Count)
		if p >= threshold {
			if mark {
				c.MarkUsed()
			}
			out = append(out, Prediction{URL: c.URL, Probability: p, Order: order})
		}
	}
	SortPredictions(out)
	return out
}

// SortPredictions orders predictions by descending probability, then
// ascending URL.
func SortPredictions(ps []Prediction) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Probability != ps[j].Probability {
			return ps[i].Probability > ps[j].Probability
		}
		return ps[i].URL < ps[j].URL
	})
}

// NodeCount returns the number of URL nodes in the tree, excluding the
// pseudo-root. This is the paper's space metric.
func (t *Tree) NodeCount() int {
	return countNodes(t.Root) - 1
}

func countNodes(n *Node) int {
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// LeafCount returns the number of leaves (root-to-leaf paths).
func (t *Tree) LeafCount() int {
	if len(t.Root.Children) == 0 {
		return 0
	}
	return countLeaves(t.Root)
}

func countLeaves(n *Node) int {
	if len(n.Children) == 0 {
		return 1
	}
	total := 0
	for _, c := range n.Children {
		total += countLeaves(c)
	}
	return total
}

// Utilization returns the fraction of root-to-leaf paths whose ending
// leaf was used by a prediction — matched as (part of) a lookup context
// or emitted as a prefetch candidate. This follows the paper's §3.3
// definition ("we define a path as a URL sequence from the root to an
// ending leaf; if this path has been used, we mark it useful"): under
// longest-suffix matching, duplicated sub-branches rooted mid-sequence
// are skipped in favor of the longer match, so their full paths stay
// unused. An empty tree reports zero.
func (t *Tree) Utilization() float64 {
	leaves, used := 0, 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if len(n.Children) == 0 {
			leaves++
			if n.used.Load() {
				used++
			}
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if len(t.Root.Children) == 0 {
		return 0
	}
	for _, c := range t.Root.Children {
		walk(c)
	}
	if leaves == 0 {
		return 0
	}
	return float64(used) / float64(leaves)
}

// ResetUsage clears all usage marks.
func (t *Tree) ResetUsage() {
	var walk func(n *Node)
	walk = func(n *Node) {
		n.used.Store(false)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
}

// MarkPath marks every node along the exact path seq as used. Unknown
// paths are ignored, as is the whole call when usage recording is
// detached. Prediction code calls this for the matched context so that
// interior usage is visible in diagnostics.
func (t *Tree) MarkPath(seq []string) {
	if !t.recording.Load() {
		return
	}
	n := t.Root
	for _, u := range seq {
		n = n.Child(u)
		if n == nil {
			return
		}
		n.MarkUsed()
	}
}

// Prune removes every non-root node (and its subtree) for which remove
// returns true, and returns the number of nodes removed. remove is
// called with the node's parent (possibly the pseudo-root) and the node.
func (t *Tree) Prune(remove func(parent, child *Node) bool) int {
	removed := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		for url, c := range n.Children {
			if remove(n, c) {
				removed += countNodes(c)
				delete(n.Children, url)
				continue
			}
			walk(c)
		}
	}
	walk(t.Root)
	return removed
}

// Walk visits every node in depth-first order with its path from the
// pseudo-root. Visiting order over siblings is sorted by URL so walks
// are deterministic.
func (t *Tree) Walk(fn func(path []string, n *Node)) {
	var walk func(prefix []string, n *Node)
	walk = func(prefix []string, n *Node) {
		urls := make([]string, 0, len(n.Children))
		for u := range n.Children {
			urls = append(urls, u)
		}
		sort.Strings(urls)
		for _, u := range urls {
			c := n.Children[u]
			path := append(prefix[:len(prefix):len(prefix)], u)
			fn(path, c)
			walk(path, c)
		}
	}
	walk(nil, t.Root)
}

// String renders the tree in a compact indented format for debugging
// and golden tests: one "url/count" per line, two spaces per depth.
func (t *Tree) String() string {
	var sb strings.Builder
	t.Walk(func(path []string, n *Node) {
		sb.WriteString(strings.Repeat("  ", len(path)-1))
		fmt.Fprintf(&sb, "%s/%d\n", n.URL, n.Count)
	})
	return sb.String()
}

// Merge folds other's counts into t, node by node — the cooperative
// scenario of the paper's related work where service proxies aggregate
// prediction state from multiple home servers. other is not modified.
// Usage marks are not merged (they are prediction-phase scratch).
func (t *Tree) Merge(other *Tree) {
	t.Root.Count += other.Root.Count
	var merge func(dst, src *Node)
	merge = func(dst, src *Node) {
		for url, sc := range src.Children {
			dc := dst.EnsureChild(url)
			dc.Count += sc.Count
			merge(dc, sc)
		}
	}
	merge(t.Root, other.Root)
}
