package markov

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func seq(urls ...string) []string { return urls }

func TestInsertAndMatch(t *testing.T) {
	tr := NewTree()
	tr.Insert(seq("a", "b", "c"), 0, 1)
	tr.Insert(seq("a", "b"), 0, 1)
	tr.Insert(seq("a", "x"), 0, 1)

	if n := tr.Match(seq("a")); n == nil || n.Count != 3 {
		t.Fatalf("Match(a) = %+v, want count 3", n)
	}
	if n := tr.Match(seq("a", "b")); n == nil || n.Count != 2 {
		t.Fatalf("Match(a,b) = %+v, want count 2", n)
	}
	if n := tr.Match(seq("a", "b", "c")); n == nil || n.Count != 1 {
		t.Fatalf("Match(a,b,c) = %+v", n)
	}
	if n := tr.Match(seq("z")); n != nil {
		t.Errorf("Match(z) = %+v, want nil", n)
	}
	if n := tr.Match(nil); n != nil {
		t.Errorf("Match(empty) = %+v, want nil", n)
	}
	if tr.Root.Count != 3 {
		t.Errorf("pseudo-root count = %d, want 3", tr.Root.Count)
	}
}

func TestInsertMaxDepth(t *testing.T) {
	tr := NewTree()
	tr.Insert(seq("a", "b", "c", "d"), 2, 1)
	if tr.Match(seq("a", "b")) == nil {
		t.Error("depth-2 path missing")
	}
	if tr.Match(seq("a", "b", "c")) != nil {
		t.Error("depth-3 node present despite maxDepth 2")
	}
	if got := tr.NodeCount(); got != 2 {
		t.Errorf("NodeCount = %d, want 2", got)
	}
}

func TestInsertWeight(t *testing.T) {
	tr := NewTree()
	tr.Insert(seq("a", "b"), 0, 5)
	if n := tr.Match(seq("a", "b")); n.Count != 5 {
		t.Errorf("weighted count = %d, want 5", n.Count)
	}
}

func TestInsertZeroWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Insert(weight=0) did not panic")
		}
	}()
	NewTree().Insert(seq("a"), 0, 0)
}

func TestInsertEmptySequence(t *testing.T) {
	tr := NewTree()
	tr.Insert(nil, 0, 1)
	if tr.NodeCount() != 0 || tr.Root.Count != 0 {
		t.Errorf("empty insert changed tree: %d nodes", tr.NodeCount())
	}
}

func TestTreeChildAndURLOf(t *testing.T) {
	tr := NewTree()
	tr.Insert(seq("a", "b"), 0, 1)
	a := tr.Child(tr.Root, "a")
	if a == nil || tr.URLOf(a) != "a" {
		t.Fatalf("Child(root, a) = %+v", a)
	}
	if b := tr.Child(a, "b"); b == nil || tr.URLOf(b) != "b" {
		t.Fatalf("Child(a, b) = %+v", b)
	}
	if tr.Child(a, "never-seen") != nil {
		t.Error("Child on unseen URL != nil")
	}
	// Child on an unseen URL must not grow the symbol table.
	if got := tr.SymbolCount(); got != 2 {
		t.Errorf("SymbolCount = %d, want 2", got)
	}
	c := tr.EnsureChild(a, "c")
	if c == nil || c.Count != 0 || tr.URLOf(c) != "c" {
		t.Fatalf("EnsureChild = %+v", c)
	}
	if tr.EnsureChild(a, "c") != c {
		t.Error("EnsureChild not idempotent")
	}
}

func TestEachChild(t *testing.T) {
	tr := NewTree()
	tr.Insert(seq("a", "b"), 0, 1)
	tr.Insert(seq("a", "c"), 0, 1)
	seen := map[string]int64{}
	tr.EachChild(tr.Match(seq("a")), func(url string, c *Node) bool {
		seen[url] = c.Count
		return true
	})
	if len(seen) != 2 || seen["b"] != 1 || seen["c"] != 1 {
		t.Errorf("EachChild saw %v", seen)
	}
	// Early stop.
	visits := 0
	tr.Match(seq("a")).EachChild(func(c *Node) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("EachChild ignored stop: %d visits", visits)
	}
}

// TestHybridPromotion drives one parent across the slice→map promotion
// boundary and checks that lookups, counts, ordering, and pruning keep
// working in the promoted representation.
func TestHybridPromotion(t *testing.T) {
	tr := NewTree()
	const kids = 3 * promoteFanout
	for i := 0; i < kids; i++ {
		tr.Insert(seq("hub", url(i)), 0, int64(i+1))
	}
	hub := tr.Match(seq("hub"))
	if hub.Fanout() != kids {
		t.Fatalf("Fanout = %d, want %d", hub.Fanout(), kids)
	}
	for i := 0; i < kids; i++ {
		n := tr.Match(seq("hub", url(i)))
		if n == nil || n.Count != int64(i+1) {
			t.Fatalf("child %d = %+v", i, n)
		}
	}
	if got := tr.NodeCount(); got != kids+1 {
		t.Errorf("NodeCount = %d, want %d", got, kids+1)
	}
	// Walk must stay URL-sorted across the promotion.
	var prev string
	walked := 0
	tr.Walk(func(path []string, n *Node) {
		if len(path) != 2 {
			return
		}
		if u := path[1]; u < prev {
			t.Fatalf("walk order broken: %q after %q", u, prev)
		} else {
			prev = u
		}
		walked++
	})
	if walked != kids {
		t.Errorf("walked %d children, want %d", walked, kids)
	}
	// Prune from the promoted map.
	removed := tr.Prune(func(parent, child *Node) bool {
		return parent == hub && child.Count <= int64(promoteFanout)
	})
	if removed != promoteFanout {
		t.Errorf("removed = %d, want %d", removed, promoteFanout)
	}
	if hub.Fanout() != kids-promoteFanout {
		t.Errorf("fanout after prune = %d", hub.Fanout())
	}
	if tr.Match(seq("hub", url(0))) != nil {
		t.Error("pruned child still reachable")
	}
	if tr.Match(seq("hub", url(kids-1))) == nil {
		t.Error("surviving child lost")
	}
}

func url(i int) string {
	return "/page-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func TestLongestMatch(t *testing.T) {
	tr := NewTree()
	tr.Insert(seq("a", "b", "c"), 0, 1)
	tr.Insert(seq("b", "c"), 0, 1)
	tr.Insert(seq("c"), 0, 1)

	n, order := tr.LongestMatch(seq("a", "b", "c"))
	if n == nil || order != 3 || tr.URLOf(n) != "c" {
		t.Fatalf("LongestMatch(a,b,c) = %+v order %d, want full match", n, order)
	}
	n, order = tr.LongestMatch(seq("z", "b", "c"))
	if n == nil || order != 2 {
		t.Fatalf("LongestMatch(z,b,c) order = %d, want 2", order)
	}
	n, order = tr.LongestMatch(seq("z", "y", "c"))
	if n == nil || order != 1 {
		t.Fatalf("LongestMatch(z,y,c) order = %d, want 1", order)
	}
	n, order = tr.LongestMatch(seq("q"))
	if n != nil || order != 0 {
		t.Fatalf("LongestMatch(q) = %+v, want no match", n)
	}
}

func TestLongestMatchPartialDeepSuffix(t *testing.T) {
	// A suffix can start matching and die mid-way; a shorter suffix
	// must still win. a->b exists but a->b->x does not; b->x does not;
	// x does.
	tr := NewTree()
	tr.Insert(seq("a", "b"), 0, 1)
	tr.Insert(seq("x"), 0, 1)
	n, order := tr.LongestMatch(seq("a", "b", "x"))
	if n == nil || order != 1 || tr.URLOf(n) != "x" {
		t.Fatalf("LongestMatch(a,b,x) = %v order %d, want x at order 1", n, order)
	}
	// An unseen URL kills every match running through it.
	n, order = tr.LongestMatch(seq("a", "unseen", "a", "b"))
	if n == nil || order != 2 || tr.URLOf(n) != "b" {
		t.Fatalf("LongestMatch(a,?,a,b) = %v order %d, want a->b", n, order)
	}
	if n, _ := tr.LongestMatch(nil); n != nil {
		t.Error("LongestMatch(nil) != nil")
	}
}

// TestLongestMatchAgainstRescan cross-checks the single-pass walk
// against the definitional per-suffix rescan on random trees/contexts.
func TestLongestMatchAgainstRescan(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	urls := []string{"a", "b", "c", "d", "e", "zz"}
	tr := NewTree()
	for i := 0; i < 400; i++ {
		s := make([]string, rng.Intn(5)+1)
		for j := range s {
			s[j] = urls[rng.Intn(len(urls))]
		}
		tr.Insert(s, 0, 1)
	}
	rescan := func(ctx []string) (*Node, int) {
		for i := 0; i < len(ctx); i++ {
			if n := tr.Match(ctx[i:]); n != nil {
				return n, len(ctx) - i
			}
		}
		return nil, 0
	}
	ctxURLs := append([]string{"unseen"}, urls...)
	for i := 0; i < 1000; i++ {
		ctx := make([]string, rng.Intn(7))
		for j := range ctx {
			ctx[j] = ctxURLs[rng.Intn(len(ctxURLs))]
		}
		wantN, wantOrder := rescan(ctx)
		gotN, gotOrder := tr.LongestMatch(ctx)
		if gotN != wantN || gotOrder != wantOrder {
			t.Fatalf("ctx %v: got (%v, %d), rescan (%v, %d)", ctx, gotN, gotOrder, wantN, wantOrder)
		}
	}
}

func TestPredictFrom(t *testing.T) {
	tr := NewTree()
	for i := 0; i < 6; i++ {
		tr.Insert(seq("a", "b"), 0, 1)
	}
	for i := 0; i < 3; i++ {
		tr.Insert(seq("a", "c"), 0, 1)
	}
	tr.Insert(seq("a", "d"), 0, 1)

	n := tr.Match(seq("a"))
	ps := tr.PredictFrom(n, 0.25, 1)
	if len(ps) != 2 {
		t.Fatalf("predictions = %+v, want 2 (b: 0.6, c: 0.3)", ps)
	}
	if ps[0].URL != "b" || ps[0].Probability != 0.6 || ps[0].Order != 1 {
		t.Errorf("first prediction = %+v", ps[0])
	}
	if ps[1].URL != "c" || ps[1].Probability != 0.3 {
		t.Errorf("second prediction = %+v", ps[1])
	}
	// d (0.1) is below threshold and must not be marked used.
	if tr.Match(seq("a", "d")).Used() {
		t.Error("below-threshold child marked used")
	}
	if !tr.Match(seq("a", "b")).Used() {
		t.Error("predicted child not marked used")
	}
	if tr.PredictFrom(nil, 0.25, 1) != nil {
		t.Error("PredictFrom(nil) != nil")
	}
}

func TestCandidatesFromNeverMarks(t *testing.T) {
	tr := NewTree()
	tr.Insert(seq("a", "b"), 0, 3)
	n := tr.Match(seq("a"))
	ps := tr.CandidatesFrom(n, 0, 1)
	if len(ps) != 1 || ps[0].URL != "b" {
		t.Fatalf("candidates = %+v", ps)
	}
	if tr.Match(seq("a", "b")).Used() {
		t.Error("CandidatesFrom marked a node despite recording being on")
	}
	tr.MarkPredicted(tr.Match(seq("a", "b")))
	if !tr.Match(seq("a", "b")).Used() {
		t.Error("MarkPredicted did not mark with recording on")
	}
	tr.ResetUsage()
	tr.SetUsageRecording(false)
	tr.MarkPredicted(tr.Match(seq("a", "b")))
	if tr.Match(seq("a", "b")).Used() {
		t.Error("MarkPredicted wrote through a detached recording gate")
	}
}

func TestPredictDeterministicTieBreak(t *testing.T) {
	tr := NewTree()
	tr.Insert(seq("a", "z"), 0, 1)
	tr.Insert(seq("a", "b"), 0, 1)
	ps := tr.PredictFrom(tr.Match(seq("a")), 0.1, 1)
	if len(ps) != 2 || ps[0].URL != "b" || ps[1].URL != "z" {
		t.Errorf("tie break order = %+v, want b then z", ps)
	}
}

func TestNodeAndLeafCount(t *testing.T) {
	tr := NewTree()
	if tr.NodeCount() != 0 || tr.LeafCount() != 0 {
		t.Error("empty tree counts not zero")
	}
	tr.Insert(seq("a", "b", "c"), 0, 1)
	tr.Insert(seq("a", "d"), 0, 1)
	tr.Insert(seq("x"), 0, 1)
	if got := tr.NodeCount(); got != 5 {
		t.Errorf("NodeCount = %d, want 5", got)
	}
	if got := tr.LeafCount(); got != 3 {
		t.Errorf("LeafCount = %d, want 3", got)
	}
}

func TestUtilization(t *testing.T) {
	tr := NewTree()
	tr.Insert(seq("a", "b", "c"), 0, 1)
	tr.Insert(seq("a", "d"), 0, 1)
	tr.Insert(seq("x", "y"), 0, 1)
	if got := tr.Utilization(); got != 0 {
		t.Errorf("fresh tree utilization = %v, want 0", got)
	}
	// Touch the leaf of a->b->c.
	tr.Match(seq("a", "b", "c")).MarkUsed()
	if got := tr.Utilization(); got < 0.33 || got > 0.34 {
		t.Errorf("utilization = %v, want 1/3", got)
	}
	tr.Match(seq("a", "d")).MarkUsed()
	tr.Match(seq("x", "y")).MarkUsed()
	if got := tr.Utilization(); got != 1 {
		t.Errorf("utilization = %v, want 1", got)
	}
	tr.ResetUsage()
	if got := tr.Utilization(); got != 0 {
		t.Errorf("utilization after reset = %v, want 0", got)
	}
	if NewTree().Utilization() != 0 {
		t.Error("empty tree utilization not 0")
	}
}

func TestMarkPath(t *testing.T) {
	tr := NewTree()
	tr.Insert(seq("a", "b", "c"), 0, 1)
	tr.MarkPath(seq("a", "b"))
	if !tr.Match(seq("a")).Used() || !tr.Match(seq("a", "b")).Used() {
		t.Error("MarkPath did not mark prefix nodes")
	}
	if tr.Match(seq("a", "b", "c")).Used() {
		t.Error("MarkPath marked beyond the path")
	}
	tr.MarkPath(seq("nope", "x")) // must not panic
}

func TestPrune(t *testing.T) {
	tr := NewTree()
	for i := 0; i < 10; i++ {
		tr.Insert(seq("a", "b"), 0, 1)
	}
	tr.Insert(seq("a", "rare", "deep"), 0, 1)
	removed := tr.Prune(func(parent, child *Node) bool {
		// "rare" has count 1 of parent "a"'s 11 accesses (~9%).
		return parent != tr.Root && float64(child.Count)/float64(parent.Count) < 0.1
	})
	if removed != 2 {
		t.Errorf("removed = %d, want 2 (rare and its subtree)", removed)
	}
	if tr.Match(seq("a", "rare")) != nil {
		t.Error("pruned node still present")
	}
	if tr.Match(seq("a", "b")) == nil {
		t.Error("surviving node removed")
	}
}

func TestWalkAndString(t *testing.T) {
	tr := NewTree()
	tr.Insert(seq("b", "x"), 0, 1)
	tr.Insert(seq("a"), 0, 2)
	var visits []string
	tr.Walk(func(path []string, n *Node) {
		visits = append(visits, strings.Join(path, ">"))
	})
	want := []string{"a", "b", "b>x"}
	if len(visits) != len(want) {
		t.Fatalf("visits = %v", visits)
	}
	for i := range want {
		if visits[i] != want[i] {
			t.Errorf("visit %d = %s, want %s", i, visits[i], want[i])
		}
	}
	str := tr.String()
	if !strings.Contains(str, "a/2") || !strings.Contains(str, "  x/1") {
		t.Errorf("String() = %q", str)
	}
}

func TestEncodeDecode(t *testing.T) {
	tr := NewTree()
	tr.Insert(seq("a", "b", "c"), 0, 3)
	tr.Insert(seq("a", "d"), 0, 1)
	tr.Insert(seq("z"), 0, 7)

	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeTree(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.String() != tr.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", got.String(), tr.String())
	}
	if got.NodeCount() != tr.NodeCount() || got.Root.Count != tr.Root.Count {
		t.Errorf("counts differ after round trip")
	}
	// Decoded tree must accept further inserts.
	got.Insert(seq("new"), 0, 1)
	if got.Match(seq("new")) == nil {
		t.Error("decoded tree rejects inserts")
	}
}

func TestDecodeError(t *testing.T) {
	if _, err := DecodeTree(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("DecodeTree(junk) succeeded")
	}
}

// Property: NodeCount equals the number of distinct prefixes of all
// inserted (depth-capped) sequences.
func TestNodeCountMatchesPrefixSetProperty(t *testing.T) {
	f := func(raw [][]byte, depthSeed uint8) bool {
		tr := NewTree()
		maxDepth := int(depthSeed%5) + 1
		prefixes := make(map[string]bool)
		for _, bs := range raw {
			var s []string
			for _, b := range bs {
				s = append(s, string(rune('a'+int(b)%6)))
			}
			if len(s) > 8 {
				s = s[:8]
			}
			tr.Insert(s, maxDepth, 1)
			for i := 1; i <= len(s) && i <= maxDepth; i++ {
				prefixes[strings.Join(s[:i], "\x00")] = true
			}
		}
		return tr.NodeCount() == len(prefixes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: after any random insert mix, every node's count is at least
// the sum of its children's counts (conservation of flow).
func TestCountConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewTree()
	urls := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 500; i++ {
		n := rng.Intn(6) + 1
		s := make([]string, n)
		for j := range s {
			s[j] = urls[rng.Intn(len(urls))]
		}
		tr.Insert(s, rng.Intn(4), 1) // mix of unbounded (0) and capped
	}
	ok := true
	var check func(n *Node)
	check = func(n *Node) {
		var sum int64
		n.EachChild(func(c *Node) bool {
			sum += c.Count
			check(c)
			return true
		})
		if n.Count < sum {
			ok = false
		}
	}
	check(tr.Root)
	if !ok {
		t.Error("count conservation violated")
	}
}

// Property: probabilities emitted with threshold 0 sum to at most 1 and
// each lies in (0, 1].
func TestPredictionProbabilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := NewTree()
	urls := []string{"a", "b", "c", "d"}
	for i := 0; i < 300; i++ {
		s := []string{"root", urls[rng.Intn(4)]}
		tr.Insert(s, 0, 1)
	}
	n := tr.Match(seq("root"))
	ps := tr.PredictFrom(n, 0, 1)
	var sum float64
	for _, p := range ps {
		if p.Probability <= 0 || p.Probability > 1 {
			t.Fatalf("probability %v out of range", p.Probability)
		}
		sum += p.Probability
	}
	if sum > 1+1e-9 {
		t.Errorf("probabilities sum to %v > 1", sum)
	}
}

func TestMerge(t *testing.T) {
	a := NewTree()
	a.Insert(seq("x", "y"), 0, 3)
	a.Insert(seq("z"), 0, 1)
	b := NewTree()
	// Interleave an extra URL first so b's symbol ids diverge from a's
	// and the merge exercises the remap path with conflicting ids.
	b.Insert(seq("q"), 0, 5)
	b.Insert(seq("x", "y"), 0, 2)
	b.Insert(seq("x", "w"), 0, 1)

	a.Merge(b)
	if n := a.Match(seq("x", "y")); n.Count != 5 {
		t.Errorf("merged count = %d, want 5", n.Count)
	}
	if n := a.Match(seq("x")); n.Count != 6 {
		t.Errorf("x count = %d, want 6", n.Count)
	}
	if a.Match(seq("x", "w")) == nil || a.Match(seq("q")) == nil {
		t.Error("merged-in branches missing")
	}
	if n := a.Match(seq("q")); a.URLOf(n) != "q" {
		t.Errorf("remapped URL = %q, want q", a.URLOf(n))
	}
	if a.Root.Count != 12 {
		t.Errorf("root count = %d, want 12", a.Root.Count)
	}
	// The source tree is untouched.
	if b.Match(seq("x", "y")).Count != 2 || b.NodeCount() != 4 {
		t.Error("merge mutated the source")
	}
}

func TestMergeSharedSymbols(t *testing.T) {
	a := NewTree()
	a.Insert(seq("x", "y"), 0, 3)
	b := a.CopyIf(func(parent, child *Node) bool { return true })
	b.Insert(seq("x", "w"), 0, 2)
	a.Merge(b)
	if n := a.Match(seq("x")); n.Count != 8 {
		t.Errorf("x count = %d, want 8 (3 + copied 3 + 2)", n.Count)
	}
	if a.Match(seq("x", "w")) == nil {
		t.Error("shared-symtab merge lost a branch")
	}
}

func TestMergePreservesConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	urls := []string{"a", "b", "c", "d"}
	a, b := NewTree(), NewTree()
	for i := 0; i < 300; i++ {
		s := make([]string, rng.Intn(5)+1)
		for j := range s {
			s[j] = urls[rng.Intn(len(urls))]
		}
		if i%2 == 0 {
			a.Insert(s, 0, 1)
		} else {
			b.Insert(s, 0, 1)
		}
	}
	a.Merge(b)
	var check func(n *Node)
	check = func(n *Node) {
		var sum int64
		n.EachChild(func(c *Node) bool {
			sum += c.Count
			check(c)
			return true
		})
		if n.Count < sum {
			t.Fatalf("conservation violated at count %d < children %d", n.Count, sum)
		}
	}
	check(a.Root)
}

func TestCopyIf(t *testing.T) {
	tr := NewTree()
	tr.Insert(seq("a", "b"), 0, 3)
	tr.Insert(seq("a", "rare"), 0, 1)
	tr.Insert(seq("solo"), 0, 1)
	cp := tr.CopyIf(func(parent, child *Node) bool { return child.Count >= 2 })
	if cp.Match(seq("a")) == nil || cp.Match(seq("a", "b")) == nil {
		t.Error("kept branch missing from copy")
	}
	if cp.Match(seq("a", "rare")) != nil || cp.Match(seq("solo")) != nil {
		t.Error("rejected branch present in copy")
	}
	if cp.Root.Count != tr.Root.Count {
		t.Errorf("root count = %d, want %d", cp.Root.Count, tr.Root.Count)
	}
	// The copy is independent at the node level: new inserts into the
	// source do not appear in the copy.
	tr.Insert(seq("a", "b", "new"), 0, 5)
	if cp.Match(seq("a", "b", "new")) != nil {
		t.Error("copy shares nodes with source")
	}
}
