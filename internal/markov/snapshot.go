// Frozen-model serialization: the piece that lets one process train a
// model and every other process serve it.
//
// A published snapshot is more than the arena image — PB-PPM's frozen
// model also carries its precomputed rule-3 links, a frozen tree its
// threshold and height clamp — so shipping a model between processes
// needs a self-describing envelope, not just Arena.Bytes. FrozenEncoder
// is that envelope's producer half: a frozen predictor names its
// concrete kind and writes its full serving state. The decoder half is
// a registry keyed by kind (the same shape as image.RegisterFormat or
// gob.Register), so generic distribution code — the maintainer's
// snapshot publisher, a follower's poll loop — moves models around
// without a type switch over every model package.
//
// Model packages register their decoders in init; a process can only
// decode kinds whose packages it links (prefetchd links core, ppm, and
// lrs transitively through its model factory imports).
package markov

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"
)

// FrozenEncoder is implemented by frozen predictors that can serialize
// their complete serving state for another process to revive. The
// encoded form contains the arena image verbatim (host-endian, guarded
// by the header's byte-order mark) plus whatever model-specific state
// serving needs; DecodeFrozenModel revives it through the decoder
// registered for Kind.
type FrozenEncoder interface {
	Predictor
	// FrozenKind names the concrete frozen representation, e.g.
	// "core/pbppm". It keys the decoder registry and travels inside
	// the snapshot envelope.
	FrozenKind() string
	// EncodeFrozen writes the model's full serving state.
	EncodeFrozen(w io.Writer) error
}

// FrozenDecoder revives one frozen-model kind from its encoded form.
// Implementations must validate everything they read (a snapshot may
// arrive truncated or corrupted over the network) and return an error
// rather than panic.
type FrozenDecoder func(r io.Reader) (Predictor, error)

var frozenDecoders = struct {
	sync.RWMutex
	m map[string]FrozenDecoder
}{m: make(map[string]FrozenDecoder)}

// RegisterFrozenDecoder registers the decoder for a frozen-model kind.
// Model packages call it from init; re-registering a kind panics (two
// packages claiming one kind is a programmer error).
func RegisterFrozenDecoder(kind string, fn FrozenDecoder) {
	if kind == "" || fn == nil {
		panic("markov: RegisterFrozenDecoder with empty kind or nil decoder")
	}
	frozenDecoders.Lock()
	defer frozenDecoders.Unlock()
	if _, dup := frozenDecoders.m[kind]; dup {
		panic(fmt.Sprintf("markov: frozen decoder for kind %q registered twice", kind))
	}
	frozenDecoders.m[kind] = fn
}

// DecodeFrozenModel revives a frozen model of the named kind from r.
// Unknown kinds — a model package the process does not link, or a
// corrupted envelope — return an error listing what is registered.
func DecodeFrozenModel(kind string, r io.Reader) (Predictor, error) {
	frozenDecoders.RLock()
	fn := frozenDecoders.m[kind]
	frozenDecoders.RUnlock()
	if fn == nil {
		frozenDecoders.RLock()
		known := make([]string, 0, len(frozenDecoders.m))
		for k := range frozenDecoders.m {
			known = append(known, k)
		}
		frozenDecoders.RUnlock()
		sort.Strings(known)
		return nil, fmt.Errorf("markov: no frozen decoder for kind %q (registered: %v)", kind, known)
	}
	return fn(r)
}

// FrozenTreeKind identifies the generic single-tree frozen model
// (standard PPM without blending, LRS) in snapshot envelopes.
const FrozenTreeKind = "markov/frozen-tree"

// wireFrozenTree is the gob image of a FrozenTree. The arena travels as
// its raw image; ArenaFromBytes re-validates every offset on decode.
type wireFrozenTree struct {
	Name        string
	Threshold   float64
	ClampHeight int
	Arena       []byte
}

var _ FrozenEncoder = (*FrozenTree)(nil)

// FrozenKind implements FrozenEncoder.
func (f *FrozenTree) FrozenKind() string { return FrozenTreeKind }

// EncodeFrozen implements FrozenEncoder: name, threshold, height clamp,
// and the arena image.
func (f *FrozenTree) EncodeFrozen(w io.Writer) error {
	bw := bufio.NewWriter(w)
	img := wireFrozenTree{
		Name:        f.name,
		Threshold:   f.threshold,
		ClampHeight: f.clampHeight,
		Arena:       f.arena.Bytes(),
	}
	if err := gob.NewEncoder(bw).Encode(img); err != nil {
		return fmt.Errorf("markov: encoding frozen tree: %w", err)
	}
	return bw.Flush()
}

func init() {
	RegisterFrozenDecoder(FrozenTreeKind, func(r io.Reader) (Predictor, error) {
		var img wireFrozenTree
		if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&img); err != nil {
			return nil, fmt.Errorf("markov: decoding frozen tree: %w", err)
		}
		a, err := ArenaFromBytes(img.Arena)
		if err != nil {
			return nil, fmt.Errorf("markov: decoding frozen tree: %w", err)
		}
		return NewFrozenTree(a, img.Name, img.Threshold, img.ClampHeight), nil
	})
}
