package markov

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestFrozenTreeSnapshotRoundTrip: encoding a frozen tree and decoding
// it through the kind registry must reproduce identical predictions —
// the invariant the snapshot-distribution channel rests on.
func TestFrozenTreeSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomArenaTree(rng, 600, 0)
	f := NewFrozenTree(tr.Freeze(), "PPM-test", 0.1, 5)

	var w bytes.Buffer
	if err := f.EncodeFrozen(&w); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrozenModel(f.FrozenKind(), bytes.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "PPM-test" {
		t.Errorf("decoded name = %q", got.Name())
	}
	for i := 0; i < 500; i++ {
		ctx := make([]string, rng.Intn(6))
		for j := range ctx {
			ctx[j] = url(rng.Intn(40))
		}
		if want, have := f.Predict(ctx), got.Predict(ctx); !reflect.DeepEqual(want, have) {
			t.Fatalf("ctx %v: decoded model predicts %+v, original %+v", ctx, have, want)
		}
	}
	// The arena image itself must revive bit-identical.
	if !bytes.Equal(f.Arena().Bytes(), got.(*FrozenTree).Arena().Bytes()) {
		t.Fatal("round trip changed the arena image")
	}
}

// TestDecodeFrozenModelUnknownKind: a kind the process has not linked a
// decoder for must error with the registered kinds listed, not panic.
func TestDecodeFrozenModelUnknownKind(t *testing.T) {
	_, err := DecodeFrozenModel("nonexistent/kind", bytes.NewReader(nil))
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	if !strings.Contains(err.Error(), FrozenTreeKind) {
		t.Errorf("error %v does not list registered kinds", err)
	}
}

// TestDecodeFrozenModelRejectsCorrupt: truncated gob, and a valid gob
// carrying a corrupted arena, must both error (never panic).
func TestDecodeFrozenModelRejectsCorrupt(t *testing.T) {
	tr := NewTree()
	tr.Insert([]string{"/a", "/b"}, 0, 1)
	f := NewFrozenTree(tr.Freeze(), "t", 0, 0)
	var w bytes.Buffer
	if err := f.EncodeFrozen(&w); err != nil {
		t.Fatal(err)
	}
	valid := w.Bytes()

	for cut := 0; cut < len(valid); cut += 7 {
		if _, err := DecodeFrozenModel(FrozenTreeKind, bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	// Corrupt the arena inside an otherwise valid envelope: re-encode
	// with a broken image.
	bad := wireFrozenTree{Name: "t", Arena: []byte("pbppmAR2 not really an arena")}
	var wb bytes.Buffer
	if err := gob.NewEncoder(&wb).Encode(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrozenModel(FrozenTreeKind, bytes.NewReader(wb.Bytes())); err == nil {
		t.Fatal("corrupt embedded arena accepted")
	}
}
