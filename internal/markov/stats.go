package markov

import (
	"fmt"
	"sort"
	"strings"
	"unsafe"
)

// Per-entry bookkeeping estimate for Go maps: bucket slot shares for
// key and value plus header/overflow amortization. Maps cannot be
// measured exactly without runtime internals, so this is the one
// approximate term in BytesEstimate; everything else is unsafe.Sizeof
// of the real layout.
const mapEntryOverhead = 16

// TreeStats summarizes the shape of a prediction tree — the numbers
// behind the paper's space discussion and useful for capacity planning
// a deployment.
type TreeStats struct {
	// Nodes is the URL node count (the paper's space metric).
	Nodes int
	// Leaves is the number of root-to-leaf paths.
	Leaves int
	// Roots is the number of branch heads.
	Roots int
	// MaxDepth is the longest branch, in nodes.
	MaxDepth int
	// DepthHistogram counts nodes per depth (index 0 = roots).
	DepthHistogram []int
	// MeanBranching is the average child count over internal nodes.
	MeanBranching float64
	// TotalCount is the sum of node counts (training mass).
	TotalCount int64
	// Bytes is the measured in-memory size of the tree (see
	// Tree.BytesEstimate); exported as the pbppm_model_bytes gauge.
	Bytes int64
	// Symbols is the number of distinct URLs interned by the tree.
	Symbols int
}

// BytesEstimate measures the tree's in-memory size: node structs, child
// slices and promoted child maps, and the symbol table (each distinct
// URL stored once, plus intern-map bookkeeping). Struct and slice terms
// use the real compiled sizes via unsafe.Sizeof; map terms use a
// documented per-entry estimate.
func (t *Tree) BytesEstimate() int64 {
	var bytes int64
	nodeSize := int64(unsafe.Sizeof(Node{}))
	refSize := int64(unsafe.Sizeof(childRef{}))
	var walk func(n *Node)
	walk = func(n *Node) {
		bytes += nodeSize
		if n.big != nil {
			bytes += 48 + int64(len(n.big))*(int64(unsafe.Sizeof(uint32(0)))+8+mapEntryOverhead)
		} else {
			bytes += int64(cap(n.small)) * refSize
		}
		n.EachChild(func(c *Node) bool {
			walk(c)
			return true
		})
	}
	walk(t.Root)

	// Symbol table: the urls slice backing array (string headers plus
	// each URL's bytes, stored once) and the intern map.
	bytes += int64(cap(t.syms.urls)) * int64(unsafe.Sizeof(""))
	for _, u := range t.syms.urls {
		bytes += int64(len(u))
	}
	bytes += 48 + int64(len(t.syms.ids))*(int64(unsafe.Sizeof(""))+int64(unsafe.Sizeof(uint32(0)))+mapEntryOverhead)
	return bytes
}

// Stats computes TreeStats in one walk.
func (t *Tree) Stats() TreeStats {
	var st TreeStats
	st.Roots = t.Root.Fanout()
	st.Symbols = t.SymbolCount()
	st.Bytes = t.BytesEstimate()
	internal := 0
	childSum := 0
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		st.Nodes++
		st.TotalCount += n.Count
		for len(st.DepthHistogram) <= depth {
			st.DepthHistogram = append(st.DepthHistogram, 0)
		}
		st.DepthHistogram[depth]++
		if depth+1 > st.MaxDepth {
			st.MaxDepth = depth + 1
		}
		if n.IsLeaf() {
			st.Leaves++
			return
		}
		internal++
		childSum += n.Fanout()
		n.EachChild(func(c *Node) bool {
			walk(c, depth+1)
			return true
		})
	}
	t.Root.EachChild(func(c *Node) bool {
		walk(c, 0)
		return true
	})
	if internal > 0 {
		st.MeanBranching = float64(childSum) / float64(internal)
	}
	return st
}

// String renders the stats as a small report.
func (st TreeStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes %d (roots %d, leaves %d), max depth %d\n",
		st.Nodes, st.Roots, st.Leaves, st.MaxDepth)
	fmt.Fprintf(&sb, "mean branching %.2f, training mass %d, %d interned URLs, ~%d KiB\n",
		st.MeanBranching, st.TotalCount, st.Symbols, st.Bytes/1024)
	sb.WriteString("depth histogram:")
	for d, n := range st.DepthHistogram {
		fmt.Fprintf(&sb, " %d:%d", d+1, n)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// TreeHolder is implemented by models backed by a single prediction
// tree (PB-PPM, PPM, LRS expose theirs); the observability layer uses
// it to publish model-health gauges without knowing the model type.
type TreeHolder interface {
	Tree() *Tree
}

// ArenaHolder is implemented by frozen models backed by a prediction
// arena; the observability layer uses it the same way as TreeHolder.
type ArenaHolder interface {
	Arena() *Arena
}

// StatsOf returns tree statistics for any predictor backed by a
// prediction tree or a frozen arena; ok is false for models without
// either (e.g. Top-N), whose only universal health signal is
// Predictor.NodeCount.
func StatsOf(p Predictor) (st TreeStats, ok bool) {
	if th, ok := p.(TreeHolder); ok && th.Tree() != nil {
		return th.Tree().Stats(), true
	}
	if ah, ok := p.(ArenaHolder); ok && ah.Arena() != nil {
		return ah.Arena().Stats(), true
	}
	return TreeStats{}, false
}

// TopBranches returns the n highest-count root branches with their
// counts, descending; a quick view of what the model considers hot.
func (t *Tree) TopBranches(n int) []Prediction {
	out := make([]Prediction, 0, t.Root.Fanout())
	total := t.Root.Count
	t.Root.EachChild(func(c *Node) bool {
		p := 0.0
		if total > 0 {
			p = float64(c.Count) / float64(total)
		}
		out = append(out, Prediction{URL: t.syms.urls[c.sym], Probability: p, Order: 1})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Probability != out[j].Probability {
			return out[i].Probability > out[j].Probability
		}
		return out[i].URL < out[j].URL
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
