package markov

import (
	"fmt"
	"sort"
	"strings"
)

// TreeStats summarizes the shape of a prediction tree — the numbers
// behind the paper's space discussion and useful for capacity planning
// a deployment.
type TreeStats struct {
	// Nodes is the URL node count (the paper's space metric).
	Nodes int
	// Leaves is the number of root-to-leaf paths.
	Leaves int
	// Roots is the number of branch heads.
	Roots int
	// MaxDepth is the longest branch, in nodes.
	MaxDepth int
	// DepthHistogram counts nodes per depth (index 0 = roots).
	DepthHistogram []int
	// MeanBranching is the average child count over internal nodes.
	MeanBranching float64
	// TotalCount is the sum of node counts (training mass).
	TotalCount int64
	// ApproxBytes estimates in-memory size: per-node struct, map
	// entry, and URL string overheads.
	ApproxBytes int64
}

// Stats computes TreeStats in one walk.
func (t *Tree) Stats() TreeStats {
	var st TreeStats
	st.Roots = len(t.Root.Children)
	internal := 0
	childSum := 0
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		st.Nodes++
		st.TotalCount += n.Count
		for len(st.DepthHistogram) <= depth {
			st.DepthHistogram = append(st.DepthHistogram, 0)
		}
		st.DepthHistogram[depth]++
		if depth+1 > st.MaxDepth {
			st.MaxDepth = depth + 1
		}
		// Node struct + map header/bucket share + string header+bytes.
		st.ApproxBytes += 64 + int64(len(n.URL)) + 48
		if len(n.Children) == 0 {
			st.Leaves++
			return
		}
		internal++
		childSum += len(n.Children)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, c := range t.Root.Children {
		walk(c, 0)
	}
	if internal > 0 {
		st.MeanBranching = float64(childSum) / float64(internal)
	}
	return st
}

// String renders the stats as a small report.
func (st TreeStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes %d (roots %d, leaves %d), max depth %d\n",
		st.Nodes, st.Roots, st.Leaves, st.MaxDepth)
	fmt.Fprintf(&sb, "mean branching %.2f, training mass %d, ~%d KiB\n",
		st.MeanBranching, st.TotalCount, st.ApproxBytes/1024)
	sb.WriteString("depth histogram:")
	for d, n := range st.DepthHistogram {
		fmt.Fprintf(&sb, " %d:%d", d+1, n)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// TreeHolder is implemented by models backed by a single prediction
// tree (PB-PPM, PPM, LRS expose theirs); the observability layer uses
// it to publish model-health gauges without knowing the model type.
type TreeHolder interface {
	Tree() *Tree
}

// StatsOf returns tree statistics for any predictor backed by a
// prediction tree; ok is false for models without one (e.g. Top-N),
// whose only universal health signal is Predictor.NodeCount.
func StatsOf(p Predictor) (st TreeStats, ok bool) {
	th, ok := p.(TreeHolder)
	if !ok || th.Tree() == nil {
		return TreeStats{}, false
	}
	return th.Tree().Stats(), true
}

// TopBranches returns the n highest-count root branches with their
// counts, descending; a quick view of what the model considers hot.
func (t *Tree) TopBranches(n int) []Prediction {
	out := make([]Prediction, 0, len(t.Root.Children))
	total := t.Root.Count
	for _, c := range t.Root.Children {
		p := 0.0
		if total > 0 {
			p = float64(c.Count) / float64(total)
		}
		out = append(out, Prediction{URL: c.URL, Probability: p, Order: 1})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Probability != out[j].Probability {
			return out[i].Probability > out[j].Probability
		}
		return out[i].URL < out[j].URL
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
