package markov

import (
	"strings"
	"testing"
)

func TestTreeStats(t *testing.T) {
	tr := NewTree()
	tr.Insert([]string{"a", "b", "c"}, 0, 2)
	tr.Insert([]string{"a", "d"}, 0, 1)
	tr.Insert([]string{"x"}, 0, 5)

	st := tr.Stats()
	if st.Nodes != 5 {
		t.Errorf("Nodes = %d, want 5", st.Nodes)
	}
	if st.Roots != 2 || st.Leaves != 3 {
		t.Errorf("Roots=%d Leaves=%d", st.Roots, st.Leaves)
	}
	if st.MaxDepth != 3 {
		t.Errorf("MaxDepth = %d", st.MaxDepth)
	}
	// Depth histogram: depth0 {a,x}=2, depth1 {b,d}=2, depth2 {c}=1.
	want := []int{2, 2, 1}
	for i, n := range want {
		if st.DepthHistogram[i] != n {
			t.Errorf("hist[%d] = %d, want %d", i, st.DepthHistogram[i], n)
		}
	}
	// TotalCount: a=3, b=2, c=2, d=1, x=5 → 13.
	if st.TotalCount != 13 {
		t.Errorf("TotalCount = %d", st.TotalCount)
	}
	// Internal nodes: a (2 children), b (1 child) → mean 1.5.
	if st.MeanBranching != 1.5 {
		t.Errorf("MeanBranching = %v", st.MeanBranching)
	}
	if st.Bytes <= 0 {
		t.Error("Bytes not measured")
	}
	if st.Symbols != 5 {
		t.Errorf("Symbols = %d, want 5", st.Symbols)
	}
	out := st.String()
	if !strings.Contains(out, "nodes 5") || !strings.Contains(out, "depth histogram") {
		t.Errorf("String:\n%s", out)
	}
}

func TestBytesEstimate(t *testing.T) {
	tr := NewTree()
	base := tr.BytesEstimate()
	if base <= 0 {
		t.Fatalf("empty tree BytesEstimate = %d", base)
	}
	tr.Insert([]string{"/a", "/b"}, 0, 1)
	grown := tr.BytesEstimate()
	if grown <= base {
		t.Errorf("BytesEstimate did not grow: %d -> %d", base, grown)
	}
	// Interning: re-using the same URLs in a new branch must cost less
	// than the first branch did (no new string storage).
	tr.Insert([]string{"/b", "/a"}, 0, 1)
	reused := tr.BytesEstimate()
	if reused-grown >= grown-base {
		t.Errorf("re-used URLs cost as much as fresh ones: +%d vs +%d", reused-grown, grown-base)
	}
}

func TestTreeStatsEmpty(t *testing.T) {
	st := NewTree().Stats()
	if st.Nodes != 0 || st.Leaves != 0 || st.MaxDepth != 0 || st.MeanBranching != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

// treeBacked is a minimal Predictor exposing its tree, mirroring the
// real models' Tree() accessor.
type treeBacked struct {
	Predictor
	tree *Tree
}

func (m treeBacked) Tree() *Tree { return m.tree }

// treeless is a Predictor without a tree (the Top-N shape).
type treeless struct{ Predictor }

func TestStatsOf(t *testing.T) {
	tr := NewTree()
	tr.Insert([]string{"a", "b"}, 0, 1)
	st, ok := StatsOf(treeBacked{tree: tr})
	if !ok {
		t.Fatal("StatsOf reported no tree for a tree-backed model")
	}
	if st.Nodes != 2 {
		t.Errorf("Nodes = %d, want 2", st.Nodes)
	}
	if _, ok := StatsOf(treeless{}); ok {
		t.Error("StatsOf reported a tree for a treeless model")
	}
	if _, ok := StatsOf(treeBacked{tree: nil}); ok {
		t.Error("StatsOf reported stats for a nil tree")
	}
}

func TestTopBranches(t *testing.T) {
	tr := NewTree()
	tr.Insert([]string{"hot"}, 0, 10)
	tr.Insert([]string{"warm"}, 0, 5)
	tr.Insert([]string{"cold"}, 0, 1)

	top := tr.TopBranches(2)
	if len(top) != 2 || top[0].URL != "hot" || top[1].URL != "warm" {
		t.Fatalf("TopBranches = %+v", top)
	}
	if top[0].Probability != 10.0/16 {
		t.Errorf("P(hot) = %v", top[0].Probability)
	}
	if got := tr.TopBranches(99); len(got) != 3 {
		t.Errorf("TopBranches(99) = %d entries", len(got))
	}
	if got := NewTree().TopBranches(3); len(got) != 0 {
		t.Errorf("empty tree TopBranches = %+v", got)
	}
}
