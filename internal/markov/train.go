package markov

import (
	"hash/fnv"
	"runtime"
	"sync"
)

// TrainAll folds a batch of sequences into a predictor, serially.
func TrainAll(p Predictor, seqs [][]string) {
	for _, s := range seqs {
		p.TrainSequence(s)
	}
}

// ShardedTrainer is implemented by models whose training can be split
// across workers: NewShard returns a fresh, empty model compatible with
// the receiver, and MergeShard folds a trained shard's counts back into
// it. Because tree counts are additive and Merge is commutative over
// them, a model trained through shards is equivalent to one trained
// serially on the same sequences.
type ShardedTrainer interface {
	Predictor
	// NewShard returns an empty model sharing the receiver's
	// configuration, suitable for independent training.
	NewShard() Predictor
	// MergeShard folds a shard previously returned by NewShard into the
	// receiver. It must not run concurrently with other methods.
	MergeShard(shard Predictor)
}

// IncrementalTrainer is implemented by models that support O(delta)
// incremental updates: Clone returns a deep copy of the model whose
// subsequent training or merging never mutates the receiver, and
// MergeShard (inherited from ShardedTrainer) folds a delta shard into
// that clone. The maintenance loop uses the pair as its delta-merge
// path: train only the newly observed sessions into a fresh shard, fold
// the shard into a clone of the live snapshot, and publish the clone —
// cost proportional to the delta, not the training window.
//
// A Clone result is always the same concrete type as the receiver and
// therefore also implements IncrementalTrainer. Read-only collaborators
// (a popularity grader) may be shared between the clone and the
// receiver; everything trainable must be deep-copied.
type IncrementalTrainer interface {
	ShardedTrainer
	// Clone returns a deep copy suitable for absorbing a delta while the
	// receiver stays published. It must not run concurrently with
	// training on the receiver.
	Clone() Predictor
}

// minParallelSeqs is the batch size below which sharding overhead
// (goroutines, per-shard trees, the merge) outweighs the speedup.
const minParallelSeqs = 64

// TrainAllParallel folds a batch of sequences into a predictor using up
// to GOMAXPROCS workers when the predictor supports sharded training.
// Sequences are sharded by a hash of their head URL, so sessions that
// grow the same root branches land in the same shard and the per-shard
// trees stay disjoint where it matters. Models that do not implement
// ShardedTrainer, and small batches, are trained serially. The result
// is deterministic: identical to serial TrainAll regardless of worker
// count.
func TrainAllParallel(p Predictor, seqs [][]string) {
	trainAllWorkers(p, seqs, runtime.GOMAXPROCS(0))
}

// trainAllWorkers is TrainAllParallel with an explicit worker count,
// split out so tests can force parallelism on single-CPU machines.
func trainAllWorkers(p Predictor, seqs [][]string, workers int) {
	st, ok := p.(ShardedTrainer)
	if !ok || workers < 2 || len(seqs) < minParallelSeqs {
		TrainAll(p, seqs)
		return
	}
	if workers > len(seqs) {
		workers = len(seqs)
	}

	shardOf := func(seq []string) int {
		h := fnv.New32a()
		h.Write([]byte(seq[0]))
		return int(h.Sum32() % uint32(workers))
	}
	buckets := make([][][]string, workers)
	for _, s := range seqs {
		if len(s) == 0 {
			continue
		}
		i := shardOf(s)
		buckets[i] = append(buckets[i], s)
	}

	shards := make([]Predictor, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		if len(buckets[i]) == 0 {
			continue
		}
		shards[i] = st.NewShard()
		wg.Add(1)
		go func(shard Predictor, batch [][]string) {
			defer wg.Done()
			for _, s := range batch {
				shard.TrainSequence(s)
			}
		}(shards[i], buckets[i])
	}
	wg.Wait()

	// Fold in shard order so symbol assignment in the destination tree
	// is deterministic for a given worker count.
	for _, shard := range shards {
		if shard != nil {
			st.MergeShard(shard)
		}
	}
}
