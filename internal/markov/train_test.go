package markov

import (
	"math/rand"
	"reflect"
	"testing"
)

// suffixModel is a minimal ShardedTrainer used to exercise the generic
// sharding machinery without importing the real models (which have
// their own parallel-equivalence tests).
type suffixModel struct {
	tree *Tree
}

func newSuffixModel() *suffixModel { return &suffixModel{tree: NewTree()} }

func (m *suffixModel) Name() string { return "suffix-test" }
func (m *suffixModel) TrainSequence(seq []string) {
	for i := range seq {
		m.tree.Insert(seq[i:], 4, 1)
	}
}
func (m *suffixModel) Predict(ctx []string) []Prediction {
	n, order := m.tree.LongestMatch(ctx)
	if n == nil {
		return nil
	}
	return m.tree.PredictFrom(n, 0.2, order)
}
func (m *suffixModel) NodeCount() int      { return m.tree.NodeCount() }
func (m *suffixModel) NewShard() Predictor { return newSuffixModel() }
func (m *suffixModel) MergeShard(s Predictor) {
	m.tree.Merge(s.(*suffixModel).tree)
}

// plainModel does not implement ShardedTrainer, forcing the serial
// fallback.
type plainModel struct{ tree *Tree }

func newPlainModel() *plainModel { return &plainModel{tree: NewTree()} }

func (m *plainModel) Name() string { return "plain-test" }
func (m *plainModel) TrainSequence(seq []string) {
	for i := range seq {
		m.tree.Insert(seq[i:], 4, 1)
	}
}
func (m *plainModel) Predict(ctx []string) []Prediction { return nil }
func (m *plainModel) NodeCount() int                    { return m.tree.NodeCount() }

func randomSeqs(seed int64, n int) [][]string {
	rng := rand.New(rand.NewSource(seed))
	urls := make([]string, 25)
	for i := range urls {
		urls[i] = url(i)
	}
	out := make([][]string, n)
	for i := range out {
		s := make([]string, rng.Intn(6)+1)
		for j := range s {
			s[j] = urls[rng.Intn(len(urls))]
		}
		out[i] = s
	}
	return out
}

// TestTrainAllParallelEquivalence forces multiple workers (the test
// machine may have one CPU) and checks that sharded training produces
// exactly the serial model: same node count and identical predictions.
func TestTrainAllParallelEquivalence(t *testing.T) {
	seqs := randomSeqs(7, 500)
	serial := newSuffixModel()
	TrainAll(serial, seqs)

	for _, workers := range []int{2, 3, 8} {
		sharded := newSuffixModel()
		trainAllWorkers(sharded, seqs, workers)
		if got, want := sharded.NodeCount(), serial.NodeCount(); got != want {
			t.Fatalf("workers=%d: NodeCount %d, serial %d", workers, got, want)
		}
		rng := rand.New(rand.NewSource(13))
		urls := make([]string, 26)
		for i := range urls {
			urls[i] = url(i)
		}
		for i := 0; i < 500; i++ {
			ctx := make([]string, rng.Intn(5))
			for j := range ctx {
				ctx[j] = urls[rng.Intn(len(urls))]
			}
			if got, want := sharded.Predict(ctx), serial.Predict(ctx); !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d ctx %v:\n got %+v\nwant %+v", workers, ctx, got, want)
			}
		}
	}
}

// TestTrainAllParallelDeterministic checks that two sharded runs with
// the same worker count produce identical trees (String is the
// deterministic render).
func TestTrainAllParallelDeterministic(t *testing.T) {
	seqs := randomSeqs(21, 300)
	a, b := newSuffixModel(), newSuffixModel()
	trainAllWorkers(a, seqs, 4)
	trainAllWorkers(b, seqs, 4)
	if a.tree.String() != b.tree.String() {
		t.Error("identical sharded runs produced different trees")
	}
}

// TestTrainAllParallelFallbacks covers the serial fallbacks: a model
// without sharding support, a single worker, and a small batch.
func TestTrainAllParallelFallbacks(t *testing.T) {
	seqs := randomSeqs(3, 100)
	serial := newSuffixModel()
	TrainAll(serial, seqs)

	nonSharded := newPlainModel()
	trainAllWorkers(nonSharded, seqs, 8)
	if nonSharded.NodeCount() != serial.NodeCount() {
		t.Error("non-sharded fallback diverged")
	}

	oneWorker := newSuffixModel()
	trainAllWorkers(oneWorker, seqs, 1)
	if oneWorker.NodeCount() != serial.NodeCount() {
		t.Error("single-worker fallback diverged")
	}

	small := randomSeqs(5, minParallelSeqs-1)
	smallSerial, smallPar := newSuffixModel(), newSuffixModel()
	TrainAll(smallSerial, small)
	trainAllWorkers(smallPar, small, 8)
	if smallPar.NodeCount() != smallSerial.NodeCount() {
		t.Error("small-batch fallback diverged")
	}
}

// TestTrainAllParallelSkipsEmptySequences checks empty sequences are
// ignored, matching Insert's no-op on empty input.
func TestTrainAllParallelSkipsEmptySequences(t *testing.T) {
	seqs := randomSeqs(9, 200)
	withEmpties := make([][]string, 0, len(seqs)+10)
	for i, s := range seqs {
		withEmpties = append(withEmpties, s)
		if i%20 == 0 {
			withEmpties = append(withEmpties, nil, []string{})
		}
	}
	serial := newSuffixModel()
	TrainAll(serial, seqs)
	par := newSuffixModel()
	trainAllWorkers(par, withEmpties, 4)
	if par.NodeCount() != serial.NodeCount() {
		t.Errorf("empty sequences changed the model: %d vs %d nodes", par.NodeCount(), serial.NodeCount())
	}
}
