package metrics

import (
	"fmt"
	"strings"
	"time"

	"pbppm/internal/obs"
)

// LatencyHistogram counts per-request latencies in fixed exponential
// buckets, enough for percentile reporting without storing samples.
//
// The bucket bounds and the quantile computation are shared with the
// live observability layer (obs.DefaultLatencyBounds,
// obs.QuantileOverCounts), so simulator percentiles and a running
// server's /metrics histograms are comparable bucket-for-bucket. This
// type is the simulator's single-threaded, mergeable accumulator; the
// atomic, registry-exported counterpart is obs.Histogram.
type LatencyHistogram struct {
	Buckets [14]int64 // len(obs.DefaultLatencyBounds) + 1 overflow bucket
	Total   int64
}

// Observe records one request latency.
func (h *LatencyHistogram) Observe(d time.Duration) {
	h.Buckets[obs.BucketIndex(obs.DefaultLatencyBounds, d)]++
	h.Total++
}

// Percentile returns an upper bound for the p-th percentile latency
// (p in (0,100]); zero with no observations. The estimate is the upper
// boundary of the bucket containing the percentile rank.
func (h *LatencyHistogram) Percentile(p float64) time.Duration {
	if p <= 0 {
		return 0
	}
	return obs.QuantileOverCounts(obs.DefaultLatencyBounds, h.Buckets[:], p/100)
}

// Merge adds other's counts into h.
func (h *LatencyHistogram) Merge(other LatencyHistogram) {
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Total += other.Total
}

// String renders the non-empty buckets.
func (h *LatencyHistogram) String() string {
	if h.Total == 0 {
		return "no observations"
	}
	bounds := obs.DefaultLatencyBounds
	var sb strings.Builder
	prev := int64(0)
	for i, n := range h.Buckets {
		if n == 0 {
			if i < len(bounds) {
				prev = bounds[i].Milliseconds()
			}
			continue
		}
		if i < len(bounds) {
			fmt.Fprintf(&sb, "%d-%dms: %d  ", prev, bounds[i].Milliseconds(), n)
			prev = bounds[i].Milliseconds()
		} else {
			fmt.Fprintf(&sb, ">%dms: %d  ", bounds[len(bounds)-1].Milliseconds(), n)
		}
	}
	fmt.Fprintf(&sb, "(p50 <= %v, p95 <= %v, p99 <= %v)",
		h.Percentile(50), h.Percentile(95), h.Percentile(99))
	return sb.String()
}
