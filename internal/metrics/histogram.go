package metrics

import (
	"fmt"
	"strings"
	"time"
)

// latencyBoundsMS are the upper bounds (milliseconds) of the latency
// histogram buckets; the final bucket is unbounded.
var latencyBoundsMS = []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

// LatencyHistogram counts per-request latencies in fixed exponential
// buckets, enough for percentile reporting without storing samples.
type LatencyHistogram struct {
	Buckets [14]int64 // len(latencyBoundsMS) + 1 overflow bucket
	Total   int64
}

// Observe records one request latency.
func (h *LatencyHistogram) Observe(d time.Duration) {
	ms := d.Milliseconds()
	idx := len(latencyBoundsMS)
	for i, b := range latencyBoundsMS {
		if ms <= b {
			idx = i
			break
		}
	}
	h.Buckets[idx]++
	h.Total++
}

// Percentile returns an upper bound for the p-th percentile latency
// (p in (0,100]); zero with no observations. The estimate is the upper
// boundary of the bucket containing the percentile rank.
func (h *LatencyHistogram) Percentile(p float64) time.Duration {
	if h.Total == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(p / 100 * float64(h.Total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range h.Buckets {
		seen += n
		if seen >= rank {
			if i < len(latencyBoundsMS) {
				return time.Duration(latencyBoundsMS[i]) * time.Millisecond
			}
			return time.Duration(latencyBoundsMS[len(latencyBoundsMS)-1]) * 2 * time.Millisecond
		}
	}
	return 0
}

// Merge adds other's counts into h.
func (h *LatencyHistogram) Merge(other LatencyHistogram) {
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Total += other.Total
}

// String renders the non-empty buckets.
func (h *LatencyHistogram) String() string {
	if h.Total == 0 {
		return "no observations"
	}
	var sb strings.Builder
	prev := int64(0)
	for i, n := range h.Buckets {
		if n == 0 {
			if i < len(latencyBoundsMS) {
				prev = latencyBoundsMS[i]
			}
			continue
		}
		if i < len(latencyBoundsMS) {
			fmt.Fprintf(&sb, "%d-%dms: %d  ", prev, latencyBoundsMS[i], n)
			prev = latencyBoundsMS[i]
		} else {
			fmt.Fprintf(&sb, ">%dms: %d  ", latencyBoundsMS[len(latencyBoundsMS)-1], n)
		}
	}
	fmt.Fprintf(&sb, "(p50 <= %v, p95 <= %v, p99 <= %v)",
		h.Percentile(50), h.Percentile(95), h.Percentile(99))
	return sb.String()
}
