// Package metrics defines the four performance metrics of §2.3 of the
// paper — hit ratio, latency reduction, storage space in nodes, and
// traffic increment — plus plain-text table rendering for the
// experiment reports.
package metrics

import (
	"fmt"
	"strings"
	"time"
)

// Result accumulates the outcome of one simulation run.
type Result struct {
	// Model names the prediction model ("PPM", "LRS-PPM", "PB-PPM",
	// "none" for the no-prefetch baseline).
	Model string

	// Requests is the number of demand page requests in the test phase.
	Requests int64
	// CacheHits counts demand requests served by an ordinarily cached
	// copy (browser or proxy).
	CacheHits int64
	// PrefetchHits counts demand requests served by a prefetched copy.
	PrefetchHits int64
	// PrefetchHitsPopular counts prefetch hits whose document is
	// popular (grade >= 2); Figure 2 (left) reports their share.
	PrefetchHitsPopular int64

	// BrowserHits/ProxyCacheHits/ProxyPrefetchHits break down the hit
	// sources for the proxy experiment (§5: "three sources").
	BrowserHits       int64
	ProxyCacheHits    int64
	ProxyPrefetchHits int64

	// UsefulBytes counts transferred bytes that served demand (miss
	// fetches plus prefetched bytes that were later used).
	UsefulBytes int64
	// TransferredBytes counts all bytes moved over the network,
	// including prefetches that were never used.
	TransferredBytes int64
	// PrefetchedBytes counts bytes moved by prefetching only.
	PrefetchedBytes int64
	// PrefetchedDocs counts documents pushed by prefetching.
	PrefetchedDocs int64

	// TotalLatency is the summed modeled access latency of all demand
	// requests.
	TotalLatency time.Duration
	// Latencies is the per-request latency histogram, for percentile
	// reporting.
	Latencies LatencyHistogram

	// Nodes is the model's storage requirement; Utilization the
	// fraction of stored paths used by predictions.
	Nodes       int
	Utilization float64
}

// Hits returns all demand hits (cache plus prefetch).
func (r Result) Hits() int64 { return r.CacheHits + r.PrefetchHits }

// HitRatio is hits over demand requests (§2.3).
func (r Result) HitRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Hits()) / float64(r.Requests)
}

// TrafficIncrease is transferred bytes over useful bytes, minus one
// (§2.3). A run with no waste reports zero.
func (r Result) TrafficIncrease() float64 {
	if r.UsefulBytes == 0 {
		return 0
	}
	return float64(r.TransferredBytes)/float64(r.UsefulBytes) - 1
}

// PopularShareOfPrefetchHits is the fraction of prefetch hits that were
// popular documents (Figure 2, left).
func (r Result) PopularShareOfPrefetchHits() float64 {
	if r.PrefetchHits == 0 {
		return 0
	}
	return float64(r.PrefetchHitsPopular) / float64(r.PrefetchHits)
}

// PrefetchPrecision is the fraction of prefetched documents that later
// served a demand request — the accuracy of the pushes themselves.
func (r Result) PrefetchPrecision() float64 {
	if r.PrefetchedDocs == 0 {
		return 0
	}
	return float64(r.PrefetchHits) / float64(r.PrefetchedDocs)
}

// MeanLatency is the average modeled latency per demand request.
func (r Result) MeanLatency() time.Duration {
	if r.Requests == 0 {
		return 0
	}
	return r.TotalLatency / time.Duration(r.Requests)
}

// LatencyReductionVs compares this run against a baseline run (same
// workload, no prefetching) and returns the relative latency reduction
// (§2.3): (baseline - this) / baseline.
func (r Result) LatencyReductionVs(baseline Result) float64 {
	if baseline.TotalLatency <= 0 {
		return 0
	}
	red := float64(baseline.TotalLatency-r.TotalLatency) / float64(baseline.TotalLatency)
	return red
}

// Table renders rows of labeled values as a fixed-width text table.
// Columns are sized to their widest cell; the first column is
// left-aligned, the rest right-aligned.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&sb, "%*s", widths[i], c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Pct formats a ratio as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// F3 formats a float with three decimals.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }
