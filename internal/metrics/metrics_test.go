package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHitRatio(t *testing.T) {
	r := Result{Requests: 100, CacheHits: 30, PrefetchHits: 20}
	if got := r.Hits(); got != 50 {
		t.Errorf("Hits = %d", got)
	}
	if got := r.HitRatio(); got != 0.5 {
		t.Errorf("HitRatio = %v", got)
	}
	if got := (Result{}).HitRatio(); got != 0 {
		t.Errorf("empty HitRatio = %v", got)
	}
}

func TestTrafficIncrease(t *testing.T) {
	r := Result{UsefulBytes: 1000, TransferredBytes: 1140}
	if got := r.TrafficIncrease(); got < 0.139 || got > 0.141 {
		t.Errorf("TrafficIncrease = %v, want 0.14", got)
	}
	if got := (Result{}).TrafficIncrease(); got != 0 {
		t.Errorf("empty TrafficIncrease = %v", got)
	}
	noWaste := Result{UsefulBytes: 500, TransferredBytes: 500}
	if got := noWaste.TrafficIncrease(); got != 0 {
		t.Errorf("no-waste TrafficIncrease = %v", got)
	}
}

func TestPopularShare(t *testing.T) {
	r := Result{PrefetchHits: 10, PrefetchHitsPopular: 7}
	if got := r.PopularShareOfPrefetchHits(); got != 0.7 {
		t.Errorf("PopularShare = %v", got)
	}
	if got := (Result{}).PopularShareOfPrefetchHits(); got != 0 {
		t.Errorf("empty PopularShare = %v", got)
	}
}

func TestLatency(t *testing.T) {
	r := Result{Requests: 4, TotalLatency: 2 * time.Second}
	if got := r.MeanLatency(); got != 500*time.Millisecond {
		t.Errorf("MeanLatency = %v", got)
	}
	base := Result{Requests: 4, TotalLatency: 4 * time.Second}
	if got := r.LatencyReductionVs(base); got != 0.5 {
		t.Errorf("LatencyReductionVs = %v", got)
	}
	if got := r.LatencyReductionVs(Result{}); got != 0 {
		t.Errorf("reduction vs empty baseline = %v", got)
	}
	// A run slower than baseline yields a negative reduction.
	slow := Result{Requests: 4, TotalLatency: 5 * time.Second}
	if got := slow.LatencyReductionVs(base); got >= 0 {
		t.Errorf("slower run reduction = %v, want negative", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "Demo",
		Headers: []string{"model", "hit ratio", "nodes"},
	}
	tb.AddRow("PB-PPM", "61.0%", "5527")
	tb.AddRow("LRS-PPM", "41.5%", "9715")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "PB-PPM") || !strings.Contains(out, "9715") {
		t.Errorf("cells missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Right-aligned numeric column: both rows end at the same offset.
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.615); got != "61.5%" {
		t.Errorf("Pct = %q", got)
	}
	if got := F3(0.12345); got != "0.123" {
		t.Errorf("F3 = %q", got)
	}
}

func TestLatencyHistogram(t *testing.T) {
	var h LatencyHistogram
	if h.Percentile(50) != 0 || h.String() != "no observations" {
		t.Error("empty histogram misbehaves")
	}
	// 90 fast requests, 10 slow.
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(800 * time.Millisecond)
	}
	if h.Total != 100 {
		t.Fatalf("Total = %d", h.Total)
	}
	if got := h.Percentile(50); got != 5*time.Millisecond {
		t.Errorf("p50 = %v, want 5ms bucket bound", got)
	}
	if got := h.Percentile(95); got != time.Second {
		t.Errorf("p95 = %v, want 1s bucket bound", got)
	}
	if got := h.Percentile(200); got != time.Second {
		t.Errorf("p>100 clamp = %v", got)
	}
	// Overflow bucket.
	h.Observe(time.Minute)
	if got := h.Percentile(100); got != 20*time.Second {
		t.Errorf("overflow percentile = %v", got)
	}
	out := h.String()
	if !strings.Contains(out, "p95") || !strings.Contains(out, "2-5ms: 90") {
		t.Errorf("String = %q", out)
	}
	var other LatencyHistogram
	other.Observe(3 * time.Millisecond)
	h.Merge(other)
	if h.Total != 102 {
		t.Errorf("merged total = %d", h.Total)
	}
}

func TestPrefetchPrecision(t *testing.T) {
	r := Result{PrefetchedDocs: 10, PrefetchHits: 4}
	if got := r.PrefetchPrecision(); got != 0.4 {
		t.Errorf("precision = %v", got)
	}
	if got := (Result{}).PrefetchPrecision(); got != 0 {
		t.Errorf("empty precision = %v", got)
	}
}
