package modeltest

import (
	"testing"

	"pbppm/internal/core"
	"pbppm/internal/lrs"
	"pbppm/internal/markov"
	"pbppm/internal/popularity"
	"pbppm/internal/ppm"
	"pbppm/internal/topn"
)

// grades matches the conformance training set's popularity structure.
var grades = popularity.FixedGrades{
	"/hub": 3, "/mid": 2, "/leaf": 1, "/alt": 1, "/rare": 0,
}

func TestStandardPPMConformance(t *testing.T) {
	Run(t, "PPM", func() markov.Predictor {
		return ppm.New(ppm.Config{})
	}, Options{})
}

func TestFixedHeightPPMConformance(t *testing.T) {
	Run(t, "3-PPM", func() markov.Predictor {
		return ppm.New(ppm.Config{Height: 3})
	}, Options{})
}

func TestBlendedPPMConformance(t *testing.T) {
	Run(t, "blended-PPM", func() markov.Predictor {
		return ppm.New(ppm.Config{BlendOrders: true})
	}, Options{})
}

func TestLRSConformance(t *testing.T) {
	Run(t, "LRS", func() markov.Predictor {
		return lrs.New(lrs.Config{})
	}, Options{})
}

func TestPBPPMConformance(t *testing.T) {
	Run(t, "PB-PPM", func() markov.Predictor {
		return core.New(grades, core.Config{})
	}, Options{})
}

func TestPBPPMOptimizedConformance(t *testing.T) {
	// The space-optimized variant must satisfy the same contract; the
	// optimization runs inside the factory-built model lazily via the
	// suite's trained() helper only after training, so apply it in a
	// wrapper that optimizes on every NodeCount-visible boundary is
	// overkill — conformance on the unoptimized model plus the
	// dedicated Optimize tests in internal/core cover the space.
	Run(t, "PB-PPM-relprob", func() markov.Predictor {
		return core.New(grades, core.Config{RelProbCutoff: 0.01})
	}, Options{})
}

func TestTopNConformance(t *testing.T) {
	Run(t, "Top-10", func() markov.Predictor {
		return topn.New(topn.Config{})
	}, Options{ContextFree: true})
}
