// Package modeltest provides a reusable conformance suite for
// markov.Predictor implementations. Every prediction model in this
// repository — and any model a downstream user adds — must satisfy the
// same behavioral contract before the simulator and the HTTP server
// can drive it; Run checks that contract.
package modeltest

import (
	"math/rand"
	"reflect"
	"testing"

	"pbppm/internal/markov"
)

// Factory builds a fresh, empty model under test.
type Factory func() markov.Predictor

// Options tune the suite for models with unusual shapes.
type Options struct {
	// ContextFree marks models (like Top-N) whose predictions do not
	// depend on learned sequence structure; sequence-specific checks
	// are skipped for them.
	ContextFree bool
}

// Run executes the conformance suite against fresh models from the
// factory.
func Run(t *testing.T, name string, factory Factory, opt Options) {
	t.Helper()

	t.Run(name+"/empty-model", func(t *testing.T) {
		m := factory()
		if m.Name() == "" {
			t.Error("empty Name")
		}
		if got := m.NodeCount(); got != 0 {
			t.Errorf("fresh model NodeCount = %d", got)
		}
		if got := m.Predict([]string{"/never-seen"}); len(got) != 0 {
			t.Errorf("fresh model predicted %+v", got)
		}
		if got := m.Predict(nil); len(got) != 0 {
			t.Errorf("fresh model predicted on empty context: %+v", got)
		}
	})

	t.Run(name+"/probabilities-in-range", func(t *testing.T) {
		m := trained(factory)
		for _, ctx := range contexts() {
			for _, p := range m.Predict(ctx) {
				if p.Probability <= 0 || p.Probability > 1 {
					t.Fatalf("ctx %v: probability %v out of (0,1]", ctx, p.Probability)
				}
				if p.URL == "" {
					t.Fatalf("ctx %v: empty predicted URL", ctx)
				}
			}
		}
	})

	t.Run(name+"/no-duplicate-candidates", func(t *testing.T) {
		m := trained(factory)
		for _, ctx := range contexts() {
			seen := map[string]bool{}
			for _, p := range m.Predict(ctx) {
				if seen[p.URL] {
					t.Fatalf("ctx %v: %s predicted twice", ctx, p.URL)
				}
				seen[p.URL] = true
			}
		}
	})

	t.Run(name+"/vocabulary-closed", func(t *testing.T) {
		m := trained(factory)
		vocab := map[string]bool{}
		for _, s := range trainingSet() {
			for _, u := range s {
				vocab[u] = true
			}
		}
		for _, ctx := range contexts() {
			for _, p := range m.Predict(ctx) {
				if !vocab[p.URL] {
					t.Fatalf("ctx %v: predicted %s outside the training vocabulary", ctx, p.URL)
				}
			}
		}
	})

	t.Run(name+"/deterministic", func(t *testing.T) {
		a, b := trained(factory), trained(factory)
		if a.NodeCount() != b.NodeCount() {
			t.Fatalf("node counts differ: %d vs %d", a.NodeCount(), b.NodeCount())
		}
		for _, ctx := range contexts() {
			if !reflect.DeepEqual(a.Predict(ctx), b.Predict(ctx)) {
				t.Fatalf("ctx %v: identical training, different predictions", ctx)
			}
		}
	})

	t.Run(name+"/predict-does-not-mutate", func(t *testing.T) {
		m := trained(factory)
		before := m.NodeCount()
		for i := 0; i < 50; i++ {
			for _, ctx := range contexts() {
				m.Predict(ctx)
			}
		}
		if got := m.NodeCount(); got != before {
			t.Fatalf("prediction changed NodeCount: %d -> %d", before, got)
		}
	})

	t.Run(name+"/training-grows-monotonically", func(t *testing.T) {
		m := factory()
		prev := 0
		for _, s := range trainingSet() {
			m.TrainSequence(s)
			if got := m.NodeCount(); got < prev {
				t.Fatalf("NodeCount shrank during training: %d -> %d", prev, got)
			} else {
				prev = got
			}
		}
	})

	if !opt.ContextFree {
		t.Run(name+"/learns-hot-path", func(t *testing.T) {
			m := trained(factory)
			ps := m.Predict([]string{"/hub", "/mid"})
			found := false
			for _, p := range ps {
				if p.URL == "/leaf" {
					found = true
				}
			}
			if !found {
				t.Fatalf("model did not learn the dominant continuation: %+v", ps)
			}
		})
	}

	t.Run(name+"/random-contexts-never-panic", func(t *testing.T) {
		m := trained(factory)
		rng := rand.New(rand.NewSource(99))
		urls := []string{"/hub", "/mid", "/leaf", "/alt", "/rare", "/bogus", ""}
		for i := 0; i < 500; i++ {
			n := rng.Intn(6)
			ctx := make([]string, n)
			for j := range ctx {
				ctx[j] = urls[rng.Intn(len(urls))]
			}
			m.Predict(ctx) // must not panic, whatever the context
		}
	})
}

// trainingSet is a deterministic session batch with one dominant path
// (hub -> mid -> leaf) plus variations.
func trainingSet() [][]string {
	var out [][]string
	for i := 0; i < 8; i++ {
		out = append(out, []string{"/hub", "/mid", "/leaf"})
	}
	out = append(out,
		[]string{"/hub", "/mid", "/alt"},
		[]string{"/hub", "/alt"},
		[]string{"/alt", "/rare"},
		[]string{"/rare"},
	)
	return out
}

func trained(factory Factory) markov.Predictor {
	m := factory()
	for _, s := range trainingSet() {
		m.TrainSequence(s)
	}
	return m
}

// contexts are the lookup shapes the suite probes.
func contexts() [][]string {
	return [][]string{
		{"/hub"},
		{"/hub", "/mid"},
		{"/mid"},
		{"/unseen", "/hub", "/mid"},
		{"/alt"},
		{"/rare"},
		{"/unseen"},
	}
}
