package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// NewAdminMux returns the admin-side mux the binaries serve on a
// separate listener (-admin-addr), away from end-user traffic:
//
//	/metrics      Prometheus text exposition of reg
//	/healthz      200 "ok", or 503 with the error when healthz fails
//	/debug/pprof  the standard net/http/pprof handlers
//
// healthz may be nil for an unconditionally healthy process. Callers
// add their own extra endpoints (e.g. /debug/stats) on the returned
// mux.
//
// Building the mux also registers the process-wide telemetry every
// admin endpoint should carry: pbppm_build_info (build identity) and
// the pbppm_go_* runtime collector (goroutines, heap, GC pauses,
// scheduler latency). Both registrations are idempotent.
func NewAdminMux(reg *Registry, healthz func() error) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		RegisterBuildInfo(reg)
		RegisterRuntimeMetrics(reg)
		mux.Handle("/metrics", reg.Handler())
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthz != nil {
			if err := healthz(); err != nil {
				http.Error(w, fmt.Sprintf("unhealthy: %v", err), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
