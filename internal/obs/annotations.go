package obs

import (
	"sync"
	"time"
)

// Annotation is one timeline marker — a model publish, a config
// change — that dashboards and /debug/slo overlay on the quality
// time series so dips are attributable to events.
type Annotation struct {
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail,omitempty"`
}

// annotationRingCap bounds the annotation ring; newest markers win.
const annotationRingCap = 64

// Annotations is a bounded ring of timeline markers, safe for
// concurrent use. The zero value is not usable; call NewAnnotations.
type Annotations struct {
	clock func() time.Time

	mu     sync.Mutex
	ring   [annotationRingCap]Annotation
	next   int
	filled int
}

// NewAnnotations returns an empty annotation ring.
func NewAnnotations() *Annotations {
	return &Annotations{clock: time.Now}
}

// SetClock injects a fake clock for tests.
func (a *Annotations) SetClock(clock func() time.Time) { a.clock = clock }

// Add records one marker now. Safe on a nil ring (a no-op), so
// producers need no "is annotation wiring on?" branches.
func (a *Annotations) Add(kind, detail string) {
	if a == nil {
		return
	}
	ann := Annotation{Time: a.clock(), Kind: kind, Detail: detail}
	a.mu.Lock()
	a.ring[a.next] = ann
	a.next = (a.next + 1) % annotationRingCap
	if a.filled < annotationRingCap {
		a.filled++
	}
	a.mu.Unlock()
}

// Recent returns the recorded markers, newest first.
func (a *Annotations) Recent() []Annotation {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Annotation, 0, a.filled)
	for i := 0; i < a.filled; i++ {
		out = append(out, a.ring[(a.next-1-i+2*annotationRingCap)%annotationRingCap])
	}
	return out
}
