package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format v0.0.4: one HELP and one TYPE line per family
// followed by its samples, families sorted by name, label values
// escaped per the format (backslash, double quote, newline). It may
// run concurrently with metric updates; histogram families are
// rendered so that the +Inf bucket and _count agree even mid-update.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, e := range f.entries {
			switch m := e.metric.(type) {
			case *Counter:
				writeSample(bw, f.name, e.labels, "", strconv.FormatInt(m.Value(), 10))
			case *Gauge:
				writeSample(bw, f.name, e.labels, "", strconv.FormatInt(m.Value(), 10))
			case *FloatGauge:
				writeSample(bw, f.name, e.labels, "", formatSeconds(m.Value()))
			case *funcMetric:
				writeSample(bw, f.name, e.labels, "", formatSeconds(m.fn()))
			case *Histogram:
				writeHistogram(bw, f.name, e.labels, m)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram member: cumulative _bucket
// samples with le labels in seconds, then _sum and _count. Bucket
// counters are read once so the cumulative +Inf bucket and _count are
// computed from the same reads and always agree.
func writeHistogram(bw *bufio.Writer, name string, labels []Label, h *Histogram) {
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatSeconds(h.bounds[i].Seconds())
		}
		writeSample(bw, name+"_bucket", labels, le, strconv.FormatInt(cum, 10))
	}
	writeSample(bw, name+"_sum", labels, "", formatSeconds(h.Sum().Seconds()))
	writeSample(bw, name+"_count", labels, "", strconv.FormatInt(cum, 10))
}

// writeSample renders one sample line; le, when non-empty, is appended
// as the trailing le label of a histogram bucket.
func writeSample(bw *bufio.Writer, name string, labels []Label, le, value string) {
	bw.WriteString(name)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// formatSeconds renders a float with the shortest representation that
// round-trips, the conventional form for le bounds and sums.
func formatSeconds(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline, per the format's HELP rule.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, double quote, and newline, per the
// format's label-value rule.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the exposition, the /metrics
// endpoint of the admin mux.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client disconnects are not server errors
	})
}
