package obs

import (
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// goldenRegistry builds the registry behind testdata/exposition.golden.
// Observations are chosen to be exact binary fractions so the rendered
// _sum is byte-stable.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	demand := reg.Counter("app_requests_total", "Requests served.", Label{Name: "kind", Value: "demand"})
	prefetch := reg.Counter("app_requests_total", "Requests served.", Label{Name: "kind", Value: "prefetch"})
	nodes := reg.Gauge("app_model_nodes", "Model nodes.")
	lat := reg.Histogram("app_latency_seconds", "Latency.",
		[]time.Duration{time.Second / 4, time.Second})
	weird := reg.Counter("app_weird_total", "Help with \\ backslash\nand newline.",
		Label{Name: "path", Value: "a\"b\\c\nd"})

	demand.Add(3)
	prefetch.Inc()
	nodes.Set(42)
	lat.Observe(125 * time.Millisecond)
	lat.Observe(500 * time.Millisecond)
	lat.Observe(2 * time.Second)
	weird.Inc()
	return reg
}

// TestWritePrometheusGolden compares the full exposition byte-for-byte
// against the checked-in golden file, line by line for a readable diff.
func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := sb.String()
	want, err := os.ReadFile("testdata/exposition.golden")
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("line %d:\n  got  %q\n  want %q", i+1, g, w)
		}
	}
}

// TestExpositionValidates runs the format validator over the golden
// registry: HELP before TYPE before samples, escaped labels parse back,
// and histogram _bucket/_sum/_count invariants hold.
func TestExpositionValidates(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := ValidateExposition(sb.String()); err != nil {
		t.Fatalf("ValidateExposition: %v\nexposition:\n%s", err, sb.String())
	}
}

// TestValidateExpositionRejectsMalformed spot-checks that the validator
// actually rejects broken expositions, so the positive tests mean
// something.
func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without HELP/TYPE": "lonely_total 3\n",
		"TYPE before HELP":         "# TYPE x counter\n# HELP x h\nx 1\n",
		"count mismatch": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"non-cumulative buckets": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing sum": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"interleaved families": "# HELP a x\n# TYPE a counter\n" +
			"# HELP b y\n# TYPE b counter\na 1\n",
	}
	for name, text := range cases {
		if err := ValidateExposition(text); err == nil {
			t.Errorf("%s: validator accepted malformed exposition", name)
		}
	}
}

// TestRenderDuringUpdates hammers counters, gauges, and histograms from
// many goroutines while rendering concurrently; run with -race. Every
// render must stay valid (in particular the histogram +Inf/_count
// agreement) even mid-update.
func TestRenderDuringUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("stress_total", "Stress counter.")
	g := reg.Gauge("stress_gauge", "Stress gauge.")
	h := reg.Histogram("stress_seconds", "Stress histogram.", nil,
		Label{Name: "kind", Value: "demand"})

	const writers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(n))
				h.Observe(time.Duration(n%2000) * time.Millisecond)
			}
		}(i)
	}
	for r := 0; r < 50; r++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatalf("render %d: %v", r, err)
		}
		if err := ValidateExposition(sb.String()); err != nil {
			t.Fatalf("render %d invalid under concurrent updates: %v", r, err)
		}
	}
	close(stop)
	wg.Wait()
}
