package obs

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds are the shared upper bounds of the latency
// histogram buckets, 1ms to 10s in a rough 1-2-5 progression; the final
// bucket is unbounded. internal/metrics.LatencyHistogram (the
// simulator's single-threaded accumulator) uses the same table so
// offline percentiles and live /metrics quantiles are comparable
// bucket-for-bucket.
var DefaultLatencyBounds = []time.Duration{
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

// BucketIndex returns the index of the bucket a duration falls into:
// the first bound >= d, or len(bounds) for the overflow bucket.
func BucketIndex(bounds []time.Duration, d time.Duration) int {
	for i, b := range bounds {
		if d <= b {
			return i
		}
	}
	return len(bounds)
}

// QuantileOverCounts returns an upper bound for the q-quantile
// (q in [0,1]) of a distribution given per-bucket counts: counts must
// have len(bounds)+1 entries, the last being the overflow bucket. It
// returns zero with no observations; q at or below 0 selects the first
// non-empty bucket (a lower bound for the minimum) and q at or above 1
// the last. Overflow-bucket quantiles report twice the final bound,
// the conventional "beyond the histogram" estimate.
//
// This is the single quantile implementation shared by Histogram and
// internal/metrics.LatencyHistogram.
func QuantileOverCounts(bounds []time.Duration, counts []int64, q float64) time.Duration {
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range counts {
		seen += n
		if seen >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			return 2 * bounds[len(bounds)-1]
		}
	}
	return 0
}

// Histogram counts durations in fixed buckets with atomic operations
// only: Observe is one linear scan over the bounds plus two atomic
// adds, safe for unsynchronized concurrent use. It renders as a
// Prometheus histogram family (_bucket/_sum/_count) with bounds
// expressed in seconds.
type Histogram struct {
	bounds   []time.Duration // immutable after NewHistogram
	buckets  []atomic.Int64  // len(bounds)+1, last is overflow
	sumNanos atomic.Int64
}

// NewHistogram returns a histogram over bounds, which must be sorted
// ascending; nil selects DefaultLatencyBounds. Registered histograms
// come from Registry.Histogram; NewHistogram is for unregistered use.
func NewHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not sorted ascending")
		}
	}
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[BucketIndex(h.bounds, d)].Add(1)
	h.sumNanos.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNanos.Load()) }

// Quantile returns an upper bound for the q-quantile (q in [0,1]); see
// QuantileOverCounts for the edge-case contract.
func (h *Histogram) Quantile(q float64) time.Duration {
	counts := make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return QuantileOverCounts(h.bounds, counts, q)
}

// HistogramSnapshot is an immutable copy of a histogram's state at one
// instant. Snapshots subtract (Sub), so a cumulative histogram yields
// slot-aligned views: snapshot at every slot boundary, diff against the
// previous boundary, and read the slot's own quantiles — the per-slot
// p50/p99/p999 reporting an RPS sweep needs, without resetting the
// histogram under concurrent writers.
type HistogramSnapshot struct {
	// Bounds aliases the histogram's immutable bucket bounds.
	Bounds []time.Duration
	// Counts has len(Bounds)+1 entries, the last being overflow.
	Counts []int64
	// SumNanos is the summed observed duration in nanoseconds.
	SumNanos int64
}

// Snapshot copies the histogram's current counts. Concurrent Observe
// calls may land between bucket reads; each observation is still seen
// exactly once across consecutive snapshots, which is what slot diffs
// need.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.SumNanos = h.sumNanos.Load()
	return s
}

// Sub returns the observations recorded between prev and s (s must be
// the later snapshot of the same histogram; a nil-bounds prev acts as
// an empty baseline, so the first slot diffs against zero).
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds:   s.Bounds,
		Counts:   make([]int64, len(s.Counts)),
		SumNanos: s.SumNanos - prev.SumNanos,
	}
	copy(out.Counts, s.Counts)
	for i := range prev.Counts {
		if i < len(out.Counts) {
			out.Counts[i] -= prev.Counts[i]
		}
	}
	return out
}

// Count returns the number of observations in the snapshot.
func (s HistogramSnapshot) Count() int64 {
	var total int64
	for _, n := range s.Counts {
		total += n
	}
	return total
}

// Mean returns the mean observed duration, zero with no observations.
func (s HistogramSnapshot) Mean() time.Duration {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / n)
}

// Quantile returns an upper bound for the q-quantile of the snapshot's
// observations; see QuantileOverCounts for the edge cases.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	return QuantileOverCounts(s.Bounds, s.Counts, q)
}
