package obs

import (
	"testing"
	"time"
)

func TestBucketIndex(t *testing.T) {
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond}
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Millisecond, 0},
		{time.Millisecond + 1, 1},
		{10 * time.Millisecond, 1},
		{time.Second, 2},
	}
	for _, c := range cases {
		if got := BucketIndex(bounds, c.d); got != c.want {
			t.Errorf("BucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestQuantileEdgeCases pins the Quantile contract at its edges: empty
// histogram, single observation, and q=0 / q=1.
func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %v, want 0", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("empty Quantile(0) = %v, want 0", got)
	}
	if got := h.Quantile(1); got != 0 {
		t.Errorf("empty Quantile(1) = %v, want 0", got)
	}

	// A single observation answers every quantile with its bucket bound.
	h.Observe(3 * time.Millisecond) // falls in the 5ms bucket
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 5*time.Millisecond {
			t.Errorf("single-observation Quantile(%v) = %v, want 5ms", q, got)
		}
	}

	// With a spread, q=0 is the first non-empty bucket and q=1 the last.
	h.Observe(400 * time.Millisecond)
	if got := h.Quantile(0); got != 5*time.Millisecond {
		t.Errorf("Quantile(0) = %v, want 5ms", got)
	}
	if got := h.Quantile(1); got != 500*time.Millisecond {
		t.Errorf("Quantile(1) = %v, want 500ms", got)
	}

	// Overflow observations report twice the final bound.
	h.Observe(time.Minute)
	if got := h.Quantile(1); got != 20*time.Second {
		t.Errorf("overflow Quantile(1) = %v, want 20s", got)
	}
}

func TestHistogramCountSum(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Second})
	h.Observe(250 * time.Millisecond)
	h.Observe(2 * time.Second)
	if got := h.Count(); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	if got := h.Sum(); got != 2250*time.Millisecond {
		t.Errorf("Sum = %v, want 2.25s", got)
	}
}

func TestQuantileOverCountsEmptyAndZeroCounts(t *testing.T) {
	bounds := []time.Duration{time.Millisecond}
	if got := QuantileOverCounts(bounds, []int64{0, 0}, 0.99); got != 0 {
		t.Errorf("all-zero counts Quantile = %v, want 0", got)
	}
}

func TestNewHistogramPanicsOnUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unsorted bounds")
		}
	}()
	NewHistogram([]time.Duration{time.Second, time.Millisecond})
}

// TestHistogramSnapshotSlotDiffs exercises the slot-aligned snapshot
// path an RPS sweep uses: one cumulative histogram, a snapshot at each
// slot boundary, and per-slot quantiles from the diffs.
func TestHistogramSnapshotSlotDiffs(t *testing.T) {
	h := NewHistogram(nil)

	// Slot 1: fast traffic.
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	s1 := h.Snapshot()
	slot1 := s1.Sub(HistogramSnapshot{})
	if got := slot1.Count(); got != 100 {
		t.Fatalf("slot 1 count = %d, want 100", got)
	}
	if got := slot1.Quantile(0.99); got != 2*time.Millisecond {
		t.Fatalf("slot 1 p99 = %v, want 2ms", got)
	}
	if got := slot1.Mean(); got != 2*time.Millisecond {
		t.Fatalf("slot 1 mean = %v, want 2ms", got)
	}

	// Slot 2: slow traffic. The diff must see only the new observations,
	// not the cumulative mixture.
	for i := 0; i < 50; i++ {
		h.Observe(time.Second)
	}
	s2 := h.Snapshot()
	slot2 := s2.Sub(s1)
	if got := slot2.Count(); got != 50 {
		t.Fatalf("slot 2 count = %d, want 50", got)
	}
	if got := slot2.Quantile(0.5); got != time.Second {
		t.Fatalf("slot 2 p50 = %v, want 1s (cumulative leaked into the diff)", got)
	}
	if got := s2.Sub(HistogramSnapshot{}).Count(); got != 150 {
		t.Fatalf("cumulative count = %d, want 150", got)
	}

	// An empty slot quantile is 0, not the previous slot's value.
	s3 := h.Snapshot()
	if got := s3.Sub(s2).Quantile(0.99); got != 0 {
		t.Fatalf("empty slot p99 = %v, want 0", got)
	}
}
