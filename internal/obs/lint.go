package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// ValidateExposition checks text against the Prometheus text exposition
// format v0.0.4 rules the renderer promises: every family is a
// contiguous block of "# HELP", then "# TYPE", then samples; sample
// names match the family (histograms only via _bucket/_sum/_count);
// label values are well-formed; and every histogram member has
// non-decreasing cumulative buckets ending in a +Inf bucket equal to
// its _count. It returns nil for valid text. Tests use it to verify
// /metrics endpoints end to end.
func ValidateExposition(text string) error {
	type famState struct {
		kind     string
		sawType  bool
		closed   bool
		hist     map[string][]float64 // label-sig → cumulative bucket values
		histInf  map[string]float64
		histCnt  map[string]float64
		histSum  map[string]bool
		histSeen map[string]bool
	}
	fams := make(map[string]*famState)
	var open string // family currently being emitted

	finish := func(name string) error {
		f := fams[name]
		if f == nil || f.kind != "histogram" {
			return nil
		}
		for sig := range f.histSeen {
			inf, ok := f.histInf[sig]
			if !ok {
				return fmt.Errorf("histogram %s{%s}: missing +Inf bucket", name, sig)
			}
			cnt, ok := f.histCnt[sig]
			if !ok {
				return fmt.Errorf("histogram %s{%s}: missing _count", name, sig)
			}
			if inf != cnt {
				return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != _count %v", name, sig, inf, cnt)
			}
			if !f.histSum[sig] {
				return fmt.Errorf("histogram %s{%s}: missing _sum", name, sig)
			}
			prev := -1.0
			for i, v := range f.hist[sig] {
				if v < prev {
					return fmt.Errorf("histogram %s{%s}: bucket %d not cumulative (%v < %v)", name, sig, i, v, prev)
				}
				prev = v
			}
		}
		return nil
	}

	lines := strings.Split(text, "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if err := checkMetricName(name); err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			switch fields[1] {
			case "HELP":
				if f := fams[name]; f != nil {
					return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				if open != "" && open != name {
					if err := finish(open); err != nil {
						return err
					}
					fams[open].closed = true
				}
				fams[name] = &famState{
					hist:     map[string][]float64{},
					histInf:  map[string]float64{},
					histCnt:  map[string]float64{},
					histSum:  map[string]bool{},
					histSeen: map[string]bool{},
				}
				open = name
			case "TYPE":
				f := fams[name]
				if f == nil || open != name {
					return fmt.Errorf("line %d: TYPE for %s without preceding HELP", lineNo, name)
				}
				if f.sawType {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				if err := checkNamingConvention(name, fields[3]); err != nil {
					return fmt.Errorf("line %d: %v", lineNo, err)
				}
				f.kind = fields[3]
				f.sawType = true
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, s)
			if base != name {
				if f := fams[base]; f != nil && f.kind == "histogram" {
					fam, suffix = base, s
				}
				break
			}
		}
		f := fams[fam]
		if f == nil || !f.sawType {
			return fmt.Errorf("line %d: sample %s without preceding HELP/TYPE", lineNo, name)
		}
		if f.closed || open != fam {
			return fmt.Errorf("line %d: sample %s outside its family block", lineNo, name)
		}
		if f.kind == "histogram" && suffix == "" {
			return fmt.Errorf("line %d: bare sample %s in histogram family", lineNo, name)
		}
		if f.kind != "histogram" {
			continue
		}
		le := ""
		var rest []Label
		for _, l := range labels {
			if l.Name == "le" {
				le = l.Value
			} else {
				rest = append(rest, l)
			}
		}
		sig := labelSig(rest)
		f.histSeen[sig] = true
		switch suffix {
		case "_bucket":
			if le == "" {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			if le == "+Inf" {
				f.histInf[sig] = value
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				return fmt.Errorf("line %d: bad le %q: %v", lineNo, le, err)
			}
			f.hist[sig] = append(f.hist[sig], value)
		case "_sum":
			f.histSum[sig] = true
		case "_count":
			f.histCnt[sig] = value
		}
	}
	if open != "" {
		if err := finish(open); err != nil {
			return err
		}
	}
	return nil
}

// reservedSuffixes are sample-name suffixes the exposition format
// generates for histogram (and summary) families; a gauge or histogram
// family name carrying one would collide with those samples.
var reservedSuffixes = []string{"_total", "_sum", "_count", "_bucket"}

// checkNamingConvention enforces the Prometheus naming conventions the
// repo's metrics promise: counter family names end in _total, and
// gauge/histogram family names carry no reserved suffix (_total, _sum,
// _count, _bucket).
func checkNamingConvention(name, kind string) error {
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("counter %s does not end in _total", name)
		}
	case "gauge", "histogram":
		for _, s := range reservedSuffixes {
			if strings.HasSuffix(name, s) {
				return fmt.Errorf("%s %s ends in reserved suffix %s", kind, name, s)
			}
		}
	}
	return nil
}

// parseSample splits one sample line into name, labels, and value.
func parseSample(line string) (string, []Label, float64, error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name string
	var labels []Label
	if brace >= 0 {
		name = rest[:brace]
		rest = rest[brace+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
			}
			lname := rest[:eq]
			rest = rest[eq+2:]
			// Scan to the closing unescaped quote.
			var val strings.Builder
			i := 0
			for ; i < len(rest); i++ {
				if rest[i] == '\\' && i+1 < len(rest) {
					val.WriteByte(rest[i+1])
					i++
					continue
				}
				if rest[i] == '"' {
					break
				}
				val.WriteByte(rest[i])
			}
			if i >= len(rest) {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			labels = append(labels, Label{Name: lname, Value: val.String()})
			rest = rest[i+1:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return "", nil, 0, fmt.Errorf("malformed label separator in %q", line)
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("missing value in %q", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if err := checkMetricName(name); err != nil {
		return "", nil, 0, err
	}
	rest = strings.TrimPrefix(rest, " ")
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return name, labels, v, nil
}
