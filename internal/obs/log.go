package obs

import (
	"io"
	"log/slog"
)

// NewLogger returns a text-format slog.Logger writing to w at the
// given level — the shared logger the binaries hand to each runtime
// component.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// Component returns a child logger tagged with the component name
// ("server", "maintain", "proxy", ...), so one shared logger yields
// attributable lines from every layer. A nil parent returns a discard
// logger, letting libraries log unconditionally.
func Component(l *slog.Logger, name string) *slog.Logger {
	if l == nil {
		return Discard()
	}
	return l.With("component", name)
}

// Discard returns a logger that drops everything, the nil-safe default
// for library components constructed without a logger.
func Discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}
