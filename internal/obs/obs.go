// Package obs is the repo's zero-dependency observability layer: a
// small metrics registry (counters, gauges, and fixed-bucket duration
// histograms, all with atomic hot paths) that renders the Prometheus
// text exposition format, structured logging helpers over log/slog, a
// sampled predict-path tracer, and an admin HTTP mux serving /metrics,
// /healthz, and net/http/pprof.
//
// The paper's whole argument rests on measured quantities — hit ratio,
// traffic increase, latency reduction, and model storage cost — and
// this package is their live counterpart: the server exports request
// latencies and hint precision counters, the maintenance loop exports
// rebuild durations and model-size gauges (the runtime analogue of
// Figure 4's storage comparison), and long simulator replays report
// progress instead of running silent.
//
// # Concurrency
//
// Counter, Gauge, and Histogram updates are single atomic operations
// and safe for unsynchronized concurrent use; WritePrometheus may run
// concurrently with updates and renders an approximate but
// internally-consistent snapshot (histogram _count always equals the
// +Inf bucket). Registration takes the registry mutex and is intended
// for startup, not hot paths.
//
// All constructors are nil-registry safe: calling Counter, Gauge, or
// Histogram on a nil *Registry returns a working, unregistered metric,
// so instrumented packages need no "is observability on?" branches.
package obs

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric label pair, fixed at registration time.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is a programmer error and is ignored so a
// counter never goes backwards.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a gauge holding a float64, for quantities that are
// genuinely fractional — ratios, rates, quantiles in seconds. Set and
// Value are single atomic operations on the float's bit pattern.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores the current value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// funcMetric is a metric whose value is computed by a callback at
// render time — the exposition's view of derived quantities (rolling
// ratios, burn rates) that have no meaningful stored state. The
// callback runs during WritePrometheus with no registry lock held and
// must be safe for concurrent use and cheap.
type funcMetric struct {
	fn func() float64
}

// metricKind discriminates exposition TYPE lines.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered metric instance (a family member with its
// label set).
type entry struct {
	labels []Label
	metric any // *Counter, *Gauge, or *Histogram
}

// family groups all label variants of one metric name under a single
// HELP/TYPE pair, as the exposition format requires. labelNames pins
// the label-name set of the first registrant; every later member must
// use the same names in the same order.
type family struct {
	name       string
	help       string
	kind       metricKind
	labelNames []string
	entries    []entry
}

// Registry holds registered metrics and renders them. The zero value
// is not usable; call NewRegistry. A nil *Registry is a valid
// "observability off" registry: constructors return live, unregistered
// metrics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSig is a canonical key for a label set within a family.
func labelSig(labels []Label) string {
	sig := ""
	for _, l := range labels {
		sig += l.Name + "\x00" + l.Value + "\x00"
	}
	return sig
}

// register adds (or finds) the metric for name+labels. Registration is
// idempotent: re-registering the same name, kind, help, and label set
// returns the existing metric, so independently-constructed components
// can share counters. Any disagreement with the family's first
// registrant — a different kind, a different help string, or a
// different label-name set — panics instead of silently returning the
// first metric: the exposition format cannot express the conflict, and
// two call sites that disagree about what a metric means is always a
// programmer error better caught at startup than in a dashboard.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, mk func() any) any {
	if err := checkMetricName(name); err != nil {
		panic(fmt.Sprintf("obs: %v", err))
	}
	names := make([]string, len(labels))
	for i, l := range labels {
		if err := checkLabelName(l.Name); err != nil {
			panic(fmt.Sprintf("obs: metric %s: %v", name, err))
		}
		names[i] = l.Name
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, labelNames: names}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	if f.help != help {
		panic(fmt.Sprintf("obs: metric %s re-registered with conflicting help %q (family has %q)",
			name, help, f.help))
	}
	if !slices.Equal(f.labelNames, names) {
		panic(fmt.Sprintf("obs: metric %s re-registered with label names %v (family has %v)",
			name, names, f.labelNames))
	}
	sig := labelSig(labels)
	for _, e := range f.entries {
		if labelSig(e.labels) == sig {
			return e.metric
		}
	}
	m := mk()
	f.entries = append(f.entries, entry{labels: append([]Label(nil), labels...), metric: m})
	return m
}

// Counter registers (or finds) a counter. Safe on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.register(name, help, kindCounter, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or finds) a gauge. Safe on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.register(name, help, kindGauge, labels, func() any { return &Gauge{} }).(*Gauge)
}

// FloatGauge registers (or finds) a float gauge. Safe on a nil
// registry.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	if r == nil {
		return &FloatGauge{}
	}
	m := r.register(name, help, kindGauge, labels, func() any { return &FloatGauge{} })
	fg, ok := m.(*FloatGauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %s already registered with a different gauge value type", name))
	}
	return fg
}

// GaugeFunc registers a gauge whose value is computed by fn at render
// time. Re-registering the same name and label set keeps the first
// callback. Safe (a no-op) on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindGauge, labels, func() any { return &funcMetric{fn: fn} })
}

// CounterFunc registers a counter whose value is computed by fn at
// render time; fn must be monotonically non-decreasing (e.g. a runtime
// cumulative statistic). Re-registering the same name and label set
// keeps the first callback. Safe (a no-op) on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindCounter, labels, func() any { return &funcMetric{fn: fn} })
}

// Histogram registers (or finds) a duration histogram over bounds;
// nil bounds selects DefaultLatencyBounds. Safe on a nil registry.
// Within one family every member shares the first registrant's bounds.
func (r *Registry) Histogram(name, help string, bounds []time.Duration, labels ...Label) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	return r.register(name, help, kindHistogram, labels, func() any { return NewHistogram(bounds) }).(*Histogram)
}

// snapshot returns the families sorted by name with entries in
// registration order, for rendering.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// checkMetricName enforces the exposition grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

// checkLabelName enforces [a-zA-Z_][a-zA-Z0-9_]* and reserves the
// double-underscore prefix, per the exposition format.
func checkLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("empty label name")
	}
	if len(name) >= 2 && name[0] == '_' && name[1] == '_' {
		return fmt.Errorf("reserved label name %q", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid label name %q", name)
		}
	}
	return nil
}
