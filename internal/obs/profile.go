package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileFlags is the shared -cpuprofile/-memprofile wiring for the
// offline binaries (reproduce, prefetchsim, replay, tracegen). The
// long-running server gets live profiles from the admin mux's
// /debug/pprof instead; batch runs end before a scrape could happen,
// so they write profile files the way `go test` does.
//
//	var prof obs.ProfileFlags
//	prof.Register(flag.CommandLine)
//	flag.Parse()
//	stop, err := prof.Start()
//	...
//	defer stop() // or call explicitly before os.Exit
type ProfileFlags struct {
	// CPU is the CPU profile path; empty disables CPU profiling.
	CPU string
	// Mem is the heap profile path, written by stop; empty disables it.
	Mem string
}

// Register installs the -cpuprofile and -memprofile flags on fs.
func (p *ProfileFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file (open with go tool pprof)")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file on exit")
}

// Start begins CPU profiling if -cpuprofile was given and returns a
// stop function that finishes the CPU profile and writes the heap
// profile if -memprofile was given. stop is never nil and is safe to
// call when neither flag was set; it must run before the process
// exits or the CPU profile will be truncated.
func (p *ProfileFlags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if p.CPU != "" {
		cpuFile, err = os.Create(p.CPU)
		if err != nil {
			return nil, fmt.Errorf("obs: creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: starting cpu profile: %w", err)
		}
	}
	memPath := p.Mem
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("obs: closing cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: creating heap profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile reflects retained heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: writing heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
