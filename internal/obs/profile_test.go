package obs

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// checkPprofFile validates the header of a profile file: runtime/pprof
// writes gzip-compressed protobuf, so a file `go tool pprof` can open
// starts with the gzip magic and decompresses to a non-empty payload.
func checkPprofFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("%s: missing gzip magic, got % x", path, raw[:min(len(raw), 4)])
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("%s: gzip header: %v", path, err)
	}
	payload, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("%s: decompressing: %v", path, err)
	}
	if len(payload) == 0 {
		t.Fatalf("%s: empty profile payload", path)
	}
}

func TestProfileFlagsWriteOpenableProfiles(t *testing.T) {
	dir := t.TempDir()
	p := ProfileFlags{
		CPU: filepath.Join(dir, "cpu.pprof"),
		Mem: filepath.Join(dir, "mem.pprof"),
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have content.
	sink := 0
	buf := make([]byte, 0, 1<<16)
	for i := 0; i < 1<<20; i++ {
		sink += i % 7
		if i%1024 == 0 {
			buf = append(buf, byte(i))
		}
	}
	_ = sink
	_ = buf
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	checkPprofFile(t, p.CPU)
	checkPprofFile(t, p.Mem)
}

// TestProfileFlagsDisabled: with neither flag set, Start and stop are
// no-ops that must not error or create files.
func TestProfileFlagsDisabled(t *testing.T) {
	var p ProfileFlags
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
