package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRegistrationIsIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "X.", Label{Name: "kind", Value: "a"})
	b := reg.Counter("x_total", "X.", Label{Name: "kind", Value: "a"})
	if a != b {
		t.Error("re-registering the same counter returned a different instance")
	}
	c := reg.Counter("x_total", "X.", Label{Name: "kind", Value: "b"})
	if a == c {
		t.Error("different label sets shared one counter")
	}
}

func TestKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic registering one name as two kinds")
		}
	}()
	reg.Gauge("x_total", "X.")
}

// TestConflictingReRegistrationPanics: a second registration that
// disagrees with the family's help string or label-name set must fail
// loudly instead of silently returning the first metric.
func TestConflictingReRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}

	reg := NewRegistry()
	reg.Counter("y_total", "Original help.", Label{Name: "kind", Value: "a"})
	mustPanic("help conflict", func() {
		reg.Counter("y_total", "Different help.", Label{Name: "kind", Value: "a"})
	})
	mustPanic("label name conflict", func() {
		reg.Counter("y_total", "Original help.", Label{Name: "type", Value: "a"})
	})
	mustPanic("label arity conflict", func() {
		reg.Counter("y_total", "Original help.")
	})
	mustPanic("histogram help conflict", func() {
		reg2 := NewRegistry()
		reg2.Histogram("h_seconds", "H.", nil)
		reg2.Histogram("h_seconds", "H!", nil)
	})

	// Same name, help, and label names with a different label VALUE is
	// the supported family-member case and must keep working.
	if reg.Counter("y_total", "Original help.", Label{Name: "kind", Value: "b"}) == nil {
		t.Error("new label value within a family failed")
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	reg := NewRegistry()
	for name, f := range map[string]func(){
		"bad metric name": func() { reg.Counter("0bad", "X.") },
		"empty name":      func() { reg.Counter("", "X.") },
		"bad label name":  func() { reg.Counter("ok_total", "X.", Label{Name: "0bad", Value: "v"}) },
		"reserved label":  func() { reg.Counter("ok2_total", "X.", Label{Name: "__meta", Value: "v"}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestNilRegistrySafe verifies the "observability off" contract: a nil
// registry hands out working metrics so instrumented code needs no
// branches.
func TestNilRegistrySafe(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "X.")
	c.Inc()
	if c.Value() != 1 {
		t.Error("nil-registry counter did not count")
	}
	g := reg.Gauge("x", "X.")
	g.Set(7)
	if g.Value() != 7 {
		t.Error("nil-registry gauge did not hold its value")
	}
	h := reg.Histogram("x_seconds", "X.", nil)
	h.Observe(time.Millisecond)
	if h.Count() != 1 {
		t.Error("nil-registry histogram did not count")
	}
}

func TestCounterIgnoresNegativeAdd(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5 (negative Add must be ignored)", got)
	}
}

func TestAdminMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "X.").Inc()
	healthy := true
	mux := NewAdminMux(reg, func() error {
		if !healthy {
			return errTest
		}
		return nil
	})

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	if rec := get("/metrics"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("/metrics = %d %q", rec.Code, rec.Body.String())
	}
	if got := get("/metrics").Header().Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Errorf("/metrics content type = %q", got)
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("/healthz = %d", rec.Code)
	}
	healthy = false
	if rec := get("/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("unhealthy /healthz = %d", rec.Code)
	}
	if rec := get("/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", rec.Code)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "down for the test" }
