package obs

import (
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"time"
)

// RegisterBuildInfo exports pbppm_build_info, the conventional
// constant-1 gauge whose labels carry the build identity (Go version,
// VCS revision, OS/arch), so every binary's exposition says what is
// running. Safe on a nil registry.
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		return
	}
	revision := "unknown"
	modified := ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					modified = "-dirty"
				}
			}
		}
	}
	if len(revision) > 12 {
		revision = revision[:12]
	}
	g := reg.Gauge("pbppm_build_info",
		"Build identity of this binary; the constant value 1 carries the labels.",
		Label{Name: "go_version", Value: runtime.Version()},
		Label{Name: "revision", Value: revision + modified},
		Label{Name: "goos", Value: runtime.GOOS},
		Label{Name: "goarch", Value: runtime.GOARCH})
	g.Set(1)
}

// runtimeSampleInterval is the minimum time between runtime/metrics
// reads; scrapes inside the interval reuse the cached sample so a
// scrape storm cannot turn telemetry into load.
const runtimeSampleInterval = time.Second

// runtimeCollector samples runtime/metrics with a cached snapshot.
type runtimeCollector struct {
	mu      sync.Mutex
	last    time.Time
	samples []metrics.Sample
	index   map[string]int
}

func newRuntimeCollector(names []string) *runtimeCollector {
	c := &runtimeCollector{index: make(map[string]int, len(names))}
	for i, n := range names {
		c.samples = append(c.samples, metrics.Sample{Name: n})
		c.index[n] = i
	}
	return c
}

// sample refreshes the snapshot if it is stale and returns the sample
// for name.
func (c *runtimeCollector) sample(name string) metrics.Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.last) >= runtimeSampleInterval {
		metrics.Read(c.samples)
		c.last = now
	}
	return c.samples[c.index[name]]
}

// float returns the sample's value as a float64 (uint64 and float64
// kinds; anything else reports 0).
func (c *runtimeCollector) float(name string) float64 {
	s := c.sample(name)
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	case metrics.KindFloat64:
		return s.Value.Float64()
	default:
		return 0
	}
}

// histQuantile returns an upper bound for the q-quantile of a
// runtime/metrics Float64Histogram sample, in the sample's unit
// (seconds for the pause and latency series). Buckets may have
// infinite edges; those report the nearest finite edge.
func (c *runtimeCollector) histQuantile(name string, q float64) float64 {
	s := c.sample(name)
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := s.Value.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, n := range h.Counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.Counts {
		seen += n
		if seen >= rank {
			// Counts[i] covers Buckets[i] <= x < Buckets[i+1]; report the
			// upper edge, falling back to the lower when it is +Inf.
			upper := h.Buckets[i+1]
			if isInf(upper) {
				return h.Buckets[i]
			}
			return upper
		}
	}
	return 0
}

func isInf(f float64) bool { return f > 1e308 || f < -1e308 }

// RegisterRuntimeMetrics exports the process runtime telemetry the
// serving binaries share — goroutine count, heap size, GC cycles and
// pause quantiles, scheduler latency quantiles — all computed at
// scrape time from a cached runtime/metrics snapshot. Safe on a nil
// registry; registering twice on the same registry is idempotent.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	const (
		heapBytes   = "/memory/classes/heap/objects:bytes"
		totalBytes  = "/memory/classes/total:bytes"
		gcCycles    = "/gc/cycles/total:gc-cycles"
		gcPauses    = "/gc/pauses:seconds"
		schedLats   = "/sched/latencies:seconds"
		goroutines = "/sched/goroutines:goroutines"
		gomaxprocs = "/sched/gomaxprocs:threads"
		cpuGCTotal = "/cpu/classes/gc/total:cpu-seconds"
	)
	c := newRuntimeCollector([]string{
		heapBytes, totalBytes, gcCycles, gcPauses, schedLats,
		goroutines, gomaxprocs, cpuGCTotal,
	})

	reg.GaugeFunc("pbppm_go_goroutines",
		"Live goroutines.",
		func() float64 { return c.float(goroutines) })
	reg.GaugeFunc("pbppm_go_gomaxprocs",
		"GOMAXPROCS at the last sample.",
		func() float64 { return c.float(gomaxprocs) })
	reg.GaugeFunc("pbppm_go_heap_alloc_bytes",
		"Bytes of live heap objects.",
		func() float64 { return c.float(heapBytes) })
	reg.GaugeFunc("pbppm_go_memory_total_bytes",
		"Total memory mapped by the Go runtime.",
		func() float64 { return c.float(totalBytes) })
	reg.CounterFunc("pbppm_go_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { return c.float(gcCycles) })
	reg.CounterFunc("pbppm_go_gc_cpu_seconds_total",
		"CPU seconds spent in garbage collection.",
		func() float64 { return c.float(cpuGCTotal) })
	for _, q := range []struct {
		label string
		v     float64
	}{{"0.5", 0.5}, {"0.99", 0.99}, {"0.999", 0.999}} {
		q := q
		reg.GaugeFunc("pbppm_go_gc_pause_seconds",
			"GC stop-the-world pause quantiles since process start.",
			func() float64 { return c.histQuantile(gcPauses, q.v) },
			Label{Name: "q", Value: q.label})
		reg.GaugeFunc("pbppm_go_sched_latency_seconds",
			"Scheduler latency quantiles (runnable-to-running wait) since process start.",
			func() float64 { return c.histQuantile(schedLats, q.v) },
			Label{Name: "q", Value: q.label})
	}
}
