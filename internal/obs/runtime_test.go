package obs

import (
	"strings"
	"testing"
)

func TestRegisterBuildInfoAndRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	RegisterRuntimeMetrics(reg)
	// Idempotent: the admin mux and an explicit call may both register.
	RegisterBuildInfo(reg)
	RegisterRuntimeMetrics(reg)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("runtime exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"pbppm_build_info{go_version=",
		"pbppm_go_goroutines ",
		"pbppm_go_heap_alloc_bytes ",
		"pbppm_go_gc_cycles_total ",
		`pbppm_go_gc_pause_seconds{q="0.99"}`,
		`pbppm_go_sched_latency_seconds{q="0.999"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Runtime telemetry is live: a process always has goroutines.
	if strings.Contains(text, "pbppm_go_goroutines 0\n") {
		t.Error("goroutine gauge reads 0; collector not sampling")
	}
	// Nil registry: all no-ops.
	RegisterBuildInfo(nil)
	RegisterRuntimeMetrics(nil)
}

func TestFloatGaugeAndFuncMetrics(t *testing.T) {
	reg := NewRegistry()
	fg := reg.FloatGauge("app_ratio", "A fractional gauge.")
	fg.Set(0.625)
	reg.GaugeFunc("app_derived", "A derived gauge.", func() float64 { return 2.5 })
	reg.CounterFunc("app_events_total", "A derived counter.", func() float64 { return 42 })

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"app_ratio 0.625\n",
		"app_derived 2.5\n",
		"app_events_total 42\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Nil registry constructors stay safe.
	var nilReg *Registry
	nilReg.FloatGauge("x", "h").Set(1)
	nilReg.GaugeFunc("x", "h", func() float64 { return 0 })
	nilReg.CounterFunc("x_total", "h", func() float64 { return 0 })
}

func TestValidateExpositionNamingConventions(t *testing.T) {
	for _, tc := range []struct {
		name string
		text string
		ok   bool
	}{
		{"counter with _total", "# HELP a_total h\n# TYPE a_total counter\na_total 1\n", true},
		{"counter missing _total", "# HELP a h\n# TYPE a counter\na 1\n", false},
		{"gauge plain", "# HELP g h\n# TYPE g gauge\ng 1\n", true},
		{"gauge with _total", "# HELP g_total h\n# TYPE g_total gauge\ng_total 1\n", false},
		{"gauge with _count", "# HELP g_count h\n# TYPE g_count gauge\ng_count 1\n", false},
		{"histogram reserved suffix", "# HELP h_sum h\n# TYPE h_sum histogram\n", false},
	} {
		err := ValidateExposition(tc.text)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid exposition accepted", tc.name)
		}
	}
}
