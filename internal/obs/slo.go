package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Objective is one declarative service-level objective: over a rolling
// window, at least Target of the SLI's events must be good. Two SLI
// shapes exist: latency objectives (Kind "latency"), where an event is
// good when it completes within Threshold, and quality objectives
// (any other bound kind, e.g. "precision" or "hit_ratio"), where the
// SLI source itself defines good/total (prefetch hits over prefetched
// documents, hits over requests).
type Objective struct {
	// Name labels the objective in /debug/slo and the pbppm_slo_*
	// metrics; empty defaults to Kind.
	Name string
	// Kind selects the SLI source bound to the engine ("latency",
	// "precision", "hit_ratio", ...).
	Kind string
	// Threshold is the good/bad latency cut for latency objectives;
	// ignored by quality kinds.
	Threshold time.Duration
	// Target is the required good fraction, in (0, 1).
	Target float64
	// Window overrides the engine's short burn-rate window for this
	// objective only; zero keeps the engine default. It must not exceed
	// the engine's long window (the SLI rings only cover that much).
	Window time.Duration
}

func (o Objective) name() string {
	if o.Name != "" {
		return o.Name
	}
	return o.Kind
}

// ParseObjectives parses the flag/file objective grammar: objectives
// separated by ';' (or newlines, for files), each a comma-separated
// list of key=value fields:
//
//	name=demand-latency,kind=latency,threshold=200ms,target=0.99
//	kind=precision,target=0.3,window=10m
//
// Lines starting with '#' and empty elements are skipped, so the same
// grammar works inline on a flag and as a config file. The optional
// window field overrides the engine's short burn-rate window for that
// objective. Objective names (explicit or defaulted from the kind)
// must be unique: two objectives rendering under one pbppm_slo_* label
// would collide at registration, so the duplicate is rejected here
// with a readable error instead.
func ParseObjectives(s string) ([]Objective, error) {
	var out []Objective
	seen := make(map[string]bool)
	split := func(r rune) bool { return r == ';' || r == '\n' }
	for _, raw := range strings.FieldsFunc(s, split) {
		raw = strings.TrimSpace(raw)
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		var o Objective
		for _, field := range strings.Split(raw, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			k, v, found := strings.Cut(field, "=")
			if !found {
				return nil, fmt.Errorf("obs: objective %q: field %q is not key=value", raw, field)
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			switch k {
			case "name":
				o.Name = v
			case "kind":
				o.Kind = v
			case "threshold":
				d, err := time.ParseDuration(v)
				if err != nil {
					return nil, fmt.Errorf("obs: objective %q: bad threshold: %v", raw, err)
				}
				o.Threshold = d
			case "target":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("obs: objective %q: bad target: %v", raw, err)
				}
				o.Target = f
			case "window":
				d, err := time.ParseDuration(v)
				if err != nil {
					return nil, fmt.Errorf("obs: objective %q: bad window: %v", raw, err)
				}
				if d <= 0 {
					return nil, fmt.Errorf("obs: objective %q: window %v must be positive", raw, d)
				}
				o.Window = d
			default:
				return nil, fmt.Errorf("obs: objective %q: unknown field %q", raw, k)
			}
		}
		if o.Kind == "" {
			return nil, fmt.Errorf("obs: objective %q: missing kind", raw)
		}
		if o.Target <= 0 || o.Target >= 1 {
			return nil, fmt.Errorf("obs: objective %q: target %v outside (0, 1)", raw, o.Target)
		}
		if o.Kind == "latency" && o.Threshold <= 0 {
			return nil, fmt.Errorf("obs: objective %q: latency objective needs a threshold", raw)
		}
		if seen[o.name()] {
			return nil, fmt.Errorf("obs: objective %q: duplicate objective name %q", raw, o.name())
		}
		seen[o.name()] = true
		out = append(out, o)
	}
	return out, nil
}

// SLIFunc reports the good and total event counts of one SLI over the
// trailing span; threshold is the latency cut for latency SLIs and
// ignored otherwise. Implementations read rolling windows and must be
// safe for concurrent use.
type SLIFunc func(threshold, span time.Duration) (good, total float64)

// SLO engine states, ordered by severity.
const (
	SLOStateNoData   = "no_data"
	SLOStateOK       = "ok"
	SLOStateBurning  = "burning"
	SLOStateCritical = "critical"
)

// sloStateValue maps states onto the pbppm_slo_state gauge.
func sloStateValue(state string) float64 {
	switch state {
	case SLOStateOK:
		return 0
	case SLOStateBurning:
		return 1
	case SLOStateCritical:
		return 2
	default: // no_data
		return -1
	}
}

// WindowStatus is one rolling window's view of an objective.
type WindowStatus struct {
	// Span is the window length, e.g. "5m0s".
	Span string `json:"span"`
	// Good and Total are the SLI's event counts over the window.
	Good  float64 `json:"good"`
	Total float64 `json:"total"`
	// Compliance is good/total, 1 with no events.
	Compliance float64 `json:"compliance"`
	// BurnRate is (1-compliance)/(1-target): 1 means the error budget
	// burns exactly as fast as the objective allows, above 1 the
	// budget is being consumed faster than sustainable.
	BurnRate float64 `json:"burn_rate"`
}

// ObjectiveStatus is one objective's multi-window evaluation.
type ObjectiveStatus struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	Threshold string  `json:"threshold,omitempty"`
	Target    float64 `json:"target"`
	// State summarizes the burn rates: "ok", "burning" (the short
	// window is over budget), "critical" (both windows are burning,
	// the short one at twice budget or worse), or "no_data".
	State   string         `json:"state"`
	Windows []WindowStatus `json:"windows"`
}

// SLOReport is the /debug/slo payload.
type SLOReport struct {
	GeneratedAt time.Time         `json:"generated_at"`
	Objectives  []ObjectiveStatus `json:"objectives"`
	// Annotations are recent model-publish markers (delta merges,
	// compactions), so quality dips in the objectives above can be
	// attributed to model swaps.
	Annotations []Annotation `json:"annotations,omitempty"`
}

// SLOEngine evaluates declarative objectives over two rolling windows
// (multi-window burn rate, SRE style): the short window answers "are
// we burning budget right now", the long window filters blips. Bind
// attaches SLI sources by kind; Evaluate and the HTTP handler may run
// concurrently with traffic.
type SLOEngine struct {
	objectives []Objective
	short      time.Duration
	long       time.Duration
	clock      func() time.Time

	mu      sync.Mutex
	sources map[string]SLIFunc
	ann     *Annotations
}

// NewSLOEngine returns an engine over the objectives with the default
// 5-minute short and 1-hour long windows.
func NewSLOEngine(objectives []Objective) *SLOEngine {
	return &SLOEngine{
		objectives: append([]Objective(nil), objectives...),
		short:      5 * time.Minute,
		long:       time.Hour,
		clock:      time.Now,
	}
}

// SetWindows overrides the short and long evaluation windows; values
// <= 0 keep the current ones. The SLI sources must be able to answer
// the long span (their rolling rings must cover it).
func (e *SLOEngine) SetWindows(short, long time.Duration) {
	if short > 0 {
		e.short = short
	}
	if long > 0 {
		e.long = long
	}
}

// SetClock injects a fake clock for tests.
func (e *SLOEngine) SetClock(clock func() time.Time) { e.clock = clock }

// Bind attaches the SLI source for a kind, replacing any previous one.
func (e *SLOEngine) Bind(kind string, fn SLIFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sources == nil {
		e.sources = make(map[string]SLIFunc)
	}
	e.sources[kind] = fn
}

// SetAnnotations attaches the publish-annotation ring included in
// /debug/slo reports.
func (e *SLOEngine) SetAnnotations(a *Annotations) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ann = a
}

// Objectives returns a copy of the configured objectives.
func (e *SLOEngine) Objectives() []Objective {
	return append([]Objective(nil), e.objectives...)
}

func (e *SLOEngine) source(kind string) SLIFunc {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sources[kind]
}

// windowsFor returns the short and long evaluation spans for an
// objective: the objective's own window (clamped to the long window)
// when set, else the engine's short window.
func (e *SLOEngine) windowsFor(o Objective) (short, long time.Duration) {
	short, long = e.short, e.long
	if o.Window > 0 {
		short = o.Window
		if short > long {
			short = long
		}
	}
	return short, long
}

// evaluateObjective computes one objective's window statuses and state.
func (e *SLOEngine) evaluateObjective(o Objective) ObjectiveStatus {
	st := ObjectiveStatus{
		Name:   o.name(),
		Kind:   o.Kind,
		Target: o.Target,
		State:  SLOStateNoData,
	}
	if o.Threshold > 0 {
		st.Threshold = o.Threshold.String()
	}
	src := e.source(o.Kind)
	if src == nil {
		return st
	}
	short, long := e.windowsFor(o)
	var burns []float64
	hasData := false
	for _, span := range []time.Duration{short, long} {
		good, total := src(o.Threshold, span)
		ws := WindowStatus{Span: span.String(), Good: good, Total: total, Compliance: 1}
		if total > 0 {
			hasData = true
			ws.Compliance = good / total
		}
		if ws.Compliance < 1 {
			ws.BurnRate = (1 - ws.Compliance) / (1 - o.Target)
		}
		burns = append(burns, ws.BurnRate)
		st.Windows = append(st.Windows, ws)
	}
	if !hasData {
		return st
	}
	shortBurn, longBurn := burns[0], burns[1]
	switch {
	case shortBurn >= 2 && longBurn >= 1:
		st.State = SLOStateCritical
	case shortBurn > 1:
		st.State = SLOStateBurning
	default:
		st.State = SLOStateOK
	}
	return st
}

// Evaluate computes every objective's current status.
func (e *SLOEngine) Evaluate() SLOReport {
	rep := SLOReport{GeneratedAt: e.clock()}
	for _, o := range e.objectives {
		rep.Objectives = append(rep.Objectives, e.evaluateObjective(o))
	}
	e.mu.Lock()
	ann := e.ann
	e.mu.Unlock()
	if ann != nil {
		rep.Annotations = ann.Recent()
	}
	return rep
}

// Register exports the engine as pbppm_slo_* metrics, all computed at
// scrape time: per objective and window, pbppm_slo_compliance and
// pbppm_slo_burn_rate; per objective, pbppm_slo_state (0 ok, 1
// burning, 2 critical, -1 no data).
func (e *SLOEngine) Register(reg *Registry) {
	if reg == nil {
		return
	}
	for _, o := range e.objectives {
		o := o
		short, long := e.windowsFor(o)
		for wi, span := range []time.Duration{short, long} {
			wi := wi
			labels := []Label{
				{Name: "objective", Value: o.name()},
				{Name: "window", Value: span.String()},
			}
			reg.GaugeFunc("pbppm_slo_compliance",
				"Good-event fraction of each objective over its rolling windows.",
				func() float64 { return e.evaluateObjective(o).Windows[wi].Compliance },
				labels...)
			reg.GaugeFunc("pbppm_slo_burn_rate",
				"Error-budget burn rate of each objective over its rolling windows; 1 burns exactly the budget.",
				func() float64 { return e.evaluateObjective(o).Windows[wi].BurnRate },
				labels...)
		}
		reg.GaugeFunc("pbppm_slo_state",
			"Objective state: 0 ok, 1 burning, 2 critical, -1 no data.",
			func() float64 { return sloStateValue(e.evaluateObjective(o).State) },
			Label{Name: "objective", Value: o.name()})
	}
}

// Handler serves the /debug/slo JSON report.
func (e *SLOEngine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rep := e.Evaluate()
		// Stable objective order for diffable output.
		sort.SliceStable(rep.Objectives, func(i, j int) bool {
			return rep.Objectives[i].Name < rep.Objectives[j].Name
		})
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep) //nolint:errcheck // client disconnects are not server errors
	})
}
