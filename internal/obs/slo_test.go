package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives(
		"name=demand-latency,kind=latency,threshold=200ms,target=0.99; kind=precision,target=0.3")
	if err != nil {
		t.Fatalf("ParseObjectives: %v", err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives, want 2", len(objs))
	}
	if objs[0].Name != "demand-latency" || objs[0].Kind != "latency" ||
		objs[0].Threshold != 200*time.Millisecond || objs[0].Target != 0.99 {
		t.Fatalf("objective 0 = %+v", objs[0])
	}
	if objs[1].name() != "precision" {
		t.Fatalf("objective 1 default name = %q, want kind", objs[1].name())
	}
}

func TestParseObjectivesFileGrammar(t *testing.T) {
	objs, err := ParseObjectives("# comment line\nkind=latency,threshold=1s,target=0.5\n\nkind=hit_ratio,target=0.2\n")
	if err != nil {
		t.Fatalf("ParseObjectives: %v", err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives, want 2", len(objs))
	}
}

func TestParseObjectivesErrors(t *testing.T) {
	for _, bad := range []string{
		"kind=latency,target=0.99",          // latency without threshold
		"kind=precision,target=1.5",         // target out of range
		"kind=precision,target=0",           // target at lower edge
		"target=0.5",                        // missing kind
		"kind=latency,threshold=200ms,nope", // not key=value
		"kind=latency,threshold=xyz,target=0.9",
		"kind=latency,threshold=200ms,target=0.9,color=red",                   // unknown field
		"kind=precision,target=0.3,window=abc",                                // malformed window duration
		"kind=precision,target=0.3,window=-5m",                                // negative window
		"kind=precision,target=0.3,window=0s",                                 // zero window
		"kind=precision,target=0.3; kind=precision,target=0.5",                // duplicate default names
		"name=a,kind=precision,target=0.3; name=a,kind=hit_ratio,target=0.5",  // duplicate explicit names
		"name=precision,kind=precision,target=0.3; kind=precision,target=0.5", // explicit collides with default
	} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted invalid input", bad)
		}
	}
}

func TestParseObjectivesWindowOverride(t *testing.T) {
	objs, err := ParseObjectives("kind=precision,target=0.3,window=10m")
	if err != nil {
		t.Fatalf("ParseObjectives: %v", err)
	}
	if objs[0].Window != 10*time.Minute {
		t.Fatalf("window = %v, want 10m", objs[0].Window)
	}
	// Same kind under distinct names is legal; both evaluate under their
	// own short window.
	objs, err = ParseObjectives("name=fast,kind=latency,threshold=50ms,target=0.9,window=1m;" +
		"name=slow,kind=latency,threshold=50ms,target=0.9")
	if err != nil {
		t.Fatalf("ParseObjectives: %v", err)
	}
	e := NewSLOEngine(objs)
	e.Bind("latency", func(threshold, span time.Duration) (float64, float64) {
		return 100, 100
	})
	rep := e.Evaluate()
	if got := rep.Objectives[0].Windows[0].Span; got != "1m0s" {
		t.Fatalf("fast objective short window = %q, want 1m0s", got)
	}
	if got := rep.Objectives[1].Windows[0].Span; got != "5m0s" {
		t.Fatalf("slow objective short window = %q, want engine default 5m0s", got)
	}
	// A per-objective window never exceeds the long window the SLI rings
	// are sized for.
	e2 := NewSLOEngine([]Objective{{Kind: "latency", Threshold: time.Second, Target: 0.9, Window: 2 * time.Hour}})
	e2.Bind("latency", func(threshold, span time.Duration) (float64, float64) { return 1, 1 })
	if got := e2.Evaluate().Objectives[0].Windows[0].Span; got != "1h0m0s" {
		t.Fatalf("oversized window clamped to %q, want 1h0m0s", got)
	}
}

// TestSLONoDataRecovers drives a latency SLI through the lifecycle an
// idle-then-busy server produces: traffic, then a gap long enough that
// every rolling bucket ages out (no_data), then traffic again (ok).
func TestSLONoDataRecovers(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }
	hist := NewRollingHistogram(Window{Span: time.Hour, Granularity: 10 * time.Second, Clock: clock}, nil)

	e := NewSLOEngine([]Objective{{Name: "lat", Kind: "latency", Threshold: 100 * time.Millisecond, Target: 0.9}})
	e.SetClock(clock)
	e.Bind("latency", func(threshold, span time.Duration) (float64, float64) {
		good, total := hist.GoodTotal(span, threshold)
		return float64(good), float64(total)
	})

	state := func() string { return e.Evaluate().Objectives[0].State }

	if got := state(); got != SLOStateNoData {
		t.Fatalf("pre-traffic state = %q, want no_data", got)
	}
	for i := 0; i < 100; i++ {
		hist.Observe(10 * time.Millisecond)
	}
	if got := state(); got != SLOStateOK {
		t.Fatalf("under traffic state = %q, want ok", got)
	}

	// Idle past the long window: every bucket ages out of both spans.
	now = now.Add(2 * time.Hour)
	if got := state(); got != SLOStateNoData {
		t.Fatalf("post-idle state = %q, want no_data", got)
	}

	// Traffic resumes: the engine recovers to ok without any reset call.
	for i := 0; i < 50; i++ {
		hist.Observe(10 * time.Millisecond)
	}
	if got := state(); got != SLOStateOK {
		t.Fatalf("resumed state = %q, want ok", got)
	}

	// And a resumed burst of bad latency is judged on its own: the
	// short window sees only the new observations.
	now = now.Add(2 * time.Hour)
	for i := 0; i < 50; i++ {
		hist.Observe(5 * time.Second)
	}
	if got := state(); got != SLOStateCritical {
		t.Fatalf("resumed-bad state = %q, want critical", got)
	}
}

func TestSLOEngineStates(t *testing.T) {
	objs := []Objective{{Name: "lat", Kind: "latency", Threshold: 100 * time.Millisecond, Target: 0.9}}
	e := NewSLOEngine(objs)

	// No source bound: no data.
	if st := e.Evaluate().Objectives[0]; st.State != SLOStateNoData {
		t.Fatalf("unbound state = %q, want no_data", st.State)
	}

	var good, total float64
	e.Bind("latency", func(threshold, span time.Duration) (float64, float64) {
		return good, total
	})

	// No traffic: still no data.
	if st := e.Evaluate().Objectives[0]; st.State != SLOStateNoData {
		t.Fatalf("no-traffic state = %q, want no_data", st.State)
	}

	// 99% good against a 90% target: ok, burn rate 0.1.
	good, total = 99, 100
	st := e.Evaluate().Objectives[0]
	if st.State != SLOStateOK {
		t.Fatalf("state = %q, want ok", st.State)
	}
	if b := st.Windows[0].BurnRate; b < 0.09 || b > 0.11 {
		t.Fatalf("burn rate = %v, want ~0.1", b)
	}

	// 85% good: burning (burn 1.5).
	good, total = 85, 100
	if st := e.Evaluate().Objectives[0]; st.State != SLOStateBurning {
		t.Fatalf("state = %q, want burning", st.State)
	}

	// 50% good: critical in both windows (burn 5).
	good, total = 50, 100
	if st := e.Evaluate().Objectives[0]; st.State != SLOStateCritical {
		t.Fatalf("state = %q, want critical", st.State)
	}
}

func TestSLOHandlerAndMetrics(t *testing.T) {
	objs, err := ParseObjectives("name=lat,kind=latency,threshold=100ms,target=0.9")
	if err != nil {
		t.Fatal(err)
	}
	e := NewSLOEngine(objs)
	e.Bind("latency", func(threshold, span time.Duration) (float64, float64) { return 95, 100 })
	ann := NewAnnotations()
	ann.Add("compaction", "model=PB-PPM nodes=42")
	e.SetAnnotations(ann)

	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	var rep SLOReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("decoding /debug/slo: %v\n%s", err, rec.Body.String())
	}
	if len(rep.Objectives) != 1 || rep.Objectives[0].State != SLOStateOK {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Objectives[0].Windows) != 2 {
		t.Fatalf("windows = %d, want 2 (short and long)", len(rep.Objectives[0].Windows))
	}
	if len(rep.Annotations) != 1 || rep.Annotations[0].Kind != "compaction" {
		t.Fatalf("annotations = %+v", rep.Annotations)
	}

	reg := NewRegistry()
	e.Register(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("slo exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		`pbppm_slo_compliance{objective="lat",window="5m0s"} 0.95`,
		`pbppm_slo_burn_rate{objective="lat",window="1h0m0s"}`,
		`pbppm_slo_state{objective="lat"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestAnnotationsRingBounded(t *testing.T) {
	a := NewAnnotations()
	for i := 0; i < annotationRingCap*3; i++ {
		a.Add("delta_merge", "")
	}
	if got := len(a.Recent()); got != annotationRingCap {
		t.Fatalf("ring holds %d, want cap %d", got, annotationRingCap)
	}
	// Nil ring: no-ops.
	var nilRing *Annotations
	nilRing.Add("x", "y")
	if nilRing.Recent() != nil {
		t.Fatal("nil ring returned annotations")
	}
}
