package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives(
		"name=demand-latency,kind=latency,threshold=200ms,target=0.99; kind=precision,target=0.3")
	if err != nil {
		t.Fatalf("ParseObjectives: %v", err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives, want 2", len(objs))
	}
	if objs[0].Name != "demand-latency" || objs[0].Kind != "latency" ||
		objs[0].Threshold != 200*time.Millisecond || objs[0].Target != 0.99 {
		t.Fatalf("objective 0 = %+v", objs[0])
	}
	if objs[1].name() != "precision" {
		t.Fatalf("objective 1 default name = %q, want kind", objs[1].name())
	}
}

func TestParseObjectivesFileGrammar(t *testing.T) {
	objs, err := ParseObjectives("# comment line\nkind=latency,threshold=1s,target=0.5\n\nkind=hit_ratio,target=0.2\n")
	if err != nil {
		t.Fatalf("ParseObjectives: %v", err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives, want 2", len(objs))
	}
}

func TestParseObjectivesErrors(t *testing.T) {
	for _, bad := range []string{
		"kind=latency,target=0.99",          // latency without threshold
		"kind=precision,target=1.5",         // target out of range
		"target=0.5",                        // missing kind
		"kind=latency,threshold=200ms,nope", // not key=value
		"kind=latency,threshold=xyz,target=0.9",
	} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted invalid input", bad)
		}
	}
}

func TestSLOEngineStates(t *testing.T) {
	objs := []Objective{{Name: "lat", Kind: "latency", Threshold: 100 * time.Millisecond, Target: 0.9}}
	e := NewSLOEngine(objs)

	// No source bound: no data.
	if st := e.Evaluate().Objectives[0]; st.State != SLOStateNoData {
		t.Fatalf("unbound state = %q, want no_data", st.State)
	}

	var good, total float64
	e.Bind("latency", func(threshold, span time.Duration) (float64, float64) {
		return good, total
	})

	// No traffic: still no data.
	if st := e.Evaluate().Objectives[0]; st.State != SLOStateNoData {
		t.Fatalf("no-traffic state = %q, want no_data", st.State)
	}

	// 99% good against a 90% target: ok, burn rate 0.1.
	good, total = 99, 100
	st := e.Evaluate().Objectives[0]
	if st.State != SLOStateOK {
		t.Fatalf("state = %q, want ok", st.State)
	}
	if b := st.Windows[0].BurnRate; b < 0.09 || b > 0.11 {
		t.Fatalf("burn rate = %v, want ~0.1", b)
	}

	// 85% good: burning (burn 1.5).
	good, total = 85, 100
	if st := e.Evaluate().Objectives[0]; st.State != SLOStateBurning {
		t.Fatalf("state = %q, want burning", st.State)
	}

	// 50% good: critical in both windows (burn 5).
	good, total = 50, 100
	if st := e.Evaluate().Objectives[0]; st.State != SLOStateCritical {
		t.Fatalf("state = %q, want critical", st.State)
	}
}

func TestSLOHandlerAndMetrics(t *testing.T) {
	objs, err := ParseObjectives("name=lat,kind=latency,threshold=100ms,target=0.9")
	if err != nil {
		t.Fatal(err)
	}
	e := NewSLOEngine(objs)
	e.Bind("latency", func(threshold, span time.Duration) (float64, float64) { return 95, 100 })
	ann := NewAnnotations()
	ann.Add("compaction", "model=PB-PPM nodes=42")
	e.SetAnnotations(ann)

	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	var rep SLOReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("decoding /debug/slo: %v\n%s", err, rec.Body.String())
	}
	if len(rep.Objectives) != 1 || rep.Objectives[0].State != SLOStateOK {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Objectives[0].Windows) != 2 {
		t.Fatalf("windows = %d, want 2 (short and long)", len(rep.Objectives[0].Windows))
	}
	if len(rep.Annotations) != 1 || rep.Annotations[0].Kind != "compaction" {
		t.Fatalf("annotations = %+v", rep.Annotations)
	}

	reg := NewRegistry()
	e.Register(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("slo exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		`pbppm_slo_compliance{objective="lat",window="5m0s"} 0.95`,
		`pbppm_slo_burn_rate{objective="lat",window="1h0m0s"}`,
		`pbppm_slo_state{objective="lat"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestAnnotationsRingBounded(t *testing.T) {
	a := NewAnnotations()
	for i := 0; i < annotationRingCap*3; i++ {
		a.Add("delta_merge", "")
	}
	if got := len(a.Recent()); got != annotationRingCap {
		t.Fatalf("ring holds %d, want cap %d", got, annotationRingCap)
	}
	// Nil ring: no-ops.
	var nilRing *Annotations
	nilRing.Add("x", "y")
	if nilRing.Recent() != nil {
		t.Fatal("nil ring returned annotations")
	}
}
