package obs

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage is one step of the predict hot path, in execution order.
type Stage int

const (
	// StageSession covers client-session lookup and bookkeeping under
	// the context-shard lock.
	StageSession Stage = iota
	// StageContext covers context-tail snapshot assembly and
	// ended-session hand-off.
	StageContext
	// StagePredict covers the model's Predict call.
	StagePredict
	// StageHints covers hint filtering and encoding.
	StageHints

	numStages
)

// String names the stage for metric labels and trace rendering.
func (s Stage) String() string {
	switch s {
	case StageSession:
		return "session"
	case StageContext:
		return "context"
	case StagePredict:
		return "predict"
	default:
		return "hints"
	}
}

// TraceRingCap is the explicit bound on the recent-trace ring: the
// tracer retains at most this many sampled records, oldest evicted
// first, so sustained tracing under load holds memory constant and
// /debug/traces output is bounded. 64 traces comfortably covers a
// debugging session while costing a few kilobytes.
const TraceRingCap = 64

// traceRingSize is the internal alias the ring arithmetic uses.
const traceRingSize = TraceRingCap

// TraceRecord is one sampled predict-path execution.
type TraceRecord struct {
	Client string
	URL    string
	Stages [4]time.Duration // indexed by Stage
	Total  time.Duration
}

// String renders the record as a one-line stage breakdown.
func (tr TraceRecord) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s total=%v", tr.Client, tr.URL, tr.Total)
	for st := StageSession; st < numStages; st++ {
		fmt.Fprintf(&sb, " %s=%v", st, tr.Stages[st])
	}
	return sb.String()
}

// Tracer samples predict-path executions: one in every N calls records
// per-stage timings into stage histograms and a ring of recent traces.
// When disabled (sample interval 0, or a nil *Tracer) Start is a
// single atomic load and the returned Span is inert — no clock reads,
// no allocation — so the serving hot path pays nothing.
type Tracer struct {
	every atomic.Int64
	seq   atomic.Int64

	stages  [numStages]*Histogram
	sampled *Counter

	mu     sync.Mutex
	recent [traceRingSize]TraceRecord
	next   int // ring write cursor
	filled int
}

// NewTracer returns a tracer sampling one in every `every` predict
// calls (0 disables sampling) and registers its per-stage histograms
// (pbppm_predict_stage_seconds) and sampled-trace counter in reg,
// which may be nil.
func NewTracer(reg *Registry, every int) *Tracer {
	t := &Tracer{}
	t.every.Store(int64(every))
	for st := StageSession; st < numStages; st++ {
		t.stages[st] = reg.Histogram(
			"pbppm_predict_stage_seconds",
			"Sampled per-stage predict-path latency.",
			nil, Label{Name: "stage", Value: st.String()})
	}
	t.sampled = reg.Counter("pbppm_predict_traces_total",
		"Predict-path executions sampled by the tracer.")
	return t
}

// SetSampleEvery changes the sampling interval at runtime; 0 disables.
func (t *Tracer) SetSampleEvery(every int) { t.every.Store(int64(every)) }

// Start begins a span if this call is sampled. Safe on a nil tracer.
func (t *Tracer) Start() Span {
	if t == nil {
		return Span{}
	}
	every := t.every.Load()
	if every <= 0 {
		return Span{}
	}
	if t.seq.Add(1)%every != 0 {
		return Span{}
	}
	now := time.Now()
	return Span{t: t, start: now, last: now}
}

// Recent returns the sampled traces, newest first.
func (t *Tracer) Recent() []TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceRecord, 0, t.filled)
	for i := 0; i < t.filled; i++ {
		out = append(out, t.recent[(t.next-1-i+2*traceRingSize)%traceRingSize])
	}
	return out
}

// Sampled reports how many predict-path executions the tracer has
// recorded (the exact 1-in-N subset of Start calls).
func (t *Tracer) Sampled() int64 { return t.sampled.Value() }

// TracesHandler serves the recent-trace ring as plain text, newest
// first — the /debug/traces endpoint. Output is bounded by
// TraceRingCap lines regardless of load.
func (t *Tracer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, rec := range t.Recent() {
			fmt.Fprintln(w, rec)
		}
	})
}

// Span accumulates one sampled predict-path execution. The zero Span
// is inert: every method is a nil check and nothing else, so
// unsampled calls stay allocation-free (Span is a stack value).
type Span struct {
	t      *Tracer
	start  time.Time
	last   time.Time
	stages [numStages]time.Duration
}

// Active reports whether this span is recording.
func (s Span) Active() bool { return s.t != nil }

// Mark attributes the time since the previous mark (or Start) to stage.
func (s *Span) Mark(stage Stage) {
	if s.t == nil {
		return
	}
	now := time.Now()
	s.stages[stage] += now.Sub(s.last)
	s.last = now
}

// Finish records the span into the tracer's histograms and recent-trace
// ring.
func (s *Span) Finish(client, url string) {
	if s.t == nil {
		return
	}
	t := s.t
	for st := StageSession; st < numStages; st++ {
		t.stages[st].Observe(s.stages[st])
	}
	t.sampled.Inc()
	rec := TraceRecord{
		Client: client,
		URL:    url,
		Stages: s.stages,
		Total:  time.Since(s.start),
	}
	t.mu.Lock()
	t.recent[t.next] = rec
	t.next = (t.next + 1) % traceRingSize
	if t.filled < traceRingSize {
		t.filled++
	}
	t.mu.Unlock()
}
