package obs

import (
	"testing"
	"time"
)

func TestTracerSamplesEveryN(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 2) // every second call
	recorded := 0
	for i := 0; i < 10; i++ {
		span := tr.Start()
		if span.Active() {
			recorded++
			span.Mark(StageSession)
			span.Mark(StagePredict)
			span.Finish("c1", "/a")
		}
	}
	if recorded != 5 {
		t.Errorf("sampled %d of 10 calls, want 5", recorded)
	}
	if got := tr.sampled.Value(); got != 5 {
		t.Errorf("sampled counter = %d, want 5", got)
	}
	if got := tr.stages[StagePredict].Count(); got != 5 {
		t.Errorf("predict-stage histogram count = %d, want 5", got)
	}
	if got := len(tr.Recent()); got != 5 {
		t.Errorf("Recent() returned %d traces, want 5", got)
	}
}

// TestTracerDisabledAndNil verifies the hot-path contract: spans from a
// disabled or nil tracer are inert and never allocate trace state.
func TestTracerDisabledAndNil(t *testing.T) {
	tr := NewTracer(nil, 0)
	span := tr.Start()
	if span.Active() {
		t.Error("disabled tracer returned an active span")
	}
	span.Mark(StageSession)
	span.Finish("c", "/x") // must be a no-op, not a panic
	if got := len(tr.Recent()); got != 0 {
		t.Errorf("disabled tracer recorded %d traces", got)
	}

	var nilTr *Tracer
	span = nilTr.Start()
	if span.Active() {
		t.Error("nil tracer returned an active span")
	}
	span.Mark(StagePredict)
	span.Finish("c", "/x")
}

func TestTracerRingNewestFirstAndBounded(t *testing.T) {
	tr := NewTracer(nil, 1)
	for i := 0; i < traceRingSize+5; i++ {
		span := tr.Start()
		span.Finish("c", "/x")
	}
	got := tr.Recent()
	if len(got) != traceRingSize {
		t.Fatalf("ring holds %d, want %d", len(got), traceRingSize)
	}
}

func TestTracerSetSampleEvery(t *testing.T) {
	tr := NewTracer(nil, 0)
	if tr.Start().Active() {
		t.Error("sampling off, span active")
	}
	tr.SetSampleEvery(1)
	if !tr.Start().Active() {
		t.Error("sampling every call, span inactive")
	}
}

func TestSpanStageAttribution(t *testing.T) {
	tr := NewTracer(nil, 1)
	span := tr.Start()
	time.Sleep(2 * time.Millisecond)
	span.Mark(StagePredict)
	span.Finish("c", "/x")
	rec := tr.Recent()[0]
	if rec.Stages[StagePredict] <= 0 {
		t.Error("predict stage has no attributed time")
	}
	if rec.Total < rec.Stages[StagePredict] {
		t.Errorf("total %v < predict stage %v", rec.Total, rec.Stages[StagePredict])
	}
}
