package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerSamplesEveryN(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 2) // every second call
	recorded := 0
	for i := 0; i < 10; i++ {
		span := tr.Start()
		if span.Active() {
			recorded++
			span.Mark(StageSession)
			span.Mark(StagePredict)
			span.Finish("c1", "/a")
		}
	}
	if recorded != 5 {
		t.Errorf("sampled %d of 10 calls, want 5", recorded)
	}
	if got := tr.sampled.Value(); got != 5 {
		t.Errorf("sampled counter = %d, want 5", got)
	}
	if got := tr.stages[StagePredict].Count(); got != 5 {
		t.Errorf("predict-stage histogram count = %d, want 5", got)
	}
	if got := len(tr.Recent()); got != 5 {
		t.Errorf("Recent() returned %d traces, want 5", got)
	}
}

// TestTracerDisabledAndNil verifies the hot-path contract: spans from a
// disabled or nil tracer are inert and never allocate trace state.
func TestTracerDisabledAndNil(t *testing.T) {
	tr := NewTracer(nil, 0)
	span := tr.Start()
	if span.Active() {
		t.Error("disabled tracer returned an active span")
	}
	span.Mark(StageSession)
	span.Finish("c", "/x") // must be a no-op, not a panic
	if got := len(tr.Recent()); got != 0 {
		t.Errorf("disabled tracer recorded %d traces", got)
	}

	var nilTr *Tracer
	span = nilTr.Start()
	if span.Active() {
		t.Error("nil tracer returned an active span")
	}
	span.Mark(StagePredict)
	span.Finish("c", "/x")
}

func TestTracerRingNewestFirstAndBounded(t *testing.T) {
	tr := NewTracer(nil, 1)
	for i := 0; i < traceRingSize+5; i++ {
		span := tr.Start()
		span.Finish("c", "/x")
	}
	got := tr.Recent()
	if len(got) != traceRingSize {
		t.Fatalf("ring holds %d, want %d", len(got), traceRingSize)
	}
}

// TestTracerBoundedUnderSustainedLoad is the regression test for the
// tracer's explicit bounds: sustained concurrent tracing must neither
// grow the ring beyond TraceRingCap nor break the exact 1-in-N
// sampled-rate contract, and the /debug/traces handler output stays
// bounded with it.
func TestTracerBoundedUnderSustainedLoad(t *testing.T) {
	const (
		every      = 8
		goroutines = 4
		perG       = 4000
	)
	tr := NewTracer(NewRegistry(), every)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				span := tr.Start()
				if span.Active() {
					span.Mark(StagePredict)
					span.Finish("c", "/load")
				}
				if i%512 == 0 {
					_ = tr.Recent() // concurrent readers must not unbound the ring
				}
			}
		}()
	}
	wg.Wait()

	total := int64(goroutines * perG)
	if got := tr.Sampled(); got != total/every {
		t.Errorf("sampled %d of %d calls, want exactly %d (1 in %d)",
			got, total, total/every, every)
	}
	if got := len(tr.Recent()); got != TraceRingCap {
		t.Errorf("ring holds %d after sustained load, want exactly the %d cap", got, TraceRingCap)
	}

	rec := httptest.NewRecorder()
	tr.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	lines := strings.Count(rec.Body.String(), "\n")
	if lines != TraceRingCap {
		t.Errorf("/debug/traces rendered %d lines, want %d", lines, TraceRingCap)
	}
}

func TestTracerSetSampleEvery(t *testing.T) {
	tr := NewTracer(nil, 0)
	if tr.Start().Active() {
		t.Error("sampling off, span active")
	}
	tr.SetSampleEvery(1)
	if !tr.Start().Active() {
		t.Error("sampling every call, span inactive")
	}
}

func TestSpanStageAttribution(t *testing.T) {
	tr := NewTracer(nil, 1)
	span := tr.Start()
	time.Sleep(2 * time.Millisecond)
	span.Mark(StagePredict)
	span.Finish("c", "/x")
	rec := tr.Recent()[0]
	if rec.Stages[StagePredict] <= 0 {
		t.Error("predict stage has no attributed time")
	}
	if rec.Total < rec.Stages[StagePredict] {
		t.Errorf("total %v < predict stage %v", rec.Total, rec.Stages[StagePredict])
	}
}
