package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Window describes a rolling time window as a ring of fixed-width
// buckets: Span is the longest lookback the ring can answer, and
// Granularity the bucket width (and therefore the resolution at which
// old observations age out). A RollingCounter or RollingHistogram
// built over a Window can report a sum or quantile over any trailing
// span up to Span, so one ring serves both a 5-minute live gauge and a
// 1-hour SLO window.
//
// The zero value selects a 5-minute span at 10-second granularity,
// matching the "is the model degrading right now" horizon the live
// quality gauges need.
type Window struct {
	// Span is the longest queryable lookback; zero selects 5 minutes.
	Span time.Duration
	// Granularity is the bucket width; zero selects Span/30, floored at
	// one second. Granularity is always whole seconds: sub-second
	// values round up, keeping bucket epochs on the Unix-seconds clock
	// (well-defined even for the zero time.Time fake clocks tests use).
	Granularity time.Duration
	// Clock supplies time; nil selects time.Now. Tests inject fakes.
	Clock func() time.Time
}

func (w Window) span() time.Duration {
	if w.Span <= 0 {
		return 5 * time.Minute
	}
	return w.Span
}

// granSeconds returns the bucket width in whole seconds, at least 1.
func (w Window) granSeconds() int64 {
	g := w.Granularity
	if g <= 0 {
		g = w.span() / 30
	}
	secs := int64((g + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Granularity as actually applied (whole seconds).
func (w Window) gran() time.Duration {
	return time.Duration(w.granSeconds()) * time.Second
}

func (w Window) now() time.Time {
	if w.Clock != nil {
		return w.Clock()
	}
	return time.Now()
}

// epochNow is the current bucket number on the Unix-seconds clock.
func (w Window) epochNow() int64 {
	e := w.now().Unix() / w.granSeconds()
	return e
}

// slots is the ring size: enough complete buckets to cover Span plus
// the partially-filled current bucket.
func (w Window) slots() int {
	n := int(w.span()/w.gran()) + 1
	if n < 2 {
		n = 2
	}
	return n
}

// spanSlots converts a query span into a bucket count, clamped to the
// ring: at least the current bucket, at most every bucket.
func (w Window) spanSlots(q time.Duration) int64 {
	if q <= 0 || q > w.span() {
		q = w.span()
	}
	gran := w.gran()
	n := int64((q + gran - 1) / gran)
	if n < 1 {
		n = 1
	}
	if max := int64(w.slots()); n > max {
		n = max
	}
	return n
}

// ringIndex maps an epoch onto the ring; epochs may be negative (fake
// clocks before 1970), so the remainder is normalized.
func ringIndex(epoch int64, slots int) int {
	i := int(epoch % int64(slots))
	if i < 0 {
		i += slots
	}
	return i
}

// counterSlot is one ring bucket of a RollingCounter.
type counterSlot struct {
	epoch atomic.Int64
	count atomic.Int64
}

// RollingCounter counts events over a rolling window. The hot path is
// one atomic load plus one atomic add; the per-bucket rotation (once
// per Granularity tick) briefly takes a mutex. Sum may run
// concurrently with Add.
type RollingCounter struct {
	w     Window
	mu    sync.Mutex // serializes bucket rotation only
	slots []counterSlot
}

// NewRollingCounter returns a counter over w.
func NewRollingCounter(w Window) *RollingCounter {
	c := &RollingCounter{w: w, slots: make([]counterSlot, w.slots())}
	for i := range c.slots {
		c.slots[i].epoch.Store(epochUnused)
	}
	return c
}

// epochUnused marks a bucket that has never been written; it compares
// below any real epoch the Unix clock can produce.
const epochUnused = -1 << 62

// Inc adds one.
func (c *RollingCounter) Inc() { c.Add(1) }

// Add records n events now. An Add racing the bucket's reuse for a
// newer epoch (a writer descheduled across a Granularity tick) is
// dropped rather than misfiled.
func (c *RollingCounter) Add(n int64) {
	e := c.w.epochNow()
	s := &c.slots[ringIndex(e, len(c.slots))]
	if s.epoch.Load() != e {
		c.mu.Lock()
		switch cur := s.epoch.Load(); {
		case cur < e:
			// Rotate: zero before publishing the epoch so a concurrent
			// Sum never pairs the new epoch with the old count.
			s.count.Store(0)
			s.epoch.Store(e)
		case cur > e:
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
	}
	s.count.Add(n)
}

// Sum returns the event count over the trailing span (clamped to the
// window's Span; zero or negative selects the full Span). The current
// partially-filled bucket is included, so the effective lookback is
// span rounded up to whole buckets.
func (c *RollingCounter) Sum(span time.Duration) int64 {
	e := c.w.epochNow()
	oldest := e - c.w.spanSlots(span) + 1
	var total int64
	for i := range c.slots {
		if ep := c.slots[i].epoch.Load(); ep >= oldest && ep <= e {
			total += c.slots[i].count.Load()
		}
	}
	return total
}

// histSlot is one ring bucket of a RollingHistogram.
type histSlot struct {
	epoch  atomic.Int64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
}

// RollingHistogram counts durations in fixed buckets over a rolling
// window, the windowed sibling of Histogram: same bounds, same
// quantile math (QuantileOverCounts), but observations age out after
// the window's Span. Observe is one atomic load plus one atomic add;
// rotation once per Granularity tick takes a mutex.
type RollingHistogram struct {
	w      Window
	bounds []time.Duration
	mu     sync.Mutex
	slots  []histSlot
}

// NewRollingHistogram returns a rolling histogram over w with the
// given bucket bounds (sorted ascending); nil bounds selects
// DefaultLatencyBounds.
func NewRollingHistogram(w Window, bounds []time.Duration) *RollingHistogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not sorted ascending")
		}
	}
	h := &RollingHistogram{w: w, bounds: bounds, slots: make([]histSlot, w.slots())}
	for i := range h.slots {
		h.slots[i].epoch.Store(epochUnused)
		h.slots[i].counts = make([]atomic.Int64, len(bounds)+1)
	}
	return h
}

// Observe records one duration now.
func (h *RollingHistogram) Observe(d time.Duration) {
	e := h.w.epochNow()
	s := &h.slots[ringIndex(e, len(h.slots))]
	if s.epoch.Load() != e {
		h.mu.Lock()
		switch cur := s.epoch.Load(); {
		case cur < e:
			for i := range s.counts {
				s.counts[i].Store(0)
			}
			s.epoch.Store(e)
		case cur > e:
			h.mu.Unlock()
			return
		}
		h.mu.Unlock()
	}
	s.counts[BucketIndex(h.bounds, d)].Add(1)
}

// Counts returns the per-bucket counts over the trailing span
// (len(bounds)+1 entries, last is overflow), the raw input to
// QuantileOverCounts.
func (h *RollingHistogram) Counts(span time.Duration) []int64 {
	e := h.w.epochNow()
	oldest := e - h.w.spanSlots(span) + 1
	out := make([]int64, len(h.bounds)+1)
	for i := range h.slots {
		s := &h.slots[i]
		if ep := s.epoch.Load(); ep >= oldest && ep <= e {
			for b := range s.counts {
				out[b] += s.counts[b].Load()
			}
		}
	}
	return out
}

// Count returns the number of observations in the trailing span.
func (h *RollingHistogram) Count(span time.Duration) int64 {
	var total int64
	for _, n := range h.Counts(span) {
		total += n
	}
	return total
}

// Quantile returns an upper bound for the q-quantile of the trailing
// span's observations; see QuantileOverCounts for the edge cases.
func (h *RollingHistogram) Quantile(span time.Duration, q float64) time.Duration {
	return QuantileOverCounts(h.bounds, h.Counts(span), q)
}

// GoodTotal reports how many observations in the trailing span were at
// or under threshold, and how many there were in total — the latency
// SLI shape (good, total) an SLO engine consumes. The threshold is
// effectively rounded up to the nearest bucket bound (a threshold
// beyond the last bound counts every observation as good).
func (h *RollingHistogram) GoodTotal(span, threshold time.Duration) (good, total int64) {
	counts := h.Counts(span)
	idx := BucketIndex(h.bounds, threshold)
	for i, n := range counts {
		total += n
		if i <= idx {
			good += n
		}
	}
	return good, total
}
