package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable clock for rolling-window tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testWindow(clk *fakeClock) Window {
	return Window{Span: 5 * time.Minute, Granularity: 10 * time.Second, Clock: clk.Now}
}

func TestRollingCounterAgesOut(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	c := NewRollingCounter(testWindow(clk))

	c.Add(5)
	clk.Advance(1 * time.Minute)
	c.Add(3)
	if got := c.Sum(0); got != 8 {
		t.Fatalf("full-window sum = %d, want 8", got)
	}
	if got := c.Sum(30 * time.Second); got != 3 {
		t.Fatalf("30s sum = %d, want 3 (only the recent add)", got)
	}

	// Advance past the span: everything ages out.
	clk.Advance(6 * time.Minute)
	if got := c.Sum(0); got != 0 {
		t.Fatalf("sum after span elapsed = %d, want 0", got)
	}

	// The ring reuses old slots without double counting.
	c.Add(7)
	if got := c.Sum(0); got != 7 {
		t.Fatalf("sum after reuse = %d, want 7", got)
	}
}

func TestRollingCounterNegativeEpochs(t *testing.T) {
	// A zero-value time.Time sits far before the Unix epoch; the ring
	// must still index correctly (fake clocks in server tests do this).
	clk := &fakeClock{}
	c := NewRollingCounter(testWindow(clk))
	c.Add(2)
	clk.Advance(20 * time.Second)
	c.Add(3)
	if got := c.Sum(0); got != 5 {
		t.Fatalf("sum with pre-epoch clock = %d, want 5", got)
	}
}

func TestRollingHistogramQuantilesAndAging(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	h := NewRollingHistogram(testWindow(clk), nil)

	// 90 fast observations, then later 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Millisecond)
	}
	clk.Advance(2 * time.Minute)
	for i := 0; i < 10; i++ {
		h.Observe(1 * time.Second)
	}

	if got := h.Count(0); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Quantile(0, 0.5); got != 2*time.Millisecond {
		t.Fatalf("p50 = %v, want 2ms", got)
	}
	if got := h.Quantile(0, 0.99); got != 1*time.Second {
		t.Fatalf("p99 = %v, want 1s", got)
	}
	// A 30s window only sees the slow tail.
	if got := h.Quantile(30*time.Second, 0.5); got != 1*time.Second {
		t.Fatalf("30s p50 = %v, want 1s", got)
	}

	good, total := h.GoodTotal(0, 100*time.Millisecond)
	if good != 90 || total != 100 {
		t.Fatalf("GoodTotal(100ms) = (%d, %d), want (90, 100)", good, total)
	}

	// Aging: move past the span, nothing remains.
	clk.Advance(10 * time.Minute)
	if got := h.Count(0); got != 0 {
		t.Fatalf("count after span elapsed = %d, want 0", got)
	}
	if got := h.Quantile(0, 0.99); got != 0 {
		t.Fatalf("quantile of empty window = %v, want 0", got)
	}
}

func TestRollingCounterConcurrent(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	c := NewRollingCounter(Window{Span: time.Minute, Granularity: time.Second, Clock: clk.Now})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
				_ = c.Sum(0)
			}
		}()
	}
	// One goroutine advances the fake clock while writers run; rotation
	// may drop boundary-racing adds but must never corrupt the ring.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			clk.Advance(time.Second)
		}
	}()
	wg.Wait()
	if got := c.Sum(0); got < 0 || got > 8000 {
		t.Fatalf("concurrent sum = %d, want within [0, 8000]", got)
	}
}

func TestWindowDefaults(t *testing.T) {
	var w Window
	if got := w.span(); got != 5*time.Minute {
		t.Fatalf("default span = %v, want 5m", got)
	}
	if got := w.gran(); got != 10*time.Second {
		t.Fatalf("default granularity = %v, want 10s", got)
	}
	if got := w.slots(); got != 31 {
		t.Fatalf("default slots = %d, want 31", got)
	}
	// Sub-second granularity rounds up to a whole second.
	w = Window{Span: 10 * time.Second, Granularity: 100 * time.Millisecond}
	if got := w.gran(); got != time.Second {
		t.Fatalf("sub-second granularity = %v, want 1s floor", got)
	}
}
