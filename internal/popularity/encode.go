package popularity

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
)

// wireRanking is the gob image of a Ranking.
type wireRanking struct {
	Counts map[string]int64
	Base   float64
	Grades int
}

// Encode serializes the ranking so a server can persist its popularity
// state across restarts (the paper notes popularity is stable over
// long periods, which is what makes persisting it worthwhile).
func (rk *Ranking) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	img := wireRanking{Counts: rk.counts, Base: rk.base, Grades: rk.grades}
	if err := gob.NewEncoder(bw).Encode(img); err != nil {
		return fmt.Errorf("popularity: encoding ranking: %w", err)
	}
	return bw.Flush()
}

// DecodeRanking reads a ranking written by Encode.
func DecodeRanking(r io.Reader) (*Ranking, error) {
	var img wireRanking
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&img); err != nil {
		return nil, fmt.Errorf("popularity: decoding ranking: %w", err)
	}
	rk := &Ranking{counts: img.Counts, base: img.Base, grades: img.Grades}
	if rk.counts == nil {
		rk.counts = make(map[string]int64)
	}
	for _, c := range rk.counts {
		if c > rk.max {
			rk.max = c
		}
	}
	return rk, nil
}
