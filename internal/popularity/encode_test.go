package popularity

import (
	"bytes"
	"testing"
)

func TestRankingEncodeDecode(t *testing.T) {
	rk := NewRanking()
	rk.Observe("/a", 1000)
	rk.Observe("/b", 10)
	rk.Observe("/c", 1)

	var buf bytes.Buffer
	if err := rk.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeRanking(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Len() != 3 || got.MaxCount() != 1000 {
		t.Errorf("Len=%d Max=%d", got.Len(), got.MaxCount())
	}
	for _, u := range []string{"/a", "/b", "/c", "/missing"} {
		if got.GradeOf(u) != rk.GradeOf(u) || got.Count(u) != rk.Count(u) {
			t.Errorf("%s: grade/count drifted after round trip", u)
		}
	}
	// Decoded ranking keeps accepting observations.
	got.Observe("/a", 500)
	if got.Count("/a") != 1500 || got.MaxCount() != 1500 {
		t.Error("decoded ranking did not observe")
	}
}

func TestRankingEncodeDecodeCustomScale(t *testing.T) {
	rk := NewRankingWithScale(2, 5)
	rk.Observe("/top", 32)
	rk.Observe("/tiny", 1)
	var buf bytes.Buffer
	if err := rk.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRanking(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.GradeOf("/tiny") != rk.GradeOf("/tiny") {
		t.Error("custom scale lost in round trip")
	}
}

func TestDecodeRankingError(t *testing.T) {
	if _, err := DecodeRanking(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("junk accepted")
	}
}

func TestEncodeEmptyRanking(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRanking().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRanking(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got.Observe("/x", 1)
	if got.Count("/x") != 1 {
		t.Error("empty round-tripped ranking unusable")
	}
}
