// Package popularity implements the relative-popularity metric and the
// log10 grade scale from §3.1 of the paper.
//
// For a URL u observed in a trace window,
//
//	RP(u) = accesses(u) / accesses(most popular URL)
//
// and grades partition RP on a log10 scale: grade 3 for RP in [0.1, 1],
// grade 2 for [0.01, 0.1), grade 1 for [0.001, 0.01), grade 0 below.
package popularity

import (
	"fmt"
	"math"
	"sort"
)

// Grade is the popularity grade of a URL, 0 (least popular) through 3.
type Grade int

// MaxGrade is the highest popularity grade.
const MaxGrade Grade = 3

// Ranking holds access counts and derived popularity for a set of URLs.
// The zero value is an empty ranking ready for Observe calls.
type Ranking struct {
	counts map[string]int64
	max    int64

	// base is the logarithmic base of the grade scale; the paper uses
	// 10 ("in a log10 base"). Must be > 1.
	base float64
	// grades is the number of non-zero grades; the paper uses 3
	// (grades 1..3 above the floor grade 0).
	grades int
}

// NewRanking returns a Ranking using the paper's grading parameters
// (log10 scale, grades 0–3).
func NewRanking() *Ranking {
	return &Ranking{base: 10, grades: int(MaxGrade)}
}

// NewRankingWithScale returns a Ranking with a custom logarithmic base
// and number of non-zero grades. It panics if base <= 1 or grades < 1;
// both are programmer errors, not data errors.
func NewRankingWithScale(base float64, grades int) *Ranking {
	if base <= 1 {
		panic(fmt.Sprintf("popularity: base %v must exceed 1", base))
	}
	if grades < 1 {
		panic(fmt.Sprintf("popularity: grades %d must be at least 1", grades))
	}
	return &Ranking{base: base, grades: grades}
}

// Observe records n accesses to url. Negative n panics: access counts
// only grow.
func (rk *Ranking) Observe(url string, n int64) {
	if n < 0 {
		panic("popularity: negative access count")
	}
	if rk.counts == nil {
		rk.counts = make(map[string]int64)
	}
	rk.counts[url] += n
	if rk.counts[url] > rk.max {
		rk.max = rk.counts[url]
	}
}

// Count returns the number of recorded accesses to url.
func (rk *Ranking) Count(url string) int64 { return rk.counts[url] }

// MaxCount returns the access count of the most popular URL, or zero
// for an empty ranking.
func (rk *Ranking) MaxCount() int64 { return rk.max }

// Len returns the number of distinct URLs observed.
func (rk *Ranking) Len() int { return len(rk.counts) }

// Relative returns RP(url) in [0, 1]. URLs never observed have RP 0.
// An empty ranking yields 0 for every URL.
func (rk *Ranking) Relative(url string) float64 {
	if rk.max == 0 {
		return 0
	}
	return float64(rk.counts[url]) / float64(rk.max)
}

// GradeOf maps a URL to its popularity grade. With the default scale,
// grade g >= 1 means RP in [base^(g-grades), base^(g-grades+1)), except
// the top grade which is closed at RP = 1; grade 0 catches everything
// below base^(1-grades) including unobserved URLs.
func (rk *Ranking) GradeOf(url string) Grade {
	return rk.GradeOfRP(rk.Relative(url))
}

// GradeOfRP maps a relative popularity value to a grade.
func (rk *Ranking) GradeOfRP(rp float64) Grade {
	if rp <= 0 {
		return 0
	}
	if rp > 1 {
		rp = 1
	}
	base, grades := rk.base, rk.grades
	if base == 0 {
		base, grades = 10, int(MaxGrade) // zero-value Ranking: paper defaults
	}
	// g = grades + floor(log_base(rp)) + 1 for rp in (0,1], clamped.
	lg := math.Log(rp) / math.Log(base)
	g := grades + int(math.Floor(lg)) + 1
	if g < 0 {
		g = 0
	}
	if g > grades {
		g = grades
	}
	return Grade(g)
}

// Grades returns the grade of every observed URL.
func (rk *Ranking) Grades() map[string]Grade {
	out := make(map[string]Grade, len(rk.counts))
	for u := range rk.counts {
		out[u] = rk.GradeOf(u)
	}
	return out
}

// GradeHistogram returns how many observed URLs fall in each grade,
// indexed by grade.
func (rk *Ranking) GradeHistogram() []int {
	grades := rk.grades
	if grades == 0 {
		grades = int(MaxGrade)
	}
	hist := make([]int, grades+1)
	for u := range rk.counts {
		hist[rk.GradeOf(u)]++
	}
	return hist
}

// Top returns the n most popular URLs in descending access-count order,
// ties broken lexicographically for determinism. If n exceeds the
// number of observed URLs, all URLs are returned.
func (rk *Ranking) Top(n int) []string {
	urls := make([]string, 0, len(rk.counts))
	for u := range rk.counts {
		urls = append(urls, u)
	}
	sort.Slice(urls, func(i, j int) bool {
		ci, cj := rk.counts[urls[i]], rk.counts[urls[j]]
		if ci != cj {
			return ci > cj
		}
		return urls[i] < urls[j]
	})
	if n < len(urls) {
		urls = urls[:n]
	}
	return urls
}

// Grader is the minimal read-only view the prediction models need:
// popularity grades for URLs. *Ranking implements it, as do fixed
// test stubs.
type Grader interface {
	GradeOf(url string) Grade
}

// FixedGrades is a Grader backed by a literal map; URLs absent from the
// map have grade 0. It is convenient in tests and examples.
type FixedGrades map[string]Grade

// GradeOf returns the grade recorded for url, or 0.
func (f FixedGrades) GradeOf(url string) Grade { return f[url] }
