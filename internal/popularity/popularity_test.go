package popularity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestObserveAndCounts(t *testing.T) {
	rk := NewRanking()
	rk.Observe("/a", 10)
	rk.Observe("/b", 3)
	rk.Observe("/a", 5)
	if got := rk.Count("/a"); got != 15 {
		t.Errorf("Count(/a) = %d, want 15", got)
	}
	if got := rk.Count("/missing"); got != 0 {
		t.Errorf("Count(missing) = %d, want 0", got)
	}
	if got := rk.MaxCount(); got != 15 {
		t.Errorf("MaxCount = %d, want 15", got)
	}
	if got := rk.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
}

func TestObserveNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Observe(-1) did not panic")
		}
	}()
	NewRanking().Observe("/a", -1)
}

func TestRelative(t *testing.T) {
	rk := NewRanking()
	if got := rk.Relative("/a"); got != 0 {
		t.Errorf("empty ranking Relative = %v, want 0", got)
	}
	rk.Observe("/top", 1000)
	rk.Observe("/mid", 100)
	rk.Observe("/low", 1)
	cases := map[string]float64{"/top": 1.0, "/mid": 0.1, "/low": 0.001, "/none": 0}
	for u, want := range cases {
		if got := rk.Relative(u); math.Abs(got-want) > 1e-12 {
			t.Errorf("Relative(%s) = %v, want %v", u, got, want)
		}
	}
}

func TestGradeBoundaries(t *testing.T) {
	rk := NewRanking()
	cases := []struct {
		rp   float64
		want Grade
	}{
		{1.0, 3}, {0.5, 3}, {0.1, 3},
		{0.0999999, 2}, {0.01, 2},
		{0.00999, 1}, {0.001, 1},
		{0.000999, 0}, {0.0001, 0}, {0, 0}, {-0.5, 0},
		{1.5, 3}, // clamped above 1
	}
	for _, c := range cases {
		if got := rk.GradeOfRP(c.rp); got != c.want {
			t.Errorf("GradeOfRP(%v) = %v, want %v", c.rp, got, c.want)
		}
	}
}

func TestGradeOfByCounts(t *testing.T) {
	rk := NewRanking()
	rk.Observe("/top", 10000)
	rk.Observe("/g3", 1500)
	rk.Observe("/g2", 150)
	rk.Observe("/g1", 15)
	rk.Observe("/g0", 1)
	want := map[string]Grade{"/top": 3, "/g3": 3, "/g2": 2, "/g1": 1, "/g0": 0, "/none": 0}
	for u, g := range want {
		if got := rk.GradeOf(u); got != g {
			t.Errorf("GradeOf(%s) = %v, want %v", u, got, g)
		}
	}
}

func TestZeroValueRankingUsesPaperDefaults(t *testing.T) {
	var rk Ranking
	rk.Observe("/top", 1000)
	rk.Observe("/mid", 100)
	if got := rk.GradeOf("/top"); got != 3 {
		t.Errorf("zero-value GradeOf(top) = %v, want 3", got)
	}
	if got := rk.GradeOf("/mid"); got != 3 {
		t.Errorf("zero-value GradeOf(mid) = %v, want 3 (RP=0.1)", got)
	}
}

func TestCustomScale(t *testing.T) {
	rk := NewRankingWithScale(2, 5)
	rk.Observe("/top", 32)
	rk.Observe("/half", 16)
	rk.Observe("/q", 8)
	rk.Observe("/tiny", 1)
	if got := rk.GradeOf("/top"); got != 5 {
		t.Errorf("GradeOf(top) = %v, want 5", got)
	}
	if got := rk.GradeOf("/half"); got != 5 {
		t.Errorf("GradeOf(half) = %v, want 5 (RP=0.5 is top bucket)", got)
	}
	if got := rk.GradeOf("/q"); got != 4 {
		t.Errorf("GradeOf(q) = %v, want 4", got)
	}
	if got := rk.GradeOf("/tiny"); got != 1 {
		t.Errorf("GradeOf(tiny) = %v, want 1 (RP=1/32 = 2^-5)", got)
	}
}

func TestNewRankingWithScalePanics(t *testing.T) {
	for _, c := range []struct {
		base   float64
		grades int
	}{{1, 3}, {0.5, 3}, {10, 0}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRankingWithScale(%v,%d) did not panic", c.base, c.grades)
				}
			}()
			NewRankingWithScale(c.base, c.grades)
		}()
	}
}

func TestGradeHistogram(t *testing.T) {
	rk := NewRanking()
	rk.Observe("/a", 1000)
	rk.Observe("/b", 500)
	rk.Observe("/c", 50)
	rk.Observe("/d", 5)
	rk.Observe("/e", 1)
	hist := rk.GradeHistogram()
	// RP: a=1 (g3), b=0.5 (g3), c=0.05 (g2), d=0.005 (g1), e=0.001 (g1).
	want := []int{0, 2, 1, 2}
	for g, n := range want {
		if hist[g] != n {
			t.Errorf("hist[%d] = %d, want %d (full %v)", g, hist[g], n, hist)
		}
	}
}

func TestTop(t *testing.T) {
	rk := NewRanking()
	rk.Observe("/b", 10)
	rk.Observe("/a", 10)
	rk.Observe("/c", 30)
	rk.Observe("/d", 1)
	got := rk.Top(3)
	want := []string{"/c", "/a", "/b"}
	if len(got) != 3 {
		t.Fatalf("Top(3) returned %d items", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Top[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if got := rk.Top(100); len(got) != 4 {
		t.Errorf("Top(100) returned %d items, want 4", len(got))
	}
}

func TestGradesMap(t *testing.T) {
	rk := NewRanking()
	rk.Observe("/a", 10000)
	rk.Observe("/b", 1)
	m := rk.Grades()
	if len(m) != 2 || m["/a"] != 3 || m["/b"] != 0 {
		t.Errorf("Grades = %v", m)
	}
}

func TestFixedGrades(t *testing.T) {
	var g Grader = FixedGrades{"/a": 3, "/b": 1}
	if g.GradeOf("/a") != 3 || g.GradeOf("/b") != 1 || g.GradeOf("/zzz") != 0 {
		t.Error("FixedGrades lookup mismatch")
	}
}

// Property: grades are monotone in access count — a URL with at least as
// many accesses never has a lower grade.
func TestGradeMonotoneProperty(t *testing.T) {
	f := func(counts []uint16) bool {
		rk := NewRanking()
		for i, c := range counts {
			rk.Observe(string(rune('a'+i%26))+string(rune('0'+i%10)), int64(c)+1)
		}
		urls := rk.Top(rk.Len())
		for i := 1; i < len(urls); i++ {
			hi, lo := urls[i-1], urls[i]
			if rk.GradeOf(hi) < rk.GradeOf(lo) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: GradeOfRP is monotone non-decreasing in rp and always in range.
func TestGradeOfRPProperty(t *testing.T) {
	rk := NewRanking()
	rng := rand.New(rand.NewSource(1))
	prevRP, prevG := 0.0, Grade(0)
	rps := make([]float64, 500)
	for i := range rps {
		rps[i] = rng.Float64()
	}
	rps = append(rps, 0, 1, 0.1, 0.01, 0.001)
	sortFloats(rps)
	for _, rp := range rps {
		g := rk.GradeOfRP(rp)
		if g < 0 || g > MaxGrade {
			t.Fatalf("GradeOfRP(%v) = %v out of range", rp, g)
		}
		if rp >= prevRP && g < prevG {
			t.Fatalf("grade not monotone: rp %v -> %v but %v -> %v", prevRP, prevG, rp, g)
		}
		prevRP, prevG = rp, g
	}
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
