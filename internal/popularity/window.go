package popularity

import (
	"fmt"
	"time"
)

// WindowedRanking ranks URL popularity over a sliding window of day
// buckets — the paper's "popularities of different URLs can be ranked
// by a server dynamically from time to time", with stale days aging
// out. The zero value is not usable; construct with NewWindowedRanking.
//
// Observations are bucketed by day; Advance drops buckets older than
// the window. Grades and relative popularity are computed over the
// live buckets only.
type WindowedRanking struct {
	days    int
	buckets []map[string]int64 // ring, one per day
	starts  []time.Time        // bucket day starts; zero time = empty
	head    int                // index of the newest bucket
	// agg caches the aggregated view; rebuilt lazily.
	agg   *Ranking
	dirty bool
}

// NewWindowedRanking returns a ranking over the trailing `days` days.
// It panics if days < 1: a windowless ranking is a programmer error
// (use Ranking).
func NewWindowedRanking(days int) *WindowedRanking {
	if days < 1 {
		panic(fmt.Sprintf("popularity: window of %d days", days))
	}
	return &WindowedRanking{
		days:    days,
		buckets: make([]map[string]int64, days),
		starts:  make([]time.Time, days),
	}
}

// dayStart truncates t to its UTC day.
func dayStart(t time.Time) time.Time {
	u := t.UTC()
	return time.Date(u.Year(), u.Month(), u.Day(), 0, 0, 0, 0, time.UTC)
}

// Observe records one access to url at time t. Observations may arrive
// slightly out of order; anything older than the live window is
// dropped.
func (wr *WindowedRanking) Observe(url string, t time.Time) {
	day := dayStart(t)
	wr.dirty = true
	// Find or open the bucket for this day.
	for i := range wr.buckets {
		if wr.starts[i].Equal(day) {
			wr.buckets[i][url]++
			return
		}
	}
	// New day: advance the ring if this day is newer than the head.
	if !wr.starts[wr.head].IsZero() && day.Before(wr.starts[wr.head]) {
		// Older than every live bucket: outside the window, drop.
		return
	}
	wr.head = (wr.head + 1) % wr.days
	wr.buckets[wr.head] = map[string]int64{url: 1}
	wr.starts[wr.head] = day
	wr.expire(day)
}

// Advance drops buckets older than the window relative to now; callers
// invoke it on day boundaries (Observe does so implicitly when a new
// day opens).
func (wr *WindowedRanking) Advance(now time.Time) {
	wr.expire(dayStart(now))
	wr.dirty = true
}

func (wr *WindowedRanking) expire(newest time.Time) {
	cutoff := newest.AddDate(0, 0, -(wr.days - 1))
	for i := range wr.buckets {
		if !wr.starts[i].IsZero() && wr.starts[i].Before(cutoff) {
			wr.buckets[i] = nil
			wr.starts[i] = time.Time{}
		}
	}
}

// aggregate rebuilds the flat view.
func (wr *WindowedRanking) aggregate() *Ranking {
	if !wr.dirty && wr.agg != nil {
		return wr.agg
	}
	agg := NewRanking()
	for i, b := range wr.buckets {
		if wr.starts[i].IsZero() {
			continue
		}
		for u, c := range b {
			agg.Observe(u, c)
		}
	}
	wr.agg = agg
	wr.dirty = false
	return agg
}

// GradeOf implements Grader over the live window.
func (wr *WindowedRanking) GradeOf(url string) Grade { return wr.aggregate().GradeOf(url) }

// Relative returns RP(url) over the live window.
func (wr *WindowedRanking) Relative(url string) float64 { return wr.aggregate().Relative(url) }

// Count returns the accesses to url within the window.
func (wr *WindowedRanking) Count(url string) int64 { return wr.aggregate().Count(url) }

// Len returns the number of distinct URLs in the window.
func (wr *WindowedRanking) Len() int { return wr.aggregate().Len() }

// Top returns the n most popular URLs of the window.
func (wr *WindowedRanking) Top(n int) []string { return wr.aggregate().Top(n) }

// Snapshot returns an independent flat Ranking of the window, suitable
// for handing to a model build.
func (wr *WindowedRanking) Snapshot() *Ranking {
	src := wr.aggregate()
	out := NewRanking()
	for _, u := range src.Top(src.Len()) {
		out.Observe(u, src.Count(u))
	}
	return out
}

var _ Grader = (*WindowedRanking)(nil)
