package popularity

import (
	"testing"
	"time"
)

var wepoch = time.Date(1995, 7, 1, 0, 0, 0, 0, time.UTC)

func onDay(d int) time.Time { return wepoch.AddDate(0, 0, d).Add(6 * time.Hour) }

func TestWindowedBasics(t *testing.T) {
	wr := NewWindowedRanking(3)
	for i := 0; i < 100; i++ {
		wr.Observe("/hot", onDay(0))
	}
	wr.Observe("/cold", onDay(0))
	if wr.Count("/hot") != 100 || wr.Count("/cold") != 1 {
		t.Errorf("counts = %d, %d", wr.Count("/hot"), wr.Count("/cold"))
	}
	if wr.GradeOf("/hot") != 3 {
		t.Errorf("grade(/hot) = %v", wr.GradeOf("/hot"))
	}
	if wr.Relative("/cold") != 0.01 {
		t.Errorf("RP(/cold) = %v", wr.Relative("/cold"))
	}
	if wr.Len() != 2 || wr.Top(1)[0] != "/hot" {
		t.Errorf("Len=%d Top=%v", wr.Len(), wr.Top(1))
	}
}

func TestWindowedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWindowedRanking(0) did not panic")
		}
	}()
	NewWindowedRanking(0)
}

func TestWindowedExpiry(t *testing.T) {
	wr := NewWindowedRanking(2) // keep today and yesterday
	wr.Observe("/old", onDay(0))
	wr.Observe("/mid", onDay(1))
	wr.Observe("/new", onDay(2)) // day 0 falls out
	if wr.Count("/old") != 0 {
		t.Errorf("expired URL still counted: %d", wr.Count("/old"))
	}
	if wr.Count("/mid") != 1 || wr.Count("/new") != 1 {
		t.Error("live buckets lost")
	}
	// Advance without observations ages the rest out.
	wr.Advance(onDay(5))
	if wr.Len() != 0 {
		t.Errorf("Len after advance = %d", wr.Len())
	}
}

func TestWindowedLateObservationsDropped(t *testing.T) {
	wr := NewWindowedRanking(2)
	wr.Observe("/a", onDay(5))
	wr.Observe("/late", onDay(1)) // far older than the window: dropped
	if wr.Count("/late") != 0 {
		t.Error("stale observation counted")
	}
	// Same-day late arrivals still land in their bucket.
	wr.Observe("/a", onDay(5))
	if wr.Count("/a") != 2 {
		t.Errorf("count = %d", wr.Count("/a"))
	}
}

func TestWindowedMultiDayAggregation(t *testing.T) {
	wr := NewWindowedRanking(7)
	for d := 0; d < 5; d++ {
		for i := 0; i < 10; i++ {
			wr.Observe("/daily", onDay(d))
		}
	}
	if wr.Count("/daily") != 50 {
		t.Errorf("aggregated count = %d", wr.Count("/daily"))
	}
}

func TestWindowedSnapshotIndependent(t *testing.T) {
	wr := NewWindowedRanking(3)
	wr.Observe("/a", onDay(0))
	snap := wr.Snapshot()
	wr.Observe("/a", onDay(0))
	if snap.Count("/a") != 1 {
		t.Errorf("snapshot mutated: %d", snap.Count("/a"))
	}
	if wr.Count("/a") != 2 {
		t.Errorf("window count = %d", wr.Count("/a"))
	}
}

func TestWindowedAsGrader(t *testing.T) {
	var g Grader = NewWindowedRanking(2)
	if g.GradeOf("/never") != 0 {
		t.Error("unobserved URL grade != 0")
	}
}
