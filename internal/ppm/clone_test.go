package ppm

import (
	"reflect"
	"testing"
)

func TestCloneDeltaMergeEquivalence(t *testing.T) {
	base := [][]string{{"/a", "/b", "/c"}, {"/a", "/b", "/d"}}
	delta := [][]string{{"/a", "/b", "/c"}, {"/e", "/f"}}

	live := New(Config{Height: 3})
	for _, s := range base {
		live.TrainSequence(s)
	}
	live.SetUsageRecording(false)
	before := live.Tree().String()

	shard := live.NewShard()
	for _, s := range delta {
		shard.TrainSequence(s)
	}
	merged := live.Clone().(*Model)
	merged.MergeShard(shard)

	retrain := New(Config{Height: 3})
	for _, s := range append(append([][]string{}, base...), delta...) {
		retrain.TrainSequence(s)
	}

	for _, ctx := range [][]string{{"/a"}, {"/a", "/b"}, {"/e"}} {
		if got, want := merged.Predict(ctx), retrain.Predict(ctx); !reflect.DeepEqual(got, want) {
			t.Errorf("Predict(%v): merged %+v, retrain %+v", ctx, got, want)
		}
	}
	if got := live.Tree().String(); got != before {
		t.Errorf("delta merge mutated the live model:\n%s\nvs\n%s", got, before)
	}
}
