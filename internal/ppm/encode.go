package ppm

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"pbppm/internal/markov"
)

// wireModel is the gob image of a standard PPM model.
type wireModel struct {
	Cfg  Config
	Tree []byte
}

// Encode persists the trained model so a server can restart without
// retraining.
func (m *Model) Encode(w io.Writer) error {
	var treeBuf bytes.Buffer
	if err := m.tree.Encode(&treeBuf); err != nil {
		return fmt.Errorf("ppm: encoding model tree: %w", err)
	}
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(wireModel{Cfg: m.cfg, Tree: treeBuf.Bytes()}); err != nil {
		return fmt.Errorf("ppm: encoding model: %w", err)
	}
	return bw.Flush()
}

// DecodeModel reads a model written by Encode.
func DecodeModel(r io.Reader) (*Model, error) {
	var img wireModel
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&img); err != nil {
		return nil, fmt.Errorf("ppm: decoding model: %w", err)
	}
	tree, err := markov.DecodeTree(bytes.NewReader(img.Tree))
	if err != nil {
		return nil, fmt.Errorf("ppm: decoding model tree: %w", err)
	}
	m := New(img.Cfg)
	m.tree = tree
	return m, nil
}
