package ppm

import (
	"bytes"
	"reflect"
	"testing"
)

func TestModelEncodeDecode(t *testing.T) {
	m := New(Config{Height: 3, Threshold: 0.3})
	for i := 0; i < 4; i++ {
		m.TrainSequence([]string{"a", "b", "c"})
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeModel(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Name() != "3-PPM" || got.NodeCount() != m.NodeCount() {
		t.Errorf("decoded model: %s, %d nodes", got.Name(), got.NodeCount())
	}
	if !reflect.DeepEqual(got.Predict([]string{"a", "b"}), m.Predict([]string{"a", "b"})) {
		t.Error("predictions differ after round trip")
	}
	got.TrainSequence([]string{"a", "b"})
	if got.NodeCount() != m.NodeCount() {
		t.Error("decoded model structure diverged unexpectedly")
	}
}

func TestDecodeModelError(t *testing.T) {
	if _, err := DecodeModel(bytes.NewReader([]byte("x"))); err == nil {
		t.Error("junk accepted")
	}
}
