// Package ppm implements the standard Prediction-by-Partial-Match model
// reviewed in §3.2 of the paper: a Markov prediction tree in which every
// position of every training session roots a branch, and each branch is
// capped at a fixed height. Height 3 reproduces the paper's practical
// "3-PPM" configuration; an unbounded height reproduces the accuracy
// upper bound used in the comparative evaluation.
package ppm

import (
	"fmt"

	"pbppm/internal/markov"
)

// Config parameterizes the standard model.
type Config struct {
	// Height caps the branch length (number of nodes per branch).
	// Height <= 0 means unbounded, the paper's upper-bound setup.
	Height int
	// Threshold is the minimum conditional probability for a prefetch
	// candidate; zero selects the paper's 0.25.
	Threshold float64
	// BlendOrders switches prediction from the paper's longest-match
	// method to a variable-order blend: candidates are collected from
	// every matching context order, each weighted by the matched
	// context's evidence mass, and a URL keeps its highest-confidence
	// estimate. The paper lists "variable orders of Markov models" as
	// unexplored territory; this implements that extension.
	BlendOrders bool
}

// DefaultThreshold is the prediction probability threshold used for all
// models in the paper (§4.1).
const DefaultThreshold = 0.25

// NoThreshold is the sentinel for a genuine zero probability threshold
// (every candidate passes). A zero Config.Threshold keeps selecting
// DefaultThreshold — the zero Config value must stay the paper's setup
// — so zero itself is expressed as any negative value.
const NoThreshold = -1

// ThresholdOrDefault resolves a configured prediction threshold the
// same way for all three models (ppm, lrs, popularity-based): zero
// selects DefaultThreshold, negative (NoThreshold) selects a genuine
// zero, positive values pass through.
func ThresholdOrDefault(t float64) float64 {
	switch {
	case t == 0:
		return DefaultThreshold
	case t < 0:
		return 0
	default:
		return t
	}
}

func (c Config) threshold() float64 { return ThresholdOrDefault(c.Threshold) }

// Model is a standard PPM predictor.
type Model struct {
	cfg  Config
	tree *markov.Tree
}

var _ markov.Predictor = (*Model)(nil)
var _ markov.BufferedPredictor = (*Model)(nil)
var _ markov.Freezer = (*Model)(nil)
var _ markov.UtilizationReporter = (*Model)(nil)
var _ markov.UsageRecorder = (*Model)(nil)
var _ markov.ShardedTrainer = (*Model)(nil)
var _ markov.IncrementalTrainer = (*Model)(nil)

// New returns an empty standard PPM model.
func New(cfg Config) *Model {
	return &Model{cfg: cfg, tree: markov.NewTree()}
}

// Name identifies the model, including its height configuration, e.g.
// "3-PPM" or "PPM" for the unbounded variant.
func (m *Model) Name() string {
	if m.cfg.Height > 0 {
		return fmt.Sprintf("%d-PPM", m.cfg.Height)
	}
	return "PPM"
}

// TrainSequence inserts every suffix of seq as a branch capped at the
// configured height, so that any position can serve as a prediction
// context.
func (m *Model) TrainSequence(seq []string) {
	for i := range seq {
		m.tree.Insert(seq[i:], m.cfg.Height, 1)
	}
}

// Predict finds the deepest node matching the longest suffix of the
// context and returns its children above the probability threshold.
// The matched path is marked used for the utilization metric.
func (m *Model) Predict(context []string) []markov.Prediction {
	return m.PredictInto(context, nil)
}

// PredictInto is Predict writing into buf per the
// markov.BufferedPredictor buffer-ownership contract.
func (m *Model) PredictInto(context []string, buf []markov.Prediction) []markov.Prediction {
	ctx := context
	if m.cfg.Height > 0 && len(ctx) >= m.cfg.Height {
		// With a height-H tree, contexts longer than H-1 can never
		// match and still leave room for a predicted child.
		ctx = ctx[len(ctx)-(m.cfg.Height-1):]
	}
	if m.cfg.BlendOrders {
		return append(buf[:0], m.predictBlended(ctx)...)
	}
	n, order := m.tree.LongestMatch(ctx)
	if n == nil {
		return buf[:0]
	}
	m.tree.MarkPath(ctx[len(ctx)-order:])
	return m.tree.PredictFromInto(n, m.cfg.threshold(), order, buf)
}

// Freeze returns the immutable arena-backed snapshot of the trained
// model: identical predictions, no per-node GC load, no allocations on
// the longest-match serving path. The blended variant keeps its
// per-call blend state, so it freezes to a blended frozen model that is
// immutable and arena-backed but not allocation-free.
func (m *Model) Freeze() markov.Predictor {
	arena := m.tree.Freeze()
	if m.cfg.BlendOrders {
		return &frozenBlended{name: m.Name(), arena: arena, threshold: m.cfg.threshold(), height: m.cfg.Height}
	}
	return markov.NewFrozenTree(arena, m.Name(), m.cfg.threshold(), m.cfg.Height)
}

// frozenBlended is the arena-backed snapshot of a BlendOrders model:
// the blend runs over the arena with the exact arithmetic of
// predictBlended (minus usage marking, which frozen models do not
// record).
type frozenBlended struct {
	name      string
	arena     *markov.Arena
	threshold float64
	height    int
}

var _ markov.BufferedPredictor = (*frozenBlended)(nil)
var _ markov.ArenaHolder = (*frozenBlended)(nil)

func (f *frozenBlended) Name() string { return f.name }

func (f *frozenBlended) TrainSequence([]string) {
	panic("ppm: TrainSequence on a frozen model; train the live model and re-freeze")
}

func (f *frozenBlended) NodeCount() int { return f.arena.NodeCount() }

// Arena exposes the snapshot for stats and persistence.
func (f *frozenBlended) Arena() *markov.Arena { return f.arena }

func (f *frozenBlended) Predict(context []string) []markov.Prediction {
	return f.PredictInto(context, nil)
}

func (f *frozenBlended) PredictInto(context []string, buf []markov.Prediction) []markov.Prediction {
	buf = buf[:0]
	ctx := context
	if f.height > 0 && len(ctx) >= f.height {
		ctx = ctx[len(ctx)-(f.height-1):]
	}
	best := make(map[string]markov.Prediction)
	for i := 0; i < len(ctx); i++ {
		n, ok := f.arena.Match(ctx[i:])
		if !ok || f.arena.Count(n) == 0 {
			continue
		}
		order := len(ctx) - i
		total := f.arena.Count(n)
		confidence := 1 - 1/(1+float64(total))
		f.arena.EachChild(n, func(child uint32, url string) bool {
			p := markov.Prediction{
				URL:         url,
				Probability: float64(f.arena.Count(child)) / float64(total) * confidence,
				Order:       order,
			}
			if b, ok := best[url]; !ok || p.Probability > b.Probability {
				best[url] = p
			}
			return true
		})
	}
	for _, p := range best {
		if p.Probability >= f.threshold {
			buf = append(buf, p)
		}
	}
	if len(buf) == 0 {
		return buf
	}
	markov.SortPredictions(buf)
	return buf
}

// predictBlended combines candidates across every matching order. A
// higher-order context is sparser but more specific; weighting each
// order's conditional probabilities by 1 - 1/(1+count) (an escape-style
// confidence in the context's evidence) lets confident deep contexts
// dominate while order-1 statistics fill in.
//
// Candidates are collected without usage marks and only the ones that
// survive the final blend threshold are marked: the intermediate
// per-order candidate sets are scratch state, and marking them would
// inflate the Figure-2 path-utilization metric with URLs that were
// never actually predicted.
func (m *Model) predictBlended(ctx []string) []markov.Prediction {
	type candidate struct {
		pred markov.Prediction
		node *markov.Node
	}
	best := make(map[string]candidate)
	for i := 0; i < len(ctx); i++ {
		n := m.tree.Match(ctx[i:])
		if n == nil || n.Count == 0 {
			continue
		}
		order := len(ctx) - i
		m.tree.MarkPath(ctx[i:])
		confidence := 1 - 1/(1+float64(n.Count))
		m.tree.EachChild(n, func(url string, c *markov.Node) bool {
			p := markov.Prediction{
				URL:         url,
				Probability: float64(c.Count) / float64(n.Count) * confidence,
				Order:       order,
			}
			if b, ok := best[url]; !ok || p.Probability > b.pred.Probability {
				best[url] = candidate{pred: p, node: c}
			}
			return true
		})
	}
	thr := m.cfg.threshold()
	out := make([]markov.Prediction, 0, len(best))
	for _, c := range best {
		if c.pred.Probability >= thr {
			m.tree.MarkPredicted(c.node)
			out = append(out, c.pred)
		}
	}
	if len(out) == 0 {
		return nil
	}
	markov.SortPredictions(out)
	return out
}

// NewShard returns an empty model with the same configuration, for
// markov.TrainAllParallel.
func (m *Model) NewShard() markov.Predictor { return New(m.cfg) }

// MergeShard folds a shard trained by NewShard back into the model.
// Counts are additive, so shard-trained and serially-trained models are
// equivalent.
func (m *Model) MergeShard(shard markov.Predictor) {
	m.tree.Merge(shard.(*Model).tree)
}

// Clone returns a deep copy of the model for incremental maintenance:
// merging a delta shard into the clone never mutates the receiver.
func (m *Model) Clone() markov.Predictor {
	return &Model{cfg: m.cfg, tree: m.tree.Clone()}
}

// NodeCount reports the storage requirement in URL nodes.
func (m *Model) NodeCount() int { return m.tree.NodeCount() }

// Utilization reports the fraction of stored root-to-leaf paths used by
// predictions since the last ResetUsage.
func (m *Model) Utilization() float64 { return m.tree.Utilization() }

// ResetUsage clears utilization marks.
func (m *Model) ResetUsage() { m.tree.ResetUsage() }

// SetUsageRecording attaches or detaches prediction-time usage marking;
// serving paths detach it so Predict on a published model is read-only.
func (m *Model) SetUsageRecording(on bool) { m.tree.SetUsageRecording(on) }

// UsageRecording reports whether usage marking is enabled.
func (m *Model) UsageRecording() bool { return m.tree.UsageRecording() }

// Tree exposes the underlying prediction tree for diagnostics and
// persistence.
func (m *Model) Tree() *markov.Tree { return m.tree }
