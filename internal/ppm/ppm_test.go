package ppm

import (
	"testing"

	"pbppm/internal/markov"
)

func TestName(t *testing.T) {
	if got := New(Config{Height: 3}).Name(); got != "3-PPM" {
		t.Errorf("Name = %q", got)
	}
	if got := New(Config{}).Name(); got != "PPM" {
		t.Errorf("Name = %q", got)
	}
}

func TestTrainInsertsAllSuffixes(t *testing.T) {
	m := New(Config{})
	m.TrainSequence([]string{"a", "b", "c"})
	// Suffixes: abc, bc, c -> prefix set {a, ab, abc, b, bc, c} = 6 nodes.
	if got := m.NodeCount(); got != 6 {
		t.Errorf("NodeCount = %d, want 6", got)
	}
	for _, path := range [][]string{{"a", "b", "c"}, {"b", "c"}, {"c"}} {
		if m.Tree().Match(path) == nil {
			t.Errorf("path %v missing", path)
		}
	}
}

func TestFixedHeightCapsBranches(t *testing.T) {
	m := New(Config{Height: 2})
	m.TrainSequence([]string{"a", "b", "c", "d"})
	if m.Tree().Match([]string{"a", "b", "c"}) != nil {
		t.Error("height-2 tree contains a depth-3 path")
	}
	// Suffix branches capped at 2: {a,ab,b,bc,c,cd,d} = 7 nodes.
	if got := m.NodeCount(); got != 7 {
		t.Errorf("NodeCount = %d, want 7", got)
	}
}

func TestPredictLongestMatch(t *testing.T) {
	m := New(Config{})
	// After "a b", "c" follows twice; after just "b", "x" also occurs.
	m.TrainSequence([]string{"a", "b", "c"})
	m.TrainSequence([]string{"a", "b", "c"})
	m.TrainSequence([]string{"z", "b", "x"})

	ps := m.Predict([]string{"a", "b"})
	if len(ps) != 1 || ps[0].URL != "c" || ps[0].Order != 2 {
		t.Fatalf("Predict(a,b) = %+v, want c at order 2", ps)
	}
	// Context (y,b) cannot match at order 2; falls back to order 1
	// where b is followed by c twice and x once.
	ps = m.Predict([]string{"y", "b"})
	if len(ps) != 2 || ps[0].URL != "c" || ps[0].Order != 1 {
		t.Fatalf("Predict(y,b) = %+v", ps)
	}
	if got := ps[0].Probability; got < 0.66 || got > 0.67 {
		t.Errorf("P(c|b) = %v, want 2/3", got)
	}
}

func TestPredictThreshold(t *testing.T) {
	m := New(Config{Threshold: 0.5})
	m.TrainSequence([]string{"a", "b"})
	m.TrainSequence([]string{"a", "b"})
	m.TrainSequence([]string{"a", "c"})
	m.TrainSequence([]string{"a", "d"})
	ps := m.Predict([]string{"a"})
	if len(ps) != 1 || ps[0].URL != "b" {
		t.Errorf("Predict = %+v, want only b (P=0.5)", ps)
	}
}

func TestPredictDefaultThreshold(t *testing.T) {
	m := New(Config{})
	for i := 0; i < 3; i++ {
		m.TrainSequence([]string{"a", "b"})
	}
	m.TrainSequence([]string{"a", "c"}) // P(c|a)=0.25, at threshold
	ps := m.Predict([]string{"a"})
	if len(ps) != 2 {
		t.Errorf("Predict = %+v, want b and c (0.25 passes >=)", ps)
	}
}

func TestPredictNoMatch(t *testing.T) {
	m := New(Config{})
	m.TrainSequence([]string{"a", "b"})
	if ps := m.Predict([]string{"unknown"}); ps != nil {
		t.Errorf("Predict(unknown) = %+v, want nil", ps)
	}
	if ps := m.Predict(nil); ps != nil {
		t.Errorf("Predict(nil) = %+v, want nil", ps)
	}
}

func TestPredictLongContextWithFixedHeight(t *testing.T) {
	m := New(Config{Height: 3})
	m.TrainSequence([]string{"a", "b", "c", "d", "e"})
	// Context longer than height-1 must still match via its suffix.
	ps := m.Predict([]string{"a", "b", "c", "d"})
	if len(ps) != 1 || ps[0].URL != "e" {
		t.Fatalf("Predict = %+v, want e", ps)
	}
	if ps[0].Order != 2 {
		t.Errorf("order = %d, want 2 (context clipped to height-1)", ps[0].Order)
	}
}

func TestUtilization(t *testing.T) {
	m := New(Config{})
	m.TrainSequence([]string{"a", "b"})
	m.TrainSequence([]string{"x", "y"})
	if got := m.Utilization(); got != 0 {
		t.Errorf("fresh utilization = %v", got)
	}
	m.Predict([]string{"a"})
	got := m.Utilization()
	// Leaves: a>b, b, x>y, y. Prediction marked a>b (predicted child b is
	// that branch's leaf) and the standalone b leaf stays untouched...
	// b-as-root is a leaf node trained from the suffix; it is not marked.
	if got <= 0 || got >= 1 {
		t.Errorf("utilization = %v, want in (0,1)", got)
	}
	m.ResetUsage()
	if m.Utilization() != 0 {
		t.Error("ResetUsage did not clear marks")
	}
}

func TestPredictorInterface(t *testing.T) {
	var p markov.Predictor = New(Config{Height: 3})
	markov.TrainAll(p, [][]string{{"a", "b"}, {"a", "b"}})
	if got := p.Predict([]string{"a"}); len(got) != 1 || got[0].URL != "b" {
		t.Errorf("interface Predict = %+v", got)
	}
	if p.NodeCount() != 3 {
		t.Errorf("NodeCount = %d, want 3", p.NodeCount())
	}
}

func TestBlendedOrdersPredict(t *testing.T) {
	m := New(Config{BlendOrders: true, Threshold: 0.2})
	// Order-2 context (a,b) strongly suggests c; order-1 context b also
	// sees x from elsewhere.
	for i := 0; i < 6; i++ {
		m.TrainSequence([]string{"a", "b", "c"})
	}
	for i := 0; i < 4; i++ {
		m.TrainSequence([]string{"z", "b", "x"})
	}
	ps := m.Predict([]string{"a", "b"})
	if len(ps) == 0 {
		t.Fatal("no blended predictions")
	}
	if ps[0].URL != "c" {
		t.Errorf("top prediction = %+v, want c", ps[0])
	}
	// The blend surfaces x too (order-1 evidence), which the pure
	// longest-match method would suppress.
	found := false
	for _, p := range ps {
		if p.URL == "x" {
			found = true
			if p.Order != 1 {
				t.Errorf("x predicted at order %d", p.Order)
			}
		}
	}
	if !found {
		t.Errorf("order-1 candidate x missing from blend: %+v", ps)
	}
	// The longest-match model on the same data predicts only c.
	lm := New(Config{Threshold: 0.2})
	for i := 0; i < 6; i++ {
		lm.TrainSequence([]string{"a", "b", "c"})
	}
	for i := 0; i < 4; i++ {
		lm.TrainSequence([]string{"z", "b", "x"})
	}
	if got := lm.Predict([]string{"a", "b"}); len(got) != 1 || got[0].URL != "c" {
		t.Errorf("longest match = %+v", got)
	}
}

func TestBlendedConfidenceDampsSingletons(t *testing.T) {
	m := New(Config{BlendOrders: true, Threshold: 0.6})
	// A singleton deep context predicts its continuation with raw
	// probability 1.0, but confidence 1-1/2 = 0.5 keeps it under a 0.6
	// threshold.
	m.TrainSequence([]string{"q", "r", "s"})
	if got := m.Predict([]string{"q", "r"}); len(got) != 0 {
		t.Errorf("singleton deep context predicted: %+v", got)
	}
	// With more evidence the same context clears the bar.
	for i := 0; i < 9; i++ {
		m.TrainSequence([]string{"q", "r", "s"})
	}
	if got := m.Predict([]string{"q", "r"}); len(got) == 0 || got[0].URL != "s" {
		t.Errorf("evidence did not lift confidence: %+v", got)
	}
}

func TestBlendedNoMatch(t *testing.T) {
	m := New(Config{BlendOrders: true})
	m.TrainSequence([]string{"a", "b"})
	if got := m.Predict([]string{"zzz"}); got != nil {
		t.Errorf("Predict = %+v", got)
	}
}

func TestThresholdOrDefault(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, DefaultThreshold}, // zero Config keeps the paper's setup
		{NoThreshold, 0},      // sentinel: genuinely no threshold
		{-3.5, 0},             // any negative means no threshold
		{0.4, 0.4},
		{1, 1},
	}
	for _, c := range cases {
		if got := ThresholdOrDefault(c.in); got != c.want {
			t.Errorf("ThresholdOrDefault(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNoThresholdPredictsEverything(t *testing.T) {
	m := New(Config{Threshold: NoThreshold})
	for i := 0; i < 9; i++ {
		m.TrainSequence([]string{"a", "b"})
	}
	m.TrainSequence([]string{"a", "c"}) // P(c|a)=0.1, below the default 0.25
	ps := m.Predict([]string{"a"})
	if len(ps) != 2 {
		t.Errorf("Predict with NoThreshold = %+v, want both b and c", ps)
	}
}

// TestBlendedUtilizationMatchesLongestMatch is the regression test for
// the utilization-inflation bug: blended prediction used to mark every
// child of every matched context as used, before the blend threshold
// had filtered them. On this fixed tree the below-threshold candidate
// a>x must stay unmarked, so blended and longest-match prediction —
// which predict exactly the same single URL — must report the same
// path utilization. The old marking made blended report double.
func TestBlendedUtilizationMatchesLongestMatch(t *testing.T) {
	train := func(m *Model) {
		for i := 0; i < 7; i++ {
			m.TrainSequence([]string{"a", "b"})
		}
		m.TrainSequence([]string{"a", "x"}) // P(x|a)=1/8, below 0.25
	}
	longest := New(Config{})
	train(longest)
	blended := New(Config{BlendOrders: true})
	train(blended)

	if ps := longest.Predict([]string{"a"}); len(ps) != 1 || ps[0].URL != "b" {
		t.Fatalf("longest-match Predict = %+v, want only b", ps)
	}
	if ps := blended.Predict([]string{"a"}); len(ps) != 1 || ps[0].URL != "b" {
		t.Fatalf("blended Predict = %+v, want only b", ps)
	}
	got, want := blended.Utilization(), longest.Utilization()
	if want <= 0 {
		t.Fatalf("longest-match utilization = %v, want > 0", want)
	}
	if got != want {
		t.Errorf("blended Utilization = %v, longest-match = %v: filtered-out candidates were marked as used", got, want)
	}
}

// TestShardedTrainingEquivalence drives NewShard/MergeShard directly
// (TrainAllParallel may legitimately fall back to serial on a
// single-CPU machine) and checks the merged model equals the serially
// trained one.
func TestShardedTrainingEquivalence(t *testing.T) {
	var seqs [][]string
	urls := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 60; i++ {
		s := make([]string, i%4+1)
		for j := range s {
			s[j] = urls[(i*7+j*3)%len(urls)]
		}
		seqs = append(seqs, s)
	}
	serial := New(Config{Height: 3})
	markov.TrainAll(serial, seqs)

	sharded := New(Config{Height: 3})
	shards := []markov.Predictor{sharded.NewShard(), sharded.NewShard(), sharded.NewShard()}
	for i, s := range seqs {
		shards[i%len(shards)].TrainSequence(s)
	}
	for _, sh := range shards {
		sharded.MergeShard(sh)
	}

	if got, want := sharded.NodeCount(), serial.NodeCount(); got != want {
		t.Fatalf("NodeCount = %d, serial %d", got, want)
	}
	for _, ctx := range [][]string{{"a"}, {"b"}, {"c", "d"}, {"e", "a"}, {"d", "e", "a"}} {
		got, want := sharded.Predict(ctx), serial.Predict(ctx)
		if len(got) != len(want) {
			t.Fatalf("ctx %v: %+v vs serial %+v", ctx, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ctx %v: %+v vs serial %+v", ctx, got, want)
			}
		}
	}
}
