package ppm

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"pbppm/internal/markov"
)

// FrozenBlendedKind identifies the frozen BlendOrders snapshot in
// snapshot envelopes. The non-blended variant freezes to the generic
// markov.FrozenTree and travels under markov.FrozenTreeKind.
const FrozenBlendedKind = "ppm/frozen-blended"

// wireFrozenBlended is the gob image of a frozenBlended model; the
// arena travels verbatim and is re-validated on decode.
type wireFrozenBlended struct {
	Name      string
	Threshold float64
	Height    int
	Arena     []byte
}

var _ markov.FrozenEncoder = (*frozenBlended)(nil)

// FrozenKind implements markov.FrozenEncoder.
func (f *frozenBlended) FrozenKind() string { return FrozenBlendedKind }

// EncodeFrozen implements markov.FrozenEncoder.
func (f *frozenBlended) EncodeFrozen(w io.Writer) error {
	bw := bufio.NewWriter(w)
	img := wireFrozenBlended{
		Name:      f.name,
		Threshold: f.threshold,
		Height:    f.height,
		Arena:     f.arena.Bytes(),
	}
	if err := gob.NewEncoder(bw).Encode(img); err != nil {
		return fmt.Errorf("ppm: encoding frozen blended model: %w", err)
	}
	return bw.Flush()
}

func init() {
	markov.RegisterFrozenDecoder(FrozenBlendedKind, func(r io.Reader) (markov.Predictor, error) {
		var img wireFrozenBlended
		if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&img); err != nil {
			return nil, fmt.Errorf("ppm: decoding frozen blended model: %w", err)
		}
		a, err := markov.ArenaFromBytes(img.Arena)
		if err != nil {
			return nil, fmt.Errorf("ppm: decoding frozen blended model: %w", err)
		}
		return &frozenBlended{name: img.Name, arena: a, threshold: img.Threshold, height: img.Height}, nil
	})
}
