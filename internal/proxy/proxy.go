// Package proxy implements a prefetching HTTP proxy cache — the
// deployable counterpart of the paper's §5 server↔proxy evaluation. The
// proxy sits between browsers and an origin server, holds a large
// cache (the paper's 16 GB disk cache, LRU by default), forwards the
// end client's identity so the origin can keep per-user prediction
// contexts, and absorbs the origin's X-Prefetch hints by pulling the
// hinted documents into its own cache ("Web servers regularly push
// their most popular documents to Web proxies").
package proxy

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"pbppm/internal/cache"
	"pbppm/internal/markov"
	"pbppm/internal/server"
)

// Config parameterizes the proxy.
type Config struct {
	// Origin is the upstream server base URL, e.g. "http://origin:8080";
	// required.
	Origin string
	// CacheBytes sizes the proxy cache; zero selects the paper's 16 GB.
	CacheBytes int64
	// Cache overrides the replacement policy; nil selects LRU.
	Cache cache.Policy
	// MaxPrefetchBytes skips hinted documents larger than this; zero
	// selects 30 KB.
	MaxPrefetchBytes int64
	// HTTPClient overrides the upstream transport; nil selects
	// http.DefaultClient.
	HTTPClient *http.Client
	// FollowHints disables hint absorption when false is desired; the
	// zero value (false) means hints ARE followed — set NoFollowHints
	// to opt out.
	NoFollowHints bool
	// ForwardHints passes the origin's X-Prefetch header through to the
	// downstream client, enabling two-level prefetching: the proxy
	// absorbs hints into its shared cache while browsers also prefetch
	// into their own.
	ForwardHints bool
}

// Stats is a snapshot of proxy counters.
type Stats struct {
	Requests      int64
	CacheHits     int64
	PrefetchHits  int64
	Misses        int64
	Prefetched    int64
	PrefetchError int64
	UpstreamError int64
}

// HitRatio is proxy hits over requests.
func (s Stats) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.CacheHits+s.PrefetchHits) / float64(s.Requests)
}

// counters holds the live atomic counters behind Stats, so statistics
// never contend with (or require) the cache lock.
type counters struct {
	requests      atomic.Int64
	cacheHits     atomic.Int64
	prefetchHits  atomic.Int64
	misses        atomic.Int64
	prefetched    atomic.Int64
	prefetchError atomic.Int64
	upstreamError atomic.Int64
}

// Proxy is an http.Handler implementing the prefetching proxy.
type Proxy struct {
	cfg  Config
	http *http.Client

	mu     sync.Mutex
	cache  cache.Policy
	bodies map[string][]byte // cached document bodies
	stats  counters
	wg     sync.WaitGroup
}

// New builds a proxy. It returns an error on a missing origin.
func New(cfg Config) (*Proxy, error) {
	if cfg.Origin == "" {
		return nil, fmt.Errorf("proxy: missing origin URL")
	}
	pol := cfg.Cache
	if pol == nil {
		capacity := cfg.CacheBytes
		if capacity == 0 {
			capacity = cache.DefaultProxyCapacity
		}
		pol = cache.NewLRU(capacity)
	}
	if cfg.MaxPrefetchBytes == 0 {
		cfg.MaxPrefetchBytes = 30 * 1024
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Proxy{
		cfg:    cfg,
		http:   hc,
		cache:  pol,
		bodies: make(map[string][]byte),
	}, nil
}

// Stats returns a snapshot of the counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:      p.stats.requests.Load(),
		CacheHits:     p.stats.cacheHits.Load(),
		PrefetchHits:  p.stats.prefetchHits.Load(),
		Misses:        p.stats.misses.Load(),
		Prefetched:    p.stats.prefetched.Load(),
		PrefetchError: p.stats.prefetchError.Load(),
		UpstreamError: p.stats.upstreamError.Load(),
	}
}

// Wait drains in-flight background prefetches.
func (p *Proxy) Wait() { p.wg.Wait() }

// ServeHTTP serves from the proxy cache or relays to the origin.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	url := r.URL.Path

	p.stats.requests.Add(1)
	p.mu.Lock()
	if ok, prefetched := p.cache.Get(url); ok {
		body := p.bodies[url]
		if prefetched {
			p.stats.prefetchHits.Add(1)
			p.cache.MarkDemand(url)
		} else {
			p.stats.cacheHits.Add(1)
		}
		p.mu.Unlock()
		w.Header().Set("X-Proxy-Cache", "HIT")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.Write(body) //nolint:errcheck // client disconnects are fine
		return
	}
	p.stats.misses.Add(1)
	p.mu.Unlock()

	body, hints, err := p.fetch(url, r.Header.Get(server.HeaderClientID), false)
	if err != nil {
		p.stats.upstreamError.Add(1)
		http.Error(w, fmt.Sprintf("upstream: %v", err), http.StatusBadGateway)
		return
	}
	p.store(url, body, false)

	if p.cfg.ForwardHints && len(hints) > 0 {
		// Re-encode through FormatHints so URLs stay escaped and the
		// downstream client sees the origin's probabilities.
		fw := make([]markov.Prediction, len(hints))
		for i, h := range hints {
			fw[i] = markov.Prediction{URL: h.URL, Probability: h.Probability}
		}
		w.Header().Set(server.HeaderPrefetch, server.FormatHints(fw))
	}
	if !p.cfg.NoFollowHints {
		for _, h := range hints {
			h := h
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.prefetch(h.URL)
			}()
		}
	}
	w.Header().Set("X-Proxy-Cache", "MISS")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body) //nolint:errcheck
}

// prefetch pulls one hinted document into the proxy cache.
func (p *Proxy) prefetch(url string) {
	p.mu.Lock()
	if p.cache.Contains(url) {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()

	body, _, err := p.fetch(url, "", true)
	if err != nil {
		p.stats.prefetchError.Add(1)
		return
	}
	if int64(len(body)) > p.cfg.MaxPrefetchBytes {
		return
	}
	p.mu.Lock()
	if !p.cache.Contains(url) {
		p.storeLocked(url, body, true)
		p.stats.prefetched.Add(1)
	}
	p.mu.Unlock()
}

// store caches a document body.
func (p *Proxy) store(url string, body []byte, prefetched bool) {
	p.mu.Lock()
	p.storeLocked(url, body, prefetched)
	p.mu.Unlock()
}

// storeLocked requires p.mu held. Bodies evicted by the policy must be
// dropped from the body map too; Contains-based reconciliation after
// every insert keeps the two views consistent.
func (p *Proxy) storeLocked(url string, body []byte, prefetched bool) {
	p.cache.Put(url, int64(len(body)), prefetched)
	if p.cache.Contains(url) {
		p.bodies[url] = body
	}
	// Reconcile: drop bodies the policy evicted. The map is small
	// relative to cache churn at proxy scale; a full sweep per insert
	// would be O(n²) across a run, so sweep lazily only when the map
	// outgrows the cache's entry count.
	if len(p.bodies) > p.cache.Len() {
		for u := range p.bodies {
			if !p.cache.Contains(u) {
				delete(p.bodies, u)
			}
		}
	}
}

// fetch performs one GET against the origin.
func (p *Proxy) fetch(url, clientID string, isPrefetch bool) (body []byte, hints []hintT, err error) {
	req, err := http.NewRequest(http.MethodGet, p.cfg.Origin+url, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("proxy: building request for %s: %w", url, err)
	}
	if clientID != "" {
		req.Header.Set(server.HeaderClientID, clientID)
	}
	if isPrefetch {
		req.Header.Set(server.HeaderPrefetchFetch, "1")
	}
	resp, err := p.http.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("proxy: fetching %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("proxy: fetching %s: status %s", url, resp.Status)
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("proxy: reading %s: %w", url, err)
	}
	for _, h := range server.ParseHints(resp.Header.Get(server.HeaderPrefetch)) {
		hints = append(hints, hintT{URL: h.URL, Probability: h.Probability})
	}
	return body, hints, nil
}

type hintT struct {
	URL         string
	Probability float64
}
