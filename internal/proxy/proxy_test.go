package proxy

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"pbppm/internal/core"
	"pbppm/internal/popularity"
	"pbppm/internal/server"
)

// originStore mirrors the server-package test site.
func originStore() server.MapStore {
	store := server.MapStore{}
	for url, size := range map[string]int{
		"/home": 4000, "/news": 3000, "/news/today": 2500, "/sports": 3500,
	} {
		store[url] = server.Document{URL: url, Body: make([]byte, size)}
	}
	return store
}

func trainedPB() *core.Model {
	grades := popularity.FixedGrades{"/home": 3, "/news": 2, "/news/today": 1, "/sports": 2}
	m := core.New(grades, core.Config{})
	for i := 0; i < 5; i++ {
		m.TrainSequence([]string{"/home", "/news", "/news/today"})
	}
	return m
}

// newChain stands up origin <- proxy and returns both plus the proxy's
// public URL.
func newChain(t *testing.T, cfg Config) (origin *server.Server, px *Proxy, proxyURL string, done func()) {
	t.Helper()
	origin = server.New(originStore(), server.Config{Predictor: trainedPB()})
	originTS := httptest.NewServer(origin)
	cfg.Origin = originTS.URL
	px, err := New(cfg)
	if err != nil {
		originTS.Close()
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(px)
	return origin, px, proxyTS.URL, func() {
		proxyTS.Close()
		originTS.Close()
	}
}

func get(t *testing.T, base, url, client string) (status int, cacheHeader string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, base+url, nil)
	if client != "" {
		req.Header.Set(server.HeaderClientID, client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	return resp.StatusCode, resp.Header.Get("X-Proxy-Cache")
}

func TestProxyMissThenHit(t *testing.T) {
	_, px, base, done := newChain(t, Config{NoFollowHints: true})
	defer done()

	if status, hdr := get(t, base, "/sports", "alice"); status != 200 || hdr != "MISS" {
		t.Fatalf("first fetch: %d %s", status, hdr)
	}
	if status, hdr := get(t, base, "/sports", "bob"); status != 200 || hdr != "HIT" {
		t.Fatalf("second fetch: %d %s", status, hdr)
	}
	st := px.Stats()
	if st.Requests != 2 || st.Misses != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProxyFollowsHints(t *testing.T) {
	origin, px, base, done := newChain(t, Config{})
	defer done()

	// alice's demand for /home makes the origin hint /news; the proxy
	// prefetches it.
	get(t, base, "/home", "alice")
	px.Wait()

	// bob's request for /news is a proxy prefetch hit — served without
	// touching the origin again.
	before := origin.Stats().DemandRequests
	if _, hdr := get(t, base, "/news", "bob"); hdr != "HIT" {
		t.Fatalf("hinted document not prefetched (header %s)", hdr)
	}
	if origin.Stats().DemandRequests != before {
		t.Error("proxy hit still reached the origin")
	}
	st := px.Stats()
	if st.Prefetched == 0 || st.PrefetchHits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProxyNoFollowHints(t *testing.T) {
	_, px, base, done := newChain(t, Config{NoFollowHints: true})
	defer done()
	get(t, base, "/home", "alice")
	px.Wait()
	if st := px.Stats(); st.Prefetched != 0 {
		t.Errorf("prefetched despite NoFollowHints: %+v", st)
	}
}

func TestProxyForwardsClientIdentity(t *testing.T) {
	origin, _, base, done := newChain(t, Config{NoFollowHints: true})
	defer done()
	get(t, base, "/home", "alice")
	get(t, base, "/news", "alice")
	// Two demand clicks by one client = one origin session.
	if st := origin.Stats(); st.SessionsStarted != 1 || st.DemandRequests != 2 {
		t.Errorf("origin stats = %+v", st)
	}
}

func TestProxyUpstreamErrors(t *testing.T) {
	px, err := New(Config{Origin: "http://127.0.0.1:1"}) // nothing listens
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(px)
	defer ts.Close()
	status, _ := get(t, ts.URL, "/x", "")
	if status != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", status)
	}
	if px.Stats().UpstreamError != 1 {
		t.Errorf("stats = %+v", px.Stats())
	}
}

func TestProxyMethodFilter(t *testing.T) {
	_, _, base, done := newChain(t, Config{NoFollowHints: true})
	defer done()
	resp, err := http.Post(base+"/home", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", resp.StatusCode)
	}
}

func TestProxyEvictionDropsBodies(t *testing.T) {
	// A tiny cache churns; the body map must not grow unboundedly.
	_, px, base, done := newChain(t, Config{CacheBytes: 5000, NoFollowHints: true})
	defer done()
	for _, u := range []string{"/home", "/news", "/news/today", "/sports", "/home", "/news"} {
		get(t, base, u, "alice")
	}
	px.mu.Lock()
	bodies, entries := len(px.bodies), px.cache.Len()
	px.mu.Unlock()
	if bodies > entries+1 {
		t.Errorf("body map (%d) outgrew cache (%d entries)", bodies, entries)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing origin accepted")
	}
}

func TestEndToEndClientProxyOrigin(t *testing.T) {
	// Full §5 chain: browser client -> proxy -> origin, with hints
	// absorbed by the proxy.
	_, px, base, done := newChain(t, Config{})
	defer done()

	cl, err := server.NewClient(server.ClientConfig{ID: "walker", BaseURL: base})
	if err != nil {
		t.Fatal(err)
	}
	if src, err := cl.Get("/home"); err != nil || src != "network" {
		t.Fatalf("first click: %s %v", src, err)
	}
	px.Wait()
	// The client's own cache misses /news (the proxy received no hints
	// header to forward — hint absorption is proxy-side), but the proxy
	// serves it from its prefetched copy.
	if src, err := cl.Get("/news"); err != nil || src != "network" {
		t.Fatalf("second click: %s %v", src, err)
	}
	if st := px.Stats(); st.PrefetchHits != 1 {
		t.Errorf("proxy stats = %+v", st)
	}
}

func TestProxyForwardHints(t *testing.T) {
	_, px, base, done := newChain(t, Config{ForwardHints: true})
	defer done()

	// A client behind the forwarding proxy prefetches into its own
	// browser cache: two-level prefetching.
	cl, err := server.NewClient(server.ClientConfig{ID: "fw", BaseURL: base})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("/home"); err != nil {
		t.Fatal(err)
	}
	cl.Wait()
	px.Wait()
	src, err := cl.Get("/news")
	if err != nil {
		t.Fatal(err)
	}
	if src != "prefetch" {
		t.Errorf("source = %s, want prefetch (browser-level)", src)
	}
}
