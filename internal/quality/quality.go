// Package quality implements the paper's §2.3 quality metrics —
// prefetch precision, hit ratio, and traffic increase — as an online
// scorer shared by the offline simulator (internal/sim replays feed
// one) and the live server (internal/server scores its hint lifecycle
// through one). Both producers report the same two primitive events:
//
//   - Demand(size, outcome): one demand page request, classified as a
//     miss (the bytes crossed the network), an ordinary cache hit, or
//     a prefetch hit (a previously prefetched copy served it);
//   - Prefetched(size): one document transferred by prefetching.
//
// and the formulas themselves live in internal/metrics.Result, so a
// live pbppm_live_precision gauge and a simulator report cell are by
// construction the same computation — the equivalence the live-scorer
// tests assert.
//
// A Scorer is cumulative-only by default (single atomic adds, cheap
// enough for the simulator's replay loop); NewWindowedScorer
// additionally maintains rolling counters so the same event stream
// answers "over the last five minutes" as well as "since start".
package quality

import (
	"sync/atomic"
	"time"

	"pbppm/internal/metrics"
	"pbppm/internal/obs"
)

// Outcome classifies how one demand request was served.
type Outcome int

const (
	// Miss: no cached copy; the document was transferred on demand.
	Miss Outcome = iota
	// CacheHit: an ordinarily cached copy served the request.
	CacheHit
	// PrefetchHit: a prefetched copy served the request — the
	// prediction came true.
	PrefetchHit
)

// String names the outcome for logs and event streams.
func (o Outcome) String() string {
	switch o {
	case CacheHit:
		return "cache_hit"
	case PrefetchHit:
		return "prefetch_hit"
	default:
		return "miss"
	}
}

// Snapshot is a consistent-enough view of a scorer's counters (each
// field is read atomically; cross-field skew under concurrent updates
// is bounded by one in-flight event). The ratio methods delegate to
// metrics.Result so online and offline reports share one formula
// implementation.
type Snapshot struct {
	Requests         int64
	CacheHits        int64
	PrefetchHits     int64
	PrefetchedDocs   int64
	TransferredBytes int64
	UsefulBytes      int64
	PrefetchedBytes  int64
}

// Result views the snapshot as a metrics.Result, the simulator's
// accumulator type, which owns the §2.3 formulas.
func (s Snapshot) Result() metrics.Result {
	return metrics.Result{
		Requests:         s.Requests,
		CacheHits:        s.CacheHits,
		PrefetchHits:     s.PrefetchHits,
		PrefetchedDocs:   s.PrefetchedDocs,
		TransferredBytes: s.TransferredBytes,
		UsefulBytes:      s.UsefulBytes,
		PrefetchedBytes:  s.PrefetchedBytes,
	}
}

// HitRatio is (cache hits + prefetch hits) / requests.
func (s Snapshot) HitRatio() float64 { return s.Result().HitRatio() }

// Precision is prefetch hits / prefetched documents.
func (s Snapshot) Precision() float64 { return s.Result().PrefetchPrecision() }

// TrafficIncrease is transferred/useful bytes minus one.
func (s Snapshot) TrafficIncrease() float64 { return s.Result().TrafficIncrease() }

// Add returns the element-wise sum of two snapshots, for aggregating
// per-model scorers into a serving-wide view.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		Requests:         s.Requests + o.Requests,
		CacheHits:        s.CacheHits + o.CacheHits,
		PrefetchHits:     s.PrefetchHits + o.PrefetchHits,
		PrefetchedDocs:   s.PrefetchedDocs + o.PrefetchedDocs,
		TransferredBytes: s.TransferredBytes + o.TransferredBytes,
		UsefulBytes:      s.UsefulBytes + o.UsefulBytes,
		PrefetchedBytes:  s.PrefetchedBytes + o.PrefetchedBytes,
	}
}

// rollingSet mirrors the cumulative counters over a rolling window.
type rollingSet struct {
	requests       *obs.RollingCounter
	cacheHits      *obs.RollingCounter
	prefetchHits   *obs.RollingCounter
	prefetchedDocs *obs.RollingCounter
	transferred    *obs.RollingCounter
	useful         *obs.RollingCounter
	prefetchedB    *obs.RollingCounter
}

func newRollingSet(w obs.Window) *rollingSet {
	return &rollingSet{
		requests:       obs.NewRollingCounter(w),
		cacheHits:      obs.NewRollingCounter(w),
		prefetchHits:   obs.NewRollingCounter(w),
		prefetchedDocs: obs.NewRollingCounter(w),
		transferred:    obs.NewRollingCounter(w),
		useful:         obs.NewRollingCounter(w),
		prefetchedB:    obs.NewRollingCounter(w),
	}
}

// Scorer accumulates quality events. All methods are safe for
// unsynchronized concurrent use; every update is a handful of atomic
// adds (plus the rolling mirrors when windowed).
type Scorer struct {
	requests       atomic.Int64
	cacheHits      atomic.Int64
	prefetchHits   atomic.Int64
	prefetchedDocs atomic.Int64
	transferred    atomic.Int64
	useful         atomic.Int64
	prefetchedB    atomic.Int64

	roll *rollingSet // nil for cumulative-only scorers
}

// NewScorer returns a cumulative-only scorer — the simulator's mode:
// no windows, minimal per-event cost.
func NewScorer() *Scorer { return &Scorer{} }

// NewWindowedScorer returns a scorer that additionally answers
// Window(span) queries for any span up to w's Span — the live server's
// mode.
func NewWindowedScorer(w obs.Window) *Scorer {
	return &Scorer{roll: newRollingSet(w)}
}

// Demand records one demand page request of the given transfer size,
// classified by how it was served. Following the paper's accounting
// (and the simulator's): a miss transfers size bytes, all useful; a
// prefetch hit makes the earlier prefetched transfer useful
// retroactively (size bytes are credited to useful, none transferred
// now); an ordinary cache hit moves no bytes.
func (s *Scorer) Demand(size int64, o Outcome) {
	s.requests.Add(1)
	if s.roll != nil {
		s.roll.requests.Inc()
	}
	switch o {
	case CacheHit:
		s.cacheHits.Add(1)
		if s.roll != nil {
			s.roll.cacheHits.Inc()
		}
	case PrefetchHit:
		s.prefetchHits.Add(1)
		s.useful.Add(size)
		if s.roll != nil {
			s.roll.prefetchHits.Inc()
			s.roll.useful.Add(size)
		}
	default: // Miss
		s.transferred.Add(size)
		s.useful.Add(size)
		if s.roll != nil {
			s.roll.transferred.Add(size)
			s.roll.useful.Add(size)
		}
	}
}

// Prefetched records one document of the given size transferred by
// prefetching.
func (s *Scorer) Prefetched(size int64) {
	s.prefetchedDocs.Add(1)
	s.transferred.Add(size)
	s.prefetchedB.Add(size)
	if s.roll != nil {
		s.roll.prefetchedDocs.Inc()
		s.roll.transferred.Add(size)
		s.roll.prefetchedB.Add(size)
	}
}

// Total returns the cumulative snapshot.
func (s *Scorer) Total() Snapshot {
	return Snapshot{
		Requests:         s.requests.Load(),
		CacheHits:        s.cacheHits.Load(),
		PrefetchHits:     s.prefetchHits.Load(),
		PrefetchedDocs:   s.prefetchedDocs.Load(),
		TransferredBytes: s.transferred.Load(),
		UsefulBytes:      s.useful.Load(),
		PrefetchedBytes:  s.prefetchedB.Load(),
	}
}

// Windowed reports whether this scorer maintains rolling windows.
func (s *Scorer) Windowed() bool { return s.roll != nil }

// Window returns the snapshot over the trailing span (clamped to the
// scorer's window Span; zero selects the full Span). A
// cumulative-only scorer returns Total.
func (s *Scorer) Window(span time.Duration) Snapshot {
	if s.roll == nil {
		return s.Total()
	}
	return Snapshot{
		Requests:         s.roll.requests.Sum(span),
		CacheHits:        s.roll.cacheHits.Sum(span),
		PrefetchHits:     s.roll.prefetchHits.Sum(span),
		PrefetchedDocs:   s.roll.prefetchedDocs.Sum(span),
		TransferredBytes: s.roll.transferred.Sum(span),
		UsefulBytes:      s.roll.useful.Sum(span),
		PrefetchedBytes:  s.roll.prefetchedB.Sum(span),
	}
}
