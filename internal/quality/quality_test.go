package quality

import (
	"sync"
	"testing"
	"time"

	"pbppm/internal/obs"
)

// TestScorerMirrorsSimAccounting pins the scorer to the simulator's
// §2.3 accounting: the exact transcript below is a hand-computed
// miniature of what sim.Run would record for the same events.
func TestScorerMirrorsSimAccounting(t *testing.T) {
	s := NewScorer()

	s.Demand(1000, Miss)       // demand fetch: transferred+useful
	s.Prefetched(400)          // pushed alongside the response
	s.Prefetched(600)          // a second push
	s.Demand(400, PrefetchHit) // the 400-byte push came true
	s.Demand(1000, CacheHit)   // ordinary cache hit: no bytes move
	s.Demand(2000, Miss)       // another demand fetch

	got := s.Total()
	want := Snapshot{
		Requests:         4,
		CacheHits:        1,
		PrefetchHits:     1,
		PrefetchedDocs:   2,
		TransferredBytes: 1000 + 400 + 600 + 2000,
		UsefulBytes:      1000 + 400 + 2000,
		PrefetchedBytes:  1000,
	}
	if got != want {
		t.Fatalf("Total() = %+v, want %+v", got, want)
	}

	// The ratios are metrics.Result's formulas.
	if p := got.Precision(); p != 0.5 {
		t.Errorf("precision = %v, want 0.5 (1 hit of 2 prefetched)", p)
	}
	if hr := got.HitRatio(); hr != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5 (2 hits of 4 requests)", hr)
	}
	wantTI := float64(4000)/float64(3400) - 1
	if ti := got.TrafficIncrease(); ti != wantTI {
		t.Errorf("traffic increase = %v, want %v", ti, wantTI)
	}
}

func TestSnapshotAdd(t *testing.T) {
	a := Snapshot{Requests: 2, PrefetchHits: 1, TransferredBytes: 10}
	b := Snapshot{Requests: 3, CacheHits: 2, UsefulBytes: 7}
	sum := a.Add(b)
	if sum.Requests != 5 || sum.PrefetchHits != 1 || sum.CacheHits != 2 ||
		sum.TransferredBytes != 10 || sum.UsefulBytes != 7 {
		t.Fatalf("Add = %+v", sum)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		Miss: "miss", CacheHit: "cache_hit", PrefetchHit: "prefetch_hit",
	} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, got, want)
		}
	}
}

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestWindowedScorerRollsOff(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	s := NewWindowedScorer(obs.Window{Span: 5 * time.Minute, Granularity: 10 * time.Second, Clock: clk.Now})
	if !s.Windowed() {
		t.Fatal("windowed scorer reports Windowed() == false")
	}

	s.Demand(100, Miss)
	s.Prefetched(50)
	clk.Advance(2 * time.Minute)
	s.Demand(50, PrefetchHit)

	// Full window still sees everything.
	full := s.Window(0)
	if full.Requests != 2 || full.PrefetchedDocs != 1 || full.PrefetchHits != 1 {
		t.Fatalf("full window = %+v", full)
	}
	// A 30-second window only sees the recent prefetch hit.
	recent := s.Window(30 * time.Second)
	if recent.Requests != 1 || recent.PrefetchHits != 1 || recent.PrefetchedDocs != 0 {
		t.Fatalf("30s window = %+v", recent)
	}
	// The cumulative totals never roll off.
	clk.Advance(10 * time.Minute)
	if got := s.Window(0); got.Requests != 0 {
		t.Fatalf("window after span elapsed = %+v, want empty", got)
	}
	if got := s.Total(); got.Requests != 2 {
		t.Fatalf("cumulative total aged out: %+v", got)
	}

	// A cumulative-only scorer answers Window with its totals.
	c := NewScorer()
	c.Demand(10, CacheHit)
	if c.Windowed() {
		t.Fatal("cumulative scorer reports Windowed() == true")
	}
	if got := c.Window(time.Minute); got.Requests != 1 || got.CacheHits != 1 {
		t.Fatalf("cumulative Window = %+v", got)
	}
}

func TestScorerConcurrent(t *testing.T) {
	s := NewWindowedScorer(obs.Window{Span: time.Minute})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Demand(10, Outcome(i%3))
				s.Prefetched(5)
				_ = s.Total()
				_ = s.Window(0)
			}
		}()
	}
	wg.Wait()
	got := s.Total()
	if got.Requests != 4000 || got.PrefetchedDocs != 4000 {
		t.Fatalf("concurrent totals = %+v, want 4000 requests and prefetches", got)
	}
}
