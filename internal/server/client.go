package server

import (
	"fmt"
	"io"
	"net/http"
	"sync"

	"pbppm/internal/cache"
	"pbppm/internal/quality"
)

// ClientStats is a snapshot of client-side counters.
type ClientStats struct {
	Requests      int64
	CacheHits     int64
	PrefetchHits  int64
	Prefetched    int64
	PrefetchError int64
	// ReportsDropped counts pending hit reports discarded because the
	// batch hit its cap (a flapping server kept requeueing them).
	ReportsDropped int64
}

// HitRatio is total hits over requests.
func (s ClientStats) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.CacheHits+s.PrefetchHits) / float64(s.Requests)
}

// Client is a prefetching Web client: it keeps a browser cache, sends
// its identity with every request, and fetches the server's prefetch
// hints into the cache in the background.
type Client struct {
	id         string
	base       string
	http       *http.Client
	maxSize    int64
	maxPending int
	syncPref   bool

	mu    sync.Mutex
	cache cache.Policy
	stats ClientStats
	// pending batches local hit outcomes for the server's live scorer;
	// the batch rides on the next request (or an explicit Flush).
	pending []ReportEntry
	// wg tracks in-flight background prefetches so tests and shutdown
	// can drain them.
	wg sync.WaitGroup
}

// ClientConfig parameterizes a Client.
type ClientConfig struct {
	// ID identifies this client to the server; required.
	ID string
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// CacheBytes sizes the browser cache; zero selects the paper's 1 MB.
	CacheBytes int64
	// MaxPrefetchBytes skips hints whose body exceeds this; zero
	// selects 30 KB.
	MaxPrefetchBytes int64
	// HTTPClient overrides the transport; nil selects
	// http.DefaultClient.
	HTTPClient *http.Client
	// Policy selects the cache replacement policy; nil selects a 1 MB
	// LRU (or CacheBytes if set).
	Policy cache.Policy
	// SynchronousPrefetch fetches hints inline, in hint order, before
	// Get returns, instead of in background goroutines. Deterministic
	// replays (the live-vs-offline equivalence test) need it; serving
	// real users does not.
	SynchronousPrefetch bool
	// MaxPendingReports caps the batched hit reports held for the next
	// delivery; zero selects DefaultMaxPendingReports. Requeue-on-error
	// puts undelivered batches back, so without a cap a flapping server
	// would grow the batch without bound — over the cap the oldest
	// entries are dropped and counted in ClientStats.ReportsDropped.
	MaxPendingReports int
}

// DefaultMaxPendingReports bounds the pending report batch: 256 entries
// is hours of browsing for one client, and a dropped report only costs
// the server one scored hit, not correctness.
const DefaultMaxPendingReports = 256

// NewClient builds a prefetching client. It returns an error on a
// missing ID or base URL.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("server: client needs an ID")
	}
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("server: client needs a BaseURL")
	}
	capacity := cfg.CacheBytes
	if capacity == 0 {
		capacity = cache.DefaultBrowserCapacity
	}
	pol := cfg.Policy
	if pol == nil {
		pol = cache.NewLRU(capacity)
	}
	maxSize := cfg.MaxPrefetchBytes
	if maxSize == 0 {
		maxSize = 30 * 1024
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	maxPending := cfg.MaxPendingReports
	if maxPending <= 0 {
		maxPending = DefaultMaxPendingReports
	}
	return &Client{
		id:         cfg.ID,
		base:       cfg.BaseURL,
		http:       hc,
		maxSize:    maxSize,
		maxPending: maxPending,
		syncPref:   cfg.SynchronousPrefetch,
		cache:      pol,
	}, nil
}

// Get retrieves url (a server path like "/news.html"), serving from
// the browser cache when possible and following prefetch hints
// otherwise. It returns the body source: "cache", "prefetch", or
// "network".
func (c *Client) Get(url string) (source string, err error) {
	c.mu.Lock()
	c.stats.Requests++
	if ok, prefetched := c.cache.Get(url); ok {
		if prefetched {
			c.stats.PrefetchHits++
			c.cache.MarkDemand(url)
			c.pending = append(c.pending, ReportEntry{URL: url, Outcome: quality.PrefetchHit})
			c.trimPendingLocked()
			c.mu.Unlock()
			return "prefetch", nil
		}
		c.stats.CacheHits++
		c.pending = append(c.pending, ReportEntry{URL: url, Outcome: quality.CacheHit})
		c.trimPendingLocked()
		c.mu.Unlock()
		return "cache", nil
	}
	c.mu.Unlock()

	body, hints, err := c.fetch(url, false)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	c.cache.Put(url, int64(len(body)), false)
	c.mu.Unlock()

	if c.syncPref {
		for _, h := range hints {
			c.prefetch(h.URL)
		}
		return "network", nil
	}
	for _, h := range hints {
		h := h
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.prefetch(h.URL)
		}()
	}
	return "network", nil
}

// prefetch pulls one hinted document into the cache.
func (c *Client) prefetch(url string) {
	c.mu.Lock()
	if c.cache.Contains(url) {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()

	body, _, err := c.fetch(url, true)
	if err != nil {
		c.mu.Lock()
		c.stats.PrefetchError++
		c.mu.Unlock()
		return
	}
	if int64(len(body)) > c.maxSize {
		return
	}
	c.mu.Lock()
	if !c.cache.Contains(url) {
		c.cache.Put(url, int64(len(body)), true)
		c.stats.Prefetched++
	}
	c.mu.Unlock()
}

// fetch performs one HTTP GET against the server.
func (c *Client) fetch(url string, isPrefetch bool) (body []byte, hints []hint, err error) {
	req, err := http.NewRequest(http.MethodGet, c.base+url, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("server: building request for %s: %w", url, err)
	}
	req.Header.Set(HeaderClientID, c.id)
	if isPrefetch {
		req.Header.Set(HeaderPrefetchFetch, "1")
	}
	reports := c.takeReports()
	if len(reports) > 0 {
		req.Header.Set(HeaderPrefetchReport, FormatReport(reports))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.requeueReports(reports)
		return nil, nil, fmt.Errorf("server: fetching %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("server: fetching %s: status %s", url, resp.Status)
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("server: reading %s: %w", url, err)
	}
	for _, p := range ParseHints(resp.Header.Get(HeaderPrefetch)) {
		hints = append(hints, hint{URL: p.URL, Probability: p.Probability})
	}
	return body, hints, nil
}

// hint mirrors markov.Prediction without importing it into the narrow
// client path.
type hint struct {
	URL         string
	Probability float64
}

// takeReports detaches the pending report batch.
func (c *Client) takeReports() []ReportEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	reports := c.pending
	c.pending = nil
	return reports
}

// requeueReports puts an undelivered batch back at the head of the
// queue (transport failure: the server never saw it). The requeued
// batch counts against the pending cap like any other entries, so a
// server that keeps failing cannot grow the batch without bound.
func (c *Client) requeueReports(reports []ReportEntry) {
	if len(reports) == 0 {
		return
	}
	c.mu.Lock()
	c.pending = append(reports, c.pending...)
	c.trimPendingLocked()
	c.mu.Unlock()
}

// trimPendingLocked drops the oldest pending reports over the cap and
// counts them. The head of the queue is oldest (requeued batches keep
// delivery order), so trimming the front keeps the freshest outcomes —
// the ones the server's rolling live scorer can still use. Callers hold
// c.mu.
func (c *Client) trimPendingLocked() {
	if over := len(c.pending) - c.maxPending; over > 0 {
		c.stats.ReportsDropped += int64(over)
		c.pending = append(c.pending[:0], c.pending[over:]...)
	}
}

// Flush delivers any pending hit reports on a report-only beacon (the
// server answers 204 without touching demand statistics). A client
// with nothing pending does not contact the server.
func (c *Client) Flush() error {
	reports := c.takeReports()
	if len(reports) == 0 {
		return nil
	}
	req, err := http.NewRequest(http.MethodGet, c.base+"/", nil)
	if err != nil {
		c.requeueReports(reports)
		return fmt.Errorf("server: building report beacon: %w", err)
	}
	req.Header.Set(HeaderClientID, c.id)
	req.Header.Set(HeaderPrefetchReport, FormatReport(reports))
	req.Header.Set(HeaderPrefetchReportOnly, "1")
	resp, err := c.http.Do(req)
	if err != nil {
		c.requeueReports(reports)
		return fmt.Errorf("server: sending report beacon: %w", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // 204 carries no body
	resp.Body.Close()
	return nil
}

// Wait drains in-flight background prefetches; tests call it before
// asserting on cache contents.
func (c *Client) Wait() { c.wg.Wait() }

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
