package server

import (
	"net/http/httptest"
	"testing"
)

func newPair(t *testing.T, cfg Config, ccfg ClientConfig) (*Server, *Client, func()) {
	t.Helper()
	srv := New(testStore(), cfg)
	ts := httptest.NewServer(srv)
	ccfg.BaseURL = ts.URL
	if ccfg.ID == "" {
		ccfg.ID = "tester"
	}
	cl, err := NewClient(ccfg)
	if err != nil {
		ts.Close()
		t.Fatal(err)
	}
	return srv, cl, ts.Close
}

func TestClientEndToEndPrefetch(t *testing.T) {
	_, cl, done := newPair(t, Config{Predictor: trainedPB()}, ClientConfig{})
	defer done()

	src, err := cl.Get("/home")
	if err != nil {
		t.Fatal(err)
	}
	if src != "network" {
		t.Errorf("first fetch source = %s", src)
	}
	cl.Wait() // drain the hinted prefetch of /news

	src, err = cl.Get("/news")
	if err != nil {
		t.Fatal(err)
	}
	if src != "prefetch" {
		t.Fatalf("second fetch source = %s, want prefetch", src)
	}
	// Another visit is a plain cache hit (MarkDemand cleared the tag).
	src, _ = cl.Get("/news")
	if src != "cache" {
		t.Errorf("third fetch source = %s, want cache", src)
	}

	st := cl.Stats()
	if st.Requests != 3 || st.PrefetchHits != 1 || st.CacheHits != 1 {
		t.Errorf("client stats = %+v", st)
	}
	if st.HitRatio() < 0.66 || st.HitRatio() > 0.67 {
		t.Errorf("hit ratio = %v", st.HitRatio())
	}
}

func TestClientChainAcrossClicks(t *testing.T) {
	srv, cl, done := newPair(t, Config{Predictor: trainedPB()}, ClientConfig{})
	defer done()

	if _, err := cl.Get("/home"); err != nil {
		t.Fatal(err)
	}
	cl.Wait()
	if _, err := cl.Get("/news"); err != nil { // prefetch hit; no new hints
		t.Fatal(err)
	}
	cl.Wait()
	// /news/today was hinted on the /home response at order 2?? No: it
	// is hinted when the server sees /news — but the /news click was a
	// prefetch hit and never reached the server. It must be fetched
	// from the network: the documented cost of piggyback prefetching.
	src, err := cl.Get("/news/today")
	if err != nil {
		t.Fatal(err)
	}
	if src == "" {
		t.Error("no source")
	}
	if srv.Stats().DemandRequests < 2 {
		t.Errorf("server demand = %+v", srv.Stats())
	}
}

func TestClientOversizePrefetchSkipped(t *testing.T) {
	_, cl, done := newPair(t, Config{Predictor: trainedPB()}, ClientConfig{MaxPrefetchBytes: 1024})
	defer done()
	if _, err := cl.Get("/home"); err != nil {
		t.Fatal(err)
	}
	cl.Wait()
	// /news (3000 B) exceeds the 1 KB client cap: next click misses.
	src, err := cl.Get("/news")
	if err != nil {
		t.Fatal(err)
	}
	if src != "network" {
		t.Errorf("source = %s, want network (prefetch skipped)", src)
	}
}

func TestClientErrorPaths(t *testing.T) {
	if _, err := NewClient(ClientConfig{BaseURL: "http://x"}); err == nil {
		t.Error("missing ID accepted")
	}
	if _, err := NewClient(ClientConfig{ID: "a"}); err == nil {
		t.Error("missing BaseURL accepted")
	}
	_, cl, done := newPair(t, Config{}, ClientConfig{})
	defer done()
	if _, err := cl.Get("/missing"); err == nil {
		t.Error("404 fetch did not error")
	}
}

func TestManyClientsShareServer(t *testing.T) {
	srv := New(testStore(), Config{Predictor: trainedPB()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 4; i++ {
		cl, err := NewClient(ClientConfig{ID: string(rune('a' + i)), BaseURL: ts.URL})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Get("/home"); err != nil {
			t.Fatal(err)
		}
		cl.Wait()
		if src, _ := cl.Get("/news"); src != "prefetch" {
			t.Errorf("client %d: source = %s", i, src)
		}
	}
	if st := srv.Stats(); st.PrefetchRequests == 0 {
		t.Error("server saw no prefetch fetches")
	}
}

// TestClientPendingReportsBounded regresses the unbounded requeue path:
// a flapping server fails every delivery, so every Flush requeues its
// batch; the pending batch must stay capped (drop-oldest) rather than
// grow with every local hit.
func TestClientPendingReportsBounded(t *testing.T) {
	cl, err := NewClient(ClientConfig{
		ID:                "tester",
		BaseURL:           "http://127.0.0.1:1", // nothing listens: every delivery fails
		MaxPendingReports: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the cache directly so every Get is a local cache hit that
	// queues a report without needing the (dead) server.
	cl.mu.Lock()
	cl.cache.Put("/page", 100, false)
	cl.mu.Unlock()

	for i := 0; i < 50; i++ {
		if _, err := cl.Get("/page"); err != nil {
			t.Fatalf("cache-hit Get should not touch the network: %v", err)
		}
		if err := cl.Flush(); err == nil {
			t.Fatal("Flush against a dead server should fail")
		}
	}

	cl.mu.Lock()
	pending := len(cl.pending)
	cl.mu.Unlock()
	if pending > 8 {
		t.Fatalf("pending batch grew to %d entries, cap is 8", pending)
	}
	st := cl.Stats()
	if st.ReportsDropped != 50-int64(pending) {
		t.Fatalf("ReportsDropped = %d, want %d (50 queued, %d retained)",
			st.ReportsDropped, 50-pending, pending)
	}

	// The retained entries are the newest: delivery order survives the
	// trims, so the head of the queue is the oldest survivor.
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, e := range cl.pending {
		if e.URL != "/page" {
			t.Fatalf("unexpected pending entry %+v", e)
		}
	}
}

// TestClientDefaultPendingCap checks the default cap is applied and a
// within-cap batch is never trimmed.
func TestClientDefaultPendingCap(t *testing.T) {
	cl, err := NewClient(ClientConfig{ID: "t", BaseURL: "http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if cl.maxPending != DefaultMaxPendingReports {
		t.Fatalf("default cap = %d, want %d", cl.maxPending, DefaultMaxPendingReports)
	}
	cl.requeueReports([]ReportEntry{{URL: "/a"}, {URL: "/b"}})
	if st := cl.Stats(); st.ReportsDropped != 0 {
		t.Fatalf("within-cap requeue dropped %d reports", st.ReportsDropped)
	}
	if got := len(cl.takeReports()); got != 2 {
		t.Fatalf("takeReports returned %d entries, want 2", got)
	}
}
