package server

import (
	"net/http/httptest"
	"testing"
)

func newPair(t *testing.T, cfg Config, ccfg ClientConfig) (*Server, *Client, func()) {
	t.Helper()
	srv := New(testStore(), cfg)
	ts := httptest.NewServer(srv)
	ccfg.BaseURL = ts.URL
	if ccfg.ID == "" {
		ccfg.ID = "tester"
	}
	cl, err := NewClient(ccfg)
	if err != nil {
		ts.Close()
		t.Fatal(err)
	}
	return srv, cl, ts.Close
}

func TestClientEndToEndPrefetch(t *testing.T) {
	_, cl, done := newPair(t, Config{Predictor: trainedPB()}, ClientConfig{})
	defer done()

	src, err := cl.Get("/home")
	if err != nil {
		t.Fatal(err)
	}
	if src != "network" {
		t.Errorf("first fetch source = %s", src)
	}
	cl.Wait() // drain the hinted prefetch of /news

	src, err = cl.Get("/news")
	if err != nil {
		t.Fatal(err)
	}
	if src != "prefetch" {
		t.Fatalf("second fetch source = %s, want prefetch", src)
	}
	// Another visit is a plain cache hit (MarkDemand cleared the tag).
	src, _ = cl.Get("/news")
	if src != "cache" {
		t.Errorf("third fetch source = %s, want cache", src)
	}

	st := cl.Stats()
	if st.Requests != 3 || st.PrefetchHits != 1 || st.CacheHits != 1 {
		t.Errorf("client stats = %+v", st)
	}
	if st.HitRatio() < 0.66 || st.HitRatio() > 0.67 {
		t.Errorf("hit ratio = %v", st.HitRatio())
	}
}

func TestClientChainAcrossClicks(t *testing.T) {
	srv, cl, done := newPair(t, Config{Predictor: trainedPB()}, ClientConfig{})
	defer done()

	if _, err := cl.Get("/home"); err != nil {
		t.Fatal(err)
	}
	cl.Wait()
	if _, err := cl.Get("/news"); err != nil { // prefetch hit; no new hints
		t.Fatal(err)
	}
	cl.Wait()
	// /news/today was hinted on the /home response at order 2?? No: it
	// is hinted when the server sees /news — but the /news click was a
	// prefetch hit and never reached the server. It must be fetched
	// from the network: the documented cost of piggyback prefetching.
	src, err := cl.Get("/news/today")
	if err != nil {
		t.Fatal(err)
	}
	if src == "" {
		t.Error("no source")
	}
	if srv.Stats().DemandRequests < 2 {
		t.Errorf("server demand = %+v", srv.Stats())
	}
}

func TestClientOversizePrefetchSkipped(t *testing.T) {
	_, cl, done := newPair(t, Config{Predictor: trainedPB()}, ClientConfig{MaxPrefetchBytes: 1024})
	defer done()
	if _, err := cl.Get("/home"); err != nil {
		t.Fatal(err)
	}
	cl.Wait()
	// /news (3000 B) exceeds the 1 KB client cap: next click misses.
	src, err := cl.Get("/news")
	if err != nil {
		t.Fatal(err)
	}
	if src != "network" {
		t.Errorf("source = %s, want network (prefetch skipped)", src)
	}
}

func TestClientErrorPaths(t *testing.T) {
	if _, err := NewClient(ClientConfig{BaseURL: "http://x"}); err == nil {
		t.Error("missing ID accepted")
	}
	if _, err := NewClient(ClientConfig{ID: "a"}); err == nil {
		t.Error("missing BaseURL accepted")
	}
	_, cl, done := newPair(t, Config{}, ClientConfig{})
	defer done()
	if _, err := cl.Get("/missing"); err == nil {
		t.Error("404 fetch did not error")
	}
}

func TestManyClientsShareServer(t *testing.T) {
	srv := New(testStore(), Config{Predictor: trainedPB()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 4; i++ {
		cl, err := NewClient(ClientConfig{ID: string(rune('a' + i)), BaseURL: ts.URL})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Get("/home"); err != nil {
			t.Fatal(err)
		}
		cl.Wait()
		if src, _ := cl.Get("/news"); src != "prefetch" {
			t.Errorf("client %d: source = %s", i, src)
		}
	}
	if st := srv.Stats(); st.PrefetchRequests == 0 {
		t.Error("server saw no prefetch fetches")
	}
}
