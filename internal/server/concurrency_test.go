package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pbppm/internal/core"
	"pbppm/internal/obs"
	"pbppm/internal/popularity"
)

// doGet drives ServeHTTP directly (no network) for stress and bench.
func doGet(h http.Handler, url, client string, prefetch bool) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, url, nil)
	if client != "" {
		req.Header.Set(HeaderClientID, client)
	}
	if prefetch {
		req.Header.Set(HeaderPrefetchFetch, "1")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestStressServeRebuildExpire hammers the server from many clients
// while models are swapped and sessions expire concurrently — the
// scenario that used to race on the shared tree's usage marks and
// convoy on the global mutex. Run with -race.
func TestStressServeRebuildExpire(t *testing.T) {
	var clock atomic.Int64
	base := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	clock.Store(0)
	srv := New(testStore(), Config{
		Predictor:   trainedPB(),
		SessionIdle: 10 * time.Millisecond,
		Clock:       func() time.Time { return base.Add(time.Duration(clock.Load())) },
		OnSessionEnd: func(client string, urls []string, last time.Time) {
			_ = len(urls) // exercise the callback path
		},
	})

	const (
		workers  = 8
		requests = 300
	)
	urls := []string{"/home", "/news", "/news/today", "/sports"}
	stop := make(chan struct{})

	// Demand and prefetch traffic from many clients, including shared
	// client IDs so the same context shard entry is hit concurrently.
	var traffic sync.WaitGroup
	for g := 0; g < workers; g++ {
		traffic.Add(1)
		go func(g int) {
			defer traffic.Done()
			for i := 0; i < requests; i++ {
				client := fmt.Sprintf("client%d", (g*requests+i)%5)
				rec := doGet(srv, urls[i%len(urls)], client, i%7 == 0)
				if rec.Code != http.StatusOK {
					t.Errorf("status = %d", rec.Code)
					return
				}
				clock.Add(int64(time.Millisecond))
			}
		}(g)
	}
	// Concurrent model swaps (the maintenance loop's job) and session
	// expiry, running until the traffic drains.
	var background sync.WaitGroup
	background.Add(2)
	go func() {
		defer background.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			srv.SetPredictor(trainedPB())
			srv.Ranking()
			runtime.Gosched()
		}
	}()
	go func() {
		defer background.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			srv.ExpireSessions()
			runtime.Gosched()
		}
	}()

	traffic.Wait()
	close(stop)
	background.Wait()

	st := srv.Stats()
	if st.DemandRequests+st.PrefetchRequests != workers*requests {
		t.Errorf("requests accounted = %d, want %d",
			st.DemandRequests+st.PrefetchRequests, workers*requests)
	}
}

// TestStressSameClientContext hits one client ID from many goroutines:
// every request lands on the same context shard entry and the same
// published model.
func TestStressSameClientContext(t *testing.T) {
	srv := New(testStore(), Config{Predictor: trainedPB()})
	urls := []string{"/home", "/news", "/news/today"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				doGet(srv, urls[i%len(urls)], "hotclient", false)
			}
		}()
	}
	wg.Wait()
	if got := srv.Stats().DemandRequests; got != 8*400 {
		t.Errorf("DemandRequests = %d, want %d", got, 8*400)
	}
	if ctx := srv.contextURLs("hotclient"); len(ctx) != 8*400 {
		t.Errorf("context length = %d, want %d", len(ctx), 8*400)
	}
}

// BenchmarkServerServeHTTPParallel measures demand-request throughput
// on the lock-free read path; run with -cpu 1,2,4,8 to see scaling
// with GOMAXPROCS.
func BenchmarkServerServeHTTPParallel(b *testing.B) {
	srv := New(benchStore(), Config{Predictor: benchModel()})
	var id atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := fmt.Sprintf("bench-client-%d", id.Add(1))
		urls := []string{"/p0", "/p1", "/p2", "/p3", "/p4", "/p5", "/p6", "/p7"}
		req := httptest.NewRequest(http.MethodGet, "/p0", nil)
		req.Header.Set(HeaderClientID, client)
		i := 0
		for pb.Next() {
			req.URL.Path = urls[i%len(urls)]
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			i++
		}
	})
}

// BenchmarkServerServeHTTPParallelObs is the same workload with a live
// metrics registry and a sampling-off tracer, to measure the cost of
// instrumentation relative to BenchmarkServerServeHTTPParallel.
func BenchmarkServerServeHTTPParallelObs(b *testing.B) {
	reg := obs.NewRegistry()
	srv := New(benchStore(), Config{
		Predictor: benchModel(),
		Obs:       reg,
		Tracer:    obs.NewTracer(reg, 0),
	})
	var id atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := fmt.Sprintf("bench-client-%d", id.Add(1))
		urls := []string{"/p0", "/p1", "/p2", "/p3", "/p4", "/p5", "/p6", "/p7"}
		req := httptest.NewRequest(http.MethodGet, "/p0", nil)
		req.Header.Set(HeaderClientID, client)
		i := 0
		for pb.Next() {
			req.URL.Path = urls[i%len(urls)]
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			i++
		}
	})
}

// benchStore builds a 64-document site for the parallel benchmark.
func benchStore() MapStore {
	store := MapStore{}
	for i := 0; i < 64; i++ {
		url := fmt.Sprintf("/p%d", i)
		store[url] = Document{URL: url, Body: make([]byte, 2048)}
	}
	return store
}

// benchModel trains PB-PPM on a ring walk over the benchmark site.
func benchModel() *core.Model {
	grades := popularity.FixedGrades{}
	var seq []string
	for i := 0; i < 8; i++ {
		url := fmt.Sprintf("/p%d", i)
		grades[url] = 3
		seq = append(seq, url)
	}
	m := core.New(grades, core.Config{})
	for i := 0; i < 10; i++ {
		m.TrainSequence(seq)
	}
	return m
}

// BenchmarkServerServeHTTPParallelDeepContext is the parallel demand
// benchmark with sessions long enough that every request hands the
// model the full predictContextTail-URL context. It isolates the
// predict path's longest-match cost on deep contexts (a single tree
// walk over the context, rather than one walk per suffix).
func BenchmarkServerServeHTTPParallelDeepContext(b *testing.B) {
	srv := New(benchStore(), Config{Predictor: deepBenchModel()})
	var id atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := fmt.Sprintf("deep-client-%d", id.Add(1))
		urls := make([]string, 32)
		for i := range urls {
			urls[i] = fmt.Sprintf("/p%d", i%64)
		}
		req := httptest.NewRequest(http.MethodGet, "/p0", nil)
		req.Header.Set(HeaderClientID, client)
		i := 0
		// Warm the session past the context tail so every measured
		// request predicts from a full-depth context.
		for ; i < predictContextTail; i++ {
			req.URL.Path = urls[i%len(urls)]
			srv.ServeHTTP(httptest.NewRecorder(), req)
		}
		for pb.Next() {
			req.URL.Path = urls[i%len(urls)]
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			i++
		}
	})
}

// deepBenchModel trains PB-PPM on long overlapping walks so deep
// contexts keep matching mid-branch instead of falling off the tree.
func deepBenchModel() *core.Model {
	grades := popularity.FixedGrades{}
	var seq []string
	for i := 0; i < 32; i++ {
		url := fmt.Sprintf("/p%d", i)
		grades[url] = 3
		seq = append(seq, url)
	}
	m := core.New(grades, core.Config{})
	for rot := 0; rot < 8; rot++ {
		s := append(append([]string{}, seq[rot:]...), seq[:rot]...)
		for i := 0; i < 5; i++ {
			m.TrainSequence(s)
		}
	}
	return m
}
